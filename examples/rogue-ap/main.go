// Rogue-AP: the paper's §III-D Wi-Fi Pineapple scenario as a narrative —
// an IoT device on its home network is lured to a rogue access point
// cloning the trusted SSID at higher power, receives the attacker's
// resolver via DHCP, and is owned by its next DNS lookup.
//
//	go run ./examples/rogue-ap
package main

import (
	"fmt"
	"log"

	"connlab/internal/core"
	"connlab/internal/exploit"
	"connlab/internal/isa"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	lab := core.NewLab()

	fmt.Println("== attempt 1: pineapple too far away (weak signal) ==")
	rep, err := lab.RunPineapple(core.PineappleConfig{
		Arch: isa.ArchARMS, Kind: exploit.KindRopMemcpy, Protection: core.LevelWXASLR,
		LegitSignal: 80, RogueSignal: 20,
	})
	if err != nil {
		return err
	}
	fmt.Printf("re-associated: %v, outcome: %s\n\n", rep.Reassociated, rep.Outcome)

	fmt.Println("== attempt 2: pineapple next to the device ==")
	rep, err = lab.RunPineapple(core.PineappleConfig{
		Arch: isa.ArchARMS, Kind: exploit.KindRopMemcpy, Protection: core.LevelWXASLR,
		LegitSignal: 50, RogueSignal: 95,
	})
	if err != nil {
		return err
	}
	fmt.Printf("baseline lookup:  %v\n", rep.BaselineWorked)
	fmt.Printf("re-associated:    %v (device DNS is now %s)\n", rep.Reassociated, rep.VictimDNS)
	fmt.Printf("lookups hijacked: %d\n", rep.Hijacked)
	fmt.Printf("device outcome:   %s (%s)\n\n", rep.Outcome, rep.Detail)

	fmt.Println("network event log:")
	for _, e := range rep.Events {
		fmt.Println("  ", e)
	}
	return nil
}
