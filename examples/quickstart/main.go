// Quickstart: load the Connman-analog victim, crash it with the
// CVE-2017-12865 oversized DNS response, then generate a full exploit
// automatically and watch it spawn a (simulated) root shell.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"connlab/internal/core"
	"connlab/internal/exploit"
	"connlab/internal/isa"
	"connlab/internal/kernel"
	"connlab/internal/victim"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// 1. A vulnerable Connman 1.34 analog, running as a root daemon.
	daemon, err := victim.NewDaemon(isa.ArchARMS, victim.BuildOpts{}, kernel.Config{Seed: 1})
	if err != nil {
		return err
	}
	fmt.Println("== step 1: denial of service ==")
	res, err := core.FireAt(daemon, exploit.BuildDoS(isa.ArchARMS))
	if err != nil {
		return err
	}
	fmt.Printf("crafted response -> %v\n", res)
	fmt.Printf("daemon crashed: %v\n\n", daemon.Crashed())

	// 2. The patched 1.35 parser rejects the same packet.
	patched, err := victim.NewDaemon(isa.ArchARMS, victim.BuildOpts{Patched: true},
		kernel.Config{Seed: 1})
	if err != nil {
		return err
	}
	fmt.Println("== step 2: the 1.35 patch ==")
	res, err = core.FireAt(patched, exploit.BuildDoS(isa.ArchARMS))
	if err != nil {
		return err
	}
	fmt.Printf("same response vs patched parser -> %v\n\n", res)

	// 3. Full remote-code-execution exploit, generated automatically for
	// the strongest paper protection level (W⊕X + ASLR).
	fmt.Println("== step 3: automatic exploit generation (W⊕X + ASLR) ==")
	lab := core.NewLab()
	ex, attack, err := lab.AutoExploit(isa.ArchARMS, core.LevelWXASLR)
	if err != nil {
		return err
	}
	fmt.Printf("strategy: %s\n", ex.Kind)
	fmt.Printf("payload:  %s\n", ex.Description)
	fmt.Printf("result:   %s (%s)\n", attack.Outcome, attack.Detail)
	return nil
}
