// Other-CVEs: the paper's §V claim — the exploit engine retargets other
// overflow vulnerabilities with only address and packet-crafter changes.
// Two adaptations: a dnsmasq-flavoured DNS victim (different buffer size
// and frame; CVE-2017-14493 class) and an HTTP request-line overflow
// (CVE-2019-8985 class) requiring NUL-free payload discipline.
//
//	go run ./examples/other-cves
package main

import (
	"fmt"
	"log"

	"connlab/internal/core"
	"connlab/internal/exploit"
	"connlab/internal/isa"
	"connlab/internal/kernel"
	"connlab/internal/victim"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	fmt.Println("== dnsmasq-analog: same engine, new offsets ==")
	lab := core.NewLab()
	lab.Build.Variant = victim.VariantDnsmasq
	for _, arch := range []isa.Arch{isa.ArchX86S, isa.ArchARMS} {
		tgt, err := lab.Recon(arch, core.LevelWXASLR)
		if err != nil {
			return err
		}
		fmt.Printf("  %-5s recon: ret offset %d (connman was %d), null slots %v\n",
			arch, tgt.Frame.RetOffset,
			victim.RetOffsetFor(arch, victim.BuildOpts{}), tgt.Frame.NullOffsets)
		_, res, err := lab.AutoExploit(arch, core.LevelWXASLR)
		if err != nil {
			return err
		}
		fmt.Printf("  %-5s exploit under W⊕X+ASLR -> %s\n", arch, res.Outcome)
	}

	fmt.Println()
	fmt.Println("== HTTP victim: new protocol, new payload constraints ==")
	tgt, err := exploit.ReconHTTP(kernel.Config{Seed: 1001})
	if err != nil {
		return err
	}
	fmt.Printf("  recon: URI buffer at %#x, ret offset %d\n", tgt.BufferAddr, tgt.RetOffset)
	req, err := exploit.BuildHTTPInjection(tgt)
	if err != nil {
		return err
	}
	fmt.Printf("  request line: %q...\n", req[:24])
	d, err := victim.NewHTTPDaemon(kernel.Config{Seed: 2002})
	if err != nil {
		return err
	}
	res, err := d.HandleRequest(req)
	if err != nil {
		return err
	}
	outcome, detail := core.Classify(res)
	fmt.Printf("  GET request -> %s (%s)\n", outcome, detail)
	return nil
}
