// Mitigation-eval: measure the paper's §IV suggested defenses (CFI
// shadow stack, stack canaries, full PIE, compile-time software
// diversity) against the six working exploits from §III.
//
//	go run ./examples/mitigation-eval
package main

import (
	"fmt"
	"log"

	"connlab/internal/core"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	lab := core.NewLab()
	results, err := lab.EvaluateMitigations(5)
	if err != nil {
		return err
	}
	fmt.Println("mitigation x exploit block rates (5 diversity trials each):")
	for _, m := range results {
		fmt.Println(" ", m.String())
	}
	fmt.Println()
	fmt.Println("reading the table:")
	fmt.Println("  - CFI and canaries stop every control-flow hijack deterministically;")
	fmt.Println("  - full PIE removes the fixed PLT/.bss surface the ASLR bypass needs;")
	fmt.Println("  - layout diversity kills code-reuse chains but, notably, NOT code")
	fmt.Println("    injection or ret2libc, which never touch the diversified binary's")
	fmt.Println("    own addresses — a limitation the paper's §IV does not spell out.")
	return nil
}
