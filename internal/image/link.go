package image

import (
	"fmt"
	"sort"

	"connlab/internal/isa"
	"connlab/internal/isa/arms"
	"connlab/internal/mem"
)

// Layout gives the base address of each section group when linking.
type Layout struct {
	// TextBase is where .plt (then .text) starts.
	TextBase uint32
	// RODataBase is where .rodata starts.
	RODataBase uint32
	// GOTBase is where .got starts (programs with imports only).
	GOTBase uint32
	// DataBase is where .data starts.
	DataBase uint32
	// BSSBase is where .bss starts.
	BSSBase uint32
}

// Default program layouts. The bases mimic a 32-bit non-PIE Linux binary:
// x86 programs at 0x08048000, ARM programs at 0x00010000 (the paper's
// ARM listings show .text addresses like 0x000112b1 and .bss addresses
// like 0x000b9dc4, which these bases reproduce).
var (
	x86ProgramLayout = Layout{
		TextBase:   0x08048000,
		RODataBase: 0x08090000,
		GOTBase:    0x080A0000,
		DataBase:   0x080A4000,
		BSSBase:    0x080B0000,
	}
	armProgramLayout = Layout{
		TextBase:   0x00010000,
		RODataBase: 0x00090000,
		GOTBase:    0x000A0000,
		DataBase:   0x000A8000,
		BSSBase:    0x000B9000,
	}
)

// DefaultProgramLayout returns the fixed (non-PIE) link layout for a
// program on the given architecture.
func DefaultProgramLayout(arch isa.Arch) Layout {
	if arch == isa.ArchARMS {
		return armProgramLayout
	}
	return x86ProgramLayout
}

// DefaultLibcBase returns the unrandomized libc load base, mimicking the
// 32-bit Linux mmap region of each architecture.
func DefaultLibcBase(arch isa.Arch) uint32 {
	if arch == isa.ArchARMS {
		return 0x76F00000
	}
	return 0xB7500000
}

// LibraryLayout derives a library layout from a load base.
func LibraryLayout(base uint32) Layout {
	return Layout{
		TextBase:   base,
		RODataBase: base + 0x00040000,
		DataBase:   base + 0x00060000,
		BSSBase:    base + 0x00070000,
	}
}

// Options tune linking; the zero value is the standard deterministic link.
// Diversity transforms (the §IV mitigation experiments) permute and pad
// function placement so that gadget addresses differ between builds.
type Options struct {
	// Order permutes Unit.Funcs; nil keeps the declared order. It must be a
	// permutation of [0, len(Funcs)).
	Order []int
	// Pad gives extra padding bytes inserted before each function (indexed
	// after permutation); nil means no padding.
	Pad []int
}

const (
	x86PLTStubSize = 8
	armPLTStubSize = 16
	x86FuncAlign   = 16
	armFuncAlign   = 4
)

func align(v, a uint32) uint32 { return (v + a - 1) &^ (a - 1) }

// fillByte returns the inter-function fill: an undecodable byte so that
// stray execution and the gadget scanner stop at function boundaries
// (0xCC int3 on x86s, 0x00 illegal opcode on arms).
func fillByte(arch isa.Arch) byte {
	if arch == isa.ArchX86S {
		return 0xCC
	}
	return 0
}

// Link resolves a unit at the given layout. Programs with imports need
// Layout.GOTBase set; libraries must have no imports.
func Link(u *Unit, layout Layout, opts Options) (*Image, error) {
	if u.Err() != nil {
		return nil, u.Err()
	}
	if len(u.Imports) > 0 && layout.GOTBase == 0 {
		return nil, fmt.Errorf("link: unit has imports but layout has no GOT base")
	}

	nsym := 2*len(u.Imports) + len(u.Funcs) + len(u.ROData) + len(u.RWData) + len(u.BSS) + 3
	img := &Image{
		Arch:    u.Arch,
		Symbols: make(map[string]Symbol, nsym),
		PLT:     make(map[string]uint32, len(u.Imports)),
		GOT:     make(map[string]uint32, len(u.Imports)),
		Layout:  layout,
	}
	def := func(s Symbol) error {
		if _, dup := img.Symbols[s.Name]; dup {
			return fmt.Errorf("link: duplicate symbol %q", s.Name)
		}
		img.Symbols[s.Name] = s
		return nil
	}

	// GOT and PLT slots, in sorted import order for determinism.
	imports := append([]string(nil), u.Imports...)
	sort.Strings(imports)
	stubSize := uint32(x86PLTStubSize)
	if u.Arch == isa.ArchARMS {
		stubSize = armPLTStubSize
	}
	for i, name := range imports {
		got := layout.GOTBase + uint32(4*i)
		plt := layout.TextBase + uint32(i)*stubSize
		img.GOT[name] = got
		img.PLT[name] = plt
		if err := def(Symbol{Name: name + "@got", Addr: got, Size: 4, Section: ".got"}); err != nil {
			return nil, err
		}
		if err := def(Symbol{Name: name + "@plt", Addr: plt, Size: stubSize, Section: ".plt"}); err != nil {
			return nil, err
		}
	}
	pltSize := uint32(len(imports)) * stubSize

	// Function placement.
	funcs := u.Funcs
	if opts.Order != nil {
		if len(opts.Order) != len(funcs) {
			return nil, fmt.Errorf("link: order has %d entries for %d funcs", len(opts.Order), len(funcs))
		}
		seen := make(map[int]bool, len(opts.Order))
		reordered := make([]*Function, len(funcs))
		for i, j := range opts.Order {
			if j < 0 || j >= len(funcs) || seen[j] {
				return nil, fmt.Errorf("link: order is not a permutation")
			}
			seen[j] = true
			reordered[i] = funcs[j]
		}
		funcs = reordered
	}

	falign := uint32(x86FuncAlign)
	if u.Arch == isa.ArchARMS {
		falign = armFuncAlign
	}
	textStart := align(layout.TextBase+pltSize, falign)
	cursor := textStart
	addrs := make([]uint32, len(funcs))
	for i, fn := range funcs {
		if opts.Pad != nil && i < len(opts.Pad) {
			cursor += uint32(opts.Pad[i])
		}
		cursor = align(cursor, falign)
		addrs[i] = cursor
		if err := def(Symbol{Name: fn.Name, Addr: cursor, Size: uint32(len(fn.Bytes)), Section: ".text"}); err != nil {
			return nil, err
		}
		cursor += uint32(len(fn.Bytes))
	}
	textEnd := cursor

	// Data placement.
	place := func(items []Data, base uint32, section string, alignTo uint32) (uint32, error) {
		cur := base
		for _, d := range items {
			cur = align(cur, alignTo)
			if err := def(Symbol{Name: d.Name, Addr: cur, Size: d.Size, Section: section}); err != nil {
				return 0, err
			}
			cur += d.Size
		}
		return cur, nil
	}
	roEnd, err := place(u.ROData, layout.RODataBase, ".rodata", 4)
	if err != nil {
		return nil, err
	}
	dataEnd, err := place(u.RWData, layout.DataBase, ".data", 4)
	if err != nil {
		return nil, err
	}
	bssEnd, err := place(u.BSS, layout.BSSBase, ".bss", 4)
	if err != nil {
		return nil, err
	}

	// Section boundary symbols used by exploits and tests.
	for _, s := range []Symbol{
		{Name: "__text_start", Addr: textStart, Section: ".text"},
		{Name: "__text_end", Addr: textEnd, Section: ".text"},
		{Name: "__bss_start", Addr: layout.BSSBase, Section: ".bss"},
	} {
		if err := def(s); err != nil {
			return nil, err
		}
	}

	// Emit sections.
	fill := fillByte(u.Arch)
	textData := make([]byte, textEnd-layout.TextBase)
	if len(textData) > 0 {
		textData[0] = fill
		for i := 1; i < len(textData); i *= 2 {
			copy(textData[i:], textData[:i])
		}
	}
	// PLT stubs.
	for i, name := range imports {
		stub := buildPLTStub(u.Arch, img.GOT[name])
		copy(textData[uint32(i)*stubSize:], stub)
	}
	// Functions with relocations applied.
	for i, fn := range funcs {
		code := make([]byte, len(fn.Bytes))
		copy(code, fn.Bytes)
		if err := applyRelocs(u.Arch, img, fn, addrs[i], code); err != nil {
			return nil, err
		}
		copy(textData[addrs[i]-layout.TextBase:], code)
	}

	fillData := func(items []Data, base, end uint32, alignTo uint32) []byte {
		out := make([]byte, end-base)
		cur := base
		for _, d := range items {
			cur = align(cur, alignTo)
			copy(out[cur-base:], d.Bytes)
			cur += d.Size
		}
		return out
	}

	img.Sections = append(img.Sections,
		Section{Name: ".text", Addr: layout.TextBase, Data: textData, Perm: mem.PermRX})
	if len(u.ROData) > 0 {
		img.Sections = append(img.Sections, Section{
			Name: ".rodata", Addr: layout.RODataBase,
			Data: fillData(u.ROData, layout.RODataBase, roEnd, 4), Perm: mem.PermRead,
		})
	}
	if len(imports) > 0 {
		img.Sections = append(img.Sections, Section{
			Name: ".got", Addr: layout.GOTBase,
			Data: make([]byte, uint32(4*len(imports))), Perm: mem.PermRW,
		})
	}
	if len(u.RWData) > 0 {
		img.Sections = append(img.Sections, Section{
			Name: ".data", Addr: layout.DataBase,
			Data: fillData(u.RWData, layout.DataBase, dataEnd, 4), Perm: mem.PermRW,
		})
	}
	if len(u.BSS) > 0 {
		img.Sections = append(img.Sections, Section{
			Name: ".bss", Addr: layout.BSSBase,
			Data: make([]byte, bssEnd-layout.BSSBase), Perm: mem.PermRW,
		})
	}
	return img, nil
}

// buildPLTStub emits the jump-through-GOT stub for one import.
func buildPLTStub(arch isa.Arch, got uint32) []byte {
	if arch == isa.ArchX86S {
		// jmp dword [got]; int3 padding.
		return []byte{
			0xFF, 0x25, byte(got), byte(got >> 8), byte(got >> 16), byte(got >> 24),
			0xCC, 0xCC,
		}
	}
	// movw r12,#lo ; movt r12,#hi ; ldr r12,[r12] ; bx r12
	words := []uint32{
		arms.Instr{Op: arms.OpMovW, Rd: arms.R12, Imm: int32(got & 0xFFFF)}.Word(),
		arms.Instr{Op: arms.OpMovT, Rd: arms.R12, Imm: int32(got >> 16)}.Word(),
		arms.Instr{Op: arms.OpLdr, Rd: arms.R12, Rn: arms.R12}.Word(),
		arms.Instr{Op: arms.OpBX, Rd: arms.R12}.Word(),
	}
	out := make([]byte, 16)
	for i, w := range words {
		out[i*4] = byte(w)
		out[i*4+1] = byte(w >> 8)
		out[i*4+2] = byte(w >> 16)
		out[i*4+3] = byte(w >> 24)
	}
	return out
}

// applyRelocs patches one function's code in place.
func applyRelocs(arch isa.Arch, img *Image, fn *Function, funcAddr uint32, code []byte) error {
	for _, r := range fn.Relocs {
		sym, ok := img.Symbols[r.Symbol]
		if !ok {
			return fmt.Errorf("link %s: undefined symbol %q", fn.Name, r.Symbol)
		}
		target := sym.Addr + uint32(r.Addend)
		if r.Off < 0 || r.Off+4 > len(code) {
			return fmt.Errorf("link %s: reloc offset %d out of bounds", fn.Name, r.Off)
		}
		switch r.Kind {
		case RelocAbs32, RelocWord32:
			put32(code[r.Off:], target)
		case RelocRel32:
			site := funcAddr + uint32(r.Off)
			put32(code[r.Off:], target-(site+4))
		case RelocArmMovWT:
			if err := arms.PatchMovWT(code, r.Off, target); err != nil {
				return fmt.Errorf("link %s: %w", fn.Name, err)
			}
		case RelocArmBranch:
			site := funcAddr + uint32(r.Off)
			if err := arms.PatchBranch(code, r.Off, site, target); err != nil {
				return fmt.Errorf("link %s: %w", fn.Name, err)
			}
		default:
			return fmt.Errorf("link %s: unknown reloc kind %d", fn.Name, r.Kind)
		}
		_ = arch
	}
	return nil
}

func put32(b []byte, v uint32) {
	b[0] = byte(v)
	b[1] = byte(v >> 8)
	b[2] = byte(v >> 16)
	b[3] = byte(v >> 24)
}
