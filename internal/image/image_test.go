package image

import (
	"testing"

	"connlab/internal/isa"
	"connlab/internal/isa/arms"
	"connlab/internal/isa/x86s"
	"connlab/internal/mem"
)

// tinyX86Unit builds a unit with one import, one function, and data.
func tinyX86Unit(t *testing.T) *Unit {
	t.Helper()
	u := NewUnit(isa.ArchX86S)
	u.Import("memcpy")
	u.AddRodata("msg", []byte("hi\x00"))
	u.AddData("counter", []byte{1, 0, 0, 0})
	u.AddBSS("scratch", 64)

	a := x86s.NewAsm()
	a.MovRISym(x86s.EAX, "msg", 0)
	a.CallSym("memcpy@plt")
	a.Ret()
	u.AddFuncX86("main", a)
	return u
}

func TestLinkX86LayoutAndSymbols(t *testing.T) {
	u := tinyX86Unit(t)
	layout := DefaultProgramLayout(isa.ArchX86S)
	img, err := Link(u, layout, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, sym := range []string{"main", "memcpy@plt", "memcpy@got", "msg", "counter",
		"scratch", "__text_start", "__text_end", "__bss_start"} {
		if _, ok := img.Lookup(sym); !ok {
			t.Errorf("missing symbol %q", sym)
		}
	}
	if img.PLT["memcpy"] != layout.TextBase {
		t.Errorf("plt stub at %#x, want text base", img.PLT["memcpy"])
	}
	if img.GOT["memcpy"] != layout.GOTBase {
		t.Errorf("got slot at %#x, want got base", img.GOT["memcpy"])
	}
	// The PLT stub must be the jmp-through-GOT form.
	text := img.Section(".text")
	if text == nil || text.Data[0] != 0xFF || text.Data[1] != 0x25 {
		t.Error("x86 PLT stub is not jmp [got]")
	}
	// Reloc applied: mov eax, imm32 holds msg's address.
	mainAddr := img.MustLookup("main")
	msgAddr := img.MustLookup("msg")
	off := mainAddr - layout.TextBase
	imm := uint32(text.Data[off+1]) | uint32(text.Data[off+2])<<8 |
		uint32(text.Data[off+3])<<16 | uint32(text.Data[off+4])<<24
	if imm != msgAddr {
		t.Errorf("abs32 reloc = %#x, want %#x", imm, msgAddr)
	}
}

func TestLinkRejectsBadInput(t *testing.T) {
	u := tinyX86Unit(t)
	if _, err := Link(u, Layout{TextBase: 0x1000}, Options{}); err == nil {
		t.Error("imports without GOT base accepted")
	}

	dup := NewUnit(isa.ArchX86S)
	a := x86s.NewAsm()
	a.Ret()
	dup.AddFuncX86("f", a)
	b := x86s.NewAsm()
	b.Ret()
	dup.AddFuncX86("f", b)
	if _, err := Link(dup, DefaultProgramLayout(isa.ArchX86S), Options{}); err == nil {
		t.Error("duplicate symbol accepted")
	}

	undef := NewUnit(isa.ArchX86S)
	c := x86s.NewAsm()
	c.CallSym("ghost")
	c.Ret()
	undef.AddFuncX86("g", c)
	if _, err := Link(undef, DefaultProgramLayout(isa.ArchX86S), Options{}); err == nil {
		t.Error("undefined symbol accepted")
	}

	wrongArch := NewUnit(isa.ArchARMS)
	d := x86s.NewAsm()
	d.Ret()
	wrongArch.AddFuncX86("h", d)
	if wrongArch.Err() == nil {
		t.Error("x86 function in arms unit accepted")
	}
}

func TestLinkOptionsValidation(t *testing.T) {
	u := tinyX86Unit(t)
	if _, err := Link(u, DefaultProgramLayout(isa.ArchX86S), Options{Order: []int{0, 0}}); err == nil {
		t.Error("bad order length accepted")
	}
	u2 := tinyX86Unit(t)
	if _, err := Link(u2, DefaultProgramLayout(isa.ArchX86S), Options{Order: []int{5}}); err == nil {
		t.Error("out-of-range order accepted")
	}
}

func TestARMLinkAndPLTStub(t *testing.T) {
	u := NewUnit(isa.ArchARMS)
	u.Import("write")
	a := arms.NewAsm()
	a.Push(arms.LR)
	a.BL("write@plt")
	a.Pop(arms.PC)
	u.AddFuncARM("main", a)
	img, err := Link(u, DefaultProgramLayout(isa.ArchARMS), Options{})
	if err != nil {
		t.Fatal(err)
	}
	stub := img.MustLookup("write@plt")
	text := img.Section(".text")
	// Stub: movw r12 / movt r12 / ldr r12,[r12] / bx r12.
	for i, wantOp := range []arms.Op{arms.OpMovW, arms.OpMovT, arms.OpLdr, arms.OpBX} {
		off := stub - text.Addr + uint32(i*4)
		w := uint32(text.Data[off]) | uint32(text.Data[off+1])<<8 |
			uint32(text.Data[off+2])<<16 | uint32(text.Data[off+3])<<24
		in, err := arms.Decode(w)
		if err != nil || in.Op != wantOp {
			t.Errorf("stub word %d: %v op=%v want %v", i, err, in.Op, wantOp)
		}
	}
}

func TestLibraryLayoutDerivation(t *testing.T) {
	l := LibraryLayout(0x70000000)
	if l.TextBase != 0x70000000 || l.RODataBase <= l.TextBase || l.DataBase <= l.RODataBase {
		t.Errorf("library layout = %+v", l)
	}
}

func TestBuildLibcBothArches(t *testing.T) {
	for _, arch := range []isa.Arch{isa.ArchX86S, isa.ArchARMS} {
		u, err := BuildLibc(arch)
		if err != nil {
			t.Fatalf("%s: %v", arch, err)
		}
		img, err := Link(u, LibraryLayout(DefaultLibcBase(arch)), Options{})
		if err != nil {
			t.Fatalf("%s: link: %v", arch, err)
		}
		for _, sym := range []string{"memcpy", "memset", "strlen", "system",
			"execlp", "execve", "exit", "write", SymBinSh, SymSh} {
			if _, ok := img.Lookup(sym); !ok {
				t.Errorf("%s: libc missing %q", arch, sym)
			}
		}
		// The /bin/sh string content is really there.
		ro := img.Section(".rodata")
		addr := img.MustLookup(SymBinSh)
		got := string(ro.Data[addr-ro.Addr : addr-ro.Addr+7])
		if got != "/bin/sh" {
			t.Errorf("%s: str_bin_sh = %q", arch, got)
		}
	}
}

func TestMapIntoAndFuncAt(t *testing.T) {
	u := tinyX86Unit(t)
	img, err := Link(u, DefaultProgramLayout(isa.ArchX86S), Options{})
	if err != nil {
		t.Fatal(err)
	}
	m := mem.New()
	if err := img.MapInto(m, ""); err != nil {
		t.Fatal(err)
	}
	if m.Segment(".text") == nil || m.Segment(".bss") == nil {
		t.Error("sections not mapped")
	}
	// Text is RX, data RW.
	if m.Segment(".text").Perm != mem.PermRX {
		t.Errorf("text perm = %v", m.Segment(".text").Perm)
	}
	if m.Segment(".data").Perm != mem.PermRW {
		t.Errorf("data perm = %v", m.Segment(".data").Perm)
	}

	mainAddr := img.MustLookup("main")
	sym, ok := img.FuncAt(mainAddr + 2)
	if !ok || sym.Name != "main" {
		t.Errorf("FuncAt = %+v, %v", sym, ok)
	}
	if _, ok := img.FuncAt(0x1); ok {
		t.Error("FuncAt(junk) found something")
	}
	syms := img.FuncSymbols()
	if len(syms) < 2 { // main + plt stub (+ boundary markers)
		t.Errorf("func symbols = %d", len(syms))
	}
	for i := 1; i < len(syms); i++ {
		if syms[i].Addr < syms[i-1].Addr {
			t.Error("func symbols not sorted")
		}
	}
}

func TestDiversityOrderChangesAddresses(t *testing.T) {
	build := func(order []int, pad []int) *Image {
		u := NewUnit(isa.ArchX86S)
		for _, name := range []string{"f1", "f2", "f3"} {
			a := x86s.NewAsm()
			a.MovRI(x86s.EAX, 1)
			a.Ret()
			u.AddFuncX86(name, a)
		}
		img, err := Link(u, DefaultProgramLayout(isa.ArchX86S), Options{Order: order, Pad: pad})
		if err != nil {
			t.Fatal(err)
		}
		return img
	}
	a := build(nil, nil)
	b := build([]int{2, 0, 1}, []int{16, 0, 32})
	if a.MustLookup("f1") == b.MustLookup("f1") && a.MustLookup("f3") == b.MustLookup("f3") {
		t.Error("order/pad options did not move functions")
	}
}

func TestMustLookupPanics(t *testing.T) {
	u := tinyX86Unit(t)
	img, err := Link(u, DefaultProgramLayout(isa.ArchX86S), Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Error("MustLookup on missing symbol did not panic")
		}
	}()
	img.MustLookup("ghost")
}
