// Package image builds and links the binary images the lab's simulated
// processes execute: the Connman-analog victim programs and the emulated
// libc. It plays the role of the compiler+static-linker pair (for the main
// program, linked non-PIE at a fixed base) and feeds the dynamic-linking
// step the kernel loader performs (libc relocation, GOT population).
//
// A Unit is relocatable compiled code: functions with outstanding symbol
// relocations plus data definitions. Link resolves a Unit against a Layout
// into an Image: absolute sections, a symbol table, and PLT/GOT maps.
package image

import (
	"fmt"
	"sort"

	"connlab/internal/isa"
	"connlab/internal/isa/arms"
	"connlab/internal/isa/x86s"
	"connlab/internal/mem"
)

// RelocKind unifies the per-architecture relocation kinds.
type RelocKind uint8

// Relocation kinds.
const (
	// RelocAbs32 patches a 32-bit absolute address (x86s immediates and
	// memory-operand displacements).
	RelocAbs32 RelocKind = iota + 1
	// RelocRel32 patches symbol - (site+4) (x86s call/jmp rel32).
	RelocRel32
	// RelocArmMovWT patches an arms movw/movt pair.
	RelocArmMovWT
	// RelocArmBranch patches an arms b/bl rel22 field.
	RelocArmBranch
	// RelocWord32 patches a literal 32-bit word (either architecture).
	RelocWord32
)

// Reloc is an unresolved symbol reference within a function.
type Reloc struct {
	Off    int
	Kind   RelocKind
	Symbol string
	Addend int32
}

// Function is one compiled function.
type Function struct {
	Name   string
	Bytes  []byte
	Relocs []Reloc
}

// Data is a named data definition. A nil Bytes with Size > 0 is a BSS
// (zero-initialized) definition.
type Data struct {
	Name  string
	Bytes []byte
	Size  uint32
}

// Unit is a relocatable compilation unit.
type Unit struct {
	Arch    isa.Arch
	Funcs   []*Function
	ROData  []Data
	RWData  []Data
	BSS     []Data
	Imports []string // functions reached through the PLT
	err     error
}

// NewUnit returns an empty unit for the given architecture.
func NewUnit(arch isa.Arch) *Unit { return &Unit{Arch: arch} }

// Err returns the first error recorded while building the unit.
func (u *Unit) Err() error { return u.err }

func (u *Unit) setErr(err error) {
	if u.err == nil && err != nil {
		u.err = err
	}
}

// AddFuncX86 assembles an x86s function into the unit.
func (u *Unit) AddFuncX86(name string, a *x86s.Asm) *Unit {
	if u.Arch != isa.ArchX86S {
		u.setErr(fmt.Errorf("unit %s: x86s function %q added to %s unit", u.Arch, name, u.Arch))
		return u
	}
	code, err := a.Assemble()
	if err != nil {
		u.setErr(fmt.Errorf("assemble %s: %w", name, err))
		return u
	}
	fn := &Function{Name: name, Bytes: code.Bytes}
	for _, r := range code.Relocs {
		kind := RelocAbs32
		if r.Kind == x86s.RelocRel32 {
			kind = RelocRel32
		}
		fn.Relocs = append(fn.Relocs, Reloc{Off: r.Off, Kind: kind, Symbol: r.Symbol, Addend: r.Addend})
	}
	u.Funcs = append(u.Funcs, fn)
	return u
}

// AddFuncARM assembles an arms function into the unit.
func (u *Unit) AddFuncARM(name string, a *arms.Asm) *Unit {
	if u.Arch != isa.ArchARMS {
		u.setErr(fmt.Errorf("unit %s: arms function %q added to %s unit", u.Arch, name, u.Arch))
		return u
	}
	code, err := a.Assemble()
	if err != nil {
		u.setErr(fmt.Errorf("assemble %s: %w", name, err))
		return u
	}
	fn := &Function{Name: name, Bytes: code.Bytes}
	for _, r := range code.Relocs {
		var kind RelocKind
		switch r.Kind {
		case arms.RelocMovWT:
			kind = RelocArmMovWT
		case arms.RelocBranch:
			kind = RelocArmBranch
		case arms.RelocWord32:
			kind = RelocWord32
		}
		fn.Relocs = append(fn.Relocs, Reloc{Off: r.Off, Kind: kind, Symbol: r.Symbol, Addend: r.Addend})
	}
	u.Funcs = append(u.Funcs, fn)
	return u
}

// AddRodata adds a read-only data blob.
func (u *Unit) AddRodata(name string, b []byte) *Unit {
	u.ROData = append(u.ROData, Data{Name: name, Bytes: b, Size: uint32(len(b))})
	return u
}

// AddData adds an initialized read-write data blob.
func (u *Unit) AddData(name string, b []byte) *Unit {
	u.RWData = append(u.RWData, Data{Name: name, Bytes: b, Size: uint32(len(b))})
	return u
}

// AddBSS adds a zero-initialized data definition.
func (u *Unit) AddBSS(name string, size uint32) *Unit {
	u.BSS = append(u.BSS, Data{Name: name, Size: size})
	return u
}

// Import declares functions resolved at load time through the PLT/GOT.
// Code references them as "<name>@plt".
func (u *Unit) Import(names ...string) *Unit {
	u.Imports = append(u.Imports, names...)
	return u
}

// Symbol is a resolved name in a linked image.
type Symbol struct {
	Name    string
	Addr    uint32
	Size    uint32
	Section string
}

// Section is an absolute, permissioned chunk of a linked image.
type Section struct {
	Name string
	Addr uint32
	Data []byte
	Perm mem.Perm
}

// Image is a fully linked program or library.
type Image struct {
	Arch     isa.Arch
	Sections []Section
	Symbols  map[string]Symbol
	// PLT maps an imported function name to its PLT stub address; GOT maps
	// it to its GOT slot (which the loader fills with the library address).
	PLT map[string]uint32
	GOT map[string]uint32
	// Layout records the bases the image was linked at.
	Layout Layout
}

// Section returns the named section, or nil.
func (img *Image) Section(name string) *Section {
	for i := range img.Sections {
		if img.Sections[i].Name == name {
			return &img.Sections[i]
		}
	}
	return nil
}

// Lookup returns the address of a symbol.
func (img *Image) Lookup(name string) (uint32, bool) {
	s, ok := img.Symbols[name]
	return s.Addr, ok
}

// MustLookup returns the address of a symbol, panicking if absent; it is
// for lab-internal wiring where a missing symbol is a build bug.
func (img *Image) MustLookup(name string) uint32 {
	s, ok := img.Symbols[name]
	if !ok {
		panic(fmt.Sprintf("image: undefined symbol %q", name))
	}
	return s.Addr
}

// FuncSymbols returns the function symbols sorted by address.
func (img *Image) FuncSymbols() []Symbol {
	var out []Symbol
	for _, s := range img.Symbols {
		if s.Section == ".text" || s.Section == ".plt" {
			out = append(out, s)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Addr < out[j].Addr })
	return out
}

// FuncAt returns the function symbol containing addr, if any.
func (img *Image) FuncAt(addr uint32) (Symbol, bool) {
	var best Symbol
	found := false
	for _, s := range img.Symbols {
		if s.Section != ".text" && s.Section != ".plt" {
			continue
		}
		if addr >= s.Addr && addr < s.Addr+s.Size {
			if !found || s.Addr > best.Addr {
				best, found = s, true
			}
		}
	}
	return best, found
}

// MapInto maps every section of the image into an address space.
func (img *Image) MapInto(m *mem.Memory, namePrefix string) error {
	for _, s := range img.Sections {
		seg, err := m.Map(namePrefix+s.Name, s.Addr, uint32(len(s.Data)), s.Perm)
		if err != nil {
			return fmt.Errorf("map %s: %w", s.Name, err)
		}
		seg.Populate(0, s.Data)
	}
	return nil
}
