package image

import (
	"fmt"

	"connlab/internal/abi"
	"connlab/internal/isa"
	"connlab/internal/isa/arms"
	"connlab/internal/isa/x86s"
)

// Libc symbol names exported to programs and exploits.
const (
	// SymBinSh is the "/bin/sh" string inside libc — the classic
	// ret-to-libc ingredient whose address is stable only without ASLR.
	SymBinSh = "str_bin_sh"
	// SymSh is a PATH-relative "sh" string, also in libc.
	SymSh = "str_sh"
)

// BuildLibc returns the emulated C library for the given architecture. It
// provides the functions the victim imports (memcpy, memset, strlen,
// execlp, exit, write) plus the ret-to-libc targets (system, execve) and
// the "/bin/sh" string.
func BuildLibc(arch isa.Arch) (*Unit, error) {
	var u *Unit
	if arch == isa.ArchARMS {
		u = buildLibcARM()
	} else {
		u = buildLibcX86()
	}
	if err := u.Err(); err != nil {
		return nil, fmt.Errorf("build libc: %w", err)
	}
	u.AddRodata(SymBinSh, []byte(abi.ShellPath+"\x00"))
	u.AddRodata(SymSh, []byte(abi.RelShell+"\x00"))
	return u, nil
}

// buildLibcX86 emits the x86s (cdecl, stack-passed arguments) libc.
func buildLibcX86() *Unit {
	u := NewUnit(isa.ArchX86S)

	// memcpy(dst, src, n) -> dst. Classic byte loop with movsb.
	{
		a := x86s.NewAsm()
		a.PushR(x86s.EBP).MovRR(x86s.EBP, x86s.ESP)
		a.PushR(x86s.ESI).PushR(x86s.EDI)
		a.MovRM(x86s.EDI, x86s.EBP, 8)
		a.MovRM(x86s.ESI, x86s.EBP, 12)
		a.MovRM(x86s.ECX, x86s.EBP, 16)
		a.Label("loop")
		a.Jecxz("done")
		a.Movsb()
		a.DecR(x86s.ECX)
		a.Jmp("loop")
		a.Label("done")
		a.MovRM(x86s.EAX, x86s.EBP, 8)
		a.PopR(x86s.EDI).PopR(x86s.ESI).PopR(x86s.EBP).Ret()
		u.AddFuncX86("memcpy", a)
	}

	// memset(dst, c, n) -> dst.
	{
		a := x86s.NewAsm()
		a.PushR(x86s.EBP).MovRR(x86s.EBP, x86s.ESP)
		a.MovRM(x86s.EDX, x86s.EBP, 8)
		a.MovRM(x86s.EAX, x86s.EBP, 12)
		a.MovRM(x86s.ECX, x86s.EBP, 16)
		a.Label("loop")
		a.Jecxz("done")
		a.MovMR8(x86s.EDX, 0, x86s.EAX) // [edx] = al
		a.IncR(x86s.EDX)
		a.DecR(x86s.ECX)
		a.Jmp("loop")
		a.Label("done")
		a.MovRM(x86s.EAX, x86s.EBP, 8)
		a.PopR(x86s.EBP).Ret()
		u.AddFuncX86("memset", a)
	}

	// strlen(s) -> len.
	{
		a := x86s.NewAsm()
		a.PushR(x86s.EBP).MovRR(x86s.EBP, x86s.ESP)
		a.MovRM(x86s.EDX, x86s.EBP, 8)
		a.XorRR(x86s.EAX, x86s.EAX)
		a.Label("loop")
		a.Movzx8M(x86s.ECX, x86s.EDX, 0)
		a.TestRR(x86s.ECX, x86s.ECX)
		a.Jcc(x86s.CondE, "done")
		a.IncR(x86s.EAX)
		a.IncR(x86s.EDX)
		a.Jmp("loop")
		a.Label("done")
		a.PopR(x86s.EBP).Ret()
		u.AddFuncX86("strlen", a)
	}

	// system(cmd): arguments read straight off the stack — which is
	// precisely why a ret-to-libc chain can call it with a forged frame.
	{
		a := x86s.NewAsm()
		a.MovRI(x86s.EAX, abi.SysSystem)
		a.MovRM(x86s.EBX, x86s.ESP, 4)
		a.IntN(0x80)
		a.Ret()
		u.AddFuncX86("system", a)
	}

	// execlp(file, arg0, ..., NULL).
	{
		a := x86s.NewAsm()
		a.MovRI(x86s.EAX, abi.SysExeclp)
		a.MovRM(x86s.EBX, x86s.ESP, 4)
		a.MovRM(x86s.ECX, x86s.ESP, 8)
		a.IntN(0x80)
		a.Ret()
		u.AddFuncX86("execlp", a)
	}

	// execve(path, argv, envp).
	{
		a := x86s.NewAsm()
		a.MovRI(x86s.EAX, abi.SysExecve)
		a.MovRM(x86s.EBX, x86s.ESP, 4)
		a.MovRM(x86s.ECX, x86s.ESP, 8)
		a.MovRM(x86s.EDX, x86s.ESP, 12)
		a.IntN(0x80)
		a.Ret()
		u.AddFuncX86("execve", a)
	}

	// exit(status).
	{
		a := x86s.NewAsm()
		a.MovRI(x86s.EAX, abi.SysExit)
		a.MovRM(x86s.EBX, x86s.ESP, 4)
		a.IntN(0x80)
		a.Label("spin") // unreachable: exit does not return
		a.Jmp("spin")
		u.AddFuncX86("exit", a)
	}

	// write(fd, buf, n).
	{
		a := x86s.NewAsm()
		a.MovRI(x86s.EAX, abi.SysWrite)
		a.MovRM(x86s.EBX, x86s.ESP, 4)
		a.MovRM(x86s.ECX, x86s.ESP, 8)
		a.MovRM(x86s.EDX, x86s.ESP, 12)
		a.IntN(0x80)
		a.Ret()
		u.AddFuncX86("write", a)
	}

	return u
}

// buildLibcARM emits the arms (register-argument) libc. Arguments arrive
// in r0-r2; that register passing is exactly why the paper needs
// register-loading gadgets on ARM where x86 gets by with stack frames.
func buildLibcARM() *Unit {
	u := NewUnit(isa.ArchARMS)

	// memcpy(dst r0, src r1, n r2) -> r0.
	{
		a := arms.NewAsm()
		a.MovR(arms.R12, arms.R0)
		a.Label("loop")
		a.CmpI(arms.R2, 0)
		a.B(arms.CondEQ, "done")
		a.Ldrb(arms.R3, arms.R1, 0)
		a.Strb(arms.R3, arms.R0, 0)
		a.AddI(arms.R0, arms.R0, 1)
		a.AddI(arms.R1, arms.R1, 1)
		a.SubI(arms.R2, arms.R2, 1)
		a.BAlways("loop")
		a.Label("done")
		a.MovR(arms.R0, arms.R12)
		a.BX(arms.LR)
		u.AddFuncARM("memcpy", a)
	}

	// memset(dst r0, c r1, n r2) -> r0.
	{
		a := arms.NewAsm()
		a.MovR(arms.R12, arms.R0)
		a.Label("loop")
		a.CmpI(arms.R2, 0)
		a.B(arms.CondEQ, "done")
		a.Strb(arms.R1, arms.R0, 0)
		a.AddI(arms.R0, arms.R0, 1)
		a.SubI(arms.R2, arms.R2, 1)
		a.BAlways("loop")
		a.Label("done")
		a.MovR(arms.R0, arms.R12)
		a.BX(arms.LR)
		u.AddFuncARM("memset", a)
	}

	// strlen(s r0) -> r0.
	{
		a := arms.NewAsm()
		a.MovR(arms.R1, arms.R0)
		a.MovW(arms.R0, 0)
		a.Label("loop")
		a.Ldrb(arms.R2, arms.R1, 0)
		a.CmpI(arms.R2, 0)
		a.B(arms.CondEQ, "done")
		a.AddI(arms.R0, arms.R0, 1)
		a.AddI(arms.R1, arms.R1, 1)
		a.BAlways("loop")
		a.Label("done")
		a.BX(arms.LR)
		u.AddFuncARM("strlen", a)
	}

	// system(cmd r0).
	{
		a := arms.NewAsm()
		a.MovImm32(arms.R7, abi.SysSystem)
		a.Svc(0)
		a.BX(arms.LR)
		u.AddFuncARM("system", a)
	}

	// execlp(file r0, arg0 r1, ...).
	{
		a := arms.NewAsm()
		a.MovImm32(arms.R7, abi.SysExeclp)
		a.Svc(0)
		a.BX(arms.LR)
		u.AddFuncARM("execlp", a)
	}

	// execve(path r0, argv r1, envp r2).
	{
		a := arms.NewAsm()
		a.MovImm32(arms.R7, abi.SysExecve)
		a.Svc(0)
		a.BX(arms.LR)
		u.AddFuncARM("execve", a)
	}

	// exit(status r0).
	{
		a := arms.NewAsm()
		a.MovImm32(arms.R7, abi.SysExit)
		a.Svc(0)
		a.Label("spin")
		a.BAlways("spin")
		u.AddFuncARM("exit", a)
	}

	// write(fd r0, buf r1, n r2).
	{
		a := arms.NewAsm()
		a.MovImm32(arms.R7, abi.SysWrite)
		a.Svc(0)
		a.BX(arms.LR)
		u.AddFuncARM("write", a)
	}

	return u
}
