package victim_test

import (
	"bytes"
	"testing"

	"connlab/internal/isa"
	"connlab/internal/kernel"
	"connlab/internal/victim"
)

// dnsAnswerPacket frames encoded answer-name bytes as a minimal one-answer
// DNS response that survives the daemon's header pre-checks: QR set, one
// question ("a" IN A), one answer whose name is the given label run
// followed by the terminator and a zero-rdlength TXT body.
func dnsAnswerPacket(name []byte) []byte {
	pkt := []byte{0x13, 0x37, 0x80, 0, 0, 1, 0, 1, 0, 0, 0, 0}
	pkt = append(pkt, 1, 'a', 0, 0, 1, 0, 1)
	pkt = append(pkt, name...)
	pkt = append(pkt, 0)
	pkt = append(pkt, 0, 2, 0, 1, 0, 0, 0, 0, 0, 0)
	return pkt
}

// labelsOf returns an encoded label run of the given total length (a
// multiple of 64): maximal 63-byte labels of 'A'.
func labelsOf(t *testing.T, n int) []byte {
	t.Helper()
	if n%64 != 0 {
		t.Fatalf("labelsOf: %d not a multiple of 64", n)
	}
	lab := append([]byte{63}, bytes.Repeat([]byte{'A'}, 63)...)
	return bytes.Repeat(lab, n/64)
}

// TestFrameFPOffByOne drives the fp-framed off-by-one build end to end on
// both ISAs: a name that exactly fills the buffer slips its terminating
// NUL one byte past it (the slack the widened bound check forgives) into
// the saved frame pointer's low byte; the caller's next fp-relative
// dereference then walks attacker bytes and faults. One byte shorter is
// harmless; one label more is caught by the bound check.
func TestFrameFPOffByOne(t *testing.T) {
	opts := victim.BuildOpts{Frame: victim.FrameFP, Bounded: true, Slack: 1}
	bs := int(opts.BufSize())
	for _, arch := range []isa.Arch{isa.ArchX86S, isa.ArchARMS} {
		t.Run(string(arch), func(t *testing.T) {
			d, err := victim.NewDaemon(arch, opts, kernel.Config{})
			if err != nil {
				t.Fatal(err)
			}

			// Benign name: parses clean.
			res, err := d.HandleResponse(dnsAnswerPacket(labelsOf(t, 64)))
			if err != nil {
				t.Fatal(err)
			}
			if res.Status != kernel.StatusReturned || d.Crashed() {
				t.Fatalf("benign packet crashed fp build: %v", res)
			}

			// A long name whose last label is rejected before any write
			// reaches the buffer edge: 16 sixty-byte labels stop at offset
			// 976, then a 63-byte label fails the check (976+63+2 > bs+1).
			// The parser reports a bad response without corruption. (A run
			// of maximal labels is not a clean probe: the copy admitted at
			// offset 960 already plants its trailing byte at out[bs].)
			deep := append(bytes.Repeat(append([]byte{60}, bytes.Repeat([]byte{'A'}, 60)...), 16),
				labelsOf(t, 64)...)
			res, err = d.HandleResponse(dnsAnswerPacket(deep))
			if err != nil {
				t.Fatal(err)
			}
			if res.Status != kernel.StatusReturned || d.Crashed() {
				t.Fatalf("over-slack packet should be rejected, not crash: %v", res)
			}

			// Exactly the buffer size: terminator lands at buffer[bs], the
			// saved frame pointer's low byte, and the caller faults.
			res, err = d.HandleResponse(dnsAnswerPacket(labelsOf(t, bs)))
			if err != nil {
				t.Fatal(err)
			}
			if res.Status == kernel.StatusReturned || !d.Crashed() {
				t.Fatalf("off-by-one packet did not crash fp build: %v", res)
			}
		})
	}
}

// TestHeapAdjacentOverflow drives the heap-site build on both ISAs: the
// name buffer and the callback record are adjacent bump allocations, so
// an oversized name rewrites the record's handler slot and the dispatch
// after the copy jumps through attacker bytes.
func TestHeapAdjacentOverflow(t *testing.T) {
	opts := victim.BuildOpts{Site: victim.SiteHeap}
	bs := int(opts.BufSize())
	for _, arch := range []isa.Arch{isa.ArchX86S, isa.ArchARMS} {
		t.Run(string(arch), func(t *testing.T) {
			d, err := victim.NewDaemon(arch, opts, kernel.Config{})
			if err != nil {
				t.Fatal(err)
			}

			// Benign: record intact, dispatch hits cache_flush, clean parse —
			// repeatedly, since the arena rewinds per request.
			for i := 0; i < 3; i++ {
				res, err := d.HandleResponse(dnsAnswerPacket(labelsOf(t, 64)))
				if err != nil {
					t.Fatal(err)
				}
				if res.Status != kernel.StatusReturned || d.Crashed() {
					t.Fatalf("benign packet %d crashed heap build: %v", i, res)
				}
			}

			// Overflow through the record: the handler slot at the aligned
			// buffer size now holds label bytes and the dispatch faults.
			res, err := d.HandleResponse(dnsAnswerPacket(labelsOf(t, bs+64)))
			if err != nil {
				t.Fatal(err)
			}
			if res.Status == kernel.StatusReturned || !d.Crashed() {
				t.Fatalf("overflow packet did not crash heap build: %v", res)
			}
		})
	}
}

// TestValidateRejectsUnsupportedGeometry pins the validator's refusal
// matrix for fragment combinations the codegen does not support.
func TestValidateRejectsUnsupportedGeometry(t *testing.T) {
	bad := []victim.BuildOpts{
		{Site: victim.SiteHeap, Frame: victim.FrameFP},
		{Site: victim.SiteHeap, Canary: true},
		{Frame: victim.FrameFP, Canary: true},
		{Bounded: true, Patched: true},
		{Slack: 1},
	}
	for _, o := range bad {
		if err := o.Validate(); err == nil {
			t.Errorf("Validate(%+v) = nil, want error", o)
		}
		if _, err := victim.BuildProgram(isa.ArchX86S, o); err == nil {
			t.Errorf("BuildProgram(%+v) = nil error, want rejection", o)
		}
	}
	good := []victim.BuildOpts{
		{},
		{Frame: victim.FrameFP, Bounded: true, Slack: 1},
		{Site: victim.SiteHeap},
		{Variant: victim.VariantDnsmasq, Canary: true, Patched: true},
	}
	for _, o := range good {
		if err := o.Validate(); err != nil {
			t.Errorf("Validate(%+v) = %v, want nil", o, err)
		}
	}
}

// TestFrameModelGeometry pins the compiled ground truth for the new
// geometries against hand-computed layout facts.
func TestFrameModelGeometry(t *testing.T) {
	fp := victim.BuildOpts{Frame: victim.FrameFP, Bounded: true, Slack: 1}
	for _, arch := range []isa.Arch{isa.ArchX86S, isa.ArchARMS} {
		fi := victim.FrameModel(arch, fp)
		if fi.RetOffset != victim.NameBufSize || fi.Reach != victim.NameBufSize+1 {
			t.Errorf("%s fp: got %+v", arch, fi)
		}
		heap := victim.FrameModel(arch, victim.BuildOpts{Site: victim.SiteHeap})
		if heap.RetOffset != victim.NameBufSize || heap.Reach != 0 || len(heap.NullOffsets) != 0 {
			t.Errorf("%s heap: got %+v", arch, heap)
		}
	}
	// Legacy geometry still flows through the same model.
	if got := victim.RetOffsetFor(isa.ArchX86S, victim.BuildOpts{}); got != victim.X86RetOffset {
		t.Errorf("x86 legacy ret offset = %d", got)
	}
	if got := victim.NullOffsetsFor(isa.ArchARMS, victim.BuildOpts{}); len(got) != 1 || got[0] != victim.ARMNullOffset {
		t.Errorf("arm legacy null offsets = %v", got)
	}
}
