package victim

import (
	"connlab/internal/abi"
	"connlab/internal/isa"
	"connlab/internal/isa/x86s"
)

// fragmentsX86 selects the x86s fragment composition for opts.
//
// parse_rr stack frame (no canary):
//
//	[ebp+12] p          [ebp+8] pkt
//	[ebp+4]  saved eip  [ebp]   saved ebp
//	[ebp-1024 .. ebp-1] name[1024]      <- overflow runs upward from here
//	[ebp-1028]          name_len
//	[ebp-1032]          rdlen
//
// so the copy overruns name into saved ebp at offset 1024 and the return
// address at offset 1028 (X86RetOffset). With canaries the guard word sits
// between the buffer and saved ebp. FrameFP builds keep this parse_rr
// frame — its saved ebp IS the clobber site — and swap in the
// frame-pointer-sensitive parse_response. SiteHeap builds swap parse_rr
// for the arena-allocating variant and add the allocator fragments.
func fragmentsX86(opts BuildOpts) []Fragment {
	parseResponse := Fragment{Name: "parse_response", Role: "parser",
		X86: func(o BuildOpts) *x86s.Asm { return buildParseResponseX86(o.Site == SiteHeap) }}
	if opts.Frame == FrameFP {
		parseResponse = Fragment{Name: "parse_response", Role: "parser",
			X86: func(BuildOpts) *x86s.Asm { return buildParseResponseFPX86() }}
	}
	parseRR := Fragment{Name: "parse_rr", Role: "frame", X86: buildParseRRX86}
	if opts.Site == SiteHeap {
		parseRR = Fragment{Name: "parse_rr", Role: "frame", X86: buildParseRRHeapX86}
	}
	fr := make([]Fragment, 0, 8)
	fr = append(fr,
		parseResponse,
		parseRR,
		Fragment{Name: "get_name", Role: "copy-loop", X86: buildGetNameX86},
		Fragment{Name: "spawn_resolver", Role: "support",
			X86: func(BuildOpts) *x86s.Asm { return buildSpawnResolverX86() }},
		Fragment{Name: "log_error", Role: "support",
			X86: func(BuildOpts) *x86s.Asm { return buildLogErrorX86() }},
	)
	if opts.Site == SiteHeap {
		fr = append(fr,
			Fragment{Name: "malloc", Role: "allocator",
				X86: func(BuildOpts) *x86s.Asm { return buildMallocX86() }},
			Fragment{Name: "cache_flush", Role: "dispatcher",
				X86: func(BuildOpts) *x86s.Asm { return buildCacheFlushX86() }},
		)
	}
	fr = append(fr, Fragment{Name: "__stack_chk_fail", Role: "support",
		X86: func(BuildOpts) *x86s.Asm { return buildStackChkFailX86() }})
	return fr
}

// buildParseResponseX86 emits the top-level response parser: header flag
// check, question skip, then one parse_rr call per answer record. With
// arenaReset the prologue rewinds the bump allocator's cursor, modeling a
// per-request scratch arena.
func buildParseResponseX86(arenaReset bool) *x86s.Asm {
	a := x86s.NewAsm()
	a.PushR(x86s.EBP).MovRR(x86s.EBP, x86s.ESP)
	a.PushR(x86s.ESI).PushR(x86s.EDI).PushR(x86s.EBX)
	a.MovRM(x86s.ESI, x86s.EBP, 8) // pkt
	if arenaReset {
		a.MovRI(x86s.EAX, heapArenaBase(isa.ArchX86S))
		a.MovMRAbsSym("heap_cursor", 0, x86s.EAX)
	}

	// QR bit: pkt[2] & 0x80 must be set (a response).
	a.Movzx8M(x86s.EAX, x86s.ESI, 2)
	a.AndRI(x86s.EAX, 0x80)
	a.TestRR(x86s.EAX, x86s.EAX)
	a.Jcc(x86s.CondE, "bad")

	// ancount = pkt[6]<<8 | pkt[7].
	a.Movzx8M(x86s.EDI, x86s.ESI, 6)
	a.ShlRI(x86s.EDI, 8)
	a.Movzx8M(x86s.EAX, x86s.ESI, 7)
	a.AddRR(x86s.EDI, x86s.EAX)

	// Skip the question name starting at pkt+12.
	a.Lea(x86s.ECX, x86s.ESI, 12)
	a.Label("skipq")
	a.Movzx8M(x86s.EAX, x86s.ECX, 0)
	a.TestRR(x86s.EAX, x86s.EAX)
	a.Jcc(x86s.CondE, "qdone")
	a.MovRR(x86s.EDX, x86s.EAX)
	a.AndRI(x86s.EDX, 0xC0)
	a.CmpRI(x86s.EDX, 0xC0)
	a.Jcc(x86s.CondE, "qptr")
	a.Lea(x86s.ECX, x86s.ECX, 1)
	a.AddRR(x86s.ECX, x86s.EAX)
	a.Jmp("skipq")
	a.Label("qptr")
	a.AddRI(x86s.ECX, 2)
	a.Jmp("qdone2")
	a.Label("qdone")
	a.IncR(x86s.ECX)
	a.Label("qdone2")
	a.AddRI(x86s.ECX, 4) // qtype + qclass
	a.MovRR(x86s.EBX, x86s.ECX)

	// Answer loop.
	a.Label("aloop")
	a.TestRR(x86s.EDI, x86s.EDI)
	a.Jcc(x86s.CondE, "ok")
	a.PushR(x86s.EBX)
	a.PushR(x86s.ESI)
	a.CallSym("parse_rr")
	a.AddRI(x86s.ESP, 8)
	a.TestRR(x86s.EAX, x86s.EAX)
	a.Jcc(x86s.CondE, "bad")
	a.MovRR(x86s.EBX, x86s.EAX)
	a.DecR(x86s.EDI)
	a.Jmp("aloop")

	a.Label("ok")
	a.XorRR(x86s.EAX, x86s.EAX)
	a.Jmp("ret")
	a.Label("bad")
	a.MovRI(x86s.EAX, 0xFFFFFFFF)
	a.Label("ret")
	a.PopR(x86s.EBX).PopR(x86s.EDI).PopR(x86s.ESI).PopR(x86s.EBP).Ret()
	return a
}

// buildParseResponseFPX86 is the frame-pointer-sensitive top-level
// parser: it keeps a query-table pointer in an ebp-relative local and
// reloads it through ebp after every parse_rr call. parse_rr's saved ebp
// adjoins the name buffer, so an off-by-one NUL clobber of that slot
// rounds this function's frame pointer down up to 255 bytes — into the
// attacker-filled dead frame — and the reload dereferences attacker
// bytes.
func buildParseResponseFPX86() *x86s.Asm {
	a := x86s.NewAsm()
	a.PushR(x86s.EBP).MovRR(x86s.EBP, x86s.ESP)
	a.PushR(x86s.ESI).PushR(x86s.EDI).PushR(x86s.EBX)
	a.SubRI(x86s.ESP, 4) // [ebp-16]: cached &query_table
	a.MovRISym(x86s.EAX, "query_table", 0)
	a.MovMR(x86s.EBP, -16, x86s.EAX)
	a.MovRM(x86s.ESI, x86s.EBP, 8) // pkt

	// QR bit.
	a.Movzx8M(x86s.EAX, x86s.ESI, 2)
	a.AndRI(x86s.EAX, 0x80)
	a.TestRR(x86s.EAX, x86s.EAX)
	a.Jcc(x86s.CondE, "bad")

	// ancount = pkt[6]<<8 | pkt[7].
	a.Movzx8M(x86s.EDI, x86s.ESI, 6)
	a.ShlRI(x86s.EDI, 8)
	a.Movzx8M(x86s.EAX, x86s.ESI, 7)
	a.AddRR(x86s.EDI, x86s.EAX)

	// Skip the question name starting at pkt+12.
	a.Lea(x86s.ECX, x86s.ESI, 12)
	a.Label("skipq")
	a.Movzx8M(x86s.EAX, x86s.ECX, 0)
	a.TestRR(x86s.EAX, x86s.EAX)
	a.Jcc(x86s.CondE, "qdone")
	a.MovRR(x86s.EDX, x86s.EAX)
	a.AndRI(x86s.EDX, 0xC0)
	a.CmpRI(x86s.EDX, 0xC0)
	a.Jcc(x86s.CondE, "qptr")
	a.Lea(x86s.ECX, x86s.ECX, 1)
	a.AddRR(x86s.ECX, x86s.EAX)
	a.Jmp("skipq")
	a.Label("qptr")
	a.AddRI(x86s.ECX, 2)
	a.Jmp("qdone2")
	a.Label("qdone")
	a.IncR(x86s.ECX)
	a.Label("qdone2")
	a.AddRI(x86s.ECX, 4)
	a.MovRR(x86s.EBX, x86s.ECX)

	// Answer loop with the fp-sensitive touch after each record.
	a.Label("aloop")
	a.TestRR(x86s.EDI, x86s.EDI)
	a.Jcc(x86s.CondE, "ok")
	a.PushR(x86s.EBX)
	a.PushR(x86s.ESI)
	a.CallSym("parse_rr")
	a.AddRI(x86s.ESP, 8)
	a.TestRR(x86s.EAX, x86s.EAX)
	a.Jcc(x86s.CondE, "bad")
	a.MovRR(x86s.EBX, x86s.EAX)
	// Account the answer in the query table, addressed through ebp.
	a.MovRM(x86s.EDX, x86s.EBP, -16)
	a.MovRM(x86s.EDX, x86s.EDX, 0)
	a.DecR(x86s.EDI)
	a.Jmp("aloop")

	a.Label("ok")
	a.XorRR(x86s.EAX, x86s.EAX)
	a.Jmp("ret")
	a.Label("bad")
	a.MovRI(x86s.EAX, 0xFFFFFFFF)
	a.Label("ret")
	// ebp-relative epilogue, as -fno-omit-frame-pointer code has.
	a.Lea(x86s.ESP, x86s.EBP, -12)
	a.PopR(x86s.EBX).PopR(x86s.EDI).PopR(x86s.ESI).PopR(x86s.EBP).Ret()
	return a
}

// buildParseRRX86 emits the answer-record parser owning the stack name
// buffer — the frame the exploits smash. The dnsmasq variant has a
// smaller buffer and two extra scratch locals below it, shifting every
// offset an attacker must rediscover.
func buildParseRRX86(opts BuildOpts) *x86s.Asm {
	bs := opts.BufSize()
	var canaryPad int32
	if opts.Canary {
		canaryPad = 4
	}
	var extra int32
	if opts.Variant == VariantDnsmasq {
		extra = 8
	}
	nameOff := -(bs + canaryPad)
	nlOff := nameOff - 4
	rdOff := nameOff - 8
	frame := bs + canaryPad + 8 + extra

	a := x86s.NewAsm()
	a.PushR(x86s.EBP).MovRR(x86s.EBP, x86s.ESP)
	a.SubRI(x86s.ESP, frame)
	if opts.Canary {
		a.MovRMAbsSym(x86s.EAX, "__stack_chk_guard", 0)
		a.MovMR(x86s.EBP, -4, x86s.EAX)
	}
	a.MovMI(x86s.EBP, nlOff, 0) // name_len = 0

	// get_name(pkt, p, name, &name_len)
	a.Lea(x86s.EAX, x86s.EBP, nlOff)
	a.PushR(x86s.EAX)
	a.Lea(x86s.EAX, x86s.EBP, nameOff)
	a.PushR(x86s.EAX)
	a.PushM(x86s.EBP, 12)
	a.PushM(x86s.EBP, 8)
	a.CallSym("get_name")
	a.AddRI(x86s.ESP, 16)
	a.TestRR(x86s.EAX, x86s.EAX)
	a.Jcc(x86s.CondE, "fail")
	a.MovRR(x86s.ECX, x86s.EAX) // p after name

	// rdlen = p[8]<<8 | p[9].
	a.Movzx8M(x86s.EAX, x86s.ECX, 8)
	a.ShlRI(x86s.EAX, 8)
	a.Movzx8M(x86s.EDX, x86s.ECX, 9)
	a.AddRR(x86s.EAX, x86s.EDX)
	a.MovMR(x86s.EBP, rdOff, x86s.EAX)

	// Cache type A answers: memcpy(dns_cache, name, 64).
	a.Movzx8M(x86s.EDX, x86s.ECX, 1)
	a.CmpRI(x86s.EDX, 1)
	a.Jcc(x86s.CondNE, "skipcache")
	a.Movzx8M(x86s.EDX, x86s.ECX, 0)
	a.TestRR(x86s.EDX, x86s.EDX)
	a.Jcc(x86s.CondNE, "skipcache")
	a.PushR(x86s.ECX) // save p across the call
	a.PushI(64)
	a.Lea(x86s.EDX, x86s.EBP, nameOff)
	a.PushR(x86s.EDX)
	a.PushISym("dns_cache", 0)
	a.CallSym("memcpy@plt")
	a.AddRI(x86s.ESP, 12)
	a.PopR(x86s.ECX)
	a.Label("skipcache")

	// return p + 10 + rdlen
	a.Lea(x86s.EAX, x86s.ECX, 10)
	a.MovRM(x86s.EDX, x86s.EBP, rdOff)
	a.AddRR(x86s.EAX, x86s.EDX)
	a.Jmp("done")
	a.Label("fail")
	a.XorRR(x86s.EAX, x86s.EAX)
	a.Label("done")
	if opts.Canary {
		a.MovRM(x86s.EDX, x86s.EBP, -4)
		a.MovRMAbsSym(x86s.ECX, "__stack_chk_guard", 0)
		a.CmpRR(x86s.EDX, x86s.ECX)
		a.Jcc(x86s.CondNE, "smash")
	}
	a.Leave().Ret()
	if opts.Canary {
		a.Label("smash")
		a.CallSym("__stack_chk_fail")
	}
	return a
}

// buildParseRRHeapX86 is the heap-site answer parser: the name buffer and
// an adjacent callback record both come from the bump allocator, so the
// unchecked copy runs out of the buffer straight into the record's
// handler slot. The dispatcher then calls whatever pointer is there —
// cache_flush when intact, the attacker's word after an overflow.
func buildParseRRHeapX86(opts BuildOpts) *x86s.Asm {
	bs := opts.BufSize()

	a := x86s.NewAsm()
	a.PushR(x86s.EBP).MovRR(x86s.EBP, x86s.ESP)
	a.PushR(x86s.ESI).PushR(x86s.EDI).PushR(x86s.EBX)
	a.SubRI(x86s.ESP, 4) // [ebp-16]: name_len

	// name = malloc(bs); rec = malloc(16); rec->flush = cache_flush.
	a.PushI(uint32(bs))
	a.CallSym("malloc")
	a.AddRI(x86s.ESP, 4)
	a.MovRR(x86s.ESI, x86s.EAX) // esi = name
	a.PushI(heapRecordSize)
	a.CallSym("malloc")
	a.AddRI(x86s.ESP, 4)
	a.MovRR(x86s.EDI, x86s.EAX) // edi = rec
	a.MovRISym(x86s.EAX, "cache_flush", 0)
	a.MovMR(x86s.EDI, 0, x86s.EAX)
	a.MovMI(x86s.EBP, -16, 0) // name_len = 0

	// get_name(pkt, p, name, &name_len)
	a.Lea(x86s.EAX, x86s.EBP, -16)
	a.PushR(x86s.EAX)
	a.PushR(x86s.ESI)
	a.PushM(x86s.EBP, 12)
	a.PushM(x86s.EBP, 8)
	a.CallSym("get_name")
	a.AddRI(x86s.ESP, 16)
	a.TestRR(x86s.EAX, x86s.EAX)
	a.Jcc(x86s.CondE, "fail")
	a.MovRR(x86s.EBX, x86s.EAX) // p after name

	// rec->flush(name): release the record's cache entry.
	a.MovRM(x86s.EDX, x86s.EDI, 0)
	a.PushR(x86s.ESI)
	a.CallR(x86s.EDX)
	a.AddRI(x86s.ESP, 4)

	// return p + 10 + rdlen, rdlen = p[8]<<8 | p[9].
	a.Movzx8M(x86s.EDX, x86s.EBX, 8)
	a.ShlRI(x86s.EDX, 8)
	a.Movzx8M(x86s.EAX, x86s.EBX, 9)
	a.AddRR(x86s.EDX, x86s.EAX)
	a.Lea(x86s.EAX, x86s.EBX, 10)
	a.AddRR(x86s.EAX, x86s.EDX)
	a.Jmp("done")
	a.Label("fail")
	a.XorRR(x86s.EAX, x86s.EAX)
	a.Label("done")
	a.AddRI(x86s.ESP, 4)
	a.PopR(x86s.EBX).PopR(x86s.EDI).PopR(x86s.ESI).PopR(x86s.EBP).Ret()
	return a
}

// buildMallocX86 is the emulated allocator: a bump pointer over the heap
// arena, 8-aligning each request. No headers, no free — exactly the
// adjacency the heap overflow scenario needs.
func buildMallocX86() *x86s.Asm {
	a := x86s.NewAsm()
	a.PushR(x86s.EBP).MovRR(x86s.EBP, x86s.ESP)
	a.MovRM(x86s.ECX, x86s.EBP, 8) // size
	a.AddRI(x86s.ECX, 7)
	a.ShrRI(x86s.ECX, 3)
	a.ShlRI(x86s.ECX, 3)
	a.MovRMAbsSym(x86s.EAX, "heap_cursor", 0)
	a.MovRR(x86s.EDX, x86s.EAX)
	a.AddRR(x86s.EDX, x86s.ECX)
	a.MovMRAbsSym("heap_cursor", 0, x86s.EDX)
	a.PopR(x86s.EBP).Ret()
	return a
}

// buildCacheFlushX86 is the benign callback the heap record points at: it
// reads the cache head and returns.
func buildCacheFlushX86() *x86s.Asm {
	a := x86s.NewAsm()
	a.PushR(x86s.EBP).MovRR(x86s.EBP, x86s.ESP)
	a.MovRMAbsSym(x86s.EAX, "dns_cache", 0)
	a.PopR(x86s.EBP).Ret()
	return a
}

// buildGetNameX86 emits the DNS name decompressor. The unpatched variant
// reproduces paper Listing 1: the length byte and then label_len+1 bytes
// are copied into the caller's buffer with no bound check. The patched
// variant adds the 1.35 check and bails out with 0; Bounded builds emit
// the same check widened by Slack bytes (the off-by-one analog).
func buildGetNameX86(opts BuildOpts) *x86s.Asm {
	checked, limit := opts.boundCheck()

	a := x86s.NewAsm()
	a.PushR(x86s.EBP).MovRR(x86s.EBP, x86s.ESP)
	a.PushR(x86s.ESI).PushR(x86s.EDI).PushR(x86s.EBX)
	a.SubRI(x86s.ESP, 4)            // [ebp-16]: end (position after the
	a.MovMI(x86s.EBP, -16, 0)       // name in the original record)
	a.MovRM(x86s.ESI, x86s.EBP, 12) // p
	a.MovRM(x86s.EBX, x86s.EBP, 8)  // pkt

	a.Label("loop")
	a.Movzx8M(x86s.EAX, x86s.ESI, 0)
	a.TestRR(x86s.EAX, x86s.EAX)
	a.Jcc(x86s.CondE, "finish")
	a.MovRR(x86s.ECX, x86s.EAX)
	a.AndRI(x86s.ECX, 0xC0)
	a.CmpRI(x86s.ECX, 0xC0)
	a.Jcc(x86s.CondE, "pointer")

	if checked {
		// 1.35 fix: if (name_len + label_len + 2 > sizeof(name)) return 0;
		a.MovRM(x86s.EDX, x86s.EBP, 20)
		a.MovRM(x86s.ECX, x86s.EDX, 0)
		a.AddRR(x86s.ECX, x86s.EAX)
		a.AddRI(x86s.ECX, 2)
		a.CmpRI(x86s.ECX, limit)
		a.Jcc(x86s.CondG, "bounds")
	}

	// name[(*name_len)++] = label_len;           (Listing 1, line 0)
	a.MovRM(x86s.EDX, x86s.EBP, 20) // name_len ptr
	a.MovRM(x86s.ECX, x86s.EDX, 0)  // name_len
	a.MovRM(x86s.EDI, x86s.EBP, 16) // name
	a.AddRR(x86s.EDI, x86s.ECX)     // name + name_len
	a.MovMR8(x86s.EDI, 0, x86s.EAX) // [edi] = al
	a.IncR(x86s.ECX)
	a.MovMR(x86s.EDX, 0, x86s.ECX)

	// memcpy(name + *name_len, p + 1, label_len + 1);   (Listing 1, line 1)
	a.IncR(x86s.EAX) // label_len + 1
	a.PushR(x86s.EAX)
	a.Lea(x86s.EAX, x86s.ESI, 1)
	a.PushR(x86s.EAX)
	a.Lea(x86s.EAX, x86s.EDI, 1)
	a.PushR(x86s.EAX)
	a.CallSym("memcpy@plt")
	a.AddRI(x86s.ESP, 12)

	// *name_len += label_len;                    (Listing 1, line 2)
	a.Movzx8M(x86s.EAX, x86s.ESI, 0)
	a.MovRM(x86s.EDX, x86s.EBP, 20)
	a.MovRM(x86s.ECX, x86s.EDX, 0)
	a.AddRR(x86s.ECX, x86s.EAX)
	a.MovMR(x86s.EDX, 0, x86s.ECX)

	// p += label_len + 1.
	a.Lea(x86s.ESI, x86s.ESI, 1)
	a.AddRR(x86s.ESI, x86s.EAX)
	a.Jmp("loop")

	// Compression pointer: remember where the record resumes (first
	// pointer only), then p = pkt + ((c & 0x3F) << 8 | p[1]).
	a.Label("pointer")
	a.MovRM(x86s.ECX, x86s.EBP, -16)
	a.TestRR(x86s.ECX, x86s.ECX)
	a.Jcc(x86s.CondNE, "jumped")
	a.Lea(x86s.ECX, x86s.ESI, 2)
	a.MovMR(x86s.EBP, -16, x86s.ECX)
	a.Label("jumped")
	a.AndRI(x86s.EAX, 0x3F)
	a.ShlRI(x86s.EAX, 8)
	a.Movzx8M(x86s.ECX, x86s.ESI, 1)
	a.AddRR(x86s.EAX, x86s.ECX)
	a.MovRR(x86s.ESI, x86s.EBX)
	a.AddRR(x86s.ESI, x86s.EAX)
	a.Jmp("loop")

	a.Label("finish")
	a.MovRM(x86s.EAX, x86s.EBP, -16)
	a.TestRR(x86s.EAX, x86s.EAX)
	a.Jcc(x86s.CondNE, "out")    // return the saved end after a pointer
	a.Lea(x86s.EAX, x86s.ESI, 1) // otherwise p past the terminator
	a.Jmp("out")
	if checked {
		a.Label("bounds")
		a.XorRR(x86s.EAX, x86s.EAX)
		a.Jmp("out")
	}
	a.Label("out")
	a.AddRI(x86s.ESP, 4)
	a.PopR(x86s.EBX).PopR(x86s.EDI).PopR(x86s.ESI).PopR(x86s.EBP).Ret()
	return a
}

// buildSpawnResolverX86 gives the binary its execlp import (Connman spawns
// helper processes), which the ROP chains reuse via execlp@plt.
func buildSpawnResolverX86() *x86s.Asm {
	a := x86s.NewAsm()
	a.PushR(x86s.EBP).MovRR(x86s.EBP, x86s.ESP)
	a.PushI(0)
	a.PushISym("str_helper", 0)
	a.PushISym("str_helper", 0)
	a.CallSym("execlp@plt")
	a.AddRI(x86s.ESP, 12)
	a.PopR(x86s.EBP).Ret()
	return a
}

// buildLogErrorX86 writes a diagnostic string to fd 2; it exists to pull
// in the strlen/write imports and some realistic code.
func buildLogErrorX86() *x86s.Asm {
	a := x86s.NewAsm()
	a.PushR(x86s.EBP).MovRR(x86s.EBP, x86s.ESP)
	a.PushM(x86s.EBP, 8)
	a.CallSym("strlen@plt")
	a.AddRI(x86s.ESP, 4)
	a.PushR(x86s.EAX)
	a.PushM(x86s.EBP, 8)
	a.PushI(2)
	a.CallSym("write@plt")
	a.AddRI(x86s.ESP, 12)
	a.PopR(x86s.EBP).Ret()
	return a
}

// buildStackChkFailX86 is the canary failure path: abort, never return.
func buildStackChkFailX86() *x86s.Asm {
	a := x86s.NewAsm()
	a.MovRI(x86s.EAX, abi.SysAbort)
	a.IntN(0x80)
	a.Label("spin")
	a.Jmp("spin")
	return a
}
