package victim

import (
	"bytes"
	"fmt"

	"connlab/internal/image"
	"connlab/internal/isa"
	"connlab/internal/isa/x86s"
	"connlab/internal/kernel"
)

// HTTPBufSize is the request-line URI buffer in the HTTP victim.
const HTTPBufSize = 256

// BuildHTTPProgram assembles the §V protocol-transfer victim: a tiny
// embedded HTTP request handler (the CVE-2019-8985 class) whose request
// line is copied into a 256-byte stack buffer with no bound — a classic
// string-copy overflow. Unlike the DNS victims, the copy stops at NUL or
// CR, so payloads must be zero-free: a different packet-crafting
// discipline on the same exploit engine, which is exactly the paper's §V
// argument.
func BuildHTTPProgram() (*image.Unit, error) {
	u := image.NewUnit(isa.ArchX86S)
	u.Import("memcpy", "strlen", "write", "execlp", "exit", "memset")

	// handle_request(req, len): verify "GET ", copy the URI until CR/NUL
	// into uri[256], NUL-terminate.
	a := x86s.NewAsm()
	a.PushR(x86s.EBP).MovRR(x86s.EBP, x86s.ESP)
	a.SubRI(x86s.ESP, HTTPBufSize+8)
	a.MovRM(x86s.EDX, x86s.EBP, 8) // req
	for i, ch := range []byte("GET ") {
		a.Movzx8M(x86s.EAX, x86s.EDX, int32(i))
		a.CmpRI(x86s.EAX, int32(ch))
		a.Jcc(x86s.CondNE, "bad")
	}
	a.Lea(x86s.EDX, x86s.EDX, 4)
	a.Lea(x86s.ECX, x86s.EBP, -HTTPBufSize)
	a.Label("copy")
	a.Movzx8M(x86s.EAX, x86s.EDX, 0)
	a.TestRR(x86s.EAX, x86s.EAX)
	a.Jcc(x86s.CondE, "done")
	a.CmpRI(x86s.EAX, 0x0D) // CR ends the request line
	a.Jcc(x86s.CondE, "done")
	a.MovMR8(x86s.ECX, 0, x86s.EAX) // *uri++ = *p++  (no bound check)
	a.IncR(x86s.ECX)
	a.IncR(x86s.EDX)
	a.Jmp("copy")
	a.Label("done")
	a.MovMI8(x86s.ECX, 0, 0)
	a.XorRR(x86s.EAX, x86s.EAX)
	a.Leave().Ret()
	a.Label("bad")
	a.MovRI(x86s.EAX, 0xFFFFFFFF)
	a.Leave().Ret()
	u.AddFuncX86("handle_request", a)

	u.AddFuncX86("spawn_resolver", buildSpawnResolverX86())
	u.AddFuncX86("log_error", buildLogErrorX86())
	if err := u.Err(); err != nil {
		return nil, fmt.Errorf("build http victim: %w", err)
	}
	u.AddBSS("resp_buf", 1024)
	u.AddRodata("str_banner", []byte("iotcam-httpd/1.12\x00"))
	u.AddRodata("str_index", []byte("/index.html\x00"))
	u.AddRodata("str_helper", []byte("iotcam-watchdog\x00"))
	return u, nil
}

// HTTPRetOffset is the ground-truth distance from the URI buffer to the
// saved return address (buffer at ebp-256, eip at ebp+4).
const HTTPRetOffset = HTTPBufSize + 4

// HTTPDaemon wraps the HTTP victim the way Daemon wraps the DNS proxy.
type HTTPDaemon struct {
	proc    *kernel.Process
	crashed bool
	last    kernel.RunResult
}

// NewHTTPDaemon loads the HTTP victim under a protection configuration.
func NewHTTPDaemon(cfg kernel.Config) (*HTTPDaemon, error) {
	prog, err := BuildHTTPProgram()
	if err != nil {
		return nil, err
	}
	libc, err := image.BuildLibc(isa.ArchX86S)
	if err != nil {
		return nil, err
	}
	proc, err := kernel.Load(prog, libc, cfg)
	if err != nil {
		return nil, err
	}
	return &HTTPDaemon{proc: proc}, nil
}

// Process exposes the underlying process.
func (d *HTTPDaemon) Process() *kernel.Process { return d.proc }

// Crashed reports whether the daemon died.
func (d *HTTPDaemon) Crashed() bool { return d.crashed }

// LastResult returns the most recent handler result.
func (d *HTTPDaemon) LastResult() kernel.RunResult { return d.last }

// HandleRequest runs one HTTP request through the emulated handler.
func (d *HTTPDaemon) HandleRequest(req []byte) (kernel.RunResult, error) {
	if d.crashed {
		return kernel.RunResult{}, fmt.Errorf("http daemon: already crashed: %v", d.last)
	}
	if len(req) > maxPacket {
		return kernel.RunResult{}, fmt.Errorf("http daemon: request too large (%d bytes)", len(req))
	}
	if !bytes.HasPrefix(req, []byte("GET ")) {
		return kernel.RunResult{}, fmt.Errorf("http daemon: unsupported method")
	}
	addr := d.proc.HeapBase()
	if f := d.proc.Mem().WriteBytes(addr, append(req, 0)); f != nil {
		return kernel.RunResult{}, fmt.Errorf("http daemon: stage request: %w", f)
	}
	res, err := d.proc.Call("handle_request", addr, uint32(len(req)))
	if err != nil {
		return kernel.RunResult{}, err
	}
	d.last = res
	if res.Status != kernel.StatusReturned {
		d.crashed = true
	}
	return res, nil
}
