package victim

import (
	"bytes"
	"testing"

	"connlab/internal/dns"
	"connlab/internal/isa"
	"connlab/internal/kernel"
)

// benignResponse builds a normal Type A response to a query.
func benignResponse(t *testing.T, q *dns.Message) []byte {
	t.Helper()
	resp := dns.NewResponse(q)
	resp.Answers = []dns.RR{dns.A(q.Questions[0].Name, 300, [4]byte{93, 184, 216, 34})}
	b, err := resp.Encode()
	if err != nil {
		t.Fatalf("encode: %v", err)
	}
	return b
}

// overflowResponse builds a response whose answer NAME is an oversized
// label stream: n labels of labelLen filler bytes each.
func overflowResponse(t *testing.T, q *dns.Message, labels, labelLen int, fill byte) []byte {
	t.Helper()
	var raw []byte
	for i := 0; i < labels; i++ {
		raw = append(raw, byte(labelLen))
		raw = append(raw, bytes.Repeat([]byte{fill}, labelLen)...)
	}
	raw = append(raw, 0)
	resp := dns.NewResponse(q)
	resp.Answers = []dns.RR{{
		RawName: raw, Type: dns.TypeA, Class: dns.ClassIN, TTL: 300,
		Data: []byte{10, 0, 0, 1},
	}}
	b, err := resp.Encode()
	if err != nil {
		t.Fatalf("encode: %v", err)
	}
	return b
}

func query() *dns.Message {
	return dns.NewQuery(0x1234, "iot.example.com", dns.TypeA)
}

func TestBenignResponseParsesOnBothArchitectures(t *testing.T) {
	for _, arch := range []isa.Arch{isa.ArchX86S, isa.ArchARMS} {
		for _, patched := range []bool{false, true} {
			name := string(arch) + "/patched=" + boolStr(patched)
			t.Run(name, func(t *testing.T) {
				d, err := NewDaemon(arch, BuildOpts{Patched: patched}, kernel.Config{Seed: 1})
				if err != nil {
					t.Fatalf("daemon: %v", err)
				}
				res, err := d.HandleResponse(benignResponse(t, query()))
				if err != nil {
					t.Fatalf("handle: %v", err)
				}
				if res.Status != kernel.StatusReturned {
					t.Fatalf("status = %v (%v), want returned", res.Status, res)
				}
				if res.RetVal != 0 {
					t.Errorf("parse_response = %#x, want 0", res.RetVal)
				}
				if d.Crashed() {
					t.Error("daemon crashed on a benign response")
				}
			})
		}
	}
}

// TestE1OverflowCrashesVulnerableOnly is experiment E1: the oversized
// Type A response crashes Connman 1.34 (DoS) and is rejected by 1.35.
func TestE1OverflowCrashesVulnerableOnly(t *testing.T) {
	for _, arch := range []isa.Arch{isa.ArchX86S, isa.ArchARMS} {
		t.Run(string(arch), func(t *testing.T) {
			pkt := overflowResponse(t, query(), 30, 63, 'A') // ~1920 bytes of name

			vuln, err := NewDaemon(arch, BuildOpts{}, kernel.Config{Seed: 1})
			if err != nil {
				t.Fatalf("daemon: %v", err)
			}
			res, err := vuln.HandleResponse(pkt)
			if err != nil {
				t.Fatalf("handle: %v", err)
			}
			if !res.Crashed() {
				t.Fatalf("vulnerable build survived the overflow: %v", res)
			}
			if !vuln.Crashed() {
				t.Error("daemon not marked crashed")
			}

			patched, err := NewDaemon(arch, BuildOpts{Patched: true}, kernel.Config{Seed: 1})
			if err != nil {
				t.Fatalf("daemon: %v", err)
			}
			res, err = patched.HandleResponse(pkt)
			if err != nil {
				t.Fatalf("handle: %v", err)
			}
			if res.Status != kernel.StatusReturned {
				t.Fatalf("patched build did not survive: %v", res)
			}
			// parse_response reports the malformed record as an error (-1).
			if res.RetVal != 0xFFFFFFFF {
				t.Errorf("patched parse_response = %#x, want -1", res.RetVal)
			}
		})
	}
}

// TestCanaryConvertsHijackToAbort: with stack protectors on, the overflow
// is detected at function exit.
func TestCanaryConvertsHijackToAbort(t *testing.T) {
	for _, arch := range []isa.Arch{isa.ArchX86S, isa.ArchARMS} {
		t.Run(string(arch), func(t *testing.T) {
			d, err := NewDaemon(arch, BuildOpts{Canary: true}, kernel.Config{Seed: 1})
			if err != nil {
				t.Fatalf("daemon: %v", err)
			}
			// 17 labels of 62 zero bytes: 1071 stream bytes — past the
			// canary, within the mapped stack, and (for arms) the bytes
			// landing on the cache-entry pointer are NULL so execution
			// survives to the canary check, as the paper's ARM payloads
			// had to arrange.
			res, err := d.HandleResponse(overflowResponse(t, query(), 17, 62, 0))
			if err != nil {
				t.Fatalf("handle: %v", err)
			}
			if res.Status != kernel.StatusAborted {
				t.Fatalf("status = %v (%v), want canary abort", res.Status, res)
			}
		})
	}
}

func TestDaemonRejectsNonResponses(t *testing.T) {
	d, err := NewDaemon(isa.ArchX86S, BuildOpts{}, kernel.Config{Seed: 1})
	if err != nil {
		t.Fatalf("daemon: %v", err)
	}
	q, _ := query().Encode()
	if _, err := d.HandleResponse(q); err == nil {
		t.Error("daemon accepted a query as a response")
	}
	if _, err := d.HandleResponse([]byte{1, 2, 3}); err == nil {
		t.Error("daemon accepted a truncated packet")
	}
	if d.Handled() != 0 {
		t.Errorf("handled = %d, want 0", d.Handled())
	}
}

func TestDaemonRestart(t *testing.T) {
	d, err := NewDaemon(isa.ArchARMS, BuildOpts{}, kernel.Config{Seed: 1})
	if err != nil {
		t.Fatalf("daemon: %v", err)
	}
	if _, err := d.HandleResponse(overflowResponse(t, query(), 30, 63, 'A')); err != nil {
		t.Fatalf("handle: %v", err)
	}
	if !d.Crashed() {
		t.Fatal("want crash")
	}
	if _, err := d.HandleResponse(benignResponse(t, query())); err == nil {
		t.Error("crashed daemon still handled packets")
	}
	if err := d.Restart(); err != nil {
		t.Fatalf("restart: %v", err)
	}
	res, err := d.HandleResponse(benignResponse(t, query()))
	if err != nil {
		t.Fatalf("handle after restart: %v", err)
	}
	if res.Status != kernel.StatusReturned {
		t.Errorf("status after restart = %v, want returned", res.Status)
	}
}

func boolStr(b bool) string {
	if b {
		return "true"
	}
	return "false"
}
