package victim_test

import (
	"crypto/sha256"
	"fmt"
	"os"
	"sort"
	"strings"
	"testing"

	"connlab/internal/image"
	"connlab/internal/isa"
	"connlab/internal/victim"
)

// TestBuildGolden pins the fragment refactor: every legacy BuildOpts
// combination must link to byte-identical sections (and an identical
// symbol table) as the pre-refactor monolithic builders, captured in
// testdata/build_golden.txt.
func TestBuildGolden(t *testing.T) {
	want, err := os.ReadFile("testdata/build_golden.txt")
	if err != nil {
		t.Fatal(err)
	}
	var got strings.Builder
	for _, arch := range []isa.Arch{isa.ArchX86S, isa.ArchARMS} {
		for _, v := range []victim.Variant{victim.VariantConnman, victim.VariantDnsmasq} {
			for _, patched := range []bool{false, true} {
				for _, canary := range []bool{false, true} {
					o := victim.BuildOpts{Variant: v, Patched: patched, Canary: canary}
					u, err := victim.BuildProgram(arch, o)
					if err != nil {
						t.Fatalf("%s %+v: %v", arch, o, err)
					}
					img, err := image.Link(u, image.DefaultProgramLayout(arch), image.Options{})
					if err != nil {
						t.Fatalf("%s %+v: %v", arch, o, err)
					}
					combo := fmt.Sprintf("%s/%s/patched=%v/canary=%v", arch, v, patched, canary)
					for _, sec := range img.Sections {
						fmt.Fprintf(&got, "%s %s addr=%#x len=%d sha256=%x\n",
							combo, sec.Name, sec.Addr, len(sec.Data), sha256.Sum256(sec.Data))
					}
					var names []string
					for n := range img.Symbols {
						names = append(names, n)
					}
					sort.Strings(names)
					for _, n := range names {
						s := img.Symbols[n]
						fmt.Fprintf(&got, "%s sym %s addr=%#x size=%d sec=%s\n", combo, n, s.Addr, s.Size, s.Section)
					}
				}
			}
		}
	}
	if got.String() != string(want) {
		wantLines := strings.Split(string(want), "\n")
		gotLines := strings.Split(got.String(), "\n")
		for i := range wantLines {
			if i >= len(gotLines) || wantLines[i] != gotLines[i] {
				t.Fatalf("build golden diverged at line %d:\nwant %q\ngot  %q", i+1, wantLines[i], gotLines[i])
			}
		}
		t.Fatalf("build golden diverged: got %d lines, want %d", len(gotLines), len(wantLines))
	}
}
