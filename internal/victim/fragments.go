package victim

import (
	"connlab/internal/image"
	"connlab/internal/isa"
	"connlab/internal/isa/arms"
	"connlab/internal/isa/x86s"
	"connlab/internal/kernel"
)

// This file is the program-fragment API: a victim build is no longer a
// monolithic per-arch builder but an ordered composition of named codegen
// building blocks — the top-level parser, the frame-owning record parser,
// the vulnerable copy loop, the callback dispatcher, the emulated
// allocator — each selected by the BuildOpts geometry. The scenario
// compiler picks geometry; Fragments picks fragments; BuildProgram
// assembles them. Legacy BuildOpts values compose to byte-identical
// images (pinned by TestBuildGolden).

// Fragment is one named building block of a victim program. Exactly one
// of X86/ARM is set, matching the architecture it was selected for. The
// assembler thunks take the build's BuildOpts explicitly (rather than
// closing over it) so fragment selection stays allocation-light on the
// build hot path.
type Fragment struct {
	// Name is the function symbol the fragment assembles.
	Name string
	// Role documents which building-block slot the fragment fills
	// ("parser", "frame", "copy-loop", "dispatcher", "allocator",
	// "support").
	Role string
	X86  func(BuildOpts) *x86s.Asm
	ARM  func(BuildOpts) *arms.Asm
}

// heapArenaOffset places the emulated allocator's arena inside the
// kernel's scratch-heap segment, past the region HandleResponse stages
// inbound packets in.
const heapArenaOffset = 0x80000

// heapArenaBase returns the fixed arena base the heap-site fragments
// bake into their immediates (the heap is never slid by ASLR).
func heapArenaBase(arch isa.Arch) uint32 {
	return kernel.HeapBaseFor(arch) + heapArenaOffset
}

// heapRecordSize is the adjacent callback record the heap-site parse_rr
// allocates after the name buffer (one handler slot plus padding).
const heapRecordSize = 16

// Fragments returns the ordered fragments BuildProgram composes for
// arch/opts. The order is the link order of the program's functions, so
// for a fixed BuildOpts it is part of the determinism contract.
func Fragments(arch isa.Arch, opts BuildOpts) []Fragment {
	if arch == isa.ArchARMS {
		return fragmentsARM(opts)
	}
	return fragmentsX86(opts)
}

func buildProgramX86(opts BuildOpts) *image.Unit {
	u := image.NewUnit(isa.ArchX86S)
	u.Import("memcpy", "memset", "strlen", "execlp", "exit", "write")
	if opts.Site == SiteHeap {
		u.AddData("heap_cursor", leU32(heapArenaBase(isa.ArchX86S)))
	}
	for _, f := range fragmentsX86(opts) {
		u.AddFuncX86(f.Name, f.X86(opts))
	}
	return u
}

func buildProgramARM(opts BuildOpts) *image.Unit {
	u := image.NewUnit(isa.ArchARMS)
	u.Import("memcpy", "memset", "strlen", "execlp", "exit", "write")
	if opts.Site == SiteHeap {
		u.AddData("heap_cursor", leU32(heapArenaBase(isa.ArchARMS)))
	}
	for _, f := range fragmentsARM(opts) {
		u.AddFuncARM(f.Name, f.ARM(opts))
	}
	return u
}

func leU32(v uint32) []byte {
	return []byte{byte(v), byte(v >> 8), byte(v >> 16), byte(v >> 24)}
}
