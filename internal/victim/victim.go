// Package victim builds and runs the lab's vulnerable programs — most
// importantly connmansim, the Connman-analog DNS proxy whose
// parse_response → get_name path contains the unchecked copy of
// CVE-2017-12865 (paper Listing 1). The vulnerable code is compiled to
// emulator instructions, so a crafted DNS response genuinely smashes a
// simulated stack frame: denial of service and control-flow hijack emerge
// from machine behaviour, not from scripted outcomes.
//
// Two builds are provided per architecture: the vulnerable 1.34-style
// parser and the patched 1.35-style parser that bounds-checks each label
// before copying. A build can additionally carry stack canaries
// (-fstack-protector analog), which the paper's targets had disabled.
package victim

import (
	"fmt"

	"connlab/internal/dns"
	"connlab/internal/image"
	"connlab/internal/isa"
	"connlab/internal/kernel"
)

// NameBufSize is the size of the stack name buffer in parse_rr, matching
// Connman's 1024-byte buffer.
const NameBufSize = 1024

// DnsmasqBufSize is the dnsmasq-analog variant's smaller name buffer.
const DnsmasqBufSize = 512

// Frame-layout facts of the generated victims, exported for tests and for
// cross-checking what the debugger discovers. Exploits built by the
// library discover these dynamically (internal/dbg); the constants are the
// ground truth they are validated against.
const (
	// X86RetOffset is the distance from the start of the name buffer to
	// the saved return address in the x86 parse_rr frame (no canary).
	X86RetOffset = NameBufSize + 4 // saved ebp, then eip

	// X86CanaryRetOffset is the same distance when built with canaries.
	X86CanaryRetOffset = NameBufSize + 8
	// X86CanaryOffset is the buffer offset of the canary slot.
	X86CanaryOffset = NameBufSize

	// ARMRetOffset is the distance from the start of the name buffer to
	// the saved lr in the arms parse_rr frame (no canary).
	ARMRetOffset = NameBufSize + 28
	// ARMNullOffset is the buffer offset of the cache-entry pointer that
	// parse_rr dereferences when non-NULL — the slot the paper found must
	// be zeroed for the ARM exploits to survive to the pop.
	ARMNullOffset = NameBufSize
	// ARMCanaryOffset is the buffer offset of the canary slot in canary
	// builds (the pad word next to the cache pointer).
	ARMCanaryOffset = NameBufSize + 4
)

// Variant selects which vulnerable application to build. The §V argument
// — that the same exploit engine retargets other DNS-based overflows with
// only address changes — is demonstrated by the dnsmasq-analog variant,
// which has a different buffer size and frame layout but the same bug
// class (CVE-2017-14493 is the real-world counterpart).
type Variant uint8

// Victim variants.
const (
	// VariantConnman is the Connman 1.34 analog (CVE-2017-12865).
	VariantConnman Variant = iota
	// VariantDnsmasq is a dnsmasq-flavoured analog (CVE-2017-14493
	// stand-in): a 512-byte name buffer and extra frame state, so every
	// discovered offset differs.
	VariantDnsmasq
)

// String implements fmt.Stringer.
func (v Variant) String() string {
	if v == VariantDnsmasq {
		return "dnsmasq"
	}
	return "connman"
}

// Site selects where the vulnerable name buffer lives.
type Site uint8

// Buffer sites.
const (
	// SiteStack is the classic stack buffer of the paper's Listing 1.
	SiteStack Site = iota
	// SiteHeap places the buffer in a bump-allocated heap arena, with an
	// adjacent callback record the overflow clobbers (adjacent-allocation
	// overflow analog, CVE-2017-14491 style).
	SiteHeap
)

// String implements fmt.Stringer.
func (s Site) String() string {
	if s == SiteHeap {
		return "heap"
	}
	return "stack"
}

// FrameKind selects the parse path's frame discipline.
type FrameKind uint8

// Frame disciplines.
const (
	// FrameDefault is the register-save frame of the original builds.
	FrameDefault FrameKind = iota
	// FrameFP compiles the parse path with a frame-pointer-sensitive
	// caller (and, on arms, an fp-framed parse_rr whose saved frame
	// pointer adjoins the buffer): the single NUL byte an off-by-one
	// overflow plants in the saved frame pointer pivots the caller's
	// locals into the dead callee frame.
	FrameFP
)

// String implements fmt.Stringer.
func (f FrameKind) String() string {
	if f == FrameFP {
		return "fp"
	}
	return "default"
}

// RetOffsetFor returns the ground-truth buffer-to-hijack-slot distance
// for a build, for cross-checking what the debugger discovers. It is a
// thin wrapper over FrameModel.
func RetOffsetFor(arch isa.Arch, o BuildOpts) int {
	return FrameModel(arch, o).RetOffset
}

// NullOffsetsFor returns the ground-truth must-be-NULL buffer offsets,
// a thin wrapper over FrameModel.
func NullOffsetsFor(arch isa.Arch, o BuildOpts) []int {
	return FrameModel(arch, o).NullOffsets
}

// FrameInfo is the compiled ground truth of a build's corruption site —
// what the scenario compiler hands exploit builders in place of the old
// per-build offset constants.
type FrameInfo struct {
	// RetOffset is the buffer-to-hijack-slot distance: the saved return
	// address for default stack frames, the saved frame pointer for
	// FrameFP builds, or the adjacent allocation's callback slot for
	// SiteHeap builds.
	RetOffset int
	// NullOffsets are buffer offsets that must hold NULL words for the
	// victim to survive to the hijack point.
	NullOffsets []int
	// Reach is how many buffer-relative bytes a bounded copy can write
	// (the deepest reachable offset is Reach-1); 0 means unbounded.
	Reach int
}

// FrameModel computes the corruption geometry of a build. It is the
// single source of frame ground truth: the legacy constants, the scenario
// validator, and declared-discovery reconnaissance all read it.
func FrameModel(arch isa.Arch, o BuildOpts) FrameInfo {
	bs := int(o.BufSize())
	var fi FrameInfo
	if o.Bounded && !o.Patched {
		// The bound check admits name_len+label_len+2 <= BufSize+Slack,
		// so a completing copy's terminator lands at BufSize+Slack-1.
		fi.Reach = bs + int(o.Slack)
	}
	switch {
	case o.Site == SiteHeap:
		// The bump allocator 8-aligns requests, so the adjacent callback
		// record starts at the aligned buffer size.
		fi.RetOffset = (bs + 7) &^ 7
	case o.Frame == FrameFP:
		// The saved frame pointer adjoins the buffer on both ISAs.
		fi.RetOffset = bs
	case arch == isa.ArchARMS:
		frame := bs + 16
		fi.NullOffsets = []int{bs}
		if o.Variant == VariantDnsmasq {
			frame = bs + 24
			fi.NullOffsets = []int{bs, bs + 4}
		}
		fi.RetOffset = frame + 12 // saved r4,r5,r6,r7,r11 then lr
	default:
		fi.RetOffset = bs + 4 // saved ebp, then eip
		if o.Canary {
			fi.RetOffset += 4
		}
	}
	return fi
}

// BuildOpts selects the victim variant and its corruption geometry. The
// zero value (plus a Variant) reproduces the original builds byte for
// byte; the geometry fields are what scenario specs compile into. The
// struct stays comparable — campaign cache keys embed it.
type BuildOpts struct {
	// Variant picks the vulnerable application (Connman analog default).
	Variant Variant
	// Patched selects the bounds-checked parser (Connman 1.35 style).
	Patched bool
	// Canary adds stack-protector prologues/epilogues to parse_rr.
	Canary bool
	// Site picks where the name buffer lives (stack default).
	Site Site
	// Frame picks the frame discipline (register saves default).
	Frame FrameKind
	// Bounded emits the 1.35-style bound check even on unpatched builds,
	// widened by Slack bytes — Slack=1 is the off-by-one analog.
	Bounded bool
	// Slack is the extra reach the Bounded check forgives.
	Slack uint8
}

// Validate rejects geometry combinations the codegen fragments do not
// support. BuildProgram calls it; the scenario validator surfaces the
// same errors at spec-compile time.
func (o BuildOpts) Validate() error {
	if o.Site == SiteHeap && o.Frame != FrameDefault {
		return fmt.Errorf("victim: heap-site builds use the default frame")
	}
	if o.Site == SiteHeap && o.Canary {
		return fmt.Errorf("victim: heap-site builds have no stack canary to guard")
	}
	if o.Frame == FrameFP && o.Canary {
		return fmt.Errorf("victim: fp-framed builds place the saved frame pointer where the canary would sit")
	}
	if o.Bounded && o.Patched {
		return fmt.Errorf("victim: Bounded and Patched both select the bound check; use one")
	}
	if o.Slack > 0 && !o.Bounded {
		return fmt.Errorf("victim: Slack without Bounded has no effect")
	}
	return nil
}

// boundCheck reports whether get_name carries the 1.35-style bound check
// and the limit it compares against.
func (o BuildOpts) boundCheck() (bool, int32) {
	if o.Patched {
		return true, o.BufSize()
	}
	if o.Bounded {
		return true, o.BufSize() + int32(o.Slack)
	}
	return false, 0
}

// BufSize returns the variant's stack name-buffer size.
func (o BuildOpts) BufSize() int32 {
	if o.Variant == VariantDnsmasq {
		return DnsmasqBufSize
	}
	return NameBufSize
}

// Version returns the version string the build models.
func (o BuildOpts) Version() string {
	if o.Variant == VariantDnsmasq {
		return "dnsmasq 2.77 (analog)"
	}
	if o.Patched {
		return "1.35"
	}
	return "1.34"
}

// BuildProgram assembles the connmansim program unit for an architecture
// by composing the fragment set Fragments selects for opts.
func BuildProgram(arch isa.Arch, opts BuildOpts) (*image.Unit, error) {
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	var u *image.Unit
	switch arch {
	case isa.ArchX86S:
		u = buildProgramX86(opts)
	case isa.ArchARMS:
		u = buildProgramARM(opts)
	default:
		return nil, fmt.Errorf("victim: unsupported arch %q", arch)
	}
	if err := u.Err(); err != nil {
		return nil, fmt.Errorf("build victim (%s): %w", arch, err)
	}
	addCommonData(u)
	return u, nil
}

// addCommonData installs the data every build carries: the .bss cache the
// ROP chains write into, and realistic string constants whose characters
// the x86 ASLR exploit harvests with memstr (they jointly cover
// "/bin/sh").
func addCommonData(u *image.Unit) {
	u.AddBSS("dns_cache", NameBufSize)
	u.AddBSS("query_table", 512)
	u.AddData("__stack_chk_guard", make([]byte, 4))
	// Order matters: the link layout must be identical across builds, or
	// an attacker's replica would not predict the target binary.
	for _, kv := range [][2]string{
		{"str_resolv", "/etc/resolv.conf"},
		{"str_dbus", "net.connman.dbus"},
		{"str_wifi", "wifi"},
		{"str_dnsproxy", "dnsproxy: malformed response"},
		{"str_dhcp", "dhcp offer received"},
		{"str_helper", "connman-dnshelper"},
		{"str_version", "connmansim 1.34 (lab build)"},
	} {
		u.AddRodata(kv[0], []byte(kv[1]+"\x00"))
	}
}

// Load builds and loads a victim process under a protection configuration.
func Load(arch isa.Arch, opts BuildOpts, cfg kernel.Config) (*kernel.Process, error) {
	prog, err := BuildProgram(arch, opts)
	if err != nil {
		return nil, err
	}
	libc, err := image.BuildLibc(arch)
	if err != nil {
		return nil, err
	}
	return kernel.Load(prog, libc, cfg)
}

// Daemon wraps a victim process as Connman's dnsproxy would run it: a
// long-lived root daemon that forwards client queries upstream and feeds
// every upstream response through the (emulated) parser to cache it. A
// parser crash kills the daemon (DoS); a hijack that reaches exec gives
// the attacker a root shell (RCE).
type Daemon struct {
	proc *kernel.Process
	arch isa.Arch
	opts BuildOpts
	cfg  kernel.Config
	// prog/libc, when set, are the prebuilt units the daemon loads from
	// (the campaign engine's per-configuration cache).
	prog, libc *image.Unit

	crashed bool
	last    kernel.RunResult
	handled int
	// parseEntry caches the resolved parse_response entry point for the
	// current process image: symbol lookup is per-load (PIE moves it), so
	// Restart resets it. Zero means not yet resolved.
	parseEntry uint32
}

// NewDaemon loads a fresh victim process and wraps it.
func NewDaemon(arch isa.Arch, opts BuildOpts, cfg kernel.Config) (*Daemon, error) {
	proc, err := Load(arch, opts, cfg)
	if err != nil {
		return nil, err
	}
	return &Daemon{proc: proc, arch: arch, opts: opts, cfg: cfg}, nil
}

// NewDaemonWith loads a daemon from prebuilt program and libc units —
// the fast path for fleets, where one build serves every device. Linking
// and loading only read the units, so the same units may be shared by
// any number of concurrent loads.
func NewDaemonWith(prog, libc *image.Unit, cfg kernel.Config) (*Daemon, error) {
	proc, err := kernel.Load(prog, libc, cfg)
	if err != nil {
		return nil, err
	}
	return &Daemon{proc: proc, arch: prog.Arch, cfg: cfg, prog: prog, libc: libc}, nil
}

// Process exposes the underlying process (for the debugger and tests).
func (d *Daemon) Process() *kernel.Process { return d.proc }

// Crashed reports whether the daemon has died.
func (d *Daemon) Crashed() bool { return d.crashed }

// LastResult returns the most recent parser run result.
func (d *Daemon) LastResult() kernel.RunResult { return d.last }

// Handled returns how many responses the daemon has processed.
func (d *Daemon) Handled() int { return d.handled }

// maxPacket bounds accepted datagrams, as the real proxy's receive buffer
// would.
const maxPacket = 4096

// HandleResponse performs Connman's cheap header pre-checks and, if they
// pass, runs the emulated parse_response over the packet. This mirrors the
// paper's observation that "the DNS responses must appear legitimate,
// otherwise Connman dumps the packet as a bad response and never enters
// the vulnerable portion of code."
func (d *Daemon) HandleResponse(pkt []byte) (kernel.RunResult, error) {
	if d.crashed {
		return kernel.RunResult{}, fmt.Errorf("victim daemon: already crashed: %v", d.last)
	}
	if len(pkt) > maxPacket {
		return kernel.RunResult{}, fmt.Errorf("victim daemon: packet too large (%d bytes)", len(pkt))
	}
	h, err := dns.ParseHeader(pkt)
	if err != nil {
		return kernel.RunResult{}, fmt.Errorf("victim daemon: %w", err)
	}
	if !h.Response || h.Opcode != dns.OpcodeQuery || h.QDCount != 1 || h.ANCount == 0 {
		return kernel.RunResult{}, fmt.Errorf("victim daemon: dropped bad response (qr=%v qd=%d an=%d)",
			h.Response, h.QDCount, h.ANCount)
	}

	// Stage the packet in the process heap and invoke the emulated parser.
	addr := d.proc.HeapBase()
	if f := d.proc.Mem().WriteBytes(addr, pkt); f != nil {
		return kernel.RunResult{}, fmt.Errorf("victim daemon: stage packet: %w", f)
	}
	if d.parseEntry == 0 {
		entry, ok := d.proc.Prog.Lookup("parse_response")
		if !ok {
			return kernel.RunResult{}, fmt.Errorf("call: undefined function %q", "parse_response")
		}
		d.parseEntry = entry
	}
	res, err := d.proc.CallAddr(d.parseEntry, addr, uint32(len(pkt)))
	if err != nil {
		return kernel.RunResult{}, err
	}
	d.last = res
	d.handled++
	if res.Status != kernel.StatusReturned {
		d.crashed = true
	}
	return res, nil
}

// Shells reports shells spawned inside the daemon process.
func (d *Daemon) Shells() []kernel.ShellSpawn { return d.proc.Shells() }

// Recycle rewinds the daemon to a freshly started state for cfg without
// rebuilding or reloading, via kernel.Process.Recycle. It reports false
// when the existing process cannot reproduce a fresh Load(cfg) (layout
// config changed, or a new seed while ASLR/PIE is on); callers then build
// a new daemon instead.
func (d *Daemon) Recycle(cfg kernel.Config) bool {
	if !d.proc.Recycle(cfg) {
		return false
	}
	d.cfg = cfg
	d.crashed = false
	d.last = kernel.RunResult{}
	d.handled = 0
	return true
}

// Restart replaces the dead process with a fresh load (same config; a new
// ASLR sample), as an init system respawning the daemon would.
func (d *Daemon) Restart() error {
	var proc *kernel.Process
	var err error
	if d.prog != nil && d.libc != nil {
		proc, err = kernel.Load(d.prog, d.libc, d.cfg)
	} else {
		proc, err = Load(d.arch, d.opts, d.cfg)
	}
	if err != nil {
		return err
	}
	d.proc = proc
	d.crashed = false
	d.last = kernel.RunResult{}
	d.parseEntry = 0
	return nil
}
