package victim

import (
	"connlab/internal/abi"
	"connlab/internal/isa"
	"connlab/internal/isa/arms"
)

// fragmentsARM selects the arms fragment composition for opts.
//
// parse_rr stack frame (no canary), growing down from the caller:
//
//	sp+1060  saved lr        <- return address, buffer offset 1052
//	sp+1056  saved r11
//	sp+1052  saved r7
//	sp+1048  saved r6
//	sp+1044  saved r5
//	sp+1040  saved r4
//	sp+1036  pad (canary slot in canary builds)
//	sp+1032  cache_entry     <- must stay NULL (buffer offset 1024): parse_rr
//	                           dereferences it after get_name returns, the
//	                           check the paper had to satisfy on ARMv7
//	sp+8 ..  name[1024]      <- overflow runs upward from here
//	sp+4     rdlen
//	sp+0     name_len
//
// The frame is built by push {r4,r5,r6,r7,r11,lr}; sub sp, sp, #1040.
// FrameFP builds swap in the fp-framed parse_rr (locals below the buffer,
// saved fp adjoining it) plus the frame-pointer-sensitive parse_response;
// SiteHeap builds swap parse_rr for the arena-allocating variant and add
// the allocator fragments.
func fragmentsARM(opts BuildOpts) []Fragment {
	parseResponse := Fragment{Name: "parse_response", Role: "parser",
		ARM: func(o BuildOpts) *arms.Asm { return buildParseResponseARM(o.Site == SiteHeap) }}
	parseRR := Fragment{Name: "parse_rr", Role: "frame", ARM: buildParseRRARM}
	switch {
	case opts.Frame == FrameFP:
		parseResponse = Fragment{Name: "parse_response", Role: "parser",
			ARM: func(BuildOpts) *arms.Asm { return buildParseResponseFPARM() }}
		parseRR = Fragment{Name: "parse_rr", Role: "frame", ARM: buildParseRRFPARM}
	case opts.Site == SiteHeap:
		parseRR = Fragment{Name: "parse_rr", Role: "frame", ARM: buildParseRRHeapARM}
	}
	fr := make([]Fragment, 0, 10)
	fr = append(fr,
		parseResponse,
		parseRR,
		Fragment{Name: "get_name", Role: "copy-loop", ARM: buildGetNameARM},
		Fragment{Name: "spawn_resolver", Role: "support",
			ARM: func(BuildOpts) *arms.Asm { return buildSpawnResolverARM() }},
		Fragment{Name: "log_error", Role: "support",
			ARM: func(BuildOpts) *arms.Asm { return buildLogErrorARM() }},
		Fragment{Name: "invoke_callback", Role: "dispatcher",
			ARM: func(BuildOpts) *arms.Asm { return buildInvokeCallbackARM() }},
		Fragment{Name: "restore_task_context", Role: "support",
			ARM: func(BuildOpts) *arms.Asm { return buildRestoreTaskContextARM() }},
	)
	if opts.Site == SiteHeap {
		fr = append(fr,
			Fragment{Name: "malloc", Role: "allocator",
				ARM: func(BuildOpts) *arms.Asm { return buildMallocARM() }},
			Fragment{Name: "cache_flush", Role: "dispatcher",
				ARM: func(BuildOpts) *arms.Asm { return buildCacheFlushARM() }},
		)
	}
	fr = append(fr, Fragment{Name: "__stack_chk_fail", Role: "support",
		ARM: func(BuildOpts) *arms.Asm { return buildStackChkFailARM() }})
	return fr
}

// buildParseResponseARM is the top-level parser: flag check, question
// skip, parse_rr per answer. With arenaReset the prologue rewinds the
// bump allocator's cursor, modeling a per-request scratch arena.
func buildParseResponseARM(arenaReset bool) *arms.Asm {
	a := arms.NewAsm()
	a.Push(arms.R4, arms.R5, arms.R6, arms.LR)
	a.MovR(arms.R6, arms.R0) // pkt
	if arenaReset {
		a.MovSym(arms.R3, "heap_cursor", 0)
		a.MovImm32(arms.R2, heapArenaBase(isa.ArchARMS))
		a.Str(arms.R2, arms.R3, 0)
	}

	// QR bit.
	a.Ldrb(arms.R2, arms.R6, 2)
	a.TstI(arms.R2, 0x80)
	a.B(arms.CondEQ, "bad")

	// ancount = pkt[6]<<8 | pkt[7].
	a.Ldrb(arms.R4, arms.R6, 6)
	a.LslI(arms.R4, arms.R4, 8)
	a.Ldrb(arms.R3, arms.R6, 7)
	a.OrrR(arms.R4, arms.R4, arms.R3)

	// Skip question name from pkt+12.
	a.AddI(arms.R5, arms.R6, 12)
	a.Label("skipq")
	a.Ldrb(arms.R2, arms.R5, 0)
	a.CmpI(arms.R2, 0)
	a.B(arms.CondEQ, "qdone")
	a.AndI(arms.R3, arms.R2, 0xC0)
	a.CmpI(arms.R3, 0xC0)
	a.B(arms.CondEQ, "qptr")
	a.AddI(arms.R5, arms.R5, 1)
	a.AddR(arms.R5, arms.R5, arms.R2)
	a.BAlways("skipq")
	a.Label("qptr")
	a.AddI(arms.R5, arms.R5, 2)
	a.BAlways("qdone2")
	a.Label("qdone")
	a.AddI(arms.R5, arms.R5, 1)
	a.Label("qdone2")
	a.AddI(arms.R5, arms.R5, 4)

	// Answer loop.
	a.Label("aloop")
	a.CmpI(arms.R4, 0)
	a.B(arms.CondEQ, "ok")
	a.MovR(arms.R0, arms.R6)
	a.MovR(arms.R1, arms.R5)
	a.BL("parse_rr")
	a.CmpI(arms.R0, 0)
	a.B(arms.CondEQ, "bad")
	a.MovR(arms.R5, arms.R0)
	a.SubI(arms.R4, arms.R4, 1)
	a.BAlways("aloop")

	a.Label("ok")
	a.MovW(arms.R0, 0)
	a.Pop(arms.R4, arms.R5, arms.R6, arms.PC)
	a.Label("bad")
	a.MovW(arms.R0, 0xFFFF)
	a.MovT(arms.R0, 0xFFFF) // -1
	a.Pop(arms.R4, arms.R5, arms.R6, arms.PC)
	return a
}

// buildParseResponseFPARM is the frame-pointer-sensitive top-level
// parser: it establishes an APCS frame pointer, caches a query-table
// pointer in an fp-relative local, and reloads it through fp after every
// parse_rr call. The fp-framed parse_rr restores this function's fp from
// the slot adjoining the name buffer, so an off-by-one NUL clobber
// rounds fp down up to 255 bytes and the reload dereferences whatever
// the attacker left in the dead frame.
func buildParseResponseFPARM() *arms.Asm {
	a := arms.NewAsm()
	a.Push(arms.R4, arms.R5, arms.R6, arms.FP, arms.LR)
	a.MovR(arms.FP, arms.SP)
	a.SubI(arms.SP, arms.SP, 8) // [fp-8]: cached &query_table
	a.MovSym(arms.R3, "query_table", 0)
	a.Str(arms.R3, arms.FP, -8)
	a.MovR(arms.R6, arms.R0) // pkt

	// QR bit.
	a.Ldrb(arms.R2, arms.R6, 2)
	a.TstI(arms.R2, 0x80)
	a.B(arms.CondEQ, "bad")

	// ancount = pkt[6]<<8 | pkt[7].
	a.Ldrb(arms.R4, arms.R6, 6)
	a.LslI(arms.R4, arms.R4, 8)
	a.Ldrb(arms.R3, arms.R6, 7)
	a.OrrR(arms.R4, arms.R4, arms.R3)

	// Skip question name from pkt+12.
	a.AddI(arms.R5, arms.R6, 12)
	a.Label("skipq")
	a.Ldrb(arms.R2, arms.R5, 0)
	a.CmpI(arms.R2, 0)
	a.B(arms.CondEQ, "qdone")
	a.AndI(arms.R3, arms.R2, 0xC0)
	a.CmpI(arms.R3, 0xC0)
	a.B(arms.CondEQ, "qptr")
	a.AddI(arms.R5, arms.R5, 1)
	a.AddR(arms.R5, arms.R5, arms.R2)
	a.BAlways("skipq")
	a.Label("qptr")
	a.AddI(arms.R5, arms.R5, 2)
	a.BAlways("qdone2")
	a.Label("qdone")
	a.AddI(arms.R5, arms.R5, 1)
	a.Label("qdone2")
	a.AddI(arms.R5, arms.R5, 4)

	// Answer loop with the fp-sensitive touch after each record.
	a.Label("aloop")
	a.CmpI(arms.R4, 0)
	a.B(arms.CondEQ, "ok")
	a.MovR(arms.R0, arms.R6)
	a.MovR(arms.R1, arms.R5)
	a.BL("parse_rr")
	a.CmpI(arms.R0, 0)
	a.B(arms.CondEQ, "bad")
	a.MovR(arms.R5, arms.R0)
	// Account the answer in the query table, addressed through fp.
	a.Ldr(arms.R3, arms.FP, -8)
	a.Ldr(arms.R2, arms.R3, 0)
	a.SubI(arms.R4, arms.R4, 1)
	a.BAlways("aloop")

	a.Label("ok")
	a.MovW(arms.R0, 0)
	a.BAlways("ret")
	a.Label("bad")
	a.MovW(arms.R0, 0xFFFF)
	a.MovT(arms.R0, 0xFFFF) // -1
	a.Label("ret")
	a.MovR(arms.SP, arms.FP)
	a.Pop(arms.R4, arms.R5, arms.R6, arms.FP, arms.PC)
	return a
}

// buildParseRRARM is the frame-owning answer parser. Frame layout (bs =
// buffer size): name_len at sp+0, rdlen at sp+4, the buffer at sp+8, the
// cache-entry pointer at sp+8+bs (the must-be-NULL slot), a second
// transaction pointer at sp+12+bs for the dnsmasq variant, then the
// canary/pad word and the saved registers.
func buildParseRRARM(opts BuildOpts) *arms.Asm {
	bs := opts.BufSize()
	cacheOff := bs + 8
	txnOff := int32(0)
	frame := bs + 16
	if opts.Variant == VariantDnsmasq {
		txnOff = bs + 12
		frame = bs + 24
	}
	canaryOff := frame - 4

	a := arms.NewAsm()
	a.Push(arms.R4, arms.R5, arms.R6, arms.R7, arms.FP, arms.LR)
	a.SubI(arms.SP, arms.SP, frame)
	a.MovW(arms.R3, 0)
	a.Str(arms.R3, arms.SP, 0)        // name_len = 0
	a.Str(arms.R3, arms.SP, cacheOff) // cache_entry = NULL
	if txnOff != 0 {
		a.Str(arms.R3, arms.SP, txnOff) // txn pointer = NULL
	}
	if opts.Canary {
		a.MovSym(arms.R3, "__stack_chk_guard", 0)
		a.Ldr(arms.R3, arms.R3, 0)
		a.Str(arms.R3, arms.SP, canaryOff)
	}
	a.MovR(arms.R4, arms.R0) // pkt
	a.MovR(arms.R5, arms.R1) // p

	// get_name(pkt, p, name, &name_len).
	a.AddI(arms.R2, arms.SP, 8)
	a.MovR(arms.R3, arms.SP)
	a.BL("get_name")
	a.CmpI(arms.R0, 0)
	a.B(arms.CondEQ, "fail")
	a.MovR(arms.R5, arms.R0) // p after name

	// The cache-entry check: if the pointer became non-NULL, "release" it.
	// A smashed garbage pointer faults here — the pre-pop obstacle the
	// paper's ARM exploits defuse by planting NULLs.
	a.Ldr(arms.R3, arms.SP, cacheOff)
	a.CmpI(arms.R3, 0)
	a.B(arms.CondEQ, "nofree")
	a.Ldr(arms.R2, arms.R3, 0)
	a.Label("nofree")
	if txnOff != 0 {
		// The dnsmasq variant walks a second pointer, so its exploits
		// must plant two NULL words.
		a.Ldr(arms.R3, arms.SP, txnOff)
		a.CmpI(arms.R3, 0)
		a.B(arms.CondEQ, "notxn")
		a.Ldr(arms.R2, arms.R3, 0)
		a.Label("notxn")
	}

	// rdlen = p[8]<<8 | p[9].
	a.Ldrb(arms.R2, arms.R5, 8)
	a.LslI(arms.R2, arms.R2, 8)
	a.Ldrb(arms.R3, arms.R5, 9)
	a.OrrR(arms.R2, arms.R2, arms.R3)
	a.Str(arms.R2, arms.SP, 4)

	// Cache type A answers: memcpy(dns_cache, name, 64).
	a.Ldrb(arms.R3, arms.R5, 1)
	a.CmpI(arms.R3, 1)
	a.B(arms.CondNE, "skipcache")
	a.Ldrb(arms.R3, arms.R5, 0)
	a.CmpI(arms.R3, 0)
	a.B(arms.CondNE, "skipcache")
	a.MovSym(arms.R0, "dns_cache", 0)
	a.AddI(arms.R1, arms.SP, 8)
	a.MovW(arms.R2, 64)
	a.BL("memcpy@plt")
	a.Label("skipcache")

	// return p + 10 + rdlen.
	a.Ldr(arms.R2, arms.SP, 4)
	a.AddI(arms.R0, arms.R5, 10)
	a.AddR(arms.R0, arms.R0, arms.R2)
	a.BAlways("done")
	a.Label("fail")
	a.MovW(arms.R0, 0)
	a.Label("done")
	if opts.Canary {
		a.MovSym(arms.R3, "__stack_chk_guard", 0)
		a.Ldr(arms.R3, arms.R3, 0)
		a.Ldr(arms.R2, arms.SP, canaryOff)
		a.CmpR(arms.R2, arms.R3)
		a.B(arms.CondNE, "smash")
	}
	a.AddI(arms.SP, arms.SP, frame)
	a.Pop(arms.R4, arms.R5, arms.R6, arms.R7, arms.FP, arms.PC)
	if opts.Canary {
		a.Label("smash")
		a.BL("__stack_chk_fail")
	}
	return a
}

// buildParseRRFPARM is the fp-framed answer parser for off-by-one
// scenarios: push {fp, lr}; the buffer sits at the top of the locals so
// the saved fp adjoins it at offset bs. Frame layout: name_len at sp+0,
// pkt at sp+8, p at sp+12, buffer at sp+16 .. sp+16+bs-1, saved fp at
// sp+16+bs (= buffer offset bs), saved lr above it. There is no cache
// slot — the one reachable word past the buffer is the frame pointer.
func buildParseRRFPARM(opts BuildOpts) *arms.Asm {
	bs := opts.BufSize()
	frame := bs + 16

	a := arms.NewAsm()
	a.Push(arms.FP, arms.LR)
	a.MovR(arms.FP, arms.SP)
	a.SubI(arms.SP, arms.SP, frame)
	a.MovW(arms.R3, 0)
	a.Str(arms.R3, arms.SP, 0) // name_len = 0
	a.Str(arms.R0, arms.SP, 8) // pkt (no callee-saved registers in use)
	a.Str(arms.R1, arms.SP, 12)

	// get_name(pkt, p, name, &name_len).
	a.AddI(arms.R2, arms.SP, 16)
	a.MovR(arms.R3, arms.SP)
	a.BL("get_name")
	a.CmpI(arms.R0, 0)
	a.B(arms.CondEQ, "fail")

	// return p' + 10 + rdlen, rdlen = p'[8]<<8 | p'[9].
	a.Ldrb(arms.R2, arms.R0, 8)
	a.LslI(arms.R2, arms.R2, 8)
	a.Ldrb(arms.R3, arms.R0, 9)
	a.OrrR(arms.R2, arms.R2, arms.R3)
	a.AddI(arms.R0, arms.R0, 10)
	a.AddR(arms.R0, arms.R0, arms.R2)
	a.BAlways("done")
	a.Label("fail")
	a.MovW(arms.R0, 0)
	a.Label("done")
	a.AddI(arms.SP, arms.SP, frame)
	a.Pop(arms.FP, arms.PC)
	return a
}

// buildParseRRHeapARM is the heap-site answer parser: name buffer and
// adjacent callback record from the bump allocator, unchecked copy into
// the buffer, then a dispatch through the record's handler slot.
func buildParseRRHeapARM(opts BuildOpts) *arms.Asm {
	bs := opts.BufSize()

	a := arms.NewAsm()
	a.Push(arms.R4, arms.R5, arms.R6, arms.R7, arms.LR)
	a.SubI(arms.SP, arms.SP, 8) // sp+0: name_len, sp+4: pad
	a.MovR(arms.R4, arms.R0)    // pkt
	a.MovR(arms.R5, arms.R1)    // p

	// name = malloc(bs); rec = malloc(16); rec->flush = cache_flush.
	a.MovImm32(arms.R0, uint32(bs))
	a.BL("malloc")
	a.MovR(arms.R6, arms.R0) // r6 = name
	a.MovW(arms.R0, heapRecordSize)
	a.BL("malloc")
	a.MovR(arms.R7, arms.R0) // r7 = rec
	a.MovSym(arms.R3, "cache_flush", 0)
	a.Str(arms.R3, arms.R7, 0)
	a.MovW(arms.R3, 0)
	a.Str(arms.R3, arms.SP, 0) // name_len = 0

	// get_name(pkt, p, name, &name_len).
	a.MovR(arms.R0, arms.R4)
	a.MovR(arms.R1, arms.R5)
	a.MovR(arms.R2, arms.R6)
	a.MovR(arms.R3, arms.SP)
	a.BL("get_name")
	a.CmpI(arms.R0, 0)
	a.B(arms.CondEQ, "fail")
	a.MovR(arms.R5, arms.R0) // p after name

	// rec->flush(name): release the record's cache entry.
	a.Ldr(arms.R3, arms.R7, 0)
	a.MovR(arms.R0, arms.R6)
	a.BLX(arms.R3)

	// return p + 10 + rdlen, rdlen = p[8]<<8 | p[9].
	a.Ldrb(arms.R2, arms.R5, 8)
	a.LslI(arms.R2, arms.R2, 8)
	a.Ldrb(arms.R3, arms.R5, 9)
	a.OrrR(arms.R2, arms.R2, arms.R3)
	a.AddI(arms.R0, arms.R5, 10)
	a.AddR(arms.R0, arms.R0, arms.R2)
	a.BAlways("done")
	a.Label("fail")
	a.MovW(arms.R0, 0)
	a.Label("done")
	a.AddI(arms.SP, arms.SP, 8)
	a.Pop(arms.R4, arms.R5, arms.R6, arms.R7, arms.PC)
	return a
}

// buildMallocARM is the emulated allocator: a bump pointer over the heap
// arena, 8-aligning each request.
func buildMallocARM() *arms.Asm {
	a := arms.NewAsm()
	a.AddI(arms.R0, arms.R0, 7)
	a.LsrI(arms.R0, arms.R0, 3)
	a.LslI(arms.R0, arms.R0, 3)
	a.MovSym(arms.R3, "heap_cursor", 0)
	a.Ldr(arms.R2, arms.R3, 0)
	a.AddR(arms.R1, arms.R2, arms.R0)
	a.Str(arms.R1, arms.R3, 0)
	a.MovR(arms.R0, arms.R2)
	a.BX(arms.LR)
	return a
}

// buildCacheFlushARM is the benign callback the heap record points at.
func buildCacheFlushARM() *arms.Asm {
	a := arms.NewAsm()
	a.MovSym(arms.R3, "dns_cache", 0)
	a.Ldr(arms.R2, arms.R3, 0)
	a.BX(arms.LR)
	return a
}

// buildGetNameARM is the vulnerable (or patched) decompressor, the arms
// twin of Listing 1. Bounded builds emit the 1.35 check widened by Slack
// bytes (the off-by-one analog).
func buildGetNameARM(opts BuildOpts) *arms.Asm {
	checked, limit := opts.boundCheck()

	a := arms.NewAsm()
	a.Push(arms.R4, arms.R5, arms.R6, arms.R7, arms.R8, arms.LR)
	a.MovR(arms.R4, arms.R0) // pkt
	a.MovR(arms.R5, arms.R1) // p
	a.MovR(arms.R6, arms.R2) // name
	a.MovR(arms.R7, arms.R3) // &name_len
	a.MovW(arms.R8, 0)       // end: record resume position after a pointer

	a.Label("loop")
	a.Ldrb(arms.R0, arms.R5, 0)
	a.CmpI(arms.R0, 0)
	a.B(arms.CondEQ, "finish")
	a.AndI(arms.R1, arms.R0, 0xC0)
	a.CmpI(arms.R1, 0xC0)
	a.B(arms.CondEQ, "pointer")

	if checked {
		// 1.35 fix: bail out before the copy would overflow.
		a.Ldr(arms.R1, arms.R7, 0)
		a.AddR(arms.R1, arms.R1, arms.R0)
		a.AddI(arms.R1, arms.R1, 2)
		a.CmpI(arms.R1, limit)
		a.B(arms.CondGT, "bounds")
	}

	// name[(*name_len)++] = label_len.
	a.Ldr(arms.R1, arms.R7, 0)
	a.AddR(arms.R2, arms.R6, arms.R1)
	a.Strb(arms.R0, arms.R2, 0)
	a.AddI(arms.R1, arms.R1, 1)
	a.Str(arms.R1, arms.R7, 0)

	// memcpy(name + *name_len, p + 1, label_len + 1).
	a.AddR(arms.R0, arms.R6, arms.R1)
	a.AddI(arms.R1, arms.R5, 1)
	a.Ldrb(arms.R2, arms.R5, 0)
	a.AddI(arms.R2, arms.R2, 1)
	a.BL("memcpy@plt")

	// *name_len += label_len; p += label_len + 1.
	a.Ldrb(arms.R0, arms.R5, 0)
	a.Ldr(arms.R1, arms.R7, 0)
	a.AddR(arms.R1, arms.R1, arms.R0)
	a.Str(arms.R1, arms.R7, 0)
	a.AddI(arms.R5, arms.R5, 1)
	a.AddR(arms.R5, arms.R5, arms.R0)
	a.BAlways("loop")

	// Compression pointer: remember where the record resumes (first
	// pointer only), then p = pkt + ((c & 0x3F) << 8 | p[1]).
	a.Label("pointer")
	a.CmpI(arms.R8, 0)
	a.B(arms.CondNE, "jumped")
	a.AddI(arms.R8, arms.R5, 2)
	a.Label("jumped")
	a.AndI(arms.R0, arms.R0, 0x3F)
	a.LslI(arms.R0, arms.R0, 8)
	a.Ldrb(arms.R1, arms.R5, 1)
	a.OrrR(arms.R0, arms.R0, arms.R1)
	a.AddR(arms.R5, arms.R4, arms.R0)
	a.BAlways("loop")

	a.Label("finish")
	a.CmpI(arms.R8, 0)
	a.B(arms.CondEQ, "noend")
	a.MovR(arms.R0, arms.R8) // return the saved end after a pointer
	a.Pop(arms.R4, arms.R5, arms.R6, arms.R7, arms.R8, arms.PC)
	a.Label("noend")
	a.AddI(arms.R0, arms.R5, 1)
	a.Pop(arms.R4, arms.R5, arms.R6, arms.R7, arms.R8, arms.PC)
	if checked {
		a.Label("bounds")
		a.MovW(arms.R0, 0)
		a.Pop(arms.R4, arms.R5, arms.R6, arms.R7, arms.R8, arms.PC)
	}
	return a
}

// buildSpawnResolverARM pulls in the execlp import.
func buildSpawnResolverARM() *arms.Asm {
	a := arms.NewAsm()
	a.Push(arms.R4, arms.LR)
	a.MovSym(arms.R0, "str_helper", 0)
	a.MovSym(arms.R1, "str_helper", 0)
	a.MovW(arms.R2, 0)
	a.BL("execlp@plt")
	a.Pop(arms.R4, arms.PC)
	return a
}

// buildLogErrorARM writes a diagnostic string (strlen/write imports).
func buildLogErrorARM() *arms.Asm {
	a := arms.NewAsm()
	a.Push(arms.R4, arms.LR)
	a.MovR(arms.R4, arms.R0)
	a.BL("strlen@plt")
	a.MovR(arms.R2, arms.R0)
	a.MovR(arms.R1, arms.R4)
	a.MovW(arms.R0, 2)
	a.BL("write@plt")
	a.Pop(arms.R4, arms.PC)
	return a
}

// buildInvokeCallbackARM is a callback dispatcher. Its `blx r3` is the
// branch-link gadget the ASLR exploit chains memcpy calls with (paper
// §III-C2); the pop {pc} after it is what strings chain blocks together
// when the callee returns via bx lr.
func buildInvokeCallbackARM() *arms.Asm {
	a := arms.NewAsm()
	a.Push(arms.LR)
	a.BLX(arms.R3)
	a.Pop(arms.PC)
	return a
}

// buildRestoreTaskContextARM is a coroutine-style context restore. Its
// epilogue is the register-loading gadget the paper found with ropper:
// `pop {r0, r1, r2, r3, r5, r6, r7, pc}`.
func buildRestoreTaskContextARM() *arms.Asm {
	a := arms.NewAsm()
	a.MovR(arms.SP, arms.R0)
	a.Pop(arms.R0, arms.R1, arms.R2, arms.R3, arms.R5, arms.R6, arms.R7, arms.PC)
	return a
}

// buildStackChkFailARM is the canary failure path.
func buildStackChkFailARM() *arms.Asm {
	a := arms.NewAsm()
	a.MovImm32(arms.R7, abi.SysAbort)
	a.Svc(0)
	a.Label("spin")
	a.BAlways("spin")
	return a
}
