package victim

import (
	"connlab/internal/abi"
	"connlab/internal/image"
	"connlab/internal/isa"
	"connlab/internal/isa/arms"
)

// buildProgramARM assembles the arms connmansim unit.
//
// parse_rr stack frame (no canary), growing down from the caller:
//
//	sp+1060  saved lr        <- return address, buffer offset 1052
//	sp+1056  saved r11
//	sp+1052  saved r7
//	sp+1048  saved r6
//	sp+1044  saved r5
//	sp+1040  saved r4
//	sp+1036  pad (canary slot in canary builds)
//	sp+1032  cache_entry     <- must stay NULL (buffer offset 1024): parse_rr
//	                           dereferences it after get_name returns, the
//	                           check the paper had to satisfy on ARMv7
//	sp+8 ..  name[1024]      <- overflow runs upward from here
//	sp+4     rdlen
//	sp+0     name_len
//
// The frame is built by push {r4,r5,r6,r7,r11,lr}; sub sp, sp, #1040.
func buildProgramARM(opts BuildOpts) *image.Unit {
	u := image.NewUnit(isa.ArchARMS)
	u.Import("memcpy", "memset", "strlen", "execlp", "exit", "write")

	u.AddFuncARM("parse_response", buildParseResponseARM())
	u.AddFuncARM("parse_rr", buildParseRRARM(opts))
	u.AddFuncARM("get_name", buildGetNameARM(opts))
	u.AddFuncARM("spawn_resolver", buildSpawnResolverARM())
	u.AddFuncARM("log_error", buildLogErrorARM())
	u.AddFuncARM("invoke_callback", buildInvokeCallbackARM())
	u.AddFuncARM("restore_task_context", buildRestoreTaskContextARM())
	u.AddFuncARM("__stack_chk_fail", buildStackChkFailARM())
	return u
}

// buildParseResponseARM is the top-level parser: flag check, question
// skip, parse_rr per answer.
func buildParseResponseARM() *arms.Asm {
	a := arms.NewAsm()
	a.Push(arms.R4, arms.R5, arms.R6, arms.LR)
	a.MovR(arms.R6, arms.R0) // pkt

	// QR bit.
	a.Ldrb(arms.R2, arms.R6, 2)
	a.TstI(arms.R2, 0x80)
	a.B(arms.CondEQ, "bad")

	// ancount = pkt[6]<<8 | pkt[7].
	a.Ldrb(arms.R4, arms.R6, 6)
	a.LslI(arms.R4, arms.R4, 8)
	a.Ldrb(arms.R3, arms.R6, 7)
	a.OrrR(arms.R4, arms.R4, arms.R3)

	// Skip question name from pkt+12.
	a.AddI(arms.R5, arms.R6, 12)
	a.Label("skipq")
	a.Ldrb(arms.R2, arms.R5, 0)
	a.CmpI(arms.R2, 0)
	a.B(arms.CondEQ, "qdone")
	a.AndI(arms.R3, arms.R2, 0xC0)
	a.CmpI(arms.R3, 0xC0)
	a.B(arms.CondEQ, "qptr")
	a.AddI(arms.R5, arms.R5, 1)
	a.AddR(arms.R5, arms.R5, arms.R2)
	a.BAlways("skipq")
	a.Label("qptr")
	a.AddI(arms.R5, arms.R5, 2)
	a.BAlways("qdone2")
	a.Label("qdone")
	a.AddI(arms.R5, arms.R5, 1)
	a.Label("qdone2")
	a.AddI(arms.R5, arms.R5, 4)

	// Answer loop.
	a.Label("aloop")
	a.CmpI(arms.R4, 0)
	a.B(arms.CondEQ, "ok")
	a.MovR(arms.R0, arms.R6)
	a.MovR(arms.R1, arms.R5)
	a.BL("parse_rr")
	a.CmpI(arms.R0, 0)
	a.B(arms.CondEQ, "bad")
	a.MovR(arms.R5, arms.R0)
	a.SubI(arms.R4, arms.R4, 1)
	a.BAlways("aloop")

	a.Label("ok")
	a.MovW(arms.R0, 0)
	a.Pop(arms.R4, arms.R5, arms.R6, arms.PC)
	a.Label("bad")
	a.MovW(arms.R0, 0xFFFF)
	a.MovT(arms.R0, 0xFFFF) // -1
	a.Pop(arms.R4, arms.R5, arms.R6, arms.PC)
	return a
}

// buildParseRRARM is the frame-owning answer parser. Frame layout (bs =
// buffer size): name_len at sp+0, rdlen at sp+4, the buffer at sp+8, the
// cache-entry pointer at sp+8+bs (the must-be-NULL slot), a second
// transaction pointer at sp+12+bs for the dnsmasq variant, then the
// canary/pad word and the saved registers.
func buildParseRRARM(opts BuildOpts) *arms.Asm {
	bs := opts.BufSize()
	cacheOff := bs + 8
	txnOff := int32(0)
	frame := bs + 16
	if opts.Variant == VariantDnsmasq {
		txnOff = bs + 12
		frame = bs + 24
	}
	canaryOff := frame - 4

	a := arms.NewAsm()
	a.Push(arms.R4, arms.R5, arms.R6, arms.R7, arms.FP, arms.LR)
	a.SubI(arms.SP, arms.SP, frame)
	a.MovW(arms.R3, 0)
	a.Str(arms.R3, arms.SP, 0)        // name_len = 0
	a.Str(arms.R3, arms.SP, cacheOff) // cache_entry = NULL
	if txnOff != 0 {
		a.Str(arms.R3, arms.SP, txnOff) // txn pointer = NULL
	}
	if opts.Canary {
		a.MovSym(arms.R3, "__stack_chk_guard", 0)
		a.Ldr(arms.R3, arms.R3, 0)
		a.Str(arms.R3, arms.SP, canaryOff)
	}
	a.MovR(arms.R4, arms.R0) // pkt
	a.MovR(arms.R5, arms.R1) // p

	// get_name(pkt, p, name, &name_len).
	a.AddI(arms.R2, arms.SP, 8)
	a.MovR(arms.R3, arms.SP)
	a.BL("get_name")
	a.CmpI(arms.R0, 0)
	a.B(arms.CondEQ, "fail")
	a.MovR(arms.R5, arms.R0) // p after name

	// The cache-entry check: if the pointer became non-NULL, "release" it.
	// A smashed garbage pointer faults here — the pre-pop obstacle the
	// paper's ARM exploits defuse by planting NULLs.
	a.Ldr(arms.R3, arms.SP, cacheOff)
	a.CmpI(arms.R3, 0)
	a.B(arms.CondEQ, "nofree")
	a.Ldr(arms.R2, arms.R3, 0)
	a.Label("nofree")
	if txnOff != 0 {
		// The dnsmasq variant walks a second pointer, so its exploits
		// must plant two NULL words.
		a.Ldr(arms.R3, arms.SP, txnOff)
		a.CmpI(arms.R3, 0)
		a.B(arms.CondEQ, "notxn")
		a.Ldr(arms.R2, arms.R3, 0)
		a.Label("notxn")
	}

	// rdlen = p[8]<<8 | p[9].
	a.Ldrb(arms.R2, arms.R5, 8)
	a.LslI(arms.R2, arms.R2, 8)
	a.Ldrb(arms.R3, arms.R5, 9)
	a.OrrR(arms.R2, arms.R2, arms.R3)
	a.Str(arms.R2, arms.SP, 4)

	// Cache type A answers: memcpy(dns_cache, name, 64).
	a.Ldrb(arms.R3, arms.R5, 1)
	a.CmpI(arms.R3, 1)
	a.B(arms.CondNE, "skipcache")
	a.Ldrb(arms.R3, arms.R5, 0)
	a.CmpI(arms.R3, 0)
	a.B(arms.CondNE, "skipcache")
	a.MovSym(arms.R0, "dns_cache", 0)
	a.AddI(arms.R1, arms.SP, 8)
	a.MovW(arms.R2, 64)
	a.BL("memcpy@plt")
	a.Label("skipcache")

	// return p + 10 + rdlen.
	a.Ldr(arms.R2, arms.SP, 4)
	a.AddI(arms.R0, arms.R5, 10)
	a.AddR(arms.R0, arms.R0, arms.R2)
	a.BAlways("done")
	a.Label("fail")
	a.MovW(arms.R0, 0)
	a.Label("done")
	if opts.Canary {
		a.MovSym(arms.R3, "__stack_chk_guard", 0)
		a.Ldr(arms.R3, arms.R3, 0)
		a.Ldr(arms.R2, arms.SP, canaryOff)
		a.CmpR(arms.R2, arms.R3)
		a.B(arms.CondNE, "smash")
	}
	a.AddI(arms.SP, arms.SP, frame)
	a.Pop(arms.R4, arms.R5, arms.R6, arms.R7, arms.FP, arms.PC)
	if opts.Canary {
		a.Label("smash")
		a.BL("__stack_chk_fail")
	}
	return a
}

// buildGetNameARM is the vulnerable (or patched) decompressor, the arms
// twin of Listing 1.
func buildGetNameARM(opts BuildOpts) *arms.Asm {
	a := arms.NewAsm()
	a.Push(arms.R4, arms.R5, arms.R6, arms.R7, arms.R8, arms.LR)
	a.MovR(arms.R4, arms.R0) // pkt
	a.MovR(arms.R5, arms.R1) // p
	a.MovR(arms.R6, arms.R2) // name
	a.MovR(arms.R7, arms.R3) // &name_len
	a.MovW(arms.R8, 0)       // end: record resume position after a pointer

	a.Label("loop")
	a.Ldrb(arms.R0, arms.R5, 0)
	a.CmpI(arms.R0, 0)
	a.B(arms.CondEQ, "finish")
	a.AndI(arms.R1, arms.R0, 0xC0)
	a.CmpI(arms.R1, 0xC0)
	a.B(arms.CondEQ, "pointer")

	if opts.Patched {
		// 1.35 fix: bail out before the copy would overflow.
		a.Ldr(arms.R1, arms.R7, 0)
		a.AddR(arms.R1, arms.R1, arms.R0)
		a.AddI(arms.R1, arms.R1, 2)
		a.CmpI(arms.R1, opts.BufSize())
		a.B(arms.CondGT, "bounds")
	}

	// name[(*name_len)++] = label_len.
	a.Ldr(arms.R1, arms.R7, 0)
	a.AddR(arms.R2, arms.R6, arms.R1)
	a.Strb(arms.R0, arms.R2, 0)
	a.AddI(arms.R1, arms.R1, 1)
	a.Str(arms.R1, arms.R7, 0)

	// memcpy(name + *name_len, p + 1, label_len + 1).
	a.AddR(arms.R0, arms.R6, arms.R1)
	a.AddI(arms.R1, arms.R5, 1)
	a.Ldrb(arms.R2, arms.R5, 0)
	a.AddI(arms.R2, arms.R2, 1)
	a.BL("memcpy@plt")

	// *name_len += label_len; p += label_len + 1.
	a.Ldrb(arms.R0, arms.R5, 0)
	a.Ldr(arms.R1, arms.R7, 0)
	a.AddR(arms.R1, arms.R1, arms.R0)
	a.Str(arms.R1, arms.R7, 0)
	a.AddI(arms.R5, arms.R5, 1)
	a.AddR(arms.R5, arms.R5, arms.R0)
	a.BAlways("loop")

	// Compression pointer: remember where the record resumes (first
	// pointer only), then p = pkt + ((c & 0x3F) << 8 | p[1]).
	a.Label("pointer")
	a.CmpI(arms.R8, 0)
	a.B(arms.CondNE, "jumped")
	a.AddI(arms.R8, arms.R5, 2)
	a.Label("jumped")
	a.AndI(arms.R0, arms.R0, 0x3F)
	a.LslI(arms.R0, arms.R0, 8)
	a.Ldrb(arms.R1, arms.R5, 1)
	a.OrrR(arms.R0, arms.R0, arms.R1)
	a.AddR(arms.R5, arms.R4, arms.R0)
	a.BAlways("loop")

	a.Label("finish")
	a.CmpI(arms.R8, 0)
	a.B(arms.CondEQ, "noend")
	a.MovR(arms.R0, arms.R8) // return the saved end after a pointer
	a.Pop(arms.R4, arms.R5, arms.R6, arms.R7, arms.R8, arms.PC)
	a.Label("noend")
	a.AddI(arms.R0, arms.R5, 1)
	a.Pop(arms.R4, arms.R5, arms.R6, arms.R7, arms.R8, arms.PC)
	if opts.Patched {
		a.Label("bounds")
		a.MovW(arms.R0, 0)
		a.Pop(arms.R4, arms.R5, arms.R6, arms.R7, arms.R8, arms.PC)
	}
	return a
}

// buildSpawnResolverARM pulls in the execlp import.
func buildSpawnResolverARM() *arms.Asm {
	a := arms.NewAsm()
	a.Push(arms.R4, arms.LR)
	a.MovSym(arms.R0, "str_helper", 0)
	a.MovSym(arms.R1, "str_helper", 0)
	a.MovW(arms.R2, 0)
	a.BL("execlp@plt")
	a.Pop(arms.R4, arms.PC)
	return a
}

// buildLogErrorARM writes a diagnostic string (strlen/write imports).
func buildLogErrorARM() *arms.Asm {
	a := arms.NewAsm()
	a.Push(arms.R4, arms.LR)
	a.MovR(arms.R4, arms.R0)
	a.BL("strlen@plt")
	a.MovR(arms.R2, arms.R0)
	a.MovR(arms.R1, arms.R4)
	a.MovW(arms.R0, 2)
	a.BL("write@plt")
	a.Pop(arms.R4, arms.PC)
	return a
}

// buildInvokeCallbackARM is a callback dispatcher. Its `blx r3` is the
// branch-link gadget the ASLR exploit chains memcpy calls with (paper
// §III-C2); the pop {pc} after it is what strings chain blocks together
// when the callee returns via bx lr.
func buildInvokeCallbackARM() *arms.Asm {
	a := arms.NewAsm()
	a.Push(arms.LR)
	a.BLX(arms.R3)
	a.Pop(arms.PC)
	return a
}

// buildRestoreTaskContextARM is a coroutine-style context restore. Its
// epilogue is the register-loading gadget the paper found with ropper:
// `pop {r0, r1, r2, r3, r5, r6, r7, pc}`.
func buildRestoreTaskContextARM() *arms.Asm {
	a := arms.NewAsm()
	a.MovR(arms.SP, arms.R0)
	a.Pop(arms.R0, arms.R1, arms.R2, arms.R3, arms.R5, arms.R6, arms.R7, arms.PC)
	return a
}

// buildStackChkFailARM is the canary failure path.
func buildStackChkFailARM() *arms.Asm {
	a := arms.NewAsm()
	a.MovImm32(arms.R7, abi.SysAbort)
	a.Svc(0)
	a.Label("spin")
	a.BAlways("spin")
	return a
}
