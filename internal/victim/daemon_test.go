package victim

import (
	"bytes"
	"math/rand"
	"testing"

	"connlab/internal/dns"
	"connlab/internal/isa"
	"connlab/internal/kernel"
)

// cacheSnapshot reads the daemon's .bss dns_cache.
func cacheSnapshot(t *testing.T, d *Daemon, n uint32) []byte {
	t.Helper()
	addr, ok := d.Process().Prog.Lookup("dns_cache")
	if !ok {
		t.Fatal("no dns_cache symbol")
	}
	b, f := d.Process().Mem().ReadBytes(addr, n)
	if f != nil {
		t.Fatal(f)
	}
	return b
}

// TestTypeAAnswerIsCached asserts the emulated parse_rr really performs
// its memcpy@plt into .bss: after a benign Type A response, the cache
// holds the wire-form name (length-prefixed labels).
func TestTypeAAnswerIsCached(t *testing.T) {
	for _, arch := range []isa.Arch{isa.ArchX86S, isa.ArchARMS} {
		t.Run(string(arch), func(t *testing.T) {
			d, err := NewDaemon(arch, BuildOpts{}, kernel.Config{Seed: 6})
			if err != nil {
				t.Fatal(err)
			}
			q := dns.NewQuery(0x10, "cacheme.example", dns.TypeA)
			resp := dns.NewResponse(q)
			resp.Answers = []dns.RR{dns.A("cacheme.example", 60, [4]byte{1, 1, 1, 1})}
			pkt, err := resp.Encode()
			if err != nil {
				t.Fatal(err)
			}
			if _, err := d.HandleResponse(pkt); err != nil {
				t.Fatal(err)
			}
			cache := cacheSnapshot(t, d, 32)
			want := []byte("\x07cacheme\x07example")
			if !bytes.Contains(cache, want) {
				t.Errorf("cache = %q, want to contain %q", cache, want)
			}
		})
	}
}

// TestCNAMEAnswerNotCached: the cache memcpy only runs for Type A, per
// the victim's type check.
func TestCNAMEAnswerNotCached(t *testing.T) {
	d, err := NewDaemon(isa.ArchX86S, BuildOpts{}, kernel.Config{Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	q := dns.NewQuery(0x11, "alias.example", dns.TypeA)
	resp := dns.NewResponse(q)
	target, err := dns.AppendRawName(nil, "real.example")
	if err != nil {
		t.Fatal(err)
	}
	resp.Answers = []dns.RR{{
		Name: "alias.example", Type: dns.TypeCNAME, Class: dns.ClassIN,
		TTL: 60, Data: target,
	}}
	pkt, err := resp.Encode()
	if err != nil {
		t.Fatal(err)
	}
	res, err := d.HandleResponse(pkt)
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != kernel.StatusReturned {
		t.Fatalf("res = %v", res)
	}
	cache := cacheSnapshot(t, d, 32)
	if !bytes.Equal(cache, make([]byte, 32)) {
		t.Errorf("cache modified by CNAME: %q", cache)
	}
}

// TestMultipleAnswersParsed: the answer loop walks every record.
func TestMultipleAnswersParsed(t *testing.T) {
	for _, arch := range []isa.Arch{isa.ArchX86S, isa.ArchARMS} {
		t.Run(string(arch), func(t *testing.T) {
			d, err := NewDaemon(arch, BuildOpts{}, kernel.Config{Seed: 6})
			if err != nil {
				t.Fatal(err)
			}
			q := dns.NewQuery(0x12, "multi.example", dns.TypeA)
			resp := dns.NewResponse(q)
			for i := 0; i < 5; i++ {
				resp.Answers = append(resp.Answers,
					dns.A("multi.example", 60, [4]byte{10, 0, 0, byte(i)}))
			}
			pkt, err := resp.Encode()
			if err != nil {
				t.Fatal(err)
			}
			res, err := d.HandleResponse(pkt)
			if err != nil {
				t.Fatal(err)
			}
			if res.Status != kernel.StatusReturned || res.RetVal != 0 {
				t.Fatalf("res = %v", res)
			}
		})
	}
}

// TestCompressedAnswersParse: compression pointers in answer names (the
// normal, benign kind produced by the encoder) decompress correctly in
// the emulated get_name.
func TestCompressedAnswersParse(t *testing.T) {
	q := dns.NewQuery(0x13, "compress.me.example", dns.TypeA)
	resp := dns.NewResponse(q)
	// Two answers with the same name: the second is a pure pointer.
	resp.Answers = []dns.RR{
		dns.A("compress.me.example", 60, [4]byte{1, 2, 3, 4}),
		dns.A("compress.me.example", 60, [4]byte{5, 6, 7, 8}),
	}
	pkt, err := resp.Encode()
	if err != nil {
		t.Fatal(err)
	}
	d, err := NewDaemon(isa.ArchARMS, BuildOpts{}, kernel.Config{Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	res, err := d.HandleResponse(pkt)
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != kernel.StatusReturned || res.RetVal != 0 {
		t.Fatalf("res = %v", res)
	}
	// The decompressed name was cached through the pointer.
	cache := cacheSnapshot(t, d, 32)
	if !bytes.Contains(cache, []byte("\x08compress\x02me")) {
		t.Errorf("cache = %q", cache)
	}
}

// TestRandomResponsesNeverSpawnShells: a fuzz-flavoured safety invariant —
// random (well-framed but garbage-filled) responses may crash the
// vulnerable daemon but must never reach an exec by accident.
func TestRandomResponsesNeverSpawnShells(t *testing.T) {
	rng := rand.New(rand.NewSource(31337))
	for trial := 0; trial < 60; trial++ {
		arch := isa.ArchX86S
		if trial%2 == 1 {
			arch = isa.ArchARMS
		}
		d, err := NewDaemon(arch, BuildOpts{}, kernel.Config{Seed: int64(trial)})
		if err != nil {
			t.Fatal(err)
		}
		// Random label stream of random lengths/content.
		var raw []byte
		for len(raw) < 200+rng.Intn(1500) {
			l := 1 + rng.Intn(63)
			raw = append(raw, byte(l))
			chunk := make([]byte, l)
			rng.Read(chunk)
			raw = append(raw, chunk...)
		}
		raw = append(raw, 0)
		q := dns.NewQuery(uint16(trial), "fuzz.example", dns.TypeA)
		resp := dns.NewResponse(q)
		resp.Answers = []dns.RR{{
			RawName: raw, Type: dns.TypeA, Class: dns.ClassIN, TTL: 1,
			Data: []byte{0, 0, 0, 0},
		}}
		pkt, err := resp.Encode()
		if err != nil {
			t.Fatal(err)
		}
		res, err := d.HandleResponse(pkt)
		if err != nil {
			continue // rejected by pre-checks: fine
		}
		if res.Status == kernel.StatusShell {
			t.Fatalf("trial %d: random bytes spawned a shell: %v", trial, res)
		}
		if len(d.Shells()) != 0 {
			t.Fatalf("trial %d: shell recorded", trial)
		}
	}
}

// TestVariantStringsAndVersions covers the metadata helpers.
func TestVariantStringsAndVersions(t *testing.T) {
	if VariantConnman.String() != "connman" || VariantDnsmasq.String() != "dnsmasq" {
		t.Error("Variant.String broken")
	}
	if (BuildOpts{}).Version() != "1.34" || (BuildOpts{Patched: true}).Version() != "1.35" {
		t.Error("Version broken")
	}
	if (BuildOpts{Variant: VariantDnsmasq}).BufSize() != DnsmasqBufSize {
		t.Error("BufSize broken")
	}
}

// TestGroundTruthOffsets: the helper functions agree with the documented
// constants for the Connman build.
func TestGroundTruthOffsets(t *testing.T) {
	if RetOffsetFor(isa.ArchX86S, BuildOpts{}) != X86RetOffset {
		t.Error("x86 ret offset helper mismatch")
	}
	if RetOffsetFor(isa.ArchX86S, BuildOpts{Canary: true}) != X86CanaryRetOffset {
		t.Error("x86 canary ret offset helper mismatch")
	}
	if RetOffsetFor(isa.ArchARMS, BuildOpts{}) != ARMRetOffset {
		t.Error("arm ret offset helper mismatch")
	}
	nulls := NullOffsetsFor(isa.ArchARMS, BuildOpts{})
	if len(nulls) != 1 || nulls[0] != ARMNullOffset {
		t.Error("arm null offsets helper mismatch")
	}
	if NullOffsetsFor(isa.ArchX86S, BuildOpts{}) != nil {
		t.Error("x86 must have no null slots")
	}
}
