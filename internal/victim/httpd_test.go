package victim

import (
	"bytes"
	"testing"

	"connlab/internal/kernel"
)

func newHTTPDaemon(t *testing.T) *HTTPDaemon {
	t.Helper()
	d, err := NewHTTPDaemon(kernel.Config{Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestHTTPRejectsNonGET(t *testing.T) {
	d := newHTTPDaemon(t)
	if _, err := d.HandleRequest([]byte("POST /x HTTP/1.0\r\n")); err == nil {
		t.Error("POST accepted")
	}
	if _, err := d.HandleRequest(bytes.Repeat([]byte("GET "), 2000)); err == nil {
		t.Error("oversized request accepted")
	}
	if d.Crashed() {
		t.Error("rejections crashed the daemon")
	}
}

func TestHTTPParsesLongButLegalURI(t *testing.T) {
	d := newHTTPDaemon(t)
	uri := bytes.Repeat([]byte{'a'}, HTTPBufSize-8) // inside the buffer
	req := append([]byte("GET /"), uri...)
	req = append(req, []byte(" HTTP/1.0\r\n")...)
	res, err := d.HandleRequest(req)
	if err != nil {
		t.Fatal(err)
	}
	// The copy stops at CR; " HTTP/1.0" precedes it, so everything up to
	// the CR lands in the buffer — 255+ bytes still fits? It does not:
	// "GET " skipped, then len("/aaaa…") + " HTTP/1.0" bytes. Keep within
	// bounds by construction above (248 + 10 = 258 > 256!) — so this
	// borderline request actually overruns by two bytes into the first
	// local, which the handler tolerates (no return-address damage).
	if res.Status != kernel.StatusReturned {
		t.Fatalf("res = %v", res)
	}
}

func TestHTTPCRTerminatesCopy(t *testing.T) {
	d := newHTTPDaemon(t)
	// A CR right after a huge prefix would overflow — but the CR comes
	// first here, so the copy stops safely.
	req := append([]byte("GET /ok\r\n"), bytes.Repeat([]byte{'X'}, 1000)...)
	res, err := d.HandleRequest(req)
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != kernel.StatusReturned {
		t.Fatalf("res = %v", res)
	}
	if d.Crashed() {
		t.Error("daemon crashed on terminated request")
	}
}

func TestHTTPCrashedDaemonRefuses(t *testing.T) {
	d := newHTTPDaemon(t)
	huge := append([]byte("GET /"), bytes.Repeat([]byte{'B'}, 900)...)
	huge = append(huge, []byte(" HTTP/1.0\r\n")...)
	res, err := d.HandleRequest(huge)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Crashed() {
		t.Fatalf("overflow did not crash: %v", res)
	}
	if _, err := d.HandleRequest([]byte("GET / HTTP/1.0\r\n")); err == nil {
		t.Error("crashed daemon served a request")
	}
	if d.LastResult().Status != res.Status {
		t.Error("LastResult mismatch")
	}
}
