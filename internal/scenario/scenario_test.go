package scenario

import (
	"os"
	"reflect"
	"strings"
	"testing"

	"connlab/internal/campaign"
	"connlab/internal/exploit"
	"connlab/internal/isa"
	"connlab/internal/victim"
)

// TestEmbeddedSpecsParse: every shipped spec parses, validates, and
// round-trips through its canonical rendering.
func TestEmbeddedSpecsParse(t *testing.T) {
	names := Names()
	if len(names) < 4 {
		t.Fatalf("embedded specs = %v, want at least the four shipped scenarios", names)
	}
	for _, name := range names {
		t.Run(name, func(t *testing.T) {
			s, err := Load(name)
			if err != nil {
				t.Fatalf("Load: %v", err)
			}
			if s.Name != name {
				t.Errorf("spec name %q does not match file name %q", s.Name, name)
			}
			again, err := Parse([]byte(s.String()))
			if err != nil {
				t.Fatalf("canonical form does not re-parse: %v\n%s", err, s.String())
			}
			if !reflect.DeepEqual(s, again) {
				t.Errorf("round-trip mismatch:\nfirst:  %+v\nsecond: %+v", s, again)
			}
			if s.Hash() != again.Hash() {
				t.Errorf("round-trip changed the content hash")
			}
		})
	}
}

// TestParseErrors: the strict parser rejects malformed specs with
// line-tagged errors rather than guessing.
func TestParseErrors(t *testing.T) {
	tests := []struct {
		name, src, want string
	}{
		{"empty", "", "missing scenario"},
		{"scenario not first", "arch x86s\nscenario x\n", "first directive"},
		{"unknown directive", "scenario x\nbogus 1\n", "unknown directive"},
		{"duplicate directive", "scenario x\narch x86s\narch arms\n", "duplicate directive"},
		{"bad arch", "scenario x\narch mips\n", "unknown arch"},
		{"bad outcome", "scenario x\narch x86s\nbuffer 1024\nrows none\nkind dos\nexpect * none=explode\n", "unknown outcome"},
		{"expect outside kind", "scenario x\narch x86s\nbuffer 1024\nrows none\nexpect * none=crash\n", "outside a kind"},
		{"directive after kind", "scenario x\narch x86s\nbuffer 1024\nrows none\nkind dos\nexpect * none=crash\ndevices 3\n", "must precede"},
		{"missing expectation", "scenario x\narch x86s arms\nbuffer 1024\nrows none wx\nkind dos\nexpect x86s none=crash wx=crash\n", "no expectation for arms"},
		{"wrong buffer", "scenario x\narch x86s\nbuffer 512\nrows none\nkind dos\nexpect * none=crash\n", "does not match"},
		{"discovery contradicts bound", "scenario x\narch x86s\nbuffer 1024\nbound slack=1\nframe fp\ndiscovery probe\nrows none\nkind dos\nexpect * none=crash\n", "contradicts bound"},
		{"geometry invalid", "scenario x\narch x86s\nbuffer 1024\nsite heap\nframe fp\nrows none\nkind dos\nexpect * none=crash\n", "heap"},
		{"slack out of range", "scenario x\narch x86s\nbuffer 1024\nbound slack=300\nrows none\nkind dos\nexpect * none=crash\n", "slack"},
		{"duplicate expect cell", "scenario x\narch x86s\nbuffer 1024\nrows none\nkind dos\nexpect * none=crash\nexpect * none=crash\n", "duplicate expect"},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Parse([]byte(tc.src))
			if err == nil {
				t.Fatalf("Parse accepted malformed spec")
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Errorf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}

// TestExpectedPrecedence: an arch-specific expect line beats a "*" line
// for the same row.
func TestExpectedPrecedence(t *testing.T) {
	src := `scenario x
arch x86s arms
buffer 1024
rows none wx
kind dos
expect * none=crash wx=crash
expect arms none=no-effect wx=crash|blocked
`
	s, err := Parse([]byte(src))
	if err != nil {
		t.Fatal(err)
	}
	got, ok := s.Expected(exploit.KindDoS, isa.ArchARMS, RowNone)
	if !ok || !reflect.DeepEqual(got, []campaign.Outcome{campaign.OutcomeNoEffect}) {
		t.Errorf("arms/none = %v %v, want [NO-EFFECT]", got, ok)
	}
	got, ok = s.Expected(exploit.KindDoS, isa.ArchX86S, RowNone)
	if !ok || !reflect.DeepEqual(got, []campaign.Outcome{campaign.OutcomeCrash}) {
		t.Errorf("x86s/none = %v %v, want [CRASH]", got, ok)
	}
	got, ok = s.Expected(exploit.KindDoS, isa.ArchARMS, RowWX)
	if !ok || len(got) != 2 {
		t.Errorf("arms/wx = %v %v, want two alternatives", got, ok)
	}
	if _, ok := s.Expected(exploit.KindDoS, isa.ArchARMS, RowWXASLR); ok {
		t.Errorf("row outside the spec resolved an expectation")
	}
}

// TestSpecBuildOpts: the spec's geometry directives compile into the
// victim build options field-for-field.
func TestSpecBuildOpts(t *testing.T) {
	ob, err := Load("offbyone-fp")
	if err != nil {
		t.Fatal(err)
	}
	want := victim.BuildOpts{Frame: victim.FrameFP, Bounded: true, Slack: 1}
	if got := ob.BuildOpts(); got != want {
		t.Errorf("offbyone-fp BuildOpts = %+v, want %+v", got, want)
	}
	if ob.Discovery != DiscoveryDeclared {
		t.Errorf("offbyone-fp discovery = %s, want declared", ob.Discovery)
	}
	ha, err := Load("heap-adjacent")
	if err != nil {
		t.Fatal(err)
	}
	want = victim.BuildOpts{Site: victim.SiteHeap}
	if got := ha.BuildOpts(); got != want {
		t.Errorf("heap-adjacent BuildOpts = %+v, want %+v", got, want)
	}
	fi := ha.FrameInfo(isa.ArchX86S)
	if fi.RetOffset != 1024 {
		t.Errorf("heap-adjacent handler offset = %d, want 1024", fi.RetOffset)
	}
}

// TestCompileOverlayValidation: overlays that contradict the spec's
// geometry fail at compile time, not inside a worker.
func TestCompileOverlayValidation(t *testing.T) {
	ob, err := Load("offbyone-fp")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Compile(ob, CompileOpts{Patched: true}); err == nil {
		t.Errorf("bounded geometry accepted a patched overlay")
	}
	if _, err := Compile(ob, CompileOpts{Canary: true}); err == nil {
		t.Errorf("fp frame accepted a canary overlay")
	}
	if _, err := Compile(ob, CompileOpts{Arch: isa.Arch("mips")}); err == nil {
		t.Errorf("unknown arch filter accepted")
	}
	if _, err := Compile(ob, CompileOpts{Kind: exploit.KindRopMemcpy}); err == nil {
		t.Errorf("kind outside the spec accepted")
	}
}

// TestCompileFilters: arch/kind filters narrow the cell list while
// preserving enumeration order.
func TestCompileFilters(t *testing.T) {
	s, err := Load("connman")
	if err != nil {
		t.Fatal(err)
	}
	cells, err := Compile(s, CompileOpts{Arch: isa.ArchARMS, Kind: exploit.KindDoS, Devices: 3, Pineapple: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != 3 {
		t.Fatalf("filtered compile = %d cells, want 3 (one per row)", len(cells))
	}
	for i, c := range cells {
		if c.Arch != isa.ArchARMS || c.Kind != exploit.KindDoS || c.Devices != 3 || !c.Pineapple {
			t.Errorf("cell %d = %+v, want arms/dos devices=3 pineapple", i, c)
		}
	}
	if !cells[2].Protection.WX || !cells[2].Protection.ASLR {
		t.Errorf("rows out of order: last cell protection = %+v", cells[2].Protection)
	}
}

// TestResolve: the shared CLI lookup rule prefers embedded names and
// falls through to disk paths.
func TestResolve(t *testing.T) {
	if _, err := Resolve("connman"); err != nil {
		t.Errorf("embedded name: %v", err)
	}
	s, err := Load("heap-adjacent")
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir() + "/custom.scn"
	if err := os.WriteFile(dir, []byte(s.String()), 0o644); err != nil {
		t.Fatal(err)
	}
	onDisk, err := Resolve(dir)
	if err != nil {
		t.Fatalf("path lookup: %v", err)
	}
	if !reflect.DeepEqual(s, onDisk) {
		t.Errorf("on-disk spec differs from its source")
	}
	if _, err := Resolve("no-such-scenario"); err == nil {
		t.Errorf("unknown name resolved")
	}
}
