package scenario

import (
	"reflect"
	"testing"
)

// FuzzScenarioSpec: the parser must never panic on any input, and every
// spec it accepts must round-trip through its canonical rendering —
// parse(String(parse(src))) reproduces the same Spec and content hash.
func FuzzScenarioSpec(f *testing.F) {
	for _, name := range Names() {
		src, err := Source(name)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(src)
	}
	f.Add([]byte("scenario x\narch x86s\nbuffer 1024\nrows none\nkind dos\nexpect * none=crash\n"))
	f.Add([]byte("scenario y\nvariant dnsmasq\narch arms\nbuffer 512\nbound slack=0\nrows wx\nkind dos\nexpect arms wx=crash|blocked\n"))
	f.Add([]byte("scenario z\n# comment\n\narch x86s arms\nbuffer 1024\nsite heap\nrows none wx+aslr\ndevices 7\nkind code-injection\nexpect * none=shell wx+aslr=crash\n"))
	f.Fuzz(func(t *testing.T, src []byte) {
		s, err := Parse(src)
		if err != nil {
			return
		}
		again, err := Parse([]byte(s.String()))
		if err != nil {
			t.Fatalf("accepted spec's canonical form rejected: %v\n%s", err, s.String())
		}
		if !reflect.DeepEqual(s, again) {
			t.Fatalf("round-trip mismatch:\nfirst:  %+v\nsecond: %+v", s, again)
		}
		if s.Hash() != again.Hash() {
			t.Fatalf("round-trip changed the content hash")
		}
	})
}
