package scenario

import (
	"embed"
	"fmt"
	"os"
	"path"
	"sort"
	"strings"
)

// specFS carries the lab's embedded scenario programs — the paper's two
// victim variants plus the CVE-analog geometries, all pure data.
//
//go:embed specs/*.scn
var specFS embed.FS

// Names lists the embedded scenario names, sorted.
func Names() []string {
	entries, err := specFS.ReadDir("specs")
	if err != nil {
		// The embed is a compile-time constant directory; this cannot fail.
		panic(fmt.Sprintf("scenario: embedded specs: %v", err))
	}
	var names []string
	for _, e := range entries {
		names = append(names, strings.TrimSuffix(e.Name(), ".scn"))
	}
	sort.Strings(names)
	return names
}

// Source returns the raw text of an embedded spec.
func Source(name string) ([]byte, error) {
	b, err := specFS.ReadFile(path.Join("specs", name+".scn"))
	if err != nil {
		return nil, fmt.Errorf("scenario: no embedded scenario %q (have %s)",
			name, strings.Join(Names(), ", "))
	}
	return b, nil
}

// Load parses an embedded spec by name.
func Load(name string) (*Spec, error) {
	src, err := Source(name)
	if err != nil {
		return nil, err
	}
	s, err := Parse(src)
	if err != nil {
		return nil, fmt.Errorf("embedded %s: %w", name, err)
	}
	return s, nil
}

// LoadFile parses a spec from disk.
func LoadFile(p string) (*Spec, error) {
	src, err := os.ReadFile(p)
	if err != nil {
		return nil, err
	}
	s, err := Parse(src)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", p, err)
	}
	return s, nil
}

// Resolve loads a scenario by embedded name or, when the argument names
// an existing file (or ends in .scn), from disk — the lookup rule every
// -scenario CLI flag shares.
func Resolve(nameOrPath string) (*Spec, error) {
	if strings.HasSuffix(nameOrPath, ".scn") || strings.ContainsAny(nameOrPath, "/\\") {
		return LoadFile(nameOrPath)
	}
	if _, err := os.Stat(nameOrPath); err == nil {
		return LoadFile(nameOrPath)
	}
	return Load(nameOrPath)
}
