// Package scenario is the lab's declarative scenario compiler: a
// vulnerability scenario — vulnerable function geometry, overflow site,
// buffer dimensions, protection matrix, and per-row success predicate —
// is written as a small machine-checkable spec and *compiled* into the
// victim build options, campaign scenario lists, and verification
// predicates the rest of the lab consumes. New CVE-analog scenarios are
// pure data: a .scn file, no Go.
//
// # Spec grammar
//
// A spec is strict line-based text: one directive per line, full-line
// `#` comments, blank lines ignored. Directives before the first `kind`
// describe the victim; each `kind` opens a block of expected-outcome
// predicates:
//
//	scenario <name>              required first directive; [a-z0-9-]+
//	title <free text>            optional
//	cve <free text>              optional provenance note
//	variant connman|dnsmasq      default connman
//	arch <a> [<a>...]            required; x86s and/or arms
//	buffer <n>                   required; must equal the variant's size
//	site stack|heap              default stack
//	frame default|fp             default default
//	bound unbounded|slack=<n>    default unbounded
//	discovery probe|declared     optional; must agree with bound
//	rows <r> [<r>...]            required; none, wx, wx+aslr
//	devices <n>                  optional fleet size
//	kind <k>                     opens a kind block
//	expect <arch|*> <row>=<outcome>[|<outcome>] ...
//
// Outcomes are lowercase verdict tokens (shell, crash, blocked,
// no-effect, no-payload, error); `|` lists acceptable alternatives for
// rows where the verdict is legitimately seed-dependent. The validator
// requires every (kind, arch, row) cell to have exactly one applicable
// predicate, so a compiled campaign is totally checkable.
package scenario

import (
	"bufio"
	"crypto/sha256"
	"fmt"
	"regexp"
	"strconv"
	"strings"

	"connlab/internal/campaign"
	"connlab/internal/exploit"
	"connlab/internal/isa"
	"connlab/internal/victim"
)

// Row tokens of the protection matrix, in the paper's §III order.
const (
	RowNone   = "none"
	RowWX     = "wx"
	RowWXASLR = "wx+aslr"
)

// rowOrder is the canonical row ordering (and the valid-token set).
var rowOrder = []string{RowNone, RowWX, RowWXASLR}

// RowProtection maps a row token to its protection posture.
func RowProtection(row string) (campaign.Protection, bool) {
	switch row {
	case RowNone:
		return campaign.LevelNone, true
	case RowWX:
		return campaign.LevelWX, true
	case RowWXASLR:
		return campaign.LevelWXASLR, true
	}
	return campaign.Protection{}, false
}

// RowFor maps a base protection posture back to its row token. Overlay
// bits (CFI, canary, diversity, PIE) are ignored: the row names only the
// W⊕X/ASLR axis the paper's matrix varies.
func RowFor(p campaign.Protection) (string, bool) {
	base := campaign.Protection{WX: p.WX, ASLR: p.ASLR}
	switch base {
	case campaign.LevelNone:
		return RowNone, true
	case campaign.LevelWX:
		return RowWX, true
	case campaign.LevelWXASLR:
		return RowWXASLR, true
	}
	return "", false
}

// knownKinds is the exploit-strategy vocabulary specs may use.
var knownKinds = map[exploit.Kind]bool{
	exploit.KindDoS:           true,
	exploit.KindCodeInjection: true,
	exploit.KindRet2Libc:      true,
	exploit.KindRopExeclp:     true,
	exploit.KindRopMemcpy:     true,
}

// knownOutcomes is the lowercase verdict vocabulary of expect lines.
var knownOutcomes = map[string]bool{
	"shell": true, "crash": true, "blocked": true,
	"no-effect": true, "no-payload": true, "error": true,
}

// Discovery says how the attacker learns the frame geometry.
type Discovery string

// Discovery modes.
const (
	// DiscoveryProbe crash-probes a replica with cyclic patterns (the
	// paper's gdb sessions). Requires an unbounded copy.
	DiscoveryProbe Discovery = "probe"
	// DiscoveryDeclared takes the geometry from the compiled frame model:
	// a bounded copy cannot be probed past its own check.
	DiscoveryDeclared Discovery = "declared"
)

// Bound describes the copy's bound check.
type Bound struct {
	// Unbounded is the vulnerable 1.34-style copy.
	Unbounded bool
	// Slack is the widened-check reach in bytes when bounded (0 = the
	// exact 1.35 check, 1 = the off-by-one analog).
	Slack int
}

// String renders the bound directive's argument.
func (b Bound) String() string {
	if b.Unbounded {
		return "unbounded"
	}
	return fmt.Sprintf("slack=%d", b.Slack)
}

// RowExpect is one row's acceptable outcomes (alternation preserved in
// spec order).
type RowExpect struct {
	Row      string
	Outcomes []string
}

// ExpectLine is one expect directive: the arch it applies to ("*" for
// all) and its per-row predicates.
type ExpectLine struct {
	Arch string
	Rows []RowExpect
}

// KindSpec is one kind block: an exploit strategy plus its success
// predicates.
type KindSpec struct {
	Kind    exploit.Kind
	Expects []ExpectLine
}

// Spec is a parsed, validated scenario program.
type Spec struct {
	Name    string
	Title   string
	CVE     string
	Variant victim.Variant
	Arches  []isa.Arch
	Buffer  int
	Site    victim.Site
	Frame   victim.FrameKind
	Bound   Bound
	// Discovery is always resolved after parsing (derived from Bound when
	// the directive is omitted).
	Discovery Discovery
	Rows      []string
	Devices   int
	Kinds     []KindSpec
}

// BuildOpts compiles the spec's victim geometry.
func (s *Spec) BuildOpts() victim.BuildOpts {
	o := victim.BuildOpts{Variant: s.Variant, Site: s.Site, Frame: s.Frame}
	if !s.Bound.Unbounded {
		o.Bounded = true
		o.Slack = uint8(s.Bound.Slack)
	}
	return o
}

// Expected returns the acceptable outcomes for one (kind, arch, row)
// cell. An arch-specific expect line wins over a "*" line. The validator
// guarantees exactly one applies, so ok is false only for cells outside
// the spec (unknown kind, arch, or row).
func (s *Spec) Expected(kind exploit.Kind, arch isa.Arch, row string) ([]campaign.Outcome, bool) {
	for _, ks := range s.Kinds {
		if ks.Kind != kind {
			continue
		}
		var fallback []campaign.Outcome
		for _, el := range ks.Expects {
			for _, re := range el.Rows {
				if re.Row != row {
					continue
				}
				outs := make([]campaign.Outcome, len(re.Outcomes))
				for i, o := range re.Outcomes {
					outs[i] = campaign.Outcome(strings.ToUpper(o))
				}
				if el.Arch == string(arch) {
					return outs, true
				}
				if el.Arch == "*" {
					fallback = outs
				}
			}
		}
		if fallback != nil {
			return fallback, true
		}
	}
	return nil, false
}

// FrameInfo returns the compiled corruption geometry for one of the
// spec's architectures.
func (s *Spec) FrameInfo(arch isa.Arch) victim.FrameInfo {
	return victim.FrameModel(arch, s.BuildOpts())
}

// Hash is a content address of the spec (its canonical rendering), used
// by the compile cache.
func (s *Spec) Hash() [32]byte {
	return sha256.Sum256([]byte(s.String()))
}

// String renders the spec in canonical form: defaults made explicit,
// directives in grammar order. Parse(s.String()) reproduces s exactly.
func (s *Spec) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "scenario %s\n", s.Name)
	if s.Title != "" {
		fmt.Fprintf(&b, "title %s\n", s.Title)
	}
	if s.CVE != "" {
		fmt.Fprintf(&b, "cve %s\n", s.CVE)
	}
	fmt.Fprintf(&b, "variant %s\n", s.Variant)
	arches := make([]string, len(s.Arches))
	for i, a := range s.Arches {
		arches[i] = string(a)
	}
	fmt.Fprintf(&b, "arch %s\n", strings.Join(arches, " "))
	fmt.Fprintf(&b, "buffer %d\n", s.Buffer)
	fmt.Fprintf(&b, "site %s\n", s.Site)
	fmt.Fprintf(&b, "frame %s\n", s.Frame)
	fmt.Fprintf(&b, "bound %s\n", s.Bound)
	fmt.Fprintf(&b, "discovery %s\n", s.Discovery)
	fmt.Fprintf(&b, "rows %s\n", strings.Join(s.Rows, " "))
	if s.Devices != 0 {
		fmt.Fprintf(&b, "devices %d\n", s.Devices)
	}
	for _, ks := range s.Kinds {
		fmt.Fprintf(&b, "kind %s\n", ks.Kind)
		for _, el := range ks.Expects {
			fmt.Fprintf(&b, "expect %s", el.Arch)
			for _, re := range el.Rows {
				fmt.Fprintf(&b, " %s=%s", re.Row, strings.Join(re.Outcomes, "|"))
			}
			b.WriteByte('\n')
		}
	}
	return b.String()
}

var nameRe = regexp.MustCompile(`^[a-z0-9][a-z0-9-]*$`)

// parseErr is a line-tagged parse error.
func parseErr(n int, format string, args ...any) error {
	return fmt.Errorf("scenario: line %d: %s", n, fmt.Sprintf(format, args...))
}

// Parse parses and validates a scenario spec. It never panics on any
// input; every malformed spec produces a line-tagged error.
func Parse(src []byte) (*Spec, error) {
	s := &Spec{Variant: victim.VariantConnman}
	seen := map[string]bool{}
	inKinds := false
	var cur *KindSpec

	sc := bufio.NewScanner(strings.NewReader(string(src)))
	sc.Buffer(make([]byte, 1<<16), 1<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		dir, args := fields[0], fields[1:]
		if !seen["scenario"] && dir != "scenario" {
			return nil, parseErr(lineNo, "first directive must be scenario, got %q", dir)
		}
		if inKinds && dir != "kind" && dir != "expect" {
			return nil, parseErr(lineNo, "directive %q must precede the first kind block", dir)
		}
		if dir != "kind" && dir != "expect" {
			if seen[dir] {
				return nil, parseErr(lineNo, "duplicate directive %q", dir)
			}
			seen[dir] = true
		}
		switch dir {
		case "scenario":
			if len(args) != 1 || !nameRe.MatchString(args[0]) {
				return nil, parseErr(lineNo, "scenario wants one [a-z0-9-]+ name")
			}
			s.Name = args[0]
		case "title":
			if len(args) == 0 {
				return nil, parseErr(lineNo, "title wants text")
			}
			s.Title = strings.Join(args, " ")
		case "cve":
			if len(args) == 0 {
				return nil, parseErr(lineNo, "cve wants text")
			}
			s.CVE = strings.Join(args, " ")
		case "variant":
			if len(args) != 1 {
				return nil, parseErr(lineNo, "variant wants one of connman, dnsmasq")
			}
			switch args[0] {
			case "connman":
				s.Variant = victim.VariantConnman
			case "dnsmasq":
				s.Variant = victim.VariantDnsmasq
			default:
				return nil, parseErr(lineNo, "unknown variant %q", args[0])
			}
		case "arch":
			if len(args) == 0 {
				return nil, parseErr(lineNo, "arch wants at least one of x86s, arms")
			}
			for _, a := range args {
				arch := isa.Arch(a)
				if arch != isa.ArchX86S && arch != isa.ArchARMS {
					return nil, parseErr(lineNo, "unknown arch %q", a)
				}
				for _, have := range s.Arches {
					if have == arch {
						return nil, parseErr(lineNo, "duplicate arch %q", a)
					}
				}
				s.Arches = append(s.Arches, arch)
			}
		case "buffer":
			n, err := atoiArg(args)
			if err != nil {
				return nil, parseErr(lineNo, "buffer wants one integer: %v", err)
			}
			s.Buffer = n
		case "site":
			if len(args) != 1 {
				return nil, parseErr(lineNo, "site wants one of stack, heap")
			}
			switch args[0] {
			case "stack":
				s.Site = victim.SiteStack
			case "heap":
				s.Site = victim.SiteHeap
			default:
				return nil, parseErr(lineNo, "unknown site %q", args[0])
			}
		case "frame":
			if len(args) != 1 {
				return nil, parseErr(lineNo, "frame wants one of default, fp")
			}
			switch args[0] {
			case "default":
				s.Frame = victim.FrameDefault
			case "fp":
				s.Frame = victim.FrameFP
			default:
				return nil, parseErr(lineNo, "unknown frame %q", args[0])
			}
		case "bound":
			if len(args) != 1 {
				return nil, parseErr(lineNo, "bound wants unbounded or slack=<n>")
			}
			switch {
			case args[0] == "unbounded":
				s.Bound = Bound{Unbounded: true}
			case strings.HasPrefix(args[0], "slack="):
				n, err := strconv.Atoi(args[0][len("slack="):])
				if err != nil || n < 0 || n > 255 {
					return nil, parseErr(lineNo, "slack wants an integer in [0,255]")
				}
				s.Bound = Bound{Slack: n}
			default:
				return nil, parseErr(lineNo, "unknown bound %q", args[0])
			}
		case "discovery":
			if len(args) != 1 || (args[0] != string(DiscoveryProbe) && args[0] != string(DiscoveryDeclared)) {
				return nil, parseErr(lineNo, "discovery wants probe or declared")
			}
			s.Discovery = Discovery(args[0])
		case "rows":
			if len(args) == 0 {
				return nil, parseErr(lineNo, "rows wants at least one of none, wx, wx+aslr")
			}
			for _, r := range args {
				if _, ok := RowProtection(r); !ok {
					return nil, parseErr(lineNo, "unknown row %q", r)
				}
				for _, have := range s.Rows {
					if have == r {
						return nil, parseErr(lineNo, "duplicate row %q", r)
					}
				}
				s.Rows = append(s.Rows, r)
			}
		case "devices":
			n, err := atoiArg(args)
			if err != nil || n < 1 {
				return nil, parseErr(lineNo, "devices wants one positive integer")
			}
			s.Devices = n
		case "kind":
			if len(args) != 1 || !knownKinds[exploit.Kind(args[0])] {
				return nil, parseErr(lineNo, "kind wants one of dos, code-injection, ret2libc, rop-execlp, rop-memcpy")
			}
			k := exploit.Kind(args[0])
			for _, have := range s.Kinds {
				if have.Kind == k {
					return nil, parseErr(lineNo, "duplicate kind %q", k)
				}
			}
			inKinds = true
			s.Kinds = append(s.Kinds, KindSpec{Kind: k})
			cur = &s.Kinds[len(s.Kinds)-1]
		case "expect":
			if cur == nil {
				return nil, parseErr(lineNo, "expect outside a kind block")
			}
			el, err := parseExpect(lineNo, args)
			if err != nil {
				return nil, err
			}
			cur.Expects = append(cur.Expects, el)
		default:
			return nil, parseErr(lineNo, "unknown directive %q", dir)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("scenario: %w", err)
	}
	if err := s.validate(); err != nil {
		return nil, err
	}
	return s, nil
}

// atoiArg parses a single-integer argument list.
func atoiArg(args []string) (int, error) {
	if len(args) != 1 {
		return 0, fmt.Errorf("want exactly one argument")
	}
	return strconv.Atoi(args[0])
}

// parseExpect parses "expect <arch|*> row=outcome[|outcome] ...".
func parseExpect(lineNo int, args []string) (ExpectLine, error) {
	var el ExpectLine
	if len(args) < 2 {
		return el, parseErr(lineNo, "expect wants an arch (or *) and at least one row=outcome")
	}
	a := args[0]
	if a != "*" && isa.Arch(a) != isa.ArchX86S && isa.Arch(a) != isa.ArchARMS {
		return el, parseErr(lineNo, "expect arch must be x86s, arms, or *")
	}
	el.Arch = a
	for _, pair := range args[1:] {
		row, outs, ok := strings.Cut(pair, "=")
		if !ok {
			return el, parseErr(lineNo, "malformed expect pair %q", pair)
		}
		if _, okRow := RowProtection(row); !okRow {
			return el, parseErr(lineNo, "unknown row %q in expect", row)
		}
		for _, have := range el.Rows {
			if have.Row == row {
				return el, parseErr(lineNo, "duplicate row %q in expect", row)
			}
		}
		var outcomes []string
		for _, o := range strings.Split(outs, "|") {
			if !knownOutcomes[o] {
				return el, parseErr(lineNo, "unknown outcome %q (want shell, crash, blocked, no-effect, no-payload, error)", o)
			}
			outcomes = append(outcomes, o)
		}
		el.Rows = append(el.Rows, RowExpect{Row: row, Outcomes: outcomes})
	}
	return el, nil
}

// validate enforces the cross-field rules that make a spec compilable
// and totally checkable.
func (s *Spec) validate() error {
	if s.Name == "" {
		return fmt.Errorf("scenario: missing scenario directive")
	}
	if len(s.Arches) == 0 {
		return fmt.Errorf("scenario %s: missing arch directive", s.Name)
	}
	if len(s.Rows) == 0 {
		return fmt.Errorf("scenario %s: missing rows directive", s.Name)
	}
	if len(s.Kinds) == 0 {
		return fmt.Errorf("scenario %s: no kind blocks", s.Name)
	}
	opts := s.BuildOpts()
	if err := opts.Validate(); err != nil {
		return fmt.Errorf("scenario %s: %w", s.Name, err)
	}
	if s.Buffer == 0 {
		return fmt.Errorf("scenario %s: missing buffer directive", s.Name)
	}
	if int32(s.Buffer) != opts.BufSize() {
		return fmt.Errorf("scenario %s: buffer %d does not match the %s variant's %d-byte buffer",
			s.Name, s.Buffer, s.Variant, opts.BufSize())
	}
	// Discovery: derive when omitted, cross-check when explicit. A
	// bounded copy cannot be crash-probed; an unbounded one has no model
	// to declare from.
	want := DiscoveryProbe
	if !s.Bound.Unbounded {
		want = DiscoveryDeclared
	}
	if s.Discovery == "" {
		s.Discovery = want
	} else if s.Discovery != want {
		return fmt.Errorf("scenario %s: discovery %s contradicts bound %s (want %s)",
			s.Name, s.Discovery, s.Bound, want)
	}
	// Every (kind, arch, row) cell needs exactly one applicable expect.
	for _, ks := range s.Kinds {
		seenCell := map[string]bool{}
		for _, el := range ks.Expects {
			for _, re := range el.Rows {
				inRows := false
				for _, r := range s.Rows {
					if r == re.Row {
						inRows = true
					}
				}
				if !inRows {
					return fmt.Errorf("scenario %s: kind %s expects row %q not in rows", s.Name, ks.Kind, re.Row)
				}
				cell := el.Arch + "/" + re.Row
				if seenCell[cell] {
					return fmt.Errorf("scenario %s: kind %s has duplicate expect for %s", s.Name, ks.Kind, cell)
				}
				seenCell[cell] = true
			}
			if el.Arch != "*" {
				found := false
				for _, a := range s.Arches {
					if string(a) == el.Arch {
						found = true
					}
				}
				if !found {
					return fmt.Errorf("scenario %s: kind %s expects arch %q not in arch directive", s.Name, ks.Kind, el.Arch)
				}
			}
		}
		for _, a := range s.Arches {
			for _, r := range s.Rows {
				if _, ok := s.Expected(ks.Kind, a, r); !ok {
					return fmt.Errorf("scenario %s: kind %s has no expectation for %s/%s", s.Name, ks.Kind, a, r)
				}
			}
		}
	}
	return nil
}
