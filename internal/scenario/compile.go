package scenario

import (
	"fmt"

	"connlab/internal/campaign"
	"connlab/internal/exploit"
	"connlab/internal/isa"
	"connlab/internal/telemetry"
)

// CompileOpts overlays run-time choices on a spec: fleet shape, delivery
// mode, protection overlays beyond the spec's W⊕X/ASLR rows, and
// arch/kind filters. The zero value compiles the spec as written — the
// full matrix, one direct-delivery device per cell — which is exactly
// the paper-matrix configuration.
type CompileOpts struct {
	// Devices overrides the spec's fleet size per cell (0 keeps it).
	Devices int
	// PatchedEvery makes every Nth device run patched firmware.
	PatchedEvery int
	// Pineapple delivers through the rogue-AP world instead of directly.
	Pineapple bool
	// Patched deploys the patched firmware fleet-wide.
	Patched bool
	// Canary and CFI stack extra mitigations onto every row.
	Canary bool
	CFI    bool
	// DiversitySeed enables the §IV link-order diversity permutation.
	DiversitySeed int64
	// Arch restricts compilation to one architecture ("" = all in spec).
	Arch isa.Arch
	// Kind restricts compilation to one exploit kind ("" = all in spec).
	Kind exploit.Kind
}

// compileKey addresses one compilation in the cache: the spec's content
// hash (not its name — edited on-disk specs recompile) plus the overlay.
type compileKey struct {
	hash [32]byte
	opts CompileOpts
}

// compiles caches compiled scenario lists. Compilation is cheap, but
// caching it makes repeated compile calls (one per campaign run in a
// sweep, per REPL command, per test) observable as cache hits in
// telemetry rather than silent recomputation.
var compiles = campaign.NewCache[compileKey, []campaign.Scenario]().
	Instrument(telemetry.CtrScenarioCompile, telemetry.CtrScenarioCacheHit)

// Compile lowers a spec into the campaign scenario list: one cell per
// (arch, row, kind) in spec order — architectures outermost, then
// protection rows, then kinds — matching the lab's historical matrix
// enumeration so canonical reports are stable. Labels are left empty
// (the engine derives "arch/kind/protection").
func Compile(s *Spec, opts CompileOpts) ([]campaign.Scenario, error) {
	key := compileKey{hash: s.Hash(), opts: opts}
	cells, err := compiles.Get(key, func() ([]campaign.Scenario, error) {
		return compile(s, opts)
	})
	if err != nil {
		return nil, err
	}
	// The cache entry is shared; hand each caller its own slice so an
	// engine mutating Devices or Label cannot poison later compiles.
	out := make([]campaign.Scenario, len(cells))
	copy(out, cells)
	return out, nil
}

// compile is the uncached lowering.
func compile(s *Spec, opts CompileOpts) ([]campaign.Scenario, error) {
	build := s.BuildOpts()
	build.Patched = opts.Patched
	build.Canary = opts.Canary
	if err := build.Validate(); err != nil {
		return nil, fmt.Errorf("scenario %s: overlay incompatible with geometry: %w", s.Name, err)
	}
	build.Canary = false // canary rides the protection overlay, not the base build
	arches, err := filterArches(s, opts.Arch)
	if err != nil {
		return nil, err
	}
	kinds, err := filterKinds(s, opts.Kind)
	if err != nil {
		return nil, err
	}
	devices := s.Devices
	if opts.Devices != 0 {
		devices = opts.Devices
	}
	var out []campaign.Scenario
	for _, arch := range arches {
		for _, row := range s.Rows {
			p, _ := RowProtection(row)
			p.Canary = p.Canary || opts.Canary
			p.CFI = p.CFI || opts.CFI
			p.DiversitySeed = opts.DiversitySeed
			for _, k := range kinds {
				out = append(out, campaign.Scenario{
					Arch: arch, Kind: k, Protection: p, Build: build,
					Devices: devices, PatchedEvery: opts.PatchedEvery,
					Pineapple: opts.Pineapple,
				})
			}
		}
	}
	return out, nil
}

// filterArches resolves the arch filter against the spec.
func filterArches(s *Spec, want isa.Arch) ([]isa.Arch, error) {
	if want == "" {
		return s.Arches, nil
	}
	for _, a := range s.Arches {
		if a == want {
			return []isa.Arch{a}, nil
		}
	}
	return nil, fmt.Errorf("scenario %s: arch %s not in spec (have %v)", s.Name, want, s.Arches)
}

// filterKinds resolves the kind filter against the spec.
func filterKinds(s *Spec, want exploit.Kind) ([]exploit.Kind, error) {
	kinds := make([]exploit.Kind, len(s.Kinds))
	for i, ks := range s.Kinds {
		kinds[i] = ks.Kind
	}
	if want == "" {
		return kinds, nil
	}
	for _, k := range kinds {
		if k == want {
			return []exploit.Kind{k}, nil
		}
	}
	return nil, fmt.Errorf("scenario %s: kind %s not in spec (have %v)", s.Name, want, kinds)
}

// Verify checks a campaign report against the spec's success
// predicates: every device of every scenario the spec covers must land
// on one of the declared outcomes. Patched devices are exempt (the
// predicates describe the vulnerable firmware; a patched device's whole
// point is landing elsewhere). Returns nil when the report conforms.
func Verify(s *Spec, rep *campaign.Report) error {
	var errs []string
	for si := range rep.Scenarios {
		sr := &rep.Scenarios[si]
		row, ok := RowFor(sr.Scenario.Protection)
		if !ok {
			errs = append(errs, fmt.Sprintf("%s: protection %s is not a spec row", sr.Label, sr.Scenario.Protection))
			continue
		}
		want, ok := s.Expected(sr.Scenario.Kind, sr.Scenario.Arch, row)
		if !ok {
			errs = append(errs, fmt.Sprintf("%s: no expectation in scenario %s", sr.Label, s.Name))
			continue
		}
		for di := range sr.Devices {
			d := &sr.Devices[di]
			if d.Patched {
				continue
			}
			if !outcomeIn(d.Outcome, want) {
				errs = append(errs, fmt.Sprintf("%s device %s: outcome %s, spec allows %v",
					sr.Label, d.Name, d.Outcome, want))
			}
		}
	}
	if len(errs) > 0 {
		return fmt.Errorf("scenario %s: %d expectation failures:\n  %s",
			s.Name, len(errs), joinLines(errs))
	}
	return nil
}

func outcomeIn(o campaign.Outcome, allowed []campaign.Outcome) bool {
	for _, a := range allowed {
		if o == a {
			return true
		}
	}
	return false
}

func joinLines(lines []string) string {
	out := ""
	for i, l := range lines {
		if i > 0 {
			out += "\n  "
		}
		out += l
	}
	return out
}
