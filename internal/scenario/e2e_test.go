package scenario

import (
	"strings"
	"testing"

	"connlab/internal/campaign"
)

// runSpec compiles a spec with the given overlay, runs it through a
// fresh engine, and verifies the report against the spec's own
// predicates — the complete data-only scenario lifecycle.
func runSpec(t *testing.T, name string, opts CompileOpts) *campaign.Report {
	t.Helper()
	s, err := Load(name)
	if err != nil {
		t.Fatal(err)
	}
	cells, err := Compile(s, opts)
	if err != nil {
		t.Fatal(err)
	}
	eng := campaign.New(campaign.Config{})
	rep, err := eng.Run(cells)
	if err != nil {
		t.Fatalf("engine run: %v", err)
	}
	if err := Verify(s, rep); err != nil {
		t.Fatalf("report violates spec predicates: %v", err)
	}
	return rep
}

// TestOffByOneEndToEnd: the off-by-one frame-pointer scenario runs as
// pure data through the campaign engine on both ISAs and all three
// protection rows, landing inside its declared outcome envelope.
func TestOffByOneEndToEnd(t *testing.T) {
	rep := runSpec(t, "offbyone-fp", CompileOpts{})
	if len(rep.Scenarios) != 6 {
		t.Fatalf("compiled %d cells, want 6 (2 arches × 3 rows × dos)", len(rep.Scenarios))
	}
	// The non-ASLR rows are deterministic crashes; check them directly so
	// a spec loosened to crash|no-effect everywhere could not hide a
	// regression on the rows that must corrupt.
	for _, sr := range rep.Scenarios {
		if sr.Scenario.Protection.ASLR {
			continue
		}
		if got := sr.Devices[0].Outcome; got != campaign.OutcomeCrash {
			t.Errorf("%s: outcome %s, want deterministic CRASH without ASLR", sr.Label, got)
		}
	}
}

// TestHeapAdjacentEndToEnd: the heap adjacent-allocation scenario runs
// as pure data on both ISAs; code injection yields a shell only where
// the heap is executable, and the DoS row crashes everywhere.
func TestHeapAdjacentEndToEnd(t *testing.T) {
	rep := runSpec(t, "heap-adjacent", CompileOpts{})
	if len(rep.Scenarios) != 12 {
		t.Fatalf("compiled %d cells, want 12 (2 arches × 3 rows × 2 kinds)", len(rep.Scenarios))
	}
	shells := 0
	for _, sr := range rep.Scenarios {
		if sr.Devices[0].Outcome == campaign.OutcomeShell {
			shells++
			if sr.Scenario.Protection.WX {
				t.Errorf("%s: shell through a non-executable heap", sr.Label)
			}
		}
	}
	if shells != 2 {
		t.Errorf("%d shells, want 2 (code-injection on the unprotected row, both ISAs)", shells)
	}
}

// TestVerifyRejectsWrongOutcome: Verify fails loudly when a report
// disagrees with the spec, and exempts patched devices.
func TestVerifyRejectsWrongOutcome(t *testing.T) {
	s, err := Load("heap-adjacent")
	if err != nil {
		t.Fatal(err)
	}
	cells, err := Compile(s, CompileOpts{})
	if err != nil {
		t.Fatal(err)
	}
	rep := &campaign.Report{Scenarios: []campaign.ScenarioResult{{
		Scenario: cells[0], Label: "forged",
		Devices: []campaign.DeviceResult{
			{Name: "iot-00", Outcome: campaign.OutcomeNoEffect},
			{Name: "iot-01", Outcome: campaign.OutcomeNoEffect, Patched: true},
		},
	}}}
	err = Verify(s, rep)
	if err == nil {
		t.Fatal("Verify accepted a forged outcome")
	}
	if got := err.Error(); !strings.Contains(got, "iot-00") || strings.Contains(got, "iot-01") {
		t.Errorf("Verify error should flag iot-00 only, got: %v", err)
	}
}
