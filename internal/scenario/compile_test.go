package scenario

import (
	"bytes"
	"os"
	"reflect"
	"testing"

	"connlab/internal/campaign"
	"connlab/internal/exploit"
	"connlab/internal/isa"
	"connlab/internal/kernel"
	"connlab/internal/victim"
)

// legacyMatrix is the historical hand-written arch × level × kind
// enumeration the matrix preset used before scenarios were data. The
// compiled connman spec must reproduce it exactly — struct-for-struct —
// so every downstream artifact (cache keys, labels, reports, packets)
// is untouched by the refactor.
func legacyMatrix(build victim.BuildOpts) []campaign.Scenario {
	kinds := []exploit.Kind{
		exploit.KindDoS, exploit.KindCodeInjection, exploit.KindRet2Libc,
		exploit.KindRopExeclp, exploit.KindRopMemcpy,
	}
	var scenarios []campaign.Scenario
	for _, a := range []isa.Arch{isa.ArchX86S, isa.ArchARMS} {
		for _, p := range campaign.PaperLevels() {
			for _, k := range kinds {
				scenarios = append(scenarios, campaign.Scenario{
					Arch: a, Kind: k, Protection: p, Build: build,
				})
			}
		}
	}
	return scenarios
}

// TestCompileMatchesLegacyMatrix: compiling the embedded paper specs
// with zero overlay reproduces the legacy inline matrix for both victim
// variants, patched and vulnerable.
func TestCompileMatchesLegacyMatrix(t *testing.T) {
	for _, tc := range []struct {
		name    string
		variant victim.Variant
		patched bool
	}{
		{"connman", victim.VariantConnman, false},
		{"connman patched", victim.VariantConnman, true},
		{"dnsmasq", victim.VariantDnsmasq, false},
		{"dnsmasq patched", victim.VariantDnsmasq, true},
	} {
		t.Run(tc.name, func(t *testing.T) {
			s, err := Load(tc.variant.String())
			if err != nil {
				t.Fatal(err)
			}
			got, err := Compile(s, CompileOpts{Patched: tc.patched})
			if err != nil {
				t.Fatal(err)
			}
			want := legacyMatrix(victim.BuildOpts{Variant: tc.variant, Patched: tc.patched})
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("compiled matrix diverges from the legacy enumeration:\ngot  %d cells %+v\nwant %d cells %+v",
					len(got), got, len(want), want)
			}
		})
	}
}

// TestPaperMatrixGolden: running the compiled connman spec through the
// engine reproduces the pre-refactor canonical matrix report
// byte-for-byte. This is the refactor's end-to-end equivalence pin:
// same labels, same per-device outcomes, same counts, on both ISAs.
func TestPaperMatrixGolden(t *testing.T) {
	if testing.Short() {
		t.Skip("full 30-cell matrix run")
	}
	s, err := Load("connman")
	if err != nil {
		t.Fatal(err)
	}
	cells, err := Compile(s, CompileOpts{})
	if err != nil {
		t.Fatal(err)
	}
	eng := campaign.New(campaign.Config{})
	rep, err := eng.Run(cells)
	if err != nil {
		t.Fatalf("engine run: %v", err)
	}
	got := []byte(rep.Canonical())
	want, err := os.ReadFile("testdata/paper_matrix.golden")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("canonical report diverges from testdata/paper_matrix.golden:\n%s", diffLines(want, got))
	}
	// The golden matrix IS the spec's expectation table: verify closes
	// the loop in both directions.
	if err := Verify(s, rep); err != nil {
		t.Errorf("golden run violates the spec's own predicates: %v", err)
	}
}

// TestCompiledPacketsMatchDirectBuild: the attack packets an engine
// crafts for compiled cells are byte-identical to packets built
// straight from the exploit layer with the same recon inputs — the
// scenario path adds no transformation of its own.
func TestCompiledPacketsMatchDirectBuild(t *testing.T) {
	s, err := Load("connman")
	if err != nil {
		t.Fatal(err)
	}
	eng := campaign.New(campaign.Config{})
	for _, arch := range []isa.Arch{isa.ArchX86S, isa.ArchARMS} {
		kind := exploit.KindCodeInjection
		cells, err := Compile(s, CompileOpts{Arch: arch, Kind: kind})
		if err != nil {
			t.Fatal(err)
		}
		ex, err := eng.Payload(cells[0]) // row none
		if err != nil {
			t.Fatalf("%s: engine payload: %v", arch, err)
		}
		tgt, err := exploit.Recon(arch, victim.BuildOpts{}, kernel.Config{Seed: campaign.DefaultReconSeed})
		if err != nil {
			t.Fatalf("%s: direct recon: %v", arch, err)
		}
		direct, err := exploit.Build(tgt, kind)
		if err != nil {
			t.Fatalf("%s: direct build: %v", arch, err)
		}
		if !bytes.Equal(ex.Stream, direct.Stream) {
			t.Errorf("%s: compiled-path stream differs from direct exploit build", arch)
		}
	}
}

// diffLines renders a line diff for golden mismatches.
func diffLines(want, got []byte) string {
	w := bytes.Split(want, []byte("\n"))
	g := bytes.Split(got, []byte("\n"))
	var out bytes.Buffer
	for i := 0; i < len(w) || i < len(g); i++ {
		var wl, gl []byte
		if i < len(w) {
			wl = w[i]
		}
		if i < len(g) {
			gl = g[i]
		}
		if !bytes.Equal(wl, gl) {
			out.WriteString("- " + string(wl) + "\n+ " + string(gl) + "\n")
		}
	}
	return out.String()
}
