// Package dbg is the lab's gdb: a debugger over simulated processes with
// breakpoints, single-stepping, register and memory inspection,
// disassembly, and the cyclic-pattern machinery exploit developers use to
// discover how far a buffer sits from a saved return address. The paper's
// workflow — "using gdb, we are able to isolate the sections of memory
// occupied by the stack of the parse_response function" — is reproduced by
// these tools; the exploit builders consume what they discover rather than
// hardcoding offsets.
package dbg

import (
	"bytes"
	"fmt"
	"strings"

	"connlab/internal/isa"
	"connlab/internal/isa/arms"
	"connlab/internal/isa/x86s"
	"connlab/internal/kernel"
)

// Debugger wraps a process with breakpoint-driven execution control.
type Debugger struct {
	proc   *kernel.Process
	breaks map[uint32]bool
}

// New attaches to a process.
func New(proc *kernel.Process) *Debugger {
	return &Debugger{proc: proc, breaks: make(map[uint32]bool)}
}

// Process returns the debuggee.
func (d *Debugger) Process() *kernel.Process { return d.proc }

// Break sets a breakpoint at an address.
func (d *Debugger) Break(addr uint32) { d.breaks[addr] = true }

// BreakSym sets a breakpoint at a program symbol.
func (d *Debugger) BreakSym(name string) error {
	addr, ok := d.proc.Prog.Lookup(name)
	if !ok {
		return fmt.Errorf("dbg: no symbol %q", name)
	}
	d.Break(addr)
	return nil
}

// Clear removes a breakpoint.
func (d *Debugger) Clear(addr uint32) { delete(d.breaks, addr) }

// Stop describes why execution paused.
type Stop struct {
	// Breakpoint is set when execution stopped at a breakpoint address.
	Breakpoint bool
	// Addr is the stop PC.
	Addr uint32
	// Result is set when the process reached a terminal state instead.
	Result *kernel.RunResult
}

// Continue runs until a breakpoint or a terminal event. The instruction
// budget guards against runaways.
func (d *Debugger) Continue(budget uint64) Stop {
	cpu := d.proc.CPU()
	start := cpu.InstrCount()
	for {
		if res, done := d.proc.StepHandled(); done {
			res.Instructions = cpu.InstrCount() - start
			return Stop{Addr: res.PC, Result: &res}
		}
		if d.breaks[cpu.PC()] {
			return Stop{Breakpoint: true, Addr: cpu.PC()}
		}
		if cpu.InstrCount()-start >= budget {
			res := kernel.RunResult{Status: kernel.StatusTimeout, PC: cpu.PC()}
			return Stop{Addr: cpu.PC(), Result: &res}
		}
	}
}

// StepInstr executes exactly one instruction (servicing syscalls) and
// reports a terminal result if one occurred.
func (d *Debugger) StepInstr() *kernel.RunResult {
	if res, done := d.proc.StepHandled(); done {
		return &res
	}
	return nil
}

// Regs renders the register file, gdb info-registers style.
func (d *Debugger) Regs() string {
	cpu := d.proc.CPU()
	var sb strings.Builder
	for i := 0; i < cpu.NumRegs(); i++ {
		fmt.Fprintf(&sb, "%-4s %#08x\n", cpu.RegName(i), cpu.Reg(i))
	}
	if cpu.Arch() == isa.ArchX86S {
		fmt.Fprintf(&sb, "%-4s %#08x\n", "eip", cpu.PC())
	}
	return sb.String()
}

// ReadMem reads n bytes of debuggee memory.
func (d *Debugger) ReadMem(addr, n uint32) ([]byte, error) {
	b, f := d.proc.Mem().ReadBytes(addr, n)
	if f != nil {
		return nil, f
	}
	return b, nil
}

// Disasm renders up to n instructions starting at addr.
func (d *Debugger) Disasm(addr uint32, n int) ([]string, error) {
	var dis isa.Disassembler
	if d.proc.Arch() == isa.ArchARMS {
		dis = arms.Disasm{}
	} else {
		dis = x86s.Disasm{}
	}
	var out []string
	for i := 0; i < n; i++ {
		text, size, err := dis.DisasmAt(d.proc.Mem(), addr)
		if err != nil {
			out = append(out, fmt.Sprintf("%#08x: (bad)", addr))
			return out, nil
		}
		out = append(out, fmt.Sprintf("%#08x: %s", addr, text))
		addr += size
	}
	return out, nil
}

// FuncOf names the program function containing addr, for backtraces.
func (d *Debugger) FuncOf(addr uint32) string {
	if sym, ok := d.proc.Prog.FuncAt(addr); ok {
		return fmt.Sprintf("%s+%#x", sym.Name, addr-sym.Addr)
	}
	return fmt.Sprintf("%#08x", addr)
}

// cyclicAlphabet: distinct 4-byte windows come from a de Bruijn sequence
// over this alphabet. Lowercase letters keep every byte printable and far
// from DNS label-length or compression-tag values.
const cyclicAlphabet = "abcdefghijklmnopqrstuvwxyz"

// Cyclic returns the first n bytes of a de Bruijn sequence of order 4:
// every 4-byte window occurs at most once, so any value captured from a
// smashed register or fault address locates itself in the pattern.
func Cyclic(n int) []byte {
	k := len(cyclicAlphabet)
	const order = 4
	var seq []byte
	a := make([]int, k*order)
	var db func(t, p int)
	db = func(t, p int) {
		if len(seq) >= n {
			return
		}
		if t > order {
			if order%p == 0 {
				for _, c := range a[1 : p+1] {
					seq = append(seq, cyclicAlphabet[c])
					if len(seq) >= n {
						return
					}
				}
			}
			return
		}
		a[t] = a[t-p]
		db(t+1, p)
		for j := a[t-p] + 1; j < k; j++ {
			a[t] = j
			db(t+1, t)
			if len(seq) >= n {
				return
			}
		}
	}
	db(1, 1)
	for len(seq) < n { // n beyond one period: repeat (windows no longer unique)
		seq = append(seq, seq[:min(n-len(seq), len(seq))]...)
	}
	return seq[:n]
}

// CyclicFind locates the little-endian 4-byte value v in the pattern,
// returning its offset or -1.
func CyclicFind(pattern []byte, v uint32) int {
	needle := []byte{byte(v), byte(v >> 8), byte(v >> 16), byte(v >> 24)}
	return bytes.Index(pattern, needle)
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
