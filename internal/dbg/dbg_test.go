package dbg

import (
	"strings"
	"testing"
	"testing/quick"

	"connlab/internal/image"
	"connlab/internal/isa"
	"connlab/internal/isa/x86s"
	"connlab/internal/kernel"
)

// loadToy builds a two-function x86 program for debugger tests.
func loadToy(t *testing.T) *kernel.Process {
	t.Helper()
	u := image.NewUnit(isa.ArchX86S)
	a := x86s.NewAsm()
	a.PushR(x86s.EBP).MovRR(x86s.EBP, x86s.ESP)
	a.MovRM(x86s.EAX, x86s.EBP, 8)
	a.CallSym("double")
	a.AddRI(x86s.EAX, 1)
	a.PopR(x86s.EBP).Ret()
	u.AddFuncX86("main", a)

	b := x86s.NewAsm()
	b.AddRR(x86s.EAX, x86s.EAX)
	b.Ret()
	u.AddFuncX86("double", b)

	libc, err := image.BuildLibc(isa.ArchX86S)
	if err != nil {
		t.Fatal(err)
	}
	p, err := kernel.Load(u, libc, kernel.Config{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestBreakpointAndContinue(t *testing.T) {
	p := loadToy(t)
	if err := p.PrepareCall("main", 21); err != nil {
		t.Fatal(err)
	}
	d := New(p)
	if err := d.BreakSym("double"); err != nil {
		t.Fatal(err)
	}
	stop := d.Continue(1_000_000)
	if !stop.Breakpoint {
		t.Fatalf("stop = %+v, want breakpoint", stop)
	}
	if got, _ := p.Prog.Lookup("double"); got != stop.Addr {
		t.Errorf("stopped at %#x, want double", stop.Addr)
	}
	if fn := d.FuncOf(stop.Addr); !strings.HasPrefix(fn, "double") {
		t.Errorf("FuncOf = %q", fn)
	}
	// Resume to completion: 21*2+1 = 43.
	d.Clear(stop.Addr)
	// Step one instruction first (we are parked on the breakpoint).
	if res := d.StepInstr(); res != nil {
		t.Fatalf("unexpected terminal: %v", res)
	}
	stop = d.Continue(1_000_000)
	if stop.Result == nil || stop.Result.Status != kernel.StatusReturned {
		t.Fatalf("final stop = %+v", stop)
	}
	if stop.Result.RetVal != 43 {
		t.Errorf("retval = %d, want 43", stop.Result.RetVal)
	}
}

func TestContinueBudget(t *testing.T) {
	p := loadToy(t)
	if err := p.PrepareCall("main", 1); err != nil {
		t.Fatal(err)
	}
	d := New(p)
	stop := d.Continue(2)
	if stop.Result == nil || stop.Result.Status != kernel.StatusTimeout {
		t.Fatalf("stop = %+v, want timeout", stop)
	}
}

func TestBreakSymUnknown(t *testing.T) {
	p := loadToy(t)
	d := New(p)
	if err := d.BreakSym("nope"); err == nil {
		t.Error("unknown symbol accepted")
	}
}

func TestRegsAndDisasmAndReadMem(t *testing.T) {
	p := loadToy(t)
	if err := p.PrepareCall("main", 5); err != nil {
		t.Fatal(err)
	}
	d := New(p)
	regs := d.Regs()
	if !strings.Contains(regs, "esp") || !strings.Contains(regs, "eip") {
		t.Errorf("regs rendering:\n%s", regs)
	}
	mainAddr, _ := p.Prog.Lookup("main")
	dis, err := d.Disasm(mainAddr, 3)
	if err != nil || len(dis) != 3 {
		t.Fatalf("disasm: %v, %v", dis, err)
	}
	if !strings.Contains(dis[0], "push ebp") {
		t.Errorf("disasm[0] = %q", dis[0])
	}
	if _, err := d.ReadMem(0x1, 4); err == nil {
		t.Error("ReadMem unmapped succeeded")
	}
	b, err := d.ReadMem(mainAddr, 1)
	if err != nil || b[0] != 0x55 {
		t.Errorf("ReadMem = %v, %v", b, err)
	}
}

func TestCyclicWindowsUnique(t *testing.T) {
	const n = 8192
	pat := Cyclic(n)
	if len(pat) != n {
		t.Fatalf("len = %d", len(pat))
	}
	seen := make(map[[4]byte]int, n)
	for i := 0; i+4 <= n; i++ {
		var w [4]byte
		copy(w[:], pat[i:])
		if prev, dup := seen[w]; dup {
			t.Fatalf("window %q at %d and %d", w, prev, i)
		}
		seen[w] = i
	}
}

func TestCyclicFind(t *testing.T) {
	pat := Cyclic(4096)
	for _, off := range []int{0, 1, 100, 1027, 4090} {
		v := uint32(pat[off]) | uint32(pat[off+1])<<8 |
			uint32(pat[off+2])<<16 | uint32(pat[off+3])<<24
		if got := CyclicFind(pat, v); got != off {
			t.Errorf("CyclicFind(window@%d) = %d", off, got)
		}
	}
	if CyclicFind(pat, 0xDEADBEEF) != -1 {
		t.Error("found a value not in the pattern")
	}
}

// TestQuickCyclicOffsetsRoundTrip: for arbitrary offsets, the value read
// from the pattern locates itself.
func TestQuickCyclicOffsetsRoundTrip(t *testing.T) {
	pat := Cyclic(16384)
	prop := func(off uint16) bool {
		i := int(off) % (len(pat) - 4)
		v := uint32(pat[i]) | uint32(pat[i+1])<<8 | uint32(pat[i+2])<<16 | uint32(pat[i+3])<<24
		return CyclicFind(pat, v) == i
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
}

func TestCyclicAlphabetIsLabelSafe(t *testing.T) {
	// Pattern bytes must never collide with DNS length bytes (1..63) or
	// compression tags (>= 0xC0) so discovery streams stay unambiguous.
	for _, b := range Cyclic(1000) {
		if b <= 63 || b >= 0xC0 {
			t.Fatalf("pattern byte %#x is not label-safe", b)
		}
	}
}
