package kernel

import (
	"testing"

	"connlab/internal/abi"
	"connlab/internal/image"
	"connlab/internal/isa"
	"connlab/internal/isa/arms"
)

// buildARMSyscallProbe mirrors the x86 probe for the arms ABI (number in
// r7, args in r0-r2).
func buildARMSyscallProbe(t *testing.T, nr, a0, a1, a2 uint32) *image.Unit {
	t.Helper()
	u := image.NewUnit(isa.ArchARMS)
	a := arms.NewAsm()
	a.MovImm32(arms.R7, nr)
	a.MovImm32(arms.R0, a0)
	a.MovImm32(arms.R1, a1)
	a.MovImm32(arms.R2, a2)
	a.Svc(0)
	a.BX(arms.LR)
	u.AddFuncARM("main", a)
	return u
}

func loadARMProbe(t *testing.T, u *image.Unit, cfg Config) *Process {
	t.Helper()
	libc, err := image.BuildLibc(isa.ArchARMS)
	if err != nil {
		t.Fatal(err)
	}
	p, err := Load(u, libc, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestARMWriteSyscall(t *testing.T) {
	u := image.NewUnit(isa.ArchARMS)
	u.AddRodata("msg", []byte("arm abi works\x00"))
	a := arms.NewAsm()
	a.MovImm32(arms.R7, abi.SysWrite)
	a.MovW(arms.R0, 1)
	a.MovSym(arms.R1, "msg", 0)
	a.MovW(arms.R2, 13)
	a.Svc(0)
	a.BX(arms.LR)
	u.AddFuncARM("main", a)
	p := loadARMProbe(t, u, Config{Seed: 1})
	res, err := p.Call("main")
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != StatusReturned || res.RetVal != 13 {
		t.Fatalf("res = %v retval %d", res, res.RetVal)
	}
	if p.Stdout() != "arm abi works" {
		t.Errorf("stdout = %q", p.Stdout())
	}
}

func TestARMExitAndAbort(t *testing.T) {
	p := loadARMProbe(t, buildARMSyscallProbe(t, abi.SysExit, 9, 0, 0), Config{Seed: 1})
	res, err := p.Call("main")
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != StatusExited || res.ExitStatus != 9 {
		t.Fatalf("res = %v", res)
	}

	p2 := loadARMProbe(t, buildARMSyscallProbe(t, abi.SysAbort, 0, 0, 0), Config{Seed: 1})
	res, err = p2.Call("main")
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != StatusAborted {
		t.Fatalf("res = %v", res)
	}
}

func TestARMExeclpRelativeResolution(t *testing.T) {
	// execlp("sh", ...) resolves against PATH — the §III-C2 enabler.
	u := image.NewUnit(isa.ArchARMS)
	u.AddRodata("relsh", []byte("sh\x00"))
	a := arms.NewAsm()
	a.MovImm32(arms.R7, abi.SysExeclp)
	a.MovSym(arms.R0, "relsh", 0)
	a.MovW(arms.R1, 0)
	a.Svc(0)
	a.BX(arms.LR)
	u.AddFuncARM("main", a)
	p := loadARMProbe(t, u, Config{Seed: 1})
	res, err := p.Call("main")
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != StatusShell || res.Shell.Path != abi.ShellPath || res.Shell.Via != "execlp" {
		t.Fatalf("res = %v", res)
	}

	// execve (absolute-only) must NOT resolve "sh".
	u2 := image.NewUnit(isa.ArchARMS)
	u2.AddRodata("relsh", []byte("sh\x00"))
	b := arms.NewAsm()
	b.MovImm32(arms.R7, abi.SysExecve)
	b.MovSym(arms.R0, "relsh", 0)
	b.MovW(arms.R1, 0)
	b.Svc(0)
	b.BX(arms.LR)
	u2.AddFuncARM("main", b)
	p2 := loadARMProbe(t, u2, Config{Seed: 1})
	res, err = p2.Call("main")
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != StatusReturned {
		t.Fatalf("execve(\"sh\") = %v, want ENOENT return", res)
	}
	if len(p2.Shells()) != 0 {
		t.Error("relative execve spawned a shell")
	}
}

func TestARMCallTooManyArgs(t *testing.T) {
	p := loadARMProbe(t, buildARMSyscallProbe(t, abi.SysExit, 0, 0, 0), Config{Seed: 1})
	if _, err := p.Call("main", 1, 2, 3, 4, 5); err == nil {
		t.Error("five register args accepted on arms")
	}
}
