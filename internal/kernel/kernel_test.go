package kernel

import (
	"testing"

	"connlab/internal/image"
	"connlab/internal/isa"
	"connlab/internal/isa/arms"
	"connlab/internal/isa/x86s"
)

// buildX86Hello returns a program that calls write@plt and strlen@plt and
// returns the length of its message.
func buildX86Hello(t *testing.T) *image.Unit {
	t.Helper()
	u := image.NewUnit(isa.ArchX86S)
	u.Import("write", "strlen")
	u.AddRodata("msg", []byte("hello, lab\x00"))

	a := x86s.NewAsm()
	a.PushR(x86s.EBP).MovRR(x86s.EBP, x86s.ESP)
	// strlen(msg)
	a.PushISym("msg", 0)
	a.CallSym("strlen@plt")
	a.AddRI(x86s.ESP, 4)
	a.PushR(x86s.EAX) // save len across the write call (libc clobbers ebx)
	// write(1, msg, len)
	a.PushR(x86s.EAX)
	a.PushISym("msg", 0)
	a.PushI(1)
	a.CallSym("write@plt")
	a.AddRI(x86s.ESP, 12)
	a.PopR(x86s.EAX)
	a.PopR(x86s.EBP).Ret()
	u.AddFuncX86("main", a)
	return u
}

// buildARMHello is the arms twin of buildX86Hello.
func buildARMHello(t *testing.T) *image.Unit {
	t.Helper()
	u := image.NewUnit(isa.ArchARMS)
	u.Import("write", "strlen")
	u.AddRodata("msg", []byte("hello, lab\x00"))

	a := arms.NewAsm()
	a.Push(arms.R4, arms.LR)
	a.MovSym(arms.R0, "msg", 0)
	a.BL("strlen@plt")
	a.MovR(arms.R4, arms.R0)
	a.MovR(arms.R2, arms.R0)
	a.MovSym(arms.R1, "msg", 0)
	a.MovW(arms.R0, 1)
	a.BL("write@plt")
	a.MovR(arms.R0, arms.R4)
	a.Pop(arms.R4, arms.PC)
	u.AddFuncARM("main", a)
	return u
}

func loadHello(t *testing.T, arch isa.Arch, cfg Config) *Process {
	t.Helper()
	var prog *image.Unit
	if arch == isa.ArchARMS {
		prog = buildARMHello(t)
	} else {
		prog = buildX86Hello(t)
	}
	libc, err := image.BuildLibc(arch)
	if err != nil {
		t.Fatalf("build libc: %v", err)
	}
	p, err := Load(prog, libc, cfg)
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	return p
}

func TestHelloBothArchitectures(t *testing.T) {
	for _, arch := range []isa.Arch{isa.ArchX86S, isa.ArchARMS} {
		t.Run(string(arch), func(t *testing.T) {
			p := loadHello(t, arch, Config{Seed: 1})
			res, err := p.Call("main")
			if err != nil {
				t.Fatalf("call: %v", err)
			}
			if res.Status != StatusReturned {
				t.Fatalf("status = %v (%v), want returned", res.Status, res)
			}
			const msg = "hello, lab"
			if res.RetVal != uint32(len(msg)) {
				t.Errorf("retval = %d, want %d", res.RetVal, len(msg))
			}
			if got := p.Stdout(); got != msg {
				t.Errorf("stdout = %q, want %q", got, msg)
			}
		})
	}
}

func TestASLRMovesLibcAndStack(t *testing.T) {
	for _, arch := range []isa.Arch{isa.ArchX86S, isa.ArchARMS} {
		t.Run(string(arch), func(t *testing.T) {
			bases := make(map[uint32]bool)
			stacks := make(map[uint32]bool)
			for seed := int64(0); seed < 8; seed++ {
				p := loadHello(t, arch, Config{ASLR: true, Seed: seed})
				bases[p.Libc.Layout.TextBase] = true
				stacks[p.StackTop] = true
			}
			if len(bases) < 2 {
				t.Errorf("ASLR produced %d distinct libc bases, want >= 2", len(bases))
			}
			if len(stacks) < 2 {
				t.Errorf("ASLR produced %d distinct stack tops, want >= 2", len(stacks))
			}
			// Program image must stay fixed (non-PIE), the property the
			// paper's ASLR bypass depends on.
			p1 := loadHello(t, arch, Config{ASLR: true, Seed: 100})
			p2 := loadHello(t, arch, Config{ASLR: true, Seed: 200})
			if p1.Prog.Layout.TextBase != p2.Prog.Layout.TextBase {
				t.Errorf("non-PIE program base moved under ASLR")
			}
		})
	}
}

func TestNoASLRIsDeterministic(t *testing.T) {
	p1 := loadHello(t, isa.ArchX86S, Config{Seed: 1})
	p2 := loadHello(t, isa.ArchX86S, Config{Seed: 2})
	if p1.Libc.Layout.TextBase != p2.Libc.Layout.TextBase {
		t.Errorf("libc base moved without ASLR")
	}
	if p1.StackTop != p2.StackTop {
		t.Errorf("stack top moved without ASLR")
	}
}

func TestPIEMovesProgram(t *testing.T) {
	bases := make(map[uint32]bool)
	for seed := int64(0); seed < 8; seed++ {
		p := loadHello(t, isa.ArchX86S, Config{ASLR: true, PIE: true, Seed: seed})
		bases[p.Prog.Layout.TextBase] = true
	}
	if len(bases) < 2 {
		t.Errorf("PIE produced %d distinct program bases, want >= 2", len(bases))
	}
}

func TestCallUndefinedFunction(t *testing.T) {
	p := loadHello(t, isa.ArchX86S, Config{Seed: 1})
	if _, err := p.Call("nope"); err == nil {
		t.Fatal("expected error calling undefined function")
	}
}

func TestDirectLibcCallSpawnsShell(t *testing.T) {
	// Calling libc system("/bin/sh") directly must register a root shell:
	// this is the ground truth the exploits are judged against.
	for _, arch := range []isa.Arch{isa.ArchX86S, isa.ArchARMS} {
		t.Run(string(arch), func(t *testing.T) {
			p := loadHello(t, arch, Config{Seed: 1})
			binsh := p.Libc.MustLookup(image.SymBinSh)
			sys := p.Libc.MustLookup("system")
			res, err := p.CallAddr(sys, binsh)
			if err != nil {
				t.Fatalf("call: %v", err)
			}
			if res.Status != StatusShell {
				t.Fatalf("status = %v (%v), want shell", res.Status, res)
			}
			if res.Shell.UID != 0 {
				t.Errorf("shell uid = %d, want 0", res.Shell.UID)
			}
			if len(p.Shells()) != 1 {
				t.Errorf("recorded %d shells, want 1", len(p.Shells()))
			}
		})
	}
}
