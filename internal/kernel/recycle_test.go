package kernel

import (
	"testing"

	"connlab/internal/isa"
)

// TestRecycleMatchesFreshLoad pins the recycle contract: a recycled
// process must be observationally identical to a fresh Load with the same
// config — same layout, same canary, same run results, same stdout.
func TestRecycleMatchesFreshLoad(t *testing.T) {
	for _, arch := range []isa.Arch{isa.ArchX86S, isa.ArchARMS} {
		t.Run(string(arch), func(t *testing.T) {
			for _, seed := range []int64{1, 2} { // 1 = same-seed fast path, 2 = re-derived layout
				p := loadHello(t, arch, Config{Seed: 1})
				if _, err := p.Call("main"); err != nil {
					t.Fatalf("warmup call: %v", err)
				}
				if !p.Recycle(Config{Seed: seed}) {
					t.Fatalf("Recycle(seed=%d) refused", seed)
				}
				fresh := loadHello(t, arch, Config{Seed: seed})

				if p.StackTop != fresh.StackTop {
					t.Errorf("seed %d: stack top %#x != fresh %#x", seed, p.StackTop, fresh.StackTop)
				}
				if p.Libc.Layout.TextBase != fresh.Libc.Layout.TextBase {
					t.Errorf("seed %d: libc base %#x != fresh %#x",
						seed, p.Libc.Layout.TextBase, fresh.Libc.Layout.TextBase)
				}
				if p.canary != fresh.canary || p.guardAddr != fresh.guardAddr {
					t.Errorf("seed %d: canary %#x@%#x != fresh %#x@%#x",
						seed, p.canary, p.guardAddr, fresh.canary, fresh.guardAddr)
				}
				if p.guardAddr != 0 {
					got, f := p.Mem().ReadU32(p.guardAddr)
					if f != nil || got != fresh.canary {
						t.Errorf("seed %d: canary in memory = %#x (%v), want %#x", seed, got, f, fresh.canary)
					}
				}

				res, err := p.Call("main")
				if err != nil {
					t.Fatalf("recycled call: %v", err)
				}
				want, err := fresh.Call("main")
				if err != nil {
					t.Fatalf("fresh call: %v", err)
				}
				if res.Status != want.Status || res.RetVal != want.RetVal {
					t.Errorf("seed %d: recycled run = %+v, fresh = %+v", seed, res, want)
				}
				if p.Stdout() != fresh.Stdout() {
					t.Errorf("seed %d: recycled stdout %q != fresh %q", seed, p.Stdout(), fresh.Stdout())
				}
			}
		})
	}
}

// TestRecycleASLRSameSeed: an ASLR process can be recycled only for the
// same seed (the layout draws are already burned in), and the result must
// match a fresh ASLR load byte for byte.
func TestRecycleASLRSameSeed(t *testing.T) {
	cfg := Config{ASLR: true, Seed: 5}
	p := loadHello(t, isa.ArchX86S, cfg)
	if _, err := p.Call("main"); err != nil {
		t.Fatalf("warmup call: %v", err)
	}
	if !p.Recycle(cfg) {
		t.Fatal("same-seed ASLR recycle refused")
	}
	fresh := loadHello(t, isa.ArchX86S, cfg)
	if p.Libc.Layout.TextBase != fresh.Libc.Layout.TextBase {
		t.Errorf("libc base %#x != fresh %#x", p.Libc.Layout.TextBase, fresh.Libc.Layout.TextBase)
	}
	if p.canary != fresh.canary {
		t.Errorf("canary %#x != fresh %#x", p.canary, fresh.canary)
	}
	res, err := p.Call("main")
	if err != nil {
		t.Fatalf("recycled call: %v", err)
	}
	if res.Status != StatusReturned {
		t.Fatalf("recycled ASLR run: %+v", res)
	}
}

// TestRecycleRefusals: config changes that alter the memory image must
// force a fresh Load.
func TestRecycleRefusals(t *testing.T) {
	p := loadHello(t, isa.ArchX86S, Config{Seed: 1})
	cases := []struct {
		name string
		cfg  Config
	}{
		{"aslr toggled", Config{ASLR: true, Seed: 1}},
		{"pie toggled", Config{PIE: true, Seed: 1}},
		{"wx toggled", Config{WX: true, Seed: 1}},
		{"entropy changed", Config{ASLREntropyPages: 64, Seed: 1}},
	}
	for _, c := range cases {
		if p.Recycle(c.cfg) {
			t.Errorf("%s: recycle accepted, want refused", c.name)
		}
	}
	// A refused recycle leaves the process usable.
	if !p.Recycle(Config{Seed: 1}) {
		t.Fatal("compatible recycle refused after refusals")
	}
	if res, err := p.Call("main"); err != nil || res.Status != StatusReturned {
		t.Fatalf("call after refusals: %+v, %v", res, err)
	}

	// New-seed recycle under ASLR is refused: the old draws are burned in.
	q := loadHello(t, isa.ArchX86S, Config{ASLR: true, Seed: 1})
	if q.Recycle(Config{ASLR: true, Seed: 2}) {
		t.Error("ASLR recycle with a different seed accepted, want refused")
	}
}
