package kernel

import (
	"strings"
	"testing"

	"connlab/internal/abi"
	"connlab/internal/image"
	"connlab/internal/isa"
	"connlab/internal/isa/x86s"
)

// buildSyscallProbe returns a program whose main issues one raw syscall
// with the given registers and returns the syscall result.
func buildSyscallProbe(t *testing.T, nr, a0, a1, a2 uint32) *image.Unit {
	t.Helper()
	u := image.NewUnit(isa.ArchX86S)
	a := x86s.NewAsm()
	a.MovRI(x86s.EAX, nr)
	a.MovRI(x86s.EBX, a0)
	a.MovRI(x86s.ECX, a1)
	a.MovRI(x86s.EDX, a2)
	a.IntN(0x80)
	a.Ret()
	u.AddFuncX86("main", a)
	return u
}

func loadProbe(t *testing.T, u *image.Unit, cfg Config) *Process {
	t.Helper()
	libc, err := image.BuildLibc(isa.ArchX86S)
	if err != nil {
		t.Fatal(err)
	}
	p, err := Load(u, libc, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestWriteSyscallCapsAndFaults(t *testing.T) {
	// write with a bad buffer pointer returns -EFAULT and continues.
	p := loadProbe(t, buildSyscallProbe(t, abi.SysWrite, 1, 0x1, 64), Config{Seed: 1})
	res, err := p.Call("main")
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != StatusReturned {
		t.Fatalf("status = %v", res)
	}
	if int32(res.RetVal) >= 0 {
		t.Errorf("write(bad ptr) = %d, want negative errno", int32(res.RetVal))
	}
	if p.Stdout() != "" {
		t.Errorf("stdout = %q", p.Stdout())
	}
}

func TestExecveOfGarbageContinues(t *testing.T) {
	// execve with an unreadable path returns -EFAULT; with a readable
	// non-shell string returns -ENOENT. Either way execution continues —
	// which is why a ROP chain that calls exec with a wrong string crashes
	// later instead of spawning.
	p := loadProbe(t, buildSyscallProbe(t, abi.SysExecve, 0x2, 0, 0), Config{Seed: 1})
	res, err := p.Call("main")
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != StatusReturned {
		t.Fatalf("status = %v", res)
	}
	if len(p.Shells()) != 0 {
		t.Error("garbage execve spawned a shell")
	}
}

func TestUnknownSyscallENOSYS(t *testing.T) {
	p := loadProbe(t, buildSyscallProbe(t, 9999, 0, 0, 0), Config{Seed: 1})
	res, err := p.Call("main")
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != StatusReturned || int32(res.RetVal) != -38 {
		t.Fatalf("unknown syscall = %v retval %d, want -ENOSYS", res.Status, int32(res.RetVal))
	}
}

func TestExitSyscall(t *testing.T) {
	p := loadProbe(t, buildSyscallProbe(t, abi.SysExit, 3, 0, 0), Config{Seed: 1})
	res, err := p.Call("main")
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != StatusExited || res.ExitStatus != 3 {
		t.Fatalf("res = %v", res)
	}
}

func TestAbortSyscall(t *testing.T) {
	p := loadProbe(t, buildSyscallProbe(t, abi.SysAbort, 0, 0, 0), Config{Seed: 1})
	res, err := p.Call("main")
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != StatusAborted {
		t.Fatalf("res = %v, want canary abort", res)
	}
	if !res.Crashed() {
		t.Error("abort not classified as crash")
	}
}

func TestSystemRecordsCommand(t *testing.T) {
	u := image.NewUnit(isa.ArchX86S)
	u.AddRodata("cmd", []byte("rm -rf /tmp/x\x00"))
	a := x86s.NewAsm()
	a.MovRI(x86s.EAX, abi.SysSystem)
	a.MovRISym(x86s.EBX, "cmd", 0)
	a.IntN(0x80)
	a.Ret()
	u.AddFuncX86("main", a)
	p := loadProbe(t, u, Config{Seed: 1})
	res, err := p.Call("main")
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != StatusShell {
		t.Fatalf("res = %v", res)
	}
	if res.Shell.Command != "rm -rf /tmp/x" || res.Shell.Via != "system" {
		t.Errorf("shell = %+v", res.Shell)
	}
}

func TestExecveDoubleSlashResolves(t *testing.T) {
	u := image.NewUnit(isa.ArchX86S)
	u.AddRodata("path", []byte("/bin//sh\x00"))
	a := x86s.NewAsm()
	a.MovRI(x86s.EAX, abi.SysExecve)
	a.MovRISym(x86s.EBX, "path", 0)
	a.IntN(0x80)
	a.Ret()
	u.AddFuncX86("main", a)
	p := loadProbe(t, u, Config{Seed: 1})
	res, err := p.Call("main")
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != StatusShell || res.Shell.Path != abi.ShellPath {
		t.Fatalf("res = %v", res)
	}
}

func TestInstrBudgetTimeout(t *testing.T) {
	u := image.NewUnit(isa.ArchX86S)
	a := x86s.NewAsm()
	a.Label("spin")
	a.Jmp("spin")
	u.AddFuncX86("main", a)
	p := loadProbe(t, u, Config{Seed: 1, InstrBudget: 1000})
	res, err := p.Call("main")
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != StatusTimeout {
		t.Fatalf("res = %v, want timeout", res)
	}
	if res.Instructions < 1000 {
		t.Errorf("instructions = %d", res.Instructions)
	}
}

func TestRunResultStrings(t *testing.T) {
	for _, res := range []RunResult{
		{Status: StatusReturned, RetVal: 7},
		{Status: StatusShell, Shell: &ShellSpawn{Via: "execve", UID: 0}},
		{Status: StatusCFI, Reason: "x"},
		{Status: StatusExited, ExitStatus: 2},
		{Status: StatusAborted},
		{Status: StatusTimeout},
		{Status: StatusFault, Illegal: true, PC: 0x10},
	} {
		if res.String() == "" || strings.Contains(res.String(), "%!") {
			t.Errorf("bad rendering for %v: %q", res.Status, res.String())
		}
		if res.Status.String() == "unknown" {
			t.Errorf("unknown status name for %v", res.Status)
		}
	}
}

func TestASLREntropyPagesRespected(t *testing.T) {
	u := buildSyscallProbe(t, abi.SysExit, 0, 0, 0)
	libc, err := image.BuildLibc(isa.ArchX86S)
	if err != nil {
		t.Fatal(err)
	}
	base := image.DefaultLibcBase(isa.ArchX86S)
	seen := make(map[uint32]bool)
	for seed := int64(0); seed < 32; seed++ {
		u2 := buildSyscallProbe(t, abi.SysExit, 0, 0, 0)
		p, err := Load(u2, libc, Config{ASLR: true, ASLREntropyPages: 4, Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		slide := (p.Libc.Layout.TextBase - base) / Page
		if slide >= 4 {
			t.Fatalf("slide %d beyond entropy 4", slide)
		}
		seen[p.Libc.Layout.TextBase] = true
	}
	if len(seen) < 2 {
		t.Errorf("entropy 4 produced %d bases", len(seen))
	}
	_ = u
}

func TestCallResetterInvoked(t *testing.T) {
	u := buildSyscallProbe(t, abi.SysExit, 0, 0, 0)
	libc, err := image.BuildLibc(isa.ArchX86S)
	if err != nil {
		t.Fatal(err)
	}
	h := &recordingHooks{}
	p, err := Load(u, libc, Config{Seed: 1, Hooks: h})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Call("main"); err != nil {
		t.Fatal(err)
	}
	if h.resets != 1 {
		t.Errorf("resets = %d, want 1", h.resets)
	}
	if h.lastRet != Sentinel {
		t.Errorf("reset ret = %#x, want sentinel", h.lastRet)
	}
}

type recordingHooks struct {
	resets  int
	lastRet uint32
}

func (r *recordingHooks) ResetCall(ret uint32) { r.resets++; r.lastRet = ret }
func (r *recordingHooks) OnControl(kind isa.ControlKind, from, to, ret uint32) error {
	return nil
}
