// Package kernel simulates the operating-system half of the lab: it loads
// linked images into an address space (applying ASLR slides to the libc
// and stack the way 32-bit Linux does for a non-PIE binary), populates the
// GOT, seeds stack canaries, services system calls, and classifies how an
// emulated run ended — normal return, crash (the paper's DoS outcome), or
// a spawned root shell (the paper's RCE outcome).
package kernel

import (
	"bytes"
	"fmt"
	"math/rand"

	"connlab/internal/image"
	"connlab/internal/isa"
	"connlab/internal/isa/arms"
	"connlab/internal/isa/x86s"
	"connlab/internal/mem"
	"connlab/internal/telemetry"
)

// Sentinel is the poisoned return address the kernel plants for top-level
// calls; control reaching it means the called function returned normally.
// It is never mapped.
const Sentinel uint32 = 0xDEAD0000

// Page is the allocation granule for ASLR slides.
const Page = 0x1000

// StackSize is the size of the mapped stack region.
const StackSize = 1 << 20

// HeapSize is the size of the mapped scratch-heap region.
const HeapSize = 1 << 20

// HeapBaseFor returns the fixed base of the scratch heap for arch. The
// heap is never slid by ASLR (matching 32-bit brk heaps of non-PIE
// binaries), so codegen that bakes heap addresses — the victim's emulated
// allocator arena — can rely on these constants.
func HeapBaseFor(arch isa.Arch) uint32 {
	if arch == isa.ArchARMS {
		return 0x00C00000
	}
	return 0x09000000
}

// DefaultInstrBudget bounds one emulated call; exceeding it classifies the
// run as hung (a DoS in its own right).
const DefaultInstrBudget = 10_000_000

// Config describes the protection environment a process runs under — the
// experimental axes of the paper's §III.
type Config struct {
	// WX enables W⊕X (no execution from writable memory).
	WX bool
	// ASLR randomizes the libc base and the stack base per load. The
	// program image itself stays fixed (non-PIE), as in the paper.
	ASLR bool
	// PIE additionally randomizes the program image base (an ablation
	// beyond the paper's setup; defeats the PLT/.bss-based ROP bypass).
	PIE bool
	// Hooks, when non-nil, is installed on the CPU; the CFI mitigation
	// provides a shadow-stack implementation.
	Hooks isa.Hooks
	// Seed drives every randomized decision (ASLR slides, canary values).
	Seed int64
	// ASLREntropyPages is the number of distinct libc slide positions; 0
	// means the default 4096 pages (16 MB of spread, ~12 bits — typical
	// for 32-bit mmap ASLR). Low-entropy configurations model weak
	// embedded ASLR and make brute-forcing measurable.
	ASLREntropyPages int
	// InstrBudget bounds each Call; 0 means DefaultInstrBudget.
	InstrBudget uint64
	// SingleStep forces the pure per-instruction interpreter path,
	// disabling basic-block dispatch. The differential lockstep harness
	// (internal/isa/isatest) uses it as the reference executor; it is
	// also the switch to flip when bisecting a suspected translator bug.
	SingleStep bool
	// LinkOpts tunes program linking (used by the diversity mitigation).
	LinkOpts image.Options
}

// Status is the terminal state of a Call.
type Status uint8

// Call outcome statuses.
const (
	// StatusReturned means the function returned to the kernel sentinel.
	StatusReturned Status = iota + 1
	// StatusShell means the process execed a shell — remote code
	// execution, the paper's headline outcome.
	StatusShell
	// StatusFault is the simulated SIGSEGV/SIGILL crash (DoS outcome).
	StatusFault
	// StatusCFI means a control-flow-integrity hook vetoed a transfer.
	StatusCFI
	// StatusExited means the program called exit().
	StatusExited
	// StatusAborted means a stack-canary check failed (stack smashing
	// detected; crash without code execution).
	StatusAborted
	// StatusTimeout means the instruction budget ran out.
	StatusTimeout
)

// String implements fmt.Stringer.
func (s Status) String() string {
	switch s {
	case StatusReturned:
		return "returned"
	case StatusShell:
		return "shell"
	case StatusFault:
		return "fault"
	case StatusCFI:
		return "cfi-violation"
	case StatusExited:
		return "exited"
	case StatusAborted:
		return "canary-abort"
	case StatusTimeout:
		return "timeout"
	default:
		return "unknown"
	}
}

// ShellSpawn records a successful exec of a shell. The simulated daemon
// runs as root, so UID is always 0 — "Connman natively runs with root
// permissions" (§III).
type ShellSpawn struct {
	// Path is the resolved program path (always the shell here).
	Path string
	// Command is the -c command for system(); empty for bare shells.
	Command string
	// Via names the service used: "execve", "execlp" or "system".
	Via string
	// UID is the credential of the new process.
	UID int
}

// RunResult is the outcome of one emulated call.
type RunResult struct {
	Status Status
	// RetVal is the ABI return value for StatusReturned.
	RetVal uint32
	// Fault is set for StatusFault (nil for illegal-instruction crashes).
	Fault *mem.Fault
	// Illegal marks an undecodable-instruction crash.
	Illegal bool
	// PC is the program counter at the terminal event.
	PC uint32
	// Reason carries CFI-violation detail.
	Reason string
	// Shell is set for StatusShell.
	Shell *ShellSpawn
	// ExitStatus is set for StatusExited.
	ExitStatus uint32
	// Instructions is the number of instructions retired during the call.
	Instructions uint64
}

// Crashed reports whether the run ended in any abnormal termination
// (fault, CFI kill, canary abort, or hang) — the DoS bucket.
func (r RunResult) Crashed() bool {
	switch r.Status {
	case StatusFault, StatusCFI, StatusAborted, StatusTimeout:
		return true
	default:
		return false
	}
}

// String gives a compact human-readable summary.
func (r RunResult) String() string {
	switch r.Status {
	case StatusShell:
		return fmt.Sprintf("shell via %s (uid %d)", r.Shell.Via, r.Shell.UID)
	case StatusFault:
		if r.Illegal {
			return fmt.Sprintf("fault: illegal instruction at %#08x", r.PC)
		}
		return fmt.Sprintf("fault: %v", r.Fault)
	case StatusCFI:
		return "cfi violation: " + r.Reason
	case StatusReturned:
		return fmt.Sprintf("returned %#x", r.RetVal)
	case StatusExited:
		return fmt.Sprintf("exited %d", r.ExitStatus)
	case StatusAborted:
		return "stack smashing detected"
	case StatusTimeout:
		return "instruction budget exhausted"
	default:
		return "unknown"
	}
}

// Process is one loaded, runnable program instance.
type Process struct {
	cfg  Config
	arch isa.Arch
	cpu  isa.CPU
	m    *mem.Memory

	// Prog is the linked program image; Libc the linked C library.
	Prog *image.Image
	Libc *image.Image

	// StackTop is the highest stack address (first frame grows down from
	// just below it).
	StackTop uint32

	stdout bytes.Buffer
	shells []ShellSpawn
	rng    *rand.Rand
	budget uint64

	// tel is the process's telemetry shard (nil while telemetry is
	// disabled); lastDCMisses remembers the CPU's monotonic
	// decode-cache totals at the previous flush so each Run contributes
	// only its own delta.
	tel          *telemetry.Shard
	lastDCMisses uint64
	// lastBlock remembers the CPU's monotonic block-translation totals at
	// the previous flush, mirroring lastDCMisses.
	lastBlock isa.BlockStats
	// attempt tags this process's telemetry (run accounting, fault
	// events) with the campaign attempt ID — the per-device splitmix64
	// seed — so kernel-level evidence correlates with the stage spans of
	// the attempt that drove it. Zero outside campaigns.
	attempt uint64

	// guardAddr/canary record the seeded stack-protector guard (guardAddr
	// 0 when the program declares none), letting a same-seed Recycle
	// rewrite it without reconstructing the random stream.
	guardAddr uint32
	canary    uint32
}

// Layout is the seed-derived address-space placement a Load(cfg) produces.
type Layout struct {
	// ProgSlide is the PIE slide applied to every program section base
	// (0 without PIE).
	ProgSlide uint32
	// LibcBase is the libc link base after any ASLR slide.
	LibcBase uint32
	// StackTop is the highest stack address.
	StackTop uint32
}

// layoutFor consumes the layout draws from rng in Load's exact order. It is
// the single source of layout-randomization policy: Load, Recycle's stream
// replay, and LayoutFor all go through it.
func layoutFor(arch isa.Arch, cfg Config, rng *rand.Rand) Layout {
	var l Layout
	if cfg.PIE {
		l.ProgSlide = uint32(rng.Intn(0x800)) * Page
	}
	l.LibcBase = image.DefaultLibcBase(arch)
	if cfg.ASLR {
		entropy := cfg.ASLREntropyPages
		if entropy <= 0 {
			entropy = 0x1000
		}
		l.LibcBase += uint32(rng.Intn(entropy)) * Page
	}
	// Without W⊕X the stack is executable, the historical default the
	// paper's first experiments rely on (the permission itself is applied
	// at map time).
	l.StackTop = 0xBFFF8000
	if arch == isa.ArchARMS {
		l.StackTop = 0x7EFF8000
	}
	if cfg.ASLR {
		l.StackTop -= uint32(rng.Intn(0x800)) * 16
		l.StackTop &^= 15
	}
	return l
}

// LayoutFor predicts the placement Load(cfg) would produce for arch — the
// libc base, stack top and PIE slide — without linking or mapping anything.
// Reconnaissance uses it to sample a replica's address constants cheaply;
// the sample is identical to loading a full replica and reading the same
// addresses.
func LayoutFor(arch isa.Arch, cfg Config) Layout {
	return layoutFor(arch, cfg, rand.New(rand.NewSource(cfg.Seed)))
}

// Load links the program unit (at its fixed non-PIE layout unless cfg.PIE)
// and the libc unit (at an ASLR-slid base when cfg.ASLR), maps everything,
// fills the GOT, maps the stack, and seeds the canary guard if the program
// declares one.
func Load(prog *image.Unit, libc *image.Unit, cfg Config) (*Process, error) {
	rng := rand.New(rand.NewSource(cfg.Seed))
	lay := layoutFor(prog.Arch, cfg, rng)

	// Program link.
	progLayout := image.DefaultProgramLayout(prog.Arch)
	if cfg.PIE {
		progLayout.TextBase += lay.ProgSlide
		progLayout.RODataBase += lay.ProgSlide
		progLayout.GOTBase += lay.ProgSlide
		progLayout.DataBase += lay.ProgSlide
		progLayout.BSSBase += lay.ProgSlide
	}
	progImg, err := image.Link(prog, progLayout, cfg.LinkOpts)
	if err != nil {
		return nil, fmt.Errorf("link program: %w", err)
	}

	libcImg, err := image.Link(libc, image.LibraryLayout(lay.LibcBase), image.Options{})
	if err != nil {
		return nil, fmt.Errorf("link libc: %w", err)
	}

	m := mem.New()
	m.SetWX(cfg.WX)
	if err := progImg.MapInto(m, ""); err != nil {
		return nil, fmt.Errorf("map program: %w", err)
	}
	if err := libcImg.MapInto(m, "libc"); err != nil {
		return nil, fmt.Errorf("map libc: %w", err)
	}

	// GOT population: point every import at its libc definition.
	for name, got := range progImg.GOT {
		addr, ok := libcImg.Lookup(name)
		if !ok {
			return nil, fmt.Errorf("load: import %q not provided by libc", name)
		}
		if f := m.WriteU32(got, addr); f != nil {
			return nil, fmt.Errorf("load: write got: %w", f)
		}
	}

	// Stack. Without W⊕X the stack is executable, the historical default
	// the paper's first experiments rely on.
	stackTop := lay.StackTop
	perm := mem.PermRWX
	if cfg.WX {
		perm = mem.PermRW
	}
	if _, err := m.Map("stack", stackTop-StackSize, StackSize, perm); err != nil {
		return nil, fmt.Errorf("map stack: %w", err)
	}

	// Scratch heap for packet buffers and daemon state. Like the stack it
	// is executable unless W⊕X is on: 32-bit Linux of the paper's era made
	// brk/mmap data executable too, which is what heap-resident shellcode
	// relies on.
	if _, err := m.Map("heap", HeapBaseFor(prog.Arch), HeapSize, perm); err != nil {
		return nil, fmt.Errorf("map heap: %w", err)
	}

	var cpu isa.CPU
	if prog.Arch == isa.ArchARMS {
		cpu = arms.New(m)
	} else {
		cpu = x86s.New(m)
	}
	if cfg.Hooks != nil {
		cpu.SetHooks(cfg.Hooks)
	}

	p := &Process{
		cfg:      cfg,
		arch:     prog.Arch,
		cpu:      cpu,
		m:        m,
		Prog:     progImg,
		Libc:     libcImg,
		StackTop: stackTop,
		rng:      rng,
		budget:   cfg.InstrBudget,
		tel:      telemetry.Handle(),
	}
	if p.budget == 0 {
		p.budget = DefaultInstrBudget
	}

	// Seal the canary-free baseline: everything mapped and linked so far is
	// what Reset restores when the process is recycled. The canary below is
	// written through the accessors, so a Reset removes it and Recycle
	// reseeds it from the new configuration's stream.
	m.Seal()

	// Canary guard: like glibc, a random value with a zero low byte (the
	// zero byte terminates accidental string copies; the lab's
	// length-prefixed overflow is unaffected, which is why canaries must
	// be checked, not just present).
	if guard, ok := progImg.Lookup("__stack_chk_guard"); ok {
		v := rng.Uint32()<<8 | 0
		if f := m.WriteU32(guard, v); f != nil {
			return nil, fmt.Errorf("load: seed canary: %w", f)
		}
		p.guardAddr, p.canary = guard, v
	}
	return p, nil
}

// Recycle rewinds the process to a freshly loaded state for cfg without
// relinking images or remapping segments: memory resets to the sealed
// post-load baseline, the CPU returns to power-on state, and the random
// stream a fresh Load(cfg) would have drawn (layout slides, canary) is
// replayed, so a recycled process is indistinguishable from a new one. It
// reports false — leaving the process untouched — when cfg could produce a
// different memory layout than the one mapped: a changed protection axis,
// diversity link options, or a different seed while ASLR/PIE slides are in
// play. Callers fall back to a fresh Load on false.
func (p *Process) Recycle(cfg Config) bool {
	if !p.m.Sealed() {
		return false
	}
	old := p.cfg
	if old.WX != cfg.WX || old.ASLR != cfg.ASLR || old.PIE != cfg.PIE ||
		old.ASLREntropyPages != cfg.ASLREntropyPages {
		return false
	}
	// Diversity relinks the program; a recycled mapping cannot honor it.
	if old.LinkOpts.Order != nil || old.LinkOpts.Pad != nil ||
		cfg.LinkOpts.Order != nil || cfg.LinkOpts.Pad != nil {
		return false
	}
	// With ASLR or PIE the slides are seed-derived, so only the exact same
	// seed reproduces the mapped layout. Without them the layout is fixed
	// and any seed works (the canary is reseeded below).
	if cfg.Seed != old.Seed && (cfg.ASLR || cfg.PIE) {
		return false
	}
	if !p.m.Reset() {
		return false
	}

	type stateResetter interface{ ResetState() }
	p.cpu.(stateResetter).ResetState()
	p.cpu.SetHooks(cfg.Hooks)

	sameSeed := cfg.Seed == old.Seed
	p.cfg = cfg
	p.budget = cfg.InstrBudget
	if p.budget == 0 {
		p.budget = DefaultInstrBudget
	}
	p.stdout.Reset()
	p.shells = nil
	// Re-take the telemetry handle: a recycled daemon may outlive the
	// enablement epoch it was loaded under (Enable doubles as a reset).
	p.tel = telemetry.Handle()

	if !sameSeed {
		// Replay the layout draws Load(cfg) would have made before the
		// canary, so the canary comes from the same point of the stream.
		rng := rand.New(rand.NewSource(cfg.Seed))
		_ = layoutFor(p.arch, cfg, rng)
		p.rng = rng
		if p.guardAddr != 0 {
			p.canary = rng.Uint32()<<8 | 0
		}
	}
	// With the same seed every draw replays to the value Load produced, so
	// the recorded canary is rewritten as is — no stream reconstruction.
	if p.guardAddr != 0 {
		if f := p.m.WriteU32(p.guardAddr, p.canary); f != nil {
			return false
		}
	}
	return true
}

// Arch returns the process architecture.
func (p *Process) Arch() isa.Arch { return p.arch }

// CPU returns the process CPU (primarily for the debugger).
func (p *Process) CPU() isa.CPU { return p.cpu }

// SetAttempt tags subsequent run accounting and fault events with the
// campaign attempt ID (the per-device splitmix64 seed). The campaign
// engine calls it when it binds a daemon to a device; recycled daemons
// are re-tagged for each new device.
func (p *Process) SetAttempt(id uint64) { p.attempt = id }

// Mem returns the process address space.
func (p *Process) Mem() *mem.Memory { return p.m }

// Config returns the protection configuration the process was loaded with.
func (p *Process) Config() Config { return p.cfg }

// Stdout returns everything the program has written to fd 1.
func (p *Process) Stdout() string { return p.stdout.String() }

// Shells returns every shell spawn recorded so far.
func (p *Process) Shells() []ShellSpawn {
	out := make([]ShellSpawn, len(p.shells))
	copy(out, p.shells)
	return out
}

// HeapBase returns the base of the scratch heap region.
func (p *Process) HeapBase() uint32 {
	return p.m.Segment("heap").Base
}
