package kernel

import (
	"fmt"

	"connlab/internal/abi"
	"connlab/internal/isa"
	"connlab/internal/isa/arms"
	"connlab/internal/isa/x86s"
	"connlab/internal/telemetry"
)

// maxStrLen bounds strings read from emulated memory.
const maxStrLen = 4096

// Call invokes the named program function with the architecture's calling
// convention and runs it to a terminal event. Each Call starts from a
// fresh top-of-stack frame, modelling the daemon's per-packet handler
// invocation.
func (p *Process) Call(fn string, args ...uint32) (RunResult, error) {
	addr, ok := p.Prog.Lookup(fn)
	if !ok {
		return RunResult{}, fmt.Errorf("call: undefined function %q", fn)
	}
	return p.CallAddr(addr, args...)
}

// PrepareCall sets up the registers and initial stack frame for a call but
// does not run it — the debugger uses it to single-step from the entry.
func (p *Process) PrepareCall(fn string, args ...uint32) error {
	addr, ok := p.Prog.Lookup(fn)
	if !ok {
		return fmt.Errorf("prepare call: undefined function %q", fn)
	}
	return p.setupCall(addr, args)
}

// CallAddr is Call for a raw entry address.
func (p *Process) CallAddr(addr uint32, args ...uint32) (RunResult, error) {
	if err := p.setupCall(addr, args); err != nil {
		return RunResult{}, err
	}
	return p.Run(), nil
}

// CallResetter is implemented by hooks (e.g. the CFI shadow stack) that
// need to observe the start of each top-level call and its sentinel
// return address.
type CallResetter interface {
	ResetCall(ret uint32)
}

// setupCall prepares registers and the initial stack frame.
func (p *Process) setupCall(addr uint32, args []uint32) error {
	if r, ok := p.cfg.Hooks.(CallResetter); ok {
		r.ResetCall(Sentinel)
	}
	// Leave headroom between the frame and the top of the mapped stack,
	// standing in for the daemon main-loop frames and environment a real
	// process keeps there. Long ROP chains smash upward into this space.
	sp := p.StackTop - 256
	if p.arch == isa.ArchX86S {
		// cdecl: push args right-to-left, then the sentinel return address.
		for i := len(args) - 1; i >= 0; i-- {
			sp -= 4
			if f := p.m.WriteU32(sp, args[i]); f != nil {
				return fmt.Errorf("setup call: %w", f)
			}
		}
		sp -= 4
		if f := p.m.WriteU32(sp, Sentinel); f != nil {
			return fmt.Errorf("setup call: %w", f)
		}
		p.cpu.SetSP(sp)
		p.cpu.SetPC(addr)
		return nil
	}
	// arms AAPCS-ish: first four args in r0-r3, rest unsupported here.
	if len(args) > 4 {
		return fmt.Errorf("setup call: arms supports at most 4 register args, got %d", len(args))
	}
	for i, v := range args {
		p.cpu.SetReg(i, v)
	}
	p.cpu.SetReg(arms.LR, Sentinel)
	p.cpu.SetSP(sp)
	p.cpu.SetPC(addr)
	return nil
}

// Run executes until a terminal event: sentinel return, shell spawn, exit,
// fault, CFI kill, or budget exhaustion.
//
// The loop is the interpreter's outermost hot path: unlike StepHandled
// (kept for the debugger, which wants a RunResult per step), it constructs
// a RunResult only at terminal events instead of zeroing one per
// instruction.
func (p *Process) Run() RunResult {
	return p.runLoop()
}

// accountRun flushes one run's worth of telemetry: run/instruction/fault
// counters, the per-run instruction histogram, and the decode-cache
// deltas accumulated inside the CPU since the previous flush. The CPUs
// count only decode-cache misses (the miss path already pays a full
// fetch+decode, so the bump is free); the hit delta is derived as
// instructions minus new misses, clamped at zero for the off-by-one a
// faulting fetch introduces (its Step consults the cache but retires no
// instruction).
func (p *Process) accountRun(res RunResult) {
	t := p.tel
	t.Inc(telemetry.CtrEmuRuns)
	t.Add(telemetry.CtrEmuInstr, res.Instructions)
	t.Observe(telemetry.HistEmuRunInstr, res.Instructions)
	// Per-run events are debug-level (filtered at the default threshold);
	// faults warrant a warn-level entry carrying the faulting PC. Both
	// carry the attempt ID so the obs stream correlates kernel evidence
	// with the campaign trial that produced it.
	telemetry.LogEvent(telemetry.EvDebug, "kernel", "run", string(p.arch),
		p.attempt, res.Instructions, uint64(res.Status))
	if res.Status == StatusFault || res.Status == StatusCFI {
		t.Inc(telemetry.CtrEmuFaults)
		telemetry.LogEvent(telemetry.EvWarn, "kernel", "run fault", string(p.arch),
			p.attempt, uint64(res.PC), res.Instructions)
	}
	misses := p.cpu.DecodeCacheMisses()
	hitCtr, missCtr := telemetry.CtrX86DecodeHit, telemetry.CtrX86DecodeMiss
	trCtr, bhCtr, invCtr, biCtr := telemetry.CtrX86BlockTranslate, telemetry.CtrX86BlockHit,
		telemetry.CtrX86BlockInvalidate, telemetry.CtrX86BlockInstr
	if p.arch == isa.ArchARMS {
		hitCtr, missCtr = telemetry.CtrARMSDecodeHit, telemetry.CtrARMSDecodeMiss
		trCtr, bhCtr, invCtr, biCtr = telemetry.CtrARMSBlockTranslate, telemetry.CtrARMSBlockHit,
			telemetry.CtrARMSBlockInvalidate, telemetry.CtrARMSBlockInstr
	}
	bs := p.cpu.BlockStats()
	blockInstrDelta := bs.Instrs - p.lastBlock.Instrs
	t.Add(trCtr, bs.Translated-p.lastBlock.Translated)
	t.Add(bhCtr, bs.Hits-p.lastBlock.Hits)
	t.Add(invCtr, bs.Invalidated-p.lastBlock.Invalidated)
	t.Add(biCtr, blockInstrDelta)
	p.lastBlock = bs
	missDelta := misses - p.lastDCMisses
	p.lastDCMisses = misses
	t.Add(missCtr, missDelta)
	// Instructions retired inside blocks never probe the decode cache, so
	// they are excluded from the derived hit count.
	if res.Instructions > missDelta+blockInstrDelta {
		t.Add(hitCtr, res.Instructions-missDelta-blockInstrDelta)
	}
}

// finish routes a terminal RunResult through the telemetry flush. It is
// small enough to inline at runLoop's (cold) terminal returns, so the
// disabled cost is one predicted-not-taken branch per run.
func (p *Process) finish(res RunResult) RunResult {
	if p.tel != nil {
		p.accountRun(res)
	}
	return res
}

// runLoop is the interpreter's outermost hot path, separated from Run so
// the telemetry flush stays out of the loop. Accounting happens via the
// inlined finish at each terminal return rather than in Run or a defer:
// a p.tel branch in Run makes Run non-inlinable and a defer here pins
// the result to the stack, both of which measurably slow the
// interpreter even with telemetry disabled.
// runLoop dispatches through the CPU's basic-block cache: each iteration
// executes a chain of translated blocks (or one single-stepped
// instruction when the entry is not block-eligible), with the remaining
// budget as the per-dispatch cap so a timeout lands on exactly the same
// instruction count single-stepping would report. The sentinel check on
// retired events stays sound under chained blocks: the sentinel is never
// mapped, so a chain reaching it cannot translate further and returns a
// retired event whose PC is the sentinel — the PC single-step would have
// reported there.
func (p *Process) runLoop() RunResult {
	cpu := p.cpu
	start := cpu.InstrCount()
	if cpu.PC() == Sentinel {
		return p.finish(RunResult{Status: StatusReturned, RetVal: p.retVal(), PC: Sentinel})
	}
	single := p.cfg.SingleStep
	for {
		var ev isa.Event
		if single {
			ev = cpu.Step()
		} else {
			ev = cpu.StepBlock(p.budget - (cpu.InstrCount() - start))
		}
		switch ev.Kind {
		case isa.EventRetired:
			if ev.PC == Sentinel {
				return p.finish(RunResult{Status: StatusReturned, RetVal: p.retVal(), PC: Sentinel,
					Instructions: cpu.InstrCount() - start})
			}
		case isa.EventSyscall:
			if res, done := p.syscall(); done {
				res.Instructions = cpu.InstrCount() - start
				return p.finish(res)
			}
			if cpu.PC() == Sentinel {
				return p.finish(RunResult{Status: StatusReturned, RetVal: p.retVal(), PC: Sentinel,
					Instructions: cpu.InstrCount() - start})
			}
		case isa.EventFault:
			return p.finish(RunResult{Status: StatusFault, Fault: ev.Fault, Illegal: ev.Illegal, PC: ev.PC,
				Instructions: cpu.InstrCount() - start})
		case isa.EventCFIViolation:
			return p.finish(RunResult{Status: StatusCFI, PC: ev.PC, Reason: ev.Reason,
				Instructions: cpu.InstrCount() - start})
		default:
			return p.finish(RunResult{Status: StatusFault, PC: ev.PC, Illegal: true,
				Instructions: cpu.InstrCount() - start})
		}
		if cpu.InstrCount()-start >= p.budget {
			return p.finish(RunResult{
				Status: StatusTimeout, PC: cpu.PC(),
				Instructions: cpu.InstrCount() - start,
			})
		}
	}
}

// StepHandled advances the process by one instruction, servicing syscalls
// transparently. It returns done=true with the terminal result when the
// process reached a terminal state. The debugger uses it to single-step
// with full kernel semantics.
func (p *Process) StepHandled() (RunResult, bool) {
	if p.cpu.PC() == Sentinel {
		return RunResult{Status: StatusReturned, RetVal: p.retVal(), PC: Sentinel}, true
	}
	ev := p.cpu.Step()
	switch ev.Kind {
	case isa.EventRetired:
		if ev.PC == Sentinel {
			return RunResult{Status: StatusReturned, RetVal: p.retVal(), PC: Sentinel}, true
		}
		return RunResult{}, false
	case isa.EventSyscall:
		return p.syscall()
	case isa.EventFault:
		return RunResult{Status: StatusFault, Fault: ev.Fault, Illegal: ev.Illegal, PC: ev.PC}, true
	case isa.EventCFIViolation:
		return RunResult{Status: StatusCFI, PC: ev.PC, Reason: ev.Reason}, true
	default:
		return RunResult{Status: StatusFault, PC: ev.PC, Illegal: true}, true
	}
}

// retVal reads the ABI return-value register.
func (p *Process) retVal() uint32 {
	if p.arch == isa.ArchARMS {
		return p.cpu.Reg(arms.R0)
	}
	return p.cpu.Reg(x86s.EAX)
}

// syscallArgs reads the syscall number and arguments per the ABI.
func (p *Process) syscallArgs() (nr, a0, a1, a2 uint32) {
	if p.arch == isa.ArchARMS {
		return p.cpu.Reg(arms.R7), p.cpu.Reg(arms.R0), p.cpu.Reg(arms.R1), p.cpu.Reg(arms.R2)
	}
	return p.cpu.Reg(x86s.EAX), p.cpu.Reg(x86s.EBX), p.cpu.Reg(x86s.ECX), p.cpu.Reg(x86s.EDX)
}

// setSyscallResult writes the return value register.
func (p *Process) setSyscallResult(v uint32) {
	if p.arch == isa.ArchARMS {
		p.cpu.SetReg(arms.R0, v)
	} else {
		p.cpu.SetReg(x86s.EAX, v)
	}
}

// Errno values returned to emulated code.
const (
	errNOENT  = 2
	errFAULT  = 14
	errNOSYS  = 38
	negErrMax = ^uint32(0) // -1 base for -errno encoding
)

func negErrno(e uint32) uint32 { return negErrMax - e + 1 }

// syscall services the pending system call and reports whether it was
// terminal for the process.
func (p *Process) syscall() (RunResult, bool) {
	nr, a0, a1, a2 := p.syscallArgs()
	switch nr {
	case abi.SysExit:
		return RunResult{Status: StatusExited, ExitStatus: a0, PC: p.cpu.PC()}, true

	case abi.SysWrite:
		n := a2
		if n > 1<<16 {
			n = 1 << 16
		}
		b, f := p.m.ReadBytes(a1, n)
		if f != nil {
			p.setSyscallResult(negErrno(errFAULT))
			return RunResult{}, false
		}
		_ = a0 // single output stream
		p.stdout.Write(b)
		p.setSyscallResult(n)
		return RunResult{}, false

	case abi.SysExecve:
		return p.exec(a0, "execve", false)

	case abi.SysExeclp:
		return p.exec(a0, "execlp", true)

	case abi.SysAbort:
		return RunResult{Status: StatusAborted, PC: p.cpu.PC()}, true

	case abi.SysSystem:
		cmd, f := p.m.ReadCString(a0, maxStrLen)
		if f != nil {
			p.setSyscallResult(negErrno(errFAULT))
			return RunResult{}, false
		}
		// system(cmd) == execve("/bin/sh", ["sh", "-c", cmd], ...): it
		// always spawns the shell.
		spawn := ShellSpawn{Path: abi.ShellPath, Command: cmd, Via: "system", UID: 0}
		p.shells = append(p.shells, spawn)
		return RunResult{Status: StatusShell, Shell: &spawn, PC: p.cpu.PC()}, true

	default:
		p.setSyscallResult(negErrno(errNOSYS))
		return RunResult{}, false
	}
}

// exec resolves a program path and, when it names the shell, records the
// spawn. relative=true models execlp's PATH search, which lets the
// two-byte name "sh" reach /bin/sh — the property the paper's ARM ASLR
// exploit exploits after it can only copy two characters into .bss.
func (p *Process) exec(pathPtr uint32, via string, relative bool) (RunResult, bool) {
	path, f := p.m.ReadCString(pathPtr, maxStrLen)
	if f != nil {
		p.setSyscallResult(negErrno(errFAULT))
		return RunResult{}, false
	}
	resolved, ok := resolveExec(path, relative)
	if !ok {
		p.setSyscallResult(negErrno(errNOENT))
		return RunResult{}, false
	}
	spawn := ShellSpawn{Path: resolved, Via: via, UID: 0}
	p.shells = append(p.shells, spawn)
	return RunResult{Status: StatusShell, Shell: &spawn, PC: p.cpu.PC()}, true
}

// resolveExec is the lab's one-entry filesystem + PATH. Repeated slashes
// collapse, as in a real VFS — which is what lets NUL-free shellcode exec
// "/bin//sh".
func resolveExec(path string, relative bool) (string, bool) {
	clean := make([]byte, 0, len(path))
	for i := 0; i < len(path); i++ {
		if path[i] == '/' && len(clean) > 0 && clean[len(clean)-1] == '/' {
			continue
		}
		clean = append(clean, path[i])
	}
	path = string(clean)
	if path == abi.ShellPath {
		return abi.ShellPath, true
	}
	if relative && path == abi.RelShell {
		return abi.ShellPath, true
	}
	return "", false
}
