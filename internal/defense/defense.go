// Package defense implements the mitigations §IV of the paper proposes to
// deploy against its own exploits, so the lab can measure them:
//
//   - a hardware-style control-flow-integrity shadow stack (the CFI CaRE
//     direction): every call pushes its return address to protected
//     storage, every return must match, and (optionally) every indirect
//     jump must target a known function entry;
//   - compile-time artificial software diversity: function-layout
//     shuffling, random inter-function padding, and equivalent-instruction
//     substitution, making each build's gadget addresses unique.
//
// Stack canaries, the third classic mitigation, are a victim build option
// (internal/victim BuildOpts.Canary) plus kernel guard seeding.
package defense

import (
	"errors"
	"fmt"
	"math/rand"

	"connlab/internal/image"
	"connlab/internal/isa"
	"connlab/internal/isa/arms"
	"connlab/internal/isa/x86s"
	"connlab/internal/kernel"
)

// ErrShadowMismatch is wrapped into every return-edge violation.
var ErrShadowMismatch = errors.New("return target does not match shadow stack")

// ErrBadJumpTarget is wrapped into every forward-edge violation.
var ErrBadJumpTarget = errors.New("indirect jump outside known function entries")

// ShadowStack is an isa.Hooks implementation enforcing backward-edge CFI,
// with optional forward-edge entry-point checking. Install it via
// kernel.Config.Hooks before loading; call Arm after loading to enable
// forward-edge checks against the loaded images.
type ShadowStack struct {
	stack   []uint32
	entries map[uint32]bool // valid indirect-jump targets; nil = don't check
	// Violations counts vetoed transfers, for reporting.
	Violations int
}

var _ isa.Hooks = (*ShadowStack)(nil)

// NewShadowStack returns an empty shadow stack (backward-edge only until
// Arm is called).
func NewShadowStack() *ShadowStack { return &ShadowStack{} }

// ResetCall is invoked by the kernel when it sets up a fresh top-level
// call with the given sentinel return address.
func (s *ShadowStack) ResetCall(ret uint32) {
	s.stack = s.stack[:0]
	s.stack = append(s.stack, ret)
}

// Arm enables forward-edge checking: indirect jumps may only target
// function entry points of the loaded program and libc (PLT stubs
// included). This is the CFI CaRE-style policy for embedded binaries.
func (s *ShadowStack) Arm(proc *kernel.Process) {
	s.entries = make(map[uint32]bool)
	for _, img := range []*image.Image{proc.Prog, proc.Libc} {
		for _, sym := range img.FuncSymbols() {
			s.entries[sym.Addr] = true
		}
	}
}

// OnControl implements isa.Hooks.
func (s *ShadowStack) OnControl(kind isa.ControlKind, from, to, ret uint32) error {
	switch kind {
	case isa.ControlCall:
		s.stack = append(s.stack, ret)
		return nil
	case isa.ControlReturn:
		if len(s.stack) == 0 {
			s.Violations++
			return fmt.Errorf("cfi: return to %#08x from %#08x with empty shadow stack: %w",
				to, from, ErrShadowMismatch)
		}
		want := s.stack[len(s.stack)-1]
		if to != want {
			s.Violations++
			return fmt.Errorf("cfi: return to %#08x from %#08x, shadow stack holds %#08x: %w",
				to, from, want, ErrShadowMismatch)
		}
		s.stack = s.stack[:len(s.stack)-1]
		return nil
	case isa.ControlJump:
		if s.entries == nil {
			return nil
		}
		if !s.entries[to] {
			s.Violations++
			return fmt.Errorf("cfi: jump to %#08x from %#08x: %w", to, from, ErrBadJumpTarget)
		}
		return nil
	default:
		return nil
	}
}

// Depth returns the current shadow stack depth (for tests).
func (s *ShadowStack) Depth() int { return len(s.stack) }

// DiversityOptions derives image link options that shuffle function order
// and insert random padding — compile-time layout diversity. Two seeds
// give two binaries whose gadgets sit at different addresses, so an
// exploit harvested from one build misfires on another.
func DiversityOptions(u *image.Unit, seed int64) image.Options {
	rng := rand.New(rand.NewSource(seed))
	n := len(u.Funcs)
	order := rng.Perm(n)
	pad := make([]int, n)
	for i := range pad {
		pad[i] = rng.Intn(48)
	}
	return image.Options{Order: order, Pad: pad}
}

// EquivSubstitute rewrites function bytes in place with randomly chosen
// semantically equivalent encodings of the same length — the
// equivalent-instruction randomization of §IV. Relocation sites are left
// untouched. It returns how many instructions were rewritten.
func EquivSubstitute(u *image.Unit, seed int64) (int, error) {
	rng := rand.New(rand.NewSource(seed))
	total := 0
	for _, fn := range u.Funcs {
		relocAt := func(off, size int) bool {
			for _, r := range fn.Relocs {
				if off < r.Off+8 && r.Off < off+size {
					return true
				}
			}
			return false
		}
		var n int
		var err error
		if u.Arch == isa.ArchARMS {
			n, err = substituteARM(fn.Bytes, rng, relocAt)
		} else {
			n, err = substituteX86(fn.Bytes, rng, relocAt)
		}
		if err != nil {
			return total, fmt.Errorf("substitute %s: %w", fn.Name, err)
		}
		total += n
	}
	return total, nil
}

// substituteX86 walks the instruction stream applying same-length
// substitutions: mov r,r has dual encodings (0x89 vs 0x8B with swapped
// ModRM), and xor r,r ⇔ sub r,r both zero a register with identical flag
// results.
func substituteX86(code []byte, rng *rand.Rand, relocAt func(off, size int) bool) (int, error) {
	off, n := 0, 0
	for off < len(code) {
		in, err := x86s.Decode(code[off:])
		if err != nil {
			// Inter-gap filler or data; stop rewriting this function.
			return n, nil
		}
		size := int(in.Size)
		if relocAt(off, size) || rng.Intn(2) == 0 {
			off += size
			continue
		}
		switch {
		case in.Op == x86s.OpMovRR && size == 2:
			// 0x89 encodes mov dst,src as /r src,dst; 0x8B mirrors it.
			if code[off] == 0x89 {
				code[off] = 0x8B
				code[off+1] = 0xC0 | byte(in.R1&7)<<3 | byte(in.R2&7)
			} else {
				code[off] = 0x89
				code[off+1] = 0xC0 | byte(in.R2&7)<<3 | byte(in.R1&7)
			}
			n++
		case in.Op == x86s.OpAluRR && !in.MemOperand && in.R1 == in.R2 &&
			(in.Alu == x86s.AluXor || in.Alu == x86s.AluSub):
			if in.Alu == x86s.AluXor {
				code[off] = 0x29 // sub r, r
			} else {
				code[off] = 0x31 // xor r, r
			}
			n++
		}
		off += size
	}
	return n, nil
}

// substituteARM applies mov rd, rn ⇔ add rd, rn, #0 ⇔ orr rd, rn, rn for
// non-pc registers.
func substituteARM(code []byte, rng *rand.Rand, relocAt func(off, size int) bool) (int, error) {
	n := 0
	for off := 0; off+4 <= len(code); off += 4 {
		w := uint32(code[off]) | uint32(code[off+1])<<8 | uint32(code[off+2])<<16 | uint32(code[off+3])<<24
		in, err := arms.Decode(w)
		if err != nil {
			continue
		}
		if relocAt(off, 4) || rng.Intn(2) == 0 {
			continue
		}
		var out arms.Instr
		switch {
		case in.Op == arms.OpMovR && in.Rd != arms.PC && in.Rn != arms.PC:
			if rng.Intn(2) == 0 {
				out = arms.Instr{Op: arms.OpAddI, Rd: in.Rd, Rn: in.Rn, Imm: 0}
			} else {
				out = arms.Instr{Op: arms.OpOrrR, Rd: in.Rd, Rn: in.Rn, Rm: in.Rn}
			}
		case in.Op == arms.OpAddI && in.Imm == 0 && in.Rd != arms.PC && in.Rn != arms.PC:
			out = arms.Instr{Op: arms.OpMovR, Rd: in.Rd, Rn: in.Rn}
		case in.Op == arms.OpOrrR && in.Rn == in.Rm && in.Rd != arms.PC && in.Rn != arms.PC:
			out = arms.Instr{Op: arms.OpMovR, Rd: in.Rd, Rn: in.Rn}
		default:
			continue
		}
		ww := out.Word()
		code[off] = byte(ww)
		code[off+1] = byte(ww >> 8)
		code[off+2] = byte(ww >> 16)
		code[off+3] = byte(ww >> 24)
		n++
	}
	return n, nil
}
