package defense

import (
	"bytes"
	"testing"

	"connlab/internal/dns"
	"connlab/internal/image"
	"connlab/internal/isa"
	"connlab/internal/kernel"
	"connlab/internal/victim"
)

// TestEquivSubstituteChangesBytes: substitution really rewrites
// instructions (the binaries differ) across seeds.
func TestEquivSubstituteChangesBytes(t *testing.T) {
	for _, arch := range []isa.Arch{isa.ArchX86S, isa.ArchARMS} {
		t.Run(string(arch), func(t *testing.T) {
			stock, err := victim.BuildProgram(arch, victim.BuildOpts{})
			if err != nil {
				t.Fatal(err)
			}
			subst, err := victim.BuildProgram(arch, victim.BuildOpts{})
			if err != nil {
				t.Fatal(err)
			}
			n, err := EquivSubstitute(subst, 11)
			if err != nil {
				t.Fatal(err)
			}
			if n < 3 {
				t.Fatalf("only %d substitutions", n)
			}
			diff := false
			for i := range stock.Funcs {
				if !bytes.Equal(stock.Funcs[i].Bytes, subst.Funcs[i].Bytes) {
					diff = true
				}
				if len(stock.Funcs[i].Bytes) != len(subst.Funcs[i].Bytes) {
					t.Errorf("%s: substitution changed code size", stock.Funcs[i].Name)
				}
			}
			if !diff {
				t.Error("no bytes changed")
			}
		})
	}
}

// TestSubstitutedBuildsBehaveIdentically: across several seeds, the
// substituted victim parses the same benign response with the same
// result and identical cache contents — semantic equivalence, the
// defining property of equivalent-instruction randomization.
func TestSubstitutedBuildsBehaveIdentically(t *testing.T) {
	q := dns.NewQuery(0x66, "equiv.check.example", dns.TypeA)
	resp := dns.NewResponse(q)
	resp.Answers = []dns.RR{dns.A("equiv.check.example", 60, [4]byte{4, 4, 4, 4})}
	pkt, err := resp.Encode()
	if err != nil {
		t.Fatal(err)
	}

	run := func(arch isa.Arch, seed int64) (kernel.RunResult, []byte) {
		u, err := victim.BuildProgram(arch, victim.BuildOpts{})
		if err != nil {
			t.Fatal(err)
		}
		if seed != 0 {
			if _, err := EquivSubstitute(u, seed); err != nil {
				t.Fatal(err)
			}
		}
		libc, err := image.BuildLibc(arch)
		if err != nil {
			t.Fatal(err)
		}
		proc, err := kernel.Load(u, libc, kernel.Config{Seed: 2})
		if err != nil {
			t.Fatal(err)
		}
		addr := proc.HeapBase()
		if f := proc.Mem().WriteBytes(addr, pkt); f != nil {
			t.Fatal(f)
		}
		res, err := proc.Call("parse_response", addr, uint32(len(pkt)))
		if err != nil {
			t.Fatal(err)
		}
		cacheAddr := proc.Prog.MustLookup("dns_cache")
		cache, f := proc.Mem().ReadBytes(cacheAddr, 64)
		if f != nil {
			t.Fatal(f)
		}
		return res, cache
	}

	for _, arch := range []isa.Arch{isa.ArchX86S, isa.ArchARMS} {
		t.Run(string(arch), func(t *testing.T) {
			baseRes, baseCache := run(arch, 0)
			for seed := int64(1); seed <= 5; seed++ {
				res, cache := run(arch, seed)
				if res.Status != baseRes.Status || res.RetVal != baseRes.RetVal {
					t.Errorf("seed %d: result %v differs from stock %v", seed, res, baseRes)
				}
				if !bytes.Equal(cache, baseCache) {
					t.Errorf("seed %d: cache contents differ", seed)
				}
			}
		})
	}
}

// TestDiversityOptionsDeterministic: the same seed yields the same
// layout, so a vendor can reproduce any shipped build.
func TestDiversityOptionsDeterministic(t *testing.T) {
	u, err := victim.BuildProgram(isa.ArchX86S, victim.BuildOpts{})
	if err != nil {
		t.Fatal(err)
	}
	a := DiversityOptions(u, 42)
	b := DiversityOptions(u, 42)
	for i := range a.Order {
		if a.Order[i] != b.Order[i] || a.Pad[i] != b.Pad[i] {
			t.Fatal("same seed produced different layouts")
		}
	}
	c := DiversityOptions(u, 43)
	same := true
	for i := range a.Order {
		if a.Order[i] != c.Order[i] {
			same = false
		}
	}
	if same {
		t.Error("different seeds produced the same permutation")
	}
}
