package defense

import (
	"testing"

	"connlab/internal/dns"
	"connlab/internal/exploit"
	"connlab/internal/image"
	"connlab/internal/isa"
	"connlab/internal/kernel"
	"connlab/internal/victim"
)

// runExploitUnderCFI fires one exploit kind at a victim with the shadow
// stack installed and returns the result.
func runExploitUnderCFI(t *testing.T, arch isa.Arch, kind exploit.Kind, forward bool) kernel.RunResult {
	t.Helper()
	cfg := kernel.Config{WX: true, Seed: 5}
	tgt, err := exploit.Recon(arch, victim.BuildOpts{}, cfg)
	if err != nil {
		t.Fatalf("recon: %v", err)
	}
	ex, err := exploit.Build(tgt, kind)
	if err != nil {
		t.Fatalf("build: %v", err)
	}

	ss := NewShadowStack()
	cfg.Hooks = ss
	d, err := victim.NewDaemon(arch, victim.BuildOpts{}, cfg)
	if err != nil {
		t.Fatalf("daemon: %v", err)
	}
	if forward {
		ss.Arm(d.Process())
	}
	q := dns.NewQuery(9, "cfi.test", dns.TypeA)
	pkt, err := ex.Response(q)
	if err != nil {
		t.Fatalf("response: %v", err)
	}
	res, err := d.HandleResponse(pkt)
	if err != nil {
		t.Fatalf("handle: %v", err)
	}
	return res
}

func TestCFIAllowsBenignTraffic(t *testing.T) {
	for _, arch := range []isa.Arch{isa.ArchX86S, isa.ArchARMS} {
		t.Run(string(arch), func(t *testing.T) {
			ss := NewShadowStack()
			cfg := kernel.Config{WX: true, Seed: 5, Hooks: ss}
			d, err := victim.NewDaemon(arch, victim.BuildOpts{}, cfg)
			if err != nil {
				t.Fatalf("daemon: %v", err)
			}
			ss.Arm(d.Process())
			q := dns.NewQuery(1, "ok.example", dns.TypeA)
			resp := dns.NewResponse(q)
			resp.Answers = []dns.RR{dns.A("ok.example", 60, [4]byte{1, 2, 3, 4})}
			pkt, err := resp.Encode()
			if err != nil {
				t.Fatalf("encode: %v", err)
			}
			res, err := d.HandleResponse(pkt)
			if err != nil {
				t.Fatalf("handle: %v", err)
			}
			if res.Status != kernel.StatusReturned {
				t.Fatalf("benign traffic under CFI: %v, want returned", res)
			}
			if ss.Violations != 0 {
				t.Errorf("violations = %d, want 0", ss.Violations)
			}
		})
	}
}

// TestCFIBlocksROP: every code-reuse chain dies on its first hijacked
// return — the §IV claim that CFI stops the paper's exploits.
func TestCFIBlocksROP(t *testing.T) {
	cases := []struct {
		arch isa.Arch
		kind exploit.Kind
	}{
		{isa.ArchX86S, exploit.KindRet2Libc},
		{isa.ArchX86S, exploit.KindRopMemcpy},
		{isa.ArchARMS, exploit.KindRopExeclp},
		{isa.ArchARMS, exploit.KindRopMemcpy},
	}
	for _, c := range cases {
		t.Run(string(c.arch)+"/"+string(c.kind), func(t *testing.T) {
			res := runExploitUnderCFI(t, c.arch, c.kind, false)
			if res.Status != kernel.StatusCFI {
				t.Fatalf("status = %v (%v), want cfi-violation", res.Status, res)
			}
		})
	}
}

func TestShadowStackDepthTracksCalls(t *testing.T) {
	ss := NewShadowStack()
	ss.ResetCall(kernel.Sentinel)
	if ss.Depth() != 1 {
		t.Fatalf("depth = %d, want 1", ss.Depth())
	}
	if err := ss.OnControl(isa.ControlCall, 0x100, 0x200, 0x105); err != nil {
		t.Fatalf("call: %v", err)
	}
	if err := ss.OnControl(isa.ControlReturn, 0x210, 0x105, 0); err != nil {
		t.Fatalf("return: %v", err)
	}
	if err := ss.OnControl(isa.ControlReturn, 0x110, 0xBAD, 0); err == nil {
		t.Fatal("mismatched return not vetoed")
	}
}

func TestDiversityShufflesGadgets(t *testing.T) {
	for _, arch := range []isa.Arch{isa.ArchX86S, isa.ArchARMS} {
		t.Run(string(arch), func(t *testing.T) {
			build := func(seed int64) *image.Image {
				u, err := victim.BuildProgram(arch, victim.BuildOpts{})
				if err != nil {
					t.Fatalf("build: %v", err)
				}
				img, err := image.Link(u, image.DefaultProgramLayout(arch), DiversityOptions(u, seed))
				if err != nil {
					t.Fatalf("link: %v", err)
				}
				return img
			}
			a, b := build(1), build(2)
			pa := a.MustLookup("parse_rr")
			pb := b.MustLookup("parse_rr")
			if pa == pb {
				t.Errorf("parse_rr at %#x in both diversity builds", pa)
			}
		})
	}
}

// TestDiversifiedBuildStillWorks: a shuffled, padded, substituted victim
// must still parse benign traffic — diversity is only useful if it
// preserves semantics.
func TestDiversifiedBuildStillWorks(t *testing.T) {
	for _, arch := range []isa.Arch{isa.ArchX86S, isa.ArchARMS} {
		t.Run(string(arch), func(t *testing.T) {
			u, err := victim.BuildProgram(arch, victim.BuildOpts{})
			if err != nil {
				t.Fatalf("build: %v", err)
			}
			n, err := EquivSubstitute(u, 7)
			if err != nil {
				t.Fatalf("substitute: %v", err)
			}
			if n == 0 {
				t.Error("no instructions substituted")
			}
			cfg := kernel.Config{Seed: 5, LinkOpts: DiversityOptions(u, 7)}
			libc, err := image.BuildLibc(arch)
			if err != nil {
				t.Fatalf("libc: %v", err)
			}
			proc, err := kernel.Load(u, libc, cfg)
			if err != nil {
				t.Fatalf("load: %v", err)
			}
			q := dns.NewQuery(3, "div.example", dns.TypeA)
			resp := dns.NewResponse(q)
			resp.Answers = []dns.RR{dns.A("div.example", 60, [4]byte{9, 9, 9, 9})}
			pkt, err := resp.Encode()
			if err != nil {
				t.Fatalf("encode: %v", err)
			}
			addr := proc.HeapBase()
			if f := proc.Mem().WriteBytes(addr, pkt); f != nil {
				t.Fatalf("stage: %v", f)
			}
			res, err := proc.Call("parse_response", addr, uint32(len(pkt)))
			if err != nil {
				t.Fatalf("call: %v", err)
			}
			if res.Status != kernel.StatusReturned || res.RetVal != 0 {
				t.Fatalf("diversified victim misparsed benign packet: %v", res)
			}
		})
	}
}

// TestDiversityBreaksCachedExploit: an exploit harvested from build A
// misfires on build B — the probabilistic protection of §IV.
func TestDiversityBreaksCachedExploit(t *testing.T) {
	// Recon against the stock build (seed-A equivalent).
	cfg := kernel.Config{WX: true, Seed: 5}
	tgt, err := exploit.Recon(isa.ArchX86S, victim.BuildOpts{}, cfg)
	if err != nil {
		t.Fatalf("recon: %v", err)
	}
	ex, err := exploit.Build(tgt, exploit.KindRopMemcpy)
	if err != nil {
		t.Fatalf("build: %v", err)
	}

	// Target runs a diversity build.
	u, err := victim.BuildProgram(isa.ArchX86S, victim.BuildOpts{})
	if err != nil {
		t.Fatalf("build victim: %v", err)
	}
	divCfg := kernel.Config{WX: true, Seed: 5, LinkOpts: DiversityOptions(u, 99)}
	d, err := victim.NewDaemon(isa.ArchX86S, victim.BuildOpts{}, divCfg)
	if err != nil {
		t.Fatalf("daemon: %v", err)
	}
	q := dns.NewQuery(4, "div.example", dns.TypeA)
	pkt, err := ex.Response(q)
	if err != nil {
		t.Fatalf("response: %v", err)
	}
	res, err := d.HandleResponse(pkt)
	if err != nil {
		t.Fatalf("handle: %v", err)
	}
	if res.Status == kernel.StatusShell {
		t.Fatalf("cached exploit still works on diversified build")
	}
}
