package dns

import "fmt"

// View is a lazy reading of one wire-format message: the fixed header is
// parsed eagerly, the first question is located or decoded on demand, and
// the resource-record sections are never materialised. It is the fast
// path for forwarding roles (proxy, MITM, resolver) that only need to
// rewrite IDs and splice payloads, not inspect every record.
//
// A View aliases the packet it was parsed from; it is only valid while
// that buffer is.
type View struct {
	b    []byte
	Hdr  Header
	qEnd int // offset just past question 0; 0 until located
}

// ParseView parses the header and wraps the packet.
func ParseView(b []byte) (View, error) {
	h, err := ParseHeader(b)
	if err != nil {
		return View{}, err
	}
	return View{b: b, Hdr: h}, nil
}

// Bytes returns the underlying packet.
func (v *View) Bytes() []byte { return v.b }

// QuestionEnd returns the offset just past the first question, locating
// it with a frame-level SkipName walk (no name decoding).
func (v *View) QuestionEnd() (int, error) {
	if v.qEnd != 0 {
		return v.qEnd, nil
	}
	if v.Hdr.QDCount == 0 {
		return 0, fmt.Errorf("%w: no question", ErrBadFormat)
	}
	off, err := SkipName(v.b, HeaderSize)
	if err != nil {
		return 0, err
	}
	off += 4 // qtype + qclass
	if off > len(v.b) {
		return 0, ErrTruncatedMsg
	}
	v.qEnd = off
	return off, nil
}

// QuestionBytes returns the wire bytes of the first question (name,
// type, class), aliasing the packet. ok is false when the question name
// uses compression pointers: such bytes are not self-contained and
// cannot be spliced into another message verbatim.
func (v *View) QuestionBytes() (qb []byte, ok bool, err error) {
	end, err := v.QuestionEnd()
	if err != nil {
		return nil, false, err
	}
	for off := HeaderSize; ; {
		c := v.b[off]
		if c == 0 {
			break
		}
		if c&0xC0 != 0 {
			return nil, false, nil
		}
		off += 1 + int(c)
	}
	return v.b[HeaderSize:end], true, nil
}

// Question decodes the first question with full validation, interning
// the name exactly like Decode.
func (v *View) Question() (Question, error) {
	if v.Hdr.QDCount == 0 {
		return Question{}, fmt.Errorf("%w: no question", ErrBadFormat)
	}
	d := decoder{b: v.b, pos: HeaderSize}
	q, err := d.question()
	if err != nil {
		return Question{}, err
	}
	if v.qEnd == 0 {
		v.qEnd = d.pos
	}
	return q, nil
}
