package dns

import (
	"fmt"
	"strings"
)

// appender is the zero-allocation encoder state: output goes to a
// caller-supplied buffer and the RFC 1035 §4.1.4 compression dictionary
// is a small array of message-relative offsets of previously written
// names, compared against the wire bytes already emitted instead of
// being keyed by materialised suffix strings.
type appender struct {
	buf  []byte
	base int // message start within buf; offsets are relative to it
	// The dictionary is a fixed in-struct array (kept by value so the
	// whole appender stays on the caller's stack) with a heap overflow
	// slice that only giant multi-name messages ever touch.
	nOffs int
	offs  [32]uint16
	extra []uint16
}

func (e *appender) register(off uint16) {
	if e.nOffs < len(e.offs) {
		e.offs[e.nOffs] = off
		e.nOffs++
		return
	}
	e.extra = append(e.extra, off)
}

func (e *appender) u16(v uint16) { e.buf = append(e.buf, byte(v>>8), byte(v)) }
func (e *appender) u32(v uint32) {
	e.buf = append(e.buf, byte(v>>24), byte(v>>16), byte(v>>8), byte(v))
}

// validateName applies the SplitName checks (empty labels, label and
// total length limits) without splitting into heap-allocated labels.
func validateName(name string) error {
	name = strings.TrimSuffix(name, ".")
	if name == "" {
		return nil
	}
	total := 0
	start := 0
	for i := 0; i <= len(name); i++ {
		if i != len(name) && name[i] != '.' {
			continue
		}
		l := i - start
		if l == 0 {
			return fmt.Errorf("%w: empty label in %q", ErrBadFormat, name)
		}
		if l > maxLabelLen {
			return fmt.Errorf("%w: %q", ErrLabelTooLong, name[start:i])
		}
		total += l + 1
		start = i + 1
	}
	if total+1 > maxNameLen {
		return fmt.Errorf("%w: %q", ErrNameTooLong, name)
	}
	return nil
}

func foldASCII(c byte) byte {
	if 'A' <= c && c <= 'Z' {
		return c + 'a' - 'A'
	}
	return c
}

// wireNameEquals reports whether the already-encoded name at
// message-relative offset off spells exactly the dotted suffix,
// ASCII-case-insensitively, following compression pointers. This is the
// append-mode replacement for the old map keyed by lowercased suffix
// strings: the wire already stores every registered suffix, so it is
// compared in place.
func (e *appender) wireNameEquals(off int, suffix string) bool {
	b := e.buf[e.base:]
	si := 0
	hops := 0
	for {
		if off >= len(b) {
			return false
		}
		c := b[off]
		switch {
		case c == 0:
			return si == len(suffix)
		case c&0xC0 == 0xC0:
			if off+1 >= len(b) {
				return false
			}
			if hops++; hops > maxPointerHops {
				return false
			}
			off = int(c&0x3F)<<8 | int(b[off+1])
		default:
			l := int(c)
			if off+1+l > len(b) {
				return false
			}
			if si > 0 {
				if si >= len(suffix) || suffix[si] != '.' {
					return false
				}
				si++
			}
			if si+l > len(suffix) {
				return false
			}
			for i := 0; i < l; i++ {
				if foldASCII(b[off+1+i]) != foldASCII(suffix[si+i]) {
					return false
				}
			}
			si += l
			off += 1 + l
		}
	}
}

// lookup scans the registered suffix offsets in registration order and
// returns the first whose wire spelling matches suffix.
func (e *appender) lookup(suffix string) (uint16, bool) {
	for i := 0; i < e.nOffs; i++ {
		if e.wireNameEquals(int(e.offs[i]), suffix) {
			return e.offs[i], true
		}
	}
	for _, off := range e.extra {
		if e.wireNameEquals(int(off), suffix) {
			return off, true
		}
	}
	return 0, false
}

// name encodes a dotted name with compression. Registration follows the
// original encoder exactly: each unseen suffix is registered at its
// first occurrence (only while the message is still below the 0x4000
// pointer horizon) and later occurrences become pointers.
func (e *appender) name(name string) error {
	if err := validateName(name); err != nil {
		return err
	}
	name = strings.TrimSuffix(name, ".")
	if name == "" {
		e.buf = append(e.buf, 0)
		return nil
	}
	for start := 0; start < len(name); {
		suffix := name[start:]
		if off, ok := e.lookup(suffix); ok {
			e.u16(0xC000 | off)
			return nil
		}
		if off := len(e.buf) - e.base; off < 0x4000 {
			e.register(uint16(off))
		}
		end := start
		for end < len(name) && name[end] != '.' {
			end++
		}
		e.buf = append(e.buf, byte(end-start))
		e.buf = append(e.buf, name[start:end]...)
		start = end + 1
	}
	e.buf = append(e.buf, 0)
	return nil
}

// question encodes one question entry.
func (e *appender) question(q Question) error {
	if err := e.name(q.Name); err != nil {
		return err
	}
	e.u16(uint16(q.Type))
	e.u16(uint16(q.Class))
	return nil
}

// rr encodes one resource record. A RawName bypasses name encoding and
// compression entirely: the bytes go on the wire verbatim. This is the
// exploit-delivery hook — everything else about the record stays
// well-formed so the response passes the victim's sanity checks.
func (e *appender) rr(r RR) error {
	if r.RawName != nil {
		e.buf = append(e.buf, r.RawName...)
	} else if err := e.name(r.Name); err != nil {
		return err
	}
	e.u16(uint16(r.Type))
	e.u16(uint16(r.Class))
	e.u32(r.TTL)
	if len(r.Data) > 0xFFFF {
		return fmt.Errorf("%w: rdata %d bytes", ErrBadFormat, len(r.Data))
	}
	e.u16(uint16(len(r.Data)))
	e.buf = append(e.buf, r.Data...)
	return nil
}

// Append serializes the message to wire format, appending to dst and
// returning the extended buffer. Compression offsets are relative to
// len(dst), so the result is a self-contained message wherever it lands.
func (m *Message) Append(dst []byte) ([]byte, error) {
	if len(m.Questions) > maxSectionCount || len(m.Answers) > maxSectionCount ||
		len(m.Authority) > maxSectionCount || len(m.Additional) > maxSectionCount {
		return nil, fmt.Errorf("%w: section too large", ErrBadFormat)
	}
	e := appender{buf: dst, base: len(dst)}
	e.u16(m.ID)
	e.u16(m.flagWord())
	e.u16(uint16(len(m.Questions)))
	e.u16(uint16(len(m.Answers)))
	e.u16(uint16(len(m.Authority)))
	e.u16(uint16(len(m.Additional)))
	for _, q := range m.Questions {
		if err := e.question(q); err != nil {
			return nil, err
		}
	}
	for _, r := range m.Answers {
		if err := e.rr(r); err != nil {
			return nil, err
		}
	}
	for _, r := range m.Authority {
		if err := e.rr(r); err != nil {
			return nil, err
		}
	}
	for _, r := range m.Additional {
		if err := e.rr(r); err != nil {
			return nil, err
		}
	}
	return e.buf, nil
}

// AppendMessage appends m's wire encoding to dst.
func AppendMessage(dst []byte, m *Message) ([]byte, error) {
	return m.Append(dst)
}

// wireCap returns an upper bound on the encoded size (compression only
// shrinks it), so Encode can allocate the result exactly once.
func (m *Message) wireCap() int {
	n := HeaderSize
	for _, q := range m.Questions {
		n += len(q.Name) + 2 + 4
	}
	n += rrCap(m.Answers)
	n += rrCap(m.Authority)
	n += rrCap(m.Additional)
	return n
}

func rrCap(sec []RR) int {
	n := 0
	for _, r := range sec {
		if r.RawName != nil {
			n += len(r.RawName)
		} else {
			n += len(r.Name) + 2
		}
		n += 10 + len(r.Data)
	}
	return n
}

// Encode serializes the message to wire format.
func (m *Message) Encode() ([]byte, error) {
	return m.Append(make([]byte, 0, m.wireCap()))
}

// AppendRawName encodes a dotted name without compression, appending to
// dst. It is the building block for hand-crafted label streams.
func AppendRawName(dst []byte, name string) ([]byte, error) {
	if err := validateName(name); err != nil {
		return nil, err
	}
	name = strings.TrimSuffix(name, ".")
	for start := 0; start < len(name); {
		end := start
		for end < len(name) && name[end] != '.' {
			end++
		}
		dst = append(dst, byte(end-start))
		dst = append(dst, name[start:end]...)
		start = end + 1
	}
	return append(dst, 0), nil
}
