package dns

import (
	"fmt"
	"strings"
)

// encoder carries the output buffer and the compression dictionary.
type encoder struct {
	buf []byte
	// offsets maps a canonical name suffix to its first occurrence, for
	// RFC 1035 §4.1.4 compression pointers.
	offsets map[string]int
}

func (e *encoder) u16(v uint16) { e.buf = append(e.buf, byte(v>>8), byte(v)) }
func (e *encoder) u32(v uint32) {
	e.buf = append(e.buf, byte(v>>24), byte(v>>16), byte(v>>8), byte(v))
}

// name encodes a dotted name with compression.
func (e *encoder) name(name string) error {
	labels, err := SplitName(name)
	if err != nil {
		return err
	}
	for i := range labels {
		suffix := strings.ToLower(strings.Join(labels[i:], "."))
		if off, ok := e.offsets[suffix]; ok && off < 0x4000 {
			e.u16(0xC000 | uint16(off))
			return nil
		}
		if len(e.buf) < 0x4000 {
			e.offsets[suffix] = len(e.buf)
		}
		e.buf = append(e.buf, byte(len(labels[i])))
		e.buf = append(e.buf, labels[i]...)
	}
	e.buf = append(e.buf, 0)
	return nil
}

// question encodes one question entry.
func (e *encoder) question(q Question) error {
	if err := e.name(q.Name); err != nil {
		return err
	}
	e.u16(uint16(q.Type))
	e.u16(uint16(q.Class))
	return nil
}

// rr encodes one resource record. A RawName bypasses name encoding and
// compression entirely: the bytes go on the wire verbatim. This is the
// exploit-delivery hook — everything else about the record stays
// well-formed so the response passes the victim's sanity checks.
func (e *encoder) rr(r RR) error {
	if r.RawName != nil {
		e.buf = append(e.buf, r.RawName...)
	} else if err := e.name(r.Name); err != nil {
		return err
	}
	e.u16(uint16(r.Type))
	e.u16(uint16(r.Class))
	e.u32(r.TTL)
	if len(r.Data) > 0xFFFF {
		return fmt.Errorf("%w: rdata %d bytes", ErrBadFormat, len(r.Data))
	}
	e.u16(uint16(len(r.Data)))
	e.buf = append(e.buf, r.Data...)
	return nil
}

// Encode serializes the message to wire format.
func (m *Message) Encode() ([]byte, error) {
	if len(m.Questions) > maxSectionCount || len(m.Answers) > maxSectionCount ||
		len(m.Authority) > maxSectionCount || len(m.Additional) > maxSectionCount {
		return nil, fmt.Errorf("%w: section too large", ErrBadFormat)
	}
	e := &encoder{offsets: make(map[string]int)}
	e.u16(m.ID)
	e.u16(m.flagWord())
	e.u16(uint16(len(m.Questions)))
	e.u16(uint16(len(m.Answers)))
	e.u16(uint16(len(m.Authority)))
	e.u16(uint16(len(m.Additional)))
	for _, q := range m.Questions {
		if err := e.question(q); err != nil {
			return nil, err
		}
	}
	for _, sec := range [][]RR{m.Answers, m.Authority, m.Additional} {
		for _, r := range sec {
			if err := e.rr(r); err != nil {
				return nil, err
			}
		}
	}
	return e.buf, nil
}

// AppendRawName encodes a dotted name without compression, appending to
// dst. It is the building block for hand-crafted label streams.
func AppendRawName(dst []byte, name string) ([]byte, error) {
	labels, err := SplitName(name)
	if err != nil {
		return nil, err
	}
	for _, l := range labels {
		dst = append(dst, byte(len(l)))
		dst = append(dst, l...)
	}
	return append(dst, 0), nil
}
