package dns

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
)

// refEncode is the original map-based encoder, kept as the reference the
// append-style codec must match byte for byte: the compression
// dictionary maps each lowercased dotted suffix to its first occurrence.
func refEncode(m *Message) ([]byte, error) {
	if len(m.Questions) > maxSectionCount || len(m.Answers) > maxSectionCount ||
		len(m.Authority) > maxSectionCount || len(m.Additional) > maxSectionCount {
		return nil, ErrBadFormat
	}
	var buf []byte
	offsets := make(map[string]int)
	u16 := func(v uint16) { buf = append(buf, byte(v>>8), byte(v)) }
	name := func(n string) error {
		labels, err := SplitName(n)
		if err != nil {
			return err
		}
		for i := range labels {
			suffix := strings.ToLower(strings.Join(labels[i:], "."))
			if off, ok := offsets[suffix]; ok && off < 0x4000 {
				u16(0xC000 | uint16(off))
				return nil
			}
			if len(buf) < 0x4000 {
				offsets[suffix] = len(buf)
			}
			buf = append(buf, byte(len(labels[i])))
			buf = append(buf, labels[i]...)
		}
		buf = append(buf, 0)
		return nil
	}
	u16(m.ID)
	u16(m.flagWord())
	u16(uint16(len(m.Questions)))
	u16(uint16(len(m.Answers)))
	u16(uint16(len(m.Authority)))
	u16(uint16(len(m.Additional)))
	for _, q := range m.Questions {
		if err := name(q.Name); err != nil {
			return nil, err
		}
		u16(uint16(q.Type))
		u16(uint16(q.Class))
	}
	for _, sec := range [][]RR{m.Answers, m.Authority, m.Additional} {
		for _, r := range sec {
			if r.RawName != nil {
				buf = append(buf, r.RawName...)
			} else if err := name(r.Name); err != nil {
				return nil, err
			}
			u16(uint16(r.Type))
			u16(uint16(r.Class))
			buf = append(buf, byte(r.TTL>>24), byte(r.TTL>>16), byte(r.TTL>>8), byte(r.TTL))
			u16(uint16(len(r.Data)))
			buf = append(buf, r.Data...)
		}
	}
	return buf, nil
}

func codecCorpus(t testing.TB) []*Message {
	t.Helper()
	var msgs []*Message

	q := NewQuery(0x1337, "time.iot-vendor.example", TypeA)
	msgs = append(msgs, q)

	r := NewResponse(q)
	r.Answers = []RR{
		A("time.iot-vendor.example", 300, [4]byte{93, 184, 216, 34}),
		A("time.iot-vendor.example", 300, [4]byte{10, 0, 0, 1}),
	}
	msgs = append(msgs, r)

	// Shared-suffix compression across distinct names, mixed case (the
	// dictionary is case-insensitive but the wire preserves case).
	mixed := NewQuery(2, "A.Example.COM", TypeA)
	mr := NewResponse(mixed)
	mr.Answers = []RR{
		A("b.a.eXample.com", 60, [4]byte{1, 2, 3, 4}),
		A("c.b.a.example.COM", 60, [4]byte{5, 6, 7, 8}),
		A("example.com", 60, [4]byte{9, 9, 9, 9}),
	}
	mr.Authority = []RR{{Name: "EXAMPLE.com", Type: TypeNS, Class: ClassIN, TTL: 1, Data: []byte{0}}}
	mr.Additional = []RR{{Name: "a.example.com.", Type: TypeTXT, Class: ClassIN, TTL: 1, Data: []byte("t")}}
	msgs = append(msgs, mr)

	// Root name, trailing dots, RawName bypass.
	root := &Message{ID: 9, Questions: []Question{{Name: "", Type: TypeA, Class: ClassIN}}}
	root.Answers = []RR{{Name: ".", Type: TypeA, Class: ClassIN, TTL: 5, Data: []byte{1, 1, 1, 1}}}
	msgs = append(msgs, root)

	raw := NewResponse(q)
	rawName := bytes.Repeat(append([]byte{63}, bytes.Repeat([]byte{'x'}, 63)...), 5)
	rawName = append(rawName, 0)
	raw.Answers = []RR{{RawName: rawName, Type: TypeA, Class: ClassIN, TTL: 1, Data: []byte{1, 2, 3, 4}}}
	msgs = append(msgs, raw)

	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 200; trial++ {
		m := &Message{
			ID:       uint16(rng.Uint32()),
			Response: rng.Intn(2) == 1,
			RD:       rng.Intn(2) == 1,
			RA:       rng.Intn(2) == 1,
			AA:       rng.Intn(2) == 1,
			Opcode:   Opcode(rng.Intn(2)),
			RCode:    RCode(rng.Intn(6)),
		}
		// A small name pool makes shared suffixes (and thus compression
		// pointers) likely.
		pool := []string{randomName(rng), randomName(rng), randomName(rng)}
		pool = append(pool, "sub."+pool[0], "deep.sub."+pool[0], strings.ToUpper(pool[1]))
		pick := func() string { return pool[rng.Intn(len(pool))] }
		m.Questions = []Question{{Name: pick(), Type: TypeA, Class: ClassIN}}
		for i := 0; i < rng.Intn(5); i++ {
			data := make([]byte, rng.Intn(8))
			rng.Read(data)
			m.Answers = append(m.Answers, RR{Name: pick(), Type: TypeA, Class: ClassIN,
				TTL: rng.Uint32(), Data: data})
		}
		for i := 0; i < rng.Intn(3); i++ {
			m.Authority = append(m.Authority, RR{Name: pick(), Type: TypeNS, Class: ClassIN,
				TTL: rng.Uint32(), Data: []byte{0}})
		}
		msgs = append(msgs, m)
	}
	return msgs
}

// TestEncodeMatchesReference: the append-style encoder reproduces the
// original encoder's output byte for byte, compression pointers
// included — the property that keeps every recorded transcript stable.
func TestEncodeMatchesReference(t *testing.T) {
	for i, m := range codecCorpus(t) {
		want, err := refEncode(m)
		if err != nil {
			t.Fatalf("msg %d: reference encode: %v", i, err)
		}
		got, err := m.Encode()
		if err != nil {
			t.Fatalf("msg %d: encode: %v", i, err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("msg %d: encoding diverged\n got: % x\nwant: % x", i, got, want)
		}
	}
}

// TestAppendMessageRelativeOffsets: appending after existing bytes must
// still produce a self-contained message (compression offsets relative
// to the message start, not the buffer start).
func TestAppendMessageRelativeOffsets(t *testing.T) {
	q := NewQuery(3, "a.b.example", TypeA)
	r := NewResponse(q)
	r.Answers = []RR{A("a.b.example", 60, [4]byte{1, 2, 3, 4})}
	plain, err := r.Encode()
	if err != nil {
		t.Fatal(err)
	}
	prefix := []byte("0123456789abcdef")
	appended, err := AppendMessage(append([]byte(nil), prefix...), r)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(appended[:len(prefix)], prefix) {
		t.Fatal("prefix clobbered")
	}
	if !bytes.Equal(appended[len(prefix):], plain) {
		t.Fatalf("appended message differs from standalone encoding\n got: % x\nwant: % x",
			appended[len(prefix):], plain)
	}
}

// TestCodecAllocs pins the zero-alloc properties the wire path relies
// on: Append into a warm buffer does no heap work at all, Encode does
// exactly one allocation (the result), and a warm decode allocates only
// the message skeleton (names interned, RR data aliased).
func TestCodecAllocs(t *testing.T) {
	q := NewQuery(0x1337, "time.iot-vendor.example", TypeA)
	r := NewResponse(q)
	r.Answers = []RR{
		A("time.iot-vendor.example", 300, [4]byte{93, 184, 216, 34}),
		A("time.iot-vendor.example", 300, [4]byte{10, 0, 0, 1}),
	}
	buf := make([]byte, 0, 256)
	if n := testing.AllocsPerRun(200, func() {
		var err error
		if _, err = r.Append(buf); err != nil {
			t.Fatal(err)
		}
	}); n > 0 {
		t.Errorf("Append into warm buffer: %.1f allocs/op, want 0", n)
	}
	if n := testing.AllocsPerRun(200, func() {
		if _, err := r.Encode(); err != nil {
			t.Fatal(err)
		}
	}); n > 1 {
		t.Errorf("Encode: %.1f allocs/op, want 1", n)
	}
	wire, err := r.Encode()
	if err != nil {
		t.Fatal(err)
	}
	Decode(wire) // warm the intern table
	// Message + Questions + Answers backing arrays.
	if n := testing.AllocsPerRun(200, func() {
		if _, err := Decode(wire); err != nil {
			t.Fatal(err)
		}
	}); n > 3 {
		t.Errorf("warm Decode: %.1f allocs/op, want <= 3", n)
	}
}

func TestViewAgreesWithDecode(t *testing.T) {
	for i, m := range codecCorpus(t) {
		wire, err := m.Encode()
		if err != nil {
			t.Fatalf("msg %d: %v", i, err)
		}
		full, err := Decode(wire)
		if err != nil {
			continue // e.g. RawName payloads only ParseHeader can stomach
		}
		v, err := ParseView(wire)
		if err != nil {
			t.Fatalf("msg %d: ParseView: %v", i, err)
		}
		if v.Hdr.ID != full.ID || v.Hdr.Response != full.Response ||
			int(v.Hdr.QDCount) != len(full.Questions) ||
			int(v.Hdr.ANCount) != len(full.Answers) {
			t.Fatalf("msg %d: view header %+v disagrees with %+v", i, v.Hdr, full)
		}
		if len(full.Questions) == 0 {
			continue
		}
		got, err := v.Question()
		if err != nil {
			t.Fatalf("msg %d: view question: %v", i, err)
		}
		if got != full.Questions[0] {
			t.Fatalf("msg %d: view question %+v != %+v", i, got, full.Questions[0])
		}
	}
}

func TestViewQuestionBytes(t *testing.T) {
	q := NewQuery(7, "ab.cd", TypeMX)
	wire, err := q.Encode()
	if err != nil {
		t.Fatal(err)
	}
	v, err := ParseView(wire)
	if err != nil {
		t.Fatal(err)
	}
	qb, ok, err := v.QuestionBytes()
	if err != nil || !ok {
		t.Fatalf("QuestionBytes: ok=%v err=%v", ok, err)
	}
	if !bytes.Equal(qb, wire[HeaderSize:]) {
		t.Errorf("question bytes % x, want % x", qb, wire[HeaderSize:])
	}
	end, err := v.QuestionEnd()
	if err != nil || end != len(wire) {
		t.Errorf("QuestionEnd = %d, %v; want %d", end, err, len(wire))
	}

	// A question name using a compression pointer is not spliceable.
	ptr := make([]byte, HeaderSize)
	ptr[5] = 1 // QDCount
	ptr = append(ptr, 1, 'a', 0xC0, 0x00, 0, 1, 0, 1)
	pv, err := ParseView(ptr)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok, err := pv.QuestionBytes(); err != nil || ok {
		t.Errorf("compressed question: ok=%v err=%v, want ok=false", ok, err)
	}

	// Header-only datagram: no question to find.
	hv, err := ParseView(make([]byte, HeaderSize))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := hv.QuestionEnd(); err == nil {
		t.Error("QuestionEnd on header-only datagram succeeded")
	}
}

// FuzzEncodeDecodeRoundTrip: for any bytes the strict decoder accepts,
// encode→decode→re-encode must be a fixed point, and the lazy View must
// agree with the full decoder on the header and first question.
func FuzzEncodeDecodeRoundTrip(f *testing.F) {
	for _, s := range fuzzSeeds(f) {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, b []byte) {
		m, err := Decode(b)
		if err != nil {
			return
		}
		wire, err := m.Encode()
		if err != nil {
			return // decodable but not re-encodable (e.g. odd names) is fine
		}
		m2, err := Decode(wire)
		if err != nil {
			t.Fatalf("re-encoded message does not decode: %v\nwire: % x", err, wire)
		}
		again, err := m2.Encode()
		if err != nil {
			t.Fatalf("second encode failed: %v", err)
		}
		if !bytes.Equal(wire, again) {
			t.Fatalf("encode is not a fixed point\nfirst:  % x\nsecond: % x", wire, again)
		}

		v, err := ParseView(b)
		if err != nil {
			t.Fatalf("decoded message but ParseView failed: %v", err)
		}
		if v.Hdr.ID != m.ID || int(v.Hdr.QDCount) != len(m.Questions) ||
			int(v.Hdr.ANCount) != len(m.Answers) {
			t.Fatalf("view header %+v disagrees with decoded %+v", v.Hdr, m)
		}
		if len(m.Questions) > 0 {
			q, err := v.Question()
			if err != nil {
				t.Fatalf("full decoder accepted question, view refused: %v", err)
			}
			if q != m.Questions[0] {
				t.Fatalf("view question %+v != decoded %+v", q, m.Questions[0])
			}
		}
	})
}
