// Package dns implements the RFC 1035 wire format used throughout the lab:
// the benign resolver, the attacker's man-in-the-middle server, and the
// packet-crafting side of the exploits all speak it.
//
// The package provides a strict, safe parser (the lab's own code paths) and
// low-level crafting primitives — including answers whose NAME field is an
// arbitrary attacker-controlled label stream, which is how CVE-2017-12865
// payloads travel. The *vulnerable* name decompression lives in emulated
// victim code (internal/victim), not here.
package dns

import (
	"errors"
	"fmt"
	"strings"
)

// Type is a resource-record type.
type Type uint16

// Record types used by the lab. TypeA is what the paper's exploits ride on
// ("We select Type A for its universality").
const (
	TypeA     Type = 1
	TypeNS    Type = 2
	TypeCNAME Type = 5
	TypePTR   Type = 12
	TypeMX    Type = 15
	TypeTXT   Type = 16
	TypeAAAA  Type = 28
)

// String implements fmt.Stringer.
func (t Type) String() string {
	switch t {
	case TypeA:
		return "A"
	case TypeNS:
		return "NS"
	case TypeCNAME:
		return "CNAME"
	case TypePTR:
		return "PTR"
	case TypeMX:
		return "MX"
	case TypeTXT:
		return "TXT"
	case TypeAAAA:
		return "AAAA"
	default:
		return fmt.Sprintf("TYPE%d", uint16(t))
	}
}

// Class is a resource-record class; the lab only uses IN.
type Class uint16

// ClassIN is the Internet class.
const ClassIN Class = 1

// RCode is a response code.
type RCode uint8

// Response codes.
const (
	RCodeOK       RCode = 0
	RCodeFormat   RCode = 1
	RCodeServFail RCode = 2
	RCodeNXDomain RCode = 3
	RCodeRefused  RCode = 5
)

// Opcode is a query opcode; the lab only uses standard queries.
type Opcode uint8

// OpcodeQuery is a standard query.
const OpcodeQuery Opcode = 0

// Question is one query entry.
type Question struct {
	Name  string
	Type  Type
	Class Class
}

// RR is one resource record. If RawName is non-nil it is emitted verbatim
// (an already-encoded label stream) instead of encoding Name — the hook
// the exploit payloads use.
type RR struct {
	Name    string
	RawName []byte
	Type    Type
	Class   Class
	TTL     uint32
	Data    []byte
}

// A constructs an address record for the dotted name.
func A(name string, ttl uint32, ip [4]byte) RR {
	return RR{Name: name, Type: TypeA, Class: ClassIN, TTL: ttl, Data: ip[:]}
}

// AAAA constructs an IPv6 address record.
func AAAA(name string, ttl uint32, ip [16]byte) RR {
	return RR{Name: name, Type: TypeAAAA, Class: ClassIN, TTL: ttl, Data: ip[:]}
}

// Message is a DNS query or response.
type Message struct {
	ID       uint16
	Response bool
	Opcode   Opcode
	// AA, TC, RD, RA are the standard header flag bits.
	AA, TC, RD, RA bool
	RCode          RCode

	Questions  []Question
	Answers    []RR
	Authority  []RR
	Additional []RR
}

// HeaderSize is the fixed DNS header length.
const HeaderSize = 12

// Limits enforced by the safe parser.
const (
	maxNameLen      = 255
	maxLabelLen     = 63
	maxPointerHops  = 16
	maxSectionCount = 64
)

// Parse and encode errors.
var (
	ErrTruncatedMsg = errors.New("dns: truncated message")
	ErrNameTooLong  = errors.New("dns: name exceeds 255 bytes")
	ErrLabelTooLong = errors.New("dns: label exceeds 63 bytes")
	ErrPointerLoop  = errors.New("dns: compression pointer loop")
	ErrBadFormat    = errors.New("dns: malformed message")
)

// NewQuery builds a standard recursive query for one name.
func NewQuery(id uint16, name string, t Type) *Message {
	return &Message{
		ID: id, RD: true,
		Questions: []Question{{Name: name, Type: t, Class: ClassIN}},
	}
}

// NewResponse builds a response skeleton echoing the query ID and question,
// as a legitimate (or legitimate-looking) server must: the paper notes that
// Connman "dumps the packet as a bad response" unless the reply mirrors the
// query.
func NewResponse(q *Message) *Message {
	resp := &Message{
		ID: q.ID, Response: true, RD: q.RD, RA: true,
		Questions: append([]Question(nil), q.Questions...),
	}
	return resp
}

// header flag word layout.
const (
	flagQR = 1 << 15
	flagAA = 1 << 10
	flagTC = 1 << 9
	flagRD = 1 << 8
	flagRA = 1 << 7
)

func (m *Message) flagWord() uint16 {
	var w uint16
	if m.Response {
		w |= flagQR
	}
	w |= uint16(m.Opcode&0xF) << 11
	if m.AA {
		w |= flagAA
	}
	if m.TC {
		w |= flagTC
	}
	if m.RD {
		w |= flagRD
	}
	if m.RA {
		w |= flagRA
	}
	w |= uint16(m.RCode & 0xF)
	return w
}

func setFlagWord(m *Message, w uint16) {
	m.Response = w&flagQR != 0
	m.Opcode = Opcode(w >> 11 & 0xF)
	m.AA = w&flagAA != 0
	m.TC = w&flagTC != 0
	m.RD = w&flagRD != 0
	m.RA = w&flagRA != 0
	m.RCode = RCode(w & 0xF)
}

// ResponseFlags returns the header flag word a NewResponse to a query
// with this header would encode: QR and RA set, RD echoed, the given
// rcode, everything else clear.
func (h Header) ResponseFlags(rcode RCode) uint16 {
	w := uint16(flagQR | flagRA)
	if h.RD {
		w |= flagRD
	}
	return w | uint16(rcode&0xF)
}

// AppendHeader appends a raw 12-byte message header.
func AppendHeader(dst []byte, id, flags, qd, an, ns, ar uint16) []byte {
	return append(dst,
		byte(id>>8), byte(id),
		byte(flags>>8), byte(flags),
		byte(qd>>8), byte(qd),
		byte(an>>8), byte(an),
		byte(ns>>8), byte(ns),
		byte(ar>>8), byte(ar))
}

// SplitName splits a dotted name into validated labels.
func SplitName(name string) ([]string, error) {
	name = strings.TrimSuffix(name, ".")
	if name == "" {
		return nil, nil
	}
	labels := strings.Split(name, ".")
	total := 0
	for _, l := range labels {
		if l == "" {
			return nil, fmt.Errorf("%w: empty label in %q", ErrBadFormat, name)
		}
		if len(l) > maxLabelLen {
			return nil, fmt.Errorf("%w: %q", ErrLabelTooLong, l)
		}
		total += len(l) + 1
	}
	if total+1 > maxNameLen {
		return nil, fmt.Errorf("%w: %q", ErrNameTooLong, name)
	}
	return labels, nil
}
