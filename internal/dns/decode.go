package dns

import "fmt"

// decoder walks a wire-format message.
type decoder struct {
	b   []byte
	pos int
}

func (d *decoder) u16() (uint16, error) {
	if d.pos+2 > len(d.b) {
		return 0, ErrTruncatedMsg
	}
	v := uint16(d.b[d.pos])<<8 | uint16(d.b[d.pos+1])
	d.pos += 2
	return v, nil
}

func (d *decoder) u32() (uint32, error) {
	if d.pos+4 > len(d.b) {
		return 0, ErrTruncatedMsg
	}
	v := uint32(d.b[d.pos])<<24 | uint32(d.b[d.pos+1])<<16 |
		uint32(d.b[d.pos+2])<<8 | uint32(d.b[d.pos+3])
	d.pos += 4
	return v, nil
}

// name decodes a possibly-compressed name starting at the cursor. This is
// the SAFE decompressor: bounded output, bounded pointer hops — the checks
// whose absence in Connman's get_name is the whole story of the lab.
// The dotted form is assembled in a stack scratch buffer and interned, so
// repeat names (the common case on the attack path) cost no allocation.
func (d *decoder) name() (string, error) {
	var scratch [maxNameLen]byte
	out, err := d.nameBytes(scratch[:0])
	if err != nil {
		return "", err
	}
	return intern(out), nil
}

// nameBytes appends the dotted form of the name at the cursor to out.
func (d *decoder) nameBytes(out []byte) ([]byte, error) {
	pos := d.pos
	hops := 0
	jumped := false
	total := 0
	for {
		if pos >= len(d.b) {
			return nil, ErrTruncatedMsg
		}
		c := d.b[pos]
		switch {
		case c == 0:
			if !jumped {
				d.pos = pos + 1
			}
			return out, nil
		case c&0xC0 == 0xC0:
			if pos+1 >= len(d.b) {
				return nil, ErrTruncatedMsg
			}
			if hops++; hops > maxPointerHops {
				return nil, ErrPointerLoop
			}
			target := int(c&0x3F)<<8 | int(d.b[pos+1])
			if !jumped {
				d.pos = pos + 2
				jumped = true
			}
			if target >= pos {
				// Forward pointers enable trivial loops; refuse them.
				return nil, ErrPointerLoop
			}
			pos = target
		case c&0xC0 != 0:
			return nil, fmt.Errorf("%w: reserved label type %#x", ErrBadFormat, c)
		default:
			l := int(c)
			if l > maxLabelLen {
				return nil, ErrLabelTooLong
			}
			if pos+1+l > len(d.b) {
				return nil, ErrTruncatedMsg
			}
			if total += l + 1; total > maxNameLen {
				return nil, ErrNameTooLong
			}
			if len(out) > 0 {
				out = append(out, '.')
			}
			out = append(out, d.b[pos+1:pos+1+l]...)
			pos += 1 + l
			if !jumped {
				d.pos = pos
			}
		}
	}
}

func (d *decoder) question() (Question, error) {
	n, err := d.name()
	if err != nil {
		return Question{}, err
	}
	t, err := d.u16()
	if err != nil {
		return Question{}, err
	}
	c, err := d.u16()
	if err != nil {
		return Question{}, err
	}
	return Question{Name: n, Type: Type(t), Class: Class(c)}, nil
}

func (d *decoder) rr() (RR, error) {
	n, err := d.name()
	if err != nil {
		return RR{}, err
	}
	t, err := d.u16()
	if err != nil {
		return RR{}, err
	}
	c, err := d.u16()
	if err != nil {
		return RR{}, err
	}
	ttl, err := d.u32()
	if err != nil {
		return RR{}, err
	}
	rdlen, err := d.u16()
	if err != nil {
		return RR{}, err
	}
	if d.pos+int(rdlen) > len(d.b) {
		return RR{}, ErrTruncatedMsg
	}
	// Data aliases the input buffer (capped so appends cannot clobber the
	// following record); see the Decode doc comment.
	data := d.b[d.pos : d.pos+int(rdlen) : d.pos+int(rdlen)]
	d.pos += int(rdlen)
	return RR{Name: n, Type: Type(t), Class: Class(c), TTL: ttl, Data: data}, nil
}

// Decode parses a wire-format message with full validation. It rejects
// oversized names, pointer loops, and truncated sections — everything the
// vulnerable emulated parser does not.
//
// The returned RR.Data slices alias b: callers that retain the message
// past the lifetime of the input buffer must copy either the buffer or
// the record data first.
func Decode(b []byte) (*Message, error) {
	d := decoder{b: b}
	id, err := d.u16()
	if err != nil {
		return nil, err
	}
	fl, err := d.u16()
	if err != nil {
		return nil, err
	}
	var counts [4]uint16
	for i := range counts {
		if counts[i], err = d.u16(); err != nil {
			return nil, err
		}
		if counts[i] > maxSectionCount {
			return nil, fmt.Errorf("%w: section count %d", ErrBadFormat, counts[i])
		}
	}
	m := &Message{ID: id}
	setFlagWord(m, fl)
	if counts[0] > 0 {
		m.Questions = make([]Question, 0, counts[0])
	}
	for i := 0; i < int(counts[0]); i++ {
		q, err := d.question()
		if err != nil {
			return nil, fmt.Errorf("question %d: %w", i, err)
		}
		m.Questions = append(m.Questions, q)
	}
	for s := 0; s < 3; s++ {
		n := int(counts[s+1])
		if n == 0 {
			continue
		}
		rrs := make([]RR, 0, n)
		for i := 0; i < n; i++ {
			r, err := d.rr()
			if err != nil {
				return nil, fmt.Errorf("record %d/%d: %w", s, i, err)
			}
			rrs = append(rrs, r)
		}
		switch s {
		case 0:
			m.Answers = rrs
		case 1:
			m.Authority = rrs
		case 2:
			m.Additional = rrs
		}
	}
	return m, nil
}

// Header is the fixed 12-byte message header, parsed without touching the
// variable-length sections. The victim daemon uses it for the cheap
// pre-checks real Connman performs before name expansion.
type Header struct {
	ID                                 uint16
	Response                           bool
	Opcode                             Opcode
	AA, TC, RD, RA                     bool
	RCode                              RCode
	QDCount, ANCount, NSCount, ARCount uint16
}

// ParseHeader decodes just the header.
func ParseHeader(b []byte) (Header, error) {
	if len(b) < HeaderSize {
		return Header{}, ErrTruncatedMsg
	}
	var h Header
	h.ID = uint16(b[0])<<8 | uint16(b[1])
	w := uint16(b[2])<<8 | uint16(b[3])
	var m Message
	setFlagWord(&m, w)
	h.Response, h.Opcode, h.AA, h.TC, h.RD, h.RA, h.RCode =
		m.Response, m.Opcode, m.AA, m.TC, m.RD, m.RA, m.RCode
	h.QDCount = uint16(b[4])<<8 | uint16(b[5])
	h.ANCount = uint16(b[6])<<8 | uint16(b[7])
	h.NSCount = uint16(b[8])<<8 | uint16(b[9])
	h.ARCount = uint16(b[10])<<8 | uint16(b[11])
	return h, nil
}

// SkipName advances past one (possibly compressed) encoded name starting
// at off, returning the offset just after it. It validates only framing,
// not semantics; the victim daemon uses it to find section boundaries.
func SkipName(b []byte, off int) (int, error) {
	for {
		if off >= len(b) {
			return 0, ErrTruncatedMsg
		}
		c := b[off]
		switch {
		case c == 0:
			return off + 1, nil
		case c&0xC0 == 0xC0:
			if off+2 > len(b) {
				return 0, ErrTruncatedMsg
			}
			return off + 2, nil
		case c&0xC0 != 0:
			return 0, ErrBadFormat
		default:
			off += 1 + int(c)
		}
	}
}
