package dns

import "sync"

// Decoded names are overwhelmingly drawn from a tiny working set (the
// lab's zone plus the exploit's fixed query name), so the decoder
// interns small names: the map lookup on a []byte key compiles to a
// no-allocation probe, and a hit returns the shared string instead of
// materialising a new one per packet.
//
// The table is bounded in both entry count and key length so hostile
// traffic (fuzzers, the MITM's victims) cannot grow it without limit;
// once full, misses simply allocate like an uninterned decode would.
const (
	internMaxLen     = 64
	internMaxEntries = 4096
)

var (
	internMu  sync.RWMutex
	internTab = make(map[string]string, 64)
)

func intern(b []byte) string {
	if len(b) == 0 {
		return ""
	}
	if len(b) > internMaxLen {
		return string(b)
	}
	internMu.RLock()
	s, ok := internTab[string(b)]
	internMu.RUnlock()
	if ok {
		return s
	}
	s = string(b)
	internMu.Lock()
	if len(internTab) < internMaxEntries {
		internTab[s] = s
	}
	internMu.Unlock()
	return s
}
