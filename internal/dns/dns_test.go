package dns

import (
	"bytes"
	"errors"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestQueryRoundTrip(t *testing.T) {
	q := NewQuery(0xABCD, "www.example.com", TypeA)
	wire, err := q.Encode()
	if err != nil {
		t.Fatal(err)
	}
	got, err := Decode(wire)
	if err != nil {
		t.Fatal(err)
	}
	if got.ID != 0xABCD || got.Response || !got.RD {
		t.Errorf("header = %+v", got)
	}
	if len(got.Questions) != 1 || got.Questions[0].Name != "www.example.com" ||
		got.Questions[0].Type != TypeA || got.Questions[0].Class != ClassIN {
		t.Errorf("question = %+v", got.Questions)
	}
}

func TestResponseRoundTripAllSections(t *testing.T) {
	q := NewQuery(7, "host.iot.lan", TypeA)
	r := NewResponse(q)
	r.AA = true
	r.Answers = []RR{
		A("host.iot.lan", 300, [4]byte{10, 1, 2, 3}),
		AAAA("host.iot.lan", 600, [16]byte{0x20, 0x01, 0x0d, 0xb8}),
	}
	r.Authority = []RR{{Name: "iot.lan", Type: TypeNS, Class: ClassIN, TTL: 60, Data: []byte{2, 'n', 's', 0}}}
	r.Additional = []RR{{Name: "ns.iot.lan", Type: TypeTXT, Class: ClassIN, TTL: 60, Data: []byte("x")}}
	wire, err := r.Encode()
	if err != nil {
		t.Fatal(err)
	}
	got, err := Decode(wire)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Response || !got.AA || !got.RA {
		t.Errorf("flags = %+v", got)
	}
	if len(got.Answers) != 2 || len(got.Authority) != 1 || len(got.Additional) != 1 {
		t.Fatalf("sections = %d/%d/%d", len(got.Answers), len(got.Authority), len(got.Additional))
	}
	if got.Answers[0].Type != TypeA || !bytes.Equal(got.Answers[0].Data, []byte{10, 1, 2, 3}) {
		t.Errorf("answer = %+v", got.Answers[0])
	}
	if got.Answers[1].Type != TypeAAAA || len(got.Answers[1].Data) != 16 {
		t.Errorf("aaaa = %+v", got.Answers[1])
	}
}

func TestCompressionSavesSpaceAndDecodes(t *testing.T) {
	q := NewQuery(1, "a.very.long.domain.example.com", TypeA)
	r := NewResponse(q)
	for i := 0; i < 4; i++ {
		r.Answers = append(r.Answers, A("a.very.long.domain.example.com", 60, [4]byte{byte(i)}))
	}
	wire, err := r.Encode()
	if err != nil {
		t.Fatal(err)
	}
	// Compression: repeated names must be pointers, not repeated labels.
	if n := bytes.Count(wire, []byte("example")); n != 1 {
		t.Errorf("'example' appears %d times on the wire, want 1 (compression)", n)
	}
	got, err := Decode(wire)
	if err != nil {
		t.Fatal(err)
	}
	for _, ans := range got.Answers {
		if ans.Name != "a.very.long.domain.example.com" {
			t.Errorf("decompressed name = %q", ans.Name)
		}
	}
}

func TestDecodeRejectsMalformed(t *testing.T) {
	q := NewQuery(1, "x.y", TypeA)
	wire, _ := q.Encode()

	cases := []struct {
		name    string
		mutate  func([]byte) []byte
		wantErr error
	}{
		{"truncated-header", func(b []byte) []byte { return b[:8] }, ErrTruncatedMsg},
		{"truncated-question", func(b []byte) []byte { return b[:HeaderSize+2] }, ErrTruncatedMsg},
		{"oversized-label", func(b []byte) []byte {
			b = append([]byte{}, b...)
			b[HeaderSize] = 0x40 // label length 64
			return b
		}, nil /* any error */},
		{"reserved-label-type", func(b []byte) []byte {
			b = append([]byte{}, b...)
			b[HeaderSize] = 0x80
			return b
		}, ErrBadFormat},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := Decode(c.mutate(wire))
			if err == nil {
				t.Fatal("malformed message decoded")
			}
			if c.wantErr != nil && !errors.Is(err, c.wantErr) {
				t.Errorf("err = %v, want %v", err, c.wantErr)
			}
		})
	}
}

func TestDecodeRejectsPointerLoops(t *testing.T) {
	// Header + a name that is a pointer to itself.
	b := make([]byte, HeaderSize)
	b[5] = 1 // qdcount = 1
	b = append(b, 0xC0, byte(HeaderSize))
	b = append(b, 0, 1, 0, 1) // qtype/qclass
	if _, err := Decode(b); !errors.Is(err, ErrPointerLoop) {
		t.Errorf("err = %v, want pointer loop", err)
	}
}

func TestSafeDecoderBoundsNameLength(t *testing.T) {
	// A 300-byte name via many labels must be rejected (max 255) — the
	// check whose absence in the victim is the CVE.
	var raw []byte
	for i := 0; i < 6; i++ {
		raw = append(raw, 60)
		raw = append(raw, bytes.Repeat([]byte{'a'}, 60)...)
	}
	raw = append(raw, 0)
	b := make([]byte, HeaderSize)
	b[5] = 1
	b = append(b, raw...)
	b = append(b, 0, 1, 0, 1)
	if _, err := Decode(b); !errors.Is(err, ErrNameTooLong) {
		t.Errorf("err = %v, want name too long", err)
	}
}

func TestRawNameBypassesValidation(t *testing.T) {
	// The exploit hook: a RawName larger than any legal name encodes fine.
	q := NewQuery(3, "q.example", TypeA)
	r := NewResponse(q)
	raw := bytes.Repeat(append([]byte{63}, bytes.Repeat([]byte{'x'}, 63)...), 20)
	raw = append(raw, 0)
	r.Answers = []RR{{RawName: raw, Type: TypeA, Class: ClassIN, TTL: 1, Data: []byte{1, 2, 3, 4}}}
	wire, err := r.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if len(wire) < len(raw) {
		t.Errorf("wire %d bytes, raw name %d", len(wire), len(raw))
	}
	// The safe decoder refuses it, as a hardened peer would.
	if _, err := Decode(wire); err == nil {
		t.Error("safe decoder accepted the oversized raw name")
	}
	// The lightweight header parse still works — which is why the victim's
	// pre-checks pass.
	h, err := ParseHeader(wire)
	if err != nil || !h.Response || h.ANCount != 1 {
		t.Errorf("header = %+v, %v", h, err)
	}
}

func TestParseHeaderFields(t *testing.T) {
	m := &Message{ID: 0x1234, Response: true, AA: true, TC: true, RD: true, RA: true,
		RCode: RCodeNXDomain}
	m.Questions = []Question{{Name: "a", Type: TypeA, Class: ClassIN}}
	wire, err := m.Encode()
	if err != nil {
		t.Fatal(err)
	}
	h, err := ParseHeader(wire)
	if err != nil {
		t.Fatal(err)
	}
	if h.ID != 0x1234 || !h.Response || !h.AA || !h.TC || !h.RD || !h.RA ||
		h.RCode != RCodeNXDomain || h.QDCount != 1 {
		t.Errorf("header = %+v", h)
	}
	if _, err := ParseHeader([]byte{1}); !errors.Is(err, ErrTruncatedMsg) {
		t.Errorf("short header err = %v", err)
	}
}

func TestSkipName(t *testing.T) {
	b, err := AppendRawName(nil, "ab.cd")
	if err != nil {
		t.Fatal(err)
	}
	end, err := SkipName(b, 0)
	if err != nil || end != len(b) {
		t.Errorf("SkipName = %d, %v; want %d", end, err, len(b))
	}
	// Pointer form: two bytes.
	end, err = SkipName([]byte{0xC0, 0x0C}, 0)
	if err != nil || end != 2 {
		t.Errorf("SkipName ptr = %d, %v", end, err)
	}
	if _, err := SkipName([]byte{5, 'a'}, 0); err == nil {
		t.Error("truncated name skipped")
	}
	if _, err := SkipName([]byte{0x80, 0}, 0); err == nil {
		t.Error("reserved label type skipped")
	}
}

func TestSplitNameValidation(t *testing.T) {
	if _, err := SplitName(strings.Repeat("a", 64) + ".com"); err == nil {
		t.Error("63+ label accepted")
	}
	if _, err := SplitName("a..b"); err == nil {
		t.Error("empty label accepted")
	}
	long := strings.Repeat("abcdefg.", 40) // > 255 bytes total
	if _, err := SplitName(long); err == nil {
		t.Error("overlong name accepted")
	}
	labels, err := SplitName("trailing.dot.")
	if err != nil || len(labels) != 2 {
		t.Errorf("trailing dot: %v, %v", labels, err)
	}
	labels, err = SplitName("")
	if err != nil || labels != nil {
		t.Errorf("root name: %v, %v", labels, err)
	}
}

func TestTypeStrings(t *testing.T) {
	if TypeA.String() != "A" || TypeAAAA.String() != "AAAA" || Type(999).String() != "TYPE999" {
		t.Error("Type.String broken")
	}
}

func TestEncodeRejectsHugeSections(t *testing.T) {
	m := NewQuery(1, "x.y", TypeA)
	for i := 0; i < 100; i++ {
		m.Questions = append(m.Questions, Question{Name: "x.y", Type: TypeA, Class: ClassIN})
	}
	if _, err := m.Encode(); err == nil {
		t.Error("oversized section encoded")
	}
}

// randomName builds a random valid dotted name.
func randomName(rng *rand.Rand) string {
	const alpha = "abcdefghijklmnopqrstuvwxyz0123456789-"
	n := 1 + rng.Intn(4)
	var parts []string
	for i := 0; i < n; i++ {
		l := 1 + rng.Intn(20)
		var sb strings.Builder
		for j := 0; j < l; j++ {
			sb.WriteByte(alpha[rng.Intn(len(alpha))])
		}
		parts = append(parts, sb.String())
	}
	return strings.Join(parts, ".")
}

// TestQuickMessageRoundTrip: random well-formed messages encode and
// decode back to themselves (names compared case-preserved, sections by
// content).
func TestQuickMessageRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 300; trial++ {
		m := &Message{
			ID:       uint16(rng.Uint32()),
			Response: rng.Intn(2) == 1,
			RD:       rng.Intn(2) == 1,
			RA:       rng.Intn(2) == 1,
			AA:       rng.Intn(2) == 1,
			RCode:    RCode(rng.Intn(6)),
		}
		m.Questions = []Question{{Name: randomName(rng), Type: TypeA, Class: ClassIN}}
		for i := 0; i < rng.Intn(4); i++ {
			data := make([]byte, 4)
			rng.Read(data)
			m.Answers = append(m.Answers, RR{
				Name: randomName(rng), Type: TypeA, Class: ClassIN,
				TTL: rng.Uint32(), Data: data,
			})
		}
		wire, err := m.Encode()
		if err != nil {
			t.Fatalf("trial %d: encode: %v", trial, err)
		}
		got, err := Decode(wire)
		if err != nil {
			t.Fatalf("trial %d: decode: %v", trial, err)
		}
		if got.ID != m.ID || got.Response != m.Response || got.RCode != m.RCode {
			t.Fatalf("trial %d: header mismatch", trial)
		}
		if len(got.Answers) != len(m.Answers) {
			t.Fatalf("trial %d: answers %d != %d", trial, len(got.Answers), len(m.Answers))
		}
		for i := range m.Answers {
			if got.Answers[i].Name != m.Answers[i].Name ||
				got.Answers[i].TTL != m.Answers[i].TTL ||
				!bytes.Equal(got.Answers[i].Data, m.Answers[i].Data) {
				t.Fatalf("trial %d: answer %d mismatch: %+v vs %+v",
					trial, i, got.Answers[i], m.Answers[i])
			}
		}
	}
}

// TestQuickDecodeNeverPanics: arbitrary bytes never panic the decoder.
func TestQuickDecodeNeverPanics(t *testing.T) {
	prop := func(b []byte) bool {
		_, _ = Decode(b)
		_, _ = ParseHeader(b)
		_, _ = SkipName(b, 0)
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 3000}); err != nil {
		t.Error(err)
	}
}
