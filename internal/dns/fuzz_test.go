package dns

import (
	"bytes"
	"testing"
)

// fuzzSeeds returns the seed corpus for the message decoder: well-formed
// packets plus the hostile shapes the paper's attack surface is made of —
// oversized labels, compression-pointer loops, pointers past the end,
// truncation at every interesting boundary.
func fuzzSeeds(t testing.TB) [][]byte {
	t.Helper()
	var seeds [][]byte

	q := NewQuery(0x1337, "time.iot-vendor.example", TypeA)
	wire, err := q.Encode()
	if err != nil {
		t.Fatalf("encode query: %v", err)
	}
	seeds = append(seeds, wire)

	resp := NewResponse(q)
	resp.Answers = []RR{
		A("time.iot-vendor.example", 300, [4]byte{93, 184, 216, 34}),
		A("time.iot-vendor.example", 300, [4]byte{10, 0, 0, 1}),
	}
	rwire, err := resp.Encode()
	if err != nil {
		t.Fatalf("encode response: %v", err)
	}
	seeds = append(seeds, rwire, rwire[:len(rwire)/2], rwire[:13])

	// Header claiming one question, name = self-referential compression
	// pointer at offset 12 (the classic decompression loop).
	loop := make([]byte, 12, 18)
	loop[4], loop[5] = 0, 1 // QDCount = 1
	loop = append(loop, 0xC0, 0x0C, 0x00, 0x01, 0x00, 0x01)
	seeds = append(seeds, loop)

	// Pointer chain A -> B -> A through two names.
	chain := append([]byte(nil), loop...)
	chain[12], chain[13] = 0xC0, 0x0E
	seeds = append(seeds, chain)

	// A 70-byte label length (over the 63 limit) and a reserved label
	// type.
	bad := append(make([]byte, 12), 70)
	bad = append(bad, bytes.Repeat([]byte{'A'}, 70)...)
	bad = append(bad, 0, 0, 1, 0, 1)
	bad[5] = 1
	seeds = append(seeds, bad)
	seeds = append(seeds, append(make([]byte, 12), 0x80, 0x41, 0x00))

	return seeds
}

// FuzzDecodeMessage: arbitrary bytes must never panic or hang the
// decoder; whatever decodes must re-encode, and the re-encoding must
// decode to the same structure (the codec round-trip is total on the
// decoder's image).
func FuzzDecodeMessage(f *testing.F) {
	for _, s := range fuzzSeeds(f) {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, b []byte) {
		m, err := Decode(b)
		if err != nil {
			return
		}
		// Header invariants the victim daemon's pre-checks rely on: a
		// decoded message carries exactly the counts the header declared.
		h, err := ParseHeader(b)
		if err != nil {
			t.Fatalf("decoded message but header does not parse: %v", err)
		}
		if int(h.QDCount) != len(m.Questions) {
			t.Fatalf("QDCount %d != %d questions", h.QDCount, len(m.Questions))
		}
		if int(h.ANCount) != len(m.Answers) {
			t.Fatalf("ANCount %d != %d answers", h.ANCount, len(m.Answers))
		}
		wire, err := m.Encode()
		if err != nil {
			// Some decodable messages are not encodable (e.g. names the
			// encoder would need to re-compress differently); that is
			// fine as long as decoding stays total.
			return
		}
		again, err := Decode(wire)
		if err != nil {
			t.Fatalf("re-encoded message does not decode: %v\nwire: % x", err, wire)
		}
		if len(again.Questions) != len(m.Questions) || len(again.Answers) != len(m.Answers) {
			t.Fatalf("round trip changed shape: %d/%d -> %d/%d questions/answers",
				len(m.Questions), len(m.Answers), len(again.Questions), len(again.Answers))
		}
	})
}

// FuzzSkipName: the header-skipping helper must stay inside the buffer
// and terminate for any input.
func FuzzSkipName(f *testing.F) {
	for _, s := range fuzzSeeds(f) {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, b []byte) {
		off, err := SkipName(b, 12)
		if err != nil {
			return
		}
		if off < 12 || off > len(b) {
			t.Fatalf("SkipName returned offset %d for %d-byte input", off, len(b))
		}
	})
}
