package core

import (
	"fmt"

	"connlab/internal/exploit"
	"connlab/internal/isa"
	"connlab/internal/kernel"
	"connlab/internal/victim"
)

// BruteForceReport summarizes an ASLR brute-force campaign.
type BruteForceReport struct {
	Arch         isa.Arch
	Kind         exploit.Kind
	EntropyPages int
	// Tries is how many daemon respawns the attacker consumed (each failed
	// try crashes the daemon; an init system restarts it with a fresh
	// ASLR sample).
	Tries     int
	Succeeded bool
}

// String renders a summary line.
func (r BruteForceReport) String() string {
	status := "FAILED"
	if r.Succeeded {
		status = "SHELL"
	}
	return fmt.Sprintf("%-5s %-12s entropy=%d pages: %s after %d tries",
		r.Arch, r.Kind, r.EntropyPages, status, r.Tries)
}

// BruteForceASLR reproduces the brute-force ASLR bypass discussed in the
// paper's related work (the D-Link PoC "able to bypass W⊕X and ASLR on
// MIPS and ARM architectures by brute-force"): the attacker samples libc
// once from a replica and fires the same stale-address exploit at the
// respawning daemon until the randomized libc happens to land on the
// sampled base. Expected tries ≈ entropyPages; strong (4096-page) ASLR
// makes this impractical, weak embedded ASLR does not.
func (l *Lab) BruteForceASLR(arch isa.Arch, entropyPages, maxTries int) (*BruteForceReport, error) {
	kind := exploit.KindRet2Libc
	if arch == isa.ArchARMS {
		kind = exploit.KindRopExeclp
	}
	rep := &BruteForceReport{Arch: arch, Kind: kind, EntropyPages: entropyPages}

	replicaCfg := kernel.Config{
		WX: true, ASLR: true, ASLREntropyPages: entropyPages, Seed: l.ReconSeed,
	}
	tgt, err := exploit.Recon(arch, l.Build, replicaCfg)
	if err != nil {
		return nil, err
	}
	ex, err := exploit.Build(tgt, kind)
	if err != nil {
		return nil, err
	}
	pkt, err := ex.Response(attackQuery())
	if err != nil {
		return nil, err
	}

	for try := 1; try <= maxTries; try++ {
		rep.Tries = try
		cfg := kernel.Config{
			WX: true, ASLR: true, ASLREntropyPages: entropyPages,
			Seed: l.TargetSeed + int64(try),
		}
		d, err := victim.NewDaemon(arch, l.Build, cfg)
		if err != nil {
			return nil, err
		}
		res, err := d.HandleResponse(pkt)
		if err != nil {
			return nil, err
		}
		if res.Status == kernel.StatusShell {
			rep.Succeeded = true
			return rep, nil
		}
	}
	return rep, nil
}
