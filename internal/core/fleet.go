package core

import (
	"fmt"

	"connlab/internal/campaign"
	"connlab/internal/exploit"
	"connlab/internal/isa"
)

// FleetConfig parameterizes the mass-compromise scenario the paper
// sketches in §III-D: "exploit code designed to create a botnet could be
// sent to visitors, allowing a recreation of the Mirai attack".
type FleetConfig struct {
	Arch       isa.Arch
	Kind       exploit.Kind
	Protection Protection
	// Devices is the fleet size; every Patched-th device runs the fixed
	// 1.35 firmware (0 = none patched).
	Devices      int
	PatchedEvery int
	// Workers overrides the lab's campaign worker-pool size for this
	// sweep; 0 inherits Lab.Workers (which defaults to GOMAXPROCS). One
	// worker is the sequential path — it still recons once per
	// configuration, not once per device.
	Workers int
}

// DeviceOutcome is one fleet member's fate.
type DeviceOutcome struct {
	Name    string
	Patched bool
	Outcome Outcome
}

// FleetReport summarizes a fleet sweep.
type FleetReport struct {
	Devices []DeviceOutcome
	// Owned counts shells, Crashed pure DoS, Survived unharmed devices.
	Owned, Crashed, Survived int
	// Hijacked counts DNS lookups the rogue resolver answered.
	Hijacked int
	// ReconBuilds counts how many times attacker-side reconnaissance
	// actually ran — one per configuration, however large the fleet.
	ReconBuilds int
}

// String renders a summary line.
func (r *FleetReport) String() string {
	return fmt.Sprintf("fleet: %d devices -> %d owned, %d crashed, %d survived (%d lookups hijacked)",
		len(r.Devices), r.Owned, r.Crashed, r.Survived, r.Hijacked)
}

// RunFleet deploys one rogue AP against a whole fleet of identical IoT
// devices: each device re-associates to the stronger clone, resolves a
// name through the attacker's resolver, and receives the same exploit —
// one payload, many victims, which is exactly why the paper worries about
// Mirai-style recreation. Patched devices parse the response safely and
// survive.
//
// The sweep delegates to the campaign engine: recon, payload
// construction, and the victim program build happen once for the
// configuration (cached), each device then runs through its own
// simulated radio world on whichever worker picks it up, and every
// device keeps its historical ASLR seed (TargetSeed+100+i), so outcomes
// match the old sequential runner bit for bit.
func (l *Lab) RunFleet(cfg FleetConfig) (*FleetReport, error) {
	if cfg.Devices <= 0 {
		cfg.Devices = 8
	}
	workers := cfg.Workers
	if workers == 0 {
		workers = l.Workers
	}
	eng := campaign.New(campaign.Config{
		Workers:   workers,
		RootSeed:  l.TargetSeed,
		ReconSeed: l.ReconSeed,
	})
	crep, err := eng.Run([]campaign.Scenario{{
		Arch: cfg.Arch, Kind: cfg.Kind, Protection: cfg.Protection,
		Build: l.Build, ReconBuild: l.reconBuild,
		Devices: cfg.Devices, PatchedEvery: cfg.PatchedEvery,
		TargetSeed: l.TargetSeed,
		Pineapple:  true,
	}})
	if err != nil {
		return nil, err
	}
	sr := &crep.Scenarios[0]
	rep := &FleetReport{
		Owned: sr.Owned, Crashed: sr.Crashed, Survived: sr.Survived,
		Hijacked:    sr.Hijacked,
		ReconBuilds: int(crep.ReconCache.Builds),
	}
	for i := range sr.Devices {
		d := &sr.Devices[i]
		rep.Devices = append(rep.Devices, DeviceOutcome{
			Name: d.Name, Patched: d.Patched, Outcome: d.Outcome,
		})
	}
	return rep, nil
}
