package core

import (
	"fmt"

	"connlab/internal/dnsserver"
	"connlab/internal/exploit"
	"connlab/internal/isa"
	"connlab/internal/netsim"
	"connlab/internal/victim"
)

// FleetConfig parameterizes the mass-compromise scenario the paper
// sketches in §III-D: "exploit code designed to create a botnet could be
// sent to visitors, allowing a recreation of the Mirai attack".
type FleetConfig struct {
	Arch       isa.Arch
	Kind       exploit.Kind
	Protection Protection
	// Devices is the fleet size; every Patched-th device runs the fixed
	// 1.35 firmware (0 = none patched).
	Devices      int
	PatchedEvery int
}

// DeviceOutcome is one fleet member's fate.
type DeviceOutcome struct {
	Name    string
	Patched bool
	Outcome Outcome
}

// FleetReport summarizes a fleet sweep.
type FleetReport struct {
	Devices []DeviceOutcome
	// Owned counts shells, Crashed pure DoS, Survived unharmed devices.
	Owned, Crashed, Survived int
	// Hijacked counts DNS lookups the rogue resolver answered.
	Hijacked int
}

// String renders a summary line.
func (r *FleetReport) String() string {
	return fmt.Sprintf("fleet: %d devices -> %d owned, %d crashed, %d survived (%d lookups hijacked)",
		len(r.Devices), r.Owned, r.Crashed, r.Survived, r.Hijacked)
}

// RunFleet deploys one rogue AP against a whole fleet of identical IoT
// devices: each device re-associates to the stronger clone, resolves a
// name through the attacker's resolver, and receives the same exploit —
// one payload, many victims, which is exactly why the paper worries about
// Mirai-style recreation. Patched devices parse the response safely and
// survive.
func (l *Lab) RunFleet(cfg FleetConfig) (*FleetReport, error) {
	if cfg.Devices <= 0 {
		cfg.Devices = 8
	}
	rep := &FleetReport{}

	net := netsim.New()
	net.AddAP(&netsim.AccessPoint{
		Name: "home-router", SSID: trustedSSID, Signal: 50,
		PoolBase: legitPool, Gateway: legitGW, DNS: resolverIP,
	})
	resolverHost, err := net.AddHost("resolver", resolverIP)
	if err != nil {
		return nil, err
	}
	if _, err := dnsserver.RunResolver(resolverHost, map[string][4]byte{
		"time.iot-vendor.example": {93, 184, 216, 34},
	}); err != nil {
		return nil, err
	}

	// Attacker: one recon, one payload, one pineapple.
	tgt, err := l.Recon(cfg.Arch, cfg.Protection)
	if err != nil {
		return nil, err
	}
	ex, err := exploit.Build(tgt, cfg.Kind)
	if err != nil {
		return nil, err
	}
	pineHost, err := net.AddHost("pineapple", pineappleIP)
	if err != nil {
		return nil, err
	}
	mitm, err := dnsserver.RunMITM(pineHost, ex.Response)
	if err != nil {
		return nil, err
	}
	net.AddAP(&netsim.AccessPoint{
		Name: "pineapple", SSID: trustedSSID, Signal: 95,
		PoolBase: roguePool, Gateway: pineappleIP, DNS: pineappleIP,
	})

	// The fleet: identical devices, some running patched firmware.
	for i := 0; i < cfg.Devices; i++ {
		name := fmt.Sprintf("iot-%02d", i)
		patched := cfg.PatchedEvery > 0 && i%cfg.PatchedEvery == 0
		host, err := net.AddHost(name, netsim.IP{})
		if err != nil {
			return nil, err
		}
		tcfg, opts, ss, err := l.targetConfig(cfg.Arch, cfg.Protection)
		if err != nil {
			return nil, err
		}
		opts.Patched = patched
		tcfg.Seed = l.TargetSeed + int64(100+i) // every device its own ASLR sample
		daemon, err := victim.NewDaemon(cfg.Arch, opts, tcfg)
		if err != nil {
			return nil, err
		}
		if ss != nil {
			ss.Arm(daemon.Process())
		}
		if _, err := dnsserver.RunProxy(host, daemon); err != nil {
			return nil, err
		}
		client, err := dnsserver.NewClient(host)
		if err != nil {
			return nil, err
		}
		if _, err := host.Station(trustedSSID).Associate(); err != nil {
			return nil, err
		}
		// The device phones home; the rogue resolver answers.
		if _, err := client.Lookup(netsim.Addr{IP: host.IP, Port: dnsserver.DNSPort},
			"time.iot-vendor.example"); err != nil {
			return nil, err
		}
		net.Run(64)

		out := DeviceOutcome{Name: name, Patched: patched}
		switch {
		case len(daemon.Shells()) > 0:
			out.Outcome = OutcomeShell
			rep.Owned++
		case daemon.Crashed():
			out.Outcome = OutcomeCrash
			rep.Crashed++
		default:
			out.Outcome = OutcomeNoEffect
			rep.Survived++
		}
		rep.Devices = append(rep.Devices, out)
	}
	rep.Hijacked = mitm.Queries
	return rep, nil
}
