package core

import (
	"fmt"

	"connlab/internal/exploit"
	"connlab/internal/isa"
)

// MitigationResult is one row of the §IV evaluation: how a mitigation
// fares against one exploit kind.
type MitigationResult struct {
	Mitigation string
	Arch       isa.Arch
	Kind       exploit.Kind
	// Trials and Blocked give the block rate (diversity is probabilistic;
	// the others are deterministic, evaluated with Trials == 1).
	Trials  int
	Blocked int
	// Outcomes tallies what happened per trial.
	Outcomes map[Outcome]int
}

// Rate returns the blocked fraction.
func (m MitigationResult) Rate() float64 {
	if m.Trials == 0 {
		return 0
	}
	return float64(m.Blocked) / float64(m.Trials)
}

// String renders a table row.
func (m MitigationResult) String() string {
	return fmt.Sprintf("%-10s %-5s %-15s blocked %d/%d (%.0f%%) %v",
		m.Mitigation, m.Arch, m.Kind, m.Blocked, m.Trials, 100*m.Rate(), m.Outcomes)
}

// mitigationAttacks are the working per-level exploits the mitigations
// are measured against.
func mitigationAttacks() []struct {
	arch isa.Arch
	kind exploit.Kind
	base Protection
} {
	return []struct {
		arch isa.Arch
		kind exploit.Kind
		base Protection
	}{
		{isa.ArchX86S, exploit.KindCodeInjection, LevelNone},
		{isa.ArchARMS, exploit.KindCodeInjection, LevelNone},
		{isa.ArchX86S, exploit.KindRet2Libc, LevelWX},
		{isa.ArchARMS, exploit.KindRopExeclp, LevelWX},
		{isa.ArchX86S, exploit.KindRopMemcpy, LevelWXASLR},
		{isa.ArchARMS, exploit.KindRopMemcpy, LevelWXASLR},
	}
}

// EvaluateMitigations runs experiment E10: every working exploit from the
// §III matrix against each §IV mitigation added on top of the protection
// level that exploit defeats. divTrials sets how many diversity seeds to
// sample (diversity gives probabilistic, per-build protection).
func (l *Lab) EvaluateMitigations(divTrials int) ([]MitigationResult, error) {
	if divTrials <= 0 {
		divTrials = 5
	}
	var out []MitigationResult

	addDeterministic := func(name string, mutate func(Protection) Protection) error {
		for _, a := range mitigationAttacks() {
			p := mutate(a.base)
			r, err := l.RunAttack(a.arch, a.kind, p)
			if err != nil {
				return fmt.Errorf("%s %s/%s: %w", name, a.arch, a.kind, err)
			}
			m := MitigationResult{
				Mitigation: name, Arch: a.arch, Kind: a.kind, Trials: 1,
				Outcomes: map[Outcome]int{r.Outcome: 1},
			}
			if r.Outcome != OutcomeShell {
				m.Blocked = 1
			}
			out = append(out, m)
		}
		return nil
	}

	if err := addDeterministic("cfi", func(p Protection) Protection {
		p.CFI = true
		return p
	}); err != nil {
		return out, err
	}
	if err := addDeterministic("canary", func(p Protection) Protection {
		p.Canary = true
		return p
	}); err != nil {
		return out, err
	}
	if err := addDeterministic("full-pie", func(p Protection) Protection {
		p.PIE = true
		p.ASLR = true
		return p
	}); err != nil {
		return out, err
	}

	// Diversity: the exploit is harvested from the stock build; each trial
	// deploys a differently-diversified target.
	for _, a := range mitigationAttacks() {
		m := MitigationResult{
			Mitigation: "diversity", Arch: a.arch, Kind: a.kind,
			Trials: divTrials, Outcomes: make(map[Outcome]int),
		}
		for trial := 0; trial < divTrials; trial++ {
			p := a.base
			p.DiversitySeed = int64(1000 + trial)
			r, err := l.RunAttack(a.arch, a.kind, p)
			if err != nil {
				return out, fmt.Errorf("diversity %s/%s: %w", a.arch, a.kind, err)
			}
			m.Outcomes[r.Outcome]++
			if r.Outcome != OutcomeShell {
				m.Blocked++
			}
		}
		out = append(out, m)
	}
	return out, nil
}
