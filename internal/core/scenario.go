package core

import (
	"connlab/internal/campaign"
	"connlab/internal/scenario"
)

// RunScenario compiles a declarative scenario — an embedded name like
// "connman" or "heap-adjacent", or a path to a .scn spec file — into
// campaign cells, runs them through the lab's persistent engine, and
// checks the report against the spec's own success predicates. The
// report is returned even when verification fails, so callers can print
// what actually happened alongside the violation.
func (l *Lab) RunScenario(nameOrPath string, opts scenario.CompileOpts) (*campaign.Report, error) {
	spec, err := scenario.Resolve(nameOrPath)
	if err != nil {
		return nil, err
	}
	cells, err := scenario.Compile(spec, opts)
	if err != nil {
		return nil, err
	}
	rep, err := l.engine().Run(cells)
	if err != nil {
		return rep, err
	}
	return rep, scenario.Verify(spec, rep)
}
