package core

import (
	"testing"

	"connlab/internal/exploit"
	"connlab/internal/isa"
)

// expectMatrix is the paper's §III result table: which exploit defeats
// which protection level.
func expectMatrix(arch isa.Arch, kind exploit.Kind, p Protection) Outcome {
	switch kind {
	case exploit.KindDoS:
		return OutcomeCrash
	case exploit.KindCodeInjection:
		if p.WX {
			return OutcomeCrash
		}
		return OutcomeShell
	case exploit.KindRet2Libc:
		if arch == isa.ArchARMS {
			return OutcomeBuildFail // register arguments: no stack-passed ret2libc
		}
		if p.ASLR {
			return OutcomeCrash
		}
		return OutcomeShell
	case exploit.KindRopExeclp:
		if arch == isa.ArchX86S {
			return OutcomeBuildFail
		}
		if p.ASLR {
			return OutcomeCrash
		}
		return OutcomeShell
	case exploit.KindRopMemcpy:
		return OutcomeShell // the §III-C ASLR bypass works at every level
	}
	return OutcomeNoEffect
}

// TestE8Matrix is the central reproduction: the full §III matrix must
// match the paper's qualitative results cell by cell.
func TestE8Matrix(t *testing.T) {
	lab := NewLab()
	results, err := lab.RunMatrix()
	if err != nil {
		t.Fatalf("matrix: %v", err)
	}
	if len(results) != 2*3*5 {
		t.Fatalf("matrix has %d cells, want 30", len(results))
	}
	for _, r := range results {
		want := expectMatrix(r.Arch, r.Kind, r.Protection)
		if r.Outcome != want {
			t.Errorf("%s: outcome %s, want %s (%s)", r.String(), r.Outcome, want, r.Detail)
		}
	}
}

// TestE9Pineapple runs the remote man-in-the-middle scenario with the
// strongest exploit at the strongest paper protection level, per arch.
func TestE9Pineapple(t *testing.T) {
	for _, arch := range []isa.Arch{isa.ArchX86S, isa.ArchARMS} {
		t.Run(string(arch), func(t *testing.T) {
			lab := NewLab()
			rep, err := lab.RunPineapple(PineappleConfig{
				Arch: arch, Kind: exploit.KindRopMemcpy, Protection: LevelWXASLR,
			})
			if err != nil {
				t.Fatalf("pineapple: %v", err)
			}
			if !rep.BaselineWorked {
				t.Error("baseline lookup through the legitimate resolver failed")
			}
			if !rep.Reassociated {
				t.Error("victim did not re-associate to the rogue AP")
			}
			if rep.VictimDNS != pineappleIP {
				t.Errorf("victim DNS = %v, want the pineapple %v", rep.VictimDNS, pineappleIP)
			}
			if rep.Hijacked == 0 {
				t.Error("no lookups hijacked")
			}
			if rep.Outcome != OutcomeShell {
				t.Errorf("outcome = %s (%s), want SHELL", rep.Outcome, rep.Detail)
			}
		})
	}
}

// TestPineappleWeakSignalFails: with the rogue AP quieter than the
// legitimate one, the victim never re-associates and stays safe.
func TestPineappleWeakSignalFails(t *testing.T) {
	lab := NewLab()
	rep, err := lab.RunPineapple(PineappleConfig{
		Arch: isa.ArchX86S, Kind: exploit.KindRopMemcpy, Protection: LevelWXASLR,
		LegitSignal: 90, RogueSignal: 30,
	})
	if err != nil {
		t.Fatalf("pineapple: %v", err)
	}
	if rep.Reassociated {
		t.Error("victim re-associated to a weaker AP")
	}
	if rep.Outcome == OutcomeShell {
		t.Error("exploit landed without traffic hijack")
	}
}

// TestE10Mitigations: CFI and canaries block everything; full PIE blocks
// the ROP chains; diversity blocks the cached exploits.
func TestE10Mitigations(t *testing.T) {
	lab := NewLab()
	results, err := lab.EvaluateMitigations(3)
	if err != nil {
		t.Fatalf("mitigations: %v", err)
	}
	for _, m := range results {
		wantAllBlocked := true
		if m.Mitigation == "diversity" &&
			(m.Kind == exploit.KindCodeInjection || m.Kind == exploit.KindRet2Libc) {
			// A genuine limitation the lab surfaces: diversifying the
			// application binary moves its gadgets, but code injection
			// (stack addresses) and ret2libc (libc addresses) never touch
			// them — those exploits still land. Diversity only defends
			// the code-reuse surface.
			wantAllBlocked = false
		}
		if wantAllBlocked && m.Blocked != m.Trials {
			t.Errorf("%s: blocked %d/%d, want all", m.String(), m.Blocked, m.Trials)
		}
		if !wantAllBlocked && m.Blocked != 0 {
			t.Errorf("%s: blocked %d/%d, want 0 (diversity does not cover this vector)",
				m.String(), m.Blocked, m.Trials)
		}
	}
}

// TestE12AutoExploit: the generator picks the right strategy per posture
// and the generated payload works.
func TestE12AutoExploit(t *testing.T) {
	lab := NewLab()
	for _, arch := range []isa.Arch{isa.ArchX86S, isa.ArchARMS} {
		for _, p := range PaperLevels() {
			ex, res, err := lab.AutoExploit(arch, p)
			if err != nil {
				t.Fatalf("auto %s/%s: %v", arch, p, err)
			}
			if res.Outcome != OutcomeShell {
				t.Errorf("auto %s/%s: outcome %s (%s), want SHELL", arch, p, res.Outcome, res.Detail)
			}
			if ex == nil || len(ex.Stream) == 0 {
				t.Errorf("auto %s/%s: empty exploit", arch, p)
			}
		}
	}
}
