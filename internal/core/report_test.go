package core

import (
	"strings"
	"testing"

	"connlab/internal/exploit"
	"connlab/internal/isa"
	"connlab/internal/kernel"
)

// TestEveryExperimentReportRuns smoke-tests all report generators.
func TestEveryExperimentReportRuns(t *testing.T) {
	lab := NewLab()
	for _, id := range ExperimentIDs() {
		t.Run(id, func(t *testing.T) {
			out, err := lab.RunExperiment(id)
			if err != nil {
				t.Fatalf("%s: %v", id, err)
			}
			if len(out) < 40 {
				t.Errorf("%s: suspiciously short report: %q", id, out)
			}
		})
	}
	if _, err := lab.RunExperiment("e99"); err == nil {
		t.Error("unknown experiment id accepted")
	}
}

func TestReportContentSpotChecks(t *testing.T) {
	lab := NewLab()
	e8, err := lab.RunExperiment("e8")
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"SHELL", "CRASH", "rop-memcpy", "W⊕X+ASLR"} {
		if !strings.Contains(e8, want) {
			t.Errorf("e8 report missing %q", want)
		}
	}
	e10, err := lab.RunExperiment("e10")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(e10, "diversity") || !strings.Contains(e10, "cfi") {
		t.Error("e10 report missing mitigation rows")
	}
}

func TestProtectionString(t *testing.T) {
	cases := map[string]Protection{
		"none":                              {},
		"W⊕X":                               {WX: true},
		"W⊕X+ASLR":                          {WX: true, ASLR: true},
		"ASLR+CFI":                          {ASLR: true, CFI: true},
		"canary":                            {Canary: true},
		"W⊕X+ASLR+PIE+CFI+canary+diversity": {WX: true, ASLR: true, PIE: true, CFI: true, Canary: true, DiversitySeed: 3},
	}
	for want, p := range cases {
		if got := p.String(); got != want {
			t.Errorf("%+v.String() = %q, want %q", p, got, want)
		}
	}
}

func TestClassifyMapping(t *testing.T) {
	cases := []struct {
		status kernel.Status
		want   Outcome
	}{
		{kernel.StatusShell, OutcomeShell},
		{kernel.StatusFault, OutcomeCrash},
		{kernel.StatusTimeout, OutcomeCrash},
		{kernel.StatusCFI, OutcomeBlocked},
		{kernel.StatusAborted, OutcomeBlocked},
		{kernel.StatusReturned, OutcomeNoEffect},
		{kernel.StatusExited, OutcomeNoEffect},
	}
	for _, c := range cases {
		res := kernel.RunResult{Status: c.status}
		if c.status == kernel.StatusShell {
			res.Shell = &kernel.ShellSpawn{Via: "execve"}
		}
		got, detail := Classify(res)
		if got != c.want {
			t.Errorf("Classify(%v) = %v, want %v", c.status, got, c.want)
		}
		if detail == "" {
			t.Errorf("Classify(%v): empty detail", c.status)
		}
	}
}

func TestStrategyForMatchesPaper(t *testing.T) {
	cases := []struct {
		arch     isa.Arch
		wx, aslr bool
		want     exploit.Kind
	}{
		{isa.ArchX86S, false, false, exploit.KindCodeInjection},
		{isa.ArchARMS, false, false, exploit.KindCodeInjection},
		{isa.ArchX86S, true, false, exploit.KindRet2Libc},
		{isa.ArchARMS, true, false, exploit.KindRopExeclp},
		{isa.ArchX86S, true, true, exploit.KindRopMemcpy},
		{isa.ArchARMS, true, true, exploit.KindRopMemcpy},
	}
	for _, c := range cases {
		if got := exploit.StrategyFor(c.arch, c.wx, c.aslr); got != c.want {
			t.Errorf("StrategyFor(%s, %v, %v) = %s, want %s", c.arch, c.wx, c.aslr, got, c.want)
		}
	}
}

// TestMatrixDeterminism: identical seeds produce identical outcomes.
func TestMatrixDeterminism(t *testing.T) {
	run := func() []AttackResult {
		lab := NewLab()
		res, err := lab.RunMatrix()
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatal("different lengths")
	}
	for i := range a {
		if a[i].Outcome != b[i].Outcome {
			t.Errorf("cell %d: %s vs %s", i, a[i].Outcome, b[i].Outcome)
		}
	}
}

func TestAttackResultString(t *testing.T) {
	r := AttackResult{Arch: isa.ArchX86S, Kind: exploit.KindRet2Libc,
		Protection: LevelWX, Outcome: OutcomeShell, Detail: "x"}
	s := r.String()
	if !strings.Contains(s, "ret2libc") || !strings.Contains(s, "SHELL") {
		t.Errorf("rendering = %q", s)
	}
}
