package core

import (
	"testing"

	"connlab/internal/dns"
	"connlab/internal/exploit"
	"connlab/internal/isa"
	"connlab/internal/kernel"
	"connlab/internal/victim"
)

// TestAAAADeliveryAlsoWorks: the vulnerable path triggers for Type AAAA
// responses too ("type A, which is a 32-bit IPv4 lookup response, or type
// AAAA, a 128-bit IPv6 lookup response").
func TestAAAADeliveryAlsoWorks(t *testing.T) {
	lab := NewLab()
	tgt, err := lab.Recon(isa.ArchX86S, LevelWXASLR)
	if err != nil {
		t.Fatalf("recon: %v", err)
	}
	ex, err := exploit.Build(tgt, exploit.KindRopMemcpy)
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	ex.RType = dns.TypeAAAA
	d, err := lab.newTargetDaemon(isa.ArchX86S, LevelWXASLR)
	if err != nil {
		t.Fatalf("daemon: %v", err)
	}
	res, err := FireAt(d, ex)
	if err != nil {
		t.Fatalf("fire: %v", err)
	}
	if res.Status != kernel.StatusShell {
		t.Fatalf("AAAA-delivered exploit: %v, want shell", res)
	}
}

// TestPointerLoopHangsVulnerableParser: the ~50-byte self-referential
// pointer packet hangs the unguarded decompressor; the patched build is
// equally vulnerable to the hang (the 1.35 fix only bounds the copy), so
// the pointed contrast is against the SAFE Go-side parser, which rejects
// the loop outright.
func TestPointerLoopHangsVulnerableParser(t *testing.T) {
	ex := exploit.BuildPointerLoopDoS(isa.ArchARMS)
	q := dns.NewQuery(0x99, "tiny.example", dns.TypeA)
	pkt, err := ex.Response(q)
	if err != nil {
		t.Fatalf("craft: %v", err)
	}
	if len(pkt) > 64 {
		t.Errorf("pointer-loop packet is %d bytes, expected tiny", len(pkt))
	}

	d, err := victim.NewDaemon(isa.ArchARMS, victim.BuildOpts{},
		kernel.Config{Seed: 4, InstrBudget: 200_000})
	if err != nil {
		t.Fatalf("daemon: %v", err)
	}
	res, err := d.HandleResponse(pkt)
	if err != nil {
		t.Fatalf("handle: %v", err)
	}
	if res.Status != kernel.StatusTimeout {
		t.Fatalf("status = %v (%v), want timeout (hang)", res.Status, res)
	}
	if !d.Crashed() {
		t.Error("hung daemon not marked dead")
	}

	// The safe decoder refuses the same packet.
	if _, err := dns.Decode(pkt); err == nil {
		t.Error("safe parser accepted the pointer loop")
	}
}

// TestBruteForceASLRLowEntropy: with 8 slide positions the stale-address
// exploit lands within a few dozen respawns; the report records the cost.
func TestBruteForceASLRLowEntropy(t *testing.T) {
	for _, arch := range []isa.Arch{isa.ArchX86S, isa.ArchARMS} {
		t.Run(string(arch), func(t *testing.T) {
			lab := NewLab()
			rep, err := lab.BruteForceASLR(arch, 8, 100)
			if err != nil {
				t.Fatalf("brute force: %v", err)
			}
			if !rep.Succeeded {
				t.Fatalf("did not land in 100 tries at entropy 8: %s", rep)
			}
			if rep.Tries < 1 {
				t.Errorf("tries = %d", rep.Tries)
			}
		})
	}
}

// TestBruteForceASLRHighEntropyUsuallyFails: at 4096 positions a short
// campaign almost never lands — the defense holds at realistic entropy.
func TestBruteForceASLRHighEntropyUsuallyFails(t *testing.T) {
	lab := NewLab()
	rep, err := lab.BruteForceASLR(isa.ArchX86S, 4096, 20)
	if err != nil {
		t.Fatalf("brute force: %v", err)
	}
	if rep.Succeeded {
		t.Logf("landed in %d tries (possible but ~0.5%% likely)", rep.Tries)
	}
}
