package core_test

import (
	"fmt"

	"connlab/internal/core"
	"connlab/internal/exploit"
	"connlab/internal/isa"
)

// Example_attack shows the one-call path from protection posture to
// attack outcome.
func Example_attack() {
	lab := core.NewLab()
	r, err := lab.RunAttack(isa.ArchARMS, exploit.KindRopMemcpy, core.LevelWXASLR)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Println(r.Outcome)
	// Output: SHELL
}

// Example_autoExploit shows the automated generator choosing the paper's
// strategy for a posture.
func Example_autoExploit() {
	lab := core.NewLab()
	ex, res, err := lab.AutoExploit(isa.ArchX86S, core.LevelWX)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Println(ex.Kind, res.Outcome)
	// Output: ret2libc SHELL
}

// Example_pineapple runs the remote man-in-the-middle delivery.
func Example_pineapple() {
	lab := core.NewLab()
	rep, err := lab.RunPineapple(core.PineappleConfig{
		Arch: isa.ArchARMS, Kind: exploit.KindRopMemcpy, Protection: core.LevelWXASLR,
	})
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Println(rep.Reassociated, rep.Outcome)
	// Output: true SHELL
}

// Example_mitigation shows a CFI-protected device surviving the same
// chain as a blocked attack.
func Example_mitigation() {
	lab := core.NewLab()
	p := core.LevelWXASLR
	p.CFI = true
	r, err := lab.RunAttack(isa.ArchARMS, exploit.KindRopMemcpy, p)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Println(r.Outcome)
	// Output: BLOCKED
}
