// Package core orchestrates the paper's experiments end to end: it builds
// victims under configurable protection levels, generates the matching
// exploits from attacker-side reconnaissance, fires them, and classifies
// outcomes. It is the library's top-level API: the §III attack matrix
// (RunMatrix), the §III-D Wi-Fi Pineapple remote scenario (RunPineapple),
// the §IV mitigation evaluation (EvaluateMitigations), and the §VII
// future-work automated exploit generator (AutoExploit).
package core

import (
	"errors"
	"fmt"

	"connlab/internal/campaign"
	"connlab/internal/defense"
	"connlab/internal/dns"
	"connlab/internal/exploit"
	"connlab/internal/isa"
	"connlab/internal/kernel"
	"connlab/internal/snapshot"
	"connlab/internal/telemetry"
	"connlab/internal/victim"
)

// Protection is one protection environment for a victim. It lives in
// internal/campaign (the engine layer); the alias keeps core's historical
// API intact.
type Protection = campaign.Protection

// The paper's three §III protection levels.
var (
	LevelNone   = campaign.LevelNone
	LevelWX     = campaign.LevelWX
	LevelWXASLR = campaign.LevelWXASLR
)

// PaperLevels is the §III protection ladder in order.
func PaperLevels() []Protection { return campaign.PaperLevels() }

// Outcome classifies what an attack achieved.
type Outcome = campaign.Outcome

// Attack outcomes (see internal/campaign for the definitions).
const (
	OutcomeShell     = campaign.OutcomeShell
	OutcomeCrash     = campaign.OutcomeCrash
	OutcomeBlocked   = campaign.OutcomeBlocked
	OutcomeNoEffect  = campaign.OutcomeNoEffect
	OutcomeBuildFail = campaign.OutcomeBuildFail
)

// AttackResult is one cell of the experiment matrix.
type AttackResult struct {
	Arch       isa.Arch
	Kind       exploit.Kind
	Protection Protection
	Outcome    Outcome
	// Detail is a one-line explanation (fault, shell syscall, veto reason).
	Detail string
	// Run is the raw kernel result when the attack fired.
	Run kernel.RunResult
	// Trace holds the hijack flight-recorder events when tracing is armed
	// (telemetry.EnableTrace / the -trace flag): the exact control-transfer
	// walk — rets, pop-pc, calls, the final syscall — of the attempt.
	Trace []telemetry.ControlEvent
}

// String renders a matrix row.
func (r AttackResult) String() string {
	return fmt.Sprintf("%-5s %-15s %-12s %-10s %s",
		r.Arch, r.Kind, r.Protection, r.Outcome, r.Detail)
}

// Lab runs attack experiments with reproducible seeds.
type Lab struct {
	// ReconSeed seeds the attacker's replica; TargetSeed seeds the real
	// target. Distinct seeds mean distinct ASLR samples, as in reality.
	ReconSeed, TargetSeed int64
	// Build selects the victim variant (vulnerable 1.34 by default).
	Build victim.BuildOpts
	// Workers sets the campaign worker-pool size for RunFleet/RunMatrix;
	// 0 means GOMAXPROCS. The count never changes results, only wall
	// clock.
	Workers int
	// Snapshots, when non-nil, lets recon rehydrate verified probe
	// results from disk instead of re-crashing replicas. Never changes
	// results, only cold-start cost.
	Snapshots *snapshot.Store

	reconBuild *victim.BuildOpts

	// eng is the lab's persistent campaign engine: recon, payloads,
	// program units and crafted packets cached across RunAttack /
	// AutoExploit / RunMatrix calls. Recreated when the seeds or worker
	// count change (engCfg remembers what it was built with); the victim
	// build is part of every cache key, so Build changes need no reset.
	eng    *campaign.Engine
	engCfg campaign.Config
}

// NewLab returns a lab with the default seeds.
func NewLab() *Lab { return &Lab{ReconSeed: 1001, TargetSeed: 2002} }

// SetReconBuild makes the attacker replicate a different firmware than
// the deployed one — e.g. the attacker recons vulnerable 1.34 while the
// real target runs patched 1.35.
func (l *Lab) SetReconBuild(b victim.BuildOpts) { l.reconBuild = &b }

// reconOpts returns the firmware the attacker's replica runs.
func (l *Lab) reconOpts() victim.BuildOpts {
	if l.reconBuild != nil {
		return *l.reconBuild
	}
	return l.Build
}

// targetConfig renders a Protection into a kernel config plus the hooks
// that must be armed after load (delegates to the campaign layer).
func (l *Lab) targetConfig(arch isa.Arch, p Protection) (kernel.Config, victim.BuildOpts, *defense.ShadowStack, error) {
	return campaign.TargetSetup(arch, p, l.Build, l.TargetSeed)
}

// engine returns the lab's persistent campaign engine, wired to the
// current seeds and worker count.
func (l *Lab) engine() *campaign.Engine {
	cfg := campaign.Config{
		Workers:   l.Workers,
		RootSeed:  l.TargetSeed,
		ReconSeed: l.ReconSeed,
		Snapshots: l.Snapshots,
	}
	if l.eng == nil || l.engCfg != cfg {
		l.eng = campaign.New(cfg)
		l.engCfg = cfg
	}
	return l.eng
}

// scenario renders one lab attack cell as a single-device campaign
// scenario.
func (l *Lab) scenario(arch isa.Arch, kind exploit.Kind, p Protection) campaign.Scenario {
	return campaign.Scenario{
		Arch: arch, Kind: kind, Protection: p,
		Build: l.Build, ReconBuild: l.reconBuild,
		TargetSeed: l.TargetSeed,
	}
}

// newTargetDaemon loads a victim daemon under a protection level.
func (l *Lab) newTargetDaemon(arch isa.Arch, p Protection) (*victim.Daemon, error) {
	cfg, opts, ss, err := l.targetConfig(arch, p)
	if err != nil {
		return nil, err
	}
	d, err := victim.NewDaemon(arch, opts, cfg)
	if err != nil {
		return nil, err
	}
	if ss != nil {
		ss.Arm(d.Process())
	}
	return d, nil
}

// Recon performs the attacker-side reconnaissance for an architecture,
// assuming the target's W⊕X/ASLR posture (the attacker replicates the
// environment; CFI/diversity are invisible to recon, which is the point
// of measuring them). Recon is cached in the lab's engine: one build per
// (arch, posture, firmware) configuration, however many attacks reuse it.
func (l *Lab) Recon(arch isa.Arch, p Protection) (*exploit.Target, error) {
	return l.engine().Recon(l.scenario(arch, "", p))
}

// RunAttack recons, builds one exploit kind, and fires it at a fresh
// victim under the protection level. All attacker-side artifacts come
// from the lab engine's caches, so repeated attacks on one configuration
// pay for recon, payload construction and packet assembly once.
func (l *Lab) RunAttack(arch isa.Arch, kind exploit.Kind, p Protection) (AttackResult, error) {
	out := AttackResult{Arch: arch, Kind: kind, Protection: p}
	d := l.engine().RunOne(l.scenario(arch, kind, p))
	if d.Err != "" {
		return out, errors.New(d.Err)
	}
	out.Outcome, out.Detail, out.Run = d.Outcome, d.Detail, d.Run
	out.Trace = d.Trace
	return out, nil
}

// FireAt delivers an exploit to a daemon as a well-formed DNS response to
// a synthetic query.
func FireAt(d *victim.Daemon, ex *exploit.Exploit) (kernel.RunResult, error) {
	pkt, err := ex.Response(attackQuery())
	if err != nil {
		return kernel.RunResult{}, err
	}
	return d.HandleResponse(pkt)
}

// Classify maps a kernel run result to an attack outcome.
func Classify(res kernel.RunResult) (Outcome, string) { return campaign.Classify(res) }

// RunMatrix reproduces the §III experiment matrix (experiment E8): every
// exploit kind against every paper protection level on both
// architectures. The diagonal of working exploits and the off-diagonal
// failures (injection vs W⊕X, ret2libc vs ASLR) are the paper's central
// result.
//
// The matrix delegates to the campaign engine: all 30 cells fan out
// across the lab's worker pool, each (arch, posture) configuration is
// reconned once instead of once per kind, and results come back in the
// fixed arch → level → kind order regardless of scheduling.
func (l *Lab) RunMatrix() ([]AttackResult, error) {
	kinds := []exploit.Kind{
		exploit.KindDoS,
		exploit.KindCodeInjection,
		exploit.KindRet2Libc,
		exploit.KindRopExeclp,
		exploit.KindRopMemcpy,
	}
	var scenarios []campaign.Scenario
	for _, arch := range []isa.Arch{isa.ArchX86S, isa.ArchARMS} {
		for _, p := range PaperLevels() {
			for _, kind := range kinds {
				scenarios = append(scenarios, campaign.Scenario{
					Arch: arch, Kind: kind, Protection: p,
					Build: l.Build, ReconBuild: l.reconBuild,
					TargetSeed: l.TargetSeed,
				})
			}
		}
	}
	rep, err := l.engine().Run(scenarios)
	if err != nil {
		return nil, fmt.Errorf("matrix: %w", err)
	}
	out := make([]AttackResult, len(rep.Scenarios))
	for i := range rep.Scenarios {
		sr := &rep.Scenarios[i]
		d := &sr.Devices[0]
		out[i] = AttackResult{
			Arch: sr.Scenario.Arch, Kind: sr.Scenario.Kind, Protection: sr.Scenario.Protection,
			Outcome: d.Outcome, Detail: d.Detail, Run: d.Run,
		}
	}
	return out, nil
}

// AutoExploit is the §VII future-work automated generator: given only the
// architecture and the believed protection posture, it performs recon,
// picks the paper's strategy for that posture, builds the payload, and
// verifies it against a staging victim.
func (l *Lab) AutoExploit(arch isa.Arch, p Protection) (*exploit.Exploit, AttackResult, error) {
	kind := exploit.StrategyFor(arch, p.WX, p.ASLR)
	res, err := l.RunAttack(arch, kind, p)
	if err != nil {
		return nil, res, err
	}
	// The verification run above already built (or failed to build) this
	// exact payload; hand back the cached artifact rather than redoing
	// recon and construction. Exploits are read-only once built.
	ex, err := l.engine().Payload(l.scenario(arch, kind, p))
	if err != nil {
		return nil, res, err
	}
	return ex, res, nil
}

// attackQuery is the lookup the victim believes it forwarded upstream.
func attackQuery() *dns.Message {
	return dns.NewQuery(0x1337, "time.iot-vendor.example", dns.TypeA)
}
