package core

import (
	"fmt"

	"connlab/internal/campaign"
	"connlab/internal/dnsserver"
	"connlab/internal/exploit"
	"connlab/internal/isa"
	"connlab/internal/netsim"
)

// PineappleConfig parameterizes the §III-D remote scenario.
type PineappleConfig struct {
	Arch       isa.Arch
	Kind       exploit.Kind
	Protection Protection
	// LegitSignal and RogueSignal set the APs' relative strength; the
	// attack only works while the rogue AP is louder.
	LegitSignal, RogueSignal int
	// Lookups is how many client lookups to drive after association.
	Lookups int
}

// PineappleReport is the outcome of one remote run.
type PineappleReport struct {
	// BaselineWorked reports that the victim proxied a lookup through the
	// legitimate resolver before the attack.
	BaselineWorked bool
	// Reassociated reports that the victim switched to the rogue AP.
	Reassociated bool
	// VictimDNS is the resolver the victim ended up using.
	VictimDNS netsim.IP
	// Hijacked counts lookups answered by the MITM server.
	Hijacked int
	// Outcome classifies what the exploit achieved on the device.
	Outcome Outcome
	Detail  string
	// Events is the network-level log.
	Events []string
}

// Scenario SSIDs and addresses.
const (
	trustedSSID = "HomeIoT"
	legitDNSPos = "8.8.8.8"
)

var (
	resolverIP  = netsim.IP{8, 8, 8, 8}
	legitGW     = netsim.IP{192, 168, 1, 1}
	legitPool   = netsim.IP{192, 168, 1, 100}
	pineappleIP = netsim.IP{172, 16, 42, 1}
	roguePool   = netsim.IP{172, 16, 42, 100}
)

// PineappleScaleConfig parameterizes the population-scale variant of
// the remote scenario: one shared sharded world serving an entire
// station fleet instead of one toy world per device.
type PineappleScaleConfig struct {
	Arch       isa.Arch
	Kind       exploit.Kind
	Protection Protection
	// Stations is the population size; Shards the netsim shard count.
	Stations, Shards int
	// Lookups is the per-station attack-phase lookup count.
	Lookups int
	// VictimEvery makes every k-th station a full victim device
	// (0 = no victims); MaxVictims caps them (0 = 8).
	VictimEvery, MaxVictims int
	// Verbose records the netsim event transcript.
	Verbose bool
}

// RunPineappleScale runs the §III-D scenario against a whole station
// population in one shared world (see campaign.RunPineappleScale). The
// report's Transcript is byte-identical at any shard count.
func (l *Lab) RunPineappleScale(cfg PineappleScaleConfig) (*campaign.ScaleReport, error) {
	return l.engine().RunPineappleScale(campaign.ScaleConfig{
		Stations:    cfg.Stations,
		Shards:      cfg.Shards,
		Lookups:     cfg.Lookups,
		VictimEvery: cfg.VictimEvery,
		MaxVictims:  cfg.MaxVictims,
		Scenario:    l.scenario(cfg.Arch, cfg.Kind, cfg.Protection),
		Verbose:     cfg.Verbose,
	})
}

// RunPineapple reproduces the Wi-Fi Pineapple man-in-the-middle attack
// (§III-D, Fig. 1):
//
//  1. the IoT victim associates to its trusted SSID and resolves names
//     through the legitimate DHCP-assigned resolver (baseline);
//  2. the Pineapple broadcasts the same SSID at a stronger signal and the
//     victim re-associates, receiving the attacker's resolver via DHCP;
//  3. the victim's next DNS lookups are answered by the MITM server with
//     the exploit payload, and the device falls.
//
// The only configuration on the victim is "utilize DHCP and automatic DNS
// server via DHCP", as in the paper.
func (l *Lab) RunPineapple(cfg PineappleConfig) (*PineappleReport, error) {
	if cfg.Lookups == 0 {
		cfg.Lookups = 2
	}
	if cfg.LegitSignal == 0 {
		cfg.LegitSignal = 50
	}
	if cfg.RogueSignal == 0 {
		cfg.RogueSignal = 90
	}
	rep := &PineappleReport{}

	net := netsim.New()
	net.Verbose = true

	// Legitimate infrastructure.
	resolverHost, err := net.AddHost("resolver", resolverIP)
	if err != nil {
		return nil, err
	}
	if _, err := dnsserver.RunResolver(resolverHost, map[string][4]byte{
		"time.iot-vendor.example":   {93, 184, 216, 34},
		"update.iot-vendor.example": {93, 184, 216, 35},
	}); err != nil {
		return nil, err
	}
	net.AddAP(&netsim.AccessPoint{
		Name: "home-router", SSID: trustedSSID, Signal: cfg.LegitSignal,
		PoolBase: legitPool, Gateway: legitGW, DNS: resolverIP,
	})

	// The IoT device: victim daemon + DNS proxy + stub client.
	deviceHost, err := net.AddHost("iot-device", netsim.IP{})
	if err != nil {
		return nil, err
	}
	daemon, err := l.newTargetDaemon(cfg.Arch, cfg.Protection)
	if err != nil {
		return nil, err
	}
	proxy, err := dnsserver.RunProxy(deviceHost, daemon)
	if err != nil {
		return nil, err
	}
	client, err := dnsserver.NewClient(deviceHost)
	if err != nil {
		return nil, err
	}
	station := deviceHost.Station(trustedSSID)
	if _, err := station.Associate(); err != nil {
		return nil, fmt.Errorf("initial association: %w", err)
	}

	// Baseline: a lookup through the legitimate chain.
	lookup := func() error {
		_, err := client.Lookup(netsim.Addr{IP: deviceHost.IP, Port: dnsserver.DNSPort},
			"time.iot-vendor.example")
		if err != nil {
			return err
		}
		net.Run(64)
		return nil
	}
	if err := lookup(); err != nil {
		return nil, err
	}
	rep.BaselineWorked = len(client.Replies) == 1 && proxy.Forwarded == 1

	// Attacker-side: recon in the controlled environment, then deploy the
	// Pineapple.
	tgt, err := l.Recon(cfg.Arch, cfg.Protection)
	if err != nil {
		return nil, err
	}
	ex, err := exploit.Build(tgt, cfg.Kind)
	if err != nil {
		return nil, err
	}
	pineHost, err := net.AddHost("pineapple", pineappleIP)
	if err != nil {
		return nil, err
	}
	mitm, err := dnsserver.RunMITMWire(pineHost, ex.AppendResponse)
	if err != nil {
		return nil, err
	}
	net.AddAP(&netsim.AccessPoint{
		Name: "pineapple", SSID: trustedSSID, Signal: cfg.RogueSignal,
		PoolBase: roguePool, Gateway: pineappleIP, DNS: pineappleIP,
	})

	// The device rescans (e.g. periodic roaming) and latches onto the
	// stronger clone.
	ap, err := station.Associate()
	if err != nil {
		return nil, fmt.Errorf("re-association: %w", err)
	}
	rep.Reassociated = ap.Name == "pineapple"
	rep.VictimDNS = deviceHost.DNS

	// Device traffic resumes; the MITM answers with the exploit.
	for i := 0; i < cfg.Lookups && !daemon.Crashed(); i++ {
		if err := lookup(); err != nil {
			return nil, err
		}
	}
	rep.Hijacked = mitm.Queries
	rep.Outcome, rep.Detail = Classify(daemon.LastResult())
	rep.Events = net.Events
	return rep, nil
}
