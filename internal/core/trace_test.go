package core

import (
	"testing"

	"connlab/internal/exploit"
	"connlab/internal/isa"
	"connlab/internal/telemetry"
)

// retTargets collects the destinations of recorded return transfers.
func retTargets(trace []telemetry.ControlEvent) []uint32 {
	var out []uint32
	for _, ev := range trace {
		if ev.Kind == telemetry.CtlReturn {
			out = append(out, ev.To)
		}
	}
	return out
}

// TestTraceMatchesCodeInjection cross-checks the flight recorder against
// the payload: the E2 code-injection attack overwrites the return
// address with a pointer into the smashed name buffer, so the trace must
// contain a ret landing inside that buffer (at BufferAddr plus the
// shellcode's entry offset) followed by the spawned shell's syscall.
func TestTraceMatchesCodeInjection(t *testing.T) {
	t.Cleanup(telemetry.Disable)
	telemetry.EnableTrace(1024)
	lab := NewLab()
	tgt, err := lab.Recon(isa.ArchX86S, Protection{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := lab.RunAttack(isa.ArchX86S, exploit.KindCodeInjection, Protection{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Outcome != OutcomeShell {
		t.Fatalf("outcome = %s (%s), want shell", res.Outcome, res.Detail)
	}
	if len(res.Trace) == 0 {
		t.Fatal("no flight-recorder events on the attack result")
	}
	// The hijacking ret lands inside the overflowed buffer: the recon'd
	// BufferAddr plus at most the payload length.
	var hijack bool
	for _, to := range retTargets(res.Trace) {
		if to >= tgt.BufferAddr && to < tgt.BufferAddr+512 {
			hijack = true
		}
	}
	if !hijack {
		t.Errorf("no ret into the injected buffer [%#x, %#x) in trace:\n%s",
			tgt.BufferAddr, tgt.BufferAddr+512, telemetry.FormatControlTrace(res.Trace))
	}
	last := res.Trace[len(res.Trace)-1]
	if last.Kind != telemetry.CtlSyscall {
		t.Errorf("trace does not end at the shell syscall: %+v", last)
	}
}

// TestTraceMatchesRet2Libc: under W⊕X the x86 strategy pivots to libc,
// so the trace's hijacking ret must land exactly on the recon'd system()
// address — the gadget-chain address in the payload.
func TestTraceMatchesRet2Libc(t *testing.T) {
	t.Cleanup(telemetry.Disable)
	telemetry.EnableTrace(1024)
	lab := NewLab()
	prot := Protection{WX: true}
	tgt, err := lab.Recon(isa.ArchX86S, prot)
	if err != nil {
		t.Fatal(err)
	}
	res, err := lab.RunAttack(isa.ArchX86S, exploit.KindRet2Libc, prot)
	if err != nil {
		t.Fatal(err)
	}
	if res.Outcome != OutcomeShell {
		t.Fatalf("outcome = %s (%s), want shell", res.Outcome, res.Detail)
	}
	var toSystem bool
	for _, to := range retTargets(res.Trace) {
		if to == tgt.LibcSystem {
			toSystem = true
		}
	}
	if !toSystem {
		t.Errorf("no ret to libc system (%#x) in trace:\n%s",
			tgt.LibcSystem, telemetry.FormatControlTrace(res.Trace))
	}
}
