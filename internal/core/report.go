package core

import (
	"fmt"
	"sort"
	"strings"

	"connlab/internal/exploit"
	"connlab/internal/isa"
	"connlab/internal/kernel"
	"connlab/internal/victim"
)

// ExperimentIDs lists every reproducible experiment in order: e1–e12 map
// to the paper, x1–x2 are the lab's extension experiments.
func ExperimentIDs() []string {
	return []string{"e1", "e2", "e3", "e4", "e5", "e6", "e7", "e8", "e9", "e9scale", "e10",
		"e11", "e12", "x1", "x2", "x3"}
}

// RunExperiment executes one experiment by id and renders its report.
func (l *Lab) RunExperiment(id string) (string, error) {
	switch strings.ToLower(id) {
	case "e1":
		return l.reportE1()
	case "e2":
		return l.reportSingle("E2 §III-A1: x86 code injection, no protections",
			isa.ArchX86S, exploit.KindCodeInjection, LevelNone)
	case "e3":
		return l.reportSingle("E3 §III-A2: ARM code injection, no protections",
			isa.ArchARMS, exploit.KindCodeInjection, LevelNone)
	case "e4":
		return l.reportSingle("E4 §III-B1: x86 ret2libc under W⊕X",
			isa.ArchX86S, exploit.KindRet2Libc, LevelWX)
	case "e5":
		return l.reportSingle("E5 §III-B2 (Listing 2): ARM execlp ROP under W⊕X",
			isa.ArchARMS, exploit.KindRopExeclp, LevelWX)
	case "e6":
		return l.reportSingle("E6 §III-C1 (Listings 3-4): x86 memcpy-chain ROP under W⊕X+ASLR",
			isa.ArchX86S, exploit.KindRopMemcpy, LevelWXASLR)
	case "e7":
		return l.reportSingle("E7 §III-C2 (Listing 5): ARM blx-chain ROP under W⊕X+ASLR",
			isa.ArchARMS, exploit.KindRopMemcpy, LevelWXASLR)
	case "e8":
		return l.reportE8()
	case "e9":
		return l.reportE9()
	case "e9scale":
		return l.reportE9Scale()
	case "e10":
		return l.reportE10()
	case "e11":
		return l.reportE11()
	case "e12":
		return l.reportE12()
	case "x1":
		return l.reportX1()
	case "x2":
		return l.reportX2()
	case "x3":
		return l.reportX3()
	default:
		return "", fmt.Errorf("unknown experiment %q (want e1..e12)", id)
	}
}

// RunAllExperiments renders every report.
func (l *Lab) RunAllExperiments() (string, error) {
	var sb strings.Builder
	for _, id := range ExperimentIDs() {
		rep, err := l.RunExperiment(id)
		if err != nil {
			return sb.String(), fmt.Errorf("%s: %w", id, err)
		}
		sb.WriteString(rep)
		sb.WriteString("\n")
	}
	return sb.String(), nil
}

func header(title string) string {
	return fmt.Sprintf("%s\n%s\n", title, strings.Repeat("-", len(title)))
}

// reportE1 is the DoS experiment: oversized name vs 1.34 and 1.35.
func (l *Lab) reportE1() (string, error) {
	var sb strings.Builder
	sb.WriteString(header("E1 §II: CVE-2017-12865 DoS — oversized Type A name vs Connman 1.34/1.35"))
	for _, arch := range []isa.Arch{isa.ArchX86S, isa.ArchARMS} {
		for _, patched := range []bool{false, true} {
			opts := l.Build
			opts.Patched = patched
			d, err := victim.NewDaemon(arch, opts, kernel.Config{Seed: l.TargetSeed})
			if err != nil {
				return "", err
			}
			ex := exploit.BuildDoS(arch)
			res, err := FireAt(d, ex)
			if err != nil {
				return "", err
			}
			outcome, detail := Classify(res)
			fmt.Fprintf(&sb, "  %-5s connman-%-5s -> %-10s %s\n",
				arch, opts.Version(), outcome, detail)
		}
	}
	return sb.String(), nil
}

// reportSingle runs one attack cell with payload detail.
func (l *Lab) reportSingle(title string, arch isa.Arch, kind exploit.Kind, p Protection) (string, error) {
	var sb strings.Builder
	sb.WriteString(header(title))
	tgt, err := l.Recon(arch, p)
	if err != nil {
		return "", err
	}
	ex, err := exploit.Build(tgt, kind)
	if err != nil {
		return "", err
	}
	fmt.Fprintf(&sb, "  recon: ret offset %d, null slots %v, buffer %#x\n",
		tgt.Frame.RetOffset, tgt.Frame.NullOffsets, tgt.BufferAddr)
	fmt.Fprintf(&sb, "  payload: %s (%d-byte label stream)\n", ex.Description, len(ex.Stream))
	r, err := l.RunAttack(arch, kind, p)
	if err != nil {
		return "", err
	}
	fmt.Fprintf(&sb, "  result: %s -> %s (%s)\n", p, r.Outcome, r.Detail)
	return sb.String(), nil
}

// reportE8 renders the full attack matrix.
func (l *Lab) reportE8() (string, error) {
	var sb strings.Builder
	sb.WriteString(header("E8 §III: attack x protection matrix (the paper's central result)"))
	results, err := l.RunMatrix()
	if err != nil {
		return "", err
	}
	fmt.Fprintf(&sb, "  %-5s %-15s %-12s %-10s\n", "arch", "attack", "protection", "outcome")
	for _, r := range results {
		fmt.Fprintf(&sb, "  %-5s %-15s %-12s %-10s\n", r.Arch, r.Kind, r.Protection, r.Outcome)
	}
	return sb.String(), nil
}

// reportE9 runs the Pineapple scenario on both architectures.
func (l *Lab) reportE9() (string, error) {
	var sb strings.Builder
	sb.WriteString(header("E9 §III-D: Wi-Fi Pineapple man-in-the-middle delivery (Fig. 1)"))
	for _, arch := range []isa.Arch{isa.ArchX86S, isa.ArchARMS} {
		rep, err := l.RunPineapple(PineappleConfig{
			Arch: arch, Kind: exploit.KindRopMemcpy, Protection: LevelWXASLR,
		})
		if err != nil {
			return "", err
		}
		fmt.Fprintf(&sb, "  %-5s baseline=%v reassociated=%v victim-dns=%s hijacked=%d -> %s (%s)\n",
			arch, rep.BaselineWorked, rep.Reassociated, rep.VictimDNS, rep.Hijacked,
			rep.Outcome, rep.Detail)
	}
	return sb.String(), nil
}

// reportE9Scale runs the population-scale Pineapple scenario: one
// shared sharded world serving the whole station fleet. Wall-clock and
// datagrams/sec are host-dependent; every other column is
// deterministic and shard-count independent.
func (l *Lab) reportE9Scale() (string, error) {
	var sb strings.Builder
	sb.WriteString(header("E9-scale: population-scale Pineapple — one shared world, sharded netsim"))
	fmt.Fprintf(&sb, "  %-9s %-7s %-8s %-9s %-9s %-8s %-11s %-9s\n",
		"stations", "shards", "victims", "hijacked", "shells", "epochs", "delivered", "dgrams/s")
	for _, row := range []struct{ stations, shards int }{
		{1000, 1}, {10000, 4}, {100000, 8},
	} {
		rep, err := l.RunPineappleScale(PineappleScaleConfig{
			Arch: isa.ArchX86S, Kind: exploit.KindCodeInjection,
			Stations: row.stations, Shards: row.shards,
			Lookups: 2, VictimEvery: row.stations / 4,
		})
		if err != nil {
			return "", err
		}
		perSec := float64(rep.Delivered) / (float64(rep.WallNs) / 1e9)
		fmt.Fprintf(&sb, "  %-9d %-7d %-8d %-9d %-9d %-8d %-11d %-9.0f\n",
			rep.Stations, row.shards, rep.Victims, rep.Hijacked, rep.Shells,
			rep.Epochs, rep.Delivered, perSec)
	}
	return sb.String(), nil
}

// reportE10 renders the mitigation table.
func (l *Lab) reportE10() (string, error) {
	var sb strings.Builder
	sb.WriteString(header("E10 §IV: mitigations vs the working exploits"))
	results, err := l.EvaluateMitigations(5)
	if err != nil {
		return "", err
	}
	sort.SliceStable(results, func(i, j int) bool {
		return results[i].Mitigation < results[j].Mitigation
	})
	for _, m := range results {
		fmt.Fprintf(&sb, "  %s\n", m.String())
	}
	sb.WriteString("  note: layout diversity cannot block code-injection or ret2libc —\n")
	sb.WriteString("  those never use the diversified binary's addresses.\n")
	return sb.String(), nil
}

// reportE11 covers both §V adaptations.
func (l *Lab) reportE11() (string, error) {
	var sb strings.Builder
	sb.WriteString(header("E11 §V: adapting the engine to other vulnerabilities"))

	dns := *l
	dns.Build.Variant = victim.VariantDnsmasq
	for _, arch := range []isa.Arch{isa.ArchX86S, isa.ArchARMS} {
		for _, p := range PaperLevels() {
			_, res, err := dns.AutoExploit(arch, p)
			if err != nil {
				return "", err
			}
			fmt.Fprintf(&sb, "  dnsmasq-analog %-5s %-12s %-15s -> %s\n",
				arch, p, res.Kind, res.Outcome)
		}
	}

	httpTgt, err := exploit.ReconHTTP(kernel.Config{Seed: l.ReconSeed})
	if err != nil {
		return "", err
	}
	req, err := exploit.BuildHTTPInjection(httpTgt)
	if err != nil {
		return "", err
	}
	d, err := victim.NewHTTPDaemon(kernel.Config{Seed: l.TargetSeed})
	if err != nil {
		return "", err
	}
	res, err := d.HandleRequest(req)
	if err != nil {
		return "", err
	}
	outcome, detail := Classify(res)
	fmt.Fprintf(&sb, "  http-victim    x86s  none         code-injection  -> %s (%s)\n", outcome, detail)
	return sb.String(), nil
}

// reportX1 is the extension brute-force experiment: stale-address
// exploits vs. respawning daemons at several ASLR entropies.
func (l *Lab) reportX1() (string, error) {
	var sb strings.Builder
	sb.WriteString(header("X1 extension: ASLR brute force vs entropy (related work §VI)"))
	for _, arch := range []isa.Arch{isa.ArchX86S, isa.ArchARMS} {
		for _, entropy := range []int{8, 64} {
			rep, err := l.BruteForceASLR(arch, entropy, 4*entropy)
			if err != nil {
				return "", err
			}
			fmt.Fprintf(&sb, "  %s\n", rep)
		}
	}
	rep, err := l.BruteForceASLR(isa.ArchX86S, 4096, 20)
	if err != nil {
		return "", err
	}
	fmt.Fprintf(&sb, "  %s  (full entropy: impractical)\n", rep)
	return sb.String(), nil
}

// reportX2 is the extension pointer-loop DoS: a tiny self-referential
// compression pointer hangs the unguarded decompressor.
func (l *Lab) reportX2() (string, error) {
	var sb strings.Builder
	sb.WriteString(header("X2 extension: compression-pointer loop DoS (decompressor hang)"))
	for _, arch := range []isa.Arch{isa.ArchX86S, isa.ArchARMS} {
		ex := exploit.BuildPointerLoopDoS(arch)
		pkt, err := ex.Response(attackQuery())
		if err != nil {
			return "", err
		}
		opts := l.Build
		d, err := victim.NewDaemon(arch, opts, kernel.Config{Seed: l.TargetSeed, InstrBudget: 200_000})
		if err != nil {
			return "", err
		}
		res, err := d.HandleResponse(pkt)
		if err != nil {
			return "", err
		}
		outcome, _ := Classify(res)
		fmt.Fprintf(&sb, "  %-5s %d-byte packet -> %s (%s) after %d instructions\n",
			arch, len(pkt), outcome, res.Status, res.Instructions)
	}
	return sb.String(), nil
}

// reportX3 is the extension fleet sweep: one rogue AP, one payload, many
// devices — the Mirai-style recreation §III-D gestures at.
func (l *Lab) reportX3() (string, error) {
	var sb strings.Builder
	sb.WriteString(header("X3 extension: fleet sweep — one payload vs many devices (§III-D remark)"))
	rep, err := l.RunFleet(FleetConfig{
		Arch: isa.ArchARMS, Kind: exploit.KindRopMemcpy, Protection: LevelWXASLR,
		Devices: 10, PatchedEvery: 3,
	})
	if err != nil {
		return "", err
	}
	fmt.Fprintf(&sb, "  %s\n", rep)
	for _, d := range rep.Devices {
		fw := "1.34"
		if d.Patched {
			fw = "1.35"
		}
		fmt.Fprintf(&sb, "  %-8s firmware %s -> %s\n", d.Name, fw, d.Outcome)
	}
	return sb.String(), nil
}

// reportE12 exercises the auto generator across every posture.
func (l *Lab) reportE12() (string, error) {
	var sb strings.Builder
	sb.WriteString(header("E12 §VII: automated exploit generation across postures"))
	for _, arch := range []isa.Arch{isa.ArchX86S, isa.ArchARMS} {
		for _, p := range PaperLevels() {
			ex, res, err := l.AutoExploit(arch, p)
			if err != nil {
				return "", err
			}
			fmt.Fprintf(&sb, "  %-5s %-12s chose %-15s (%4d bytes) -> %s\n",
				arch, p, ex.Kind, len(ex.Stream), res.Outcome)
		}
	}
	return sb.String(), nil
}
