package core

import (
	"testing"

	"connlab/internal/exploit"
	"connlab/internal/isa"
)

// TestFleetSweepOwnsUnpatchedOnly: one payload against a mixed fleet —
// every unpatched device falls to its own fresh ASLR sample (the chain
// only uses non-randomized addresses), every patched device survives.
func TestFleetSweepOwnsUnpatchedOnly(t *testing.T) {
	lab := NewLab()
	rep, err := lab.RunFleet(FleetConfig{
		Arch: isa.ArchARMS, Kind: exploit.KindRopMemcpy, Protection: LevelWXASLR,
		Devices: 10, PatchedEvery: 3,
	})
	if err != nil {
		t.Fatalf("fleet: %v", err)
	}
	if len(rep.Devices) != 10 {
		t.Fatalf("devices = %d", len(rep.Devices))
	}
	for _, d := range rep.Devices {
		if d.Patched && d.Outcome != OutcomeNoEffect {
			t.Errorf("%s (patched): %s, want NO-EFFECT", d.Name, d.Outcome)
		}
		if !d.Patched && d.Outcome != OutcomeShell {
			t.Errorf("%s (vulnerable): %s, want SHELL", d.Name, d.Outcome)
		}
	}
	wantPatched := 4 // i = 0, 3, 6, 9
	if rep.Survived != wantPatched || rep.Owned != 10-wantPatched {
		t.Errorf("owned=%d survived=%d, want %d/%d", rep.Owned, rep.Survived,
			10-wantPatched, wantPatched)
	}
	if rep.Hijacked != 10 {
		t.Errorf("hijacked = %d, want 10", rep.Hijacked)
	}
	if rep.String() == "" {
		t.Error("empty report rendering")
	}
}

// TestFleetReconRunsOncePerConfiguration: a fleet of any size recons its
// configuration exactly once — the per-device recomputation the old
// sequential runner did is gone on both the parallel and the
// single-worker (sequential) path.
func TestFleetReconRunsOncePerConfiguration(t *testing.T) {
	for _, workers := range []int{1, 4} {
		lab := NewLab()
		rep, err := lab.RunFleet(FleetConfig{
			Arch: isa.ArchX86S, Kind: exploit.KindCodeInjection, Protection: LevelNone,
			Devices: 6, Workers: workers,
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if rep.ReconBuilds != 1 {
			t.Errorf("workers=%d: recon ran %d times for 6 devices, want 1",
				workers, rep.ReconBuilds)
		}
		if rep.Owned != 6 {
			t.Errorf("workers=%d: owned=%d, want 6", workers, rep.Owned)
		}
	}
}

// TestFleetAllPatchedSurvives: a fully-updated fleet shrugs the campaign
// off — the paper's first suggested mitigation (patching) at scale.
func TestFleetAllPatchedSurvives(t *testing.T) {
	lab := NewLab()
	rep, err := lab.RunFleet(FleetConfig{
		Arch: isa.ArchX86S, Kind: exploit.KindRopMemcpy, Protection: LevelWXASLR,
		Devices: 4, PatchedEvery: 1,
	})
	if err != nil {
		t.Fatalf("fleet: %v", err)
	}
	if rep.Owned != 0 || rep.Crashed != 0 || rep.Survived != 4 {
		t.Errorf("report = %s", rep)
	}
}
