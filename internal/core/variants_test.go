package core

import (
	"testing"

	"connlab/internal/exploit"
	"connlab/internal/isa"
	"connlab/internal/kernel"
	"connlab/internal/victim"
)

// TestE11DnsmasqVariant reproduces the §V adaptability claim: the same
// exploit engine, pointed at a different DNS-overflow victim (the
// dnsmasq analog with a 512-byte buffer, shifted offsets, and on ARM a
// second pointer slot to NULL), produces working exploits after
// re-running reconnaissance — "minimal modification includes basic
// changes such as changing variables to memory addresses suitable for
// the targeted vulnerability".
func TestE11DnsmasqVariant(t *testing.T) {
	for _, arch := range []isa.Arch{isa.ArchX86S, isa.ArchARMS} {
		for _, p := range PaperLevels() {
			t.Run(string(arch)+"/"+p.String(), func(t *testing.T) {
				lab := NewLab()
				lab.Build.Variant = victim.VariantDnsmasq
				_, res, err := lab.AutoExploit(arch, p)
				if err != nil {
					t.Fatalf("auto exploit: %v", err)
				}
				if res.Outcome != OutcomeShell {
					t.Fatalf("outcome = %s (%s), want SHELL", res.Outcome, res.Detail)
				}
			})
		}
	}
}

// TestDnsmasqDiscoveredOffsetsDiffer confirms the variant really has a
// different frame, so nothing is accidentally shared with the Connman
// analog.
func TestDnsmasqDiscoveredOffsetsDiffer(t *testing.T) {
	for _, arch := range []isa.Arch{isa.ArchX86S, isa.ArchARMS} {
		t.Run(string(arch), func(t *testing.T) {
			opts := victim.BuildOpts{Variant: victim.VariantDnsmasq}
			tgt, err := exploit.Recon(arch, opts, kernel.Config{Seed: 2})
			if err != nil {
				t.Fatalf("recon: %v", err)
			}
			if want := victim.RetOffsetFor(arch, opts); tgt.Frame.RetOffset != want {
				t.Errorf("ret offset = %d, want %d", tgt.Frame.RetOffset, want)
			}
			wantNulls := victim.NullOffsetsFor(arch, opts)
			if len(tgt.Frame.NullOffsets) != len(wantNulls) {
				t.Errorf("null offsets = %v, want %v", tgt.Frame.NullOffsets, wantNulls)
			}
			connman := victim.RetOffsetFor(arch, victim.BuildOpts{})
			if tgt.Frame.RetOffset == connman {
				t.Error("dnsmasq variant shares the Connman frame layout")
			}
		})
	}
}
