package core

import (
	"testing"

	"connlab/internal/exploit"
	"connlab/internal/isa"
	"connlab/internal/victim"
)

// TestPineappleAgainstCFIDevice composes the remote scenario with the
// §IV mitigation: the hijack rides all the way to the device and dies at
// the first vetoed return — the network layer cannot tell, but the
// device survives as a crash rather than a shell.
func TestPineappleAgainstCFIDevice(t *testing.T) {
	lab := NewLab()
	p := LevelWXASLR
	p.CFI = true
	rep, err := lab.RunPineapple(PineappleConfig{
		Arch: isa.ArchARMS, Kind: exploit.KindRopMemcpy, Protection: p,
	})
	if err != nil {
		t.Fatalf("pineapple: %v", err)
	}
	if !rep.Reassociated || rep.Hijacked == 0 {
		t.Fatalf("delivery failed before the mitigation mattered: %+v", rep)
	}
	if rep.Outcome != OutcomeBlocked {
		t.Errorf("outcome = %s (%s), want BLOCKED by CFI", rep.Outcome, rep.Detail)
	}
}

// TestPineappleAgainstPatchedDevice: a patched device on a hostile
// network just keeps working.
func TestPineappleAgainstPatchedDevice(t *testing.T) {
	lab := NewLab()
	lab.Build.Patched = true
	// The attacker developed the exploit against the vulnerable firmware.
	lab.SetReconBuild(victim.BuildOpts{})
	rep, err := lab.RunPineapple(PineappleConfig{
		Arch: isa.ArchX86S, Kind: exploit.KindRopMemcpy, Protection: LevelWXASLR,
		Lookups: 3,
	})
	if err != nil {
		t.Fatalf("pineapple: %v", err)
	}
	if rep.Hijacked < 3 {
		t.Errorf("hijacked = %d, want all lookups answered", rep.Hijacked)
	}
	if rep.Outcome != OutcomeNoEffect {
		t.Errorf("outcome = %s (%s), want NO-EFFECT on patched firmware",
			rep.Outcome, rep.Detail)
	}
}

// TestDoSViaPineapple: even the crudest payload delivered remotely takes
// the device's DNS down for good.
func TestDoSViaPineapple(t *testing.T) {
	lab := NewLab()
	rep, err := lab.RunPineapple(PineappleConfig{
		Arch: isa.ArchARMS, Kind: exploit.KindDoS, Protection: LevelWXASLR,
		Lookups: 4,
	})
	if err != nil {
		t.Fatalf("pineapple: %v", err)
	}
	if rep.Outcome != OutcomeCrash {
		t.Errorf("outcome = %s, want CRASH", rep.Outcome)
	}
	if rep.Hijacked != 1 {
		t.Errorf("hijacked = %d; after the first kill the proxy must be deaf", rep.Hijacked)
	}
}

// TestRunAttackWithDiversityAndCFIStacked: mitigations compose; the
// strongest exploit dies at whichever fires first.
func TestRunAttackWithDiversityAndCFIStacked(t *testing.T) {
	lab := NewLab()
	p := LevelWXASLR
	p.CFI = true
	p.DiversitySeed = 7
	r, err := lab.RunAttack(isa.ArchX86S, exploit.KindRopMemcpy, p)
	if err != nil {
		t.Fatalf("attack: %v", err)
	}
	if r.Outcome == OutcomeShell {
		t.Fatalf("shell through stacked mitigations: %s", r.Detail)
	}
}
