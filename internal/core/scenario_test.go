package core

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"connlab/internal/scenario"
)

// TestRunScenarioEmbedded: the lab runs an embedded data-only scenario
// through its persistent engine and the report satisfies the spec.
func TestRunScenarioEmbedded(t *testing.T) {
	lab := NewLab()
	rep, err := lab.RunScenario("offbyone-fp", scenario.CompileOpts{})
	if err != nil {
		t.Fatalf("RunScenario: %v", err)
	}
	if len(rep.Scenarios) != 6 {
		t.Errorf("compiled %d cells, want 6", len(rep.Scenarios))
	}
	if rep.Crashed == 0 {
		t.Errorf("off-by-one scenario crashed nothing:\n%s", rep.Canonical())
	}
}

// TestRunScenarioFromFile: a spec file on disk runs identically to an
// embedded one, and a spec whose predicates the run violates surfaces
// the violation as the returned error (report still delivered).
func TestRunScenarioFromFile(t *testing.T) {
	spec, err := scenario.Load("heap-adjacent")
	if err != nil {
		t.Fatal(err)
	}
	// Forge the predicates: claim the unprotected row survives.
	forged := strings.ReplaceAll(spec.String(), "none=shell", "none=no-effect")
	path := filepath.Join(t.TempDir(), "forged.scn")
	if err := os.WriteFile(path, []byte(forged), 0o644); err != nil {
		t.Fatal(err)
	}
	lab := NewLab()
	rep, err := lab.RunScenario(path, scenario.CompileOpts{})
	if err == nil {
		t.Fatal("forged predicates accepted")
	}
	if rep == nil {
		t.Fatal("report withheld on predicate violation")
	}
	if !strings.Contains(err.Error(), "code-injection") {
		t.Errorf("violation should name the offending cells: %v", err)
	}
}
