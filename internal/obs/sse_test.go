package obs

import (
	"bufio"
	"encoding/json"
	"net/http"
	"strconv"
	"strings"
	"testing"
	"time"

	"connlab/internal/telemetry"
)

// sseFrame is one parsed frame from a stream body.
type sseFrame struct {
	event string
	id    uint64
	data  string
}

// parseSSE splits a complete (once-mode) stream body into frames,
// failing the test on any framing violation.
func parseSSE(t *testing.T, body string) []sseFrame {
	t.Helper()
	var frames []sseFrame
	for _, block := range strings.Split(strings.TrimSuffix(body, "\n\n"), "\n\n") {
		if block == "" {
			continue
		}
		var f sseFrame
		for _, line := range strings.Split(block, "\n") {
			switch {
			case strings.HasPrefix(line, "event: "):
				f.event = strings.TrimPrefix(line, "event: ")
			case strings.HasPrefix(line, "id: "):
				id, err := strconv.ParseUint(strings.TrimPrefix(line, "id: "), 10, 64)
				if err != nil {
					t.Fatalf("bad id line %q: %v", line, err)
				}
				f.id = id
			case strings.HasPrefix(line, "data: "):
				f.data = strings.TrimPrefix(line, "data: ")
			default:
				t.Fatalf("unexpected SSE line %q in block %q", line, block)
			}
		}
		if f.event == "" || f.data == "" || f.id == 0 {
			t.Fatalf("incomplete frame %+v from block %q", f, block)
		}
		frames = append(frames, f)
	}
	return frames
}

func TestEventStreamFraming(t *testing.T) {
	seedTelemetry(t)
	_, ts := newTestServer(t)
	frames := parseSSE(t, get(t, ts.URL+"/events?once=1"))
	if len(frames) != 2 {
		t.Fatalf("got %d frames, want 2", len(frames))
	}
	var ev telemetry.Event
	if err := json.Unmarshal([]byte(frames[1].data), &ev); err != nil {
		t.Fatalf("frame data is not an Event: %v", err)
	}
	if frames[1].event != "event" || frames[1].id != ev.Seq || ev.Seq != 2 {
		t.Errorf("frame id/seq mismatch: frame=%+v event=%+v", frames[1], ev)
	}
	if ev.Level != telemetry.EvWarn || ev.Msg != "run fault" || ev.Attempt != 7 {
		t.Errorf("event payload lost in framing: %+v", ev)
	}
}

func TestEventStreamLevelFilterAndResume(t *testing.T) {
	seedTelemetry(t)
	_, ts := newTestServer(t)
	frames := parseSSE(t, get(t, ts.URL+"/events?once=1&level=warn"))
	if len(frames) != 1 || !strings.Contains(frames[0].data, "run fault") {
		t.Errorf("level=warn filter: %+v", frames)
	}
	frames = parseSSE(t, get(t, ts.URL+"/events?once=1&since=1"))
	if len(frames) != 1 || frames[0].id != 2 {
		t.Errorf("since=1 resume: %+v", frames)
	}
	if got := parseSSE(t, get(t, ts.URL+"/events?once=1&since=2")); len(got) != 0 {
		t.Errorf("since=tip returned %d frames, want 0", len(got))
	}
	resp, err := http.Get(ts.URL + "/events?once=1&level=nope")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bad level got status %d, want 400", resp.StatusCode)
	}
}

func TestSpanStreamFraming(t *testing.T) {
	seedTelemetry(t)
	_, ts := newTestServer(t)
	frames := parseSSE(t, get(t, ts.URL+"/spans?once=1"))
	if len(frames) != 2 {
		t.Fatalf("got %d span frames, want 2", len(frames))
	}
	var fr struct {
		Seq uint64 `json:"seq"`
		telemetry.Span
	}
	if err := json.Unmarshal([]byte(frames[1].data), &fr); err != nil {
		t.Fatalf("span frame data: %v", err)
	}
	if fr.Seq != 2 || frames[1].id != 2 {
		t.Errorf("span cursor wrong: %+v", fr)
	}
	if fr.Track != telemetry.TrackNetsim || fr.Attempt != 7 || fr.Stage != "epoch" {
		t.Errorf("span payload lost: %+v", fr.Span)
	}
}

// TestEventStreamLive: a tailing client receives an event logged after
// it connected — the streaming path, not just the once-mode drain.
func TestEventStreamLive(t *testing.T) {
	seedTelemetry(t)
	_, ts := newTestServer(t)
	resp, err := http.Get(ts.URL + "/events?since=2")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("content-type %q", ct)
	}
	telemetry.LogEvent(telemetry.EvInfo, "campaign", "late arrival", "", 42, 0, 0)
	type read struct {
		line string
		err  error
	}
	ch := make(chan read, 16)
	go func() {
		sc := bufio.NewScanner(resp.Body)
		for sc.Scan() {
			ch <- read{line: sc.Text()}
		}
		ch <- read{err: sc.Err()}
	}()
	deadline := time.After(5 * time.Second)
	var got []string
	for len(got) < 3 {
		select {
		case r := <-ch:
			if r.err != nil {
				t.Fatalf("stream read: %v", r.err)
			}
			if r.line != "" {
				got = append(got, r.line)
			}
		case <-deadline:
			t.Fatalf("no frame within deadline; got %q", got)
		}
	}
	if got[0] != "event: event" || got[1] != "id: 3" || !strings.Contains(got[2], "late arrival") {
		t.Errorf("live frame wrong: %q", got)
	}
}
