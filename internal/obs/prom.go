package obs

import (
	"fmt"
	"io"
	"sort"

	"connlab/internal/telemetry"
)

// Prometheus text exposition (format version 0.0.4) over a telemetry
// snapshot. Counter and histogram names arrive already in
// [a-z0-9_] form, so metric names are "connlab_" + name with no
// further sanitization. Rates are gauges derived by diffing the
// sampler's two most recent snapshots — no per-metric state, no
// decay windows; the scrape interval belongs to the scraper and the
// rate window to the sampler.

// writeProm renders snap, with per-second rate gauges diffed against
// prev over dt seconds (dt <= 0 suppresses rates — not enough samples
// yet). Output is sorted by metric name so scrapes are diffable.
func writeProm(w io.Writer, snap telemetry.Snapshot, prev telemetry.Snapshot, dt float64) {
	names := make([]string, 0, len(snap.Counters))
	for name := range snap.Counters {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		v := snap.Counters[name]
		fmt.Fprintf(w, "# TYPE connlab_%s counter\n", name)
		fmt.Fprintf(w, "connlab_%s %d\n", name, v)
		if dt > 0 {
			rate := float64(v-prev.Counters[name]) / dt
			if v < prev.Counters[name] { // telemetry re-Enabled mid-run
				rate = 0
			}
			fmt.Fprintf(w, "# TYPE connlab_%s_per_second gauge\n", name)
			fmt.Fprintf(w, "connlab_%s_per_second %g\n", name, rate)
		}
	}

	hnames := make([]string, 0, len(snap.Histograms))
	for name := range snap.Histograms {
		hnames = append(hnames, name)
	}
	sort.Strings(hnames)
	for _, name := range hnames {
		h := snap.Histograms[name]
		fmt.Fprintf(w, "# TYPE connlab_%s histogram\n", name)
		var cum uint64
		for b, c := range h.Buckets {
			cum += c
			if c == 0 && b > 0 {
				continue // sparse exposition; cumulative stays exact
			}
			fmt.Fprintf(w, "connlab_%s_bucket{le=\"%d\"} %d\n", name, bucketUpper(b), cum)
		}
		fmt.Fprintf(w, "connlab_%s_bucket{le=\"+Inf\"} %d\n", name, h.Count)
		fmt.Fprintf(w, "connlab_%s_sum %d\n", name, h.Sum)
		fmt.Fprintf(w, "connlab_%s_count %d\n", name, h.Count)
		// Percentiles as separate gauges (not quantile labels — those
		// belong to summaries, and strict parsers reject them on a
		// histogram family).
		for _, p := range [...]struct {
			suffix string
			v      uint64
		}{{"p50", h.P50}, {"p95", h.P95}, {"p99", h.P99}} {
			fmt.Fprintf(w, "# TYPE connlab_%s_%s gauge\n", name, p.suffix)
			fmt.Fprintf(w, "connlab_%s_%s %d\n", name, p.suffix, p.v)
		}
	}

	fmt.Fprintf(w, "# TYPE connlab_spans counter\nconnlab_spans %d\n", snap.SpanCount)
	fmt.Fprintf(w, "# TYPE connlab_events counter\nconnlab_events %d\n", snap.EventCount)
	if r := snap.Run; r != nil {
		fmt.Fprintf(w, "# TYPE connlab_run_info gauge\n")
		fmt.Fprintf(w, "connlab_run_info{tool=%q,workers=\"%d\",scenarios=\"%d\",devices=\"%d\"} 1\n",
			r.Tool, r.Workers, r.Scenarios, r.Devices)
	}
}

// bucketUpper is the inclusive upper bound of log₂ bucket b: bucket 0
// holds only zeros, bucket b>0 holds [2^(b-1), 2^b).
func bucketUpper(b int) uint64 {
	if b == 0 {
		return 0
	}
	return 1<<uint(b) - 1
}
