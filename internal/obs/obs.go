// Package obs is the lab's live ops surface: a stdlib-net/http server
// that mounts on whatever the process is doing — a campaign engine
// mid-fleet, a population-scale pineapple run, a single attack — and
// exposes the telemetry subsystem while it runs instead of only at
// exit. It is the load-bearing half of campaign-as-a-service: the
// endpoints are the contract job submitters and dashboards consume.
//
// Endpoints:
//
//	/metrics      Prometheus text exposition of every counter and
//	              histogram, plus per-second rates computed by diffing
//	              the background sampler's periodic TakeSnapshots
//	/snapshot     the full schema-v2 JSON snapshot (run metadata,
//	              counters, histograms, event-log tail)
//	/events       SSE stream of the structured event log (?level=,
//	              ?since=, ?once=1)
//	/spans        SSE stream of stage/epoch spans as they land
//	/trace        Chrome trace_event download of the span ring, with
//	              per-worker and per-shard lanes keyed by attempt ID
//	/debug/pprof  the standard pprof family
//
// The surface is strictly read-only over telemetry state and is off by
// default: nothing in this package runs unless a CLI was started with
// -listen (or a caller mounts Start directly), and recorded transcripts
// are byte-identical when it is off — the server prints its address to
// stderr, never stdout.
package obs

import (
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"sync"
	"time"

	"connlab/internal/telemetry"
)

// Options parameterizes a Server.
type Options struct {
	// Tool names the process in /metrics run-info and the index page.
	Tool string
	// Run, when non-nil, supplies the run metadata stamped onto
	// /snapshot responses (called per request — campaign config may not
	// be known when the server starts).
	Run func() *telemetry.RunInfo
	// SampleInterval is the background sampler cadence that the
	// /metrics rate gauges diff over. 0 means one second.
	SampleInterval time.Duration
	// PollInterval is the SSE tail-poll cadence. 0 means 200ms.
	PollInterval time.Duration
}

// Server is one live observability listener.
type Server struct {
	opts Options
	ln   net.Listener
	srv  *http.Server

	// Sampler state: the two most recent periodic snapshots. /metrics
	// derives rates from (cur-prev)/(curAt-prevAt).
	mu             sync.Mutex
	prev, cur      telemetry.Snapshot
	prevAt, curAt  time.Time
	haveTwoSamples bool

	done chan struct{}
}

// Start listens on addr (":0" picks an ephemeral port) and serves the
// observability surface until Close. Telemetry should already be
// enabled; the server only reads.
func Start(addr string, opts Options) (*Server, error) {
	if opts.SampleInterval <= 0 {
		opts.SampleInterval = time.Second
	}
	if opts.PollInterval <= 0 {
		opts.PollInterval = 200 * time.Millisecond
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("obs: listen %s: %w", addr, err)
	}
	s := &Server{opts: opts, ln: ln, done: make(chan struct{})}
	s.srv = &http.Server{Handler: s.Handler()}
	s.sampleNow()
	go s.sampleLoop()
	go s.srv.Serve(ln) //nolint:errcheck // ErrServerClosed on Close
	return s, nil
}

// Handler returns the route table without a listener — the test seam.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/", s.handleIndex)
	mux.HandleFunc("/metrics", s.handleMetrics)
	mux.HandleFunc("/snapshot", s.handleSnapshot)
	mux.HandleFunc("/events", s.handleEvents)
	mux.HandleFunc("/spans", s.handleSpans)
	mux.HandleFunc("/trace", s.handleTrace)
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// Addr returns the bound listen address (with the resolved port).
func (s *Server) Addr() string {
	if s == nil || s.ln == nil {
		return ""
	}
	return s.ln.Addr().String()
}

// Close stops the listener, in-flight streams and the sampler. Nil-safe
// so CLIs can defer it unconditionally.
func (s *Server) Close() error {
	if s == nil {
		return nil
	}
	close(s.done)
	return s.srv.Close()
}

// sampleLoop drives the periodic snapshots behind the rate gauges.
func (s *Server) sampleLoop() {
	t := time.NewTicker(s.opts.SampleInterval)
	defer t.Stop()
	for {
		select {
		case <-s.done:
			return
		case <-t.C:
			s.sampleNow()
		}
	}
}

func (s *Server) sampleNow() {
	snap := telemetry.TakeSnapshot()
	now := time.Now()
	s.mu.Lock()
	s.prev, s.prevAt = s.cur, s.curAt
	s.cur, s.curAt = snap, now
	s.haveTwoSamples = s.haveTwoSamples || !s.prevAt.IsZero()
	s.mu.Unlock()
}

// ratePair returns the sampler's last two snapshots and the wall
// seconds between them (0 until two samples exist).
func (s *Server) ratePair() (prev, cur telemetry.Snapshot, dt float64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.haveTwoSamples {
		return telemetry.Snapshot{}, s.cur, 0
	}
	return s.prev, s.cur, s.curAt.Sub(s.prevAt).Seconds()
}

func (s *Server) handleIndex(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path != "/" {
		http.NotFound(w, r)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintf(w, "connlab observability surface (tool=%s)\n\n", s.opts.Tool)
	fmt.Fprint(w, `endpoints:
  /metrics       Prometheus text exposition (counters, rates, histograms)
  /snapshot      telemetry snapshot JSON (schema v2)
  /events        SSE event-log stream (?level=debug|info|warn, ?since=N, ?once=1)
  /spans         SSE stage/epoch span stream (?since=N, ?once=1)
  /trace         Chrome trace_event download (open in chrome://tracing)
  /debug/pprof/  pprof profiles
`)
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	prev, _, dt := s.ratePair()
	// Current values are a fresh merge — cheap (µs) and never stale —
	// while rates diff against the sampler's previous period.
	snap := telemetry.TakeSnapshot()
	if s.opts.Run != nil {
		snap.Run = s.opts.Run()
	}
	if snap.Run == nil {
		snap.Run = &telemetry.RunInfo{Tool: s.opts.Tool}
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	writeProm(w, snap, prev, dt)
}

func (s *Server) handleSnapshot(w http.ResponseWriter, r *http.Request) {
	snap := telemetry.TakeSnapshot()
	if s.opts.Run != nil {
		snap.Run = s.opts.Run()
	}
	w.Header().Set("Content-Type", "application/json")
	telemetry.WriteSnapshot(w, snap) //nolint:errcheck // client gone
}

func (s *Server) handleTrace(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("Content-Disposition", `attachment; filename="connlab-trace.json"`)
	telemetry.WriteChromeTrace(w, telemetry.Spans(), nil) //nolint:errcheck
}

// StartFlags starts a server when the shared -listen flag was set,
// returning nil (no server, no goroutines, no output) otherwise. The
// address announcement goes to stderr so recorded stdout transcripts
// stay byte-identical.
func StartFlags(tf *telemetry.Flags, tool string, run func() *telemetry.RunInfo) (*Server, error) {
	if tf.Listen == "" {
		return nil, nil
	}
	s, err := Start(tf.Listen, Options{Tool: tool, Run: run})
	if err != nil {
		return nil, err
	}
	fmt.Fprintf(os.Stderr, "%s: observability surface on http://%s\n", tool, s.Addr())
	return s, nil
}
