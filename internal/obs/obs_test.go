package obs

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"connlab/internal/telemetry"
)

// seedTelemetry enables a fresh state and records a known mix of
// counters, histogram samples, spans and events.
func seedTelemetry(t *testing.T) {
	t.Helper()
	t.Cleanup(telemetry.Disable)
	telemetry.Enable()
	h := telemetry.Handle()
	h.Add(telemetry.CtrEmuRuns, 4)
	h.Add(telemetry.CtrEmuInstr, 1234)
	for _, v := range []uint64{0, 5, 300, 70000} {
		h.Observe(telemetry.HistEmuRunInstr, v)
	}
	telemetry.RecordSpan(telemetry.Span{Scenario: "s", Device: "d", Stage: "deliver",
		Worker: 1, Start: 10, Dur: 20, Instr: 1234, Attempt: 7})
	telemetry.RecordSpan(telemetry.Span{Scenario: "netsim", Stage: "epoch",
		Worker: 3, Start: 15, Dur: 5, Instr: 2, Attempt: 7, Track: telemetry.TrackNetsim})
	telemetry.LogEvent(telemetry.EvInfo, "campaign", "shell", "iot-00", 7, 1, 1234)
	telemetry.LogEvent(telemetry.EvWarn, "kernel", "run fault", "x86s", 7, 0x8048000, 99)
}

func newTestServer(t *testing.T) (*Server, *httptest.Server) {
	t.Helper()
	s := &Server{
		opts: Options{Tool: "test", PollInterval: 5 * time.Millisecond,
			SampleInterval: time.Hour},
		done: make(chan struct{}),
	}
	s.sampleNow()
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() { close(s.done); ts.Close() })
	return s, ts
}

func get(t *testing.T, url string) string {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: status %d", url, resp.StatusCode)
	}
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

func TestMetricsExposition(t *testing.T) {
	seedTelemetry(t)
	_, ts := newTestServer(t)
	body := get(t, ts.URL+"/metrics")
	for _, want := range []string{
		"# TYPE connlab_emu_runs counter",
		"connlab_emu_runs 4",
		"connlab_emu_instructions 1234",
		"# TYPE connlab_emu_run_instructions histogram",
		`connlab_emu_run_instructions_bucket{le="0"} 1`,
		`connlab_emu_run_instructions_bucket{le="+Inf"} 4`,
		"connlab_emu_run_instructions_sum 70305",
		"connlab_emu_run_instructions_count 4",
		"connlab_spans 2",
		"connlab_events 2",
		`connlab_run_info{tool="test"`,
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
	// No rates until the sampler has two periods.
	if strings.Contains(body, "_per_second") {
		t.Error("/metrics exposes rates with a single sample")
	}
}

func TestMetricsRates(t *testing.T) {
	seedTelemetry(t)
	s, ts := newTestServer(t)
	telemetry.Add(telemetry.CtrEmuRuns, 100)
	time.Sleep(2 * time.Millisecond)
	s.sampleNow() // second sample → rates available
	body := get(t, ts.URL+"/metrics")
	if !strings.Contains(body, "# TYPE connlab_emu_runs_per_second gauge") {
		t.Fatalf("/metrics missing rate gauge after two samples:\n%.400s", body)
	}
	for _, line := range strings.Split(body, "\n") {
		if strings.HasPrefix(line, "connlab_emu_runs_per_second ") {
			if strings.HasSuffix(line, " 0") {
				t.Errorf("rate is zero despite counter movement: %q", line)
			}
			return
		}
	}
	t.Error("rate line not found")
}

func TestSnapshotEndpoint(t *testing.T) {
	seedTelemetry(t)
	s, ts := newTestServer(t)
	s.opts.Run = func() *telemetry.RunInfo {
		return &telemetry.RunInfo{Tool: "test", Workers: 8}
	}
	var snap telemetry.Snapshot
	if err := json.Unmarshal([]byte(get(t, ts.URL+"/snapshot")), &snap); err != nil {
		t.Fatalf("/snapshot is not JSON: %v", err)
	}
	if snap.SchemaVersion != telemetry.SchemaVersion {
		t.Errorf("schema_version = %d, want %d", snap.SchemaVersion, telemetry.SchemaVersion)
	}
	if snap.Counters["emu_runs"] != 4 || snap.EventCount != 2 || snap.SpanCount != 2 {
		t.Errorf("snapshot content wrong: runs=%d events=%d spans=%d",
			snap.Counters["emu_runs"], snap.EventCount, snap.SpanCount)
	}
	if snap.Run == nil || snap.Run.Workers != 8 {
		t.Errorf("run metadata not stamped: %+v", snap.Run)
	}
	if len(snap.Events) != 2 || snap.Events[1].Msg != "run fault" {
		t.Errorf("snapshot events tail wrong: %+v", snap.Events)
	}
}

func TestTraceEndpoint(t *testing.T) {
	seedTelemetry(t)
	_, ts := newTestServer(t)
	var events []map[string]any
	if err := json.Unmarshal([]byte(get(t, ts.URL+"/trace")), &events); err != nil {
		t.Fatalf("/trace is not a trace_event array: %v", err)
	}
	var pids = map[float64]bool{}
	for _, ev := range events {
		if ev["ph"] == "X" {
			pids[ev["pid"].(float64)] = true
		}
	}
	if !pids[1] || !pids[3] {
		t.Errorf("trace lanes missing: stage pid1=%v netsim pid3=%v", pids[1], pids[3])
	}
}

func TestIndexAndPprof(t *testing.T) {
	seedTelemetry(t)
	_, ts := newTestServer(t)
	if body := get(t, ts.URL+"/"); !strings.Contains(body, "/metrics") {
		t.Errorf("index page does not list endpoints:\n%s", body)
	}
	if body := get(t, ts.URL+"/debug/pprof/cmdline"); len(body) == 0 {
		t.Error("pprof cmdline empty")
	}
}

func TestStartAndClose(t *testing.T) {
	seedTelemetry(t)
	s, err := Start("127.0.0.1:0", Options{Tool: "test"})
	if err != nil {
		t.Fatal(err)
	}
	if s.Addr() == "" || strings.HasSuffix(s.Addr(), ":0") {
		t.Errorf("ephemeral port not resolved: %q", s.Addr())
	}
	body := get(t, "http://"+s.Addr()+"/metrics")
	if !strings.Contains(body, "connlab_emu_runs 4") {
		t.Error("live server /metrics wrong")
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := http.Get("http://" + s.Addr() + "/metrics"); err == nil {
		t.Error("server still serving after Close")
	}
}

func TestStartFlagsOff(t *testing.T) {
	var tf telemetry.Flags
	s, err := StartFlags(&tf, "test", nil)
	if err != nil || s != nil {
		t.Fatalf("StartFlags with empty -listen: %v %v", s, err)
	}
	// Nil receivers must be safe: CLIs defer Close unconditionally.
	if s.Addr() != "" || s.Close() != nil {
		t.Error("nil server methods not inert")
	}
}
