package obs

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"time"

	"connlab/internal/telemetry"
)

// Server-Sent Events streaming of the event log and the span ring. Both
// rings expose a Since(cursor) poll primitive; the handlers tail them
// at the configured poll interval and frame each record as
//
//	event: <kind>
//	id: <cursor>
//	data: <one JSON object>
//	<blank line>
//
// so a dropped client resumes with Last-Event-ID (or ?since=N) without
// replaying what it already saw. ?once=1 drains the current backlog and
// returns instead of tailing — the curl-and-pipe-to-jq mode.

// writeSSEFrame writes one framed record. id is the resume cursor
// after this record.
func writeSSEFrame(w http.ResponseWriter, kind string, id uint64, record any) error {
	b, err := json.Marshal(record)
	if err != nil {
		return err
	}
	_, err = fmt.Fprintf(w, "event: %s\nid: %d\ndata: %s\n\n", kind, id, b)
	return err
}

// sseSetup negotiates the stream: headers, flusher, resume cursor.
func sseSetup(w http.ResponseWriter, r *http.Request) (http.Flusher, uint64, bool) {
	fl, ok := w.(http.Flusher)
	if !ok {
		http.Error(w, "streaming unsupported", http.StatusInternalServerError)
		return nil, 0, false
	}
	var since uint64
	if v := r.URL.Query().Get("since"); v != "" {
		n, err := strconv.ParseUint(v, 10, 64)
		if err != nil {
			http.Error(w, "bad since cursor", http.StatusBadRequest)
			return nil, 0, false
		}
		since = n
	} else if v := r.Header.Get("Last-Event-ID"); v != "" {
		if n, err := strconv.ParseUint(v, 10, 64); err == nil {
			since = n
		}
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.Header().Set("X-Accel-Buffering", "no")
	return fl, since, true
}

func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	fl, cursor, ok := sseSetup(w, r)
	if !ok {
		return
	}
	min := telemetry.EvDebug
	if v := r.URL.Query().Get("level"); v != "" {
		l, ok := telemetry.ParseEventLevel(v)
		if !ok {
			http.Error(w, "bad level (debug|info|warn)", http.StatusBadRequest)
			return
		}
		min = l
	}
	once := r.URL.Query().Get("once") != ""
	for {
		evs, next := telemetry.EventsSince(cursor)
		for _, e := range evs {
			if e.Level < min {
				continue
			}
			if err := writeSSEFrame(w, "event", e.Seq, e); err != nil {
				return
			}
		}
		cursor = next
		fl.Flush()
		if once {
			return
		}
		select {
		case <-r.Context().Done():
			return
		case <-s.done:
			return
		case <-time.After(s.opts.PollInterval):
		}
	}
}

// spanFrame pairs a span with its resume cursor: spans have no
// embedded sequence number, so the frame carries it.
type spanFrame struct {
	Seq uint64 `json:"seq"`
	telemetry.Span
}

func (s *Server) handleSpans(w http.ResponseWriter, r *http.Request) {
	fl, cursor, ok := sseSetup(w, r)
	if !ok {
		return
	}
	once := r.URL.Query().Get("once") != ""
	for {
		spans, next := telemetry.SpansSince(cursor)
		for i, sp := range spans {
			seq := next - uint64(len(spans)) + uint64(i) + 1
			if err := writeSSEFrame(w, "span", seq, spanFrame{Seq: seq, Span: sp}); err != nil {
				return
			}
		}
		cursor = next
		fl.Flush()
		if once {
			return
		}
		select {
		case <-r.Context().Done():
			return
		case <-s.done:
			return
		case <-time.After(s.opts.PollInterval):
		}
	}
}
