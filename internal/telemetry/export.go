package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"
)

// SchemaVersion pins the snapshot JSON schema; the golden-file test in
// this package fails on any unannounced shape change. v2 adds the
// structured event log (event_count + a bounded tail of events), raw
// log₂ bucket counts on every histogram, and attempt/track fields on
// spans. v1 snapshots decode cleanly into the v2 struct (new fields
// zero) — pinned by the back-compat test against the preserved v1
// golden.
const SchemaVersion = 2

// snapshotEventTail bounds how many trailing events a snapshot embeds;
// the full ring stays available over the obs server's /events stream.
const snapshotEventTail = 256

// Pct is a percentile triple over a deterministic value axis
// (instruction counts, queue depths). Values are exact order statistics,
// not bucket interpolations, when computed from a sample list.
type Pct struct {
	P50 uint64 `json:"p50"`
	P95 uint64 `json:"p95"`
	P99 uint64 `json:"p99"`
}

// HistSnapshot is one merged histogram. Buckets are the raw log₂
// bucket counts (bucket 0 = zero values, bucket b>0 = [2^(b-1), 2^b)),
// a fixed-size array so HistSnapshot stays comparable — the campaign
// determinism tests compare them with == across worker counts.
type HistSnapshot struct {
	Count   uint64              `json:"count"`
	Sum     uint64              `json:"sum"`
	Buckets [histBuckets]uint64 `json:"buckets"`
	Pct
}

// RunInfo ties a snapshot back to the run that produced it.
type RunInfo struct {
	Tool      string `json:"tool"`
	Workers   int    `json:"workers,omitempty"`
	RootSeed  int64  `json:"root_seed,omitempty"`
	ReconSeed int64  `json:"recon_seed,omitempty"`
	Scenarios int    `json:"scenarios,omitempty"`
	Devices   int    `json:"devices,omitempty"`
}

// ScenarioStages is the per-scenario stage aggregate carried in a
// snapshot: deterministic parse-cost percentiles (emulated instructions
// per device) plus wall-clock stage percentiles. The wall-clock numbers
// depend on host scheduling and are excluded from determinism
// comparisons; ParseInstr is exact for a given seed whatever the worker
// count.
type ScenarioStages struct {
	Label       string         `json:"label"`
	Devices     int            `json:"devices"`
	ParseInstr  Pct            `json:"parse_instructions"`
	StageWallNs map[string]Pct `json:"stage_wall_ns,omitempty"`
}

// Snapshot is the merged, export-ready view of everything telemetry
// collected: counters summed across shards, histogram percentiles, span
// statistics and the run parameters.
type Snapshot struct {
	SchemaVersion int                     `json:"schema_version"`
	Run           *RunInfo                `json:"run,omitempty"`
	Counters      map[string]uint64       `json:"counters"`
	Histograms    map[string]HistSnapshot `json:"histograms"`
	Scenarios     []ScenarioStages        `json:"scenarios,omitempty"`
	SpanCount     int                     `json:"span_count"`
	EventCount    uint64                  `json:"event_count"`
	Events        []Event                 `json:"events,omitempty"`
	TraceEvents   int                     `json:"trace_events,omitempty"`
}

// TakeSnapshot merges every shard into an export-ready Snapshot. All
// counter and histogram names are always present (zero-valued when
// untouched) so the schema is stable run to run. Returns a zero-valued
// snapshot when telemetry is disabled.
func TakeSnapshot() Snapshot {
	snap := Snapshot{
		SchemaVersion: SchemaVersion,
		Counters:      make(map[string]uint64, int(numCounters)),
		Histograms:    make(map[string]HistSnapshot, int(numHists)),
	}
	for c := Counter(0); c < numCounters; c++ {
		snap.Counters[c.Name()] = 0
	}
	for h := Hist(0); h < numHists; h++ {
		snap.Histograms[h.Name()] = HistSnapshot{}
	}
	st := cur.Load()
	if st == nil {
		return snap
	}
	for c := Counter(0); c < numCounters; c++ {
		var total uint64
		for i := range st.shards {
			total += st.shards[i].counters[c].Load()
		}
		snap.Counters[c.Name()] = total
	}
	for h := Hist(0); h < numHists; h++ {
		var hs HistSnapshot
		for i := range st.shards {
			hg := &st.shards[i].hists[h]
			hs.Count += hg.samples.Load()
			hs.Sum += hg.sum.Load()
			for b := 0; b < histBuckets; b++ {
				hs.Buckets[b] += hg.count[b].Load()
			}
		}
		hs.Pct = bucketPercentiles(hs.Buckets, hs.Count)
		snap.Histograms[h.Name()] = hs
	}
	snap.SpanCount = len(st.spans.snapshot())
	snap.EventCount = st.events.count()
	after := uint64(0)
	if snap.EventCount > snapshotEventTail {
		after = snap.EventCount - snapshotEventTail
	}
	snap.Events, _ = st.events.since(after)
	return snap
}

// bucketPercentiles derives p50/p95/p99 from merged log₂ bucket counts.
// Each percentile reports the upper bound of the bucket the rank lands
// in — coarse, but an exact function of the observed values and so
// identical across worker counts.
func bucketPercentiles(buckets [histBuckets]uint64, total uint64) Pct {
	if total == 0 {
		return Pct{}
	}
	rank := func(q uint64) uint64 { // q per-10000
		target := (total*q + 9999) / 10000
		var cum uint64
		for b := 0; b < histBuckets; b++ {
			cum += buckets[b]
			if cum >= target {
				if b == 0 {
					return 0
				}
				return 1<<uint(b) - 1
			}
		}
		return 1<<uint(histBuckets) - 1
	}
	return Pct{P50: rank(5000), P95: rank(9500), P99: rank(9900)}
}

// Percentiles computes exact order-statistic p50/p95/p99 over raw
// samples (sorted copy; input untouched). Used for the deterministic
// per-scenario aggregates where the full sample list is available.
func Percentiles(samples []uint64) Pct {
	if len(samples) == 0 {
		return Pct{}
	}
	s := make([]uint64, len(samples))
	copy(s, samples)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	at := func(q int) uint64 { // q per-10000, nearest-rank
		r := (len(s)*q + 9999) / 10000
		if r < 1 {
			r = 1
		}
		return s[r-1]
	}
	return Pct{P50: at(5000), P95: at(9500), P99: at(9900)}
}

// PercentilesNs is Percentiles for int64 nanosecond samples.
func PercentilesNs(samples []int64) Pct {
	u := make([]uint64, 0, len(samples))
	for _, v := range samples {
		if v < 0 {
			v = 0
		}
		u = append(u, uint64(v))
	}
	return Percentiles(u)
}

// WriteSnapshot writes a snapshot as indented JSON.
func WriteSnapshot(w io.Writer, snap Snapshot) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(snap)
}

// WriteSnapshotFile writes a snapshot to path ("-" for stdout).
func WriteSnapshotFile(path string, snap Snapshot) error {
	if path == "-" {
		return WriteSnapshot(os.Stdout, snap)
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := WriteSnapshot(f, snap); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// traceEvent is one Chrome trace_event entry (the JSON Array Format
// understood by chrome://tracing and Perfetto).
type traceEvent struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"` // microseconds
	Dur  float64        `json:"dur,omitempty"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
	S    string         `json:"s,omitempty"` // instant-event scope
}

// WriteChromeTrace renders stage spans and control-transfer events as a
// Chrome trace_event JSON array. Campaign stage spans become duration
// ("X") events on pid 1 with one lane per worker; netsim epoch spans
// (Track == TrackNetsim) land on pid 3 with one lane per shard; control
// events become instant ("i") events on pid 2 with the emulated
// instruction count as the timestamp, so the gadget chain reads left to
// right in execution order. Spans carry their attempt ID (the per-device
// splitmix64 seed, rendered in hex to survive JSON number precision) so
// one attempt's stage and epoch slices correlate across lanes.
func WriteChromeTrace(w io.Writer, spans []Span, ctl []ControlEvent) error {
	events := make([]traceEvent, 0, len(spans)+len(ctl)+2)
	events = append(events,
		traceEvent{Name: "process_name", Ph: "M", Pid: 1, Args: map[string]any{"name": "campaign stages"}},
		traceEvent{Name: "process_name", Ph: "M", Pid: 2, Args: map[string]any{"name": "hijack flight recorder"}},
	)
	workers := make(map[int]bool)
	shards := make(map[int]bool)
	for _, s := range spans {
		ev := traceEvent{
			Name: s.Stage,
			Ph:   "X",
			Ts:   float64(s.Start) / 1e3,
			Dur:  float64(s.Dur) / 1e3,
			Pid:  1,
			Tid:  s.Worker,
		}
		if s.Track == TrackNetsim {
			ev.Pid = 3
			shards[s.Worker] = true
			ev.Args = map[string]any{"batch": s.Instr}
		} else {
			workers[s.Worker] = true
			ev.Args = map[string]any{"scenario": s.Scenario, "device": s.Device}
			if s.Instr > 0 {
				ev.Args["instructions"] = s.Instr
			}
		}
		if s.Attempt != 0 {
			ev.Args["attempt"] = fmt.Sprintf("%#016x", s.Attempt)
		}
		events = append(events, ev)
	}
	if len(shards) > 0 {
		events = append(events, traceEvent{Name: "process_name", Ph: "M", Pid: 3,
			Args: map[string]any{"name": "netsim shards"}})
	}
	for _, tid := range sortedKeys(workers) {
		events = append(events, traceEvent{Name: "thread_name", Ph: "M", Pid: 1, Tid: tid,
			Args: map[string]any{"name": fmt.Sprintf("worker %d", tid)}})
	}
	for _, tid := range sortedKeys(shards) {
		events = append(events, traceEvent{Name: "thread_name", Ph: "M", Pid: 3, Tid: tid,
			Args: map[string]any{"name": fmt.Sprintf("shard %d", tid)}})
	}
	for _, c := range ctl {
		events = append(events, traceEvent{
			Name: fmt.Sprintf("%s %#x->%#x", CtlName(c.Kind), c.From, c.To),
			Ph:   "i",
			Ts:   float64(c.Instr),
			Pid:  2,
			Tid:  0,
			S:    "t",
			Args: map[string]any{"kind": CtlName(c.Kind), "from": c.From, "to": c.To, "instr": c.Instr},
		})
	}
	enc := json.NewEncoder(w)
	return enc.Encode(events)
}

// sortedKeys returns the keys of a lane set in ascending order so the
// metadata block is deterministic.
func sortedKeys(m map[int]bool) []int {
	out := make([]int, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Ints(out)
	return out
}

// WriteChromeTraceFile writes a Chrome trace to path ("-" for stdout).
func WriteChromeTraceFile(path string, spans []Span, ctl []ControlEvent) error {
	if path == "-" {
		return WriteChromeTrace(os.Stdout, spans, ctl)
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := WriteChromeTrace(f, spans, ctl); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// FormatSnapshot renders a snapshot for terminal inspection (the dbgsh
// `telemetry` subcommand).
func FormatSnapshot(snap Snapshot) string {
	var b strings.Builder
	fmt.Fprintf(&b, "telemetry snapshot (schema v%d)\n", snap.SchemaVersion)
	if r := snap.Run; r != nil {
		fmt.Fprintf(&b, "run: tool=%s workers=%d root_seed=%d recon_seed=%d scenarios=%d devices=%d\n",
			r.Tool, r.Workers, r.RootSeed, r.ReconSeed, r.Scenarios, r.Devices)
	}
	names := make([]string, 0, len(snap.Counters))
	for name := range snap.Counters {
		names = append(names, name)
	}
	sort.Strings(names)
	b.WriteString("counters:\n")
	for _, name := range names {
		fmt.Fprintf(&b, "  %-22s %12d\n", name, snap.Counters[name])
	}
	hnames := make([]string, 0, len(snap.Histograms))
	for name := range snap.Histograms {
		hnames = append(hnames, name)
	}
	sort.Strings(hnames)
	b.WriteString("histograms:\n")
	for _, name := range hnames {
		h := snap.Histograms[name]
		fmt.Fprintf(&b, "  %-22s count=%d sum=%d p50=%d p95=%d p99=%d\n",
			name, h.Count, h.Sum, h.P50, h.P95, h.P99)
	}
	if len(snap.Scenarios) > 0 {
		b.WriteString("scenario stage costs (emulated instructions/device):\n")
		for _, sc := range snap.Scenarios {
			fmt.Fprintf(&b, "  %-28s devices=%-3d parse p50=%d p95=%d p99=%d\n",
				sc.Label, sc.Devices, sc.ParseInstr.P50, sc.ParseInstr.P95, sc.ParseInstr.P99)
		}
	}
	fmt.Fprintf(&b, "spans recorded: %d\n", snap.SpanCount)
	if snap.EventCount > 0 {
		fmt.Fprintf(&b, "events recorded: %d (snapshot carries last %d)\n",
			snap.EventCount, len(snap.Events))
		for _, e := range snap.Events {
			fmt.Fprintf(&b, "  [%12d] %-5s %-10s %-16s scope=%s attempt=%#x v0=%d v1=%d\n",
				e.TS, e.Level, e.Cat, e.Msg, e.Scope, e.Attempt, e.V0, e.V1)
		}
	}
	if snap.TraceEvents > 0 {
		fmt.Fprintf(&b, "flight-recorder events: %d\n", snap.TraceEvents)
	}
	return b.String()
}

// FormatControlTrace renders a control-transfer sequence as one line per
// event, the terminal twin of the Chrome trace export.
func FormatControlTrace(ctl []ControlEvent) string {
	var b strings.Builder
	for _, c := range ctl {
		fmt.Fprintf(&b, "  [%8d] %-7s %#08x -> %#08x\n", c.Instr, CtlName(c.Kind), c.From, c.To)
	}
	return b.String()
}
