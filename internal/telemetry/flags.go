package telemetry

import "flag"

// Flags bundles the uniform observability flag set shared by every CLI:
// -metrics/-trace for the telemetry snapshot and Chrome trace, plus the
// pprof family folded in from the old profiling package.
type Flags struct {
	Metrics      string
	Trace        string
	TraceEvents  int
	Listen       string
	CPUProfile   string
	MemProfile   string
	BlockProfile string
	MutexProfile string

	stopProfiles func() error
}

// AddFlags registers the observability flags on fs and returns the
// holder to Start/Finish around the tool's work.
func AddFlags(fs *flag.FlagSet) *Flags {
	f := &Flags{}
	fs.StringVar(&f.Metrics, "metrics", "", "write a telemetry snapshot (counters, histograms, stage percentiles) as JSON to `file` (- for stdout)")
	fs.StringVar(&f.Trace, "trace", "", "arm the hijack flight recorder and write a Chrome trace_event `file` (open in chrome://tracing)")
	fs.IntVar(&f.TraceEvents, "trace-events", DefaultTraceEvents, "flight-recorder ring capacity in control-transfer events")
	fs.StringVar(&f.Listen, "listen", "", "serve the live observability surface (/metrics, /snapshot, /events, /spans, /trace, pprof) on `addr` while the tool runs (e.g. 127.0.0.1:8089; :0 picks a port)")
	fs.StringVar(&f.CPUProfile, "cpuprofile", "", "write a CPU profile to `file`")
	fs.StringVar(&f.MemProfile, "memprofile", "", "write a heap profile to `file`")
	fs.StringVar(&f.BlockProfile, "blockprofile", "", "write a goroutine blocking profile to `file`")
	fs.StringVar(&f.MutexProfile, "mutexprofile", "", "write a mutex contention profile to `file`")
	return f
}

// Active reports whether any telemetry output was requested.
func (f *Flags) Active() bool { return f.Metrics != "" || f.Trace != "" || f.Listen != "" }

// Start enables telemetry/tracing per the parsed flags and arms the
// requested pprof profiles. Call before constructing the engines to be
// instrumented; pair with Finish.
func (f *Flags) Start() error {
	if f.Metrics != "" || f.Listen != "" {
		Enable()
	}
	if f.Trace != "" {
		EnableTrace(f.TraceEvents)
	}
	stop, err := StartProfiles(f.CPUProfile, f.MemProfile, f.BlockProfile, f.MutexProfile)
	if err != nil {
		return err
	}
	f.stopProfiles = stop
	return nil
}

// Finish writes the requested outputs: the metrics snapshot (annotated
// with run, the tool's self-description, and any per-scenario stage
// aggregates), the Chrome trace built from recorded spans plus ctl (the
// flight-recorder events the tool collected), and the pprof profiles.
// Safe to call once after the work completes; run and ctl may be nil.
func (f *Flags) Finish(run *RunInfo, scenarios []ScenarioStages, ctl []ControlEvent) error {
	if f.Metrics != "" {
		snap := TakeSnapshot()
		snap.Run = run
		snap.Scenarios = scenarios
		snap.TraceEvents = len(ctl)
		if err := WriteSnapshotFile(f.Metrics, snap); err != nil {
			return err
		}
	}
	if f.Trace != "" {
		if err := WriteChromeTraceFile(f.Trace, Spans(), ctl); err != nil {
			return err
		}
	}
	if f.stopProfiles != nil {
		if err := f.stopProfiles(); err != nil {
			return err
		}
		f.stopProfiles = nil
	}
	return nil
}
