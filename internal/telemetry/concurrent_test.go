package telemetry

import (
	"sync"
	"testing"
)

// TestTakeSnapshotConcurrent: snapshots taken while workers are
// mutating counters, histograms, spans and events must be internally
// sane and monotonic — each field never steps backwards between
// consecutive snapshots and never overshoots the true total. Runs under
// -race in scripts/check.sh; this is the contract the obs server's
// periodic sampler leans on.
func TestTakeSnapshotConcurrent(t *testing.T) {
	t.Cleanup(Disable)
	Enable()
	const workers = 4
	const perWorker = 20000
	const eventEvery = 64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			h := Handle()
			for i := 0; i < perWorker; i++ {
				h.Inc(CtrEmuRuns)
				h.Observe(HistEmuRunInstr, uint64(i&1023))
				if i%eventEvery == 0 {
					LogEvent(EvInfo, "campaign", "verdict", "", uint64(i), 1, 0)
					RecordSpan(Span{Stage: "verdict", Worker: w, Attempt: uint64(i)})
				}
			}
		}(w)
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()

	var lastRuns, lastCount, lastSum, lastEvents uint64
	for running := true; running; {
		select {
		case <-done:
			running = false
		default:
		}
		snap := TakeSnapshot()
		runs := snap.Counters[CtrEmuRuns.Name()]
		h := snap.Histograms[HistEmuRunInstr.Name()]
		if runs < lastRuns || h.Count < lastCount || h.Sum < lastSum || snap.EventCount < lastEvents {
			t.Fatalf("snapshot stepped backwards: runs %d<%d count %d<%d sum %d<%d events %d<%d",
				runs, lastRuns, h.Count, lastCount, h.Sum, lastSum, snap.EventCount, lastEvents)
		}
		if runs > workers*perWorker {
			t.Fatalf("counter overshot: %d > %d", runs, workers*perWorker)
		}
		lastRuns, lastCount, lastSum, lastEvents = runs, h.Count, h.Sum, snap.EventCount
	}

	final := TakeSnapshot()
	if got := final.Counters[CtrEmuRuns.Name()]; got != workers*perWorker {
		t.Errorf("final emu_runs = %d, want %d", got, workers*perWorker)
	}
	h := final.Histograms[HistEmuRunInstr.Name()]
	if h.Count != workers*perWorker {
		t.Errorf("final histogram count = %d, want %d", h.Count, workers*perWorker)
	}
	var bucketSum uint64
	for _, b := range h.Buckets {
		bucketSum += b
	}
	if bucketSum != h.Count {
		t.Errorf("final bucket sum %d != count %d", bucketSum, h.Count)
	}
	wantEvents := uint64(workers * ((perWorker + eventEvery - 1) / eventEvery))
	if final.EventCount != wantEvents {
		t.Errorf("final event count = %d, want %d", final.EventCount, wantEvents)
	}
}
