package telemetry

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// StartProfiles wires the pprof family: CPU profile to cpuPath, heap
// profile to memPath, blocking profile to blockPath and mutex-contention
// profile to mutexPath. Any path may be empty to skip that profile. The
// returned stop function finishes every armed profile and must be called
// exactly once (defer it).
//
//	go run ./cmd/campaign -preset fleet -devices 32 -cpuprofile cpu.out
//	go tool pprof cpu.out
func StartProfiles(cpuPath, memPath, blockPath, mutexPath string) (stop func() error, err error) {
	var cpuFile *os.File
	if cpuPath != "" {
		cpuFile, err = os.Create(cpuPath)
		if err != nil {
			return nil, fmt.Errorf("cpu profile: %w", err)
		}
		if err := pprof.StartCPUProfile(cpuFile); err != nil {
			cpuFile.Close()
			return nil, fmt.Errorf("cpu profile: %w", err)
		}
	}
	if blockPath != "" {
		runtime.SetBlockProfileRate(1)
	}
	if mutexPath != "" {
		runtime.SetMutexProfileFraction(1)
	}
	return func() error {
		if cpuFile != nil {
			pprof.StopCPUProfile()
			if err := cpuFile.Close(); err != nil {
				return fmt.Errorf("cpu profile: %w", err)
			}
		}
		if memPath != "" {
			f, err := os.Create(memPath)
			if err != nil {
				return fmt.Errorf("mem profile: %w", err)
			}
			runtime.GC() // settle the heap so the profile shows live objects
			if err := pprof.WriteHeapProfile(f); err != nil {
				f.Close()
				return fmt.Errorf("mem profile: %w", err)
			}
			if err := f.Close(); err != nil {
				return fmt.Errorf("mem profile: %w", err)
			}
		}
		if blockPath != "" {
			if err := writeNamedProfile("block", blockPath); err != nil {
				return err
			}
			runtime.SetBlockProfileRate(0)
		}
		if mutexPath != "" {
			if err := writeNamedProfile("mutex", mutexPath); err != nil {
				return err
			}
			runtime.SetMutexProfileFraction(0)
		}
		return nil
	}, nil
}

func writeNamedProfile(name, path string) error {
	p := pprof.Lookup(name)
	if p == nil {
		return fmt.Errorf("%s profile: not available", name)
	}
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("%s profile: %w", name, err)
	}
	if err := p.WriteTo(f, 0); err != nil {
		f.Close()
		return fmt.Errorf("%s profile: %w", name, err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("%s profile: %w", name, err)
	}
	return nil
}
