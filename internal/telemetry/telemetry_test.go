package telemetry

import (
	"testing"
)

// TestCounterMergeAcrossShards: increments spread over many handles sum
// to the same totals at snapshot time — sharding is invisible to readers.
func TestCounterMergeAcrossShards(t *testing.T) {
	Enable()
	t.Cleanup(Disable)

	// Deal more handles than there are shards so several alias.
	handles := make([]*Shard, 3*numShards)
	for i := range handles {
		handles[i] = Handle()
		if handles[i] == nil {
			t.Fatal("Handle returned nil while enabled")
		}
	}
	for i, h := range handles {
		h.Inc(CtrEmuRuns)
		h.Add(CtrEmuInstr, uint64(i))
	}
	Inc(CtrDNSHijacked)
	Add(CtrNetDropped, 7)

	snap := TakeSnapshot()
	if got, want := snap.Counters[CtrEmuRuns.Name()], uint64(len(handles)); got != want {
		t.Errorf("%s = %d, want %d", CtrEmuRuns.Name(), got, want)
	}
	wantInstr := uint64(len(handles)*(len(handles)-1)) / 2
	if got := snap.Counters[CtrEmuInstr.Name()]; got != wantInstr {
		t.Errorf("%s = %d, want %d", CtrEmuInstr.Name(), got, wantInstr)
	}
	if got := snap.Counters[CtrDNSHijacked.Name()]; got != 1 {
		t.Errorf("%s = %d, want 1", CtrDNSHijacked.Name(), got)
	}
	if got := snap.Counters[CtrNetDropped.Name()]; got != 7 {
		t.Errorf("%s = %d, want 7", CtrNetDropped.Name(), got)
	}
}

// TestEnableResets: Enable while enabled installs a fresh state — the
// documented reset between measured runs.
func TestEnableResets(t *testing.T) {
	Enable()
	t.Cleanup(Disable)
	Inc(CtrEmuFaults)
	Enable()
	if got := TakeSnapshot().Counters[CtrEmuFaults.Name()]; got != 0 {
		t.Errorf("%s after re-Enable = %d, want 0", CtrEmuFaults.Name(), got)
	}
}

// TestDisabledIsInert: every write path is a no-op without Enable, and a
// snapshot still carries the full zero-valued schema.
func TestDisabledIsInert(t *testing.T) {
	Disable()
	if Handle() != nil {
		t.Error("Handle while disabled should be nil")
	}
	Inc(CtrEmuRuns)
	Add(CtrEmuInstr, 5)
	RecordSpan(Span{Stage: "recon"})
	snap := TakeSnapshot()
	if len(snap.Counters) != int(numCounters) || len(snap.Histograms) != int(numHists) {
		t.Fatalf("snapshot schema incomplete: %d counters, %d histograms",
			len(snap.Counters), len(snap.Histograms))
	}
	for name, v := range snap.Counters {
		if v != 0 {
			t.Errorf("counter %s = %d while disabled, want 0", name, v)
		}
	}
	if Spans() != nil {
		t.Error("Spans while disabled should be nil")
	}
}

// TestHistogramBucketPercentiles: merged log₂ buckets yield percentiles
// that are exact functions of the observed values.
func TestHistogramBucketPercentiles(t *testing.T) {
	Enable()
	t.Cleanup(Disable)
	h := Handle()
	// 90 small values in bucket 3 ([4,8)), 10 large in bucket 11 ([1024,2048)).
	for i := 0; i < 90; i++ {
		h.Observe(HistEmuRunInstr, 5)
	}
	for i := 0; i < 10; i++ {
		h.Observe(HistEmuRunInstr, 1500)
	}
	hs := TakeSnapshot().Histograms[HistEmuRunInstr.Name()]
	if hs.Count != 100 || hs.Sum != 90*5+10*1500 {
		t.Fatalf("count=%d sum=%d, want 100 / %d", hs.Count, hs.Sum, 90*5+10*1500)
	}
	// p50 lands in the small bucket (upper bound 7), p95/p99 in the large
	// one (upper bound 2047).
	if hs.P50 != 7 || hs.P95 != 2047 || hs.P99 != 2047 {
		t.Errorf("pct = %+v, want p50=7 p95=2047 p99=2047", hs.Pct)
	}
}

// TestPercentilesNearestRank pins the exact order-statistic helper used
// for the deterministic per-scenario aggregates.
func TestPercentilesNearestRank(t *testing.T) {
	if got := (Percentiles(nil)); got != (Pct{}) {
		t.Errorf("empty = %+v, want zero", got)
	}
	samples := make([]uint64, 100)
	for i := range samples {
		samples[i] = uint64(100 - i) // unsorted input: 100..1
	}
	got := Percentiles(samples)
	if got.P50 != 50 || got.P95 != 95 || got.P99 != 99 {
		t.Errorf("pct over 1..100 = %+v, want 50/95/99", got)
	}
	if samples[0] != 100 {
		t.Error("Percentiles must not reorder its input")
	}
}

// TestSpanRingWrap: the span ring keeps the newest spans, oldest-first.
func TestSpanRingWrap(t *testing.T) {
	var sr spanRing
	sr.init(4)
	for i := 0; i < 10; i++ {
		sr.record(Span{Start: int64(i)})
	}
	got := sr.snapshot()
	if len(got) != 4 {
		t.Fatalf("held %d spans, want 4", len(got))
	}
	for i, s := range got {
		if want := int64(6 + i); s.Start != want {
			t.Errorf("span[%d].Start = %d, want %d", i, s.Start, want)
		}
	}
}
