package telemetry

import (
	"sync"
	"time"
)

// Span is one timed stage of one exploit attempt: the campaign engine
// records recon → payload → delivery → emulated parse → verdict per
// device. Start is nanoseconds since the process-wide span epoch (the
// first Enable), so spans from different workers share a timeline.
type Span struct {
	Scenario string `json:"scenario"`
	Device   string `json:"device"`
	Stage    string `json:"stage"`
	Worker   int    `json:"worker"`
	Start    int64  `json:"start_ns"`
	Dur      int64  `json:"dur_ns"`
	Instr    uint64 `json:"instr,omitempty"` // emulated instructions, parse stage only
}

// spanRingCap bounds the span ring: a 64-device × 12-scenario sweep at
// five stages per attempt fits four times over.
const spanRingCap = 16384

// spanEpoch anchors span timestamps; set once, on first use.
var (
	spanEpochOnce sync.Once
	spanEpoch     time.Time
)

// SpanNow returns the current span-timeline timestamp in nanoseconds.
func SpanNow() int64 {
	spanEpochOnce.Do(func() { spanEpoch = time.Now() })
	return time.Since(spanEpoch).Nanoseconds()
}

// spanRing is a mutex-guarded bounded ring of spans. Spans are recorded
// a handful of times per attempt (not per instruction), so a plain
// mutex is cheap and keeps the ring trivially correct.
type spanRing struct {
	mu   sync.Mutex
	ring []Span
	next uint64
}

func (sr *spanRing) init(n int) { sr.ring = make([]Span, n) }

func (sr *spanRing) record(s Span) {
	sr.mu.Lock()
	sr.ring[sr.next%uint64(len(sr.ring))] = s
	sr.next++
	sr.mu.Unlock()
}

func (sr *spanRing) snapshot() []Span {
	sr.mu.Lock()
	defer sr.mu.Unlock()
	if sr.next == 0 {
		return nil
	}
	n := uint64(len(sr.ring))
	held := sr.next
	if held > n {
		held = n
	}
	out := make([]Span, 0, held)
	start := uint64(0)
	if sr.next > n {
		start = sr.next - n
	}
	for i := start; i < sr.next; i++ {
		out = append(out, sr.ring[i%n])
	}
	return out
}

// RecordSpan stores one stage span when telemetry is enabled.
func RecordSpan(s Span) {
	st := cur.Load()
	if st == nil {
		return
	}
	st.spans.record(s)
}

// Spans returns the recorded spans oldest-first (nil when disabled or
// empty).
func Spans() []Span {
	st := cur.Load()
	if st == nil {
		return nil
	}
	return st.spans.snapshot()
}
