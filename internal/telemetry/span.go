package telemetry

import (
	"sync"
	"time"
)

// Span is one timed stage of one exploit attempt: the campaign engine
// records recon → payload → delivery → emulated parse → verdict per
// device. Start is nanoseconds since the process-wide span epoch (the
// first Enable), so spans from different workers share a timeline.
// Attempt is the splitmix64-derived per-device seed, threaded from the
// campaign worker through the exploit stages, the kernel and the netsim
// shards so one attempt's spans correlate across layers. Track names
// the producing subsystem ("" = campaign stage, TrackNetsim = netsim
// epoch) and selects the trace lane group on export.
type Span struct {
	Scenario string `json:"scenario"`
	Device   string `json:"device"`
	Stage    string `json:"stage"`
	Worker   int    `json:"worker"`
	Start    int64  `json:"start_ns"`
	Dur      int64  `json:"dur_ns"`
	Instr    uint64 `json:"instr,omitempty"` // emulated instructions, parse stage only
	Attempt  uint64 `json:"attempt,omitempty"`
	Track    string `json:"track,omitempty"`
}

// TrackNetsim marks spans recorded by the network simulator: one span
// per delivery epoch, Worker carrying the shard id (0 when sequential)
// and Instr the epoch's batch size.
const TrackNetsim = "netsim"

// spanRingCap bounds the span ring: a 64-device × 12-scenario sweep at
// five stages per attempt fits four times over.
const spanRingCap = 16384

// spanEpoch anchors span timestamps; set once, on first use.
var (
	spanEpochOnce sync.Once
	spanEpoch     time.Time
)

// SpanNow returns the current span-timeline timestamp in nanoseconds.
func SpanNow() int64 {
	spanEpochOnce.Do(func() { spanEpoch = time.Now() })
	return time.Since(spanEpoch).Nanoseconds()
}

// spanRing is a mutex-guarded bounded ring of spans. Spans are recorded
// a handful of times per attempt (not per instruction), so a plain
// mutex is cheap and keeps the ring trivially correct.
type spanRing struct {
	mu   sync.Mutex
	ring []Span
	next uint64
}

func (sr *spanRing) init(n int) { sr.ring = make([]Span, n) }

func (sr *spanRing) record(s Span) {
	sr.mu.Lock()
	sr.ring[sr.next%uint64(len(sr.ring))] = s
	sr.next++
	sr.mu.Unlock()
}

func (sr *spanRing) snapshot() []Span {
	sr.mu.Lock()
	defer sr.mu.Unlock()
	if sr.next == 0 {
		return nil
	}
	n := uint64(len(sr.ring))
	held := sr.next
	if held > n {
		held = n
	}
	out := make([]Span, 0, held)
	start := uint64(0)
	if sr.next > n {
		start = sr.next - n
	}
	for i := start; i < sr.next; i++ {
		out = append(out, sr.ring[i%n])
	}
	return out
}

// since copies out spans recorded after the cursor (a count previously
// returned by since; 0 = from the beginning), oldest-first, and returns
// the new cursor. Spans evicted from the ring before the poll are lost,
// which is the ring's contract.
func (sr *spanRing) since(after uint64) ([]Span, uint64) {
	sr.mu.Lock()
	defer sr.mu.Unlock()
	if sr.next <= after {
		return nil, sr.next
	}
	n := uint64(len(sr.ring))
	start := after
	if sr.next > n && sr.next-n > start {
		start = sr.next - n
	}
	out := make([]Span, 0, sr.next-start)
	for i := start; i < sr.next; i++ {
		out = append(out, sr.ring[i%n])
	}
	return out, sr.next
}

// RecordSpan stores one stage span when telemetry is enabled.
func RecordSpan(s Span) {
	st := cur.Load()
	if st == nil {
		return
	}
	st.spans.record(s)
}

// Spans returns the recorded spans oldest-first (nil when disabled or
// empty).
func Spans() []Span {
	st := cur.Load()
	if st == nil {
		return nil
	}
	return st.spans.snapshot()
}

// SpansSince returns spans recorded after the cursor plus the new
// cursor — the poll primitive behind the obs server's /spans SSE
// stream. Disabled telemetry returns (nil, after) so pollers idle.
func SpansSince(after uint64) ([]Span, uint64) {
	st := cur.Load()
	if st == nil {
		return nil, after
	}
	return st.spans.since(after)
}
