package telemetry

import (
	"encoding/json"
	"fmt"
	"sync"
)

// EventLevel orders structured events by severity. The log keeps events
// at or above the active threshold (EvInfo by default); everything else
// is dropped at the call site after one atomic load and one compare.
type EventLevel uint8

const (
	EvDebug EventLevel = iota
	EvInfo
	EvWarn

	numEventLevels
)

var eventLevelNames = [numEventLevels]string{"debug", "info", "warn"}

// String returns the lowercase level name.
func (l EventLevel) String() string {
	if l < numEventLevels {
		return eventLevelNames[l]
	}
	return fmt.Sprintf("level(%d)", uint8(l))
}

// ParseEventLevel maps a level name back to its EventLevel.
func ParseEventLevel(s string) (EventLevel, bool) {
	for i, name := range eventLevelNames {
		if s == name {
			return EventLevel(i), true
		}
	}
	return 0, false
}

// MarshalJSON renders the level as its name so snapshots and SSE frames
// stay readable without a decoder table.
func (l EventLevel) MarshalJSON() ([]byte, error) {
	return json.Marshal(l.String())
}

// UnmarshalJSON accepts either the level name or the raw integer (the
// schema-v1 era never serialized levels, so only the name form is ever
// written; the integer form keeps hand-edited fixtures working).
func (l *EventLevel) UnmarshalJSON(b []byte) error {
	var s string
	if err := json.Unmarshal(b, &s); err == nil {
		if v, ok := ParseEventLevel(s); ok {
			*l = v
			return nil
		}
		return fmt.Errorf("telemetry: unknown event level %q", s)
	}
	var n uint8
	if err := json.Unmarshal(b, &n); err != nil {
		return err
	}
	*l = EventLevel(n)
	return nil
}

// Event is one structured log entry. Every field is a scalar or a
// static string chosen by the call site, so recording an event performs
// no allocation and no formatting — rendering happens at export time.
// Seq is a monotonic per-enablement sequence number (1-based) that
// consumers use as a resume cursor; TS is nanoseconds on the span
// timeline, so events and stage spans interleave correctly.
type Event struct {
	Seq     uint64     `json:"seq"`
	TS      int64      `json:"ts_ns"`
	Level   EventLevel `json:"level"`
	Cat     string     `json:"cat"`
	Msg     string     `json:"msg"`
	Scope   string     `json:"scope,omitempty"`
	Attempt uint64     `json:"attempt,omitempty"`
	V0      uint64     `json:"v0,omitempty"`
	V1      uint64     `json:"v1,omitempty"`
}

// eventRingCap bounds the event ring: a fleet campaign emits a handful
// of info events per device, so thousands of devices stay resident.
const eventRingCap = 8192

// eventRing is a mutex-guarded bounded ring of events, the EventLog
// behind LogEvent. Same shape and same contract as spanRing: bounded,
// oldest-evicted, cheap enough that a plain mutex wins.
type eventRing struct {
	mu   sync.Mutex
	ring []Event
	next uint64
}

func (er *eventRing) init(n int) { er.ring = make([]Event, n) }

func (er *eventRing) record(e Event) uint64 {
	er.mu.Lock()
	er.next++
	e.Seq = er.next
	er.ring[(er.next-1)%uint64(len(er.ring))] = e
	er.mu.Unlock()
	return e.Seq
}

// since copies out events with Seq > after, oldest-first, and returns
// the newest sequence number seen (== after when nothing new).
func (er *eventRing) since(after uint64) ([]Event, uint64) {
	er.mu.Lock()
	defer er.mu.Unlock()
	if er.next <= after {
		return nil, er.next
	}
	n := uint64(len(er.ring))
	start := after
	if er.next > n && er.next-n > start {
		start = er.next - n // older entries were evicted
	}
	out := make([]Event, 0, er.next-start)
	for seq := start + 1; seq <= er.next; seq++ {
		out = append(out, er.ring[(seq-1)%n])
	}
	return out, er.next
}

func (er *eventRing) count() uint64 {
	er.mu.Lock()
	defer er.mu.Unlock()
	return er.next
}

// evMin is the active level threshold, stored on the state so Enable
// resets it along with everything else. Loaded once per LogEvent.
//
// SetEventLevel adjusts the threshold of the live state; it is a no-op
// while telemetry is disabled.
func SetEventLevel(l EventLevel) {
	if s := cur.Load(); s != nil {
		s.evMin.Store(uint32(l))
	}
}

// EventLevelNow returns the active threshold (EvInfo when disabled).
func EventLevelNow() EventLevel {
	if s := cur.Load(); s != nil {
		return EventLevel(s.evMin.Load())
	}
	return EvInfo
}

// LogEvent records one structured event when telemetry is enabled and
// the level clears the threshold. The disabled path is one predicted
// branch — the same contract as the counters — and the enabled path
// never allocates: cat/msg/scope must be static strings or strings the
// caller already holds, and the numeric slots carry the payload.
func LogEvent(level EventLevel, cat, msg, scope string, attempt, v0, v1 uint64) {
	s := cur.Load()
	if s == nil {
		return
	}
	if uint32(level) < s.evMin.Load() {
		return
	}
	s.events.record(Event{
		TS:      SpanNow(),
		Level:   level,
		Cat:     cat,
		Msg:     msg,
		Scope:   scope,
		Attempt: attempt,
		V0:      v0,
		V1:      v1,
	})
}

// Events returns every retained event oldest-first (nil when disabled
// or empty).
func Events() []Event {
	ev, _ := EventsSince(0)
	return ev
}

// EventsSince returns events with Seq > after plus the newest sequence
// number, the poll cursor for the SSE stream. When telemetry is
// disabled it returns (nil, after) so pollers idle harmlessly.
func EventsSince(after uint64) ([]Event, uint64) {
	s := cur.Load()
	if s == nil {
		return nil, after
	}
	return s.events.since(after)
}

// EventCount returns the total number of events recorded into the
// current state (including any evicted from the ring).
func EventCount() uint64 {
	s := cur.Load()
	if s == nil {
		return 0
	}
	return s.events.count()
}
