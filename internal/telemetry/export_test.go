package telemetry

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden files")

// goldenSnapshot builds a fully-populated snapshot from fixed inputs.
// Every value is deterministic, so its JSON rendering doubles as the
// schema contract.
func goldenSnapshot() Snapshot {
	Enable()
	h := Handle()
	h.Add(CtrEmuRuns, 4)
	h.Add(CtrEmuInstr, 1234)
	Inc(CtrX86DecodeHit)
	Add(CtrX86DecodeMiss, 2)
	Inc(CtrReconBuild)
	Add(CtrReconHit, 3)
	Inc(CtrPoolRecycle)
	Inc(CtrPoolFresh)
	Inc(CtrDNSHijacked)
	for _, v := range []uint64{0, 5, 5, 300, 70000} {
		h.Observe(HistEmuRunInstr, v)
	}
	h.Observe(HistNetQueueDepth, 2)
	RecordSpan(Span{Scenario: "x86s/code-injection/none", Device: "dev00",
		Stage: "recon", Worker: 0, Start: 100, Dur: 50, Attempt: 0x9e3779b97f4a7c15})
	RecordSpan(Span{Scenario: "x86s/code-injection/none", Device: "dev00",
		Stage: "deliver", Worker: 0, Start: 150, Dur: 900, Instr: 1234, Attempt: 0x9e3779b97f4a7c15})
	LogEvent(EvInfo, "campaign", "run start", "", 0, 1, 4)
	LogEvent(EvWarn, "kernel", "run fault", "dev00", 0x9e3779b97f4a7c15, 0x8048123, 1234)
	LogEvent(EvDebug, "kernel", "dropped below threshold", "", 0, 0, 0)

	snap := TakeSnapshot()
	// Event timestamps are wall-clock; pin them so the golden is
	// byte-stable. Seq/level/payload flow through the real pipeline.
	for i := range snap.Events {
		snap.Events[i].TS = int64(1000 * (i + 1))
	}
	snap.Run = &RunInfo{Tool: "campaign", Workers: 4, RootSeed: 42,
		ReconSeed: 1001, Scenarios: 1, Devices: 4}
	snap.Scenarios = []ScenarioStages{{
		Label: "x86s/code-injection/none", Devices: 4,
		ParseInstr: Pct{P50: 300, P95: 1234, P99: 1234},
	}}
	snap.TraceEvents = 3
	return snap
}

// TestSnapshotSchemaGolden pins the exported JSON byte-for-byte. Any
// field rename, reorder or type change fails here; bump SchemaVersion
// and regenerate with -update when the change is intentional.
func TestSnapshotSchemaGolden(t *testing.T) {
	t.Cleanup(Disable)
	snap := goldenSnapshot()
	var buf bytes.Buffer
	if err := WriteSnapshot(&buf, snap); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join("testdata", "snapshot.golden.json")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read golden (run with -update to regenerate): %v", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("snapshot JSON drifted from golden schema (schema v%d):\n--- got ---\n%s\n--- want ---\n%s",
			SchemaVersion, buf.Bytes(), want)
	}
	// The golden file must carry the pinned schema version.
	var back Snapshot
	if err := json.Unmarshal(want, &back); err != nil {
		t.Fatalf("golden does not round-trip: %v", err)
	}
	if back.SchemaVersion != SchemaVersion {
		t.Errorf("golden schema_version = %d, want %d", back.SchemaVersion, SchemaVersion)
	}
}

// TestSnapshotV1BackCompat: the preserved schema-v1 golden must keep
// decoding into the current Snapshot struct — new v2 fields default to
// zero, nothing recorded in v1 is lost.
func TestSnapshotV1BackCompat(t *testing.T) {
	b, err := os.ReadFile(filepath.Join("testdata", "snapshot_v1.golden.json"))
	if err != nil {
		t.Fatalf("v1 golden missing: %v", err)
	}
	var snap Snapshot
	if err := json.Unmarshal(b, &snap); err != nil {
		t.Fatalf("v1 snapshot no longer decodes: %v", err)
	}
	if snap.SchemaVersion != 1 {
		t.Errorf("v1 golden schema_version = %d, want 1", snap.SchemaVersion)
	}
	if got := snap.Counters["emu_runs"]; got != 4 {
		t.Errorf("v1 emu_runs = %d, want 4", got)
	}
	h, ok := snap.Histograms["emu_run_instructions"]
	if !ok || h.Count != 5 {
		t.Errorf("v1 emu_run_instructions = %+v (present=%v), want count 5", h, ok)
	}
	if h.Buckets != ([histBuckets]uint64{}) {
		t.Errorf("v1 snapshot decoded nonzero buckets: %v", h.Buckets)
	}
	if snap.EventCount != 0 || len(snap.Events) != 0 {
		t.Errorf("v1 snapshot decoded events: count=%d len=%d", snap.EventCount, len(snap.Events))
	}
}

// TestWriteChromeTrace: the trace export is a valid trace_event JSON
// array with spans as duration events and control transfers as instants.
func TestWriteChromeTrace(t *testing.T) {
	spans := []Span{
		{Scenario: "s", Device: "d", Stage: "payload", Worker: 2, Start: 1000, Dur: 500, Attempt: 7},
		{Stage: "epoch", Worker: 5, Start: 1100, Dur: 40, Instr: 12, Attempt: 7, Track: TrackNetsim},
	}
	ctl := []ControlEvent{
		{Kind: CtlReturn, From: 0x8048100, To: 0x6000, Instr: 41},
		{Kind: CtlSyscall, From: 0x6010, To: 11, Instr: 44},
	}
	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, spans, ctl); err != nil {
		t.Fatal(err)
	}
	var events []map[string]any
	if err := json.Unmarshal(buf.Bytes(), &events); err != nil {
		t.Fatalf("trace is not a JSON array: %v", err)
	}
	var durs, instants, threadNames int
	for _, ev := range events {
		switch ev["ph"] {
		case "X":
			durs++
			args := ev["args"].(map[string]any)
			if args["attempt"] != "0x0000000000000007" {
				t.Errorf("span attempt arg = %v, want hex attempt ID", args["attempt"])
			}
			switch ev["pid"] {
			case float64(1):
				if ev["tid"] != float64(2) {
					t.Errorf("stage span tid = %v, want worker 2", ev["tid"])
				}
			case float64(3):
				if ev["tid"] != float64(5) {
					t.Errorf("netsim span tid = %v, want shard 5", ev["tid"])
				}
			default:
				t.Errorf("span on unexpected pid %v", ev["pid"])
			}
		case "i":
			instants++
		case "M":
			if ev["name"] == "thread_name" {
				threadNames++
			}
		}
	}
	if durs != 2 || instants != 2 {
		t.Errorf("trace has %d duration / %d instant events, want 2/2:\n%s", durs, instants, buf.String())
	}
	if threadNames != 2 {
		t.Errorf("trace has %d thread_name lanes, want 2 (worker 2, shard 5)", threadNames)
	}
}

// TestFormatters: terminal renderings stay greppable.
func TestFormatters(t *testing.T) {
	t.Cleanup(Disable)
	out := FormatSnapshot(goldenSnapshot())
	for _, want := range []string{
		"schema v2", "tool=campaign", "emu_runs", "emu_run_instructions",
		"x86s/code-injection/none", "flight-recorder events: 3",
		"events recorded: 2", "run fault",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("FormatSnapshot missing %q:\n%s", want, out)
		}
	}
	tr := FormatControlTrace([]ControlEvent{{Kind: CtlReturn, From: 0x8048100, To: 0x6000, Instr: 41}})
	if !strings.Contains(tr, "ret") || !strings.Contains(tr, "0x00006000") {
		t.Errorf("FormatControlTrace unexpected:\n%s", tr)
	}
}
