package telemetry

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden files")

// goldenSnapshot builds a fully-populated snapshot from fixed inputs.
// Every value is deterministic, so its JSON rendering doubles as the
// schema contract.
func goldenSnapshot() Snapshot {
	Enable()
	h := Handle()
	h.Add(CtrEmuRuns, 4)
	h.Add(CtrEmuInstr, 1234)
	Inc(CtrX86DecodeHit)
	Add(CtrX86DecodeMiss, 2)
	Inc(CtrReconBuild)
	Add(CtrReconHit, 3)
	Inc(CtrPoolRecycle)
	Inc(CtrPoolFresh)
	Inc(CtrDNSHijacked)
	for _, v := range []uint64{0, 5, 5, 300, 70000} {
		h.Observe(HistEmuRunInstr, v)
	}
	h.Observe(HistNetQueueDepth, 2)
	RecordSpan(Span{Scenario: "x86s/code-injection/none", Device: "dev00",
		Stage: "recon", Worker: 0, Start: 100, Dur: 50})
	RecordSpan(Span{Scenario: "x86s/code-injection/none", Device: "dev00",
		Stage: "deliver", Worker: 0, Start: 150, Dur: 900, Instr: 1234})

	snap := TakeSnapshot()
	snap.Run = &RunInfo{Tool: "campaign", Workers: 4, RootSeed: 42,
		ReconSeed: 1001, Scenarios: 1, Devices: 4}
	snap.Scenarios = []ScenarioStages{{
		Label: "x86s/code-injection/none", Devices: 4,
		ParseInstr: Pct{P50: 300, P95: 1234, P99: 1234},
	}}
	snap.TraceEvents = 3
	return snap
}

// TestSnapshotSchemaGolden pins the exported JSON byte-for-byte. Any
// field rename, reorder or type change fails here; bump SchemaVersion
// and regenerate with -update when the change is intentional.
func TestSnapshotSchemaGolden(t *testing.T) {
	t.Cleanup(Disable)
	snap := goldenSnapshot()
	var buf bytes.Buffer
	if err := WriteSnapshot(&buf, snap); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join("testdata", "snapshot.golden.json")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read golden (run with -update to regenerate): %v", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("snapshot JSON drifted from golden schema (schema v%d):\n--- got ---\n%s\n--- want ---\n%s",
			SchemaVersion, buf.Bytes(), want)
	}
	// The golden file must carry the pinned schema version.
	var back Snapshot
	if err := json.Unmarshal(want, &back); err != nil {
		t.Fatalf("golden does not round-trip: %v", err)
	}
	if back.SchemaVersion != SchemaVersion {
		t.Errorf("golden schema_version = %d, want %d", back.SchemaVersion, SchemaVersion)
	}
}

// TestWriteChromeTrace: the trace export is a valid trace_event JSON
// array with spans as duration events and control transfers as instants.
func TestWriteChromeTrace(t *testing.T) {
	spans := []Span{{Scenario: "s", Device: "d", Stage: "payload", Worker: 2, Start: 1000, Dur: 500}}
	ctl := []ControlEvent{
		{Kind: CtlReturn, From: 0x8048100, To: 0x6000, Instr: 41},
		{Kind: CtlSyscall, From: 0x6010, To: 11, Instr: 44},
	}
	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, spans, ctl); err != nil {
		t.Fatal(err)
	}
	var events []map[string]any
	if err := json.Unmarshal(buf.Bytes(), &events); err != nil {
		t.Fatalf("trace is not a JSON array: %v", err)
	}
	var durs, instants int
	for _, ev := range events {
		switch ev["ph"] {
		case "X":
			durs++
			if ev["tid"] != float64(2) {
				t.Errorf("span tid = %v, want worker 2", ev["tid"])
			}
		case "i":
			instants++
		}
	}
	if durs != 1 || instants != 2 {
		t.Errorf("trace has %d duration / %d instant events, want 1/2:\n%s", durs, instants, buf.String())
	}
}

// TestFormatters: terminal renderings stay greppable.
func TestFormatters(t *testing.T) {
	t.Cleanup(Disable)
	out := FormatSnapshot(goldenSnapshot())
	for _, want := range []string{
		"schema v1", "tool=campaign", "emu_runs", "emu_run_instructions",
		"x86s/code-injection/none", "flight-recorder events: 3",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("FormatSnapshot missing %q:\n%s", want, out)
		}
	}
	tr := FormatControlTrace([]ControlEvent{{Kind: CtlReturn, From: 0x8048100, To: 0x6000, Instr: 41}})
	if !strings.Contains(tr, "ret") || !strings.Contains(tr, "0x00006000") {
		t.Errorf("FormatControlTrace unexpected:\n%s", tr)
	}
}
