package telemetry

import "testing"

// TestTraceRingWrap: once full, the flight recorder overwrites the
// oldest events and Events returns the surviving tail oldest-first —
// after a long benign run the ring still ends with the gadget chain.
func TestTraceRingWrap(t *testing.T) {
	r := NewControlRecorder(8)
	for i := 0; i < 20; i++ {
		r.Record(CtlReturn, uint32(i), uint32(i+1), uint64(i))
	}
	if r.Total() != 20 || r.Len() != 8 {
		t.Fatalf("total=%d len=%d, want 20/8", r.Total(), r.Len())
	}
	ev := r.Events()
	if len(ev) != 8 {
		t.Fatalf("Events returned %d, want 8", len(ev))
	}
	for i, e := range ev {
		if want := uint64(12 + i); e.Instr != want {
			t.Errorf("event[%d].Instr = %d, want %d", i, e.Instr, want)
		}
	}
	r.Reset()
	if r.Len() != 0 || r.Events() != nil {
		t.Error("Reset did not empty the recorder")
	}
}

// TestRecordZeroAllocs: Record is on the emulator's per-control-transfer
// path and must never allocate, full ring or not.
func TestRecordZeroAllocs(t *testing.T) {
	r := NewControlRecorder(16)
	var i uint64
	allocs := testing.AllocsPerRun(1000, func() {
		r.Record(CtlJump, 0x1000, 0x2000, i)
		i++
	})
	if allocs != 0 {
		t.Errorf("Record allocates %.1f objects per event, want 0", allocs)
	}
}

// TestRecorderNilSafe: every method is a no-op on a nil recorder, the
// disabled-telemetry form the emulators hold.
func TestRecorderNilSafe(t *testing.T) {
	var r *ControlRecorder
	r.Record(CtlCall, 1, 2, 3)
	r.Reset()
	if r.Len() != 0 || r.Total() != 0 || r.Events() != nil {
		t.Error("nil recorder should report empty")
	}
}

// TestCtlName covers the export names, including the mirror of
// isa.ControlKind values and out-of-range kinds.
func TestCtlName(t *testing.T) {
	cases := map[uint8]string{
		CtlCall: "call", CtlReturn: "ret", CtlJump: "jump", CtlSyscall: "syscall",
		0: "?", 99: "?",
	}
	for kind, want := range cases {
		if got := CtlName(kind); got != want {
			t.Errorf("CtlName(%d) = %q, want %q", kind, got, want)
		}
	}
}

// TestEnableTraceArming: EnableTrace implies Enable and arms TraceOn;
// plain Enable leaves the recorder off; Disable clears both.
func TestEnableTraceArming(t *testing.T) {
	t.Cleanup(Disable)
	Disable()
	if TraceOn() || TraceCap() != 0 {
		t.Fatal("trace armed while disabled")
	}
	Enable()
	if TraceOn() {
		t.Error("plain Enable must not arm the flight recorder")
	}
	EnableTrace(128)
	if !Enabled() || !TraceOn() || TraceCap() != 128 {
		t.Errorf("after EnableTrace(128): enabled=%v on=%v cap=%d", Enabled(), TraceOn(), TraceCap())
	}
	EnableTrace(0)
	if TraceCap() != DefaultTraceEvents {
		t.Errorf("EnableTrace(0) cap = %d, want default %d", TraceCap(), DefaultTraceEvents)
	}
}
