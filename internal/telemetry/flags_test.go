package telemetry

import (
	"encoding/json"
	"flag"
	"io"
	"os"
	"path/filepath"
	"testing"
)

// TestFlagsRoundTrip: the uniform CLI flag set parses, arms telemetry on
// Start, and Finish writes a loadable snapshot, Chrome trace and every
// pprof profile.
func TestFlagsRoundTrip(t *testing.T) {
	t.Cleanup(Disable)
	dir := t.TempDir()
	p := func(name string) string { return filepath.Join(dir, name) }

	fs := flag.NewFlagSet("tool", flag.ContinueOnError)
	fs.SetOutput(io.Discard)
	f := AddFlags(fs)
	err := fs.Parse([]string{
		"-metrics", p("m.json"), "-trace", p("t.json"), "-trace-events", "64",
		"-cpuprofile", p("cpu.out"), "-memprofile", p("mem.out"),
		"-blockprofile", p("block.out"), "-mutexprofile", p("mutex.out"),
	})
	if err != nil {
		t.Fatal(err)
	}
	if !f.Active() {
		t.Error("Active should be true with -metrics set")
	}
	if err := f.Start(); err != nil {
		t.Fatal(err)
	}
	if !Enabled() || !TraceOn() || TraceCap() != 64 {
		t.Fatalf("Start left enabled=%v traceOn=%v cap=%d", Enabled(), TraceOn(), TraceCap())
	}
	Inc(CtrEmuRuns)
	ctl := []ControlEvent{{Kind: CtlReturn, From: 1, To: 2, Instr: 3}}
	if err := f.Finish(&RunInfo{Tool: "tool"}, nil, ctl); err != nil {
		t.Fatal(err)
	}

	raw, err := os.ReadFile(p("m.json"))
	if err != nil {
		t.Fatal(err)
	}
	var snap Snapshot
	if err := json.Unmarshal(raw, &snap); err != nil {
		t.Fatalf("snapshot does not parse: %v", err)
	}
	if snap.Run == nil || snap.Run.Tool != "tool" || snap.TraceEvents != 1 {
		t.Errorf("snapshot run=%+v trace_events=%d", snap.Run, snap.TraceEvents)
	}
	if snap.Counters[CtrEmuRuns.Name()] != 1 {
		t.Errorf("emu_runs = %d, want 1", snap.Counters[CtrEmuRuns.Name()])
	}
	var events []map[string]any
	if raw, err = os.ReadFile(p("t.json")); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(raw, &events); err != nil {
		t.Fatalf("chrome trace does not parse: %v", err)
	}
	for _, name := range []string{"cpu.out", "mem.out", "block.out", "mutex.out"} {
		st, err := os.Stat(p(name))
		if err != nil {
			t.Errorf("profile %s: %v", name, err)
		} else if st.Size() == 0 {
			t.Errorf("profile %s is empty", name)
		}
	}
}

// TestFlagsInert: with no flags set, Start/Finish touch nothing.
func TestFlagsInert(t *testing.T) {
	t.Cleanup(Disable)
	Disable()
	fs := flag.NewFlagSet("tool", flag.ContinueOnError)
	f := AddFlags(fs)
	if err := fs.Parse(nil); err != nil {
		t.Fatal(err)
	}
	if f.Active() {
		t.Error("Active with no flags")
	}
	if err := f.Start(); err != nil {
		t.Fatal(err)
	}
	if Enabled() {
		t.Error("Start with no flags must not enable telemetry")
	}
	if err := f.Finish(nil, nil, nil); err != nil {
		t.Fatal(err)
	}
}
