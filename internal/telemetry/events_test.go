package telemetry

import (
	"encoding/json"
	"testing"
)

func TestEventLogBasics(t *testing.T) {
	t.Cleanup(Disable)
	Enable()
	LogEvent(EvInfo, "campaign", "run start", "", 0, 3, 12)
	LogEvent(EvDebug, "kernel", "run", "dev00", 7, 100, 0) // below default threshold
	LogEvent(EvWarn, "kernel", "run fault", "dev01", 9, 0x8048000, 55)

	ev := Events()
	if len(ev) != 2 {
		t.Fatalf("got %d events, want 2 (debug filtered at default EvInfo): %+v", len(ev), ev)
	}
	if ev[0].Seq != 1 || ev[1].Seq != 2 {
		t.Errorf("sequence numbers %d,%d, want 1,2", ev[0].Seq, ev[1].Seq)
	}
	if ev[0].Msg != "run start" || ev[1].Msg != "run fault" {
		t.Errorf("messages %q,%q", ev[0].Msg, ev[1].Msg)
	}
	if ev[1].Level != EvWarn || ev[1].Attempt != 9 || ev[1].V0 != 0x8048000 || ev[1].V1 != 55 {
		t.Errorf("payload fields lost: %+v", ev[1])
	}
	if EventCount() != 2 {
		t.Errorf("EventCount = %d, want 2", EventCount())
	}
}

func TestEventLevelThreshold(t *testing.T) {
	t.Cleanup(Disable)
	Enable()
	SetEventLevel(EvDebug)
	LogEvent(EvDebug, "kernel", "run", "", 0, 0, 0)
	if len(Events()) != 1 {
		t.Fatalf("debug event dropped with threshold EvDebug")
	}
	SetEventLevel(EvWarn)
	LogEvent(EvInfo, "campaign", "verdict", "", 0, 0, 0)
	if len(Events()) != 1 {
		t.Fatalf("info event recorded above threshold EvWarn")
	}
	// Enable resets the threshold back to the default.
	Enable()
	if EventLevelNow() != EvInfo {
		t.Errorf("threshold after Enable = %v, want info", EventLevelNow())
	}
}

func TestEventsSinceCursor(t *testing.T) {
	t.Cleanup(Disable)
	Enable()
	for i := 0; i < 5; i++ {
		LogEvent(EvInfo, "campaign", "verdict", "", uint64(i), 0, 0)
	}
	ev, cursor := EventsSince(0)
	if len(ev) != 5 || cursor != 5 {
		t.Fatalf("since(0) = %d events, cursor %d; want 5, 5", len(ev), cursor)
	}
	ev, cursor = EventsSince(cursor)
	if len(ev) != 0 || cursor != 5 {
		t.Fatalf("since(5) = %d events, cursor %d; want 0, 5", len(ev), cursor)
	}
	LogEvent(EvInfo, "campaign", "verdict", "", 99, 0, 0)
	ev, cursor = EventsSince(cursor)
	if len(ev) != 1 || cursor != 6 || ev[0].Attempt != 99 {
		t.Fatalf("incremental poll got %+v cursor %d", ev, cursor)
	}
}

func TestEventRingEviction(t *testing.T) {
	t.Cleanup(Disable)
	Enable()
	total := eventRingCap + 100
	for i := 0; i < total; i++ {
		LogEvent(EvInfo, "campaign", "verdict", "", uint64(i), 0, 0)
	}
	ev, cursor := EventsSince(0)
	if len(ev) != eventRingCap {
		t.Fatalf("ring holds %d events, want %d", len(ev), eventRingCap)
	}
	if cursor != uint64(total) || EventCount() != uint64(total) {
		t.Errorf("cursor %d count %d, want %d", cursor, EventCount(), total)
	}
	// Oldest retained event is total-cap+1; sequence stays contiguous.
	if ev[0].Seq != uint64(total-eventRingCap+1) || ev[len(ev)-1].Seq != uint64(total) {
		t.Errorf("retained seq range [%d, %d], want [%d, %d]",
			ev[0].Seq, ev[len(ev)-1].Seq, total-eventRingCap+1, total)
	}
	// A cursor that fell behind the eviction window resumes at the
	// oldest retained event instead of failing.
	ev, _ = EventsSince(1)
	if len(ev) != eventRingCap {
		t.Errorf("stale cursor poll returned %d events, want %d", len(ev), eventRingCap)
	}
}

func TestLogEventDisabledInert(t *testing.T) {
	Disable()
	allocs := testing.AllocsPerRun(100, func() {
		LogEvent(EvWarn, "kernel", "run fault", "dev", 1, 2, 3)
	})
	if allocs != 0 {
		t.Errorf("LogEvent while disabled: %v allocs/op, want 0", allocs)
	}
	if ev := Events(); ev != nil {
		t.Errorf("Events while disabled = %+v, want nil", ev)
	}
	if _, cursor := EventsSince(7); cursor != 7 {
		t.Errorf("EventsSince cursor moved while disabled")
	}
	SetEventLevel(EvDebug) // must not panic on nil state
}

func TestLogEventEnabledZeroAlloc(t *testing.T) {
	t.Cleanup(Disable)
	Enable()
	allocs := testing.AllocsPerRun(100, func() {
		LogEvent(EvInfo, "campaign", "verdict", "dev", 1, 2, 3)
	})
	if allocs != 0 {
		t.Errorf("LogEvent while enabled: %v allocs/op, want 0", allocs)
	}
}

func TestEventLevelJSON(t *testing.T) {
	for l := EvDebug; l < numEventLevels; l++ {
		b, err := json.Marshal(l)
		if err != nil {
			t.Fatal(err)
		}
		var back EventLevel
		if err := json.Unmarshal(b, &back); err != nil || back != l {
			t.Errorf("level %v round-trip via %s failed: %v %v", l, b, back, err)
		}
	}
	var back EventLevel
	if err := json.Unmarshal([]byte(`"nope"`), &back); err == nil {
		t.Error("unknown level name decoded without error")
	}
	if err := json.Unmarshal([]byte(`2`), &back); err != nil || back != EvWarn {
		t.Errorf("integer level form: %v %v", back, err)
	}
}
