package telemetry

import "testing"

// TestPercentilesGuards: the percentile helpers must return clean zeros
// on empty input and the sample itself on single-sample input — never
// NaN, never an out-of-range index, never garbage — because scenario
// stage aggregates run them over rings that may have seen 0 or 1
// attempts (a one-device fleet, an all-patched matrix row).
func TestPercentilesGuards(t *testing.T) {
	cases := []struct {
		name    string
		samples []uint64
		want    Pct
	}{
		{"empty", nil, Pct{}},
		{"empty non-nil", []uint64{}, Pct{}},
		{"single zero", []uint64{0}, Pct{}},
		{"single value", []uint64{1234}, Pct{P50: 1234, P95: 1234, P99: 1234}},
		{"two values", []uint64{10, 20}, Pct{P50: 10, P95: 20, P99: 20}},
		{"uniform", []uint64{7, 7, 7, 7}, Pct{P50: 7, P95: 7, P99: 7}},
	}
	for _, tc := range cases {
		if got := Percentiles(tc.samples); got != tc.want {
			t.Errorf("Percentiles(%s) = %+v, want %+v", tc.name, got, tc.want)
		}
	}
}

func TestPercentilesNsGuards(t *testing.T) {
	cases := []struct {
		name    string
		samples []int64
		want    Pct
	}{
		{"empty", nil, Pct{}},
		{"single", []int64{500}, Pct{P50: 500, P95: 500, P99: 500}},
		// Negative durations (clock steps, span bugs) clamp to zero
		// rather than wrapping to huge uint64 values.
		{"negative clamps", []int64{-50}, Pct{}},
		{"mixed sign", []int64{-1, 100}, Pct{P50: 0, P95: 100, P99: 100}},
	}
	for _, tc := range cases {
		if got := PercentilesNs(tc.samples); got != tc.want {
			t.Errorf("PercentilesNs(%s) = %+v, want %+v", tc.name, got, tc.want)
		}
	}
}

func TestBucketPercentilesGuards(t *testing.T) {
	var empty [histBuckets]uint64
	if got := bucketPercentiles(empty, 0); got != (Pct{}) {
		t.Errorf("bucketPercentiles(empty) = %+v, want zeros", got)
	}
	// A single zero-valued sample lands in bucket 0 and reports 0.
	var zeroSample [histBuckets]uint64
	zeroSample[0] = 1
	if got := bucketPercentiles(zeroSample, 1); got != (Pct{}) {
		t.Errorf("bucketPercentiles(single zero) = %+v, want zeros", got)
	}
	// A single sample in bucket b reports that bucket's upper bound for
	// every percentile.
	var one [histBuckets]uint64
	one[10] = 1 // values in [512, 1024)
	want := Pct{P50: 1023, P95: 1023, P99: 1023}
	if got := bucketPercentiles(one, 1); got != want {
		t.Errorf("bucketPercentiles(single) = %+v, want %+v", got, want)
	}
	// Total larger than the bucket sum (torn concurrent reads) must not
	// index out of range; it saturates at the top bucket bound.
	if got := bucketPercentiles(one, 100); got.P99 != 1<<uint(histBuckets)-1 {
		t.Errorf("bucketPercentiles(torn total) p99 = %d, want top-bucket saturation", got.P99)
	}
}
