// Package telemetry is the lab's flight-recorder subsystem: near-zero
// overhead metrics and tracing threaded through the emulators, the
// kernel, the network simulator, the gadget scanner and the campaign
// engine.
//
// Three instruments live here:
//
//   - Metrics: a fixed pool of cache-line-padded shards holding atomic
//     counters and log₂-bucket histograms. Writers take a Shard handle
//     (or use the package-level Inc) and never contend on a lock; readers
//     merge every shard at snapshot time. Counter totals are a pure
//     function of the work performed, so a campaign's merged counters are
//     identical for any worker count.
//   - Spans: per-attempt stage timings (recon → payload → delivery →
//     verdict) recorded by the campaign engine into a bounded ring,
//     exported as a Chrome trace_event timeline. Spans carry the
//     splitmix64 per-device seed as an attempt ID, so every layer's
//     spans for one attempt correlate across the trace.
//   - Events: a leveled, fixed-ring structured log (EventLog) fed by
//     LogEvent — scalar-only payloads, zero allocation when recording,
//     one predicted branch when telemetry is off. The obs server
//     streams it over SSE; snapshots carry the tail.
//   - Flight recorder: an opt-in per-CPU ring of control-transfer events
//     (ret, pop-pc, bl/blx, int 0x80 / svc) that captures the exact
//     gadget-chain walk of a successful hijack. The emulator hot path
//     pays a single nil-check when the recorder is off and never
//     allocates when it is on.
//
// Everything is disabled by default: the package costs a nil handle per
// component until Enable is called. Enable installs a fresh state, so it
// doubles as a reset between runs.
package telemetry

import (
	"math/bits"
	"sync/atomic"
)

// Counter identifies one global metric. The set covers every cache and
// pool the engine layers: decode caches in both ISAs, the gadget scan
// index, the campaign recon/payload/packet/unit caches, the daemon pool,
// the emulated kernel, and the network simulator.
type Counter uint8

// Global counters.
const (
	// Decode-cache effectiveness per ISA (flushed per emulated run).
	CtrX86DecodeHit Counter = iota
	CtrX86DecodeMiss
	CtrARMSDecodeHit
	CtrARMSDecodeMiss
	// Basic-block translation per ISA (flushed per emulated run):
	// blocks translated, dispatches served from the cache, cached blocks
	// discarded for a stale memory generation, and instructions retired
	// inside block dispatch (the rest went through single-step).
	CtrX86BlockTranslate
	CtrX86BlockHit
	CtrX86BlockInvalidate
	CtrX86BlockInstr
	CtrARMSBlockTranslate
	CtrARMSBlockHit
	CtrARMSBlockInvalidate
	CtrARMSBlockInstr
	// Gadget scan index: content-addressed section scans computed vs
	// served from cache.
	CtrGadgetScanBuild
	CtrGadgetScanHit
	// Campaign engine caches (builds = misses).
	CtrReconBuild
	CtrReconHit
	CtrPayloadBuild
	CtrPayloadHit
	CtrPacketBuild
	CtrPacketHit
	CtrUnitBuild
	CtrUnitHit
	// Daemon pool: devices served by recycling an idle daemon vs a fresh
	// load. The split is scheduling-dependent (an idle daemon must exist
	// at acquire time); the sum is the device count.
	CtrPoolRecycle
	CtrPoolFresh
	// Emulated kernel: runs, instructions retired, faulting runs.
	CtrEmuRuns
	CtrEmuInstr
	CtrEmuFaults
	// Network simulator: datagrams enqueued, delivered, dropped.
	CtrNetEnqueued
	CtrNetDelivered
	CtrNetDropped
	// Sharded netsim: datagrams that crossed a shard boundary, delivery
	// epochs completed, and shard-epoch pairs that sat idle for want of
	// work. Cross-shard and stall counts depend on the host→shard
	// partition — a topology knob — and are excluded from the
	// shard-count determinism contract; epochs are BFS generations of
	// the traffic and identical at any shard count.
	CtrNetCrossShard
	CtrNetEpochs
	CtrNetEpochStalls
	// DNS plane: lookups the legitimate resolver answered, and lookups
	// the attacker's MITM hijacked with a crafted response.
	CtrDNSResolved
	CtrDNSHijacked
	// Gadget scan index residency: live entries inserted into the bounded
	// cache and entries evicted to stay under the cap. Which entry a
	// racing insert wins (and therefore the exact insert/evict split) is
	// scheduling-dependent, so these are topology diagnostics, not part
	// of the determinism contract.
	CtrGadgetScanInsert
	CtrGadgetScanEvict
	// Snapshot store: recon artifacts rehydrated from disk, store lookups
	// that fell through to live recon, compressed bytes written, and
	// entries rejected by hash/version/truncation verification. All
	// topology diagnostics — the store's presence never changes verdicts.
	CtrSnapHit
	CtrSnapMiss
	CtrSnapStoreBytes
	CtrSnapVerifyFail
	// Scenario compiler: declarative specs compiled into campaign
	// scenario lists, and compilations served from the per-process cache.
	// Topology diagnostics — compilation happens outside the per-device
	// hot path and never changes verdicts.
	CtrScenarioCompile
	CtrScenarioCacheHit

	numCounters
)

// counterNames are the JSON snapshot keys, index-aligned with the
// Counter constants. The schema golden test pins them.
var counterNames = [numCounters]string{
	"x86s_decode_hit", "x86s_decode_miss",
	"arms_decode_hit", "arms_decode_miss",
	"x86s_block_translate", "x86s_block_hit", "x86s_block_invalidate", "x86s_block_instructions",
	"arms_block_translate", "arms_block_hit", "arms_block_invalidate", "arms_block_instructions",
	"gadget_scan_build", "gadget_scan_hit",
	"recon_build", "recon_hit",
	"payload_build", "payload_hit",
	"packet_build", "packet_hit",
	"unit_build", "unit_hit",
	"pool_recycle", "pool_fresh",
	"emu_runs", "emu_instructions", "emu_faults",
	"net_enqueued", "net_delivered", "net_dropped",
	"net_cross_shard", "net_epochs", "net_epoch_stalls",
	"dns_resolved", "dns_hijacked",
	"gadget_scan_entries", "gadget_scan_evict",
	"snap_hit", "snap_miss", "snap_store_bytes", "snap_verify_fail",
	"scenario_compile", "scenario_cache_hit",
}

// Name returns the snapshot key of a counter.
func (c Counter) Name() string { return counterNames[c] }

// Hist identifies one global histogram. Values land in log₂ buckets, so
// merged bucket counts (and the percentiles derived from them) are exact
// functions of the observed values — deterministic inputs give
// deterministic percentiles for any worker count.
type Hist uint8

// Global histograms.
const (
	// HistEmuRunInstr is instructions retired per emulated run — the
	// deterministic cost axis of the per-attempt "emulated parse" stage.
	HistEmuRunInstr Hist = iota
	// HistNetQueueDepth samples the netsim delivery-queue depth at every
	// enqueue.
	HistNetQueueDepth
	// HistNetEpochBatch samples the generation size of every completed
	// delivery epoch — the netsim's unit of parallel work.
	HistNetEpochBatch

	numHists
)

var histNames = [numHists]string{
	"emu_run_instructions",
	"net_queue_depth",
	"net_epoch_batch",
}

// Name returns the snapshot key of a histogram.
func (h Hist) Name() string { return histNames[h] }

// histBuckets is the bucket count: bucket 0 holds zero values, bucket
// b>0 holds values in [2^(b-1), 2^b).
const histBuckets = 40

// numShards is the fixed shard-pool size. Handles are dealt round-robin,
// so concurrent writers (one CPU, one netsim world, one kernel process
// each) land on different shards and an atomic add never bounces a
// contended cache line.
const numShards = 32

// histogram is one shard's view of one histogram.
type histogram struct {
	count   [histBuckets]atomic.Uint64
	sum     atomic.Uint64
	samples atomic.Uint64
}

// Shard is one slice of the metric state. Writers hold a *Shard (nil
// when telemetry is disabled) and increment with plain atomic adds; the
// merge happens only at snapshot time.
type Shard struct {
	counters [numCounters]atomic.Uint64
	hists    [numHists]histogram
	// pad keeps neighbouring shards off one cache line.
	_ [64]byte
}

// Inc adds one to a counter.
func (s *Shard) Inc(c Counter) { s.counters[c].Add(1) }

// Add adds n to a counter.
func (s *Shard) Add(c Counter, n uint64) { s.counters[c].Add(n) }

// Observe records one histogram sample.
func (s *Shard) Observe(h Hist, v uint64) {
	hg := &s.hists[h]
	hg.count[bucketOf(v)].Add(1)
	hg.sum.Add(v)
	hg.samples.Add(1)
}

// bucketOf maps a value to its log₂ bucket.
func bucketOf(v uint64) int {
	b := bits.Len64(v)
	if b >= histBuckets {
		b = histBuckets - 1
	}
	return b
}

// state is one enablement epoch: counters, histograms, the span ring,
// the event log and the flight-recorder configuration.
type state struct {
	shards   [numShards]Shard
	next     atomic.Uint32
	spans    spanRing
	events   eventRing
	evMin    atomic.Uint32 // EventLevel threshold for LogEvent
	traceCap atomic.Int64  // >0: flight recorder armed, ring capacity
}

// cur is the active state; nil means disabled (the default).
var cur atomic.Pointer[state]

// Enable turns telemetry on with a fresh, zeroed state. Calling it while
// already enabled resets every counter, histogram and span — Enable is
// also the reset between measured runs. Components take their Shard
// handle at construction, so enable telemetry before building the
// engines/CPUs you want instrumented.
func Enable() {
	cur.Store(newState())
}

func newState() *state {
	s := &state{}
	s.spans.init(spanRingCap)
	s.events.init(eventRingCap)
	s.evMin.Store(uint32(EvInfo))
	return s
}

// Disable turns telemetry off. Components constructed afterwards get nil
// handles; components holding handles into the old state keep writing to
// it harmlessly (it is garbage once they go).
func Disable() {
	cur.Store(nil)
}

// Enabled reports whether metrics collection is on.
func Enabled() bool { return cur.Load() != nil }

// DefaultTraceEvents is the default flight-recorder ring capacity: deep
// enough for a full ROP-chain walk plus the benign control flow leading
// to the smash, small enough to stay resident per device.
const DefaultTraceEvents = 4096

// EnableTrace arms the hijack flight recorder (enabling telemetry first
// if needed): consumers that honour TraceOn attach a ControlRecorder of
// TraceCap events to each victim CPU. n <= 0 uses DefaultTraceEvents.
func EnableTrace(n int) {
	if n <= 0 {
		n = DefaultTraceEvents
	}
	s := cur.Load()
	if s == nil {
		Enable()
		s = cur.Load()
	}
	s.traceCap.Store(int64(n))
}

// TraceOn reports whether the flight recorder is armed.
func TraceOn() bool {
	s := cur.Load()
	return s != nil && s.traceCap.Load() > 0
}

// TraceCap returns the armed flight-recorder capacity (0 when off).
func TraceCap() int {
	s := cur.Load()
	if s == nil {
		return 0
	}
	return int(s.traceCap.Load())
}

// Handle returns a metrics shard for a new component, or nil while
// telemetry is disabled. Handles are dealt round-robin from the fixed
// pool; any number of components may share a shard (totals are summed at
// read time anyway).
func Handle() *Shard {
	s := cur.Load()
	if s == nil {
		return nil
	}
	return &s.shards[s.next.Add(1)%numShards]
}

// Inc bumps a global counter when telemetry is enabled — the convenience
// form for call sites too cold to justify holding a Shard handle. The
// shard is picked by counter so distinct counters do not share a line.
func Inc(c Counter) {
	s := cur.Load()
	if s == nil {
		return
	}
	s.shards[int(c)%numShards].counters[c].Add(1)
}

// Add is Inc for increments larger than one.
func Add(c Counter, n uint64) {
	s := cur.Load()
	if s == nil {
		return
	}
	s.shards[int(c)%numShards].counters[c].Add(n)
}
