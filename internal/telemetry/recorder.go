package telemetry

// Control-transfer event kinds recorded by the hijack flight recorder.
// The first three mirror isa.ControlKind value-for-value so the emulator
// can forward its own kind byte without a translation table; CtlSyscall
// extends the set for int 0x80 / svc, the terminal event of a successful
// execve chain.
const (
	CtlCall    uint8 = 1
	CtlReturn  uint8 = 2
	CtlJump    uint8 = 3
	CtlSyscall uint8 = 4
)

// ctlNames maps event kinds to their export names.
var ctlNames = [...]string{0: "?", CtlCall: "call", CtlReturn: "ret", CtlJump: "jump", CtlSyscall: "syscall"}

// CtlName returns the export name of a control-event kind.
func CtlName(kind uint8) string {
	if int(kind) < len(ctlNames) {
		return ctlNames[kind]
	}
	return "?"
}

// ControlEvent is one recorded control transfer inside the emulated CPU.
type ControlEvent struct {
	Kind  uint8  `json:"kind"`
	From  uint32 `json:"from"`
	To    uint32 `json:"to"`
	Instr uint64 `json:"instr"` // instruction count at the transfer
}

// ControlRecorder is the hijack flight recorder: a fixed-capacity ring
// of control-transfer events. Record never allocates and never locks —
// each recorder belongs to exactly one emulated CPU, which is
// single-stepped by one goroutine at a time. When the ring wraps the
// oldest events are overwritten, so after a long benign run the ring
// still ends with the interesting tail: the smash, the gadget chain and
// the syscall.
type ControlRecorder struct {
	ring []ControlEvent
	next uint64 // total events ever recorded
}

// NewControlRecorder returns a recorder with capacity n events
// (DefaultTraceEvents when n <= 0).
func NewControlRecorder(n int) *ControlRecorder {
	if n <= 0 {
		n = DefaultTraceEvents
	}
	return &ControlRecorder{ring: make([]ControlEvent, n)}
}

// Record appends one event, overwriting the oldest once the ring is
// full. Safe on a nil receiver (a no-op), so callers can keep an
// unconditional pointer field and skip only on nil.
func (r *ControlRecorder) Record(kind uint8, from, to uint32, instr uint64) {
	if r == nil {
		return
	}
	r.ring[r.next%uint64(len(r.ring))] = ControlEvent{Kind: kind, From: from, To: to, Instr: instr}
	r.next++
}

// Len reports how many events are currently held (≤ capacity).
func (r *ControlRecorder) Len() int {
	if r == nil {
		return 0
	}
	if r.next < uint64(len(r.ring)) {
		return int(r.next)
	}
	return len(r.ring)
}

// Total reports how many events were recorded over the recorder's life,
// including ones the ring has since overwritten.
func (r *ControlRecorder) Total() uint64 {
	if r == nil {
		return 0
	}
	return r.next
}

// Events returns the held events oldest-first as a fresh slice.
func (r *ControlRecorder) Events() []ControlEvent {
	if r == nil || r.next == 0 {
		return nil
	}
	n := uint64(len(r.ring))
	out := make([]ControlEvent, 0, r.Len())
	start := uint64(0)
	if r.next > n {
		start = r.next - n
	}
	for i := start; i < r.next; i++ {
		out = append(out, r.ring[i%n])
	}
	return out
}

// Reset empties the recorder without freeing the ring.
func (r *ControlRecorder) Reset() {
	if r != nil {
		r.next = 0
	}
}
