package gadget

import (
	"bytes"
	"testing"

	"connlab/internal/image"
	"connlab/internal/isa"
	"connlab/internal/mem"
	"connlab/internal/victim"
)

// fuzzImage wraps raw bytes as an executable .text section the way a
// linked victim binary would present them.
func fuzzImage(arch isa.Arch, data []byte) *image.Image {
	base := image.DefaultProgramLayout(arch).TextBase
	return &image.Image{
		Arch: arch,
		Sections: []image.Section{
			{Name: ".text", Addr: base, Data: data, Perm: mem.PermRX},
		},
	}
}

// FuzzScan: the ropper-style scanner must handle arbitrary section
// contents — misaligned words, truncated instruction runs, ret bytes in
// immediates — without panicking, and every gadget it reports must lie
// inside the section it was found in.
func FuzzScan(f *testing.F) {
	// Seed with real linked victim text (truncated to keep iterations
	// fast) plus adversarial shapes.
	for _, arch := range []isa.Arch{isa.ArchX86S, isa.ArchARMS} {
		u, err := victim.BuildProgram(arch, victim.BuildOpts{})
		if err != nil {
			f.Fatalf("build victim: %v", err)
		}
		img, err := image.Link(u, image.DefaultProgramLayout(arch), image.Options{})
		if err != nil {
			f.Fatalf("link victim: %v", err)
		}
		text := img.Section(".text")
		if text == nil {
			f.Fatal("victim image has no .text")
		}
		data := text.Data
		if len(data) > 2048 {
			data = data[:2048]
		}
		f.Add(data, arch == isa.ArchARMS)
	}
	f.Add(bytes.Repeat([]byte{0xC3}, 64), false)                 // ret-dense x86
	f.Add([]byte{0x58, 0xC3, 0x5B, 0xC3}, false)                 // pop;ret pairs
	f.Add(bytes.Repeat([]byte{0x04, 0xE0, 0x9D, 0xE4}, 8), true) // ARM pop words
	f.Add([]byte{0xC3}, false)
	f.Add([]byte{}, true)

	f.Fuzz(func(t *testing.T, data []byte, arm bool) {
		if len(data) > 4096 {
			data = data[:4096]
		}
		arch := isa.ArchX86S
		if arm {
			arch = isa.ArchARMS
		}
		img := fuzzImage(arch, data)
		finder := NewFinder(img)
		lo := img.Sections[0].Addr
		hi := lo + uint32(len(data))
		for _, g := range finder.All() {
			if g.Addr < lo || g.Addr >= hi {
				t.Fatalf("gadget %#x outside section [%#x,%#x)", g.Addr, lo, hi)
			}
			if len(g.Instrs) == 0 {
				t.Fatalf("gadget %#x reports no instructions", g.Addr)
			}
		}
		// The character-harvest path must tolerate arbitrary sections too.
		finder.MemStr('/')
		finder.FindPopRet(2)
		finder.FindPopPC(0, 1)
		finder.FindBlxReg(3)
	})
}
