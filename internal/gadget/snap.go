package gadget

import (
	"encoding/binary"
	"fmt"
	"sync/atomic"

	"connlab/internal/image"
	"connlab/internal/isa"
	"connlab/internal/snapshot"
)

// snapKind is the snapshot-store artifact class for section indexes.
// The payload carries both the gadget table and the memstr positions,
// so one entry rehydrates everything a section contributes to a Finder.
const snapKind = "gadget-index"

// snapStore is the process-wide snapshot store consulted by the scan
// cache, mirroring the process-wide cache itself. Nil means disabled.
var snapStore atomic.Pointer[snapshot.Store]

// SetSnapshotStore points the scan cache at an on-disk snapshot store
// (nil disables). With a store set, a scan-cache miss first tries to
// rehydrate the section's verified index from disk, and live scans are
// persisted for future processes.
func SetSnapshotStore(s *snapshot.Store) { snapStore.Store(s) }

// SnapshotStore returns the store set by SetSnapshotStore, or nil.
func SnapshotStore() *snapshot.Store { return snapStore.Load() }

// snapshotKey derives the content address of a section's index: the
// hash covers the section metadata the scan key covers, plus the bytes
// themselves (the scan key's fnv64 is a stand-in only within one
// process; on disk the full content participates in a sha256).
func snapshotKey(arch isa.Arch, sec image.Section) snapshot.Key {
	meta := []byte{byte(sec.Perm)}
	return snapshot.NewKey(snapKind, string(arch), meta, []byte(sec.Name), sec.Data)
}

// loadSecIndex rehydrates a section index from the store. Any error —
// missing entry, version skew, failed verification, or a payload that
// does not deserialize — means the caller scans live.
func loadSecIndex(s *snapshot.Store, arch isa.Arch, sec image.Section) (*secIndex, error) {
	payload, err := s.Load(snapshotKey(arch, sec))
	if err != nil {
		return nil, err
	}
	return decodeSecIndex(payload)
}

// saveSecIndex persists a freshly scanned index, best-effort: a store
// write failure never fails the scan that produced the index.
func saveSecIndex(s *snapshot.Store, arch isa.Arch, sec image.Section, idx *secIndex) {
	_ = s.Save(snapshotKey(arch, sec), encodeSecIndex(idx))
}

// encodeSecIndex serializes a section index. The layout is all uvarints
// (plus raw instruction text), section-relative like the in-memory
// index, and deterministic for fixed input:
//
//	uvarint gadget count
//	per gadget: uvarint addr | byte kind | uvarint reg |
//	            uvarint n-instrs { uvarint len, bytes } |
//	            uvarint n-pops   { uvarint reg }
//	per byte value 0..255: uvarint count { uvarint delta }  (memstr
//	            positions, delta-coded from the previous offset)
func encodeSecIndex(idx *secIndex) []byte {
	out := make([]byte, 0, 1024)
	out = binary.AppendUvarint(out, uint64(len(idx.gadgets)))
	for _, g := range idx.gadgets {
		out = binary.AppendUvarint(out, uint64(g.Addr))
		out = append(out, byte(g.Kind))
		out = binary.AppendUvarint(out, uint64(g.Reg))
		out = binary.AppendUvarint(out, uint64(len(g.Instrs)))
		for _, in := range g.Instrs {
			out = binary.AppendUvarint(out, uint64(len(in)))
			out = append(out, in...)
		}
		out = binary.AppendUvarint(out, uint64(len(g.Pops)))
		for _, r := range g.Pops {
			out = binary.AppendUvarint(out, uint64(r))
		}
	}
	for c := 0; c < 256; c++ {
		pos := idx.memPos[c]
		out = binary.AppendUvarint(out, uint64(len(pos)))
		prev := uint32(0)
		for i, p := range pos {
			if i == 0 {
				out = binary.AppendUvarint(out, uint64(p))
			} else {
				out = binary.AppendUvarint(out, uint64(p-prev))
			}
			prev = p
		}
	}
	return out
}

// decodeSecIndex is the exact inverse of encodeSecIndex. The payload
// has already passed the store's hash verification, so errors here mean
// an encoder/decoder skew rather than disk corruption — but every read
// is still bounds-checked so no input can panic.
func decodeSecIndex(payload []byte) (*secIndex, error) {
	d := uvarintReader{buf: payload, str: string(payload)}
	idx := &secIndex{}
	nGadgets := d.uvarint()
	// Each gadget costs at least 5 bytes encoded; reject counts that
	// could not possibly fit before allocating.
	if nGadgets > uint64(len(payload)) {
		return nil, fmt.Errorf("gadget: snapshot index claims %d gadgets in %d bytes", nGadgets, len(payload))
	}
	if nGadgets > 0 {
		idx.gadgets = make([]Gadget, 0, nGadgets)
	}
	for i := uint64(0); i < nGadgets && d.err == nil; i++ {
		var g Gadget
		g.Addr = uint32(d.uvarint())
		g.Kind = Kind(d.byte())
		g.Reg = int(d.uvarint())
		nInstr := d.uvarint()
		if nInstr > uint64(d.remaining()) {
			return nil, fmt.Errorf("gadget: snapshot gadget claims %d instrs", nInstr)
		}
		if nInstr > 0 {
			g.Instrs = make([]string, 0, nInstr)
		}
		for j := uint64(0); j < nInstr && d.err == nil; j++ {
			g.Instrs = append(g.Instrs, d.text(d.uvarint()))
		}
		nPops := d.uvarint()
		if nPops > uint64(d.remaining()) {
			return nil, fmt.Errorf("gadget: snapshot gadget claims %d pops", nPops)
		}
		if nPops > 0 {
			g.Pops = make([]int, 0, nPops)
		}
		for j := uint64(0); j < nPops && d.err == nil; j++ {
			g.Pops = append(g.Pops, int(d.uvarint()))
		}
		idx.gadgets = append(idx.gadgets, g)
	}
	for c := 0; c < 256 && d.err == nil; c++ {
		n := d.uvarint()
		if n > uint64(d.remaining())+1 {
			return nil, fmt.Errorf("gadget: snapshot memstr[%d] claims %d positions", c, n)
		}
		if n == 0 {
			continue
		}
		pos := make([]uint32, 0, n)
		cur := uint32(0)
		for i := uint64(0); i < n && d.err == nil; i++ {
			if i == 0 {
				cur = uint32(d.uvarint())
			} else {
				cur += uint32(d.uvarint())
			}
			pos = append(pos, cur)
		}
		idx.memPos[c] = pos
	}
	if d.err != nil {
		return nil, d.err
	}
	if d.remaining() != 0 {
		return nil, fmt.Errorf("gadget: %d trailing bytes after snapshot index", d.remaining())
	}
	return idx, nil
}

// uvarintReader walks a buffer with sticky error semantics.
type uvarintReader struct {
	buf []byte
	// str is buf converted to a string once up front, so decoded
	// instruction strings are zero-copy substrings of one allocation
	// instead of one allocation each (NewFinder decodes every section
	// on a cold start; this is the hot path the store exists to serve).
	str string
	off int
	err error
}

func (d *uvarintReader) remaining() int { return len(d.buf) - d.off }

func (d *uvarintReader) uvarint() uint64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Uvarint(d.buf[d.off:])
	if n <= 0 {
		d.err = fmt.Errorf("gadget: truncated snapshot index varint at %d", d.off)
		return 0
	}
	d.off += n
	return v
}

func (d *uvarintReader) byte() byte {
	if d.err != nil {
		return 0
	}
	if d.off >= len(d.buf) {
		d.err = fmt.Errorf("gadget: truncated snapshot index at %d", d.off)
		return 0
	}
	b := d.buf[d.off]
	d.off++
	return b
}

func (d *uvarintReader) bytes(n uint64) []byte {
	if d.err != nil {
		return nil
	}
	if n > uint64(d.remaining()) {
		d.err = fmt.Errorf("gadget: truncated snapshot index string at %d", d.off)
		return nil
	}
	b := d.buf[d.off : d.off+int(n)]
	d.off += int(n)
	return b
}

func (d *uvarintReader) text(n uint64) string {
	if d.err != nil {
		return ""
	}
	if n > uint64(d.remaining()) {
		d.err = fmt.Errorf("gadget: truncated snapshot index string at %d", d.off)
		return ""
	}
	s := d.str[d.off : d.off+int(n)]
	d.off += int(n)
	return s
}
