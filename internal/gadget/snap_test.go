package gadget

import (
	"bytes"
	"math/rand"
	"os"
	"reflect"
	"testing"

	"connlab/internal/image"
	"connlab/internal/isa"
	"connlab/internal/mem"
	"connlab/internal/snapshot"
)

// resetScanState flushes the cache and restores defaults when the test
// ends, so cache-shape tests don't leak into each other.
func resetScanState(t *testing.T) {
	t.Helper()
	FlushScanCache()
	SetSnapshotStore(nil)
	SetScanCacheCap(0)
	t.Cleanup(func() {
		FlushScanCache()
		SetSnapshotStore(nil)
		SetScanCacheCap(0)
	})
}

// synthSection builds a synthetic executable section with deterministic
// pseudo-random content salted by id, so each id is distinct cacheable
// content.
func synthSection(id int64, n int) image.Section {
	rng := rand.New(rand.NewSource(1000 + id))
	data := make([]byte, n)
	rng.Read(data)
	return image.Section{Name: ".text", Addr: 0x1000, Perm: mem.PermRead | mem.PermExec, Data: data}
}

func TestScanCacheBoundedLRU(t *testing.T) {
	resetScanState(t)
	SetScanCacheCap(2)

	s0, s1, s2 := synthSection(0, 512), synthSection(1, 512), synthSection(2, 512)
	idx0 := sectionIndex(isa.ArchX86S, s0)
	sectionIndex(isa.ArchX86S, s1)
	if n := ScanCacheLen(); n != 2 {
		t.Fatalf("cache holds %d entries, want 2", n)
	}
	// Touch s0 so s1 is the LRU victim, then insert s2.
	sectionIndex(isa.ArchX86S, s0)
	sectionIndex(isa.ArchX86S, s2)
	if n := ScanCacheLen(); n != 2 {
		t.Fatalf("cache holds %d entries after eviction, want 2", n)
	}
	builds0, _ := ScanCacheStats()
	if got := sectionIndex(isa.ArchX86S, s0); got != idx0 {
		t.Error("s0 should still be cached (same index pointer)")
	}
	sectionIndex(isa.ArchX86S, s1) // evicted: must rebuild
	builds1, _ := ScanCacheStats()
	if builds1-builds0 != 1 {
		t.Errorf("rebuilds after eviction: got %d, want 1 (only the evicted s1)", builds1-builds0)
	}

	// Shrinking the cap evicts immediately.
	SetScanCacheCap(1)
	if n := ScanCacheLen(); n != 1 {
		t.Fatalf("cache holds %d entries after cap shrink, want 1", n)
	}
}

func TestSecIndexEncodeDecodeRoundTrip(t *testing.T) {
	for _, arch := range []isa.Arch{isa.ArchX86S, isa.ArchARMS} {
		img := linkVictim(t, arch)
		for _, sec := range img.Sections {
			idx := buildSecIndex(arch, sec)
			back, err := decodeSecIndex(encodeSecIndex(idx))
			if err != nil {
				t.Fatalf("%v %s: decode: %v", arch, sec.Name, err)
			}
			if !reflect.DeepEqual(idx, back) {
				t.Fatalf("%v %s: round trip differs", arch, sec.Name)
			}
		}
	}
}

func TestDecodeSecIndexRejectsJunk(t *testing.T) {
	idx := buildSecIndex(isa.ArchX86S, synthSection(7, 256))
	good := encodeSecIndex(idx)
	if _, err := decodeSecIndex(good[:len(good)-1]); err == nil {
		t.Error("truncated payload accepted")
	}
	if _, err := decodeSecIndex(append(append([]byte(nil), good...), 0)); err == nil {
		t.Error("trailing bytes accepted")
	}
	if _, err := decodeSecIndex([]byte{0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0x01}); err == nil {
		t.Error("absurd gadget count accepted")
	}
}

// TestSnapshotStoreServesScans: with a store attached, the first
// process-lifetime scan persists each section index, and a later "cold
// process" (flushed cache, same store) rehydrates every section without
// a single live rescan — producing an identical Finder.
func TestSnapshotStoreServesScans(t *testing.T) {
	resetScanState(t)
	store, err := snapshot.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	SetSnapshotStore(store)

	for _, arch := range []isa.Arch{isa.ArchX86S, isa.ArchARMS} {
		img := linkVictim(t, arch)
		warm := NewFinder(img)

		entries, err := store.Entries()
		if err != nil {
			t.Fatal(err)
		}
		if len(entries) == 0 {
			t.Fatal("no snapshot entries persisted by the first scan")
		}

		FlushScanCache()
		builds0, _ := ScanCacheStats()
		cold := NewFinder(img)
		builds1, _ := ScanCacheStats()
		if builds1 != builds0 {
			t.Errorf("%v: cold finder rescanned %d sections live, want 0 (all from store)", arch, builds1-builds0)
		}

		wantAll, gotAll := warm.All(), cold.All()
		if !reflect.DeepEqual(wantAll, gotAll) {
			t.Fatalf("%v: rehydrated gadget set differs from live scan", arch)
		}
		for c := 0; c < 256; c++ {
			if !reflect.DeepEqual(warm.MemStr(byte(c)), cold.MemStr(byte(c))) {
				t.Fatalf("%v: rehydrated MemStr(%#x) differs", arch, c)
			}
		}
	}

	// Every persisted entry must verify clean.
	ok, bad, err := store.Verify()
	if err != nil {
		t.Fatal(err)
	}
	if len(bad) != 0 || ok == 0 {
		t.Fatalf("store verify: ok=%d bad=%v", ok, bad)
	}
}

// TestCorruptSnapshotFallsBackToLiveScan: a store entry whose payload
// hash no longer verifies must be ignored in favor of a live scan —
// never rehydrated.
func TestCorruptSnapshotFallsBackToLiveScan(t *testing.T) {
	resetScanState(t)
	dir := t.TempDir()
	store, err := snapshot.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	SetSnapshotStore(store)

	sec := synthSection(42, 1024)
	want := sectionIndex(isa.ArchX86S, sec)

	// Corrupt the single entry's stored payload hash in place.
	entries, err := store.Entries()
	if err != nil || len(entries) != 1 {
		t.Fatalf("entries: %v err=%v", entries, err)
	}
	path := store.Path(entries[0].Key)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	hashOff := 4 + 2 + 1 + len(entries[0].Key.Kind) + 1 + len(entries[0].Key.Arch) + 32
	data[hashOff] ^= 0xFF
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}

	FlushScanCache()
	builds0, _ := ScanCacheStats()
	got := sectionIndex(isa.ArchX86S, sec)
	builds1, _ := ScanCacheStats()
	if builds1-builds0 != 1 {
		t.Errorf("corrupt entry did not force a live rescan (builds +%d)", builds1-builds0)
	}
	if !reflect.DeepEqual(want, got) {
		t.Error("fallback scan differs from original")
	}
	if !bytes.Equal(encodeSecIndex(want), encodeSecIndex(got)) {
		t.Error("fallback scan serialization differs from original")
	}
}
