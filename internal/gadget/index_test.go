package gadget

import (
	"testing"

	"connlab/internal/image"
	"connlab/internal/isa"
	"connlab/internal/isa/arms"
	"connlab/internal/victim"
)

// TestIndexRebasedAcrossLayouts: linking the same unit at two different
// bases must reuse the cached per-section scans, with every gadget
// shifted by exactly the base delta.
func TestIndexRebasedAcrossLayouts(t *testing.T) {
	u, err := victim.BuildProgram(isa.ArchX86S, victim.BuildOpts{})
	if err != nil {
		t.Fatal(err)
	}
	base := image.DefaultProgramLayout(isa.ArchX86S)
	img1, err := image.Link(u, base, image.Options{})
	if err != nil {
		t.Fatal(err)
	}
	f1 := NewFinder(img1)

	const shift = 0x00400000
	moved := base
	moved.TextBase += shift
	moved.RODataBase += shift
	moved.GOTBase += shift
	moved.DataBase += shift
	moved.BSSBase += shift
	img2, err := image.Link(u, moved, image.Options{})
	if err != nil {
		t.Fatal(err)
	}

	// Sections whose bytes change with the base (the GOT holds absolute
	// addresses) must rescan; position-independent ones must be cache hits.
	changed := uint64(0)
	for i := range img1.Sections {
		if string(img1.Sections[i].Data) != string(img2.Sections[i].Data) {
			changed++
		}
	}
	if changed == uint64(len(img1.Sections)) {
		t.Fatalf("every section changed under rebase; nothing to share")
	}

	builds0, _ := ScanCacheStats()
	f2 := NewFinder(img2)
	builds1, _ := ScanCacheStats()
	if builds1-builds0 != changed {
		t.Errorf("rebased image rescanned %d sections, want exactly the %d whose bytes changed",
			builds1-builds0, changed)
	}

	g1 := f1.All()
	g2 := f2.All()
	if len(g1) == 0 || len(g1) != len(g2) {
		t.Fatalf("gadget counts: %d vs %d", len(g1), len(g2))
	}
	for i := range g1 {
		if g2[i].Addr != g1[i].Addr+shift {
			t.Fatalf("gadget %d: %#x vs %#x, want +%#x", i, g1[i].Addr, g2[i].Addr, uint32(shift))
		}
	}
	a1, ok1 := f1.MemStrFirst('/')
	a2, ok2 := f2.MemStrFirst('/')
	if !ok1 || !ok2 || a2 != a1+shift {
		t.Errorf("MemStrFirst: %#x/%v vs %#x/%v", a1, ok1, a2, ok2)
	}
}

// TestLookupsMatchLinearReference: the O(1) tables must return exactly
// what the original linear scans over the sorted gadget list returned.
func TestLookupsMatchLinearReference(t *testing.T) {
	for _, arch := range []isa.Arch{isa.ArchX86S, isa.ArchARMS} {
		f := NewFinder(linkVictim(t, arch))
		all := f.All()

		for n := 0; n <= 8; n++ {
			var want Gadget
			found := false
			for _, g := range all {
				if g.Kind == KindRet && ((len(g.Instrs) == n+1 && len(g.Pops) == n) ||
					(n == 0 && len(g.Instrs) == 1)) {
					want, found = g, true
					break
				}
			}
			got, ok := f.FindPopRet(n)
			if ok != found || (ok && got.Addr != want.Addr) {
				t.Errorf("%v FindPopRet(%d) = %v,%v; linear = %v,%v", arch, n, got, ok, want, found)
			}
		}

		regSets := [][]int{
			{arms.R0, arms.R1, arms.R2, arms.R3, arms.R5, arms.R6, arms.R7},
			{arms.R4}, {arms.R4, arms.R5}, {arms.R0}, {},
		}
		for _, regs := range regSets {
			var want Gadget
			found := false
			for _, g := range all {
				if g.Kind != KindPopPC || len(g.Pops) != len(regs) {
					continue
				}
				match := true
				for i, r := range g.Pops {
					_ = i
					in := false
					for _, q := range regs {
						if q == r {
							in = true
							break
						}
					}
					if !in {
						match = false
						break
					}
				}
				if match {
					want, found = g, true
					break
				}
			}
			got, ok := f.FindPopPC(regs...)
			if ok != found || (ok && got.Addr != want.Addr) {
				t.Errorf("%v FindPopPC(%v) = %v,%v; linear = %v,%v", arch, regs, got, ok, want, found)
			}
		}

		for r := 0; r < 8; r++ {
			var want Gadget
			found := false
			for _, g := range all {
				if g.Kind == KindBlxReg && g.Reg == r {
					want, found = g, true
					break
				}
			}
			got, ok := f.FindBlxReg(r)
			if ok != found || (ok && got.Addr != want.Addr) {
				t.Errorf("%v FindBlxReg(%d) = %v,%v; linear = %v,%v", arch, r, got, ok, want, found)
			}
		}

		img := f.img
		for c := 0; c < 256; c++ {
			var want uint32
			found := false
			for _, sec := range img.Sections {
				for i, b := range sec.Data {
					if b == byte(c) {
						want, found = sec.Addr+uint32(i), true
						break
					}
				}
				if found {
					break
				}
			}
			got, ok := f.MemStrFirst(byte(c))
			if ok != found || got != want {
				t.Errorf("%v MemStrFirst(%#x) = %#x,%v; linear = %#x,%v", arch, c, got, ok, want, found)
			}
			positions := f.MemStr(byte(c))
			var ref []uint32
			for _, sec := range img.Sections {
				for i, b := range sec.Data {
					if b == byte(c) {
						ref = append(ref, sec.Addr+uint32(i))
					}
				}
			}
			if len(positions) != len(ref) {
				t.Errorf("%v MemStr(%#x): %d positions, want %d", arch, c, len(positions), len(ref))
				continue
			}
			for i := range ref {
				if positions[i] != ref[i] {
					t.Errorf("%v MemStr(%#x)[%d] = %#x, want %#x", arch, c, i, positions[i], ref[i])
					break
				}
			}
		}
	}
}

// TestLookupsAllocationFree: after construction, every hot lookup the
// chain builders use must do zero heap allocations.
func TestLookupsAllocationFree(t *testing.T) {
	fx := NewFinder(linkVictim(t, isa.ArchX86S))
	fa := NewFinder(linkVictim(t, isa.ArchARMS))
	if n := testing.AllocsPerRun(100, func() {
		fx.FindPopRet(3)
		fx.FindPopRet(1)
		fx.MemStrFirst('/')
		fa.FindPopPC(arms.R0, arms.R1, arms.R2, arms.R3, arms.R5, arms.R6, arms.R7)
		fa.FindBlxReg(arms.R3)
		fa.MemStrFirst('s')
	}); n > 0 {
		t.Errorf("lookups allocate %.1f/op, want 0", n)
	}
}
