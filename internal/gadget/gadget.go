// Package gadget finds code-reuse gadgets in linked images, playing the
// role ropper and ROPgadget play in the paper (§III-B2, §III-C): it scans
// executable sections for short instruction sequences ending in a control
// transfer an attacker can steer — `ret` on x86s; `pop {…, pc}`, `blx rN`
// or `bx rN` on arms — and it searches readable sections for single
// characters (ROPgadget's -memstr), which the ASLR exploit uses to
// assemble "/bin/sh" in .bss one byte at a time.
//
// Like the real tools, the finder works on the binary image, not a live
// process: for a non-PIE binary those addresses hold at runtime even under
// ASLR, which is exactly the bypass surface of §III-C.
package gadget

import (
	"fmt"
	"sort"

	"connlab/internal/image"
	"connlab/internal/isa"
	"connlab/internal/isa/arms"
	"connlab/internal/isa/x86s"
	"connlab/internal/mem"
)

// Kind classifies what terminates a gadget.
type Kind uint8

// Gadget kinds.
const (
	// KindRet ends in x86s ret.
	KindRet Kind = iota + 1
	// KindPopPC ends in arms pop {…, pc}.
	KindPopPC
	// KindBlxReg is an arms blx rN.
	KindBlxReg
	// KindBxReg is an arms bx rN.
	KindBxReg
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case KindRet:
		return "ret"
	case KindPopPC:
		return "pop-pc"
	case KindBlxReg:
		return "blx-reg"
	case KindBxReg:
		return "bx-reg"
	default:
		return "unknown"
	}
}

// Gadget is one usable instruction sequence.
type Gadget struct {
	Addr   uint32
	Kind   Kind
	Instrs []string
	// Pops lists the registers popped before control leaves, in pop order
	// (x86s: the pop run before ret; arms: the pop reglist minus pc).
	Pops []int
	// Reg is the register a blx/bx gadget branches through.
	Reg int
}

// String renders the gadget ropper-style.
func (g Gadget) String() string {
	out := fmt.Sprintf("%#08x:", g.Addr)
	for i, in := range g.Instrs {
		if i > 0 {
			out += " ;"
		}
		out += " " + in
	}
	return out
}

// maxGadgetInstrs bounds the sequence length reported.
const maxGadgetInstrs = 6

// Finder scans one linked image.
type Finder struct {
	img     *image.Image
	gadgets []Gadget
}

// NewFinder scans the image's executable sections and returns a finder
// over the discovered gadgets.
func NewFinder(img *image.Image) *Finder {
	f := &Finder{img: img}
	for _, sec := range img.Sections {
		if sec.Perm&mem.PermExec == 0 {
			continue
		}
		if img.Arch == isa.ArchARMS {
			f.scanARM(sec)
		} else {
			f.scanX86(sec)
		}
	}
	sort.Slice(f.gadgets, func(i, j int) bool { return f.gadgets[i].Addr < f.gadgets[j].Addr })
	return f
}

// scanX86 finds every decodable suffix ending exactly on a ret byte.
func (f *Finder) scanX86(sec image.Section) {
	const lookback = 24
	dec := newSecDecoder(sec.Data)
	for i, b := range sec.Data {
		if b != 0xC3 {
			continue
		}
		retOff := i
		// Try each start within lookback: keep sequences that decode
		// cleanly and land exactly on the ret.
		for start := retOff - lookback; start <= retOff; start++ {
			if start < 0 {
				continue
			}
			instrs, pops, ok := decodeRunX86(dec, start, retOff+1)
			if !ok || len(instrs) > maxGadgetInstrs {
				continue
			}
			f.gadgets = append(f.gadgets, Gadget{
				Addr:   sec.Addr + uint32(start),
				Kind:   KindRet,
				Instrs: instrs,
				Pops:   pops,
			})
		}
	}
}

// secDecoder memoizes decode results per section offset, so the lookback
// windows of neighboring ret bytes — which overlap almost entirely — decode
// each start offset once instead of once per window. Decoding against the
// full section tail instead of a window truncated at the ret is equivalent:
// the decoder is prefix-deterministic, so extra bytes can only turn a
// truncation failure into a longer instruction, which then overshoots the
// ret byte and is rejected exactly like the truncated decode was.
type secDecoder struct {
	data []byte
	// size[off] is 0 while undecoded, -1 for an illegal/truncated decode,
	// else the instruction length at off.
	size  []int8
	instr []x86s.Instr
}

func newSecDecoder(data []byte) *secDecoder {
	return &secDecoder{data: data, size: make([]int8, len(data)), instr: make([]x86s.Instr, len(data))}
}

// at decodes the instruction starting at off, memoized.
func (d *secDecoder) at(off int) (x86s.Instr, bool) {
	switch d.size[off] {
	case 0:
		in, err := x86s.Decode(d.data[off:])
		if err != nil {
			d.size[off] = -1
			return x86s.Instr{}, false
		}
		d.size[off] = int8(in.Size)
		d.instr[off] = in
		return in, true
	case -1:
		return x86s.Instr{}, false
	default:
		return d.instr[off], true
	}
}

// decodeRunX86 decodes [start, end) as consecutive instructions that must
// end with ret at the last byte. It also extracts the trailing pop-run
// registers.
func decodeRunX86(dec *secDecoder, start, end int) (instrs []string, pops []int, ok bool) {
	off := start
	var decoded []x86s.Instr
	for off < end {
		in, valid := dec.at(off)
		if !valid {
			return nil, nil, false
		}
		decoded = append(decoded, in)
		off += int(in.Size)
	}
	if off != end || len(decoded) == 0 || decoded[len(decoded)-1].Op != x86s.OpRet {
		return nil, nil, false
	}
	// A useful gadget must not transfer control before its ret.
	for _, in := range decoded[:len(decoded)-1] {
		switch in.Op {
		case x86s.OpRet, x86s.OpJmpRel, x86s.OpJcc, x86s.OpJecxz,
			x86s.OpCallRel, x86s.OpCallInd, x86s.OpJmpInd, x86s.OpInt, x86s.OpHlt:
			return nil, nil, false
		}
	}
	// Trailing run of pops immediately before ret.
	for _, in := range decoded[:len(decoded)-1] {
		if in.Op == x86s.OpPopR {
			pops = append(pops, in.R1)
		} else {
			pops = nil
		}
	}
	// Only count the pops if the whole body is pops (pure pop-ret gadget);
	// otherwise report the gadget without a pop summary.
	pure := true
	for _, in := range decoded[:len(decoded)-1] {
		if in.Op != x86s.OpPopR {
			pure = false
			break
		}
	}
	if !pure {
		pops = nil
	}
	for _, in := range decoded {
		instrs = append(instrs, in.String())
	}
	return instrs, pops, true
}

// scanARM inspects every 4-aligned word.
func (f *Finder) scanARM(sec image.Section) {
	for off := 0; off+4 <= len(sec.Data); off += 4 {
		w := uint32(sec.Data[off]) | uint32(sec.Data[off+1])<<8 |
			uint32(sec.Data[off+2])<<16 | uint32(sec.Data[off+3])<<24
		in, err := arms.Decode(w)
		if err != nil {
			continue
		}
		addr := sec.Addr + uint32(off)
		switch in.Op {
		case arms.OpPop:
			if in.RegList&(1<<arms.PC) == 0 {
				continue
			}
			var pops []int
			for r := 0; r < 15; r++ {
				if in.RegList&(1<<r) != 0 {
					pops = append(pops, r)
				}
			}
			f.gadgets = append(f.gadgets, Gadget{
				Addr: addr, Kind: KindPopPC, Instrs: []string{in.String()}, Pops: pops,
			})
		case arms.OpBLX:
			f.gadgets = append(f.gadgets, Gadget{
				Addr: addr, Kind: KindBlxReg, Instrs: []string{in.String()}, Reg: in.Rd,
			})
		case arms.OpBX:
			f.gadgets = append(f.gadgets, Gadget{
				Addr: addr, Kind: KindBxReg, Instrs: []string{in.String()}, Reg: in.Rd,
			})
		}
	}
}

// All returns every discovered gadget, sorted by address.
func (f *Finder) All() []Gadget {
	out := make([]Gadget, len(f.gadgets))
	copy(out, f.gadgets)
	return out
}

// FindPopRet returns an x86s gadget that pops exactly n registers then
// rets (n=0 is a bare ret).
func (f *Finder) FindPopRet(n int) (Gadget, bool) {
	for _, g := range f.gadgets {
		if g.Kind != KindRet {
			continue
		}
		if len(g.Instrs) == n+1 && len(g.Pops) == n {
			return g, true
		}
		if n == 0 && len(g.Instrs) == 1 {
			return g, true
		}
	}
	return Gadget{}, false
}

// FindPopPC returns an arms pop gadget whose register list (excluding pc)
// is exactly regs.
func (f *Finder) FindPopPC(regs ...int) (Gadget, bool) {
	want := make(map[int]bool, len(regs))
	for _, r := range regs {
		want[r] = true
	}
	for _, g := range f.gadgets {
		if g.Kind != KindPopPC || len(g.Pops) != len(regs) {
			continue
		}
		match := true
		for _, r := range g.Pops {
			if !want[r] {
				match = false
				break
			}
		}
		if match {
			return g, true
		}
	}
	return Gadget{}, false
}

// FindBlxReg returns an arms blx gadget through the given register.
func (f *Finder) FindBlxReg(reg int) (Gadget, bool) {
	for _, g := range f.gadgets {
		if g.Kind == KindBlxReg && g.Reg == reg {
			return g, true
		}
	}
	return Gadget{}, false
}

// MemStr searches the image's readable sections for a byte value and
// returns every address holding it — ROPgadget's -memstr, used to harvest
// "/bin/sh" characters from a binary that never contains the whole string.
func (f *Finder) MemStr(c byte) []uint32 {
	var out []uint32
	for _, sec := range f.img.Sections {
		for i, b := range sec.Data {
			if b == c {
				out = append(out, sec.Addr+uint32(i))
			}
		}
	}
	return out
}

// MemStrFirst returns the first address holding byte c.
func (f *Finder) MemStrFirst(c byte) (uint32, bool) {
	for _, sec := range f.img.Sections {
		for i, b := range sec.Data {
			if b == c {
				return sec.Addr + uint32(i), true
			}
		}
	}
	return 0, false
}
