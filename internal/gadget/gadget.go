// Package gadget finds code-reuse gadgets in linked images, playing the
// role ropper and ROPgadget play in the paper (§III-B2, §III-C): it scans
// executable sections for short instruction sequences ending in a control
// transfer an attacker can steer — `ret` on x86s; `pop {…, pc}`, `blx rN`
// or `bx rN` on arms — and it searches readable sections for single
// characters (ROPgadget's -memstr), which the ASLR exploit uses to
// assemble "/bin/sh" in .bss one byte at a time.
//
// Like the real tools, the finder works on the binary image, not a live
// process: for a non-PIE binary those addresses hold at runtime even under
// ASLR, which is exactly the bypass surface of §III-C.
package gadget

import (
	"container/list"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"connlab/internal/image"
	"connlab/internal/isa"
	"connlab/internal/isa/arms"
	"connlab/internal/isa/x86s"
	"connlab/internal/mem"
	"connlab/internal/telemetry"
)

// Kind classifies what terminates a gadget.
type Kind uint8

// Gadget kinds.
const (
	// KindRet ends in x86s ret.
	KindRet Kind = iota + 1
	// KindPopPC ends in arms pop {…, pc}.
	KindPopPC
	// KindBlxReg is an arms blx rN.
	KindBlxReg
	// KindBxReg is an arms bx rN.
	KindBxReg
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case KindRet:
		return "ret"
	case KindPopPC:
		return "pop-pc"
	case KindBlxReg:
		return "blx-reg"
	case KindBxReg:
		return "bx-reg"
	default:
		return "unknown"
	}
}

// Gadget is one usable instruction sequence.
type Gadget struct {
	Addr   uint32
	Kind   Kind
	Instrs []string
	// Pops lists the registers popped before control leaves, in pop order
	// (x86s: the pop run before ret; arms: the pop reglist minus pc).
	Pops []int
	// Reg is the register a blx/bx gadget branches through.
	Reg int
}

// String renders the gadget ropper-style.
func (g Gadget) String() string {
	out := fmt.Sprintf("%#08x:", g.Addr)
	for i, in := range g.Instrs {
		if i > 0 {
			out += " ;"
		}
		out += " " + in
	}
	return out
}

// maxGadgetInstrs bounds the sequence length reported.
const maxGadgetInstrs = 6

// secIndex is the scan result for one section, position-independent:
// gadget addresses and memstr offsets are section-relative, so the same
// index serves every image that places identical bytes at any base —
// which is how diversified layouts (same content, different addresses)
// share one scan.
type secIndex struct {
	// gadgets hold section-relative addresses, in ascending order.
	gadgets []Gadget
	// memPos[c] lists the section-relative offsets of byte value c in
	// ascending order (ROPgadget's -memstr, precomputed).
	memPos [256][]uint32
}

// scanKey identifies a section's scannable content. The hash (FNV-1a
// over the data) plus length and metadata stands in for the bytes
// themselves; sections with equal keys get the same index.
type scanKey struct {
	arch isa.Arch
	name string
	perm mem.Perm
	size int
	hash uint64
}

// DefaultScanCacheCap bounds the shared section-scan cache. Diversified
// build sweeps see thousands of distinct section contents; beyond the
// cap the least-recently-used index is dropped (and rebuilt — or
// rehydrated from the snapshot store — on next sight).
const DefaultScanCacheCap = 4096

// scanEntry pairs a cache key with its index for LRU bookkeeping.
type scanEntry struct {
	key scanKey
	idx *secIndex
}

var (
	scanMu    sync.Mutex
	scanCache = make(map[scanKey]*list.Element)
	scanLRU   = list.New() // front = most recently used
	scanCap   = DefaultScanCacheCap
	// scanBuilds/scanHits instrument the cache for tests and reports.
	scanBuilds, scanHits atomic.Uint64
)

// SetScanCacheCap changes the scan-cache bound, evicting immediately if
// the cache is over the new cap. Non-positive restores the default.
func SetScanCacheCap(n int) {
	if n <= 0 {
		n = DefaultScanCacheCap
	}
	scanMu.Lock()
	scanCap = n
	evictOverCapLocked()
	scanMu.Unlock()
}

// FlushScanCache empties the scan cache. Benchmarks use it to model a
// fresh process; evictions from an explicit flush are not counted.
func FlushScanCache() {
	scanMu.Lock()
	scanCache = make(map[scanKey]*list.Element)
	scanLRU.Init()
	scanMu.Unlock()
}

// ScanCacheLen reports the number of cached section indexes.
func ScanCacheLen() int {
	scanMu.Lock()
	defer scanMu.Unlock()
	return len(scanCache)
}

// evictOverCapLocked drops LRU entries until the cache fits the cap.
func evictOverCapLocked() {
	for len(scanCache) > scanCap {
		oldest := scanLRU.Back()
		scanLRU.Remove(oldest)
		delete(scanCache, oldest.Value.(scanEntry).key)
		telemetry.Inc(telemetry.CtrGadgetScanEvict)
	}
}

func fnv64(b []byte) uint64 {
	h := uint64(14695981039346656037)
	for _, c := range b {
		h ^= uint64(c)
		h *= 1099511628211
	}
	return h
}

// sectionIndex returns the (possibly cached) index for a section.
// buildSecIndex is a pure function of (arch, section content), so a
// duplicate build racing a cache insert produces an identical index and
// either copy may win.
func sectionIndex(arch isa.Arch, sec image.Section) *secIndex {
	key := scanKey{arch: arch, name: sec.Name, perm: sec.Perm, size: len(sec.Data), hash: fnv64(sec.Data)}
	scanMu.Lock()
	if el, ok := scanCache[key]; ok {
		scanLRU.MoveToFront(el)
		scanMu.Unlock()
		scanHits.Add(1)
		telemetry.Inc(telemetry.CtrGadgetScanHit)
		return el.Value.(scanEntry).idx
	}
	scanMu.Unlock()
	idx := loadOrBuildSecIndex(arch, sec)
	scanMu.Lock()
	if el, ok := scanCache[key]; ok {
		idx = el.Value.(scanEntry).idx
		scanLRU.MoveToFront(el)
	} else {
		scanCache[key] = scanLRU.PushFront(scanEntry{key: key, idx: idx})
		telemetry.Inc(telemetry.CtrGadgetScanInsert)
		evictOverCapLocked()
	}
	scanMu.Unlock()
	return idx
}

// loadOrBuildSecIndex rehydrates a section index from the snapshot
// store when one is configured and holds a verified entry, and scans
// the section live otherwise (persisting the result for next time).
func loadOrBuildSecIndex(arch isa.Arch, sec image.Section) *secIndex {
	s := snapStore.Load()
	if s != nil {
		if idx, err := loadSecIndex(s, arch, sec); err == nil {
			return idx
		}
	}
	idx := buildSecIndex(arch, sec)
	scanBuilds.Add(1)
	telemetry.Inc(telemetry.CtrGadgetScanBuild)
	if s != nil {
		saveSecIndex(s, arch, sec, idx)
	}
	return idx
}

// buildSecIndex scans one section at base 0.
func buildSecIndex(arch isa.Arch, sec image.Section) *secIndex {
	idx := &secIndex{}
	rel := sec
	rel.Addr = 0
	if sec.Perm&mem.PermExec != 0 {
		if arch == isa.ArchARMS {
			idx.gadgets = scanARM(rel)
		} else {
			idx.gadgets = scanX86(rel)
		}
		sort.Slice(idx.gadgets, func(i, j int) bool { return idx.gadgets[i].Addr < idx.gadgets[j].Addr })
	}
	for off, b := range sec.Data {
		idx.memPos[b] = append(idx.memPos[b], uint32(off))
	}
	return idx
}

// ScanCacheStats reports how many section scans were computed vs served
// from the shared index.
func ScanCacheStats() (builds, hits uint64) {
	return scanBuilds.Load(), scanHits.Load()
}

// placedSec is a cached section index rebased at its image address.
type placedSec struct {
	base uint32
	idx  *secIndex
}

// Finder serves gadget lookups for one linked image. The underlying
// scans are shared across finders via the per-content section index and
// rebased to this image's layout; lookups after construction are
// O(1) map probes and allocation-free. Returned gadgets share Instrs
// and Pops backing arrays with the cache — callers must treat them as
// read-only.
type Finder struct {
	img     *image.Image
	secs    []placedSec
	gadgets []Gadget
	popRet  map[int]Gadget
	popPC   map[uint32]Gadget
	blx     map[int]Gadget
}

// NewFinder indexes the image: per-section scans come from the shared
// cache (computed on first sight of the content), then gadgets are
// rebased and the lookup tables built.
func NewFinder(img *image.Image) *Finder {
	f := &Finder{img: img}
	total := 0
	for _, sec := range img.Sections {
		ps := placedSec{base: sec.Addr, idx: sectionIndex(img.Arch, sec)}
		f.secs = append(f.secs, ps)
		total += len(ps.idx.gadgets)
	}
	f.gadgets = make([]Gadget, 0, total)
	for _, ps := range f.secs {
		for _, g := range ps.idx.gadgets {
			g.Addr += ps.base
			f.gadgets = append(f.gadgets, g)
		}
	}
	sort.Slice(f.gadgets, func(i, j int) bool { return f.gadgets[i].Addr < f.gadgets[j].Addr })

	f.popRet = make(map[int]Gadget)
	f.popPC = make(map[uint32]Gadget)
	f.blx = make(map[int]Gadget)
	for _, g := range f.gadgets {
		switch g.Kind {
		case KindRet:
			// Only pure pop-runs qualify (a bare ret is the n=0 case),
			// mirroring the old linear FindPopRet predicate.
			if len(g.Instrs) == len(g.Pops)+1 {
				if _, seen := f.popRet[len(g.Pops)]; !seen {
					f.popRet[len(g.Pops)] = g
				}
			}
		case KindPopPC:
			mask := regMask(g.Pops)
			if _, seen := f.popPC[mask]; !seen {
				f.popPC[mask] = g
			}
		case KindBlxReg:
			if _, seen := f.blx[g.Reg]; !seen {
				f.blx[g.Reg] = g
			}
		}
	}
	return f
}

// regMask folds a register list into a bitmask key (registers are
// 0..14; pc never appears in Pops).
func regMask(regs []int) uint32 {
	var m uint32
	for _, r := range regs {
		m |= 1 << uint(r&31)
	}
	return m
}

// scanX86 finds every decodable suffix ending exactly on a ret byte.
func scanX86(sec image.Section) []Gadget {
	const lookback = 24
	var out []Gadget
	dec := newSecDecoder(sec.Data)
	for i, b := range sec.Data {
		if b != 0xC3 {
			continue
		}
		retOff := i
		// Try each start within lookback: keep sequences that decode
		// cleanly and land exactly on the ret.
		for start := retOff - lookback; start <= retOff; start++ {
			if start < 0 {
				continue
			}
			instrs, pops, ok := decodeRunX86(dec, start, retOff+1)
			if !ok || len(instrs) > maxGadgetInstrs {
				continue
			}
			out = append(out, Gadget{
				Addr:   sec.Addr + uint32(start),
				Kind:   KindRet,
				Instrs: instrs,
				Pops:   pops,
			})
		}
	}
	return out
}

// secDecoder memoizes decode results per section offset, so the lookback
// windows of neighboring ret bytes — which overlap almost entirely — decode
// each start offset once instead of once per window. Decoding against the
// full section tail instead of a window truncated at the ret is equivalent:
// the decoder is prefix-deterministic, so extra bytes can only turn a
// truncation failure into a longer instruction, which then overshoots the
// ret byte and is rejected exactly like the truncated decode was.
type secDecoder struct {
	data []byte
	// size[off] is 0 while undecoded, -1 for an illegal/truncated decode,
	// else the instruction length at off.
	size  []int8
	instr []x86s.Instr
}

func newSecDecoder(data []byte) *secDecoder {
	return &secDecoder{data: data, size: make([]int8, len(data)), instr: make([]x86s.Instr, len(data))}
}

// at decodes the instruction starting at off, memoized.
func (d *secDecoder) at(off int) (x86s.Instr, bool) {
	switch d.size[off] {
	case 0:
		in, err := x86s.Decode(d.data[off:])
		if err != nil {
			d.size[off] = -1
			return x86s.Instr{}, false
		}
		d.size[off] = int8(in.Size)
		d.instr[off] = in
		return in, true
	case -1:
		return x86s.Instr{}, false
	default:
		return d.instr[off], true
	}
}

// decodeRunX86 decodes [start, end) as consecutive instructions that must
// end with ret at the last byte. It also extracts the trailing pop-run
// registers.
func decodeRunX86(dec *secDecoder, start, end int) (instrs []string, pops []int, ok bool) {
	off := start
	var decoded []x86s.Instr
	for off < end {
		in, valid := dec.at(off)
		if !valid {
			return nil, nil, false
		}
		decoded = append(decoded, in)
		off += int(in.Size)
	}
	if off != end || len(decoded) == 0 || decoded[len(decoded)-1].Op != x86s.OpRet {
		return nil, nil, false
	}
	// A useful gadget must not transfer control before its ret.
	for _, in := range decoded[:len(decoded)-1] {
		switch in.Op {
		case x86s.OpRet, x86s.OpJmpRel, x86s.OpJcc, x86s.OpJecxz,
			x86s.OpCallRel, x86s.OpCallInd, x86s.OpJmpInd, x86s.OpInt, x86s.OpHlt:
			return nil, nil, false
		}
	}
	// Trailing run of pops immediately before ret.
	for _, in := range decoded[:len(decoded)-1] {
		if in.Op == x86s.OpPopR {
			pops = append(pops, in.R1)
		} else {
			pops = nil
		}
	}
	// Only count the pops if the whole body is pops (pure pop-ret gadget);
	// otherwise report the gadget without a pop summary.
	pure := true
	for _, in := range decoded[:len(decoded)-1] {
		if in.Op != x86s.OpPopR {
			pure = false
			break
		}
	}
	if !pure {
		pops = nil
	}
	for _, in := range decoded {
		instrs = append(instrs, in.String())
	}
	return instrs, pops, true
}

// scanARM inspects every 4-aligned word.
func scanARM(sec image.Section) []Gadget {
	var out []Gadget
	for off := 0; off+4 <= len(sec.Data); off += 4 {
		w := uint32(sec.Data[off]) | uint32(sec.Data[off+1])<<8 |
			uint32(sec.Data[off+2])<<16 | uint32(sec.Data[off+3])<<24
		in, err := arms.Decode(w)
		if err != nil {
			continue
		}
		addr := sec.Addr + uint32(off)
		switch in.Op {
		case arms.OpPop:
			if in.RegList&(1<<arms.PC) == 0 {
				continue
			}
			var pops []int
			for r := 0; r < 15; r++ {
				if in.RegList&(1<<r) != 0 {
					pops = append(pops, r)
				}
			}
			out = append(out, Gadget{
				Addr: addr, Kind: KindPopPC, Instrs: []string{in.String()}, Pops: pops,
			})
		case arms.OpBLX:
			out = append(out, Gadget{
				Addr: addr, Kind: KindBlxReg, Instrs: []string{in.String()}, Reg: in.Rd,
			})
		case arms.OpBX:
			out = append(out, Gadget{
				Addr: addr, Kind: KindBxReg, Instrs: []string{in.String()}, Reg: in.Rd,
			})
		}
	}
	return out
}

// All returns every discovered gadget, sorted by address.
func (f *Finder) All() []Gadget {
	out := make([]Gadget, len(f.gadgets))
	copy(out, f.gadgets)
	return out
}

// FindPopRet returns an x86s gadget that pops exactly n registers then
// rets (n=0 is a bare ret). O(1): the table holds the lowest-addressed
// pure pop-run per count, exactly what the old linear scan returned.
func (f *Finder) FindPopRet(n int) (Gadget, bool) {
	g, ok := f.popRet[n]
	return g, ok
}

// FindPopPC returns an arms pop gadget whose register list (excluding pc)
// is exactly regs. O(1) via a register-bitmask key.
func (f *Finder) FindPopPC(regs ...int) (Gadget, bool) {
	mask := regMask(regs)
	g, ok := f.popPC[mask]
	// Duplicate registers in the query fold into one mask bit; the old
	// predicate required len(Pops) == len(regs), so reject those.
	if ok && len(g.Pops) == len(regs) {
		return g, true
	}
	return Gadget{}, false
}

// FindBlxReg returns an arms blx gadget through the given register.
func (f *Finder) FindBlxReg(reg int) (Gadget, bool) {
	g, ok := f.blx[reg]
	return g, ok
}

// MemStr searches the image's readable sections for a byte value and
// returns every address holding it — ROPgadget's -memstr, used to harvest
// "/bin/sh" characters from a binary that never contains the whole string.
// The per-section positions come from the shared index; only the merged,
// rebased result slice is allocated.
func (f *Finder) MemStr(c byte) []uint32 {
	total := 0
	for _, ps := range f.secs {
		total += len(ps.idx.memPos[c])
	}
	if total == 0 {
		return nil
	}
	out := make([]uint32, 0, total)
	for _, ps := range f.secs {
		for _, off := range ps.idx.memPos[c] {
			out = append(out, ps.base+off)
		}
	}
	return out
}

// MemStrFirst returns the first address holding byte c (sections in
// image order, offsets ascending). Allocation-free.
func (f *Finder) MemStrFirst(c byte) (uint32, bool) {
	for _, ps := range f.secs {
		if pos := ps.idx.memPos[c]; len(pos) > 0 {
			return ps.base + pos[0], true
		}
	}
	return 0, false
}
