package gadget

import (
	"testing"

	"connlab/internal/image"
	"connlab/internal/isa"
)

// TestScanCacheEvictionPressure churns the scan cache far past its cap —
// the shape of a diversified-build sweep, which is what the configurable
// capacity exists for — and checks the invariants that matter under
// pressure: the cache never exceeds its bound, a hot entry kept in the
// recency front survives the entire churn without a rebuild, and every
// cold section costs exactly one build however often it is evicted.
func TestScanCacheEvictionPressure(t *testing.T) {
	resetScanState(t)
	const cap = 8
	const distinct = 100
	SetScanCacheCap(cap)

	hot := synthSection(9999, 512)
	hotIdx := sectionIndex(isa.ArchX86S, hot)

	sections := make([]image.Section, distinct)
	for i := range sections {
		sections[i] = synthSection(int64(i), 512)
	}
	builds0, hits0 := ScanCacheStats()
	for round := 0; round < 3; round++ {
		for i := range sections {
			sectionIndex(isa.ArchX86S, sections[i])
			// Re-touch the hot section after every few insertions so it
			// never ages to the back of the LRU list.
			if i%(cap/2) == 0 {
				if got := sectionIndex(isa.ArchX86S, hot); got != hotIdx {
					t.Fatalf("round %d, insertion %d: hot section was evicted and rebuilt", round, i)
				}
			}
			if n := ScanCacheLen(); n > cap {
				t.Fatalf("cache holds %d entries, cap is %d", n, cap)
			}
		}
	}
	builds1, hits1 := ScanCacheStats()
	// With 100 distinct sections cycling through an 8-entry cache, every
	// pass rebuilds every cold section (they are always evicted before
	// their next use); the hot section must account for all cache hits.
	coldBuilds := builds1 - builds0
	if want := uint64(3 * distinct); coldBuilds != want {
		t.Errorf("cold builds = %d, want %d (every pass rebuilds every cold section)", coldBuilds, want)
	}
	if hits1 == hits0 {
		t.Errorf("no cache hits recorded; the hot section's touches should all hit")
	}

	// Restoring the default cap stops the pressure: after one warming
	// pass, a second full pass is all hits.
	SetScanCacheCap(0)
	for i := range sections {
		sectionIndex(isa.ArchX86S, sections[i])
	}
	builds3, _ := ScanCacheStats()
	for i := range sections {
		sectionIndex(isa.ArchX86S, sections[i])
	}
	builds4, _ := ScanCacheStats()
	if builds4 != builds3 {
		t.Errorf("%d rebuilds with the default cap, want 0", builds4-builds3)
	}
}
