package gadget

import (
	"testing"

	"connlab/internal/image"
	"connlab/internal/isa"
	"connlab/internal/isa/arms"
	"connlab/internal/victim"
)

func linkVictim(t *testing.T, arch isa.Arch) *image.Image {
	t.Helper()
	u, err := victim.BuildProgram(arch, victim.BuildOpts{})
	if err != nil {
		t.Fatalf("build victim: %v", err)
	}
	img, err := image.Link(u, image.DefaultProgramLayout(arch), image.Options{})
	if err != nil {
		t.Fatalf("link: %v", err)
	}
	return img
}

func TestX86VictimHasPopPopPopRet(t *testing.T) {
	f := NewFinder(linkVictim(t, isa.ArchX86S))
	g, ok := f.FindPopRet(3)
	if !ok {
		t.Fatalf("no pop;pop;pop;ret gadget found; gadgets:\n%v", f.All())
	}
	if len(g.Pops) != 3 {
		t.Errorf("pops = %v, want 3 registers", g.Pops)
	}
	if _, ok := f.FindPopRet(0); !ok {
		t.Error("no bare ret gadget found")
	}
	if _, ok := f.FindPopRet(1); !ok {
		t.Error("no pop;ret gadget found")
	}
}

func TestARMVictimHasPaperGadgets(t *testing.T) {
	f := NewFinder(linkVictim(t, isa.ArchARMS))

	// The register-loading gadget of Listing 2/5.
	g, ok := f.FindPopPC(arms.R0, arms.R1, arms.R2, arms.R3, arms.R5, arms.R6, arms.R7)
	if !ok {
		t.Fatalf("no pop {r0,r1,r2,r3,r5,r6,r7,pc} gadget; gadgets:\n%v", f.All())
	}
	if g.Kind != KindPopPC {
		t.Errorf("kind = %v, want pop-pc", g.Kind)
	}

	// The branch-link gadget of §III-C2.
	if _, ok := f.FindBlxReg(arms.R3); !ok {
		t.Error("no blx r3 gadget found")
	}
}

func TestMemStrCoversBinSh(t *testing.T) {
	for _, arch := range []isa.Arch{isa.ArchX86S, isa.ArchARMS} {
		t.Run(string(arch), func(t *testing.T) {
			f := NewFinder(linkVictim(t, arch))
			for _, c := range []byte("/bin/sh") {
				addrs := f.MemStr(c)
				if len(addrs) == 0 {
					t.Errorf("no occurrence of %q in the victim image", string(c))
				}
			}
			if _, ok := f.MemStrFirst('/'); !ok {
				t.Error("MemStrFirst('/') found nothing")
			}
		})
	}
}

func TestGadgetsSortedAndRenderable(t *testing.T) {
	f := NewFinder(linkVictim(t, isa.ArchX86S))
	all := f.All()
	if len(all) == 0 {
		t.Fatal("no gadgets at all")
	}
	for i := 1; i < len(all); i++ {
		if all[i].Addr < all[i-1].Addr {
			t.Fatalf("gadgets not sorted at %d", i)
		}
	}
	for _, g := range all[:min(5, len(all))] {
		if g.String() == "" {
			t.Error("empty gadget rendering")
		}
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
