package gadget

import (
	"strings"
	"testing"

	"connlab/internal/image"
	"connlab/internal/isa"
	"connlab/internal/mem"
)

// imageFromBytes wraps raw code bytes as a linked image for the scanner.
func imageFromBytes(arch isa.Arch, code []byte) *image.Image {
	return &image.Image{
		Arch: arch,
		Sections: []image.Section{
			{Name: ".text", Addr: 0x1000, Data: code, Perm: mem.PermRX},
		},
		Symbols: map[string]image.Symbol{},
	}
}

func TestX86GadgetsFromUnalignedBytes(t *testing.T) {
	// mov eax, 0x5bC35858 — the immediate contains "pop ebx; ret" at an
	// unaligned offset, a classic unintended gadget.
	code := []byte{0xB8, 0x58, 0x58, 0x5B, 0xC3, 0xC3}
	f := NewFinder(imageFromBytes(isa.ArchX86S, code))
	g, ok := f.FindPopRet(3)
	if !ok {
		t.Fatalf("no pop;pop;pop;ret found inside the immediate; all: %v", f.All())
	}
	if g.Addr != 0x1001 {
		t.Errorf("gadget at %#x, want inside the immediate", g.Addr)
	}
}

func TestX86GadgetsExcludeControlFlowBodies(t *testing.T) {
	// call rel32 followed by ret must not be reported as one gadget
	// (control leaves before the ret).
	code := []byte{0xE8, 0x00, 0x00, 0x00, 0x00, 0xC3}
	f := NewFinder(imageFromBytes(isa.ArchX86S, code))
	for _, g := range f.All() {
		for _, in := range g.Instrs[:len(g.Instrs)-1] {
			if strings.HasPrefix(in, "call") || strings.HasPrefix(in, "jmp") ||
				strings.HasPrefix(in, "int") {
				t.Errorf("gadget %v contains a mid-sequence transfer", g)
			}
		}
	}
	// The bare ret itself is still found.
	if _, ok := f.FindPopRet(0); !ok {
		t.Error("bare ret not found")
	}
}

func TestX86MixedBodyGadgetHasNoPopSummary(t *testing.T) {
	// mov eax, ebx; pop ecx; ret — a usable gadget but not a pure
	// pop-run, so Pops must be empty and FindPopRet(1) must not match it
	// over a pure pop;ret elsewhere.
	code := []byte{0x89, 0xD8, 0x59, 0xC3}
	f := NewFinder(imageFromBytes(isa.ArchX86S, code))
	var found bool
	for _, g := range f.All() {
		if len(g.Instrs) == 3 {
			found = true
			if g.Pops != nil {
				t.Errorf("mixed gadget has pop summary %v", g.Pops)
			}
		}
	}
	if !found {
		t.Error("3-instruction gadget not reported")
	}
}

func TestARMScannerIgnoresNonCanonicalWords(t *testing.T) {
	// All 0xFF words decode as nothing on arms; the scanner must find no
	// gadgets and not panic.
	code := make([]byte, 64)
	for i := range code {
		code[i] = 0xFF
	}
	f := NewFinder(imageFromBytes(isa.ArchARMS, code))
	if n := len(f.All()); n != 0 {
		t.Errorf("found %d gadgets in garbage", n)
	}
}

func TestFindPopPCRejectsWrongList(t *testing.T) {
	img := imageFromBytes(isa.ArchARMS, nil)
	f := NewFinder(img)
	if _, ok := f.FindPopPC(0, 1); ok {
		t.Error("found a gadget in an empty image")
	}
	if _, ok := f.FindBlxReg(3); ok {
		t.Error("found blx in an empty image")
	}
}

func TestMemStrSkipsNothing(t *testing.T) {
	img := &image.Image{
		Arch: isa.ArchX86S,
		Sections: []image.Section{
			{Name: ".text", Addr: 0x1000, Data: []byte{0x90, 'Z', 0x90}, Perm: mem.PermRX},
			{Name: ".rodata", Addr: 0x2000, Data: []byte("aZb"), Perm: mem.PermRead},
		},
		Symbols: map[string]image.Symbol{},
	}
	f := NewFinder(img)
	addrs := f.MemStr('Z')
	if len(addrs) != 2 || addrs[0] != 0x1001 || addrs[1] != 0x2001 {
		t.Errorf("MemStr = %#v", addrs)
	}
	if _, ok := f.MemStrFirst(0xEE); ok {
		t.Error("found a byte that is not there")
	}
}

func TestKindStrings(t *testing.T) {
	for k, want := range map[Kind]string{
		KindRet: "ret", KindPopPC: "pop-pc", KindBlxReg: "blx-reg", KindBxReg: "bx-reg",
	} {
		if k.String() != want {
			t.Errorf("%d.String() = %q", k, k.String())
		}
	}
}
