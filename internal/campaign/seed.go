package campaign

// Deterministic seed derivation. Every randomized decision in a campaign
// (per-device ASLR samples, canary values) is driven by a seed derived
// from the campaign root seed and the structural position of the trial —
// never from scheduling order, wall-clock time, or worker identity. That
// is what makes a campaign's output identical whether it runs on one
// worker or sixteen.
//
// The mixer is splitmix64 (Steele, Lea & Flood, OOPSLA 2014): a single
// xor-shift-multiply chain with provably full-period output, cheap enough
// to derive millions of seeds and strong enough that consecutive trial
// indices land in unrelated parts of the seed space (a plain root+i
// scheme would make "device i under config A" and "device i+1 under
// config B" correlated through the kernel's rand.NewSource).

// splitmix64 is one output step of the splitmix64 generator.
func splitmix64(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	x ^= x >> 30
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 27
	x *= 0x94D049BB133111EB
	x ^= x >> 31
	return x
}

// DeriveSeed folds the given structural indices into the root seed and
// returns a positive, non-zero seed. The fold is order-sensitive:
// DeriveSeed(r, 1, 2) != DeriveSeed(r, 2, 1).
func DeriveSeed(root int64, idx ...uint64) int64 {
	x := splitmix64(uint64(root))
	for _, i := range idx {
		x = splitmix64(x ^ splitmix64(i+0x632BE59BD9B4E019))
	}
	s := int64(x & 0x7FFFFFFFFFFFFFFF)
	if s == 0 {
		s = 0x2545F4914F6CDD1D
	}
	return s
}
