package campaign

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"connlab/internal/defense"
	"connlab/internal/dns"
	"connlab/internal/exploit"
	"connlab/internal/image"
	"connlab/internal/isa"
	"connlab/internal/kernel"
	"connlab/internal/snapshot"
	"connlab/internal/telemetry"
	"connlab/internal/victim"
)

// Default campaign seeds, matching the lab's historical defaults.
const (
	DefaultRootSeed  = 2002
	DefaultReconSeed = 1001
)

// Scenario is one cell of a campaign: a victim configuration plus a
// fleet of devices to attack under it.
type Scenario struct {
	// Label names the scenario in reports; empty derives
	// "arch/kind/protection".
	Label string
	// Arch and Kind select the victim architecture and exploit strategy.
	Arch isa.Arch
	Kind exploit.Kind
	// Protection is the victim's defensive posture.
	Protection Protection
	// Build selects the deployed firmware (vulnerable 1.34 by default).
	Build victim.BuildOpts
	// ReconBuild, when non-nil, is the firmware the attacker's replica
	// runs (e.g. the attacker recons 1.34 while targets run 1.35).
	ReconBuild *victim.BuildOpts
	// Devices is the fleet size; 0 means 1.
	Devices int
	// PatchedEvery makes every PatchedEvery-th device run the patched
	// firmware (0 = none patched).
	PatchedEvery int
	// TargetSeed, when non-zero, pins the machine seed instead of
	// deriving it from the campaign root seed: a single device uses it
	// verbatim, a fleet uses TargetSeed+100+i per device (the lab's
	// historical fleet schedule). Zero derives per-device seeds with
	// DeriveSeed(root, scenarioIndex, deviceIndex).
	TargetSeed int64
	// Pineapple delivers the payload through a per-device rogue-AP world
	// (association hijack + MITM resolver, §III-D) instead of handing the
	// crafted response straight to the daemon.
	Pineapple bool
}

// label returns the display label.
func (s Scenario) label() string {
	if s.Label != "" {
		return s.Label
	}
	return fmt.Sprintf("%s/%s/%s", s.Arch, s.Kind, s.Protection)
}

// devices returns the effective fleet size.
func (s Scenario) devices() int {
	if s.Devices <= 0 {
		return 1
	}
	return s.Devices
}

// reconBuild returns the firmware the attacker replicates.
func (s Scenario) reconBuild() victim.BuildOpts {
	if s.ReconBuild != nil {
		return *s.ReconBuild
	}
	return s.Build
}

// Config parameterizes an engine.
type Config struct {
	// Workers is the goroutine pool size; <=0 means GOMAXPROCS.
	Workers int
	// RootSeed drives per-device seed derivation (0 = DefaultRootSeed).
	RootSeed int64
	// ReconSeed seeds the attacker's replica (0 = DefaultReconSeed).
	ReconSeed int64
	// Snapshots, when non-nil, is an on-disk store consulted before the
	// emulation-heavy recon probes and populated after live ones. It
	// never changes results — every entry is byte-verified on load and
	// cross-checked against live-sampled addresses — so it is excluded
	// from the serialized report config.
	Snapshots *snapshot.Store `json:"-"`
}

// Engine fans campaign scenarios across a worker pool, sharing
// per-configuration recon artifacts through build-once caches. All cached
// artifacts (targets, payloads, program units) are read-only after
// construction and safe to share between workers; per-device state
// (process memory, shadow stacks, netsim worlds) is always freshly built.
type Engine struct {
	cfg Config

	// recons caches attacker-side reconnaissance — victim build, image
	// link, gadget scan, frame discovery — per (arch, posture, build,
	// seed) configuration.
	recons *Cache[reconKey, *exploit.Target]
	// payloads caches built exploits per configuration and kind,
	// including construction failures (OutcomeBuildFail is a verdict).
	payloads *Cache[payloadKey, *exploit.Exploit]
	// packets caches the encoded attack response per payload: the lab's
	// synthetic query is a constant, so the crafted wire bytes are too —
	// one splice serves every device of a configuration.
	packets *Cache[payloadKey, []byte]
	// units and libcs cache the victim-side program units that every
	// device load links from.
	units *Cache[unitKey, *image.Unit]
	libcs *Cache[isa.Arch, *image.Unit]
	// linkOptions caches the §IV diversity permutations.
	linkOptions *Cache[linkKey, image.Options]

	// pool holds idle daemons for fixed-layout configurations (no
	// ASLR/PIE/diversity), recycled between devices instead of relinking
	// and remapping per trial. Recycling replays the per-device seed's
	// random stream, so a pooled daemon is byte-identical to a fresh load
	// and the report stays deterministic for any worker count.
	pool   map[poolKey][]*victim.Daemon
	poolMu sync.Mutex

	// Per-stage wall time, accumulated across workers (nanoseconds).
	nsRecon, nsPayload, nsVictimBuild, nsAttack atomic.Int64
}

// poolKey identifies daemons that are interchangeable under recycling: same
// program/libc units and the same fixed memory layout.
type poolKey struct {
	arch    isa.Arch
	opts    victim.BuildOpts
	wx      bool
	entropy int
}

type reconKey struct {
	arch     isa.Arch
	wx, aslr bool
	build    victim.BuildOpts
	seed     int64
}

type payloadKey struct {
	recon reconKey
	kind  exploit.Kind
}

type unitKey struct {
	arch isa.Arch
	opts victim.BuildOpts
}

type linkKey struct {
	arch isa.Arch
	opts victim.BuildOpts
	seed int64
}

// New returns an engine with fresh caches.
func New(cfg Config) *Engine {
	if cfg.RootSeed == 0 {
		cfg.RootSeed = DefaultRootSeed
	}
	if cfg.ReconSeed == 0 {
		cfg.ReconSeed = DefaultReconSeed
	}
	return &Engine{
		cfg: cfg,
		recons: NewCache[reconKey, *exploit.Target]().
			Instrument(telemetry.CtrReconBuild, telemetry.CtrReconHit),
		payloads: NewCache[payloadKey, *exploit.Exploit]().
			Instrument(telemetry.CtrPayloadBuild, telemetry.CtrPayloadHit),
		packets: NewCache[payloadKey, []byte]().
			Instrument(telemetry.CtrPacketBuild, telemetry.CtrPacketHit),
		units: NewCache[unitKey, *image.Unit]().
			Instrument(telemetry.CtrUnitBuild, telemetry.CtrUnitHit),
		libcs: NewCache[isa.Arch, *image.Unit]().
			Instrument(telemetry.CtrUnitBuild, telemetry.CtrUnitHit),
		linkOptions: NewCache[linkKey, image.Options](),
		pool:        make(map[poolKey][]*victim.Daemon),
	}
}

// Workers returns the effective pool size.
func (e *Engine) Workers() int {
	if e.cfg.Workers > 0 {
		return e.cfg.Workers
	}
	return runtime.GOMAXPROCS(0)
}

// ReconStats reports recon-cache effectiveness (builds = distinct
// configurations reconned, hits = devices served from cache).
func (e *Engine) ReconStats() CacheStats { return e.recons.Stats() }

// reconKeyFor derives the recon cache key: recon depends only on the
// architecture, the W⊕X/ASLR posture the attacker replicates (CFI and
// diversity are invisible to recon — the point of measuring them), the
// replicated firmware, and the replica seed.
func (e *Engine) reconKeyFor(s Scenario) reconKey {
	return reconKey{
		arch: s.Arch, wx: s.Protection.WX, aslr: s.Protection.ASLR,
		build: s.reconBuild(), seed: e.cfg.ReconSeed,
	}
}

// recon returns the cached attacker-side reconnaissance for a scenario's
// configuration, performing it on first use.
func (e *Engine) recon(s Scenario) (*exploit.Target, error) {
	k := e.reconKeyFor(s)
	return e.recons.Get(k, func() (*exploit.Target, error) {
		defer e.timeStage(&e.nsRecon)()
		return exploit.ReconWithStore(k.arch, k.build, kernel.Config{WX: k.wx, ASLR: k.aslr, Seed: k.seed}, e.cfg.Snapshots)
	})
}

// payload returns the cached exploit for a scenario — one payload, many
// victims. A build failure is cached like a success: it is the verdict
// for every device in the configuration.
func (e *Engine) payload(s Scenario, tgt *exploit.Target) (*exploit.Exploit, error) {
	k := payloadKey{recon: e.reconKeyFor(s), kind: s.Kind}
	return e.payloads.Get(k, func() (*exploit.Exploit, error) {
		defer e.timeStage(&e.nsPayload)()
		return exploit.Build(tgt, s.Kind)
	})
}

// attackQueryWire is the encoded form of the lab's synthetic lookup — the
// query every direct-delivery trial pretends the victim forwarded
// upstream. It is a compile-time constant of the lab, built once.
var attackQueryWire = func() []byte {
	b, err := dns.NewQuery(0x1337, "time.iot-vendor.example", dns.TypeA).Encode()
	if err != nil {
		panic(fmt.Sprintf("campaign: attack query: %v", err))
	}
	return b
}()

// attackPacket returns the cached crafted response for a scenario's
// payload. The query is fixed, so the packet is a pure function of the
// exploit; victims copy it into their own heap, so one buffer is safe to
// share across devices and workers.
func (e *Engine) attackPacket(s Scenario, ex *exploit.Exploit) ([]byte, error) {
	k := payloadKey{recon: e.reconKeyFor(s), kind: s.Kind}
	return e.packets.Get(k, func() ([]byte, error) {
		return ex.AppendResponse(nil, attackQueryWire)
	})
}

// victimUnit returns the cached program unit for a victim build. Units
// are read-only inputs to linking, so one unit serves every device load.
func (e *Engine) victimUnit(arch isa.Arch, opts victim.BuildOpts) (*image.Unit, error) {
	return e.units.Get(unitKey{arch: arch, opts: opts}, func() (*image.Unit, error) {
		defer e.timeStage(&e.nsVictimBuild)()
		return victim.BuildProgram(arch, opts)
	})
}

// libcUnit returns the cached libc unit for an architecture.
func (e *Engine) libcUnit(arch isa.Arch) (*image.Unit, error) {
	return e.libcs.Get(arch, func() (*image.Unit, error) {
		defer e.timeStage(&e.nsVictimBuild)()
		return image.BuildLibc(arch)
	})
}

// targetSetup is the cached counterpart of TargetSetup: the diversity
// permutation is computed once per (arch, build, seed) instead of once
// per device. The shadow stack, which holds per-process state, is always
// fresh.
func (e *Engine) targetSetup(s Scenario, seed int64, patched bool) (kernel.Config, victim.BuildOpts, *defense.ShadowStack, error) {
	p := s.Protection
	cfg := kernel.Config{WX: p.WX, ASLR: p.ASLR, PIE: p.PIE, Seed: seed}
	opts := s.Build
	opts.Canary = opts.Canary || p.Canary
	opts.Patched = opts.Patched || patched
	var ss *defense.ShadowStack
	if p.CFI {
		ss = defense.NewShadowStack()
		cfg.Hooks = ss
	}
	if p.DiversitySeed != 0 {
		lo, err := e.linkOptions.Get(linkKey{arch: s.Arch, opts: opts, seed: p.DiversitySeed},
			func() (image.Options, error) {
				defer e.timeStage(&e.nsVictimBuild)()
				return diversityLinkOpts(s.Arch, opts, p.DiversitySeed)
			})
		if err != nil {
			return cfg, opts, nil, err
		}
		cfg.LinkOpts = lo
	}
	return cfg, opts, ss, nil
}

// newDaemon loads one fresh device from the cached units.
func (e *Engine) newDaemon(arch isa.Arch, opts victim.BuildOpts, cfg kernel.Config) (*victim.Daemon, error) {
	prog, err := e.victimUnit(arch, opts)
	if err != nil {
		return nil, err
	}
	libc, err := e.libcUnit(arch)
	if err != nil {
		return nil, err
	}
	return victim.NewDaemonWith(prog, libc, cfg)
}

// poolable reports whether a daemon loaded under cfg has a seed-independent
// memory layout and can therefore be recycled for another device's seed.
func poolable(cfg kernel.Config) bool {
	return !cfg.ASLR && !cfg.PIE && cfg.LinkOpts.Order == nil && cfg.LinkOpts.Pad == nil
}

// acquireDaemon returns a device daemon for cfg, recycling an idle pooled
// one when the layout allows it and loading fresh otherwise.
func (e *Engine) acquireDaemon(arch isa.Arch, opts victim.BuildOpts, cfg kernel.Config) (*victim.Daemon, error) {
	if poolable(cfg) {
		k := poolKey{arch: arch, opts: opts, wx: cfg.WX, entropy: cfg.ASLREntropyPages}
		e.poolMu.Lock()
		list := e.pool[k]
		var d *victim.Daemon
		if n := len(list); n > 0 {
			d, e.pool[k] = list[n-1], list[:n-1]
		}
		e.poolMu.Unlock()
		if d != nil && d.Recycle(cfg) {
			telemetry.Inc(telemetry.CtrPoolRecycle)
			return d, nil
		}
	}
	telemetry.Inc(telemetry.CtrPoolFresh)
	return e.newDaemon(arch, opts, cfg)
}

// releaseDaemon parks a daemon for reuse by a later device of the same
// configuration class.
func (e *Engine) releaseDaemon(arch isa.Arch, opts victim.BuildOpts, cfg kernel.Config, d *victim.Daemon) {
	if d == nil || !poolable(cfg) {
		return
	}
	k := poolKey{arch: arch, opts: opts, wx: cfg.WX, entropy: cfg.ASLREntropyPages}
	e.poolMu.Lock()
	e.pool[k] = append(e.pool[k], d)
	e.poolMu.Unlock()
}

// timeStage returns a func that, when deferred, accumulates the elapsed
// time into the given stage counter.
func (e *Engine) timeStage(ns *atomic.Int64) func() {
	start := time.Now()
	return func() { ns.Add(int64(time.Since(start))) }
}

// stageRecorder times the stages of one device attempt: wall nanoseconds
// land in the DeviceResult (always — two clock reads per stage against a
// stage that emulates thousands of instructions), and each stage is
// mirrored into the telemetry span ring when telemetry is enabled.
type stageRecorder struct {
	scenario, device string
	worker           int
	attempt          uint64
	tel              bool
	t0               time.Time
	span0            int64
}

func newStageRecorder(scenario, device string, worker int, attempt uint64) stageRecorder {
	return stageRecorder{scenario: scenario, device: device, worker: worker,
		attempt: attempt, tel: telemetry.Enabled()}
}

// begin marks the start of a stage.
func (sr *stageRecorder) begin() {
	sr.t0 = time.Now()
	if sr.tel {
		sr.span0 = telemetry.SpanNow()
	}
}

// end closes the stage begun last, crediting its duration to r's stage
// slot and the span ring. instr annotates emulated-instruction cost
// (deliver stage) and is 0 elsewhere.
func (sr *stageRecorder) end(r *DeviceResult, stage int, instr uint64) {
	d := int64(time.Since(sr.t0))
	r.StageNs[stage] += d
	if sr.tel {
		telemetry.RecordSpan(telemetry.Span{
			Scenario: sr.scenario, Device: sr.device, Stage: StageNames[stage],
			Worker: sr.worker, Start: sr.span0, Dur: d, Instr: instr,
			Attempt: sr.attempt,
		})
	}
}

// deviceSeed derives the machine seed for device di of scenario si.
func (e *Engine) deviceSeed(s Scenario, si, di int) int64 {
	if s.TargetSeed != 0 {
		if s.devices() == 1 {
			return s.TargetSeed
		}
		return s.TargetSeed + int64(100+di)
	}
	return DeriveSeed(e.cfg.RootSeed, uint64(si), uint64(di))
}

// workItem addresses one device of one scenario.
type workItem struct{ si, di int }

// Run executes every scenario's fleet across the worker pool and returns
// the aggregated report. Results are stored by (scenario, device) index,
// so the report is identical for any worker count. A non-nil error means
// at least one trial failed on infrastructure (not verdict); the report
// still carries every completed trial.
func (e *Engine) Run(scenarios []Scenario) (*Report, error) {
	start := time.Now()
	resolved := e.cfg
	resolved.Workers = e.Workers()
	rep := &Report{
		Config:    resolved,
		RootSeed:  e.cfg.RootSeed,
		ReconSeed: e.cfg.ReconSeed,
		Workers:   e.Workers(),
		Scenarios: make([]ScenarioResult, len(scenarios)),
	}
	var work []workItem
	for si, s := range scenarios {
		n := s.devices()
		rep.Scenarios[si] = ScenarioResult{
			Scenario: s,
			Label:    s.label(),
			Devices:  make([]DeviceResult, n),
		}
		for di := 0; di < n; di++ {
			work = append(work, workItem{si: si, di: di})
		}
	}

	telemetry.LogEvent(telemetry.EvInfo, "campaign", "run start", "",
		0, uint64(len(scenarios)), uint64(len(work)))
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < e.Workers(); w++ {
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(work) {
					return
				}
				it := work[i]
				rep.Scenarios[it.si].Devices[it.di] = e.runDevice(scenarios[it.si], it.si, it.di, worker)
			}
		}(w)
	}
	wg.Wait()

	var errs []error
	for si := range rep.Scenarios {
		sr := &rep.Scenarios[si]
		for di := range sr.Devices {
			d := &sr.Devices[di]
			sr.count(d.Outcome)
			sr.Hijacked += d.Hijacked
			if d.Err != "" {
				errs = append(errs, fmt.Errorf("%s device %d: %s", sr.Label, di, d.Err))
			}
		}
		sr.aggregateStages()
		rep.add(sr)
	}
	telemetry.LogEvent(telemetry.EvInfo, "campaign", "run done", "",
		0, uint64(len(work)), uint64(time.Since(start)))
	rep.Wall = time.Since(start)
	rep.Stages = StageTimings{
		Recon:       time.Duration(e.nsRecon.Load()),
		Payload:     time.Duration(e.nsPayload.Load()),
		VictimBuild: time.Duration(e.nsVictimBuild.Load()),
		Attack:      time.Duration(e.nsAttack.Load()),
	}
	rep.ReconCache = e.recons.Stats()
	rep.PayloadCache = e.payloads.Stats()
	rep.UnitCache = e.units.Stats()
	if len(errs) > 0 {
		return rep, errors.Join(errs...)
	}
	return rep, nil
}

// RunOne executes a single trial of a scenario through the engine's
// caches — the single-cell counterpart of Run for callers (like the core
// lab) that fire attacks one at a time but want recon, payloads, program
// units and crafted packets shared across calls. The device is addressed
// as (scenario 0, device 0), so a pinned TargetSeed is used verbatim.
func (e *Engine) RunOne(s Scenario) DeviceResult {
	return e.runDevice(s, 0, 0, 0)
}

// Recon exposes the cached attacker-side reconnaissance for a scenario's
// configuration (the Kind field is irrelevant to recon and may be zero).
func (e *Engine) Recon(s Scenario) (*exploit.Target, error) {
	return e.recon(s)
}

// Payload exposes the cached exploit for a scenario. The returned exploit
// is shared and read-only.
func (e *Engine) Payload(s Scenario) (*exploit.Exploit, error) {
	tgt, err := e.recon(s)
	if err != nil {
		return nil, err
	}
	return e.payload(s, tgt)
}

// runDevice executes one trial: cached recon, cached payload, a fresh (or
// recycled, which is indistinguishable) victim, delivery, classification.
// Each stage's wall time lands in the result; with telemetry enabled the
// stages also become spans, and with tracing armed the victim CPU carries
// a flight recorder whose events come back in the result.
func (e *Engine) runDevice(s Scenario, si, di, worker int) (r DeviceResult) {
	seed := e.deviceSeed(s, si, di)
	// The splitmix64-derived device seed doubles as the attempt ID that
	// correlates this trial's spans, events and kernel accounting across
	// every layer — campaign worker, exploit stages, emulated kernel,
	// netsim shards.
	attempt := uint64(seed)
	patched := s.PatchedEvery > 0 && di%s.PatchedEvery == 0
	r = DeviceResult{
		Name:    fmt.Sprintf("iot-%02d", di),
		Seed:    seed,
		Patched: patched,
	}
	sc := newStageRecorder(s.label(), r.Name, worker, attempt)
	// One verdict event per device, landed as the trial closes whatever
	// path it exits through; the outcome is a static string and the
	// conversion does not allocate.
	defer func() {
		telemetry.LogEvent(telemetry.EvInfo, "campaign", string(r.Outcome), r.Name,
			attempt, uint64(r.Hijacked), r.Run.Instructions)
	}()

	sc.begin()
	tgt, err := e.recon(s)
	sc.end(&r, StageRecon, 0)
	if err != nil {
		r.Outcome = OutcomeError
		r.Err = fmt.Sprintf("recon %s: %v", s.Arch, err)
		return r
	}
	sc.begin()
	ex, err := e.payload(s, tgt)
	sc.end(&r, StagePayload, 0)
	if err != nil {
		r.Outcome = OutcomeBuildFail
		r.Detail = err.Error()
		return r
	}
	sc.begin()
	cfg, opts, ss, err := e.targetSetup(s, seed, patched)
	if err != nil {
		sc.end(&r, StageVictim, 0)
		r.Outcome = OutcomeError
		r.Err = err.Error()
		return r
	}
	d, err := e.acquireDaemon(s.Arch, opts, cfg)
	sc.end(&r, StageVictim, 0)
	if err != nil {
		r.Outcome = OutcomeError
		r.Err = err.Error()
		return r
	}
	defer e.releaseDaemon(s.Arch, opts, cfg, d)
	d.Process().SetAttempt(attempt)
	if ss != nil {
		ss.Arm(d.Process())
	}
	if telemetry.TraceOn() {
		// The recorder is detached before the daemon returns to the pool
		// (defers run LIFO: detach first, then releaseDaemon).
		rec := telemetry.NewControlRecorder(telemetry.TraceCap())
		cpu := d.Process().CPU()
		cpu.SetRecorder(rec)
		defer func() {
			cpu.SetRecorder(nil)
			r.Trace = rec.Events()
		}()
	}

	defer e.timeStage(&e.nsAttack)()
	if s.Pineapple {
		sc.begin()
		hijacked, err := pineappleDeliver(d, ex, attempt)
		if err != nil {
			sc.end(&r, StageDeliver, 0)
			r.Outcome = OutcomeError
			r.Err = err.Error()
			return r
		}
		r.Hijacked = hijacked
		r.Run = d.LastResult()
		sc.end(&r, StageDeliver, r.Run.Instructions)
		sc.begin()
		switch {
		case len(d.Shells()) > 0:
			r.Outcome = OutcomeShell
		case d.Crashed():
			r.Outcome = OutcomeCrash
		default:
			r.Outcome = OutcomeNoEffect
		}
		r.Detail = r.Run.String()
		sc.end(&r, StageVerdict, 0)
		return r
	}

	sc.begin()
	pkt, err := e.attackPacket(s, ex)
	if err != nil {
		sc.end(&r, StageDeliver, 0)
		r.Outcome = OutcomeError
		r.Err = err.Error()
		return r
	}
	res, err := d.HandleResponse(pkt)
	if err != nil {
		sc.end(&r, StageDeliver, 0)
		r.Outcome = OutcomeError
		r.Err = err.Error()
		return r
	}
	r.Run = res
	sc.end(&r, StageDeliver, res.Instructions)
	sc.begin()
	r.Outcome, r.Detail = Classify(res)
	sc.end(&r, StageVerdict, 0)
	return r
}
