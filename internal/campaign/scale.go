package campaign

import (
	"fmt"
	"time"

	"connlab/internal/dns"
	"connlab/internal/dnsserver"
	"connlab/internal/netsim"
	"connlab/internal/victim"
)

// E9 at population scale: ONE shared Pineapple world instead of one
// toy world per device. A single rogue AP out-shouts the home router
// for an entire station population; every station re-associates, takes
// a rogue DHCP lease, and phones home through the attacker's resolver.
// A sparse subset of stations are full victim devices — emulated
// Connman-analog daemons behind DNS proxies, one per campaign seed —
// and the rest are lightweight clients that self-clock their lookups
// and verify the answers, generating the "heavy traffic from millions
// of users" the roadmap's north star asks the simulator to serve.
//
// The world runs on the sharded netsim: the report is byte-identical
// at any shard count (scale_test pins shards=1,2,8), so shard count is
// purely a throughput knob.

var scaleRoguePool = netsim.IP{172, 17, 0, 0}

// scaleLegitPool deliberately differs from the classic per-device
// world's 192.168.1.100: the lease counter must carry across octets
// for populations past a few hundred stations.
var scaleLegitPool = netsim.IP{10, 1, 0, 0}

// ScaleConfig parameterizes the population-scale Pineapple scenario.
type ScaleConfig struct {
	// Stations is the population size (light clients + victims).
	Stations int
	// Shards is the netsim shard count (1 = sequential pump).
	Shards int
	// Lookups is how many DNS lookups each light station performs
	// during the attack phase (the baseline phase always does one).
	Lookups int
	// VictimEvery makes every k-th station a full victim device
	// (0 disables victims entirely).
	VictimEvery int
	// MaxVictims caps the victim count; daemons are the expensive part
	// of the population. 0 means 8.
	MaxVictims int
	// Scenario selects the victims' architecture, exploit kind and
	// protection set. Label/Devices are ignored.
	Scenario Scenario
	// Verbose records the netsim event transcript on the report.
	Verbose bool
}

func (c *ScaleConfig) normalize() {
	if c.Stations < 1 {
		c.Stations = 1
	}
	if c.Shards < 1 {
		c.Shards = 1
	}
	if c.Lookups < 1 {
		c.Lookups = 1
	}
	if c.MaxVictims == 0 {
		c.MaxVictims = 8
	}
}

// ScaleReport aggregates one population-scale run. Every field except
// WallNs is a deterministic function of the configuration and seeds —
// independent of shard count and of wall-clock — and Transcript
// renders exactly those fields.
type ScaleReport struct {
	Stations int
	Victims  int
	Lookups  int

	// Baseline phase: every station resolves its own name through the
	// legitimate resolver.
	BaselineResolved int
	BaselineOK       int
	BaselineTainted  int

	// Attack phase: after the rogue AP wins the re-association, the
	// same traffic lands on the attacker's MITM resolver.
	Hijacked      int
	AttackOK      int
	AttackTainted int

	// Victim verdicts after the exploit response went through each
	// daemon's emulated parser.
	Shells   int
	Crashes  int
	NoEffect int

	// Shared-world totals.
	Delivered int
	Dropped   int
	Epochs    int
	Steps     int

	// WallNs is the measured wall time of the whole scenario —
	// host-dependent, excluded from Transcript.
	WallNs int64

	// Events is the netsim transcript (Verbose runs only).
	Events []string
}

// Transcript renders the deterministic portion of the report; runs of
// the same configuration must produce identical transcripts at any
// shard count.
func (r *ScaleReport) Transcript() string {
	return fmt.Sprintf(
		"pineapple-scale stations=%d victims=%d lookups=%d\n"+
			"baseline: resolved=%d ok=%d tainted=%d\n"+
			"attack: hijacked=%d ok=%d tainted=%d\n"+
			"victims: shells=%d crashes=%d noeffect=%d\n"+
			"net: delivered=%d dropped=%d epochs=%d steps=%d\n",
		r.Stations, r.Victims, r.Lookups,
		r.BaselineResolved, r.BaselineOK, r.BaselineTainted,
		r.Hijacked, r.AttackOK, r.AttackTainted,
		r.Shells, r.Crashes, r.NoEffect,
		r.Delivered, r.Dropped, r.Epochs, r.Steps)
}

// lightStation is a population client: a prebuilt query, an expected
// answer, and a handler that validates each reply with a byte-level
// check (no decoding, no allocation) and self-clocks the next lookup —
// so one Run call carries the whole population through its lookups in
// lock-stepped generations.
type lightStation struct {
	host      *netsim.Host
	sock      *netsim.UDPSocket
	query     []byte
	expect    [4]byte
	remaining int
	ok        int
	tainted   int
}

func (st *lightStation) send() {
	st.remaining--
	st.sock.SendTo(netsim.Addr{IP: st.host.DNS, Port: dnsserver.DNSPort}, st.query)
}

// onReply validates the A record: the splice resolver and the MITM
// both put the answer's RDATA last, so a legitimate 4-byte A answer
// ends in the expected address while the exploit's oversized record
// cannot.
func (st *lightStation) onReply(dg netsim.Datagram) {
	p := dg.Payload
	if len(p) >= dns.HeaderSize+4 && (p[6] != 0 || p[7] != 0) &&
		p[len(p)-4] == st.expect[0] && p[len(p)-3] == st.expect[1] &&
		p[len(p)-2] == st.expect[2] && p[len(p)-1] == st.expect[3] {
		st.ok++
	} else {
		st.tainted++
	}
	if st.remaining > 0 {
		st.send()
	}
}

// scaleVictim is a full device in the population: a daemon behind the
// DNS proxy, driven by a stub client.
type scaleVictim struct {
	host   *netsim.Host
	daemon *victim.Daemon
	client *dnsserver.Client
	name   string
}

// stationName is the zone name station i phones home to.
func stationName(i int) string {
	return fmt.Sprintf("st%06d.iot-vendor.example", i)
}

// stationIP is the legitimate answer for station i.
func stationIP(i int) [4]byte {
	return [4]byte{20, byte(i >> 16), byte(i >> 8), byte(i)}
}

// RunPineappleScale runs the population-scale Pineapple scenario on
// the engine's caches: one recon, one payload and one unit build feed
// every victim in the world, exactly like fleet devices.
func (e *Engine) RunPineappleScale(cfg ScaleConfig) (*ScaleReport, error) {
	cfg.normalize()
	start := time.Now()
	s := cfg.Scenario
	s.Pineapple = true

	ex, err := e.Payload(s)
	if err != nil {
		return nil, fmt.Errorf("payload: %w", err)
	}

	world := netsim.NewSharded(cfg.Shards)
	world.Verbose = cfg.Verbose
	// The shared world serves the whole population; its epoch spans are
	// tagged with the engine's root seed rather than any one device.
	world.SetAttempt(uint64(e.cfg.RootSeed))
	world.AddAP(&netsim.AccessPoint{
		Name: "home-router", SSID: campaignSSID, Signal: 50,
		PoolBase: scaleLegitPool, Gateway: campaignLegitGW, DNS: campaignResolverIP,
	})

	resolverHost, err := world.AddHost("resolver", campaignResolverIP)
	if err != nil {
		return nil, err
	}
	zone := dnsserver.NewZoneTrie()
	for i := 0; i < cfg.Stations; i++ {
		if err := zone.Add(stationName(i), stationIP(i)); err != nil {
			return nil, err
		}
	}
	resolver, err := dnsserver.RunResolverTrie(resolverHost, zone)
	if err != nil {
		return nil, err
	}

	pineHost, err := world.AddHost("pineapple", campaignPineIP)
	if err != nil {
		return nil, err
	}
	mitm, err := dnsserver.RunMITMWire(pineHost, ex.AppendResponse)
	if err != nil {
		return nil, err
	}

	// Population. Every VictimEvery-th station (capped) is a full
	// device with its own campaign seed; the rest are light clients.
	rep := &ScaleReport{Stations: cfg.Stations, Lookups: cfg.Lookups}
	lights := make([]*lightStation, 0, cfg.Stations)
	var victims []*scaleVictim
	for i := 0; i < cfg.Stations; i++ {
		h, err := world.AddHost(fmt.Sprintf("st%06d", i), netsim.IP{})
		if err != nil {
			return nil, err
		}
		isVictim := cfg.VictimEvery > 0 && i%cfg.VictimEvery == 0 && len(victims) < cfg.MaxVictims
		if isVictim {
			vi := len(victims)
			kcfg, opts, ss, err := e.targetSetup(s, e.deviceSeed(s, 0, vi), false)
			if err != nil {
				return nil, err
			}
			d, err := e.acquireDaemon(s.Arch, opts, kcfg)
			if err != nil {
				return nil, err
			}
			defer e.releaseDaemon(s.Arch, opts, kcfg, d)
			if ss != nil {
				ss.Arm(d.Process())
			}
			if _, err := dnsserver.RunProxy(h, d); err != nil {
				return nil, err
			}
			client, err := dnsserver.NewClient(h)
			if err != nil {
				return nil, err
			}
			victims = append(victims, &scaleVictim{host: h, daemon: d, client: client, name: stationName(i)})
			continue
		}
		st := &lightStation{host: h, expect: stationIP(i)}
		q := dns.NewQuery(uint16(i), stationName(i), dns.TypeA)
		if st.query, err = q.Encode(); err != nil {
			return nil, err
		}
		if st.sock, err = h.BindEphemeral(st.onReply); err != nil {
			return nil, err
		}
		lights = append(lights, st)
	}
	rep.Victims = len(victims)

	budget := cfg.Stations*(cfg.Lookups+2)*8 + 4096

	// Phase 1 — baseline: everyone joins the home router and resolves
	// through the legitimate resolver.
	assocAll := func() error {
		for i := 0; i < cfg.Stations; i++ {
			h := world.Host(fmt.Sprintf("st%06d", i))
			if _, err := h.Station(campaignSSID).Associate(); err != nil {
				return fmt.Errorf("associate %s: %w", h.Name, err)
			}
		}
		return nil
	}
	if err := assocAll(); err != nil {
		return nil, err
	}
	for _, st := range lights {
		st.remaining = 1
		st.send()
	}
	for _, v := range victims {
		if _, err := v.client.Lookup(netsim.Addr{IP: v.host.IP, Port: dnsserver.DNSPort}, v.name); err != nil {
			return nil, err
		}
	}
	rep.Steps += world.Run(budget)
	rep.BaselineResolved = resolver.Queries
	for _, st := range lights {
		rep.BaselineOK += st.ok
		rep.BaselineTainted += st.tainted
		st.ok, st.tainted = 0, 0
	}

	// Phase 2 — the Pineapple appears: stronger signal, same SSID. The
	// whole population re-associates and the rogue DHCP points DNS at
	// the attacker.
	world.AddAP(&netsim.AccessPoint{
		Name: "pineapple", SSID: campaignSSID, Signal: 95,
		PoolBase: scaleRoguePool, Gateway: campaignPineIP, DNS: campaignPineIP,
	})
	if err := assocAll(); err != nil {
		return nil, err
	}

	// Phase 3 — attack traffic: the same phone-home lookups now land
	// on the MITM, which answers every one with the exploit.
	for _, st := range lights {
		st.remaining = cfg.Lookups
		st.send()
	}
	for _, v := range victims {
		if _, err := v.client.Lookup(netsim.Addr{IP: v.host.IP, Port: dnsserver.DNSPort}, v.name); err != nil {
			return nil, err
		}
	}
	rep.Steps += world.Run(budget)
	rep.Hijacked = mitm.Queries
	for _, st := range lights {
		rep.AttackOK += st.ok
		rep.AttackTainted += st.tainted
	}
	for _, v := range victims {
		switch {
		case len(v.daemon.Shells()) > 0:
			rep.Shells++
		case v.daemon.Crashed():
			rep.Crashes++
		default:
			rep.NoEffect++
		}
	}

	rep.Delivered = world.Delivered
	rep.Dropped = world.Dropped
	rep.Epochs = world.Epochs()
	rep.WallNs = int64(time.Since(start))
	if cfg.Verbose {
		rep.Events = world.Events
	}
	return rep, nil
}
