package campaign

import (
	"encoding/json"
	"fmt"
	"io"
	"strings"
	"time"

	"connlab/internal/kernel"
	"connlab/internal/telemetry"
)

// Attempt stages, in execution order. StageNames is index-aligned and
// provides the span/report labels.
const (
	StageRecon = iota
	StagePayload
	StageVictim
	StageDeliver
	StageVerdict
	NumStages
)

// StageNames labels the attempt stages for spans and reports.
var StageNames = [NumStages]string{"recon", "payload", "victim", "deliver", "verdict"}

// DeviceResult is one trial's fate.
type DeviceResult struct {
	// Name is the device's fleet name ("iot-03").
	Name string
	// Seed is the machine seed the device ran under.
	Seed int64
	// Patched reports whether the device ran the fixed firmware.
	Patched bool
	// Outcome classifies what the attack achieved.
	Outcome Outcome
	// Detail is a one-line explanation (fault, shell syscall, veto).
	Detail string
	// Hijacked counts DNS lookups the MITM answered (Pineapple delivery).
	Hijacked int
	// Run is the raw kernel result when the attack fired.
	Run kernel.RunResult
	// Err is set when the trial failed on infrastructure.
	Err string
	// StageNs is per-stage wall time for this attempt (indexed by the
	// Stage* constants). Wall clock, so host-scheduling-dependent — it is
	// excluded from Canonical and determinism comparisons.
	StageNs [NumStages]int64 `json:"stage_ns"`
	// Trace holds the hijack flight-recorder events for this attempt when
	// tracing is armed (telemetry.EnableTrace / the -trace flag).
	Trace []telemetry.ControlEvent `json:",omitempty"`
}

// ScenarioResult aggregates one scenario's fleet.
type ScenarioResult struct {
	Scenario Scenario
	Label    string
	Devices  []DeviceResult
	// Outcome counts across the fleet.
	Owned, Crashed, Blocked, Survived, BuildFail, Errors int
	// Hijacked sums MITM-answered lookups across the fleet.
	Hijacked int
	// ParseInstr is the fleet's emulated-parse cost distribution in
	// instructions per device — deterministic for a given seed set, so it
	// is comparable across worker counts (unlike wall time).
	ParseInstr telemetry.Pct
	// StageWall holds per-stage wall-time percentiles across the fleet
	// (nanoseconds), keyed by StageNames. Scheduling-dependent; excluded
	// from Canonical.
	StageWall map[string]telemetry.Pct `json:",omitempty"`
}

// aggregateStages fills ParseInstr and StageWall from the fleet results.
func (sr *ScenarioResult) aggregateStages() {
	instr := make([]uint64, 0, len(sr.Devices))
	var stage [NumStages][]int64
	for di := range sr.Devices {
		d := &sr.Devices[di]
		instr = append(instr, d.Run.Instructions)
		for s := 0; s < NumStages; s++ {
			stage[s] = append(stage[s], d.StageNs[s])
		}
	}
	sr.ParseInstr = telemetry.Percentiles(instr)
	sr.StageWall = make(map[string]telemetry.Pct, NumStages)
	for s := 0; s < NumStages; s++ {
		sr.StageWall[StageNames[s]] = telemetry.PercentilesNs(stage[s])
	}
}

// count tallies one device outcome.
func (sr *ScenarioResult) count(o Outcome) {
	switch o {
	case OutcomeShell:
		sr.Owned++
	case OutcomeCrash:
		sr.Crashed++
	case OutcomeBlocked:
		sr.Blocked++
	case OutcomeBuildFail:
		sr.BuildFail++
	case OutcomeError:
		sr.Errors++
	default:
		sr.Survived++
	}
}

// StageTimings is per-stage wall time accumulated across workers.
type StageTimings struct {
	// Recon covers attacker-side reconnaissance (replica build + link +
	// gadget scan + frame discovery); Payload covers exploit
	// construction; VictimBuild covers victim unit/libc builds and
	// diversity permutation; Attack covers device load + delivery.
	Recon, Payload, VictimBuild, Attack time.Duration
}

// Report is the aggregated outcome of a campaign run.
type Report struct {
	// Config is the resolved engine configuration the campaign ran under
	// (workers, root/recon seeds), so a serialized report is
	// self-describing — it can be tied back to its run parameters and
	// reproduced without external context.
	Config Config
	// RootSeed and ReconSeed reproduce the campaign bit for bit.
	RootSeed, ReconSeed int64
	// Workers is the pool size the campaign ran with. It never affects
	// the results — only the wall clock.
	Workers int
	// Scenarios holds per-scenario results in input order.
	Scenarios []ScenarioResult
	// Aggregate outcome counts across every scenario.
	Owned, Crashed, Blocked, Survived, BuildFail, Errors int
	// Hijacked sums MITM-answered lookups.
	Hijacked int
	// Wall is the campaign's wall-clock time; Stages breaks down where
	// worker time went.
	Wall   time.Duration
	Stages StageTimings
	// Cache effectiveness: Builds = distinct configurations computed,
	// Hits = trials served from cache.
	ReconCache, PayloadCache, UnitCache CacheStats
}

// add folds a scenario's counts into the campaign totals.
func (r *Report) add(sr *ScenarioResult) {
	r.Owned += sr.Owned
	r.Crashed += sr.Crashed
	r.Blocked += sr.Blocked
	r.Survived += sr.Survived
	r.BuildFail += sr.BuildFail
	r.Errors += sr.Errors
	r.Hijacked += sr.Hijacked
}

// TotalDevices returns the number of trials in the campaign.
func (r *Report) TotalDevices() int {
	n := 0
	for i := range r.Scenarios {
		n += len(r.Scenarios[i].Devices)
	}
	return n
}

// String renders a one-line summary with timing — human-facing, not
// byte-stable across runs (wall clock varies). Use Canonical for
// determinism checks.
func (r *Report) String() string {
	return fmt.Sprintf(
		"campaign: %d scenarios, %d devices -> %d owned, %d crashed, %d blocked, %d survived (%d hijacked) in %v [%d workers, recon %dx built / %dx cached]",
		len(r.Scenarios), r.TotalDevices(), r.Owned, r.Crashed, r.Blocked, r.Survived,
		r.Hijacked, r.Wall.Round(time.Millisecond), r.Workers,
		r.ReconCache.Builds, r.ReconCache.Hits)
}

// Canonical renders the deterministic portion of the report: seeds,
// every scenario, every device's seed and verdict, and all counts — but
// no timings, worker counts, or cache statistics. Two campaigns over the
// same scenarios and seeds render identical Canonical output regardless
// of worker count or scheduling; the determinism regression test holds
// the engine to that.
func (r *Report) Canonical() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "campaign root=%d recon=%d scenarios=%d\n",
		r.RootSeed, r.ReconSeed, len(r.Scenarios))
	for si := range r.Scenarios {
		sr := &r.Scenarios[si]
		fmt.Fprintf(&sb, "[%d] %s devices=%d\n", si, sr.Label, len(sr.Devices))
		for di := range sr.Devices {
			d := &sr.Devices[di]
			fw := "1.34"
			if d.Patched {
				fw = "1.35"
			}
			fmt.Fprintf(&sb, "  %-8s seed=%-20d fw=%s hijacked=%d -> %-10s %s",
				d.Name, d.Seed, fw, d.Hijacked, d.Outcome, d.Detail)
			if d.Err != "" {
				fmt.Fprintf(&sb, " err=%s", d.Err)
			}
			sb.WriteByte('\n')
		}
		fmt.Fprintf(&sb, "  owned=%d crashed=%d blocked=%d survived=%d no-payload=%d errors=%d hijacked=%d\n",
			sr.Owned, sr.Crashed, sr.Blocked, sr.Survived, sr.BuildFail, sr.Errors, sr.Hijacked)
	}
	fmt.Fprintf(&sb, "total owned=%d crashed=%d blocked=%d survived=%d no-payload=%d errors=%d hijacked=%d\n",
		r.Owned, r.Crashed, r.Blocked, r.Survived, r.BuildFail, r.Errors, r.Hijacked)
	return sb.String()
}

// WriteJSON serializes the full report — config included, so the
// snapshot is self-describing — as indented JSON.
func (r *Report) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// StageAggregates converts the per-scenario stage statistics into the
// telemetry snapshot's scenario entries.
func (r *Report) StageAggregates() []telemetry.ScenarioStages {
	out := make([]telemetry.ScenarioStages, 0, len(r.Scenarios))
	for si := range r.Scenarios {
		sr := &r.Scenarios[si]
		out = append(out, telemetry.ScenarioStages{
			Label:       sr.Label,
			Devices:     len(sr.Devices),
			ParseInstr:  sr.ParseInstr,
			StageWallNs: sr.StageWall,
		})
	}
	return out
}

// RunInfo describes the campaign for a telemetry snapshot.
func (r *Report) RunInfo(tool string) *telemetry.RunInfo {
	return &telemetry.RunInfo{
		Tool:      tool,
		Workers:   r.Workers,
		RootSeed:  r.RootSeed,
		ReconSeed: r.ReconSeed,
		Scenarios: len(r.Scenarios),
		Devices:   r.TotalDevices(),
	}
}

// Table renders the per-configuration outcome table.
func (r *Report) Table() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-40s %7s %6s %8s %8s %9s %9s\n",
		"scenario", "devices", "owned", "crashed", "blocked", "survived", "hijacked")
	for si := range r.Scenarios {
		sr := &r.Scenarios[si]
		fmt.Fprintf(&sb, "%-40s %7d %6d %8d %8d %9d %9d\n",
			sr.Label, len(sr.Devices), sr.Owned, sr.Crashed, sr.Blocked, sr.Survived, sr.Hijacked)
	}
	return sb.String()
}
