// Package campaign is the lab's mass-compromise engine: it fans a set of
// attack scenarios (arch × exploit kind × protection level × fleet size ×
// seed) out across a worker pool, reconning each distinct configuration
// exactly once through a keyed cache and deriving every device's seed
// deterministically from the campaign root seed, so a campaign's results
// are bit-for-bit identical regardless of worker count or scheduling
// order.
//
// The paper's §III-D scenario is "one payload, many victims" — exploit
// code that recreates a Mirai-style botnet. Measuring defenses against
// that scenario (diversity survival rates, patch-rate thresholds) takes
// thousands of randomized trials per configuration, which a sequential
// runner that redoes victim build + image link + gadget scan per device
// cannot sustain. The engine here is the fast path; internal/core's
// RunFleet and RunMatrix delegate to it.
//
// The package also owns the vocabulary shared by every experiment layer:
// Protection (the victim's defensive posture), Outcome (what an attack
// achieved), and Classify (kernel result → outcome). internal/core
// aliases these so existing call sites are unaffected.
package campaign

import (
	"connlab/internal/defense"
	"connlab/internal/image"
	"connlab/internal/isa"
	"connlab/internal/kernel"
	"connlab/internal/victim"
)

// Protection is one protection environment for a victim.
type Protection struct {
	// WX enables W⊕X; ASLR randomizes libc and stack.
	WX, ASLR bool
	// CFI installs the shadow-stack mitigation (§IV).
	CFI bool
	// Canary builds the victim with stack protectors.
	Canary bool
	// DiversitySeed, when non-zero, links the victim with layout diversity
	// and equivalent-instruction substitution (§IV).
	DiversitySeed int64
	// PIE additionally randomizes the program image (beyond the paper).
	PIE bool
}

// The paper's three §III protection levels.
var (
	LevelNone   = Protection{}
	LevelWX     = Protection{WX: true}
	LevelWXASLR = Protection{WX: true, ASLR: true}
)

// PaperLevels is the §III protection ladder in order.
func PaperLevels() []Protection { return []Protection{LevelNone, LevelWX, LevelWXASLR} }

// String renders the protection compactly.
func (p Protection) String() string {
	if p == (Protection{}) {
		return "none"
	}
	out := ""
	add := func(on bool, s string) {
		if !on {
			return
		}
		if out != "" {
			out += "+"
		}
		out += s
	}
	add(p.WX, "W⊕X")
	add(p.ASLR, "ASLR")
	add(p.PIE, "PIE")
	add(p.CFI, "CFI")
	add(p.Canary, "canary")
	add(p.DiversitySeed != 0, "diversity")
	if out == "" {
		out = "none"
	}
	return out
}

// Outcome classifies what an attack achieved.
type Outcome string

// Attack outcomes.
const (
	// OutcomeShell is remote code execution: a root shell spawned.
	OutcomeShell Outcome = "SHELL"
	// OutcomeCrash is denial of service: the daemon died without giving
	// the attacker execution.
	OutcomeCrash Outcome = "CRASH"
	// OutcomeBlocked means a mitigation detected and stopped the attack
	// (CFI veto or canary abort).
	OutcomeBlocked Outcome = "BLOCKED"
	// OutcomeNoEffect means the victim survived unharmed.
	OutcomeNoEffect Outcome = "NO-EFFECT"
	// OutcomeBuildFail means no payload could be constructed for the
	// combination (e.g. ret2libc on a register-argument architecture).
	OutcomeBuildFail Outcome = "NO-PAYLOAD"
	// OutcomeError means the trial itself failed (infrastructure, not
	// verdict); the device's Err field holds the cause.
	OutcomeError Outcome = "ERROR"
)

// Classify maps a kernel run result to an attack outcome.
func Classify(res kernel.RunResult) (Outcome, string) {
	switch res.Status {
	case kernel.StatusShell:
		return OutcomeShell, res.String()
	case kernel.StatusFault, kernel.StatusTimeout:
		return OutcomeCrash, res.String()
	case kernel.StatusCFI, kernel.StatusAborted:
		return OutcomeBlocked, res.String()
	case kernel.StatusReturned, kernel.StatusExited:
		return OutcomeNoEffect, res.String()
	default:
		return OutcomeNoEffect, res.String()
	}
}

// TargetSetup renders a Protection into a kernel config plus the build
// options and hooks that must be applied, for a victim loaded with the
// given build options and machine seed. The returned shadow stack, when
// non-nil, must be armed on the loaded process.
func TargetSetup(arch isa.Arch, p Protection, opts victim.BuildOpts, seed int64) (kernel.Config, victim.BuildOpts, *defense.ShadowStack, error) {
	cfg := kernel.Config{WX: p.WX, ASLR: p.ASLR, PIE: p.PIE, Seed: seed}
	opts.Canary = opts.Canary || p.Canary
	var ss *defense.ShadowStack
	if p.CFI {
		ss = defense.NewShadowStack()
		cfg.Hooks = ss
	}
	if p.DiversitySeed != 0 {
		lo, err := diversityLinkOpts(arch, opts, p.DiversitySeed)
		if err != nil {
			return cfg, opts, nil, err
		}
		cfg.LinkOpts = lo
	}
	return cfg, opts, ss, nil
}

// diversityLinkOpts computes the §IV diversity link options for a build:
// a fresh unit is built, equivalent-instruction substitution is applied
// to it, and the layout permutation is derived from the result. The unit
// is private to this call, so cached program units stay pristine.
func diversityLinkOpts(arch isa.Arch, opts victim.BuildOpts, seed int64) (image.Options, error) {
	u, err := victim.BuildProgram(arch, opts)
	if err != nil {
		return image.Options{}, err
	}
	if _, err := defense.EquivSubstitute(u, seed); err != nil {
		return image.Options{}, err
	}
	return defense.DiversityOptions(u, seed), nil
}
