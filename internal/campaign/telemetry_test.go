package campaign

import (
	"bytes"
	"encoding/json"
	"testing"

	"connlab/internal/exploit"
	"connlab/internal/isa"
	"connlab/internal/telemetry"
)

// metricsRun runs the standard determinism workload under fresh
// telemetry and returns the merged snapshot plus stage aggregates.
func metricsRun(t *testing.T, workers int) (telemetry.Snapshot, []telemetry.ScenarioStages) {
	t.Helper()
	telemetry.Enable() // fresh state: Enable doubles as the reset
	eng := New(Config{Workers: workers, RootSeed: 7777})
	rep, err := eng.Run(determinismScenarios())
	if err != nil {
		t.Fatalf("workers=%d: %v", workers, err)
	}
	return telemetry.TakeSnapshot(), rep.StageAggregates()
}

// TestMetricsMergeDeterministic extends the engine's determinism
// guarantee to the telemetry plane: merged counters and histograms are a
// pure function of the work performed, so a 1-worker and an 8-worker
// campaign agree on every metric whose meaning is work done — only the
// scheduling-dependent splits (which daemon got recycled, which worker
// found the scan index warm) are compared as sums.
func TestMetricsMergeDeterministic(t *testing.T) {
	t.Cleanup(telemetry.Disable)
	snap1, stages1 := metricsRun(t, 1)
	snap8, stages8 := metricsRun(t, 8)

	// Scheduling-dependent pairs: the split varies, the sum must not.
	sumPairs := [][2]string{
		{telemetry.CtrPoolRecycle.Name(), telemetry.CtrPoolFresh.Name()},
		{telemetry.CtrGadgetScanBuild.Name(), telemetry.CtrGadgetScanHit.Name()},
	}
	sumKey := map[string]bool{}
	for _, p := range sumPairs {
		sumKey[p[0]], sumKey[p[1]] = true, true
	}
	// unit_hit rides the scheduling-dependent fresh-load path: only
	// newDaemon probes the unit caches (two Gets per fresh load), so its
	// total follows pool_fresh rather than the work performed. unit_build
	// stays strictly deterministic (one build per distinct key); the hit
	// count is checked against the fresh-load relation below instead.
	sumKey[telemetry.CtrUnitHit.Name()] = true
	// gadget_scan_entries/gadget_scan_evict track occupancy of the global
	// scan cache, which persists across runs in one process: the second
	// run finds it warm and inserts nothing. Like the build/hit split they
	// are topology diagnostics, outside the determinism contract.
	sumKey[telemetry.CtrGadgetScanInsert.Name()] = true
	sumKey[telemetry.CtrGadgetScanEvict.Name()] = true
	for name, v1 := range snap1.Counters {
		if sumKey[name] {
			continue
		}
		if v8 := snap8.Counters[name]; v8 != v1 {
			t.Errorf("counter %s: workers=1 -> %d, workers=8 -> %d", name, v1, v8)
		}
	}
	for _, p := range sumPairs {
		s1 := snap1.Counters[p[0]] + snap1.Counters[p[1]]
		s8 := snap8.Counters[p[0]] + snap8.Counters[p[1]]
		if s1 != s8 {
			t.Errorf("sum %s+%s: workers=1 -> %d, workers=8 -> %d", p[0], p[1], s1, s8)
		}
	}
	for _, snap := range []struct {
		name string
		s    telemetry.Snapshot
	}{{"workers=1", snap1}, {"workers=8", snap8}} {
		gets := snap.s.Counters[telemetry.CtrUnitBuild.Name()] + snap.s.Counters[telemetry.CtrUnitHit.Name()]
		fresh := snap.s.Counters[telemetry.CtrPoolFresh.Name()]
		if gets != 2*fresh {
			t.Errorf("%s: unit cache gets = %d, want 2 per fresh load (%d)", snap.name, gets, 2*fresh)
		}
	}
	for name, h1 := range snap1.Histograms {
		if h8 := snap8.Histograms[name]; h8 != h1 {
			t.Errorf("histogram %s: workers=1 -> %+v, workers=8 -> %+v", name, h1, h8)
		}
	}

	// The workload must actually exercise the instrumented layers.
	for _, name := range []string{
		telemetry.CtrEmuRuns.Name(), telemetry.CtrEmuInstr.Name(),
		telemetry.CtrReconBuild.Name(), telemetry.CtrUnitBuild.Name(),
		telemetry.CtrNetDelivered.Name(), telemetry.CtrDNSHijacked.Name(),
	} {
		if snap1.Counters[name] == 0 {
			t.Errorf("counter %s is 0 — workload does not cover it", name)
		}
	}
	if snap1.Counters[telemetry.CtrPoolRecycle.Name()]+snap1.Counters[telemetry.CtrPoolFresh.Name()] == 0 {
		t.Error("daemon pool counters are 0")
	}

	// Per-scenario parse-cost percentiles are exact order statistics over
	// deterministic instruction counts — identical for any worker count.
	if len(stages1) != len(stages8) {
		t.Fatalf("stage aggregate count: %d vs %d", len(stages1), len(stages8))
	}
	for i := range stages1 {
		a, b := stages1[i], stages8[i]
		if a.Label != b.Label || a.Devices != b.Devices || a.ParseInstr != b.ParseInstr {
			t.Errorf("scenario %d: workers=1 -> %s/%d/%+v, workers=8 -> %s/%d/%+v",
				i, a.Label, a.Devices, a.ParseInstr, b.Label, b.Devices, b.ParseInstr)
		}
	}
}

// TestStageSpansRecorded: with telemetry on, every attempt records one
// span per stage and the snapshot counts them.
func TestStageSpansRecorded(t *testing.T) {
	t.Cleanup(telemetry.Disable)
	telemetry.Enable()
	eng := New(Config{Workers: 2, RootSeed: 99})
	s := Scenario{Arch: isa.ArchX86S, Kind: exploit.KindCodeInjection, Devices: 3}
	if _, err := eng.Run([]Scenario{s}); err != nil {
		t.Fatal(err)
	}
	spans := telemetry.Spans()
	if want := 3 * NumStages; len(spans) != want {
		t.Fatalf("recorded %d spans, want %d (3 devices x %d stages)", len(spans), want, NumStages)
	}
	seen := map[string]int{}
	for _, sp := range spans {
		seen[sp.Stage]++
		if sp.Dur < 0 || sp.Scenario == "" || sp.Device == "" {
			t.Errorf("malformed span %+v", sp)
		}
		if sp.Stage == StageNames[StageDeliver] && sp.Instr == 0 {
			t.Errorf("deliver span carries no instruction count: %+v", sp)
		}
	}
	for _, name := range StageNames {
		if seen[name] != 3 {
			t.Errorf("stage %q recorded %d times, want 3", name, seen[name])
		}
	}
	if got := telemetry.TakeSnapshot().SpanCount; got != len(spans) {
		t.Errorf("snapshot SpanCount = %d, want %d", got, len(spans))
	}
}

// TestStageNsAlwaysAccumulated: per-device stage wall times land in the
// report even with telemetry off — the report is self-sufficient.
func TestStageNsAlwaysAccumulated(t *testing.T) {
	telemetry.Disable()
	eng := New(Config{RootSeed: 7})
	r := eng.RunOne(Scenario{Arch: isa.ArchARMS, Kind: exploit.KindDoS})
	var total int64
	for _, ns := range r.StageNs {
		if ns < 0 {
			t.Fatalf("negative stage time: %v", r.StageNs)
		}
		total += ns
	}
	if total == 0 {
		t.Error("all stage times are zero; expected wall time to accrue")
	}
	if r.Trace != nil {
		t.Error("flight recorder ran without EnableTrace")
	}
}

// TestTraceCapturedInDeviceResult: arming the flight recorder attaches a
// recorder to each victim CPU and lands its control-transfer tail in the
// device result.
func TestTraceCapturedInDeviceResult(t *testing.T) {
	t.Cleanup(telemetry.Disable)
	telemetry.EnableTrace(512)
	eng := New(Config{RootSeed: 7})
	r := eng.RunOne(Scenario{Arch: isa.ArchX86S, Kind: exploit.KindCodeInjection})
	if r.Outcome != OutcomeShell {
		t.Fatalf("outcome = %s (%s), want shell", r.Outcome, r.Detail)
	}
	if len(r.Trace) == 0 {
		t.Fatal("no flight-recorder events captured")
	}
	var syscalls int
	for _, ev := range r.Trace {
		if telemetry.CtlName(ev.Kind) == "?" {
			t.Fatalf("unknown control kind in %+v", ev)
		}
		if ev.Kind == telemetry.CtlSyscall {
			syscalls++
		}
	}
	if syscalls == 0 {
		t.Error("trace of an owned device records no syscall (the spawned shell)")
	}
}

// TestReportCarriesConfig: the serialized report embeds the resolved
// engine configuration, making JSON exports self-describing.
func TestReportCarriesConfig(t *testing.T) {
	eng := New(Config{Workers: 3, RootSeed: 123, ReconSeed: 456})
	rep, err := eng.Run([]Scenario{{Arch: isa.ArchX86S, Kind: exploit.KindDoS, Devices: 2}})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Config.Workers != 3 || rep.Config.RootSeed != 123 || rep.Config.ReconSeed != 456 {
		t.Errorf("report config = %+v, want {3 123 456}", rep.Config)
	}
	var buf bytes.Buffer
	if err := rep.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var back Report
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatalf("report JSON does not round-trip: %v", err)
	}
	if back.Config != rep.Config {
		t.Errorf("config after round-trip = %+v, want %+v", back.Config, rep.Config)
	}
	if len(back.Scenarios) != 1 || len(back.Scenarios[0].Devices) != 2 {
		t.Errorf("scenarios lost in round-trip: %+v", back.Scenarios)
	}
}
