package campaign

import (
	"testing"

	"connlab/internal/exploit"
	"connlab/internal/isa"
)

// determinismScenarios is a mixed workload: fleets, single cells, both
// delivery modes, derived and pinned seeds, a build failure, and a
// mitigation posture — everything whose ordering could conceivably
// depend on scheduling.
func determinismScenarios() []Scenario {
	return []Scenario{
		{Arch: isa.ArchARMS, Kind: exploit.KindRopMemcpy, Protection: LevelWXASLR,
			Devices: 5, PatchedEvery: 2, Pineapple: true},
		{Arch: isa.ArchX86S, Kind: exploit.KindRopMemcpy, Protection: LevelWXASLR, Devices: 4},
		{Arch: isa.ArchX86S, Kind: exploit.KindCodeInjection, Protection: LevelWX, Devices: 2},
		{Arch: isa.ArchARMS, Kind: exploit.KindRet2Libc, Protection: LevelNone, Devices: 2},
		{Arch: isa.ArchX86S, Kind: exploit.KindRet2Libc, Protection: LevelWX, TargetSeed: 2002},
		{Arch: isa.ArchARMS, Kind: exploit.KindRopMemcpy,
			Protection: Protection{WX: true, ASLR: true, CFI: true}, Devices: 2},
	}
}

// TestDeterminismAcrossWorkerCounts is the engine's core guarantee: the
// same campaign run with 1 worker and with N workers produces
// byte-identical canonical reports and identical counts. Seeds derive
// from structure, results land by index, and no shared state leaks
// between trials — so parallelism is invisible in the output.
func TestDeterminismAcrossWorkerCounts(t *testing.T) {
	var baseline *Report
	for _, workers := range []int{1, 4, 16} {
		eng := New(Config{Workers: workers, RootSeed: 7777})
		rep, err := eng.Run(determinismScenarios())
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if baseline == nil {
			baseline = rep
			continue
		}
		if got, want := rep.Canonical(), baseline.Canonical(); got != want {
			t.Errorf("workers=%d: canonical report differs from 1-worker run\n--- 1 worker ---\n%s\n--- %d workers ---\n%s",
				workers, want, workers, got)
		}
		if rep.Owned != baseline.Owned || rep.Crashed != baseline.Crashed ||
			rep.Blocked != baseline.Blocked || rep.Survived != baseline.Survived ||
			rep.BuildFail != baseline.BuildFail || rep.Hijacked != baseline.Hijacked {
			t.Errorf("workers=%d: counts differ: %s vs %s", workers, rep, baseline)
		}
	}
}

// TestDeterminismAcrossRuns: two separate engines over the same scenarios
// agree — caches are per-engine, not global, and build order does not
// leak into results.
func TestDeterminismAcrossRuns(t *testing.T) {
	a, err := New(Config{Workers: 3, RootSeed: 31337}).Run(determinismScenarios())
	if err != nil {
		t.Fatalf("first: %v", err)
	}
	b, err := New(Config{Workers: 2, RootSeed: 31337}).Run(determinismScenarios())
	if err != nil {
		t.Fatalf("second: %v", err)
	}
	if a.Canonical() != b.Canonical() {
		t.Errorf("fresh engines disagree:\n%s\nvs\n%s", a.Canonical(), b.Canonical())
	}
}
