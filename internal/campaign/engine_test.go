package campaign

import (
	"strings"
	"testing"

	"connlab/internal/exploit"
	"connlab/internal/isa"
)

// TestSingleScenarioMatrixCell: a one-device scenario reproduces the
// classic RunAttack verdicts — the §III diagonal on both architectures.
func TestSingleScenarioMatrixCell(t *testing.T) {
	cases := []struct {
		arch isa.Arch
		kind exploit.Kind
		p    Protection
		want Outcome
	}{
		{isa.ArchX86S, exploit.KindCodeInjection, LevelNone, OutcomeShell},
		{isa.ArchX86S, exploit.KindCodeInjection, LevelWX, OutcomeCrash},
		{isa.ArchX86S, exploit.KindRet2Libc, LevelWX, OutcomeShell},
		{isa.ArchX86S, exploit.KindRopMemcpy, LevelWXASLR, OutcomeShell},
		{isa.ArchARMS, exploit.KindRopExeclp, LevelWX, OutcomeShell},
		{isa.ArchARMS, exploit.KindRopMemcpy, LevelWXASLR, OutcomeShell},
		{isa.ArchARMS, exploit.KindRet2Libc, LevelNone, OutcomeBuildFail},
	}
	eng := New(Config{Workers: 2})
	var scenarios []Scenario
	for _, c := range cases {
		scenarios = append(scenarios, Scenario{
			Arch: c.arch, Kind: c.kind, Protection: c.p, TargetSeed: 2002,
		})
	}
	rep, err := eng.Run(scenarios)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	for i, c := range cases {
		got := rep.Scenarios[i].Devices[0].Outcome
		if got != c.want {
			t.Errorf("%s/%s/%s: outcome %s, want %s", c.arch, c.kind, c.p, got, c.want)
		}
	}
	if rep.TotalDevices() != len(cases) {
		t.Errorf("devices = %d, want %d", rep.TotalDevices(), len(cases))
	}
	if rep.String() == "" || rep.Table() == "" {
		t.Error("empty report rendering")
	}
}

// TestReconOncePerConfiguration: a fleet of many devices under one
// configuration recons exactly once; adding a second configuration adds
// exactly one more build.
func TestReconOncePerConfiguration(t *testing.T) {
	eng := New(Config{Workers: 4})
	rep, err := eng.Run([]Scenario{
		{Arch: isa.ArchARMS, Kind: exploit.KindRopMemcpy, Protection: LevelWXASLR, Devices: 6},
	})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if got := eng.ReconStats().Builds; got != 1 {
		t.Errorf("recon builds after 6-device fleet = %d, want 1", got)
	}
	if got := eng.ReconStats().Hits; got != 5 {
		t.Errorf("recon hits = %d, want 5", got)
	}
	if rep.Owned != 6 {
		t.Errorf("owned = %d, want 6: %s", rep.Owned, rep.Canonical())
	}

	// A second posture on the same engine is one more recon, no matter
	// how many devices ride it.
	if _, err := eng.Run([]Scenario{
		{Arch: isa.ArchARMS, Kind: exploit.KindRopExeclp, Protection: LevelWX, Devices: 4},
	}); err != nil {
		t.Fatalf("second run: %v", err)
	}
	if got := eng.ReconStats().Builds; got != 2 {
		t.Errorf("recon builds after second configuration = %d, want 2", got)
	}
	// The victim program build is also shared across a fleet's devices.
	if got := eng.units.Stats().Builds; got > 2 {
		t.Errorf("victim unit builds = %d, want <= 2 (one per configuration)", got)
	}
}

// TestFleetPineappleDelivery: the rogue-AP delivery owns unpatched
// devices, spares patched ones, and counts one hijacked lookup each.
func TestFleetPineappleDelivery(t *testing.T) {
	eng := New(Config{Workers: 3})
	rep, err := eng.Run([]Scenario{{
		Arch: isa.ArchARMS, Kind: exploit.KindRopMemcpy, Protection: LevelWXASLR,
		Devices: 6, PatchedEvery: 3, TargetSeed: 2002, Pineapple: true,
	}})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	sr := rep.Scenarios[0]
	if sr.Owned != 4 || sr.Survived != 2 {
		t.Errorf("owned=%d survived=%d, want 4/2\n%s", sr.Owned, sr.Survived, rep.Canonical())
	}
	if sr.Hijacked != 6 {
		t.Errorf("hijacked = %d, want 6", sr.Hijacked)
	}
	for _, d := range sr.Devices {
		if d.Patched && d.Outcome != OutcomeNoEffect {
			t.Errorf("%s (patched): %s", d.Name, d.Outcome)
		}
		if !d.Patched && d.Outcome != OutcomeShell {
			t.Errorf("%s (vulnerable): %s", d.Name, d.Outcome)
		}
	}
}

// TestBuildFailIsVerdictNotError: a payload that cannot be built yields
// NO-PAYLOAD devices and a nil error, like RunAttack always has.
func TestBuildFailIsVerdictNotError(t *testing.T) {
	eng := New(Config{})
	rep, err := eng.Run([]Scenario{{
		Arch: isa.ArchARMS, Kind: exploit.KindRet2Libc, Protection: LevelNone, Devices: 3,
	}})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if rep.BuildFail != 3 {
		t.Errorf("no-payload = %d, want 3", rep.BuildFail)
	}
	if eng.payloads.Stats().Builds != 1 {
		t.Errorf("payload builds = %d, want 1 (failure cached)", eng.payloads.Stats().Builds)
	}
	for _, d := range rep.Scenarios[0].Devices {
		if d.Detail == "" {
			t.Error("build-fail device missing detail")
		}
	}
}

// TestDerivedSeedsAreDistinct: with no pinned TargetSeed, every device
// gets its own derived seed, and they differ across scenarios too.
func TestDerivedSeedsAreDistinct(t *testing.T) {
	eng := New(Config{RootSeed: 99})
	rep, err := eng.Run([]Scenario{
		{Arch: isa.ArchX86S, Kind: exploit.KindDoS, Protection: LevelNone, Devices: 4},
		{Arch: isa.ArchARMS, Kind: exploit.KindDoS, Protection: LevelNone, Devices: 4},
	})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	seen := map[int64]string{}
	for _, sr := range rep.Scenarios {
		for _, d := range sr.Devices {
			if d.Seed <= 0 {
				t.Errorf("%s/%s: non-positive seed %d", sr.Label, d.Name, d.Seed)
			}
			if prev, dup := seen[d.Seed]; dup {
				t.Errorf("seed %d assigned to both %s and %s/%s", d.Seed, prev, sr.Label, d.Name)
			}
			seen[d.Seed] = sr.Label + "/" + d.Name
		}
	}
	// DoS against the vulnerable parser crashes regardless of seed.
	if rep.Crashed != 8 {
		t.Errorf("crashed = %d, want 8\n%s", rep.Crashed, rep.Canonical())
	}
}

// TestLegacyFleetSeedSchedule: a pinned TargetSeed reproduces the
// historical sequential fleet's per-device seeds (TargetSeed+100+i).
func TestLegacyFleetSeedSchedule(t *testing.T) {
	eng := New(Config{})
	rep, err := eng.Run([]Scenario{{
		Arch: isa.ArchX86S, Kind: exploit.KindDoS, Protection: LevelNone,
		Devices: 3, TargetSeed: 5000,
	}})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	for i, d := range rep.Scenarios[0].Devices {
		want := int64(5000 + 100 + i)
		if d.Seed != want {
			t.Errorf("device %d seed = %d, want %d", i, d.Seed, want)
		}
	}
}

// TestCanonicalOmitsTimings: the canonical rendering must not leak
// anything scheduling-dependent.
func TestCanonicalOmitsTimings(t *testing.T) {
	eng := New(Config{Workers: 2})
	rep, err := eng.Run([]Scenario{
		{Arch: isa.ArchX86S, Kind: exploit.KindDoS, Protection: LevelNone},
	})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if rep.Wall <= 0 {
		t.Error("report missing wall-clock time")
	}
	c := rep.Canonical()
	for _, banned := range []string{"workers", "wall", "cache"} {
		if strings.Contains(c, banned) {
			t.Errorf("canonical rendering contains %q:\n%s", banned, c)
		}
	}
}
