package campaign

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
)

// TestCacheBuildsOnce: concurrent Gets for one key run build exactly
// once and all observe the same value.
func TestCacheBuildsOnce(t *testing.T) {
	c := NewCache[int, string]()
	var builds atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < 32; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			v, err := c.Get(7, func() (string, error) {
				builds.Add(1)
				return "built", nil
			})
			if err != nil || v != "built" {
				t.Errorf("get: %q, %v", v, err)
			}
		}()
	}
	wg.Wait()
	if builds.Load() != 1 {
		t.Errorf("builds = %d, want 1", builds.Load())
	}
	st := c.Stats()
	if st.Builds != 1 || st.Hits != 31 {
		t.Errorf("stats = %+v, want 1 build / 31 hits", st)
	}
	if c.Len() != 1 {
		t.Errorf("len = %d", c.Len())
	}
}

// TestCacheCachesErrors: a failed build is a cached verdict, not a
// retried operation.
func TestCacheCachesErrors(t *testing.T) {
	c := NewCache[string, int]()
	boom := errors.New("boom")
	calls := 0
	for i := 0; i < 3; i++ {
		_, err := c.Get("k", func() (int, error) {
			calls++
			return 0, boom
		})
		if !errors.Is(err, boom) {
			t.Errorf("get %d: err = %v", i, err)
		}
	}
	if calls != 1 {
		t.Errorf("build calls = %d, want 1", calls)
	}
}

// TestCacheDistinctKeys: keys do not share entries.
func TestCacheDistinctKeys(t *testing.T) {
	c := NewCache[int, string]()
	for i := 0; i < 5; i++ {
		v, err := c.Get(i, func() (string, error) { return fmt.Sprint(i), nil })
		if err != nil || v != fmt.Sprint(i) {
			t.Errorf("key %d: %q, %v", i, v, err)
		}
	}
	if st := c.Stats(); st.Builds != 5 || st.Hits != 0 {
		t.Errorf("stats = %+v", st)
	}
}

// TestDeriveSeed: positivity, determinism, order sensitivity, and
// index separation.
func TestDeriveSeed(t *testing.T) {
	if DeriveSeed(1, 2, 3) != DeriveSeed(1, 2, 3) {
		t.Error("not deterministic")
	}
	if DeriveSeed(1, 2, 3) == DeriveSeed(1, 3, 2) {
		t.Error("order-insensitive fold")
	}
	seen := map[int64]bool{}
	for root := int64(0); root < 4; root++ {
		for si := uint64(0); si < 8; si++ {
			for di := uint64(0); di < 8; di++ {
				s := DeriveSeed(root, si, di)
				if s <= 0 {
					t.Fatalf("DeriveSeed(%d,%d,%d) = %d, want positive", root, si, di, s)
				}
				if seen[s] {
					t.Fatalf("collision at root=%d si=%d di=%d", root, si, di)
				}
				seen[s] = true
			}
		}
	}
}
