package campaign

import (
	"fmt"

	"connlab/internal/dnsserver"
	"connlab/internal/exploit"
	"connlab/internal/netsim"
	"connlab/internal/victim"
)

// Per-device rogue-AP delivery (§III-D). Every device gets its own
// simulated radio world — two APs sharing the trusted SSID, a legitimate
// resolver, and the attacker's MITM resolver — so devices are fully
// independent and a campaign can run them on any worker without shared
// network state.

// Scenario SSID and addresses, mirroring the lab's Pineapple world.
const campaignSSID = "HomeIoT"

var (
	campaignResolverIP = netsim.IP{8, 8, 8, 8}
	campaignLegitGW    = netsim.IP{192, 168, 1, 1}
	campaignLegitPool  = netsim.IP{192, 168, 1, 100}
	campaignPineIP     = netsim.IP{172, 16, 42, 1}
	campaignRoguePool  = netsim.IP{172, 16, 42, 100}
)

// pineappleDeliver drives one device through the remote kill chain: it
// associates to the strongest AP carrying its trusted SSID (the rogue
// clone), resolves a name through the DHCP-assigned resolver (the
// attacker's MITM), and receives the exploit as the answer. It returns
// how many lookups the MITM answered. attempt tags the world's epoch
// spans with the campaign attempt ID.
func pineappleDeliver(d *victim.Daemon, ex *exploit.Exploit, attempt uint64) (int, error) {
	world := netsim.New()
	world.SetAttempt(attempt)
	world.AddAP(&netsim.AccessPoint{
		Name: "home-router", SSID: campaignSSID, Signal: 50,
		PoolBase: campaignLegitPool, Gateway: campaignLegitGW, DNS: campaignResolverIP,
	})
	resolverHost, err := world.AddHost("resolver", campaignResolverIP)
	if err != nil {
		return 0, err
	}
	if _, err := dnsserver.RunResolver(resolverHost, map[string][4]byte{
		"time.iot-vendor.example": {93, 184, 216, 34},
	}); err != nil {
		return 0, err
	}
	pineHost, err := world.AddHost("pineapple", campaignPineIP)
	if err != nil {
		return 0, err
	}
	mitm, err := dnsserver.RunMITMWire(pineHost, ex.AppendResponse)
	if err != nil {
		return 0, err
	}
	world.AddAP(&netsim.AccessPoint{
		Name: "pineapple", SSID: campaignSSID, Signal: 95,
		PoolBase: campaignRoguePool, Gateway: campaignPineIP, DNS: campaignPineIP,
	})

	host, err := world.AddHost("iot", netsim.IP{})
	if err != nil {
		return 0, err
	}
	if _, err := dnsserver.RunProxy(host, d); err != nil {
		return 0, err
	}
	client, err := dnsserver.NewClient(host)
	if err != nil {
		return 0, err
	}
	if _, err := host.Station(campaignSSID).Associate(); err != nil {
		return 0, fmt.Errorf("associate: %w", err)
	}
	// The device phones home; the rogue resolver answers.
	if _, err := client.Lookup(netsim.Addr{IP: host.IP, Port: dnsserver.DNSPort},
		"time.iot-vendor.example"); err != nil {
		return 0, err
	}
	world.Run(64)
	return mitm.Queries, nil
}
