package campaign

import (
	"testing"

	"connlab/internal/gadget"
	"connlab/internal/snapshot"
)

// TestSnapshotStoreCampaignEquivalence is the report-level half of the
// satellite-4 contract: an engine whose recon rehydrates from a populated
// snapshot store (with the gadget scan cache flushed, modelling a fresh
// process) must emit a byte-identical canonical report versus an engine
// that probed everything live.
func TestSnapshotStoreCampaignEquivalence(t *testing.T) {
	gadget.FlushScanCache()
	gadget.SetSnapshotStore(nil)
	t.Cleanup(func() {
		gadget.SetSnapshotStore(nil)
		gadget.FlushScanCache()
	})

	scenarios := determinismScenarios()

	live, err := New(Config{Workers: 4, RootSeed: 9090}).Run(scenarios)
	if err != nil {
		t.Fatalf("live run: %v", err)
	}

	store, err := snapshot.Open(t.TempDir())
	if err != nil {
		t.Fatalf("open store: %v", err)
	}
	gadget.SetSnapshotStore(store)
	gadget.FlushScanCache()

	// Cold run populates the store (recon misses fall back to live probes
	// and record their results).
	cold, err := New(Config{Workers: 4, RootSeed: 9090, Snapshots: store}).Run(scenarios)
	if err != nil {
		t.Fatalf("cold run: %v", err)
	}
	infos, err := store.Entries()
	if err != nil {
		t.Fatalf("entries: %v", err)
	}
	if len(infos) == 0 {
		t.Fatal("cold run stored no snapshots")
	}

	// Warm run: fresh engine, flushed scan cache — everything recon needs
	// beyond the cheap pure steps comes off disk.
	gadget.FlushScanCache()
	warm, err := New(Config{Workers: 4, RootSeed: 9090, Snapshots: store}).Run(scenarios)
	if err != nil {
		t.Fatalf("warm run: %v", err)
	}

	want := live.Canonical()
	for name, rep := range map[string]*Report{"cold": cold, "warm": warm} {
		if got := rep.Canonical(); got != want {
			t.Errorf("%s canonical report differs from live:\n--- live ---\n%s\n--- %s ---\n%s",
				name, want, name, got)
		}
	}

	if ok, bad, err := store.Verify(); err != nil || len(bad) != 0 || ok == 0 {
		t.Errorf("store verify after campaign: ok=%d bad=%v err=%v", ok, bad, err)
	}
}
