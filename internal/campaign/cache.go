package campaign

import (
	"sync"
	"sync/atomic"

	"connlab/internal/telemetry"
)

// Cache is a keyed, concurrency-safe, build-once cache (a typed
// singleflight): the first Get for a key runs build exactly once while
// concurrent Gets for the same key block on the result, and every later
// Get returns the cached value. Errors are cached alongside values —
// a configuration whose recon or payload construction fails, fails the
// same way for every device instead of being retried per device.
type Cache[K comparable, V any] struct {
	mu      sync.Mutex
	entries map[K]*cacheEntry[V]
	builds  atomic.Int64
	hits    atomic.Int64

	// Global telemetry counters mirrored on build/hit when instrumented.
	ctrBuild, ctrHit telemetry.Counter
	instrumented     bool
}

type cacheEntry[V any] struct {
	once sync.Once
	val  V
	err  error
}

// NewCache returns an empty cache.
func NewCache[K comparable, V any]() *Cache[K, V] {
	return &Cache[K, V]{entries: make(map[K]*cacheEntry[V])}
}

// Instrument mirrors the cache's build/hit counters into the named
// global telemetry counters (cheap no-ops while telemetry is disabled).
// Returns the cache for construction chaining.
func (c *Cache[K, V]) Instrument(build, hit telemetry.Counter) *Cache[K, V] {
	c.ctrBuild, c.ctrHit, c.instrumented = build, hit, true
	return c
}

// Get returns the cached value for key, building it with build on first
// use. Concurrent callers for the same key wait for the single build.
func (c *Cache[K, V]) Get(key K, build func() (V, error)) (V, error) {
	c.mu.Lock()
	e, ok := c.entries[key]
	if !ok {
		e = &cacheEntry[V]{}
		c.entries[key] = e
	}
	c.mu.Unlock()

	built := false
	e.once.Do(func() {
		built = true
		c.builds.Add(1)
		e.val, e.err = build()
	})
	if !built {
		c.hits.Add(1)
	}
	if c.instrumented {
		if built {
			telemetry.Inc(c.ctrBuild)
		} else {
			telemetry.Inc(c.ctrHit)
		}
	}
	return e.val, e.err
}

// Len returns the number of distinct keys seen.
func (c *Cache[K, V]) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}

// CacheStats reports cache effectiveness.
type CacheStats struct {
	// Builds counts build invocations (misses); Hits counts Gets served
	// from a completed or in-flight build.
	Builds, Hits int64
}

// Stats returns a snapshot of build/hit counters.
func (c *Cache[K, V]) Stats() CacheStats {
	return CacheStats{Builds: c.builds.Load(), Hits: c.hits.Load()}
}
