package campaign

import (
	"strings"
	"testing"

	"connlab/internal/exploit"
	"connlab/internal/isa"
)

func scaleScenario() Scenario {
	return Scenario{
		Arch: isa.ArchX86S,
		Kind: exploit.KindCodeInjection,
	}
}

// TestPineappleScaleDeterministicAcrossShards is the golden
// shard-count test of the PR: the same population-scale Pineapple
// scenario at shards=1,2,8 must produce byte-identical transcripts —
// and, Verbose, byte-identical netsim event logs.
func TestPineappleScaleDeterministicAcrossShards(t *testing.T) {
	cfg := ScaleConfig{
		Stations:    300,
		Lookups:     2,
		VictimEvery: 100, // stations 0, 100, 200 are full devices
		Scenario:    scaleScenario(),
		Verbose:     true,
	}
	run := func(shards int) *ScaleReport {
		e := New(Config{Workers: 1})
		c := cfg
		c.Shards = shards
		rep, err := e.RunPineappleScale(c)
		if err != nil {
			t.Fatalf("shards=%d: %v", shards, err)
		}
		return rep
	}
	want := run(1)
	if want.Victims != 3 {
		t.Fatalf("victims = %d, want 3", want.Victims)
	}
	if want.Shells+want.Crashes == 0 {
		t.Fatalf("attack had no effect on any victim:\n%s", want.Transcript())
	}
	if want.BaselineOK == 0 || want.AttackTainted == 0 || want.Hijacked == 0 {
		t.Fatalf("degenerate run:\n%s", want.Transcript())
	}
	if want.BaselineTainted != 0 {
		t.Fatalf("legit resolver handed out wrong answers:\n%s", want.Transcript())
	}
	for _, shards := range []int{2, 8} {
		got := run(shards)
		if got.Transcript() != want.Transcript() {
			t.Errorf("shards=%d transcript diverged:\n got:\n%s\nwant:\n%s", shards, got.Transcript(), want.Transcript())
		}
		if len(got.Events) != len(want.Events) {
			t.Fatalf("shards=%d: %d events, want %d", shards, len(got.Events), len(want.Events))
		}
		for i := range got.Events {
			if got.Events[i] != want.Events[i] {
				t.Fatalf("shards=%d: event %d:\n got %q\nwant %q", shards, i, got.Events[i], want.Events[i])
			}
		}
	}
}

// TestPineappleScaleBaselineVsAttack: the deterministic accounting
// adds up — every light station resolves once in baseline and Lookups
// times under attack, every victim lookup is hijacked, and the
// exploit's answer never passes a station's byte check.
func TestPineappleScaleBaselineVsAttack(t *testing.T) {
	e := New(Config{Workers: 1})
	cfg := ScaleConfig{
		Stations:    120,
		Shards:      4,
		Lookups:     3,
		VictimEvery: 60,
		Scenario:    scaleScenario(),
	}
	rep, err := e.RunPineappleScale(cfg)
	if err != nil {
		t.Fatal(err)
	}
	lights := cfg.Stations - rep.Victims
	if rep.BaselineOK != lights {
		t.Errorf("baseline ok = %d, want %d\n%s", rep.BaselineOK, lights, rep.Transcript())
	}
	if rep.AttackTainted != lights*cfg.Lookups {
		t.Errorf("attack tainted = %d, want %d\n%s", rep.AttackTainted, lights*cfg.Lookups, rep.Transcript())
	}
	if rep.AttackOK != 0 {
		t.Errorf("attack ok = %d, want 0", rep.AttackOK)
	}
	// The MITM answers every light-station lookup plus every victim
	// phone-home the proxy forwarded.
	if rep.Hijacked < lights*cfg.Lookups {
		t.Errorf("hijacked = %d, want >= %d", rep.Hijacked, lights*cfg.Lookups)
	}
	if rep.Dropped != 0 {
		t.Errorf("dropped = %d datagrams in a fully-routed world\n%s", rep.Dropped, rep.Transcript())
	}
	if got := strings.Count(rep.Transcript(), "\n"); got != 5 {
		t.Errorf("transcript shape changed (%d lines):\n%s", got, rep.Transcript())
	}
}

// TestZoneTrieServesPopulation: the shared resolver's trie really is
// the zone — a smoke check that population names resolve through the
// full netsim path (not just unit lookups).
func TestPineappleScaleNoVictims(t *testing.T) {
	e := New(Config{Workers: 1})
	rep, err := e.RunPineappleScale(ScaleConfig{
		Stations: 50,
		Shards:   2,
		Scenario: scaleScenario(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Victims != 0 || rep.Shells+rep.Crashes+rep.NoEffect != 0 {
		t.Fatalf("victimless run grew victims: %+v", rep)
	}
	if rep.BaselineOK != 50 || rep.BaselineResolved != 50 {
		t.Fatalf("baseline: %+v", rep)
	}
	if rep.Hijacked != 50 {
		t.Fatalf("hijacked = %d, want 50", rep.Hijacked)
	}
}
