package lzss

import (
	"bytes"
	"errors"
	"io"
	"math/rand"
	"testing"
)

// roundTrip compresses and decompresses data with the given parameters,
// failing the test on any mismatch.
func roundTrip(t *testing.T, data []byte, wb, lb uint8) []byte {
	t.Helper()
	comp, err := Compress(nil, data, wb, lb)
	if err != nil {
		t.Fatalf("compress(w=%d l=%d): %v", wb, lb, err)
	}
	back, err := Decompress(nil, comp, len(data)+1)
	if err != nil {
		t.Fatalf("decompress(w=%d l=%d): %v", wb, lb, err)
	}
	if !bytes.Equal(back, data) {
		t.Fatalf("round trip mismatch (w=%d l=%d): %d bytes in, %d out", wb, lb, len(data), len(back))
	}
	return comp
}

func TestRoundTripShapes(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	random := make([]byte, 32<<10)
	rng.Read(random)
	structured := make([]byte, 0, 48<<10)
	for i := 0; i < 256; i++ {
		structured = append(structured, bytes.Repeat([]byte{byte(i), byte(i >> 1), 0, 0}, 32)...)
		structured = append(structured, []byte("parse_response get_name .text .bss")...)
	}
	cases := map[string][]byte{
		"empty":      nil,
		"one":        {0xC3},
		"zeros":      make([]byte, 8192),
		"random":     random,
		"structured": structured,
		"alphabet":   []byte("abcdefghabcdefghabcdefgh"),
	}
	for name, data := range cases {
		comp := roundTrip(t, data, DefaultWindowBits, DefaultLookaheadBits)
		if name == "zeros" && len(comp) > len(data)/4 {
			t.Errorf("zeros compressed to %d bytes of %d — no compression happening", len(comp), len(data))
		}
		if name == "structured" && len(comp) >= len(data) {
			t.Errorf("structured data did not compress: %d -> %d", len(data), len(comp))
		}
	}
}

func TestRoundTripParamMatrix(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	data := make([]byte, 10000)
	for i := range data {
		// Mildly compressible: runs with occasional noise.
		if rng.Intn(4) == 0 {
			data[i] = byte(rng.Intn(256))
		} else if i > 0 {
			data[i] = data[i-1]
		}
	}
	for wb := uint8(MinWindowBits); wb <= MaxWindowBits; wb++ {
		for lb := uint8(MinLookaheadBits); lb < wb; lb++ {
			roundTrip(t, data, wb, lb)
		}
	}
}

// TestStreamingChunked feeds the writer byte-sized and odd-sized chunks
// and drains the reader through tiny buffers: the chunking must be
// invisible in the output.
func TestStreamingChunked(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	data := make([]byte, 70000) // forces several window compactions at w=11
	for i := range data {
		data[i] = byte(rng.Intn(8) * 31)
	}
	var comp bytes.Buffer
	e, err := NewWriter(&comp, 11, 4)
	if err != nil {
		t.Fatal(err)
	}
	for off := 0; off < len(data); {
		n := 1 + rng.Intn(777)
		if off+n > len(data) {
			n = len(data) - off
		}
		if _, err := e.Write(data[off : off+n]); err != nil {
			t.Fatal(err)
		}
		off += n
	}
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
	oneShot, err := Compress(nil, data, 11, 4)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(comp.Bytes(), oneShot) {
		t.Error("chunked compression differs from one-shot")
	}

	d := NewReader(bytes.NewReader(comp.Bytes()))
	var got []byte
	buf := make([]byte, 3)
	for {
		n, err := d.Read(buf)
		got = append(got, buf[:n]...)
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
	}
	if !bytes.Equal(got, data) {
		t.Fatalf("streamed decode mismatch: %d bytes, want %d", len(got), len(data))
	}
}

func TestTruncatedStream(t *testing.T) {
	data := []byte("the window and lookahead state machine must notice truncation")
	comp, err := Compress(nil, data, 8, 3)
	if err != nil {
		t.Fatal(err)
	}
	for cut := 0; cut < len(comp); cut++ {
		_, err := Decompress(nil, comp[:cut], len(data)+1)
		if err == nil {
			t.Fatalf("truncation at %d/%d bytes not detected", cut, len(comp))
		}
		if !errors.Is(err, ErrTruncated) && !errors.Is(err, ErrBadParams) && !errors.Is(err, ErrCorrupt) {
			t.Fatalf("truncation at %d: unexpected error %v", cut, err)
		}
	}
}

func TestCorruptBackReference(t *testing.T) {
	// Hand-build a stream whose first token is a back-reference: nothing
	// has been produced yet, so any distance is invalid.
	var out []byte
	out = append(out, 8, 3)
	var bw bitWriter
	bw.write(&out, 0, 1) // back-reference flag
	bw.write(&out, 5, 8) // offset
	bw.write(&out, 1, 3) // length code (not EOS)
	bw.flush(&out)
	if _, err := Decompress(nil, out, 100); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("got %v, want ErrCorrupt", err)
	}
}

func TestBadParams(t *testing.T) {
	if _, err := NewWriter(io.Discard, 3, 2); !errors.Is(err, ErrBadParams) {
		t.Errorf("window too small accepted: %v", err)
	}
	if _, err := NewWriter(io.Discard, 16, 4); !errors.Is(err, ErrBadParams) {
		t.Errorf("window too large accepted: %v", err)
	}
	if _, err := NewWriter(io.Discard, 8, 8); !errors.Is(err, ErrBadParams) {
		t.Errorf("lookahead >= window accepted: %v", err)
	}
	if _, err := Decompress(nil, []byte{99, 1, 0, 0}, 10); !errors.Is(err, ErrBadParams) {
		t.Errorf("bad header accepted: %v", err)
	}
}

func TestDecompressLimit(t *testing.T) {
	data := make([]byte, 4096)
	comp, err := Compress(nil, data, 10, 4)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Decompress(nil, comp, 100); !errors.Is(err, ErrTooLarge) {
		t.Fatalf("got %v, want ErrTooLarge", err)
	}
}

func TestWriteAfterClose(t *testing.T) {
	e, err := NewWriter(io.Discard, 8, 3)
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Write([]byte("x")); !errors.Is(err, ErrClosed) {
		t.Fatalf("got %v, want ErrClosed", err)
	}
	if err := e.Close(); err != nil {
		t.Errorf("second Close: %v", err)
	}
}

// FuzzLZSSRoundTrip: decode(encode(x)) must be byte-equal for arbitrary
// inputs and any valid window/lookahead pair.
func FuzzLZSSRoundTrip(f *testing.F) {
	f.Add([]byte("hello hello hello"), uint8(11), uint8(4))
	f.Add([]byte{}, uint8(4), uint8(2))
	f.Add(bytes.Repeat([]byte{0xAB, 0xCD}, 500), uint8(15), uint8(7))
	f.Fuzz(func(t *testing.T, data []byte, wb, lb uint8) {
		// Cap the input so instrumented execs (and minimization of
		// interesting inputs) stay fast: beyond 64 KiB the mutator is
		// exploring encoder throughput, not correctness. Window wrap is
		// still exercised at every parameter, and TestStreamingChunked
		// covers buffer compaction directly.
		if len(data) > 64<<10 {
			data = data[:64<<10]
		}
		// Fold arbitrary parameter bytes into the valid range so every
		// input exercises a real configuration.
		wb = MinWindowBits + wb%(MaxWindowBits-MinWindowBits+1)
		lb = MinLookaheadBits + lb%(wb-MinLookaheadBits)
		comp, err := Compress(nil, data, wb, lb)
		if err != nil {
			t.Fatalf("compress(w=%d l=%d): %v", wb, lb, err)
		}
		back, err := Decompress(nil, comp, len(data)+1)
		if err != nil {
			t.Fatalf("decompress(w=%d l=%d): %v", wb, lb, err)
		}
		if !bytes.Equal(back, data) {
			t.Fatalf("round trip mismatch: w=%d l=%d in=%d out=%d", wb, lb, len(data), len(back))
		}
	})
}

// FuzzDecompressArbitrary: arbitrary bytes fed to the decoder must
// either decode or error — never panic, never allocate unboundedly.
func FuzzDecompressArbitrary(f *testing.F) {
	f.Add([]byte{11, 4, 0xFF})
	f.Fuzz(func(t *testing.T, data []byte) {
		out, err := Decompress(nil, data, 1<<16)
		if err == nil && len(out) > 1<<16 {
			t.Fatalf("limit not enforced: %d bytes out", len(out))
		}
	})
}
