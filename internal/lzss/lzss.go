// Package lzss is a zero-dependency LZSS streaming codec in the spirit
// of embedded heatshrink compressors: the bitstream is parameterized by
// a window size and a lookahead size (both powers of two, encoded in a
// two-byte stream header), the encoder is an io.Writer with a bounded
// sliding window, and the decoder is an io.Reader driven by an explicit
// state machine that never trusts its input.
//
// Stream layout:
//
//	byte 0: window bits W   (4..15 — window of 2^W bytes)
//	byte 1: lookahead bits L (2..W-1)
//	then a MSB-first bitstream of tokens:
//	  1 <8 bits>          literal byte
//	  0 <W bits> <L bits> back-reference: offset field = distance-1,
//	                      length field = match length - minMatch
//	  0 <W bits> <L all-ones>  end of stream
//
// The all-ones length code is reserved as the end-of-stream marker, so
// a decoder knows exactly where the payload stops without an out-of-band
// length, and trailing padding bits can never be misread as data. The
// minimum match length is the smallest run for which a back-reference
// (1+W+L bits) beats literals (9 bits/byte), so the codec never emits a
// reference that expands the stream.
package lzss

import (
	"errors"
	"fmt"
	"io"
)

// Parameter bounds. Lookahead must be strictly smaller than the window,
// as in heatshrink.
const (
	MinWindowBits    = 4
	MaxWindowBits    = 15
	MinLookaheadBits = 2

	// DefaultWindowBits / DefaultLookaheadBits suit the snapshot store's
	// artifact sizes: a 2 KiB window catches the section-to-section
	// redundancy of recon payloads without embedded-scale state.
	DefaultWindowBits    = 11
	DefaultLookaheadBits = 4
)

// Sentinel errors.
var (
	// ErrTruncated is returned when the input ends before the
	// end-of-stream marker — the compressed stream was cut short.
	ErrTruncated = errors.New("lzss: ran out of input before end of stream")
	// ErrCorrupt is returned for structurally invalid streams (a
	// back-reference pointing before the start of the output).
	ErrCorrupt = errors.New("lzss: corrupt stream")
	// ErrBadParams is returned for window/lookahead bits outside the
	// supported range.
	ErrBadParams = errors.New("lzss: invalid window/lookahead parameters")
	// ErrTooLarge is returned by Decompress when the output exceeds the
	// caller's limit.
	ErrTooLarge = errors.New("lzss: output exceeds size limit")
	// ErrClosed is returned on writes after Close.
	ErrClosed = errors.New("lzss: write after close")
)

// CheckParams validates a window/lookahead pair.
func CheckParams(windowBits, lookaheadBits uint8) error {
	if windowBits < MinWindowBits || windowBits > MaxWindowBits ||
		lookaheadBits < MinLookaheadBits || lookaheadBits >= windowBits {
		return fmt.Errorf("%w: window=%d lookahead=%d", ErrBadParams, windowBits, lookaheadBits)
	}
	return nil
}

// minMatchFor is the smallest match length worth a back-reference:
// the first n with 9n > 1+W+L.
func minMatchFor(windowBits, lookaheadBits uint8) int {
	return (1+int(windowBits)+int(lookaheadBits))/9 + 1
}

// maxMatchFor is the longest encodable match: length codes run
// 0..2^L-2 (all-ones is the end-of-stream marker).
func maxMatchFor(windowBits, lookaheadBits uint8) int {
	return minMatchFor(windowBits, lookaheadBits) + (1 << lookaheadBits) - 2
}

// hashBits sizes the encoder's chain head table: a direct index over
// two input bytes.
const hashBits = 16

// maxChainDepth bounds the match search per position; beyond it the
// encoder settles for the best candidate found so far.
const maxChainDepth = 64

// Writer is the streaming encoder. Bytes written compress into the
// underlying writer; Close flushes the tail and the end-of-stream
// marker. The sliding window is bounded: input older than the window
// is discarded as encoding advances.
type Writer struct {
	w             io.Writer
	windowBits    uint8
	lookaheadBits uint8
	minMatch      int
	maxMatch      int
	winSize       int

	// buf holds the window plus not-yet-encoded input; base is the
	// absolute stream offset of buf[0] and pos indexes the next byte to
	// encode. head/prev are the match-finder hash chains: head maps a
	// two-byte hash to the most recent absolute position, prev (aligned
	// with buf) links each position to the previous one with the same
	// hash. Positions that fall off the window terminate chain walks by
	// the distance check, so stale entries are harmless.
	buf  []byte
	base int64
	pos  int
	head []int64
	prev []int64

	bits bitWriter
	out  []byte

	headerDone bool
	closed     bool
	err        error
}

// NewWriter returns an encoder with the given parameters writing to w.
func NewWriter(w io.Writer, windowBits, lookaheadBits uint8) (*Writer, error) {
	if err := CheckParams(windowBits, lookaheadBits); err != nil {
		return nil, err
	}
	e := &Writer{
		w:             w,
		windowBits:    windowBits,
		lookaheadBits: lookaheadBits,
		minMatch:      minMatchFor(windowBits, lookaheadBits),
		maxMatch:      maxMatchFor(windowBits, lookaheadBits),
		winSize:       1 << windowBits,
		head:          make([]int64, 1<<hashBits),
	}
	return e, nil
}

// Write compresses p. The data is encoded greedily; a tail shorter than
// the maximum match is withheld until more input or Close, since later
// bytes could extend its matches.
func (e *Writer) Write(p []byte) (int, error) {
	if e.err != nil {
		return 0, e.err
	}
	if e.closed {
		return 0, ErrClosed
	}
	e.compact(len(p))
	e.buf = append(e.buf, p...)
	e.encodeTo(len(e.buf) - e.maxMatch)
	if err := e.flushOut(false); err != nil {
		return 0, err
	}
	return len(p), nil
}

// Close encodes the withheld tail, emits the end-of-stream marker, and
// flushes everything to the underlying writer. It does not close the
// underlying writer.
func (e *Writer) Close() error {
	if e.err != nil {
		return e.err
	}
	if e.closed {
		return nil
	}
	e.closed = true
	e.encodeTo(len(e.buf))
	// End of stream: a zero offset field with the reserved all-ones
	// length code.
	e.bits.write(&e.out, 0, 1)
	e.bits.write(&e.out, 0, uint(e.windowBits))
	e.bits.write(&e.out, uint32(1<<e.lookaheadBits)-1, uint(e.lookaheadBits))
	e.bits.flush(&e.out)
	return e.flushOut(true)
}

// compact drops input that has slid out of the window once the buffer
// has grown enough to amortize the copy.
func (e *Writer) compact(incoming int) {
	if len(e.buf)+incoming < 4*e.winSize+4096 {
		return
	}
	drop := e.pos - e.winSize
	if drop <= 0 {
		return
	}
	copy(e.buf, e.buf[drop:])
	copy(e.prev, e.prev[drop:])
	e.buf = e.buf[:len(e.buf)-drop]
	e.prev = e.prev[:len(e.prev)-drop]
	e.base += int64(drop)
	e.pos -= drop
}

// encodeTo encodes positions up to limit (exclusive).
func (e *Writer) encodeTo(limit int) {
	if !e.headerDone {
		e.headerDone = true
		e.out = append(e.out, e.windowBits, e.lookaheadBits)
	}
	if n := len(e.buf) - len(e.prev); n > 0 {
		e.prev = append(e.prev, make([]int64, n)...)
	}
	for e.pos < limit {
		length, dist := e.findMatch()
		if length >= e.minMatch {
			e.bits.write(&e.out, 0, 1)
			e.bits.write(&e.out, uint32(dist-1), uint(e.windowBits))
			e.bits.write(&e.out, uint32(length-e.minMatch), uint(e.lookaheadBits))
			for i := 0; i < length; i++ {
				e.insert(e.pos + i)
			}
			e.pos += length
		} else {
			e.bits.write(&e.out, 1, 1)
			e.bits.write(&e.out, uint32(e.buf[e.pos]), 8)
			e.insert(e.pos)
			e.pos++
		}
	}
}

// insert records position i in the hash chains.
func (e *Writer) insert(i int) {
	if i+1 >= len(e.buf) {
		return
	}
	h := hash2(e.buf[i], e.buf[i+1])
	e.prev[i] = e.head[h]
	e.head[h] = e.base + int64(i) + 1
}

// findMatch returns the best match for the current position.
func (e *Writer) findMatch() (length, dist int) {
	avail := len(e.buf) - e.pos
	if avail < e.minMatch || e.pos+1 >= len(e.buf) {
		return 0, 0
	}
	maxLen := e.maxMatch
	if maxLen > avail {
		maxLen = avail
	}
	lo := e.base + int64(e.pos) - int64(e.winSize)
	h := hash2(e.buf[e.pos], e.buf[e.pos+1])
	best, bestDist := 0, 0
	depth := 0
	// Chain entries store position+1 so the zero value of a fresh table
	// means "empty" and allocation needs no initialization pass.
	for c := e.head[h]; c != 0 && depth < maxChainDepth; depth++ {
		cand := c - 1
		if cand < lo || cand < e.base {
			break
		}
		ci := int(cand - e.base)
		// Quick reject: a candidate that cannot beat the current best
		// must differ at offset best, checked in O(1).
		if best > 0 && e.buf[ci+best] != e.buf[e.pos+best] {
			c = e.prev[ci]
			continue
		}
		n := 0
		for n < maxLen && e.buf[ci+n] == e.buf[e.pos+n] {
			n++
		}
		if n > best {
			best, bestDist = n, e.pos-ci
			if n == maxLen {
				break
			}
		}
		c = e.prev[ci]
	}
	return best, bestDist
}

// flushOut drains the output buffer to the underlying writer; small
// buffers are retained unless final.
func (e *Writer) flushOut(final bool) error {
	if !final && len(e.out) < 32<<10 {
		return nil
	}
	if len(e.out) > 0 {
		if _, err := e.w.Write(e.out); err != nil {
			e.err = err
			return err
		}
		e.out = e.out[:0]
	}
	return nil
}

// hash2 indexes the chain heads by two raw bytes.
func hash2(a, b byte) uint32 { return uint32(a)<<8 | uint32(b) }

// bitWriter packs MSB-first bits into a byte slice.
type bitWriter struct {
	cur uint64
	n   uint
}

func (bw *bitWriter) write(out *[]byte, v uint32, n uint) {
	bw.cur = bw.cur<<n | uint64(v)&(1<<n-1)
	bw.n += n
	for bw.n >= 8 {
		bw.n -= 8
		*out = append(*out, byte(bw.cur>>bw.n))
	}
}

// flush pads the final partial byte with zero bits.
func (bw *bitWriter) flush(out *[]byte) {
	if bw.n > 0 {
		*out = append(*out, byte(bw.cur<<(8-bw.n)))
		bw.n = 0
	}
	bw.cur = 0
}

// Reader is the streaming decoder. It reads the two-byte parameter
// header lazily on the first Read and then replays tokens until the
// end-of-stream marker, after which it reports io.EOF. Input ending
// mid-stream surfaces as ErrTruncated; back-references reaching before
// the start of the output surface as ErrCorrupt.
type Reader struct {
	r   io.Reader
	err error

	windowBits    uint8
	lookaheadBits uint8
	minMatch      int
	winSize       int

	win      []byte
	wpos     int
	produced int64

	// Pending back-reference copy state: copyLen bytes remain to be
	// copied from copyDist behind the write head.
	copyLen  int
	copyDist int

	in    []byte
	inPos int
	inEOF bool

	bitCur uint64
	bitN   uint

	headerDone bool
	eos        bool
}

// NewReader returns a decoder reading a compressed stream from r.
func NewReader(r io.Reader) *Reader {
	return &Reader{r: r, in: make([]byte, 0, 4096)}
}

// Read implements io.Reader.
func (d *Reader) Read(p []byte) (int, error) {
	if d.err != nil {
		return 0, d.err
	}
	if !d.headerDone {
		if err := d.readHeader(); err != nil {
			return 0, d.fail(err)
		}
	}
	n := 0
	mask := d.winSize - 1
	for n < len(p) {
		if d.copyLen > 0 {
			// Drain the pending back-reference in one batch: the ring
			// update stays byte-by-byte (source and destination may
			// overlap by design), but the bookkeeping is hoisted out.
			m := d.copyLen
			if m > len(p)-n {
				m = len(p) - n
			}
			for i := 0; i < m; i++ {
				b := d.win[(d.wpos-d.copyDist)&mask]
				d.win[d.wpos] = b
				d.wpos = (d.wpos + 1) & mask
				p[n] = b
				n++
			}
			d.produced += int64(m)
			d.copyLen -= m
			continue
		}
		if d.eos {
			break
		}
		n = d.fastTokens(p, n)
		if n == len(p) || d.copyLen > 0 || d.eos {
			continue
		}
		flag, err := d.readBits(1)
		if err != nil {
			return n, d.fail(err)
		}
		if flag == 1 {
			lit, err := d.readBits(8)
			if err != nil {
				return n, d.fail(err)
			}
			b := byte(lit)
			d.win[d.wpos] = b
			d.wpos = (d.wpos + 1) & mask
			d.produced++
			p[n] = b
			n++
			continue
		}
		off, err := d.readBits(uint(d.windowBits))
		if err != nil {
			return n, d.fail(err)
		}
		code, err := d.readBits(uint(d.lookaheadBits))
		if err != nil {
			return n, d.fail(err)
		}
		if code == uint32(1<<d.lookaheadBits)-1 {
			d.eos = true
			continue
		}
		dist := int(off) + 1
		if int64(dist) > d.produced {
			return n, d.fail(fmt.Errorf("%w: back-reference distance %d at offset %d", ErrCorrupt, dist, d.produced))
		}
		d.copyDist = dist
		d.copyLen = d.minMatch + int(code)
	}
	if n == 0 && d.eos {
		return 0, io.EOF
	}
	return n, nil
}

// fastTokens decodes tokens in a tight loop while whole tokens are
// available in the buffered input, keeping the bit reservoir in locals
// to skip the per-bit-group call overhead of readBits. It stops — with
// the reservoir state intact for the slow path to resume — when the
// buffer drains mid-token, a back-reference needs the batch copier, or
// output fills. Invalid back-references are left unconsumed so the slow
// path re-reads them and reports the error.
func (d *Reader) fastTokens(p []byte, n int) int {
	cur, bn := d.bitCur, d.bitN
	in, ip := d.in, d.inPos
	win, wpos := d.win, d.wpos
	mask := d.winSize - 1
	prod := d.produced
	wbits, lbits := uint(d.windowBits), uint(d.lookaheadBits)
	tokBits := 1 + wbits + lbits
	eosCode := uint32(1<<lbits) - 1
	for n < len(p) {
		for bn <= 56 && ip < len(in) {
			cur = cur<<8 | uint64(in[ip])
			ip++
			bn += 8
		}
		if bn < 1 {
			break
		}
		if (cur>>(bn-1))&1 == 1 {
			if bn < 9 {
				break
			}
			b := byte(cur >> (bn - 9))
			bn -= 9
			win[wpos] = b
			wpos = (wpos + 1) & mask
			prod++
			p[n] = b
			n++
			continue
		}
		if bn < tokBits {
			break
		}
		code := uint32(cur>>(bn-tokBits)) & eosCode
		if code == eosCode {
			bn -= tokBits
			d.eos = true
			break
		}
		dist := int(uint32(cur>>(bn-1-wbits))&(1<<wbits-1)) + 1
		if int64(dist) > prod {
			break // leave unconsumed: slow path reports the corruption
		}
		bn -= tokBits
		d.copyDist = dist
		d.copyLen = d.minMatch + int(code)
		break // the batch copier in Read drains it
	}
	d.bitCur, d.bitN, d.inPos = cur, bn, ip
	d.wpos, d.produced = wpos, prod
	return n
}

// fail records a sticky error (io.EOF mid-token becomes ErrTruncated).
func (d *Reader) fail(err error) error {
	if err == io.EOF || err == io.ErrUnexpectedEOF {
		err = ErrTruncated
	}
	d.err = err
	return err
}

// readHeader consumes and validates the two parameter bytes.
func (d *Reader) readHeader() error {
	wb, err := d.readByte()
	if err != nil {
		return err
	}
	lb, err := d.readByte()
	if err != nil {
		return err
	}
	if err := CheckParams(wb, lb); err != nil {
		return err
	}
	d.windowBits, d.lookaheadBits = wb, lb
	d.minMatch = minMatchFor(wb, lb)
	d.winSize = 1 << wb
	d.win = make([]byte, d.winSize)
	d.headerDone = true
	return nil
}

// emit appends one output byte to the window ring.
func (d *Reader) emit(b byte) {
	d.win[d.wpos] = b
	d.wpos = (d.wpos + 1) & (d.winSize - 1)
	d.produced++
}

// readBits returns the next n bits MSB-first.
func (d *Reader) readBits(n uint) (uint32, error) {
	for d.bitN < n {
		// Fast path: refill straight from the buffered input without
		// the readByte call overhead (this loop runs once per token
		// bit group on the store's cold-start rehydration path).
		if d.inPos < len(d.in) {
			d.bitCur = d.bitCur<<8 | uint64(d.in[d.inPos])
			d.inPos++
			d.bitN += 8
			continue
		}
		b, err := d.readByte()
		if err != nil {
			return 0, err
		}
		d.bitCur = d.bitCur<<8 | uint64(b)
		d.bitN += 8
	}
	d.bitN -= n
	return uint32(d.bitCur>>d.bitN) & (1<<n - 1), nil
}

// readByte refills the input buffer from the underlying reader as
// needed.
func (d *Reader) readByte() (byte, error) {
	if d.inPos >= len(d.in) {
		if d.inEOF {
			return 0, io.EOF
		}
		d.in = d.in[:cap(d.in)]
		n, err := d.r.Read(d.in)
		d.in, d.inPos = d.in[:n], 0
		if err == io.EOF {
			d.inEOF = true
		} else if err != nil {
			return 0, err
		}
		if n == 0 {
			if d.inEOF {
				return 0, io.EOF
			}
			return 0, io.ErrNoProgress
		}
	}
	b := d.in[d.inPos]
	d.inPos++
	return b, nil
}

// Compress appends the compressed form of src to dst and returns the
// extended slice — the one-shot convenience over Writer.
func Compress(dst, src []byte, windowBits, lookaheadBits uint8) ([]byte, error) {
	buf := sliceWriter{b: dst}
	e, err := NewWriter(&buf, windowBits, lookaheadBits)
	if err != nil {
		return dst, err
	}
	if _, err := e.Write(src); err != nil {
		return dst, err
	}
	if err := e.Close(); err != nil {
		return dst, err
	}
	return buf.b, nil
}

// Decompress appends the decompressed form of src to dst, failing with
// ErrTooLarge once the output exceeds limit bytes (limit <= 0 means
// 1 GiB — a backstop against corrupt streams, not a tuning knob).
func Decompress(dst, src []byte, limit int) ([]byte, error) {
	if limit <= 0 {
		limit = 1 << 30
	}
	// Decode straight off src: the whole input is already in memory, so
	// the Reader's refill buffer is src itself (inEOF set, r never
	// consulted) and no copy of the compressed bytes is made.
	d := &Reader{in: src, inEOF: true}
	start := len(dst)
	var chunk [4096]byte
	for {
		// Prefer decoding into dst's spare capacity (callers that know
		// the raw size pre-size it and pay one allocation total),
		// clamped so overshooting limit by one byte is still detected.
		if spare := cap(dst) - len(dst); spare > 0 {
			buf := dst[len(dst):cap(dst)]
			if m := limit - (len(dst) - start) + 1; len(buf) > m {
				buf = buf[:m]
			}
			n, err := d.Read(buf)
			dst = dst[:len(dst)+n]
			if len(dst)-start > limit {
				return dst, ErrTooLarge
			}
			if err == io.EOF {
				return dst, nil
			}
			if err != nil {
				return dst, err
			}
			continue
		}
		n, err := d.Read(chunk[:])
		if len(dst)-start+n > limit {
			return dst, ErrTooLarge
		}
		dst = append(dst, chunk[:n]...)
		if err == io.EOF {
			return dst, nil
		}
		if err != nil {
			return dst, err
		}
	}
}

// sliceWriter appends to a byte slice.
type sliceWriter struct{ b []byte }

func (w *sliceWriter) Write(p []byte) (int, error) {
	w.b = append(w.b, p...)
	return len(p), nil
}
