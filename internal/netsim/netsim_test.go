package netsim

import (
	"testing"
)

func TestUDPDelivery(t *testing.T) {
	n := New()
	a, err := n.AddHost("a", IP{10, 0, 0, 1})
	if err != nil {
		t.Fatal(err)
	}
	b, err := n.AddHost("b", IP{10, 0, 0, 2})
	if err != nil {
		t.Fatal(err)
	}
	var got []Datagram
	// Handlers must copy payload bytes they retain (the buffer is
	// recycled — and poisoned under -tags netsimdebug — on return).
	if _, err := b.Bind(7, func(dg Datagram) {
		dg.Payload = append([]byte(nil), dg.Payload...)
		got = append(got, dg)
	}); err != nil {
		t.Fatal(err)
	}
	sa, err := a.Bind(1234, nil)
	if err != nil {
		t.Fatal(err)
	}
	sa.SendTo(Addr{IP: b.IP, Port: 7}, []byte("ping"))
	n.Run(10)
	if len(got) != 1 || string(got[0].Payload) != "ping" {
		t.Fatalf("delivered = %v", got)
	}
	if got[0].Src.IP != a.IP || got[0].Src.Port != 1234 {
		t.Errorf("src = %v", got[0].Src)
	}
	if n.Delivered != 1 || n.Dropped != 0 {
		t.Errorf("counters = %d/%d", n.Delivered, n.Dropped)
	}
}

func TestPayloadCopiedNotAliased(t *testing.T) {
	n := New()
	a, _ := n.AddHost("a", IP{10, 0, 0, 1})
	b, _ := n.AddHost("b", IP{10, 0, 0, 2})
	var got []byte
	_, _ = b.Bind(9, func(dg Datagram) { got = append([]byte(nil), dg.Payload...) })
	s, _ := a.Bind(1000, nil)
	buf := []byte("abc")
	s.SendTo(Addr{IP: b.IP, Port: 9}, buf)
	buf[0] = 'X' // mutate after send
	n.Run(10)
	if string(got) != "abc" {
		t.Errorf("payload = %q, want copy semantics", got)
	}
}

func TestDropsCounted(t *testing.T) {
	n := New()
	a, _ := n.AddHost("a", IP{10, 0, 0, 1})
	s, _ := a.Bind(1, nil)
	s.SendTo(Addr{IP: IP{9, 9, 9, 9}, Port: 1}, []byte("x")) // no route
	s.SendTo(Addr{IP: a.IP, Port: 999}, []byte("y"))         // closed port
	n.Run(10)
	if n.Dropped != 2 {
		t.Errorf("dropped = %d, want 2", n.Dropped)
	}
}

func TestRecvQueueWithoutHandler(t *testing.T) {
	n := New()
	a, _ := n.AddHost("a", IP{10, 0, 0, 1})
	s, _ := a.Bind(5, nil)
	tx, _ := a.Bind(6, nil)
	tx.SendTo(Addr{IP: a.IP, Port: 5}, []byte("q1"))
	tx.SendTo(Addr{IP: a.IP, Port: 5}, []byte("q2"))
	n.Run(10)
	d1, ok1 := s.Recv()
	d2, ok2 := s.Recv()
	_, ok3 := s.Recv()
	if !ok1 || !ok2 || ok3 {
		t.Fatalf("recv availability = %v %v %v", ok1, ok2, ok3)
	}
	if string(d1.Payload) != "q1" || string(d2.Payload) != "q2" {
		t.Errorf("fifo order broken: %q, %q", d1.Payload, d2.Payload)
	}
}

func TestBindErrors(t *testing.T) {
	n := New()
	a, _ := n.AddHost("a", IP{10, 0, 0, 1})
	if _, err := a.Bind(53, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := a.Bind(53, nil); err == nil {
		t.Error("duplicate bind accepted")
	}
	if _, err := n.AddHost("a", IP{10, 0, 0, 3}); err == nil {
		t.Error("duplicate host accepted")
	}
	if _, err := n.AddHost("c", IP{10, 0, 0, 1}); err == nil {
		t.Error("duplicate IP accepted")
	}
	if _, err := a.BindEphemeral(nil); err != nil {
		t.Error("ephemeral bind failed")
	}
}

func TestScanOrdersBySignal(t *testing.T) {
	n := New()
	n.AddAP(&AccessPoint{Name: "weak", SSID: "net", Signal: 10})
	n.AddAP(&AccessPoint{Name: "strong", SSID: "net", Signal: 90})
	n.AddAP(&AccessPoint{Name: "other", SSID: "x", Signal: 50})
	scan := n.Scan()
	if scan[0].Name != "strong" || scan[1].Name != "other" || scan[2].Name != "weak" {
		t.Errorf("scan order = %s %s %s", scan[0].Name, scan[1].Name, scan[2].Name)
	}
}

func TestAssociationAndDHCP(t *testing.T) {
	n := New()
	n.Verbose = true
	n.AddAP(&AccessPoint{
		Name: "router", SSID: "home", Signal: 50,
		PoolBase: IP{192, 168, 1, 100}, Gateway: IP{192, 168, 1, 1}, DNS: IP{8, 8, 8, 8},
	})
	h, _ := n.AddHost("dev", IP{})
	st := h.Station("home")
	ap, err := st.Associate()
	if err != nil {
		t.Fatal(err)
	}
	if ap.Name != "router" {
		t.Errorf("associated to %s", ap.Name)
	}
	if h.IP != (IP{192, 168, 1, 101}) {
		t.Errorf("lease = %s", h.IP)
	}
	if h.DNS != (IP{8, 8, 8, 8}) || h.Gateway != (IP{192, 168, 1, 1}) {
		t.Errorf("config = dns %s gw %s", h.DNS, h.Gateway)
	}
	if len(n.Events) == 0 {
		t.Error("no events logged")
	}

	// Second station gets the next lease.
	h2, _ := n.AddHost("dev2", IP{})
	if _, err := h2.Station("home").Associate(); err != nil {
		t.Fatal(err)
	}
	if h2.IP != (IP{192, 168, 1, 102}) {
		t.Errorf("second lease = %s", h2.IP)
	}
}

func TestReassociationToStrongerAP(t *testing.T) {
	n := New()
	n.AddAP(&AccessPoint{
		Name: "legit", SSID: "home", Signal: 50,
		PoolBase: IP{192, 168, 1, 100}, DNS: IP{8, 8, 8, 8},
	})
	h, _ := n.AddHost("dev", IP{})
	st := h.Station("home")
	if _, err := st.Associate(); err != nil {
		t.Fatal(err)
	}
	oldIP := h.IP

	n.AddAP(&AccessPoint{
		Name: "rogue", SSID: "home", Signal: 99,
		PoolBase: IP{172, 16, 0, 100}, DNS: IP{172, 16, 0, 1},
	})
	ap, err := st.Associate()
	if err != nil {
		t.Fatal(err)
	}
	if ap.Name != "rogue" {
		t.Fatalf("stayed on %s", ap.Name)
	}
	if h.DNS != (IP{172, 16, 0, 1}) {
		t.Errorf("dns = %s, want rogue resolver", h.DNS)
	}
	// Old address released: sending to it drops.
	a, _ := n.AddHost("probe", IP{192, 168, 1, 2})
	s, _ := a.Bind(1, nil)
	s.SendTo(Addr{IP: oldIP, Port: 1}, []byte("x"))
	n.Run(4)
	if n.Dropped != 1 {
		t.Errorf("old lease still routed (dropped=%d)", n.Dropped)
	}

	// Re-associating to the same best AP is a no-op.
	ip := h.IP
	if _, err := st.Associate(); err != nil {
		t.Fatal(err)
	}
	if h.IP != ip {
		t.Error("no-op re-association changed the lease")
	}
}

func TestAssociateNoAP(t *testing.T) {
	n := New()
	h, _ := n.AddHost("dev", IP{})
	if _, err := h.Station("ghost").Associate(); err == nil {
		t.Error("associated to a non-existent SSID")
	}
}

func TestIPString(t *testing.T) {
	if (IP{1, 2, 3, 4}).String() != "1.2.3.4" {
		t.Error("IP.String broken")
	}
	if (Addr{IP: IP{1, 2, 3, 4}, Port: 53}).String() != "1.2.3.4:53" {
		t.Error("Addr.String broken")
	}
	if !(IP{}).IsZero() || (IP{1}).IsZero() {
		t.Error("IsZero broken")
	}
}
