// Package netsim simulates the network environment of the paper's remote
// experiments (Fig. 1): hosts with UDP sockets, Wi-Fi access points that
// broadcast SSIDs at a signal strength, stations that associate to the
// strongest AP carrying their preferred SSID, and DHCP configuration
// (address, gateway, DNS server) granted on association.
//
// The Wi-Fi Pineapple attack of §III-D is expressible directly: a rogue
// AP clones the trusted SSID at a stronger signal; the victim station
// re-associates; the rogue DHCP hands it a resolver the attacker runs.
//
// Delivery is deterministic. A network built with New (one shard) pumps
// a single FIFO on the calling goroutine, exactly as every recorded
// experiment expects. A network built with NewSharded(k) partitions its
// hosts across k worker-owned regions and delivers in bulk-synchronous
// epochs (see shard.go); the observable event order is byte-identical
// to the single-shard FIFO for any k, so shard count is a pure
// throughput knob, never a semantic one.
package netsim

import (
	"errors"
	"fmt"
	"sort"

	"connlab/internal/telemetry"
)

// IP is an IPv4 address.
type IP [4]byte

// String renders dotted quad.
func (ip IP) String() string {
	return fmt.Sprintf("%d.%d.%d.%d", ip[0], ip[1], ip[2], ip[3])
}

// IsZero reports the unset address.
func (ip IP) IsZero() bool { return ip == IP{} }

// Addr is an IP:port endpoint.
type Addr struct {
	IP   IP
	Port uint16
}

// String implements fmt.Stringer.
func (a Addr) String() string { return fmt.Sprintf("%s:%d", a.IP, a.Port) }

// Datagram is one UDP packet in flight.
type Datagram struct {
	Src, Dst Addr
	Payload  []byte
}

// Handler consumes a datagram delivered to a socket. It runs synchronously
// inside Network.Run, on the goroutine that owns the receiving host's
// shard.
//
// The payload-recycling contract: the payload buffer is recycled the
// moment the handler returns. Handlers that retain payload bytes —
// directly, or through aliasing decoders such as dns.View — must copy
// them first. Builds with `-tags netsimdebug` poison every recycled
// buffer with 0xAA bytes, so a handler that breaks the contract sees
// its retained alias turn to garbage instead of silently reading
// whatever datagram reused the buffer next.
//
// On a sharded network a handler may only send from sockets whose host
// lives on the same shard as the receiving host (in practice: its own
// host's sockets). Association, binds and topology changes belong
// outside Run.
type Handler func(dg Datagram)

// UDPSocket is a bound port on a host.
type UDPSocket struct {
	host    *Host
	port    uint16
	handler Handler
	queue   []Datagram
}

// SendTo queues a datagram to dst. The payload is copied into a pooled
// buffer, so the caller's slice is free for reuse immediately.
func (s *UDPSocket) SendTo(dst Addr, payload []byte) {
	n := s.host.net
	src := Addr{IP: s.host.IP, Port: s.port}
	if n.inEpoch {
		sh := n.shards[s.host.shard]
		p := append(sh.getBuf(len(payload)), payload...)
		sh.emit(Datagram{Src: src, Dst: dst, Payload: p})
		return
	}
	p := append(n.shards[0].getBuf(len(payload)), payload...)
	n.enqueue(Datagram{Src: src, Dst: dst, Payload: p}, -1)
}

// Recv pops one queued datagram for sockets without a handler.
func (s *UDPSocket) Recv() (Datagram, bool) {
	if len(s.queue) == 0 {
		return Datagram{}, false
	}
	dg := s.queue[0]
	s.queue = s.queue[1:]
	return dg, true
}

// Host is one simulated machine.
type Host struct {
	Name string
	net  *Network

	// IP is the host address (static or DHCP-assigned).
	IP IP
	// Gateway and DNS come from DHCP (or static configuration).
	Gateway IP
	DNS     IP

	sockets map[uint16]*UDPSocket
	station *Station

	// shard is the worker-owned region this host belongs to (always 0
	// on single-shard networks), fixed at AddHost time.
	shard int
	// ephemeral is the next-port cursor for BindEphemeral: instead of
	// re-probing from the bottom of the range on every bind (O(n²) over
	// n sockets), each bind starts where the previous one left off.
	ephemeral uint16
}

// Bind opens a UDP socket on port with an optional handler.
func (h *Host) Bind(port uint16, handler Handler) (*UDPSocket, error) {
	if _, exists := h.sockets[port]; exists {
		return nil, fmt.Errorf("netsim: %s: port %d already bound", h.Name, port)
	}
	s := &UDPSocket{host: h, port: port, handler: handler}
	h.sockets[port] = s
	return s, nil
}

// Ephemeral port range handed out by BindEphemeral.
const (
	ephemeralLo = 40000
	ephemeralHi = 50000
)

// BindEphemeral opens a socket on a free high port. Ports are assigned
// from a per-host cursor over [40000, 50000): a fresh host gets 40000,
// the next bind 40001, and so on, wrapping and skipping explicitly
// bound ports. Binding k sockets costs O(k), not O(k²).
func (h *Host) BindEphemeral(handler Handler) (*UDPSocket, error) {
	if h.ephemeral < ephemeralLo || h.ephemeral >= ephemeralHi {
		h.ephemeral = ephemeralLo
	}
	for tries := 0; tries < ephemeralHi-ephemeralLo; tries++ {
		port := h.ephemeral
		h.ephemeral++
		if h.ephemeral >= ephemeralHi {
			h.ephemeral = ephemeralLo
		}
		if _, taken := h.sockets[port]; taken {
			continue
		}
		return h.Bind(port, handler)
	}
	return nil, fmt.Errorf("netsim: %s: ephemeral ports exhausted", h.Name)
}

// Station returns the host's Wi-Fi station, creating it on first use.
func (h *Host) Station(preferredSSID string) *Station {
	if h.station == nil {
		h.station = &Station{host: h, Preferred: preferredSSID}
	} else {
		h.station.Preferred = preferredSSID
	}
	return h.station
}

// AccessPoint is a Wi-Fi AP: an SSID broadcast at a signal strength, plus
// the DHCP configuration it grants on association.
type AccessPoint struct {
	Name   string
	SSID   string
	Signal int // arbitrary units; stations pick the strongest

	// DHCP configuration handed to clients.
	PoolBase IP // first assignable address
	Gateway  IP
	DNS      IP

	nextLease uint32
	clients   map[*Station]bool
}

// Station is a Wi-Fi client interface.
type Station struct {
	host      *Host
	Preferred string
	AP        *AccessPoint
}

// qitem is one queued datagram plus the shard that sent it (-1 when the
// send happened outside an epoch), which is all the cross-shard
// accounting needs: delivery order is the queue position itself.
type qitem struct {
	dg  Datagram
	src int
}

// Network is the simulated world.
type Network struct {
	hosts   map[string]*Host
	aps     []*AccessPoint
	byIP    map[IP]*Host
	hostSeq int

	// pending is the delivery queue; head indexes the next undelivered
	// item so popping never reslices-and-reallocs the way queue[1:] +
	// append churn did.
	pending []qitem
	head    int

	shards  []*shard
	inEpoch bool
	epochs  int

	// Delivered counts datagrams handed to sockets, for reporting.
	Delivered int
	// Dropped counts undeliverable datagrams.
	Dropped int
	// Log collects human-readable events when Verbose is set.
	Verbose bool
	Events  []string

	// evSlots is the rank-indexed event staging area for parallel
	// epochs: each delivery writes its line into its own slot, the
	// barrier appends them in rank order, and the transcript comes out
	// byte-identical to the sequential pump.
	evSlots []string

	// tel is the network's telemetry shard (nil while disabled), taken at
	// construction like every instrumented component.
	tel *telemetry.Shard

	// attempt tags this world's epoch spans with the campaign attempt ID
	// that drove it (the per-device splitmix64 seed; zero for shared or
	// standalone worlds), correlating netsim lanes with campaign stage
	// spans in the exported trace.
	attempt uint64
}

// New returns an empty single-shard network: the exact deterministic
// FIFO every recorded experiment was captured against.
func New() *Network { return NewSharded(1) }

// NewSharded returns an empty network whose hosts are partitioned
// across nShards worker-owned regions (clamped to at least 1). Run
// pumps the shards in parallel epochs; the observable event order is
// identical to New() regardless of nShards.
func NewSharded(nShards int) *Network {
	if nShards < 1 {
		nShards = 1
	}
	n := &Network{
		hosts:  make(map[string]*Host),
		byIP:   make(map[IP]*Host),
		shards: make([]*shard, nShards),
		tel:    telemetry.Handle(),
	}
	for i := range n.shards {
		n.shards[i] = &shard{id: i}
	}
	return n
}

// Shards reports the shard count the network was built with.
func (n *Network) Shards() int { return len(n.shards) }

// SetAttempt tags subsequent epoch spans with the campaign attempt ID
// (the per-device splitmix64 seed) so netsim trace lanes correlate with
// the campaign stage spans of the attempt that drove the traffic.
func (n *Network) SetAttempt(id uint64) { n.attempt = id }

// Epochs reports how many delivery generations Run has completed. The
// count depends only on the traffic pattern — one epoch per BFS
// generation of the datagram lineage tree — never on the shard count.
func (n *Network) Epochs() int { return n.epochs }

func (n *Network) logf(format string, args ...any) {
	if n.Verbose {
		n.Events = append(n.Events, fmt.Sprintf(format, args...))
	}
}

// AddHost creates a host; ip may be zero for DHCP-configured hosts.
// Hosts are assigned to shards round-robin in creation order, so the
// partition is a pure function of the build sequence.
func (n *Network) AddHost(name string, ip IP) (*Host, error) {
	if _, dup := n.hosts[name]; dup {
		return nil, fmt.Errorf("netsim: duplicate host %q", name)
	}
	h := &Host{
		Name:    name,
		net:     n,
		IP:      ip,
		sockets: make(map[uint16]*UDPSocket),
		shard:   n.hostSeq % len(n.shards),
	}
	n.hostSeq++
	n.hosts[name] = h
	if !ip.IsZero() {
		if _, taken := n.byIP[ip]; taken {
			return nil, fmt.Errorf("netsim: address %s already in use", ip)
		}
		n.byIP[ip] = h
	}
	return h, nil
}

// Host returns a host by name, or nil.
func (n *Network) Host(name string) *Host { return n.hosts[name] }

// AddAP registers an access point.
func (n *Network) AddAP(ap *AccessPoint) *AccessPoint {
	ap.clients = make(map[*Station]bool)
	n.aps = append(n.aps, ap)
	return ap
}

// Scan lists visible APs sorted by descending signal (ties by name for
// determinism).
func (n *Network) Scan() []*AccessPoint {
	out := make([]*AccessPoint, len(n.aps))
	copy(out, n.aps)
	sort.Slice(out, func(i, j int) bool {
		if out[i].Signal != out[j].Signal {
			return out[i].Signal > out[j].Signal
		}
		return out[i].Name < out[j].Name
	})
	return out
}

// ErrNoAP is returned when no AP broadcasts the preferred SSID.
var ErrNoAP = errors.New("netsim: no access point with preferred SSID in range")

// Associate performs the station's scan-and-join: it picks the
// strongest-signal AP broadcasting its preferred SSID (the physical-layer
// behaviour the Pineapple abuses: "The Wi-Fi Pineapple is able to
// broadcast a stronger signal than the legitimate access point, causing
// our targeted machine to switch its connection") and then runs the DHCP
// exchange, reconfiguring the host's address, gateway and DNS.
func (s *Station) Associate() (*AccessPoint, error) {
	var best *AccessPoint
	for _, ap := range s.host.net.Scan() {
		if ap.SSID == s.Preferred {
			best = ap
			break
		}
	}
	if best == nil {
		return nil, ErrNoAP
	}
	if s.AP == best {
		return best, nil
	}
	if s.AP != nil {
		delete(s.AP.clients, s)
	}
	s.AP = best
	best.clients[s] = true
	s.host.net.logf("%s associated to %q (ap %s, signal %d)",
		s.host.Name, best.SSID, best.Name, best.Signal)

	// DHCP: DISCOVER/OFFER/REQUEST/ACK collapsed into the lease grant.
	// The lease counter carries across the last three octets so one AP
	// can serve far more than the 255 clients a single octet holds; for
	// pools that never overflow octet 3 the addresses are identical to
	// the historical single-octet arithmetic.
	old := s.host.IP
	best.nextLease++
	lease := best.PoolBase
	v := uint32(lease[1])<<16 | uint32(lease[2])<<8 | uint32(lease[3])
	v += best.nextLease
	lease[1], lease[2], lease[3] = byte(v>>16), byte(v>>8), byte(v)
	if !old.IsZero() {
		delete(s.host.net.byIP, old)
	}
	if _, taken := s.host.net.byIP[lease]; taken {
		return nil, fmt.Errorf("netsim: dhcp pool collision at %s", lease)
	}
	s.host.IP = lease
	s.host.Gateway = best.Gateway
	s.host.DNS = best.DNS
	s.host.net.byIP[lease] = s.host
	s.host.net.logf("%s dhcp lease %s gw %s dns %s", s.host.Name, lease, best.Gateway, best.DNS)
	return best, nil
}

// enqueue appends to the delivery queue, sampling the depth it grew to.
func (n *Network) enqueue(dg Datagram, src int) {
	n.pending = append(n.pending, qitem{dg: dg, src: src})
	if n.tel != nil {
		n.tel.Inc(telemetry.CtrNetEnqueued)
		n.tel.Observe(telemetry.HistNetQueueDepth, uint64(len(n.pending)-n.head))
	}
}

// Step delivers one queued datagram on the calling goroutine, in exact
// legacy FIFO order. It reports false when the queue is empty.
func (n *Network) Step() bool {
	if n.head >= len(n.pending) {
		return false
	}
	it := n.pending[n.head]
	n.pending[n.head] = qitem{}
	n.head++
	if n.head == len(n.pending) {
		n.pending = n.pending[:0]
		n.head = 0
	}
	n.deliverSeq(it.dg)
	return true
}

// deliverSeq routes one datagram sequentially: byIP, then the port map,
// then the handler, recycling the payload when the handler returns.
func (n *Network) deliverSeq(dg Datagram) {
	host, ok := n.byIP[dg.Dst.IP]
	if !ok {
		n.Dropped++
		if n.tel != nil {
			n.tel.Inc(telemetry.CtrNetDropped)
		}
		if n.Verbose {
			n.Events = append(n.Events, dropEvent(dg, "no route"))
		}
		n.shards[0].putBuf(dg.Payload)
		return
	}
	sock, ok := host.sockets[dg.Dst.Port]
	if !ok {
		n.Dropped++
		if n.tel != nil {
			n.tel.Inc(telemetry.CtrNetDropped)
		}
		if n.Verbose {
			n.Events = append(n.Events, dropEvent(dg, "port closed"))
		}
		n.shards[0].putBuf(dg.Payload)
		return
	}
	n.Delivered++
	if n.tel != nil {
		n.tel.Inc(telemetry.CtrNetDelivered)
	}
	if n.Verbose {
		n.Events = append(n.Events, deliverEvent(dg))
	}
	if sock.handler != nil {
		sock.handler(dg)
		// The handler contract says payloads do not outlive the call.
		n.shards[0].putBuf(dg.Payload)
	} else {
		// Handler-less sockets retain the datagram until Recv; those
		// buffers stay owned by the receiver and are never recycled.
		sock.queue = append(sock.queue, dg)
	}
}

// Run pumps the queue until empty or maxSteps deliveries. Multi-shard
// networks deliver whole generations in parallel epochs (shard.go);
// single-shard networks pump sequentially. Either way the event order,
// counters and queue-depth samples are identical.
func (n *Network) Run(maxSteps int) int {
	if len(n.shards) == 1 {
		return n.runSeq(maxSteps)
	}
	return n.runEpochs(maxSteps)
}

// runSeq is the single-shard pump: the legacy FIFO loop plus epoch
// accounting at each BFS generation boundary, so Epochs() and the
// epoch-batch histogram agree with the parallel engine sample for
// sample.
func (n *Network) runSeq(maxSteps int) int {
	steps := 0
	gen := n.Pending()
	genSize := gen
	spanOn := telemetry.Enabled()
	var s0 int64
	if spanOn {
		s0 = telemetry.SpanNow()
	}
	for steps < maxSteps && n.Step() {
		steps++
		gen--
		if gen == 0 {
			if spanOn {
				now := telemetry.SpanNow()
				telemetry.RecordSpan(telemetry.Span{
					Track: telemetry.TrackNetsim, Scenario: "netsim", Stage: "epoch",
					Worker: 0, Attempt: n.attempt,
					Start: s0, Dur: now - s0, Instr: uint64(genSize),
				})
				s0 = now
			}
			n.noteEpoch(genSize)
			gen = n.Pending()
			genSize = gen
		}
	}
	return steps
}

// noteEpoch records one completed delivery generation of the given
// batch size.
func (n *Network) noteEpoch(batch int) {
	n.epochs++
	if n.tel != nil {
		n.tel.Inc(telemetry.CtrNetEpochs)
		n.tel.Observe(telemetry.HistNetEpochBatch, uint64(batch))
	}
}

// Pending returns the number of queued datagrams.
func (n *Network) Pending() int { return len(n.pending) - n.head }
