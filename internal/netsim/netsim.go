// Package netsim simulates the network environment of the paper's remote
// experiments (Fig. 1): hosts with UDP sockets, Wi-Fi access points that
// broadcast SSIDs at a signal strength, stations that associate to the
// strongest AP carrying their preferred SSID, and DHCP configuration
// (address, gateway, DNS server) granted on association.
//
// The Wi-Fi Pineapple attack of §III-D is expressible directly: a rogue
// AP clones the trusted SSID at a stronger signal; the victim station
// re-associates; the rogue DHCP hands it a resolver the attacker runs.
//
// Delivery is a deterministic FIFO event loop — no goroutines, no real
// sockets — so experiments and tests are exactly reproducible.
package netsim

import (
	"errors"
	"fmt"
	"sort"

	"connlab/internal/telemetry"
)

// IP is an IPv4 address.
type IP [4]byte

// String renders dotted quad.
func (ip IP) String() string {
	return fmt.Sprintf("%d.%d.%d.%d", ip[0], ip[1], ip[2], ip[3])
}

// IsZero reports the unset address.
func (ip IP) IsZero() bool { return ip == IP{} }

// Addr is an IP:port endpoint.
type Addr struct {
	IP   IP
	Port uint16
}

// String implements fmt.Stringer.
func (a Addr) String() string { return fmt.Sprintf("%s:%d", a.IP, a.Port) }

// Datagram is one UDP packet in flight.
type Datagram struct {
	Src, Dst Addr
	Payload  []byte
}

// Handler consumes a datagram delivered to a socket. It runs synchronously
// inside Network.Run. The payload buffer is recycled when the handler
// returns: handlers that retain payload bytes (directly or through
// aliasing decoders) must copy them first.
type Handler func(dg Datagram)

// UDPSocket is a bound port on a host.
type UDPSocket struct {
	host    *Host
	port    uint16
	handler Handler
	queue   []Datagram
}

// SendTo queues a datagram to dst. The payload is copied into a pooled
// buffer, so the caller's slice is free for reuse immediately.
func (s *UDPSocket) SendTo(dst Addr, payload []byte) {
	p := append(s.host.net.getBuf(len(payload)), payload...)
	s.host.net.enqueue(Datagram{
		Src:     Addr{IP: s.host.IP, Port: s.port},
		Dst:     dst,
		Payload: p,
	})
}

// Recv pops one queued datagram for sockets without a handler.
func (s *UDPSocket) Recv() (Datagram, bool) {
	if len(s.queue) == 0 {
		return Datagram{}, false
	}
	dg := s.queue[0]
	s.queue = s.queue[1:]
	return dg, true
}

// Host is one simulated machine.
type Host struct {
	Name string
	net  *Network

	// IP is the host address (static or DHCP-assigned).
	IP IP
	// Gateway and DNS come from DHCP (or static configuration).
	Gateway IP
	DNS     IP

	sockets map[uint16]*UDPSocket
	station *Station
}

// Bind opens a UDP socket on port with an optional handler.
func (h *Host) Bind(port uint16, handler Handler) (*UDPSocket, error) {
	if _, exists := h.sockets[port]; exists {
		return nil, fmt.Errorf("netsim: %s: port %d already bound", h.Name, port)
	}
	s := &UDPSocket{host: h, port: port, handler: handler}
	h.sockets[port] = s
	return s, nil
}

// BindEphemeral opens a socket on a free high port.
func (h *Host) BindEphemeral(handler Handler) (*UDPSocket, error) {
	for port := uint16(40000); port < 41000; port++ {
		if _, taken := h.sockets[port]; taken {
			continue
		}
		return h.Bind(port, handler)
	}
	return nil, fmt.Errorf("netsim: %s: ephemeral ports exhausted", h.Name)
}

// Station returns the host's Wi-Fi station, creating it on first use.
func (h *Host) Station(preferredSSID string) *Station {
	if h.station == nil {
		h.station = &Station{host: h, Preferred: preferredSSID}
	} else {
		h.station.Preferred = preferredSSID
	}
	return h.station
}

// AccessPoint is a Wi-Fi AP: an SSID broadcast at a signal strength, plus
// the DHCP configuration it grants on association.
type AccessPoint struct {
	Name   string
	SSID   string
	Signal int // arbitrary units; stations pick the strongest

	// DHCP configuration handed to clients.
	PoolBase IP // first assignable address
	Gateway  IP
	DNS      IP

	nextLease uint8
	clients   map[*Station]bool
}

// Station is a Wi-Fi client interface.
type Station struct {
	host      *Host
	Preferred string
	AP        *AccessPoint
}

// Network is the simulated world.
type Network struct {
	hosts map[string]*Host
	aps   []*AccessPoint
	byIP  map[IP]*Host
	queue []Datagram
	// free holds recycled payload buffers: a datagram's buffer returns
	// here once it is dropped or its handler finishes.
	free [][]byte

	// Delivered counts datagrams handed to sockets, for reporting.
	Delivered int
	// Dropped counts undeliverable datagrams.
	Dropped int
	// Log collects human-readable events when Verbose is set.
	Verbose bool
	Events  []string

	// tel is the network's telemetry shard (nil while disabled), taken at
	// construction like every instrumented component.
	tel *telemetry.Shard
}

// New returns an empty network.
func New() *Network {
	return &Network{
		hosts: make(map[string]*Host),
		byIP:  make(map[IP]*Host),
		tel:   telemetry.Handle(),
	}
}

func (n *Network) logf(format string, args ...any) {
	if n.Verbose {
		n.Events = append(n.Events, fmt.Sprintf(format, args...))
	}
}

// AddHost creates a host; ip may be zero for DHCP-configured hosts.
func (n *Network) AddHost(name string, ip IP) (*Host, error) {
	if _, dup := n.hosts[name]; dup {
		return nil, fmt.Errorf("netsim: duplicate host %q", name)
	}
	h := &Host{Name: name, net: n, IP: ip, sockets: make(map[uint16]*UDPSocket)}
	n.hosts[name] = h
	if !ip.IsZero() {
		if _, taken := n.byIP[ip]; taken {
			return nil, fmt.Errorf("netsim: address %s already in use", ip)
		}
		n.byIP[ip] = h
	}
	return h, nil
}

// Host returns a host by name, or nil.
func (n *Network) Host(name string) *Host { return n.hosts[name] }

// AddAP registers an access point.
func (n *Network) AddAP(ap *AccessPoint) *AccessPoint {
	ap.clients = make(map[*Station]bool)
	n.aps = append(n.aps, ap)
	return ap
}

// Scan lists visible APs sorted by descending signal (ties by name for
// determinism).
func (n *Network) Scan() []*AccessPoint {
	out := make([]*AccessPoint, len(n.aps))
	copy(out, n.aps)
	sort.Slice(out, func(i, j int) bool {
		if out[i].Signal != out[j].Signal {
			return out[i].Signal > out[j].Signal
		}
		return out[i].Name < out[j].Name
	})
	return out
}

// ErrNoAP is returned when no AP broadcasts the preferred SSID.
var ErrNoAP = errors.New("netsim: no access point with preferred SSID in range")

// Associate performs the station's scan-and-join: it picks the
// strongest-signal AP broadcasting its preferred SSID (the physical-layer
// behaviour the Pineapple abuses: "The Wi-Fi Pineapple is able to
// broadcast a stronger signal than the legitimate access point, causing
// our targeted machine to switch its connection") and then runs the DHCP
// exchange, reconfiguring the host's address, gateway and DNS.
func (s *Station) Associate() (*AccessPoint, error) {
	var best *AccessPoint
	for _, ap := range s.host.net.Scan() {
		if ap.SSID == s.Preferred {
			best = ap
			break
		}
	}
	if best == nil {
		return nil, ErrNoAP
	}
	if s.AP == best {
		return best, nil
	}
	if s.AP != nil {
		delete(s.AP.clients, s)
	}
	s.AP = best
	best.clients[s] = true
	s.host.net.logf("%s associated to %q (ap %s, signal %d)",
		s.host.Name, best.SSID, best.Name, best.Signal)

	// DHCP: DISCOVER/OFFER/REQUEST/ACK collapsed into the lease grant.
	old := s.host.IP
	lease := best.PoolBase
	best.nextLease++
	lease[3] += best.nextLease
	if !old.IsZero() {
		delete(s.host.net.byIP, old)
	}
	if _, taken := s.host.net.byIP[lease]; taken {
		return nil, fmt.Errorf("netsim: dhcp pool collision at %s", lease)
	}
	s.host.IP = lease
	s.host.Gateway = best.Gateway
	s.host.DNS = best.DNS
	s.host.net.byIP[lease] = s.host
	s.host.net.logf("%s dhcp lease %s gw %s dns %s", s.host.Name, lease, best.Gateway, best.DNS)
	return best, nil
}

// enqueue appends to the delivery queue, sampling the depth it grew to.
func (n *Network) enqueue(dg Datagram) {
	n.queue = append(n.queue, dg)
	if n.tel != nil {
		n.tel.Inc(telemetry.CtrNetEnqueued)
		n.tel.Observe(telemetry.HistNetQueueDepth, uint64(len(n.queue)))
	}
}

// getBuf pops a recycled payload buffer with at least the given
// capacity, or returns a fresh one.
func (n *Network) getBuf(size int) []byte {
	for i := len(n.free) - 1; i >= 0; i-- {
		if b := n.free[i]; cap(b) >= size {
			n.free[i] = n.free[len(n.free)-1]
			n.free = n.free[:len(n.free)-1]
			return b[:0]
		}
	}
	return make([]byte, 0, size)
}

// putBuf recycles a payload buffer (bounded so a burst of giants does
// not pin memory forever).
func (n *Network) putBuf(b []byte) {
	if cap(b) == 0 || len(n.free) >= 64 {
		return
	}
	n.free = append(n.free, b[:0])
}

// Step delivers one queued datagram. It reports false when the queue is
// empty.
func (n *Network) Step() bool {
	if len(n.queue) == 0 {
		return false
	}
	dg := n.queue[0]
	n.queue = n.queue[1:]
	host, ok := n.byIP[dg.Dst.IP]
	if !ok {
		n.Dropped++
		if n.tel != nil {
			n.tel.Inc(telemetry.CtrNetDropped)
		}
		n.logf("drop %s -> %s (%d bytes): no route", dg.Src, dg.Dst, len(dg.Payload))
		n.putBuf(dg.Payload)
		return true
	}
	sock, ok := host.sockets[dg.Dst.Port]
	if !ok {
		n.Dropped++
		if n.tel != nil {
			n.tel.Inc(telemetry.CtrNetDropped)
		}
		n.logf("drop %s -> %s (%d bytes): port closed", dg.Src, dg.Dst, len(dg.Payload))
		n.putBuf(dg.Payload)
		return true
	}
	n.Delivered++
	if n.tel != nil {
		n.tel.Inc(telemetry.CtrNetDelivered)
	}
	n.logf("deliver %s -> %s (%d bytes)", dg.Src, dg.Dst, len(dg.Payload))
	if sock.handler != nil {
		sock.handler(dg)
		// The handler contract says payloads do not outlive the call.
		n.putBuf(dg.Payload)
	} else {
		// Handler-less sockets retain the datagram until Recv; those
		// buffers stay owned by the receiver and are never recycled.
		sock.queue = append(sock.queue, dg)
	}
	return true
}

// Run pumps the queue until empty or maxSteps deliveries.
func (n *Network) Run(maxSteps int) int {
	steps := 0
	for steps < maxSteps && n.Step() {
		steps++
	}
	return steps
}

// Pending returns the number of queued datagrams.
func (n *Network) Pending() int { return len(n.queue) }
