// Epoch-sharded delivery: the multi-shard pump behind Network.Run.
//
// The single-FIFO pump delivers datagrams in BFS order over the send
// lineage: the queue's initial contents are generation 0, and the
// children enqueued while delivering generation g — appended at the
// tail — form generation g+1, ordered by (parent rank, send order
// within the handler call). That order is a pure function of the
// lineage, so it can be reproduced without a global queue: deliver one
// whole generation per epoch, each shard handling the items addressed
// to its own hosts, and have the barrier splice the per-shard child
// outboxes back together sorted by parent rank. Every rank belongs to
// exactly one shard, so the splice is an allocation-free k-way merge
// with no ties, and the resulting queue — and therefore the transcript,
// the counters, and even the queue-depth histogram samples, which the
// barrier reconstructs from ranks — is byte-identical to the
// single-shard run at any shard count.
package netsim

import (
	"sync"

	"connlab/internal/telemetry"
)

// task is one delivery assigned to a shard for the current epoch: the
// datagram, its global rank within the generation, and the destination
// host (resolved by the coordinator so shards never read shared maps).
type task struct {
	rank int
	host *Host
	dg   Datagram
}

// child is one datagram sent by a handler during an epoch, tagged with
// the rank of the delivery that produced it. Per-shard outboxes are
// naturally sorted by parentRank because each shard pumps its inbox in
// rank order.
type child struct {
	parentRank int
	dg         Datagram
}

// shard is one worker-owned region: a partition of hosts, the epoch
// inbox/outbox, a private buffer pool, and local counters the barrier
// folds into the network totals.
type shard struct {
	id      int
	inbox   []task
	outbox  []child
	free    [][]byte
	curRank int

	delivered int
	dropped   int
}

// emit records a datagram sent by a handler running on this shard
// during the current epoch.
func (sh *shard) emit(dg Datagram) {
	sh.outbox = append(sh.outbox, child{parentRank: sh.curRank, dg: dg})
}

// getBuf pops a recycled payload buffer with at least the given
// capacity from the shard-local pool, or returns a fresh one.
func (sh *shard) getBuf(size int) []byte {
	for i := len(sh.free) - 1; i >= 0; i-- {
		if b := sh.free[i]; cap(b) >= size {
			sh.free[i] = sh.free[len(sh.free)-1]
			sh.free = sh.free[:len(sh.free)-1]
			return b[:0]
		}
	}
	return make([]byte, 0, size)
}

// putBuf recycles a payload buffer (bounded so a burst of giants does
// not pin memory forever). Under -tags netsimdebug the buffer is
// poisoned first, so handler code that retained an alias reads 0xAA
// instead of the next datagram that reuses the backing array.
func (sh *shard) putBuf(b []byte) {
	poisonBuf(b)
	if cap(b) == 0 || len(sh.free) >= 64 {
		return
	}
	sh.free = append(sh.free, b[:0])
}

// pump delivers this shard's epoch inbox in rank order. It runs on the
// shard's own goroutine; everything it touches — its hosts' socket
// maps, its outbox, its pool, the rank-indexed event slots — is either
// owned by the shard or written at disjoint indexes.
func (sh *shard) pump(n *Network) {
	for _, t := range sh.inbox {
		sh.curRank = t.rank
		dg := t.dg
		sock, ok := t.host.sockets[dg.Dst.Port]
		if !ok {
			sh.dropped++
			if n.Verbose {
				n.evSlots[t.rank] = dropEvent(dg, "port closed")
			}
			sh.putBuf(dg.Payload)
			continue
		}
		sh.delivered++
		if n.Verbose {
			n.evSlots[t.rank] = deliverEvent(dg)
		}
		if sock.handler != nil {
			sock.handler(dg)
			sh.putBuf(dg.Payload)
		} else {
			sock.queue = append(sock.queue, dg)
		}
	}
}

// runEpochs is the multi-shard pump: one BSP epoch per BFS generation.
// If the step budget cannot cover a whole generation the remainder runs
// through the sequential pump, which delivers the same prefix the
// single-shard network would.
func (n *Network) runEpochs(maxSteps int) int {
	steps := 0
	for steps < maxSteps {
		m := n.Pending()
		if m == 0 {
			break
		}
		if m > maxSteps-steps {
			steps += n.runSeq(maxSteps - steps)
			break
		}
		n.runOneEpoch(m)
		steps += m
	}
	return steps
}

// runOneEpoch delivers one whole generation of m datagrams across the
// shards and splices the next generation together at the barrier.
func (n *Network) runOneEpoch(m int) {
	batch := n.pending[n.head : n.head+m]

	var crossShard, stalls, noRoute int
	if n.Verbose {
		if cap(n.evSlots) < m {
			n.evSlots = make([]string, m)
		}
		n.evSlots = n.evSlots[:m]
		for i := range n.evSlots {
			n.evSlots[i] = ""
		}
	}

	// Partition: resolve each destination host here, on the
	// coordinator, so shard goroutines never read the shared byIP map.
	// Unroutable datagrams drop immediately at their rank.
	for r := range batch {
		it := &batch[r]
		host, ok := n.byIP[it.dg.Dst.IP]
		if !ok {
			n.Dropped++
			noRoute++
			if n.Verbose {
				n.evSlots[r] = dropEvent(it.dg, "no route")
			}
			n.shards[0].putBuf(it.dg.Payload)
			it.dg = Datagram{}
			continue
		}
		sh := n.shards[host.shard]
		if it.src >= 0 && it.src != host.shard {
			crossShard++
		}
		sh.inbox = append(sh.inbox, task{rank: r, host: host, dg: it.dg})
		it.dg = Datagram{}
	}
	n.head += m
	if n.head == len(n.pending) {
		n.pending = n.pending[:0]
		n.head = 0
	}

	// Pump every shard that has work; idle shards are the epoch's
	// stalls — load-imbalance time the barrier cannot hide. With
	// telemetry on, each pump is timed into a netsim-track span (one
	// trace lane per shard), recorded before the barrier releases so a
	// snapshot taken after Run sees every epoch.
	spanOn := telemetry.Enabled()
	var wg sync.WaitGroup
	n.inEpoch = true
	for _, sh := range n.shards {
		if len(sh.inbox) == 0 {
			stalls++
			continue
		}
		wg.Add(1)
		go func(sh *shard) {
			defer wg.Done()
			var s0 int64
			if spanOn {
				s0 = telemetry.SpanNow()
			}
			sh.pump(n)
			if spanOn {
				telemetry.RecordSpan(telemetry.Span{
					Track: telemetry.TrackNetsim, Scenario: "netsim", Stage: "epoch",
					Worker: sh.id, Attempt: n.attempt,
					Start: s0, Dur: telemetry.SpanNow() - s0, Instr: uint64(len(sh.inbox)),
				})
			}
		}(sh)
	}
	wg.Wait()
	n.inEpoch = false

	// Barrier: fold shard counters into the network totals, append the
	// staged events in rank order, and merge the child outboxes into
	// the next generation sorted by parent rank. The merge also
	// reconstructs the queue-depth sample each child would have
	// produced in the sequential pump: when parent rank r enqueues the
	// generation's j-th child, the legacy queue holds the m-r-1
	// not-yet-delivered parents plus j+1 children — depth m-r+j.
	delivered, dropped := 0, noRoute
	for _, sh := range n.shards {
		delivered += sh.delivered
		dropped += sh.dropped
		n.Delivered += sh.delivered
		n.Dropped += sh.dropped
		sh.delivered, sh.dropped = 0, 0
		sh.inbox = sh.inbox[:0]
	}
	if n.Verbose {
		n.Events = append(n.Events, n.evSlots...)
	}

	heads := make([]int, len(n.shards))
	enqueued := 0
	for j := 0; ; j++ {
		best := -1
		for i, sh := range n.shards {
			if heads[i] >= len(sh.outbox) {
				continue
			}
			if best < 0 || sh.outbox[heads[i]].parentRank < n.shards[best].outbox[heads[best]].parentRank {
				best = i
			}
		}
		if best < 0 {
			break
		}
		c := n.shards[best].outbox[heads[best]]
		heads[best]++
		n.pending = append(n.pending, qitem{dg: c.dg, src: best})
		enqueued++
		if n.tel != nil {
			n.tel.Observe(telemetry.HistNetQueueDepth, uint64(m-c.parentRank+j))
		}
	}
	for _, sh := range n.shards {
		sh.outbox = sh.outbox[:0]
	}

	if n.tel != nil {
		n.tel.Add(telemetry.CtrNetEnqueued, uint64(enqueued))
		n.tel.Add(telemetry.CtrNetDelivered, uint64(delivered))
		n.tel.Add(telemetry.CtrNetDropped, uint64(dropped))
		n.tel.Add(telemetry.CtrNetCrossShard, uint64(crossShard))
		n.tel.Add(telemetry.CtrNetEpochStalls, uint64(stalls))
	}
	n.noteEpoch(m)
}

// deliverEvent and dropEvent format the transcript lines shared by the
// sequential and sharded pumps.
func deliverEvent(dg Datagram) string {
	return "deliver " + dg.Src.String() + " -> " + dg.Dst.String() + " (" + itoa(len(dg.Payload)) + " bytes)"
}

func dropEvent(dg Datagram, why string) string {
	return "drop " + dg.Src.String() + " -> " + dg.Dst.String() + " (" + itoa(len(dg.Payload)) + " bytes): " + why
}

// itoa is a tiny strconv.Itoa for the event formatters (non-negative
// operands only), keeping them free of fmt's interface boxing.
func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	var buf [20]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	return string(buf[i:])
}
