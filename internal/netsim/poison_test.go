//go:build netsimdebug

package netsim

import (
	"bytes"
	"testing"
)

// TestPoisonCatchesRetainedAlias: a handler that breaks the
// payload-recycling contract by keeping an alias to the delivered
// buffer sees PoisonByte fill once the handler returns, instead of
// silently reading whichever datagram reuses the backing array next.
func TestPoisonCatchesRetainedAlias(t *testing.T) {
	n := New()
	a, _ := n.AddHost("a", IP{10, 0, 0, 1})
	b, _ := n.AddHost("b", IP{10, 0, 0, 2})

	var retained []byte
	if _, err := b.Bind(7, func(dg Datagram) {
		retained = dg.Payload // contract violation under test
	}); err != nil {
		t.Fatal(err)
	}
	src, err := a.Bind(9, nil)
	if err != nil {
		t.Fatal(err)
	}
	src.SendTo(Addr{IP: IP{10, 0, 0, 2}, Port: 7}, []byte("secret"))
	n.Run(10)

	if retained == nil {
		t.Fatal("handler never ran")
	}
	want := bytes.Repeat([]byte{PoisonByte}, len(retained))
	if !bytes.Equal(retained, want) {
		t.Fatalf("retained alias survived recycling: %q", retained)
	}
	// A well-behaved handler's copy is of course untouched.
	if string(want) == "secret" {
		t.Fatal("impossible")
	}
}

// TestPoisonSharded: the shard-local pools poison too.
func TestPoisonSharded(t *testing.T) {
	n := NewSharded(4)
	a, _ := n.AddHost("a", IP{10, 0, 0, 1})
	b, _ := n.AddHost("b", IP{10, 0, 0, 2})
	var retained []byte
	if _, err := b.Bind(7, func(dg Datagram) {
		retained = dg.Payload
	}); err != nil {
		t.Fatal(err)
	}
	src, _ := a.Bind(9, nil)
	src.SendTo(Addr{IP: IP{10, 0, 0, 2}, Port: 7}, []byte("xyzzy"))
	n.Run(10)
	for i, c := range retained {
		if c != PoisonByte {
			t.Fatalf("byte %d = %#x, want poison", i, c)
		}
	}
}
