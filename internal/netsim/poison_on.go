//go:build netsimdebug

package netsim

// PoisonByte fills recycled payload buffers in netsimdebug builds.
const PoisonByte = 0xAA

// poisonBuf overwrites a recycled payload buffer with PoisonByte up to
// its full capacity. The Handler contract says payload bytes do not
// outlive the handler call; a handler that retains an alias (directly
// or through a lazy decoder) reads poison in these builds instead of
// whichever datagram recycles the backing array next — turning a silent
// cross-talk bug into a deterministic test failure.
func poisonBuf(b []byte) {
	b = b[:cap(b)]
	for i := range b {
		b[i] = PoisonByte
	}
}
