package netsim

import (
	"fmt"
	"testing"
)

// TestBindEphemeralMany: the per-host cursor hands out >1000 ephemeral
// ports in O(1) each, skipping explicitly bound ports, and the first
// port on a fresh host stays 40000 (recorded transcripts pin it).
func TestBindEphemeralMany(t *testing.T) {
	n := New()
	h, err := n.AddHost("h", IP{10, 0, 0, 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := h.Bind(40002, nil); err != nil {
		t.Fatal(err)
	}
	want := []uint16{40000, 40001, 40003, 40004}
	for i, w := range want {
		s, err := h.BindEphemeral(nil)
		if err != nil {
			t.Fatal(err)
		}
		if s.port != w {
			t.Fatalf("bind %d: port %d, want %d", i, s.port, w)
		}
	}
	for i := 0; i < 1200; i++ {
		if _, err := h.BindEphemeral(nil); err != nil {
			t.Fatalf("bind %d: %v", i, err)
		}
	}
	if len(h.sockets) != 1+len(want)+1200 {
		t.Fatalf("socket count %d", len(h.sockets))
	}
}

// TestBindEphemeralExhaustion: once the whole range is bound the error
// surfaces instead of looping forever.
func TestBindEphemeralExhaustion(t *testing.T) {
	n := New()
	h, _ := n.AddHost("h", IP{10, 0, 0, 1})
	for i := 0; i < ephemeralHi-ephemeralLo; i++ {
		if _, err := h.BindEphemeral(nil); err != nil {
			t.Fatalf("bind %d: %v", i, err)
		}
	}
	if _, err := h.BindEphemeral(nil); err == nil {
		t.Fatal("expected exhaustion error")
	}
}

// TestDHCPLeaseCarry: the lease counter carries across octets instead
// of wrapping inside octet 3, so one AP serves >255 stations; small
// counts keep the historical addresses.
func TestDHCPLeaseCarry(t *testing.T) {
	n := New()
	ap := n.AddAP(&AccessPoint{
		Name: "ap", SSID: "net", Signal: 50,
		PoolBase: IP{10, 0, 0, 0}, Gateway: IP{10, 0, 0, 1}, DNS: IP{8, 8, 8, 8},
	})
	_ = ap
	seen := make(map[IP]bool)
	for i := 0; i < 600; i++ {
		h, err := n.AddHost(fmt.Sprintf("st%04d", i), IP{})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := h.Station("net").Associate(); err != nil {
			t.Fatalf("station %d: %v", i, err)
		}
		if seen[h.IP] {
			t.Fatalf("station %d: duplicate lease %s", i, h.IP)
		}
		seen[h.IP] = true
		switch i {
		case 0:
			if h.IP != (IP{10, 0, 0, 1}) {
				t.Fatalf("first lease %s", h.IP)
			}
		case 255:
			if h.IP != (IP{10, 0, 1, 0}) {
				t.Fatalf("lease 256 = %s, want carry into octet 2", h.IP)
			}
		}
	}
}

// shardFanoutWorld builds a world whose traffic exercises every
// delivery shape: multi-generation fan-out (each relay forwards to two
// peers while the hop budget lasts), port-closed drops, no-route
// drops, and a handler-less socket that retains datagrams. The
// transcript it produces must be byte-identical at any shard count.
func shardFanoutWorld(t *testing.T, shards, hosts int) *Network {
	t.Helper()
	n := NewSharded(shards)
	n.Verbose = true
	socks := make([]*UDPSocket, hosts)
	for i := 0; i < hosts; i++ {
		h, err := n.AddHost(fmt.Sprintf("h%03d", i), IP{10, 0, byte(i >> 8), byte(i)})
		if err != nil {
			t.Fatal(err)
		}
		i := i
		sk, err := h.Bind(7, func(dg Datagram) {
			hops := dg.Payload[0]
			if hops == 0 {
				return
			}
			body := []byte{hops - 1}
			for _, d := range []int{2*i + 1, 2*i + 2} {
				dst := Addr{IP: IP{10, 0, byte(d >> 8), byte(d)}, Port: 7}
				if d%7 == 3 {
					dst.Port = 9 // closed port: deterministic drop
				}
				if d >= hosts {
					dst.IP = IP{99, 99, byte(d >> 8), byte(d)} // no route
				}
				socks[i].SendTo(dst, body)
			}
		})
		if err != nil {
			t.Fatal(err)
		}
		socks[i] = sk
		if _, err := h.Bind(11, nil); err != nil { // handler-less sink
			t.Fatal(err)
		}
	}
	// Generation 0: a few roots, plus traffic into the handler-less port.
	for _, root := range []int{0, 1, 5} {
		socks[root].SendTo(Addr{IP: IP{10, 0, 0, byte(root)}, Port: 7}, []byte{6})
	}
	socks[2].SendTo(Addr{IP: IP{10, 0, 0, 4}, Port: 11}, []byte("keep"))
	return n
}

// TestShardedRunDeterministic: shards=1,2,8 produce byte-identical
// transcripts, identical counters and identical epoch counts for the
// same world and traffic.
func TestShardedRunDeterministic(t *testing.T) {
	type result struct {
		events               []string
		delivered, dropped   int
		epochs, steps, hosts int
	}
	run := func(shards int) result {
		n := shardFanoutWorld(t, shards, 64)
		steps := n.Run(100000)
		if n.Pending() != 0 {
			t.Fatalf("shards=%d: queue not drained", shards)
		}
		return result{n.Events, n.Delivered, n.Dropped, n.Epochs(), steps, len(n.hosts)}
	}
	want := run(1)
	if want.delivered == 0 || want.dropped == 0 {
		t.Fatalf("world exercises too little: %+v", want)
	}
	for _, shards := range []int{2, 8} {
		got := run(shards)
		if got.delivered != want.delivered || got.dropped != want.dropped ||
			got.epochs != want.epochs || got.steps != want.steps {
			t.Fatalf("shards=%d: counters %+v, want %+v", shards, got, want)
		}
		if len(got.events) != len(want.events) {
			t.Fatalf("shards=%d: %d events, want %d", shards, len(got.events), len(want.events))
		}
		for i := range got.events {
			if got.events[i] != want.events[i] {
				t.Fatalf("shards=%d: event %d:\n got %q\nwant %q", shards, i, got.events[i], want.events[i])
			}
		}
	}
}

// TestShardedBudgetFallback: when maxSteps cannot cover a whole
// generation, the sharded pump hands the remainder to the sequential
// pump and delivers the exact prefix the single-shard network would.
func TestShardedBudgetFallback(t *testing.T) {
	for _, budget := range []int{1, 2, 5, 9, 17} {
		seq := shardFanoutWorld(t, 1, 64)
		par := shardFanoutWorld(t, 4, 64)
		if s1, s2 := seq.Run(budget), par.Run(budget); s1 != s2 {
			t.Fatalf("budget %d: steps %d vs %d", budget, s1, s2)
		}
		if seq.Pending() != par.Pending() {
			t.Fatalf("budget %d: pending %d vs %d", budget, seq.Pending(), par.Pending())
		}
		if len(seq.Events) != len(par.Events) {
			t.Fatalf("budget %d: %d events vs %d", budget, len(par.Events), len(seq.Events))
		}
		for i := range seq.Events {
			if par.Events[i] != seq.Events[i] {
				t.Fatalf("budget %d: event %d: %q vs %q", budget, i, par.Events[i], seq.Events[i])
			}
		}
	}
}

// TestStepInterleavesWithRun: Step keeps exact FIFO behavior on a
// sharded network (it is the sequential pump), so mixed Step/Run use
// stays deterministic.
func TestStepInterleavesWithRun(t *testing.T) {
	n := shardFanoutWorld(t, 4, 64)
	for i := 0; i < 3 && n.Step(); i++ {
	}
	n.Run(100000)
	seq := shardFanoutWorld(t, 1, 64)
	seq.Run(100000)
	if n.Delivered != seq.Delivered || n.Dropped != seq.Dropped {
		t.Fatalf("mixed pump diverged: %d/%d vs %d/%d", n.Delivered, n.Dropped, seq.Delivered, seq.Dropped)
	}
	for i := range seq.Events {
		if n.Events[i] != seq.Events[i] {
			t.Fatalf("event %d: %q vs %q", i, n.Events[i], seq.Events[i])
		}
	}
}

// TestHandlerlessRetainAcrossShards: datagrams parked on handler-less
// sockets keep their payload bytes (never recycled) on sharded
// networks too.
func TestHandlerlessRetainAcrossShards(t *testing.T) {
	n := NewSharded(4)
	var sink *UDPSocket
	var src *UDPSocket
	for i := 0; i < 8; i++ {
		h, err := n.AddHost(fmt.Sprintf("h%d", i), IP{10, 0, 0, byte(i + 1)})
		if err != nil {
			t.Fatal(err)
		}
		if i == 5 {
			sink, _ = h.Bind(9, nil)
		}
		if i == 0 {
			src, _ = h.Bind(10, nil)
		}
	}
	src.SendTo(Addr{IP: IP{10, 0, 0, 6}, Port: 9}, []byte("alpha"))
	src.SendTo(Addr{IP: IP{10, 0, 0, 6}, Port: 9}, []byte("beta"))
	n.Run(10)
	for _, want := range []string{"alpha", "beta"} {
		dg, ok := sink.Recv()
		if !ok || string(dg.Payload) != want {
			t.Fatalf("recv %q, ok=%v, want %q", dg.Payload, ok, want)
		}
	}
}
