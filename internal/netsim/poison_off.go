//go:build !netsimdebug

package netsim

// poisonBuf is a no-op in normal builds; see poison_on.go.
func poisonBuf([]byte) {}
