// Package abi defines the system-call interface between emulated programs
// and the simulated kernel, shared by the libc builders (which emit the
// syscall stubs) and the kernel (which services them).
//
// Calling conventions follow the 32-bit Linux style of each architecture:
//
//   - x86s: int 0x80 with the number in eax and arguments in ebx, ecx, edx;
//     the result is returned in eax.
//   - arms: svc #0 with the number in r7 and arguments in r0, r1, r2; the
//     result is returned in r0.
package abi

// System call numbers. The low numbers match 32-bit Linux; the 1000-range
// numbers are lab pseudo-syscalls that model libc services whose real
// implementations (fork+exec dances) are irrelevant to the exploits.
const (
	// SysExit terminates the process with the status in arg0.
	SysExit = 1
	// SysWrite writes arg2 bytes from the buffer at arg1 to fd arg0.
	SysWrite = 4
	// SysExecve replaces the process image: arg0 is the path pointer, arg1
	// an argv array pointer (NULL-terminated, may be 0), arg2 envp.
	// Spawning a shell this way is the success criterion of the paper's
	// code-injection exploits.
	SysExecve = 11
	// SysSystem backs libc system(): arg0 points to the command string.
	SysSystem = 1001
	// SysExeclp backs libc execlp(): arg0 points to the file string (which,
	// unlike execve, may be a relative name resolved against PATH — the
	// property the paper's ARM ASLR exploit depends on to exec a two-byte
	// "sh"), arg1 points to the first vararg cell.
	SysExeclp = 1002
	// SysAbort backs __stack_chk_fail: the process dies with "stack
	// smashing detected" and no code execution.
	SysAbort = 1003
)

// ShellPath is the absolute shell path; RelShell is the PATH-relative name
// execlp resolves to the same shell.
const (
	ShellPath = "/bin/sh"
	RelShell  = "sh"
)
