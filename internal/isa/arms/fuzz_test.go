package arms

import (
	"testing"
	"testing/quick"
)

// TestQuickDecodeNeverPanics: any 32-bit word either decodes or errors;
// whatever decodes re-encodes to a word that decodes identically.
func TestQuickDecodeNeverPanics(t *testing.T) {
	prop := func(w uint32) bool {
		in, err := Decode(w)
		if err != nil {
			return true
		}
		again, err := Decode(in.Word())
		return err == nil && again == in && in.String() != ""
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 20000}); err != nil {
		t.Error(err)
	}
}
