package arms

import (
	"testing"
	"testing/quick"

	"connlab/internal/isa"
	"connlab/internal/mem"
)

// TestQuickDecodeNeverPanics: any 32-bit word either decodes or errors;
// whatever decodes re-encodes to a word that decodes identically.
func TestQuickDecodeNeverPanics(t *testing.T) {
	prop := func(w uint32) bool {
		in, err := Decode(w)
		if err != nil {
			return true
		}
		again, err := Decode(in.Word())
		return err == nil && again == in && in.String() != ""
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 20000}); err != nil {
		t.Error(err)
	}
}

// FuzzStep: arbitrary words executed as ARM code must always yield a
// defined event and never panic the emulator. Unknown or truncated
// encodings must surface as EventFault, not as a Go panic.
func FuzzStep(f *testing.F) {
	f.Add([]byte{0x1E, 0xFF, 0x2F, 0xE1})             // bx lr (one byte order or another)
	f.Add([]byte{0x00, 0x00, 0x00, 0x00})             // all-zero word
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0xFF})             // all-ones word
	f.Add([]byte{0x04, 0xE0, 0x9D, 0xE4, 0x00, 0x00}) // pop {lr} then truncated tail
	f.Fuzz(func(t *testing.T, code []byte) {
		if len(code) == 0 {
			return
		}
		if len(code) > 4096 {
			code = code[:4096]
		}
		const codeBase, stackBase = 0x00010000, 0x7EFF0000
		m := mem.New()
		if _, err := m.Map("code", codeBase, uint32(len(code)), mem.PermRWX); err != nil {
			t.Fatalf("map code: %v", err)
		}
		if f := m.WriteBytes(codeBase, code); f != nil {
			t.Fatalf("write code: %v", f)
		}
		if _, err := m.Map("stack", stackBase, 0x2000, mem.PermRW); err != nil {
			t.Fatalf("map stack: %v", err)
		}
		c := New(m)
		c.SetPC(codeBase)
		c.SetSP(stackBase + 0x1000)
		for steps := 0; steps < 256; steps++ {
			ev := c.Step()
			switch ev.Kind {
			case isa.EventRetired, isa.EventSyscall:
				// keep running
			case isa.EventFault:
				if ev.Fault == nil && !ev.Illegal {
					t.Fatalf("fault event carries neither memory fault nor illegal flag: %+v", ev)
				}
				return
			case isa.EventCFIViolation:
				return
			default:
				t.Fatalf("undefined event kind %d from Step", ev.Kind)
			}
		}
	})
}
