package arms

import (
	"math/rand"
	"testing"
	"testing/quick"

	"connlab/internal/isa"
	"connlab/internal/mem"
)

func newCPU(t *testing.T, code []byte) *CPU {
	t.Helper()
	m := mem.New()
	text, err := m.Map("text", 0x10000, 0x1000, mem.PermRX)
	if err != nil {
		t.Fatal(err)
	}
	copy(text.Data, code)
	if _, err := m.Map("stack", 0x80000, 0x1000, mem.PermRW); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Map("data", 0x40000, 0x1000, mem.PermRW); err != nil {
		t.Fatal(err)
	}
	c := New(m)
	c.SetPC(0x10000)
	c.SetSP(0x80F00)
	c.SetReg(LR, 0xDEAD0000)
	return c
}

func runAsm(t *testing.T, build func(a *Asm)) (*CPU, isa.Event) {
	t.Helper()
	a := NewAsm()
	build(a)
	code, err := a.Assemble()
	if err != nil {
		t.Fatalf("assemble: %v", err)
	}
	c := newCPU(t, code.Bytes)
	var ev isa.Event
	for i := 0; i < 10000; i++ {
		ev = c.Step()
		if ev.Kind != isa.EventRetired || ev.PC == 0xDEAD0000 {
			return c, ev
		}
	}
	t.Fatal("run did not terminate")
	return nil, isa.Event{}
}

func TestMovAndALU(t *testing.T) {
	c, _ := runAsm(t, func(a *Asm) {
		a.MovImm32(R0, 0xDEADBEEF)
		a.MovW(R1, 10)
		a.AddI(R2, R1, 5)    // 15
		a.SubI(R3, R2, 3)    // 12
		a.AddR(R4, R2, R3)   // 27
		a.SubR(R5, R4, R1)   // 17
		a.AndI(R6, R4, 0x18) // 27 & 0x18 = 0x18
		a.OrrR(R7, R6, R1)   // 0x18 | 10 = 0x1A
		a.LslI(R8, R1, 4)    // 160
		a.LsrI(R9, R8, 2)    // 40
		a.BX(LR)
	})
	want := map[int]uint32{
		R0: 0xDEADBEEF, R2: 15, R3: 12, R4: 27, R5: 17,
		R6: 0x18, R7: 0x1A, R8: 160, R9: 40,
	}
	for r, w := range want {
		if got := c.Reg(r); got != w {
			t.Errorf("%s = %#x, want %#x", RegName(r), got, w)
		}
	}
}

func TestConditionalBranches(t *testing.T) {
	cases := []struct {
		name string
		a, b int32
		cond Cond
		take bool
	}{
		{"eq", 5, 5, CondEQ, true},
		{"ne", 5, 6, CondNE, true},
		{"lt-signed", -1, 0, CondLT, true},
		{"ge", 3, 3, CondGE, true},
		{"gt", 4, 3, CondGT, true},
		{"le", 3, 4, CondLE, true},
		{"lo-unsigned", 1, 2, CondLO, true},
		{"hs", 2, 2, CondHS, true},
		{"mi", -5, 0, CondMI, true},
		{"pl", 5, 0, CondPL, true},
		{"eq-not", 1, 2, CondEQ, false},
		{"lo-not-for-neg", -1, 0, CondLO, false}, // unsigned -1 is huge
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			c, _ := runAsm(t, func(a *Asm) {
				a.MovImm32(R0, uint32(tc.a))
				a.MovImm32(R1, uint32(tc.b))
				a.CmpR(R0, R1)
				a.MovW(R2, 0)
				a.B(tc.cond, "yes")
				a.BAlways("out")
				a.Label("yes")
				a.MovW(R2, 1)
				a.Label("out")
				a.BX(LR)
			})
			if got := c.Reg(R2) == 1; got != tc.take {
				t.Errorf("taken = %v, want %v", got, tc.take)
			}
		})
	}
}

func TestPushPopOrder(t *testing.T) {
	// ARM semantics: lowest register at lowest address.
	c, _ := runAsm(t, func(a *Asm) {
		a.MovW(R0, 0x11)
		a.MovW(R1, 0x22)
		a.MovW(R4, 0x44)
		a.Push(R0, R1, R4)
		a.MovR(R6, SP) // save for inspection
		a.Pop(R7, R8, R9)
		a.BX(LR)
	})
	base := c.Reg(R6)
	v0, _ := c.Mem().ReadU32(base)
	v1, _ := c.Mem().ReadU32(base + 4)
	v2, _ := c.Mem().ReadU32(base + 8)
	if v0 != 0x11 || v1 != 0x22 || v2 != 0x44 {
		t.Errorf("stack layout = %#x %#x %#x, want 11 22 44", v0, v1, v2)
	}
	if c.Reg(R7) != 0x11 || c.Reg(R8) != 0x22 || c.Reg(R9) != 0x44 {
		t.Errorf("pop = %#x %#x %#x", c.Reg(R7), c.Reg(R8), c.Reg(R9))
	}
	if c.SP() != 0x80F00 {
		t.Errorf("sp = %#x, want balanced", c.SP())
	}
}

func TestPopPCReturns(t *testing.T) {
	c, _ := runAsm(t, func(a *Asm) {
		a.Push(LR)
		a.MovW(R0, 7)
		a.Pop(PC) // return via pop {pc}
		a.MovW(R0, 99)
	})
	if got := c.Reg(R0); got != 7 {
		t.Errorf("r0 = %d, want 7 (pop pc must return)", got)
	}
}

func TestBLSetsLinkRegister(t *testing.T) {
	// The caller saves LR around the BL (which clobbers it), the callee
	// returns with bx lr.
	c2, _ := runAsm(t, func(a *Asm) {
		a.Push(LR)
		a.MovW(R0, 0)
		a.BLLabel("fn")
		a.AddI(R0, R0, 100)
		a.Pop(PC)
		a.Label("fn")
		a.AddI(R0, R0, 1)
		a.BX(LR)
	})
	if got := c2.Reg(R0); got != 101 {
		t.Errorf("r0 = %d, want 101", got)
	}
}

func TestBLXThroughRegister(t *testing.T) {
	a := NewAsm()
	a.Push(LR)        // 0x10000
	a.BLX(R3)         // 0x10004: call through r3, lr = 0x10008
	a.Pop(PC)         // 0x10008: return to sentinel
	a.AddI(R0, R0, 5) // 0x1000C: callee
	a.BX(LR)
	code, err := a.Assemble()
	if err != nil {
		t.Fatal(err)
	}
	c := newCPU(t, code.Bytes)
	c.SetReg(R3, 0x1000C)
	c.SetReg(R0, 10)
	for i := 0; i < 100; i++ {
		ev := c.Step()
		if ev.PC == 0xDEAD0000 || ev.Kind != isa.EventRetired {
			break
		}
	}
	if got := c.Reg(R0); got != 15 {
		t.Errorf("r0 = %d, want 15 (blx call + bx lr return)", got)
	}
}

func TestLoadStoreBytesAndWords(t *testing.T) {
	c, _ := runAsm(t, func(a *Asm) {
		a.MovImm32(R0, 0x40000)
		a.MovImm32(R1, 0xCAFEBABE)
		a.Str(R1, R0, 0)
		a.Ldr(R2, R0, 0)
		a.Ldrb(R3, R0, 1) // 0xBA
		a.MovW(R4, 0x5A)
		a.Strb(R4, R0, 8)
		a.Ldrb(R5, R0, 8)
		a.BX(LR)
	})
	if c.Reg(R2) != 0xCAFEBABE {
		t.Errorf("ldr = %#x", c.Reg(R2))
	}
	if c.Reg(R3) != 0xBA {
		t.Errorf("ldrb = %#x, want 0xBA (little endian)", c.Reg(R3))
	}
	if c.Reg(R5) != 0x5A {
		t.Errorf("strb/ldrb = %#x", c.Reg(R5))
	}
}

func TestPCReadsAsNextInstruction(t *testing.T) {
	c, _ := runAsm(t, func(a *Asm) {
		a.MovR(R0, PC) // at 0x10000: r0 = 0x10004
		a.BX(LR)
	})
	if got := c.Reg(R0); got != 0x10004 {
		t.Errorf("mov r0, pc = %#x, want 0x10004", got)
	}
}

func TestTstSetsZ(t *testing.T) {
	c, _ := runAsm(t, func(a *Asm) {
		a.MovW(R0, 0x80)
		a.TstI(R0, 0x80)
		a.MovW(R1, 0)
		a.B(CondNE, "set")
		a.BAlways("out")
		a.Label("set")
		a.MovW(R1, 1)
		a.Label("out")
		a.TstI(R0, 0x40)
		a.MovW(R2, 0)
		a.B(CondEQ, "zero")
		a.BAlways("end")
		a.Label("zero")
		a.MovW(R2, 1)
		a.Label("end")
		a.BX(LR)
	})
	if c.Reg(R1) != 1 || c.Reg(R2) != 1 {
		t.Errorf("tst results = %d, %d, want 1, 1", c.Reg(R1), c.Reg(R2))
	}
}

func TestSvcEvent(t *testing.T) {
	a := NewAsm()
	a.Svc(0)
	code, _ := a.Assemble()
	c := newCPU(t, code.Bytes)
	ev := c.Step()
	if ev.Kind != isa.EventSyscall {
		t.Fatalf("event = %v", ev.Kind)
	}
	if c.PC() != 0x10004 {
		t.Errorf("pc = %#x, want advanced past svc", c.PC())
	}
}

func TestIllegalWordFaults(t *testing.T) {
	c := newCPU(t, []byte{0, 0, 0, 0}) // opcode 0
	if ev := c.Step(); ev.Kind != isa.EventFault || !ev.Illegal {
		t.Errorf("event = %+v, want illegal fault", ev)
	}
	// Condition bits on a non-branch are illegal.
	w := Instr{Op: OpMovR, Rd: R0, Rn: R1}.Word() | uint32(CondEQ)<<22
	if _, err := Decode(w); err == nil {
		t.Error("conditional mov decoded")
	}
}

// TestQuickEncodeDecodeRoundTrip: every well-formed instruction survives
// Word() -> Decode() intact.
func TestQuickEncodeDecodeRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	randInstr := func() Instr {
		ops := []Op{
			OpMovR, OpMovW, OpMovT, OpAddR, OpAddI, OpSubR, OpSubI, OpAndI,
			OpOrrR, OpLslI, OpLsrI, OpLdr, OpStr, OpLdrb, OpStrb, OpCmpR,
			OpCmpI, OpTstI, OpB, OpBL, OpBLX, OpBX, OpPush, OpPop, OpSvc,
		}
		in := Instr{Op: ops[rng.Intn(len(ops))]}
		switch in.Op {
		case OpMovR, OpCmpR:
			in.Rd, in.Rn = rng.Intn(16), rng.Intn(16)
		case OpMovW, OpMovT:
			in.Rd, in.Imm = rng.Intn(16), int32(rng.Intn(0x10000))
		case OpAddR, OpSubR, OpOrrR:
			in.Rd, in.Rn, in.Rm = rng.Intn(16), rng.Intn(16), rng.Intn(16)
		case OpAddI, OpSubI, OpAndI, OpLslI, OpLsrI, OpTstI:
			in.Rd, in.Rn, in.Imm = rng.Intn(16), rng.Intn(16), int32(rng.Intn(0x4000))
			if in.Op == OpTstI {
				in.Rn = 0
			}
		case OpLdr, OpStr, OpLdrb, OpStrb, OpCmpI:
			in.Rd, in.Rn, in.Imm = rng.Intn(16), rng.Intn(16), int32(rng.Intn(0x4000)-0x2000)
			if in.Op == OpCmpI {
				in.Rn = 0
			}
		case OpB:
			in.Cond, in.Rel = Cond(rng.Intn(int(numConds))), int32(rng.Intn(0x400000)-0x200000)
		case OpBL:
			in.Rel = int32(rng.Intn(0x400000) - 0x200000)
		case OpBLX, OpBX:
			in.Rd = rng.Intn(16)
		case OpPush, OpPop:
			in.RegList = uint16(rng.Uint32())
		case OpSvc:
			in.Imm = int32(rng.Intn(0x400000))
		}
		return in
	}
	for trial := 0; trial < 3000; trial++ {
		in := randInstr()
		got, err := Decode(in.Word())
		if err != nil {
			t.Fatalf("trial %d: %v for %+v", trial, err, in)
		}
		if got.Op != in.Op || got.Rd != in.Rd || got.Rn != in.Rn || got.Rm != in.Rm ||
			got.Imm != in.Imm || got.Rel != in.Rel || got.RegList != in.RegList ||
			got.Cond != in.Cond {
			t.Fatalf("trial %d: round trip %+v -> %+v", trial, in, got)
		}
		if got.String() == "(bad)" {
			t.Fatalf("trial %d: bad rendering for %+v", trial, in)
		}
	}
}

// TestQuickSignExtend: the rel22/imm14 sign extension is exact.
func TestQuickSignExtend(t *testing.T) {
	prop := func(v int32) bool {
		r := v % (1 << 21)
		in := Instr{Op: OpBL, Rel: r}
		got, err := Decode(in.Word())
		return err == nil && got.Rel == r
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestAssemblerRangeChecks(t *testing.T) {
	a := NewAsm()
	a.AddI(R0, R1, 0x4000) // out of imm14 range
	if _, err := a.Assemble(); err == nil {
		t.Error("oversized add imm accepted")
	}
	b := NewAsm()
	b.Ldr(R0, R1, 9000)
	if _, err := b.Assemble(); err == nil {
		t.Error("oversized ldr offset accepted")
	}
	c := NewAsm()
	c.BAlways("missing")
	if _, err := c.Assemble(); err == nil {
		t.Error("undefined label accepted")
	}
}

func TestPatchHelpers(t *testing.T) {
	a := NewAsm()
	a.MovSym(R0, "x", 0)
	code, err := a.Assemble()
	if err != nil {
		t.Fatal(err)
	}
	if err := PatchMovWT(code.Bytes, 0, 0x12345678); err != nil {
		t.Fatal(err)
	}
	lo, _ := Decode(word(code.Bytes, 0))
	hi, _ := Decode(word(code.Bytes, 4))
	if uint16(lo.Imm) != 0x5678 || uint16(hi.Imm) != 0x1234 {
		t.Errorf("patched pair = %#x %#x", lo.Imm, hi.Imm)
	}
	if err := PatchMovWT(code.Bytes, 4, 1); err == nil {
		t.Error("patch on non-pair accepted")
	}

	b := NewAsm()
	b.BL("fn")
	bc, _ := b.Assemble()
	if err := PatchBranch(bc.Bytes, 0, 0x10000, 0x10100); err != nil {
		t.Fatal(err)
	}
	in, _ := Decode(word(bc.Bytes, 0))
	if in.Rel != (0x10100-0x10004)/4 {
		t.Errorf("patched rel = %d", in.Rel)
	}
	if err := PatchBranch(bc.Bytes, 0, 0x10000, 0x10001); err == nil {
		t.Error("misaligned branch target accepted")
	}
}

func word(b []byte, off int) uint32 {
	return uint32(b[off]) | uint32(b[off+1])<<8 | uint32(b[off+2])<<16 | uint32(b[off+3])<<24
}

func TestDisassemblerInterface(t *testing.T) {
	a := NewAsm()
	a.Nop()
	code, _ := a.Assemble()
	c := newCPU(t, code.Bytes)
	var d isa.Disassembler = Disasm{}
	text, size, err := d.DisasmAt(c.Mem(), 0x10000)
	if err != nil || text != "mov r1, r1" || size != 4 {
		t.Errorf("DisasmAt = %q, %d, %v", text, size, err)
	}
}
