package arms

import (
	"fmt"
)

// RelocKind is how the linker patches an arms symbol reference.
type RelocKind uint8

// Relocation kinds.
const (
	// RelocMovWT patches a movw/movt instruction pair (8 bytes at Off) with
	// the low and high halves of the symbol address.
	RelocMovWT RelocKind = iota + 1
	// RelocBranch patches the rel22 field of a b/bl at Off with the word
	// offset to the symbol.
	RelocBranch
	// RelocWord32 patches a literal 32-bit data word with the symbol
	// address (literal pools, jump tables).
	RelocWord32
)

// Reloc is an unresolved arms symbol reference.
type Reloc struct {
	Off    int
	Kind   RelocKind
	Symbol string
	Addend int32
}

// Code is the output of Asm.Assemble.
type Code struct {
	Bytes  []byte
	Relocs []Reloc
}

type labelFixup struct {
	off   int // word offset of the branch instruction
	label string
}

// Asm is a builder-style assembler for one arms function.
type Asm struct {
	words  []uint32
	labels map[string]int // word index
	lfix   []labelFixup
	relocs []Reloc
	err    error
}

// NewAsm returns an empty assembler.
func NewAsm() *Asm { return &Asm{labels: make(map[string]int)} }

func (a *Asm) emit(in Instr) *Asm {
	a.words = append(a.words, in.Word())
	return a
}

func (a *Asm) setErr(format string, args ...any) {
	if a.err == nil {
		a.err = fmt.Errorf(format, args...)
	}
}

// Nop emits the conventional no-op, mov r1, r1 — arms has no dedicated
// single-byte NOP, exactly the property the paper works around.
func (a *Asm) Nop() *Asm { return a.MovR(R1, R1) }

// MovR emits mov rd, rn.
func (a *Asm) MovR(rd, rn int) *Asm { return a.emit(Instr{Op: OpMovR, Rd: rd, Rn: rn}) }

// MovW emits movw rd, #imm16.
func (a *Asm) MovW(rd int, imm uint16) *Asm {
	return a.emit(Instr{Op: OpMovW, Rd: rd, Imm: int32(imm)})
}

// MovT emits movt rd, #imm16.
func (a *Asm) MovT(rd int, imm uint16) *Asm {
	return a.emit(Instr{Op: OpMovT, Rd: rd, Imm: int32(imm)})
}

// MovImm32 emits a movw/movt pair loading a full 32-bit constant.
func (a *Asm) MovImm32(rd int, v uint32) *Asm {
	a.MovW(rd, uint16(v))
	return a.MovT(rd, uint16(v>>16))
}

// MovSym emits a movw/movt pair loading the address of sym+addend, patched
// by the linker.
func (a *Asm) MovSym(rd int, sym string, addend int32) *Asm {
	a.relocs = append(a.relocs, Reloc{
		Off: len(a.words) * InstrSize, Kind: RelocMovWT, Symbol: sym, Addend: addend,
	})
	a.MovW(rd, 0)
	return a.MovT(rd, 0)
}

// AddR emits add rd, rn, rm.
func (a *Asm) AddR(rd, rn, rm int) *Asm {
	return a.emit(Instr{Op: OpAddR, Rd: rd, Rn: rn, Rm: rm})
}

// AddI emits add rd, rn, #imm (0..16383).
func (a *Asm) AddI(rd, rn int, imm int32) *Asm {
	if imm < 0 || imm > 0x3FFF {
		a.setErr("arms asm: add imm %d out of range", imm)
		return a
	}
	return a.emit(Instr{Op: OpAddI, Rd: rd, Rn: rn, Imm: imm})
}

// SubR emits sub rd, rn, rm.
func (a *Asm) SubR(rd, rn, rm int) *Asm {
	return a.emit(Instr{Op: OpSubR, Rd: rd, Rn: rn, Rm: rm})
}

// SubI emits sub rd, rn, #imm (0..16383).
func (a *Asm) SubI(rd, rn int, imm int32) *Asm {
	if imm < 0 || imm > 0x3FFF {
		a.setErr("arms asm: sub imm %d out of range", imm)
		return a
	}
	return a.emit(Instr{Op: OpSubI, Rd: rd, Rn: rn, Imm: imm})
}

// AndI emits and rd, rn, #imm.
func (a *Asm) AndI(rd, rn int, imm int32) *Asm {
	if imm < 0 || imm > 0x3FFF {
		a.setErr("arms asm: and imm %#x out of range", imm)
		return a
	}
	return a.emit(Instr{Op: OpAndI, Rd: rd, Rn: rn, Imm: imm})
}

// OrrR emits orr rd, rn, rm.
func (a *Asm) OrrR(rd, rn, rm int) *Asm {
	return a.emit(Instr{Op: OpOrrR, Rd: rd, Rn: rn, Rm: rm})
}

// LslI emits lsl rd, rn, #imm.
func (a *Asm) LslI(rd, rn int, imm int32) *Asm {
	return a.emit(Instr{Op: OpLslI, Rd: rd, Rn: rn, Imm: imm & 31})
}

// LsrI emits lsr rd, rn, #imm.
func (a *Asm) LsrI(rd, rn int, imm int32) *Asm {
	return a.emit(Instr{Op: OpLsrI, Rd: rd, Rn: rn, Imm: imm & 31})
}

func immOffsetOK(imm int32) bool { return imm >= -8192 && imm <= 8191 }

// Ldr emits ldr rd, [rn, #imm].
func (a *Asm) Ldr(rd, rn int, imm int32) *Asm {
	if !immOffsetOK(imm) {
		a.setErr("arms asm: ldr offset %d out of range", imm)
		return a
	}
	return a.emit(Instr{Op: OpLdr, Rd: rd, Rn: rn, Imm: imm})
}

// Str emits str rd, [rn, #imm].
func (a *Asm) Str(rd, rn int, imm int32) *Asm {
	if !immOffsetOK(imm) {
		a.setErr("arms asm: str offset %d out of range", imm)
		return a
	}
	return a.emit(Instr{Op: OpStr, Rd: rd, Rn: rn, Imm: imm})
}

// Ldrb emits ldrb rd, [rn, #imm].
func (a *Asm) Ldrb(rd, rn int, imm int32) *Asm {
	if !immOffsetOK(imm) {
		a.setErr("arms asm: ldrb offset %d out of range", imm)
		return a
	}
	return a.emit(Instr{Op: OpLdrb, Rd: rd, Rn: rn, Imm: imm})
}

// Strb emits strb rd, [rn, #imm].
func (a *Asm) Strb(rd, rn int, imm int32) *Asm {
	if !immOffsetOK(imm) {
		a.setErr("arms asm: strb offset %d out of range", imm)
		return a
	}
	return a.emit(Instr{Op: OpStrb, Rd: rd, Rn: rn, Imm: imm})
}

// CmpR emits cmp ra, rb.
func (a *Asm) CmpR(ra, rb int) *Asm { return a.emit(Instr{Op: OpCmpR, Rd: ra, Rn: rb}) }

// CmpI emits cmp ra, #imm.
func (a *Asm) CmpI(ra int, imm int32) *Asm {
	if !immOffsetOK(imm) {
		a.setErr("arms asm: cmp imm %d out of range", imm)
		return a
	}
	return a.emit(Instr{Op: OpCmpI, Rd: ra, Imm: imm})
}

// TstI emits tst ra, #imm.
func (a *Asm) TstI(ra int, imm int32) *Asm {
	if imm < 0 || imm > 0x3FFF {
		a.setErr("arms asm: tst imm %#x out of range", imm)
		return a
	}
	return a.emit(Instr{Op: OpTstI, Rd: ra, Imm: imm})
}

// Label defines a local label at the current offset.
func (a *Asm) Label(name string) *Asm {
	if _, dup := a.labels[name]; dup {
		a.setErr("arms asm: duplicate label %q", name)
		return a
	}
	a.labels[name] = len(a.words)
	return a
}

// B emits b<cond> to a local label.
func (a *Asm) B(cond Cond, label string) *Asm {
	a.lfix = append(a.lfix, labelFixup{off: len(a.words), label: label})
	return a.emit(Instr{Op: OpB, Cond: cond})
}

// BAlways emits an unconditional branch to a local label.
func (a *Asm) BAlways(label string) *Asm { return a.B(CondAL, label) }

// BL emits bl to an external symbol.
func (a *Asm) BL(sym string) *Asm {
	a.relocs = append(a.relocs, Reloc{
		Off: len(a.words) * InstrSize, Kind: RelocBranch, Symbol: sym,
	})
	return a.emit(Instr{Op: OpBL})
}

// BLLabel emits bl to a local label.
func (a *Asm) BLLabel(label string) *Asm {
	a.lfix = append(a.lfix, labelFixup{off: len(a.words), label: label})
	return a.emit(Instr{Op: OpBL})
}

// BLX emits blx rd.
func (a *Asm) BLX(rd int) *Asm { return a.emit(Instr{Op: OpBLX, Rd: rd}) }

// BX emits bx rd. BX LR is the conventional leaf return.
func (a *Asm) BX(rd int) *Asm { return a.emit(Instr{Op: OpBX, Rd: rd}) }

// Push emits push {regs}.
func (a *Asm) Push(regs ...int) *Asm {
	var list uint16
	for _, r := range regs {
		list |= 1 << r
	}
	return a.emit(Instr{Op: OpPush, RegList: list})
}

// Pop emits pop {regs}. Including PC makes it a return.
func (a *Asm) Pop(regs ...int) *Asm {
	var list uint16
	for _, r := range regs {
		list |= 1 << r
	}
	return a.emit(Instr{Op: OpPop, RegList: list})
}

// Svc emits svc #imm.
func (a *Asm) Svc(imm int32) *Asm { return a.emit(Instr{Op: OpSvc, Imm: imm}) }

// Word emits a literal data word (for inline literal pools).
func (a *Asm) Word(v uint32) *Asm {
	a.words = append(a.words, v)
	return a
}

// WordSym emits a literal data word holding the address of sym+addend.
func (a *Asm) WordSym(sym string, addend int32) *Asm {
	a.relocs = append(a.relocs, Reloc{
		Off: len(a.words) * InstrSize, Kind: RelocWord32, Symbol: sym, Addend: addend,
	})
	return a.Word(0)
}

// Len returns the current code length in bytes.
func (a *Asm) Len() int { return len(a.words) * InstrSize }

// Assemble resolves label fixups and returns the encoded function.
func (a *Asm) Assemble() (Code, error) {
	if a.err != nil {
		return Code{}, a.err
	}
	for _, f := range a.lfix {
		tgt, ok := a.labels[f.label]
		if !ok {
			return Code{}, fmt.Errorf("arms asm: undefined label %q", f.label)
		}
		rel := int32(tgt - (f.off + 1))
		if rel < -(1<<21) || rel >= 1<<21 {
			return Code{}, fmt.Errorf("arms asm: label %q out of range", f.label)
		}
		a.words[f.off] = a.words[f.off]&^uint32(0x3FFFFF) | uint32(rel)&0x3FFFFF
	}
	out := make([]byte, len(a.words)*InstrSize)
	for i, w := range a.words {
		out[i*4] = byte(w)
		out[i*4+1] = byte(w >> 8)
		out[i*4+2] = byte(w >> 16)
		out[i*4+3] = byte(w >> 24)
	}
	relocs := make([]Reloc, len(a.relocs))
	copy(relocs, a.relocs)
	return Code{Bytes: out, Relocs: relocs}, nil
}

// PatchMovWT rewrites the movw/movt pair at byte offset off in code with
// value v. Used by the linker to apply RelocMovWT.
func PatchMovWT(code []byte, off int, v uint32) error {
	if off+8 > len(code) {
		return fmt.Errorf("arms: movw/movt patch at %d out of bounds", off)
	}
	lo := uint32(code[off]) | uint32(code[off+1])<<8 | uint32(code[off+2])<<16 | uint32(code[off+3])<<24
	hi := uint32(code[off+4]) | uint32(code[off+5])<<8 | uint32(code[off+6])<<16 | uint32(code[off+7])<<24
	if Op(lo>>26) != OpMovW || Op(hi>>26) != OpMovT {
		return fmt.Errorf("arms: movw/movt patch at %d does not cover a movw/movt pair", off)
	}
	lo = lo&^uint32(0xFFFF) | v&0xFFFF
	hi = hi&^uint32(0xFFFF) | v>>16
	putWord(code[off:], lo)
	putWord(code[off+4:], hi)
	return nil
}

// PatchBranch rewrites the rel22 field of the b/bl at byte offset off so it
// targets absolute address target, given the instruction's absolute
// address site.
func PatchBranch(code []byte, off int, site, target uint32) error {
	if off+4 > len(code) {
		return fmt.Errorf("arms: branch patch at %d out of bounds", off)
	}
	w := uint32(code[off]) | uint32(code[off+1])<<8 | uint32(code[off+2])<<16 | uint32(code[off+3])<<24
	if op := Op(w >> 26); op != OpB && op != OpBL {
		return fmt.Errorf("arms: branch patch at %d is not a branch", off)
	}
	diff := int64(target) - int64(site+InstrSize)
	if diff%InstrSize != 0 {
		return fmt.Errorf("arms: branch target %#x misaligned", target)
	}
	rel := diff / InstrSize
	if rel < -(1<<21) || rel >= 1<<21 {
		return fmt.Errorf("arms: branch target %#x out of range from %#x", target, site)
	}
	w = w&^uint32(0x3FFFFF) | uint32(rel)&0x3FFFFF
	putWord(code[off:], w)
	return nil
}

func putWord(b []byte, w uint32) {
	b[0] = byte(w)
	b[1] = byte(w >> 8)
	b[2] = byte(w >> 16)
	b[3] = byte(w >> 24)
}
