// Package arms implements the lab's 32-bit ARM-flavoured simulated CPU:
// fixed 4-byte little-endian instructions, register-passed call arguments,
// a link register, and no ret instruction — returns happen through
// `bx lr` or `pop {…, pc}`. It is the "Raspberry Pi 3 / ARMv7 running
// Ubuntu Mate" target of the paper's experiments.
//
// The encoding is the lab's own (documented below), but the semantics
// reproduce every ARM property the paper's exploits hinge on:
//
//   - there is no single-byte NOP; the no-op is a full-width `mov r1, r1`;
//   - function arguments travel in r0–r3, so return-to-libc cannot pass
//     arguments from the stack and a register-loading gadget such as
//     `pop {r0, r1, r2, r3, r5, r6, r7, pc}` is required;
//   - chained calls need a branch-link gadget (`blx rN`) because `pop pc`
//     alone does not set up a return path.
//
// # Instruction encoding
//
// Every instruction is one little-endian 32-bit word:
//
//	bits 31..26  opcode
//	bits 25..22  condition (B only; 0 = always)
//	bits 21..18  rd   (or rn for CMP/TST, rm for BX/BLX)
//	bits 17..14  rn
//	bits 13..10  rm
//	bits 13..0   imm14 (signed for LDR/STR/CMP, unsigned for ADD/SUB/AND/LSL)
//	bits 15..0   imm16 (MOVW/MOVT) or register list (PUSH/POP)
//	bits 21..0   rel22 (B/BL, signed word offset from pc+4)
package arms

import "fmt"

// Register indices. r13 is the stack pointer, r14 the link register, r15
// the program counter.
const (
	R0 = iota
	R1
	R2
	R3
	R4
	R5
	R6
	R7
	R8
	R9
	R10
	R11
	R12
	SP
	LR
	PC
	numRegs
)

// FP is the conventional frame pointer (r11) used by the victim programs.
const FP = R11

var regNames = [numRegs]string{
	"r0", "r1", "r2", "r3", "r4", "r5", "r6", "r7",
	"r8", "r9", "r10", "r11", "r12", "sp", "lr", "pc",
}

// RegName returns the conventional name for a register index.
func RegName(i int) string {
	if i < 0 || i >= numRegs {
		return "r?"
	}
	return regNames[i]
}

// Cond is a branch condition.
type Cond uint8

// Branch conditions.
const (
	CondAL Cond = iota // always
	CondEQ
	CondNE
	CondLT // signed <
	CondGE // signed >=
	CondGT // signed >
	CondLE // signed <=
	CondLO // unsigned <
	CondHS // unsigned >=
	CondMI // negative
	CondPL // non-negative
	numConds
)

var condNames = [numConds]string{"", "eq", "ne", "lt", "ge", "gt", "le", "lo", "hs", "mi", "pl"}

// String implements fmt.Stringer.
func (c Cond) String() string {
	if int(c) < len(condNames) {
		return condNames[c]
	}
	return "cc?"
}

// Op is an arms opcode.
type Op uint8

// Opcodes.
const (
	OpMovR Op = iota + 1 // mov rd, rn
	OpMovW               // movw rd, #imm16 (zero-extends)
	OpMovT               // movt rd, #imm16 (top half)
	OpAddR               // add rd, rn, rm
	OpAddI               // add rd, rn, #imm14
	OpSubR               // sub rd, rn, rm
	OpSubI               // sub rd, rn, #imm14
	OpAndI               // and rd, rn, #imm14
	OpOrrR               // orr rd, rn, rm
	OpLslI               // lsl rd, rn, #imm
	OpLsrI               // lsr rd, rn, #imm
	OpLdr                // ldr rd, [rn, #simm14]
	OpStr                // str rd, [rn, #simm14]
	OpLdrb               // ldrb rd, [rn, #simm14]
	OpStrb               // strb rd, [rn, #simm14]
	OpCmpR               // cmp rd, rn
	OpCmpI               // cmp rd, #simm14
	OpTstI               // tst rd, #imm14
	OpB                  // b<cond> rel22
	OpBL                 // bl rel22
	OpBLX                // blx rd (register)
	OpBX                 // bx rd (register)
	OpPush               // push {reglist}
	OpPop                // pop {reglist}
	OpSvc                // svc #imm
	maxOp
)

// InstrSize is the fixed instruction width in bytes.
const InstrSize = 4

// Instr is one decoded instruction.
type Instr struct {
	Op      Op
	Cond    Cond
	Rd      int
	Rn      int
	Rm      int
	Imm     int32  // imm14 (sign or zero extended per op) / imm16 / svc imm
	Rel     int32  // rel22 word offset (B/BL)
	RegList uint16 // push/pop
}

// Word encodes the instruction into its 32-bit word.
func (in Instr) Word() uint32 {
	w := uint32(in.Op) << 26
	switch in.Op {
	case OpMovR, OpAddR, OpSubR, OpOrrR:
		w |= uint32(in.Rd)<<18 | uint32(in.Rn)<<14 | uint32(in.Rm)<<10
	case OpMovW, OpMovT:
		w |= uint32(in.Rd)<<18 | uint32(uint16(in.Imm))
	case OpAddI, OpSubI, OpAndI, OpLslI, OpLsrI:
		w |= uint32(in.Rd)<<18 | uint32(in.Rn)<<14 | uint32(in.Imm)&0x3FFF
	case OpLdr, OpStr, OpLdrb, OpStrb:
		w |= uint32(in.Rd)<<18 | uint32(in.Rn)<<14 | uint32(in.Imm)&0x3FFF
	case OpCmpR:
		w |= uint32(in.Rd)<<18 | uint32(in.Rn)<<14
	case OpCmpI, OpTstI:
		w |= uint32(in.Rd)<<18 | uint32(in.Imm)&0x3FFF
	case OpB, OpBL:
		w |= uint32(in.Cond)<<22 | uint32(in.Rel)&0x3FFFFF
	case OpBLX, OpBX:
		w |= uint32(in.Rd) << 18
	case OpPush, OpPop:
		w |= uint32(in.RegList)
	case OpSvc:
		w |= uint32(in.Imm) & 0x3FFFFF
	}
	return w
}

// signExtend extends an n-bit two's-complement value.
func signExtend(v uint32, bits uint) int32 {
	shift := 32 - bits
	return int32(v<<shift) >> shift
}

// Decode decodes a 32-bit word. It reports an error for unknown opcodes or
// malformed fields, which the CPU surfaces as an illegal instruction —
// this is what makes "executing garbage" crash, as on real hardware.
func Decode(w uint32) (Instr, error) {
	op := Op(w >> 26)
	if op == 0 || op >= maxOp {
		return Instr{}, fmt.Errorf("arms: illegal opcode %#x in word %#08x", uint8(op), w)
	}
	in := Instr{
		Op:   op,
		Cond: Cond(w >> 22 & 0xF),
		Rd:   int(w >> 18 & 0xF),
		Rn:   int(w >> 14 & 0xF),
		Rm:   int(w >> 10 & 0xF),
	}
	switch op {
	case OpMovR, OpCmpR:
		in.Rm = 0
	case OpMovW, OpMovT:
		in.Imm = int32(w & 0xFFFF)
		in.Rn, in.Rm = 0, 0
	case OpAddI, OpSubI, OpAndI, OpLslI, OpLsrI, OpTstI:
		in.Imm = int32(w & 0x3FFF) // unsigned
		in.Rm = 0
	case OpLdr, OpStr, OpLdrb, OpStrb, OpCmpI:
		in.Imm = signExtend(w&0x3FFF, 14)
		in.Rm = 0
	case OpB, OpBL:
		in.Rel = signExtend(w&0x3FFFFF, 22)
		in.Rd, in.Rn, in.Rm = 0, 0, 0
	case OpBLX, OpBX:
		in.Rn, in.Rm = 0, 0
	case OpPush, OpPop:
		in.RegList = uint16(w)
		in.Rd, in.Rn, in.Rm = 0, 0, 0
	case OpSvc:
		in.Imm = int32(w & 0x3FFFFF)
		in.Rd, in.Rn, in.Rm = 0, 0, 0
	}
	if op != OpB && op != OpBL && in.Cond != CondAL {
		return Instr{}, fmt.Errorf("arms: condition on non-branch in word %#08x", w)
	}
	if in.Cond >= numConds {
		return Instr{}, fmt.Errorf("arms: illegal condition %#x in word %#08x", uint8(in.Cond), w)
	}
	// Canonical encoding check: don't-care bits must be zero, so that
	// Decode(Word(in)) == in exactly and random words rarely masquerade
	// as instructions (matching real fixed-width ISAs' undefined-bit
	// traps).
	if in.Word() != w {
		return Instr{}, fmt.Errorf("arms: non-canonical word %#08x", w)
	}
	return in, nil
}

// regListString renders a push/pop register list.
func regListString(list uint16) string {
	out := "{"
	first := true
	for i := 0; i < 16; i++ {
		if list&(1<<i) == 0 {
			continue
		}
		if !first {
			out += ", "
		}
		out += RegName(i)
		first = false
	}
	return out + "}"
}

// String renders the instruction in ARM-style syntax.
func (in Instr) String() string {
	switch in.Op {
	case OpMovR:
		return fmt.Sprintf("mov %s, %s", RegName(in.Rd), RegName(in.Rn))
	case OpMovW:
		return fmt.Sprintf("movw %s, #%#x", RegName(in.Rd), uint16(in.Imm))
	case OpMovT:
		return fmt.Sprintf("movt %s, #%#x", RegName(in.Rd), uint16(in.Imm))
	case OpAddR:
		return fmt.Sprintf("add %s, %s, %s", RegName(in.Rd), RegName(in.Rn), RegName(in.Rm))
	case OpAddI:
		return fmt.Sprintf("add %s, %s, #%d", RegName(in.Rd), RegName(in.Rn), in.Imm)
	case OpSubR:
		return fmt.Sprintf("sub %s, %s, %s", RegName(in.Rd), RegName(in.Rn), RegName(in.Rm))
	case OpSubI:
		return fmt.Sprintf("sub %s, %s, #%d", RegName(in.Rd), RegName(in.Rn), in.Imm)
	case OpAndI:
		return fmt.Sprintf("and %s, %s, #%#x", RegName(in.Rd), RegName(in.Rn), in.Imm)
	case OpOrrR:
		return fmt.Sprintf("orr %s, %s, %s", RegName(in.Rd), RegName(in.Rn), RegName(in.Rm))
	case OpLslI:
		return fmt.Sprintf("lsl %s, %s, #%d", RegName(in.Rd), RegName(in.Rn), in.Imm)
	case OpLsrI:
		return fmt.Sprintf("lsr %s, %s, #%d", RegName(in.Rd), RegName(in.Rn), in.Imm)
	case OpLdr:
		return fmt.Sprintf("ldr %s, [%s, #%d]", RegName(in.Rd), RegName(in.Rn), in.Imm)
	case OpStr:
		return fmt.Sprintf("str %s, [%s, #%d]", RegName(in.Rd), RegName(in.Rn), in.Imm)
	case OpLdrb:
		return fmt.Sprintf("ldrb %s, [%s, #%d]", RegName(in.Rd), RegName(in.Rn), in.Imm)
	case OpStrb:
		return fmt.Sprintf("strb %s, [%s, #%d]", RegName(in.Rd), RegName(in.Rn), in.Imm)
	case OpCmpR:
		return fmt.Sprintf("cmp %s, %s", RegName(in.Rd), RegName(in.Rn))
	case OpCmpI:
		return fmt.Sprintf("cmp %s, #%d", RegName(in.Rd), in.Imm)
	case OpTstI:
		return fmt.Sprintf("tst %s, #%#x", RegName(in.Rd), in.Imm)
	case OpB:
		return fmt.Sprintf("b%s %+d", in.Cond, in.Rel*InstrSize)
	case OpBL:
		return fmt.Sprintf("bl %+d", in.Rel*InstrSize)
	case OpBLX:
		return "blx " + RegName(in.Rd)
	case OpBX:
		return "bx " + RegName(in.Rd)
	case OpPush:
		return "push " + regListString(in.RegList)
	case OpPop:
		return "pop " + regListString(in.RegList)
	case OpSvc:
		return fmt.Sprintf("svc #%d", in.Imm)
	default:
		return "(bad)"
	}
}
