package arms

import (
	"math/bits"

	"connlab/internal/isa"
	"connlab/internal/mem"
)

// Basic-block translation for the fixed-width ISA: straight-line runs of
// non-writable code pre-decoded into a flat []blockInstr executed by a
// tight loop. Validity is keyed to mem.Memory.Gen(), checked once per
// block entry — sufficient because nothing inside a block can move the
// generation (stores to non-writable segments fault; layout changes only
// happen between dispatches). Writable code is never translated, so
// self-modifying shellcode always single-steps and sees its own stores.
//
// The executor duplicates Step's per-op semantics deliberately (see the
// x86s twin for the rationale); the differential lockstep harness in
// internal/isa/isatest pins the two paths against each other.

// bcSize is the number of block-cache slots (direct-mapped on the
// word-aligned entry PC).
const bcSize = 512

// maxBlockInstrs bounds one translated block.
const maxBlockInstrs = 64

// blockInstr is one pre-decoded instruction of a translated block.
type blockInstr struct {
	pc uint32
	in Instr
}

// bcEntry is one block-cache slot; see the x86s twin. A matching entry
// with an empty ins slice is a negative result: the entry PC is known
// untranslatable for this generation.
type bcEntry struct {
	pc  uint32
	gen uint64
	ins []blockInstr
}

// blockEnder reports whether in terminates a basic block. Besides the
// branch/call/syscall ops, any instruction whose destination register is
// PC transfers control: pop {...,pc}, ldr pc, mov pc. Other writes to PC
// through Rd are overwritten by the end-of-instruction PC update in Step
// and are therefore straight-line.
func blockEnder(in *Instr) bool {
	switch in.Op {
	case OpB, OpBL, OpBLX, OpBX, OpSvc:
		return true
	case OpPop:
		return in.RegList&(1<<PC) != 0
	case OpLdr, OpMovR:
		return in.Rd == PC
	}
	return false
}

// translate decodes a straight-line run starting at pc into slot,
// reusing the slot's backing array. It stops at a block ender, at
// maxBlockInstrs, and before any word that is not translatable (writable
// segment, fetch fault, short fetch at a segment end, decode error),
// leaving that PC for the single-step path to resolve with the exact
// event Step would produce.
func (c *CPU) translate(slot *bcEntry, pc uint32, gen uint64) bool {
	ins := slot.ins[:0]
	p := pc
	for len(ins) < maxBlockInstrs {
		word, perm, short, f := c.m.Fetch32(p)
		if f != nil || short || perm&mem.PermWrite != 0 {
			break
		}
		in, err := Decode(word)
		if err != nil {
			break
		}
		ins = append(ins, blockInstr{pc: p, in: in})
		if blockEnder(&in) {
			break
		}
		p += InstrSize
	}
	*slot = bcEntry{pc: pc, gen: gen, ins: ins}
	if len(ins) == 0 {
		return false
	}
	c.bcStats.Translated++
	return true
}

// StepBlock implements isa.CPU. Like the x86s twin it chains translated
// blocks: after a block retires, the dispatch loop immediately looks up
// the block at the new PC and keeps executing until max instructions
// have retired, a non-retired event surfaces, or an untranslatable PC is
// reached. One generation load covers the whole chain — nothing inside
// StepBlock can move the generation. At an untranslatable PC with
// nothing retired yet, the call degenerates to a single Step so the
// interpreter reproduces the exact fault/illegal event; otherwise it
// returns EventRetired and the caller's next dispatch takes that path.
func (c *CPU) StepBlock(max uint64) isa.Event {
	if c.hooks != nil || c.rec != nil {
		// Hooked and recorded runs stay on the single-step path: the
		// shadow-stack and flight-recorder contracts observe every
		// control transfer in per-instruction order.
		return c.Step()
	}
	if max == 0 {
		max = 1
	}
	gen := c.m.Gen()
	start := c.icount
	limit := c.icount + max
	if limit < c.icount { // saturate on wraparound
		limit = ^uint64(0)
	}
	for {
		pc := c.regs[PC]
		slot := &c.bc[(pc>>2)&(bcSize-1)]
		if slot.pc != pc || slot.gen != gen {
			// Only the dispatch's first block pays for a translation
			// attempt; a cold PC mid-chain ends the dispatch and the
			// next one translates it. Beyond bounding per-dispatch
			// translation work, this keeps the common chain exit — a
			// return to the caller's unmapped sentinel — allocation-
			// free: probing it would manufacture a fault object.
			if c.icount > start {
				c.bcStats.Instrs += c.icount - start
				return isa.Event{Kind: isa.EventRetired, PC: pc}
			}
			if slot.pc == pc && slot.gen != 0 {
				c.bcStats.Invalidated++
			}
			c.translate(slot, pc, gen)
		} else if len(slot.ins) > 0 {
			c.bcStats.Hits++
		}
		ins := slot.ins
		if len(ins) == 0 {
			// Negative-cached (or just found untranslatable): fall back
			// to the interpreter, which reproduces the exact event.
			if c.icount > start {
				c.bcStats.Instrs += c.icount - start
				return isa.Event{Kind: isa.EventRetired, PC: pc}
			}
			return c.Step()
		}
		if rem := limit - c.icount; rem < uint64(len(ins)) {
			ins = ins[:rem]
		}
		ev := c.execBlock(ins)
		if ev.Kind != isa.EventRetired || c.icount >= limit {
			c.bcStats.Instrs += c.icount - start
			return ev
		}
	}
}

// BlockStats implements isa.CPU.
func (c *CPU) BlockStats() isa.BlockStats { return c.bcStats }

// execBlock runs a translated block. StepBlock guarantees hooks and
// recorder are nil, so the control notifications Step makes are dead
// here and elided. The PC-register invariant matches single-step: at
// instruction i, c.regs[PC] already equals its pc (each retirement sets
// it to next), so read(PC) and fault PCs behave exactly as under Step.
func (c *CPU) execBlock(ins []blockInstr) isa.Event {
	for bi := range ins {
		in := &ins[bi].in
		pc := ins[bi].pc
		next := pc + InstrSize

		switch in.Op {
		case OpMovR:
			v := c.read(in.Rn)
			if in.Rd == PC {
				next = v
			} else {
				c.regs[in.Rd] = v
			}
		case OpMovW:
			c.regs[in.Rd] = uint32(uint16(in.Imm))
		case OpMovT:
			c.regs[in.Rd] = c.regs[in.Rd]&0xFFFF | uint32(uint16(in.Imm))<<16
		case OpAddR:
			c.regs[in.Rd] = c.read(in.Rn) + c.read(in.Rm)
		case OpAddI:
			c.regs[in.Rd] = c.read(in.Rn) + uint32(in.Imm)
		case OpSubR:
			c.regs[in.Rd] = c.read(in.Rn) - c.read(in.Rm)
		case OpSubI:
			c.regs[in.Rd] = c.read(in.Rn) - uint32(in.Imm)
		case OpAndI:
			c.regs[in.Rd] = c.read(in.Rn) & uint32(in.Imm)
		case OpOrrR:
			c.regs[in.Rd] = c.read(in.Rn) | c.read(in.Rm)
		case OpLslI:
			c.regs[in.Rd] = c.read(in.Rn) << (uint32(in.Imm) & 31)
		case OpLsrI:
			c.regs[in.Rd] = c.read(in.Rn) >> (uint32(in.Imm) & 31)

		case OpLdr:
			v, f := c.m.ReadU32(c.read(in.Rn) + uint32(in.Imm))
			if f != nil {
				return isa.FaultEvent(pc, f)
			}
			if in.Rd == PC {
				next = v
			} else {
				c.regs[in.Rd] = v
			}
		case OpStr:
			if f := c.m.WriteU32(c.read(in.Rn)+uint32(in.Imm), c.read(in.Rd)); f != nil {
				return isa.FaultEvent(pc, f)
			}
		case OpLdrb:
			v, f := c.m.ReadU8(c.read(in.Rn) + uint32(in.Imm))
			if f != nil {
				return isa.FaultEvent(pc, f)
			}
			c.regs[in.Rd] = uint32(v)
		case OpStrb:
			if f := c.m.WriteU8(c.read(in.Rn)+uint32(in.Imm), uint8(c.read(in.Rd))); f != nil {
				return isa.FaultEvent(pc, f)
			}

		case OpCmpR:
			c.setFlagsSub(c.read(in.Rd), c.read(in.Rn))
		case OpCmpI:
			c.setFlagsSub(c.read(in.Rd), uint32(in.Imm))
		case OpTstI:
			res := c.read(in.Rd) & uint32(in.Imm)
			c.fl.n = int32(res) < 0
			c.fl.z = res == 0

		case OpB:
			if c.cond(in.Cond) {
				next = pc + InstrSize + uint32(in.Rel)*InstrSize
			}
		case OpBL:
			tgt := pc + InstrSize + uint32(in.Rel)*InstrSize
			c.regs[LR] = pc + InstrSize
			next = tgt
		case OpBLX:
			tgt := c.read(in.Rd)
			c.regs[LR] = pc + InstrSize
			next = tgt
		case OpBX:
			next = c.read(in.Rd)

		case OpPush:
			count := uint32(bits.OnesCount16(in.RegList))
			base := c.regs[SP] - 4*count
			addr := base
			for i := 0; i < 16; i++ {
				if in.RegList&(1<<i) == 0 {
					continue
				}
				if f := c.m.WriteU32(addr, c.read(i)); f != nil {
					return isa.FaultEvent(pc, f)
				}
				addr += 4
			}
			c.regs[SP] = base
		case OpPop:
			addr := c.regs[SP]
			var newPC uint32
			hasPC := in.RegList&(1<<PC) != 0
			for i := 0; i < 16; i++ {
				if in.RegList&(1<<i) == 0 {
					continue
				}
				v, f := c.m.ReadU32(addr)
				if f != nil {
					return isa.FaultEvent(pc, f)
				}
				addr += 4
				if i == PC {
					newPC = v
				} else {
					c.regs[i] = v
				}
			}
			c.regs[SP] = addr
			if hasPC {
				next = newPC
			}

		case OpSvc:
			c.regs[PC] = next
			c.icount++
			return isa.Event{Kind: isa.EventSyscall, PC: next}

		default:
			return isa.IllegalEvent(pc)
		}

		c.regs[PC] = next
		c.icount++
	}
	return isa.Event{Kind: isa.EventRetired, PC: c.regs[PC]}
}
