package arms

import (
	"math/bits"

	"connlab/internal/isa"
	"connlab/internal/mem"
	"connlab/internal/telemetry"
)

// flags is the NZCV condition-flag set, updated by cmp/tst only.
type flags struct {
	n, z, c, v bool
}

// dcSize is the number of slots in the decoded-instruction cache
// (direct-mapped on the word-aligned PC).
const dcSize = 1024

// dcEntry is one decode-cache slot: the instruction decoded at pc while the
// memory layout generation was gen. gen 0 (the zero value) never matches a
// live Memory, whose generations start at 1.
type dcEntry struct {
	pc  uint32
	gen uint64
	in  Instr
}

// CPU is a simulated arms hardware thread.
type CPU struct {
	regs   [numRegs]uint32 // r15 (pc) lives here too
	fl     flags
	m      *mem.Memory
	hooks  isa.Hooks
	rec    *telemetry.ControlRecorder
	icount uint64

	// dcMisses counts decode-cache misses: a plain (non-atomic) field —
	// a CPU is stepped by one goroutine — bumped only on the miss path,
	// which already pays a full fetch+decode. Hits are derived by the
	// kernel (instructions retired minus misses), keeping the cache-hit
	// fast path free of bookkeeping.
	dcMisses uint64

	// dc caches decode results for instructions in non-writable segments,
	// keyed to mem.Memory.Gen() exactly like the x86s cache: while the
	// generation is unchanged a non-writable segment's bytes cannot
	// change, so a matching entry replays both the decode and the
	// execute-permission check. Writable (RWX) mappings are never cached.
	dc [dcSize]dcEntry

	// bc is the basic-block translation cache (see block.go), keyed to
	// the memory generation like dc; bcStats its monotonic counters.
	bc      [bcSize]bcEntry
	bcStats isa.BlockStats
}

var _ isa.CPU = (*CPU)(nil)

// New returns a CPU executing from m with all registers zero.
func New(m *mem.Memory) *CPU { return &CPU{m: m} }

// Arch implements isa.CPU.
func (c *CPU) Arch() isa.Arch { return isa.ArchARMS }

// Mem implements isa.CPU.
func (c *CPU) Mem() *mem.Memory { return c.m }

// PC implements isa.CPU.
func (c *CPU) PC() uint32 { return c.regs[PC] }

// SetPC implements isa.CPU.
func (c *CPU) SetPC(v uint32) { c.regs[PC] = v }

// SP implements isa.CPU.
func (c *CPU) SP() uint32 { return c.regs[SP] }

// SetSP implements isa.CPU.
func (c *CPU) SetSP(v uint32) { c.regs[SP] = v }

// Reg implements isa.CPU.
func (c *CPU) Reg(i int) uint32 {
	if i < 0 || i >= numRegs {
		panic(isa.RegOutOfRange(isa.ArchARMS, i))
	}
	return c.regs[i]
}

// SetReg implements isa.CPU.
func (c *CPU) SetReg(i int, v uint32) {
	if i < 0 || i >= numRegs {
		panic(isa.RegOutOfRange(isa.ArchARMS, i))
	}
	c.regs[i] = v
}

// NumRegs implements isa.CPU.
func (c *CPU) NumRegs() int { return numRegs }

// RegName implements isa.CPU.
func (c *CPU) RegName(i int) string { return RegName(i) }

// SetHooks implements isa.CPU.
func (c *CPU) SetHooks(h isa.Hooks) { c.hooks = h }

// SetRecorder implements isa.CPU.
func (c *CPU) SetRecorder(r *telemetry.ControlRecorder) { c.rec = r }

// InstrCount implements isa.CPU.
func (c *CPU) InstrCount() uint64 { return c.icount }

// DecodeCacheMisses implements isa.CPU.
func (c *CPU) DecodeCacheMisses() uint64 { return c.dcMisses }

// ResetState returns registers (pc included) and flags to their power-on
// (all zero) values, as if the CPU were freshly constructed. The
// instruction counter keeps running; callers consume deltas. The block
// cache is emptied (keeping the translated-instruction storage): a
// recycle bumps the generation anyway, and starting cold keeps the block
// counters a pure function of each run instead of depending on which
// previous image the CPU happened to execute.
func (c *CPU) ResetState() {
	c.regs = [numRegs]uint32{}
	c.fl = flags{}
	for i := range c.bc {
		c.bc[i].pc, c.bc[i].gen = 0, 0
		c.bc[i].ins = c.bc[i].ins[:0]
	}
}

// FlagWord packs the architectural flag state into one word (bit 0 n,
// bit 1 z, bit 2 c, bit 3 v). The assignment is arbitrary but stable;
// the differential lockstep harness compares it across executors.
func (c *CPU) FlagWord() uint32 {
	var w uint32
	if c.fl.n {
		w |= 1
	}
	if c.fl.z {
		w |= 2
	}
	if c.fl.c {
		w |= 4
	}
	if c.fl.v {
		w |= 8
	}
	return w
}

// read reads a source register; reading pc yields the address of the next
// instruction, a simplification of ARM's pc+8.
func (c *CPU) read(i int) uint32 {
	if i == PC {
		return c.regs[PC] + InstrSize
	}
	return c.regs[i]
}

// cond evaluates a branch condition against the flags.
func (c *CPU) cond(cc Cond) bool {
	switch cc {
	case CondAL:
		return true
	case CondEQ:
		return c.fl.z
	case CondNE:
		return !c.fl.z
	case CondLT:
		return c.fl.n != c.fl.v
	case CondGE:
		return c.fl.n == c.fl.v
	case CondGT:
		return !c.fl.z && c.fl.n == c.fl.v
	case CondLE:
		return c.fl.z || c.fl.n != c.fl.v
	case CondLO:
		return !c.fl.c
	case CondHS:
		return c.fl.c
	case CondMI:
		return c.fl.n
	case CondPL:
		return !c.fl.n
	default:
		return false
	}
}

// setFlagsSub sets NZCV for a-b (cmp semantics: C = no borrow).
func (c *CPU) setFlagsSub(a, b uint32) {
	res := a - b
	c.fl.n = int32(res) < 0
	c.fl.z = res == 0
	c.fl.c = a >= b
	c.fl.v = (a^b)&(a^res)&0x80000000 != 0
}

// control records a control transfer in the flight recorder and runs the
// installed hook. telemetry.Ctl* values mirror isa.ControlKind, so the
// kind byte passes straight through.
func (c *CPU) control(kind isa.ControlKind, from, to, ret uint32) *isa.Event {
	if c.rec != nil {
		c.rec.Record(uint8(kind), from, to, c.icount)
	}
	if c.hooks == nil {
		return nil
	}
	if err := c.hooks.OnControl(kind, from, to, ret); err != nil {
		return &isa.Event{Kind: isa.EventCFIViolation, PC: from, Reason: err.Error()}
	}
	return nil
}

// Step implements isa.CPU.
func (c *CPU) Step() isa.Event {
	pc := c.regs[PC]
	gen := c.m.Gen()
	slot := &c.dc[(pc>>2)&(dcSize-1)]
	var in Instr
	if slot.pc == pc && slot.gen == gen {
		in = slot.in
	} else {
		c.dcMisses++
		// Fixed-width fast path: one combined segment/permission/bounds
		// check, no window slice. A short fetch (segment ends mid-word) is
		// an illegal instruction, exactly like a truncated Fetch window.
		word, perm, short, f := c.m.Fetch32(pc)
		if f != nil {
			return isa.FaultEvent(pc, f)
		}
		if short {
			return isa.IllegalEvent(pc)
		}
		var err error
		in, err = Decode(word)
		if err != nil {
			return isa.IllegalEvent(pc)
		}
		if perm&mem.PermWrite == 0 {
			*slot = dcEntry{pc: pc, gen: gen, in: in}
		}
	}
	next := pc + InstrSize
	fault := func(f *mem.Fault) isa.Event { return isa.FaultEvent(pc, f) }

	switch in.Op {
	case OpMovR:
		v := c.read(in.Rn)
		if in.Rd == PC {
			if ev := c.control(isa.ControlJump, pc, v, 0); ev != nil {
				return *ev
			}
			next = v
		} else {
			c.regs[in.Rd] = v
		}
	case OpMovW:
		c.regs[in.Rd] = uint32(uint16(in.Imm))
	case OpMovT:
		c.regs[in.Rd] = c.regs[in.Rd]&0xFFFF | uint32(uint16(in.Imm))<<16
	case OpAddR:
		c.regs[in.Rd] = c.read(in.Rn) + c.read(in.Rm)
	case OpAddI:
		c.regs[in.Rd] = c.read(in.Rn) + uint32(in.Imm)
	case OpSubR:
		c.regs[in.Rd] = c.read(in.Rn) - c.read(in.Rm)
	case OpSubI:
		c.regs[in.Rd] = c.read(in.Rn) - uint32(in.Imm)
	case OpAndI:
		c.regs[in.Rd] = c.read(in.Rn) & uint32(in.Imm)
	case OpOrrR:
		c.regs[in.Rd] = c.read(in.Rn) | c.read(in.Rm)
	case OpLslI:
		c.regs[in.Rd] = c.read(in.Rn) << (uint32(in.Imm) & 31)
	case OpLsrI:
		c.regs[in.Rd] = c.read(in.Rn) >> (uint32(in.Imm) & 31)

	case OpLdr:
		v, f := c.m.ReadU32(c.read(in.Rn) + uint32(in.Imm))
		if f != nil {
			return fault(f)
		}
		if in.Rd == PC {
			if ev := c.control(isa.ControlJump, pc, v, 0); ev != nil {
				return *ev
			}
			next = v
		} else {
			c.regs[in.Rd] = v
		}
	case OpStr:
		if f := c.m.WriteU32(c.read(in.Rn)+uint32(in.Imm), c.read(in.Rd)); f != nil {
			return fault(f)
		}
	case OpLdrb:
		v, f := c.m.ReadU8(c.read(in.Rn) + uint32(in.Imm))
		if f != nil {
			return fault(f)
		}
		c.regs[in.Rd] = uint32(v)
	case OpStrb:
		if f := c.m.WriteU8(c.read(in.Rn)+uint32(in.Imm), uint8(c.read(in.Rd))); f != nil {
			return fault(f)
		}

	case OpCmpR:
		c.setFlagsSub(c.read(in.Rd), c.read(in.Rn))
	case OpCmpI:
		c.setFlagsSub(c.read(in.Rd), uint32(in.Imm))
	case OpTstI:
		res := c.read(in.Rd) & uint32(in.Imm)
		c.fl.n = int32(res) < 0
		c.fl.z = res == 0

	case OpB:
		if c.cond(in.Cond) {
			next = pc + InstrSize + uint32(in.Rel)*InstrSize
		}
	case OpBL:
		tgt := pc + InstrSize + uint32(in.Rel)*InstrSize
		ret := pc + InstrSize
		if ev := c.control(isa.ControlCall, pc, tgt, ret); ev != nil {
			return *ev
		}
		c.regs[LR] = ret
		next = tgt
	case OpBLX:
		tgt := c.read(in.Rd)
		ret := pc + InstrSize
		if ev := c.control(isa.ControlCall, pc, tgt, ret); ev != nil {
			return *ev
		}
		c.regs[LR] = ret
		next = tgt
	case OpBX:
		tgt := c.read(in.Rd)
		kind := isa.ControlJump
		if in.Rd == LR {
			kind = isa.ControlReturn
		}
		if ev := c.control(kind, pc, tgt, 0); ev != nil {
			return *ev
		}
		next = tgt

	case OpPush:
		count := uint32(bits.OnesCount16(in.RegList))
		base := c.regs[SP] - 4*count
		addr := base
		for i := 0; i < 16; i++ {
			if in.RegList&(1<<i) == 0 {
				continue
			}
			if f := c.m.WriteU32(addr, c.read(i)); f != nil {
				return fault(f)
			}
			addr += 4
		}
		c.regs[SP] = base
	case OpPop:
		addr := c.regs[SP]
		var newPC uint32
		hasPC := in.RegList&(1<<PC) != 0
		for i := 0; i < 16; i++ {
			if in.RegList&(1<<i) == 0 {
				continue
			}
			v, f := c.m.ReadU32(addr)
			if f != nil {
				return fault(f)
			}
			addr += 4
			if i == PC {
				newPC = v
			} else {
				c.regs[i] = v
			}
		}
		c.regs[SP] = addr
		if hasPC {
			if ev := c.control(isa.ControlReturn, pc, newPC, 0); ev != nil {
				return *ev
			}
			next = newPC
		}

	case OpSvc:
		if c.rec != nil {
			c.rec.Record(telemetry.CtlSyscall, pc, c.regs[R7], c.icount)
		}
		c.regs[PC] = next
		c.icount++
		return isa.Event{Kind: isa.EventSyscall, PC: next}

	default:
		return isa.IllegalEvent(pc)
	}

	c.regs[PC] = next
	c.icount++
	return isa.Event{Kind: isa.EventRetired, PC: next}
}

// Disasm renders arms instructions for the debugger and gadget finder.
type Disasm struct{}

var _ isa.Disassembler = Disasm{}

// DisasmAt implements isa.Disassembler.
func (Disasm) DisasmAt(m *mem.Memory, addr uint32) (string, uint32, error) {
	w, f := m.ReadU32(addr)
	if f != nil {
		return "", 0, f
	}
	in, err := Decode(w)
	if err != nil {
		return "", 0, err
	}
	return in.String(), InstrSize, nil
}
