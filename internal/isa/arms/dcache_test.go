package arms

import (
	"testing"

	"connlab/internal/isa"
	"connlab/internal/mem"
)

// movR0 assembles movw r0, #v — the decode-cache probe instruction.
func movR0(t *testing.T, v uint16) []byte {
	t.Helper()
	code, err := NewAsm().MovW(R0, v).Assemble()
	if err != nil {
		t.Fatal(err)
	}
	return code.Bytes
}

// stepRetired single-steps and fails the test on any non-retired event.
func stepRetired(t *testing.T, c *CPU) {
	t.Helper()
	if ev := c.Step(); ev.Kind != isa.EventRetired {
		t.Fatalf("step: %+v", ev)
	}
}

// TestDecodeCacheInvalidatedBySetPerm mirrors the x86s test: after the
// legitimate patch sequence (SetPerm RW, write, SetPerm RX) the CPU must
// decode the new word, not replay the cached instruction.
func TestDecodeCacheInvalidatedBySetPerm(t *testing.T) {
	m := mem.New()
	text, err := m.Map("text", 0x1000, 0x1000, mem.PermRX)
	if err != nil {
		t.Fatal(err)
	}
	copy(text.Data, movR0(t, 1))
	c := New(m)

	for i := 0; i < 2; i++ {
		c.SetPC(0x1000)
		stepRetired(t, c)
		if got := c.Reg(R0); got != 1 {
			t.Fatalf("r0 = %d, want 1 (iteration %d)", got, i)
		}
	}

	if err := m.SetPerm("text", mem.PermRW); err != nil {
		t.Fatal(err)
	}
	if f := m.WriteBytes(0x1000, movR0(t, 2)); f != nil {
		t.Fatal(f)
	}
	if err := m.SetPerm("text", mem.PermRX); err != nil {
		t.Fatal(err)
	}

	c.SetPC(0x1000)
	stepRetired(t, c)
	if got := c.Reg(R0); got != 2 {
		t.Errorf("r0 after patch = %d, want 2 (stale decode cache)", got)
	}
}

// TestDecodeCacheInvalidatedByUnmap: a cached instruction must not execute
// from a segment that has since been unmapped.
func TestDecodeCacheInvalidatedByUnmap(t *testing.T) {
	m := mem.New()
	text, err := m.Map("text", 0x1000, 0x1000, mem.PermRX)
	if err != nil {
		t.Fatal(err)
	}
	copy(text.Data, movR0(t, 1))
	c := New(m)
	c.SetPC(0x1000)
	stepRetired(t, c)

	m.Unmap("text")
	c.SetPC(0x1000)
	ev := c.Step()
	if ev.Kind != isa.EventFault || ev.Fault == nil || ev.Fault.Kind != mem.FaultUnmapped {
		t.Errorf("step after unmap = %+v, want unmapped fault", ev)
	}
}

// TestDecodeCacheSkipsWritableSegments: self-modifying code in an RWX
// mapping must see every store immediately.
func TestDecodeCacheSkipsWritableSegments(t *testing.T) {
	m := mem.New()
	text, err := m.Map("text", 0x1000, 0x1000, mem.PermRWX)
	if err != nil {
		t.Fatal(err)
	}
	copy(text.Data, movR0(t, 1))
	c := New(m)
	c.SetPC(0x1000)
	stepRetired(t, c)
	if got := c.Reg(R0); got != 1 {
		t.Fatalf("r0 = %d, want 1", got)
	}

	if f := m.WriteBytes(0x1000, movR0(t, 2)); f != nil {
		t.Fatal(f)
	}
	c.SetPC(0x1000)
	stepRetired(t, c)
	if got := c.Reg(R0); got != 2 {
		t.Errorf("r0 after self-modify = %d, want 2 (writable segment was cached)", got)
	}
}

// TestStepZeroAllocs asserts the arms hot loop allocates nothing per
// instruction once the decode cache is warm.
func TestStepZeroAllocs(t *testing.T) {
	m := mem.New()
	text, err := m.Map("text", 0x1000, 0x1000, mem.PermRX)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Map("data", 0x4000, 0x1000, mem.PermRW); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Map("stack", 0x8000, 0x1000, mem.PermRW); err != nil {
		t.Fatal(err)
	}
	a := NewAsm()
	a.Label("loop").
		Ldr(R0, R4, 0).
		AddI(R0, R0, 1).
		Str(R0, R4, 0).
		Push(R0, R1).
		Pop(R0, R1).
		BAlways("loop")
	code, err := a.Assemble()
	if err != nil {
		t.Fatal(err)
	}
	copy(text.Data, code.Bytes)
	c := New(m)
	c.SetPC(0x1000)
	c.SetSP(0x8F00)
	c.SetReg(R4, 0x4000)
	for i := 0; i < 64; i++ {
		stepRetired(t, c)
	}
	allocs := testing.AllocsPerRun(1000, func() {
		if ev := c.Step(); ev.Kind != isa.EventRetired {
			t.Fatalf("step: %+v", ev)
		}
	})
	if allocs != 0 {
		t.Errorf("Step allocates %.1f objects per instruction, want 0", allocs)
	}
}
