// Package isatest is the differential lockstep harness pinning the
// basic-block executors (isa.CPU.StepBlock) to the single-step
// interpreters they were specialized from. Two CPUs run identically
// constructed worlds: the subject advances through block dispatch, the
// reference single-steps the same number of retirements, and after every
// dispatch the harness compares the full architectural state — program
// counter, every register, the packed flag word, instruction counts, the
// terminal event, and the bytes of every memory range the execution
// could have written (per-segment dirty watermarks). Any divergence —
// a stale translation, a flag computed differently, a fault attributed
// to the wrong PC — fails with the exact dispatch it first appeared in.
//
// The harness is driven two ways: seeded random program generators (see
// gen.go) covering straight-line and branchy code far outside what the
// victim firmware exercises, and the recorded victim images themselves
// (see victim_test.go), where whole exploit transcripts are replayed
// under both executors via kernel.Config.SingleStep.
package isatest

import (
	"bytes"
	"testing"

	"connlab/internal/isa"
	"connlab/internal/mem"
)

// flagser is the flag-word accessor both lab CPUs export.
type flagser interface{ FlagWord() uint32 }

// NoCap disables the per-dispatch instruction cap.
const NoCap = ^uint64(0)

// DefaultCaps is the dispatch-cap cycle Lockstep uses when the caller
// passes none: mostly unbounded blocks with periodic 1-, 2- and
// 3-instruction truncations, so state is also compared at sub-block
// granularity (a truncated dispatch exits mid-block through the same
// retirement path a budget expiry takes in the kernel).
var DefaultCaps = []uint64{NoCap, NoCap, NoCap, 1, NoCap, 2, NoCap, 3}

// Lockstep drives blk through block dispatch and ref through single-step
// until maxInstrs instructions retire or a terminal (fault) event stops
// both, comparing full architectural state after every dispatch. The two
// CPUs must have been constructed identically over identically built
// (not Cloned — dirty watermarks must match) memories. caps cycles
// through per-dispatch instruction limits (nil uses DefaultCaps). It
// returns the number of instructions retired.
func Lockstep(t testing.TB, ref, blk isa.CPU, maxInstrs uint64, caps []uint64) uint64 {
	t.Helper()
	if len(caps) == 0 {
		caps = DefaultCaps
	}
	var retired uint64
	for dispatch := 0; retired < maxInstrs; dispatch++ {
		limit := caps[dispatch%len(caps)]
		if rem := maxInstrs - retired; limit > rem {
			limit = rem
		}
		before := blk.InstrCount()
		evB := blk.StepBlock(limit)
		k := blk.InstrCount() - before
		retired += k

		// The reference retires the same k instructions; a fault (which
		// retires nothing) takes one extra step to surface.
		steps := k
		if evB.Kind == isa.EventFault || evB.Kind == isa.EventCFIViolation {
			steps = k + 1
		}
		if steps == 0 {
			t.Fatalf("dispatch %d: StepBlock retired nothing with non-fault event %+v", dispatch, evB)
		}
		var evR isa.Event
		for j := uint64(0); j < steps; j++ {
			evR = ref.Step()
			if j < steps-1 && evR.Kind != isa.EventRetired {
				t.Fatalf("dispatch %d: reference stopped after %d/%d steps with %+v (block event %+v)",
					dispatch, j+1, steps, evR, evB)
			}
		}

		compareEvents(t, dispatch, evR, evB)
		CompareState(t, ref, blk)
		compareDirty(t, ref.Mem(), blk.Mem())
		if t.Failed() {
			t.Fatalf("dispatch %d: executors diverged at pc %#08x after %d instructions",
				dispatch, blk.PC(), retired)
		}
		if evB.Kind == isa.EventFault || evB.Kind == isa.EventCFIViolation {
			break
		}
		// Syscalls are compared like any other event and execution
		// continues at the next PC; the harness services nothing, which
		// keeps both worlds identical by construction.
	}
	CompareMem(t, ref.Mem(), blk.Mem())
	return retired
}

// compareEvents requires the terminal events of a dispatch to agree in
// kind, PC, fault detail and the illegal flag.
func compareEvents(t testing.TB, dispatch int, evR, evB isa.Event) {
	t.Helper()
	if evR.Kind != evB.Kind || evR.PC != evB.PC || evR.Illegal != evB.Illegal || evR.Reason != evB.Reason {
		t.Errorf("dispatch %d: event mismatch: single-step %+v, block %+v", dispatch, evR, evB)
		return
	}
	switch {
	case (evR.Fault == nil) != (evB.Fault == nil):
		t.Errorf("dispatch %d: fault presence mismatch: single-step %+v, block %+v", dispatch, evR, evB)
	case evR.Fault != nil && *evR.Fault != *evB.Fault:
		t.Errorf("dispatch %d: fault detail mismatch: single-step %+v, block %+v", dispatch, *evR.Fault, *evB.Fault)
	}
}

// CompareState requires the full architectural register state of the two
// CPUs to agree: PC, every general-purpose register, the packed flag
// word, and the retired-instruction count.
func CompareState(t testing.TB, ref, blk isa.CPU) {
	t.Helper()
	if ref.PC() != blk.PC() {
		t.Errorf("pc: single-step %#08x, block %#08x", ref.PC(), blk.PC())
	}
	for i := 0; i < ref.NumRegs(); i++ {
		if a, b := ref.Reg(i), blk.Reg(i); a != b {
			t.Errorf("reg %s: single-step %#08x, block %#08x", ref.RegName(i), a, b)
		}
	}
	if a, b := ref.(flagser).FlagWord(), blk.(flagser).FlagWord(); a != b {
		t.Errorf("flags: single-step %#04b, block %#04b", a, b)
	}
	if a, b := ref.InstrCount(), blk.InstrCount(); a != b {
		t.Errorf("instructions retired: single-step %d, block %d", a, b)
	}
}

// compareDirty requires the dirty watermarks and the bytes within them
// to agree for every segment — the cheap per-dispatch memory check.
func compareDirty(t testing.TB, ref, blk *mem.Memory) {
	t.Helper()
	rs, bs := ref.Segments(), blk.Segments()
	if len(rs) != len(bs) {
		t.Errorf("segment count: single-step %d, block %d", len(rs), len(bs))
		return
	}
	for i, r := range rs {
		b := bs[i]
		rlo, rhi := r.DirtyRange()
		blo, bhi := b.DirtyRange()
		if rlo != blo || rhi != bhi {
			t.Errorf("segment %s dirty range: single-step [%#x,%#x), block [%#x,%#x)",
				r.Name, rlo, rhi, blo, bhi)
			continue
		}
		if rhi > rlo && !bytes.Equal(r.Data[rlo:rhi], b.Data[blo:bhi]) {
			t.Errorf("segment %s: dirty bytes diverge at offset %#x",
				r.Name, rlo+uint32(firstDiff(r.Data[rlo:rhi], b.Data[blo:bhi])))
		}
	}
}

// CompareMem requires the two address spaces to agree completely:
// segment geometry, permissions, and every byte.
func CompareMem(t testing.TB, ref, blk *mem.Memory) {
	t.Helper()
	rs, bs := ref.Segments(), blk.Segments()
	if len(rs) != len(bs) {
		t.Errorf("segment count: single-step %d, block %d", len(rs), len(bs))
		return
	}
	for i, r := range rs {
		b := bs[i]
		if r.Name != b.Name || r.Base != b.Base || r.Perm != b.Perm || r.Size() != b.Size() {
			t.Errorf("segment %d: single-step %s@%#x+%#x %v, block %s@%#x+%#x %v",
				i, r.Name, r.Base, r.Size(), r.Perm, b.Name, b.Base, b.Size(), b.Perm)
			continue
		}
		if !bytes.Equal(r.Data, b.Data) {
			t.Errorf("segment %s: bytes diverge at offset %#x", r.Name, firstDiff(r.Data, b.Data))
		}
	}
}

// firstDiff returns the index of the first differing byte (len if equal).
func firstDiff(a, b []byte) int {
	for i := range a {
		if i >= len(b) || a[i] != b[i] {
			return i
		}
	}
	return len(a)
}
