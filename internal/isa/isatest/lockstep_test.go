package isatest

import (
	"math/rand"
	"testing"

	"connlab/internal/isa"
	"connlab/internal/isa/arms"
	"connlab/internal/isa/x86s"
	"connlab/internal/mem"
)

// World layout shared by both executors of a differential pair. The
// sentinel is an unmapped address planted where the terminal control
// transfer lands (x86s: the return slot at the initial ESP; arms: LR),
// so programs that fall off the end fault identically on both sides.
const (
	codeBase  = 0x08048000
	dataBase  = 0x00200000
	dataSize  = 0x1000
	stackBase = 0x7FF00000
	stackSize = 0x4000
	spOff     = 0x3F00
	sentinel  = 0xEE000000
)

// buildX86 constructs one x86s world over a fresh address space. Both
// members of a differential pair call it with identical arguments, which
// makes the memories byte- and watermark-identical by construction (a
// Clone would reset the dirty watermarks and break the per-dispatch
// dirty-range comparison).
func buildX86(t testing.TB, code []byte, init []uint32) *x86s.CPU {
	t.Helper()
	m := mem.New()
	text, err := m.Map("text", codeBase, uint32(len(code)), mem.PermRX)
	if err != nil {
		t.Fatalf("map text: %v", err)
	}
	text.Populate(0, code)
	if _, err := m.Map("data", dataBase, dataSize, mem.PermRW); err != nil {
		t.Fatalf("map data: %v", err)
	}
	if _, err := m.Map("stack", stackBase, stackSize, mem.PermRW); err != nil {
		t.Fatalf("map stack: %v", err)
	}
	c := x86s.New(m)
	c.SetPC(codeBase)
	for i, v := range init {
		c.SetReg(i, v)
	}
	c.SetReg(x86s.EBX, dataBase)
	c.SetSP(stackBase + spOff)
	if f := m.WriteU32(c.SP(), sentinel); f != nil {
		t.Fatalf("plant sentinel: %v", f)
	}
	return c
}

// buildARMS is buildX86 for the arms world.
func buildARMS(t testing.TB, code []byte, init []uint32) *arms.CPU {
	t.Helper()
	m := mem.New()
	text, err := m.Map("text", codeBase, uint32(len(code)), mem.PermRX)
	if err != nil {
		t.Fatalf("map text: %v", err)
	}
	text.Populate(0, code)
	if _, err := m.Map("data", dataBase, dataSize, mem.PermRW); err != nil {
		t.Fatalf("map data: %v", err)
	}
	if _, err := m.Map("stack", stackBase, stackSize, mem.PermRW); err != nil {
		t.Fatalf("map stack: %v", err)
	}
	c := arms.New(m)
	c.SetPC(codeBase)
	for i, v := range init {
		c.SetReg(i, v)
	}
	c.SetReg(arms.R10, dataBase)
	c.SetReg(arms.LR, sentinel)
	c.SetSP(stackBase + spOff)
	return c
}

// lockstepTarget is the number of randomized instructions each ISA must
// retire under the differential harness. The ISSUE floor is 10⁶ across
// both ISAs; each retires well past half of that. Short mode (the -race
// CI leg) trims the target, not the per-program depth.
func lockstepTarget(t *testing.T) uint64 {
	if testing.Short() {
		return 100_000
	}
	return 600_000
}

// maxPrograms bounds the generation loop if programs keep faulting early.
const maxPrograms = 400

// perProgram is the instruction budget of one generated program; loops
// run until it expires, early faults terminate sooner.
const perProgram = 20_000

func TestLockstepRandomX86S(t *testing.T) {
	target := lockstepTarget(t)
	rng := rand.New(rand.NewSource(0x6001))
	var total, blockInstrs uint64
	for i := 0; i < maxPrograms && total < target; i++ {
		code, err := GenX86(rng, 200)
		if err != nil {
			t.Fatalf("program %d: %v", i, err)
		}
		var init []uint32
		for r := 0; r < 8; r++ {
			init = append(init, rng.Uint32())
		}
		ref := buildX86(t, code, init)
		blk := buildX86(t, code, init)
		total += Lockstep(t, ref, blk, perProgram, nil)
		blockInstrs += blk.BlockStats().Instrs
	}
	if total < target {
		t.Fatalf("retired %d randomized instructions, want >= %d", total, target)
	}
	if blockInstrs == 0 {
		t.Fatalf("block dispatch never engaged (%d instructions all single-stepped)", total)
	}
	t.Logf("x86s: %d instructions retired, %d inside blocks", total, blockInstrs)
}

func TestLockstepRandomARMS(t *testing.T) {
	target := lockstepTarget(t)
	rng := rand.New(rand.NewSource(0x6002))
	var total, blockInstrs uint64
	for i := 0; i < maxPrograms && total < target; i++ {
		code, err := GenARMS(rng, 200)
		if err != nil {
			t.Fatalf("program %d: %v", i, err)
		}
		var init []uint32
		for r := 0; r < 13; r++ { // r0..r12; sp/lr/pc set by the builder
			init = append(init, rng.Uint32())
		}
		ref := buildARMS(t, code, init)
		blk := buildARMS(t, code, init)
		total += Lockstep(t, ref, blk, perProgram, nil)
		blockInstrs += blk.BlockStats().Instrs
	}
	if total < target {
		t.Fatalf("retired %d randomized instructions, want >= %d", total, target)
	}
	if blockInstrs == 0 {
		t.Fatalf("block dispatch never engaged (%d instructions all single-stepped)", total)
	}
	t.Logf("arms: %d instructions retired, %d inside blocks", total, blockInstrs)
}

// TestLockstepCapOne runs a pair entirely at cap 1 — every dispatch is a
// single-instruction block truncation, the finest comparison granularity
// the harness supports.
func TestLockstepCapOne(t *testing.T) {
	rng := rand.New(rand.NewSource(0x6003))
	code, err := GenX86(rng, 120)
	if err != nil {
		t.Fatal(err)
	}
	var init []uint32
	for r := 0; r < 8; r++ {
		init = append(init, rng.Uint32())
	}
	ref := buildX86(t, code, init)
	blk := buildX86(t, code, init)
	Lockstep(t, ref, blk, 5_000, []uint64{1})

	rng = rand.New(rand.NewSource(0x6004))
	acode, err := GenARMS(rng, 120)
	if err != nil {
		t.Fatal(err)
	}
	init = init[:0]
	for r := 0; r < 13; r++ {
		init = append(init, rng.Uint32())
	}
	aref := buildARMS(t, acode, init)
	ablk := buildARMS(t, acode, init)
	Lockstep(t, aref, ablk, 5_000, []uint64{1})
}

// TestLockstepSelfModifyInvalidation pins the W⊕X invalidation path at
// the harness level: run a loop hot under block dispatch, flip the text
// segment writable, patch an instruction, flip it back, and require both
// executors to observe the new semantics (the subject must invalidate
// its cached translation via the generation fence, not replay it).
func TestLockstepSelfModifyInvalidation(t *testing.T) {
	build := func() *x86s.CPU {
		a := x86s.NewAsm()
		a.Label("loop").
			AddRI(x86s.EAX, 1).
			MovMR(x86s.EBX, 0, x86s.EAX).
			Jmp("loop")
		code, err := a.Assemble()
		if err != nil {
			t.Fatal(err)
		}
		return buildX86(t, code.Bytes, nil)
	}
	ref, blk := build(), build()
	Lockstep(t, ref, blk, 999, nil) // prime the translation cache hot

	// add eax,1 (83 C0 01) -> add eax,5 on both worlds.
	for _, c := range []*x86s.CPU{ref, blk} {
		m := c.Mem()
		if err := m.SetPerm("text", mem.PermRW); err != nil {
			t.Fatal(err)
		}
		if f := m.WriteBytes(codeBase+2, []byte{5}); f != nil {
			t.Fatalf("patch: %v", f)
		}
		if err := m.SetPerm("text", mem.PermRX); err != nil {
			t.Fatal(err)
		}
	}
	before := ref.Reg(x86s.EAX)
	Lockstep(t, ref, blk, 300, nil)
	// 300 more instructions = 100 loop iterations at stride 5.
	if got := ref.Reg(x86s.EAX) - before; got != 500 {
		t.Fatalf("eax advanced by %d after patch, want 500 (stale translation replayed?)", got)
	}
	if inv := blk.BlockStats().Invalidated; inv == 0 {
		t.Fatalf("no block invalidation recorded across the patch")
	}
}

// TestLockstepEventStream spot-checks that the harness itself notices
// syscall and fault events symmetrically: a program that raises int 0x80
// then loads through an unmapped pointer must produce the same event
// stream from both executors (the Lockstep call fails otherwise).
func TestLockstepEventStream(t *testing.T) {
	a := x86s.NewAsm()
	a.MovRI(x86s.EAX, 1).
		IntN(0x80).
		MovRI(x86s.ESI, 0x00000044). // unmapped
		MovRM(x86s.EDX, x86s.ESI, 0)
	code, err := a.Assemble()
	if err != nil {
		t.Fatal(err)
	}
	ref := buildX86(t, code.Bytes, nil)
	blk := buildX86(t, code.Bytes, nil)
	retired := Lockstep(t, ref, blk, 100, nil)
	if retired != 3 {
		t.Fatalf("retired %d instructions, want 3 (mov, int, mov; load faults)", retired)
	}

	b := arms.NewAsm()
	b.MovImm32(arms.R7, 1).
		Svc(0).
		MovImm32(arms.R4, 0x00000044).
		Ldr(arms.R0, arms.R4, 0)
	acode, err := b.Assemble()
	if err != nil {
		t.Fatal(err)
	}
	aref := buildARMS(t, acode.Bytes, nil)
	ablk := buildARMS(t, acode.Bytes, nil)
	retired = Lockstep(t, aref, ablk, 100, nil)
	if retired != 5 {
		t.Fatalf("retired %d instructions, want 5 (movw/movt, svc, movw/movt; ldr faults)", retired)
	}
}

var _ isa.CPU = (*x86s.CPU)(nil)
