package isatest

import (
	"fmt"
	"math/rand"
	"sort"

	"connlab/internal/isa/arms"
	"connlab/internal/isa/x86s"
)

// pickLabels chooses random label positions in [0, n) and returns the
// position→name map plus a sorted name list (sorted so that a given seed
// yields the same program on every run — map iteration order is not
// deterministic).
func pickLabels(rng *rand.Rand, n, count int) (map[int]string, []string) {
	labelAt := make(map[int]string, count)
	for i := 0; i < count; i++ {
		labelAt[rng.Intn(n)] = "" // positions; duplicates collapse
	}
	labels := make([]string, 0, len(labelAt))
	for pos := range labelAt {
		name := fmt.Sprintf("L%d", pos)
		labelAt[pos] = name
		labels = append(labels, name)
	}
	sort.Strings(labels)
	return labelAt, labels
}

// The generators below build seeded random programs through the same Asm
// builders the victim images use, so every emitted byte sequence is a
// valid encoding the decoder accepts. Programs mix straight-line ALU and
// memory traffic with labels, conditional/unconditional branches and
// calls into small leaf helpers, which exercises every block-ender and
// keeps the block cache churning (backward branches form loops that run
// until the harness's instruction budget expires).
//
// Conventions shared with the world builders in lockstep_test.go:
//
//   - x86s: EBX holds the scratch data base and is never written; memory
//     operands are [EBX+disp] with disp inside the data segment. Byte
//     registers aliasing EBX (bl, bh) are excluded for the same reason.
//     The main body ends in RET, which pops the unmapped sentinel the
//     builder planted at the initial ESP — a deterministic terminal
//     fault both executors must report identically.
//   - arms: R10 holds the scratch data base and is never written; the
//     main body ends in BX LR (LR starts at the unmapped sentinel, so a
//     run that never executed a BL terminates there).
//
// Stack discipline: pushes and pops are emitted as atomic pairs within
// one generation slot, so no branch target can land between a push and
// its pop and SP never drifts.

// genHelpers is the number of callable leaf helpers appended to a
// generated program.
const genHelpers = 3

// GenX86 returns a seeded random x86s program of roughly n instructions.
func GenX86(rng *rand.Rand, n int) ([]byte, error) {
	a := x86s.NewAsm()
	regs := []int{x86s.EAX, x86s.ECX, x86s.EDX, x86s.ESI, x86s.EDI, x86s.EBP}
	// Byte registers: al, cl, dl, ah, ch, dh — never bl/bh (alias EBX).
	regs8 := []int{0, 1, 2, 4, 5, 6}
	conds := []x86s.Cond{
		x86s.CondO, x86s.CondNO, x86s.CondB, x86s.CondAE, x86s.CondE,
		x86s.CondNE, x86s.CondBE, x86s.CondA, x86s.CondS, x86s.CondNS,
		x86s.CondL, x86s.CondGE, x86s.CondLE, x86s.CondG,
	}
	alus := []x86s.Alu{x86s.AluAdd, x86s.AluOr, x86s.AluAnd, x86s.AluSub, x86s.AluXor, x86s.AluCmp}

	labelAt, labels := pickLabels(rng, n, n/8+2)
	reg := func() int { return regs[rng.Intn(len(regs))] }
	disp := func() int32 { return int32(rng.Intn(0xE00)) }
	label := func() string { return labels[rng.Intn(len(labels))] }

	for i := 0; i < n; i++ {
		if name, ok := labelAt[i]; ok {
			a.Label(name)
		}
		switch r := rng.Intn(100); {
		case r < 10:
			a.MovRI(reg(), rng.Uint32())
		case r < 16:
			a.MovRR(reg(), reg())
		case r < 23:
			a.MovRM(reg(), x86s.EBX, disp())
		case r < 30:
			a.MovMR(x86s.EBX, disp(), reg())
		case r < 33:
			a.MovMI(x86s.EBX, disp(), rng.Uint32())
		case r < 35:
			a.MovMI8(x86s.EBX, disp(), uint8(rng.Uint32()))
		case r < 37:
			a.MovMR8(x86s.EBX, disp(), regs8[rng.Intn(len(regs8))])
		case r < 39:
			a.MovRM8(regs8[rng.Intn(len(regs8))], x86s.EBX, disp())
		case r < 41:
			a.Movzx8M(reg(), x86s.EBX, disp())
		case r < 43:
			a.Movzx8R(reg(), regs8[rng.Intn(len(regs8))])
		case r < 46:
			a.Lea(reg(), x86s.EBX, disp())
		case r < 56:
			a.AluRR(alus[rng.Intn(len(alus))], reg(), reg())
		case r < 64:
			a.AluRI(alus[rng.Intn(len(alus))], reg(), int32(rng.Uint32()))
		case r < 67:
			a.TestRR(reg(), reg())
		case r < 69:
			a.IncR(reg())
		case r < 71:
			a.DecR(reg())
		case r < 73:
			a.ShlRI(reg(), uint8(1+rng.Intn(31)))
		case r < 75:
			a.ShrRI(reg(), uint8(1+rng.Intn(31)))
		case r < 78:
			a.PushR(reg())
			a.PopR(reg())
		case r < 80:
			a.PushI(rng.Uint32())
			a.PopR(reg())
		case r < 88:
			a.Jcc(conds[rng.Intn(len(conds))], label())
		case r < 91:
			a.Jmp(label())
		case r < 94:
			a.CallLabel(fmt.Sprintf("F%d", rng.Intn(genHelpers)))
		default:
			a.Nop()
		}
	}
	a.MovRI(x86s.EAX, 0)
	a.Ret()
	for h := 0; h < genHelpers; h++ {
		a.Label(fmt.Sprintf("F%d", h))
		for j, k := 0, 2+rng.Intn(4); j < k; j++ {
			switch rng.Intn(3) {
			case 0:
				a.AluRR(alus[rng.Intn(len(alus))], reg(), reg())
			case 1:
				a.MovRM(reg(), x86s.EBX, disp())
			default:
				a.IncR(reg())
			}
		}
		a.Ret()
	}
	code, err := a.Assemble()
	return code.Bytes, err
}

// GenARMS returns a seeded random arms program of roughly n instructions.
func GenARMS(rng *rand.Rand, n int) ([]byte, error) {
	a := arms.NewAsm()
	regs := []int{arms.R0, arms.R1, arms.R2, arms.R3, arms.R4, arms.R5, arms.R6, arms.R8}
	conds := []arms.Cond{
		arms.CondAL, arms.CondEQ, arms.CondNE, arms.CondLT,
		arms.CondGE, arms.CondGT, arms.CondLE,
	}

	labelAt, labels := pickLabels(rng, n, n/8+2)
	reg := func() int { return regs[rng.Intn(len(regs))] }
	off := func() int32 { return int32(rng.Intn(0xE00)) }
	label := func() string { return labels[rng.Intn(len(labels))] }

	for i := 0; i < n; i++ {
		if name, ok := labelAt[i]; ok {
			a.Label(name)
		}
		switch r := rng.Intn(100); {
		case r < 8:
			a.MovImm32(reg(), rng.Uint32())
		case r < 13:
			a.MovW(reg(), uint16(rng.Uint32()))
		case r < 17:
			a.MovT(reg(), uint16(rng.Uint32()))
		case r < 23:
			a.MovR(reg(), reg())
		case r < 30:
			a.AddR(reg(), reg(), reg())
		case r < 35:
			a.AddI(reg(), reg(), int32(rng.Intn(0x4000)))
		case r < 40:
			a.SubR(reg(), reg(), reg())
		case r < 44:
			a.SubI(reg(), reg(), int32(rng.Intn(0x4000)))
		case r < 47:
			a.AndI(reg(), reg(), int32(rng.Intn(0x4000)))
		case r < 50:
			a.OrrR(reg(), reg(), reg())
		case r < 53:
			a.LslI(reg(), reg(), int32(rng.Intn(32)))
		case r < 56:
			a.LsrI(reg(), reg(), int32(rng.Intn(32)))
		case r < 62:
			a.Ldr(reg(), arms.R10, off())
		case r < 68:
			a.Str(reg(), arms.R10, off())
		case r < 71:
			a.Ldrb(reg(), arms.R10, off())
		case r < 74:
			a.Strb(reg(), arms.R10, off())
		case r < 78:
			a.CmpR(reg(), reg())
		case r < 81:
			a.CmpI(reg(), int32(rng.Intn(0x2000)))
		case r < 83:
			a.TstI(reg(), int32(rng.Intn(0x4000)))
		case r < 86:
			x, y := reg(), reg()
			if x == y {
				y = arms.R9
			}
			a.Push(x, y)
			a.Pop(x, y)
		case r < 93:
			a.B(conds[rng.Intn(len(conds))], label())
		case r < 95:
			a.BLLabel(fmt.Sprintf("F%d", rng.Intn(genHelpers)))
		case r < 96:
			a.Svc(int32(rng.Intn(8)))
		default:
			a.Nop()
		}
	}
	a.BX(arms.LR)
	for h := 0; h < genHelpers; h++ {
		a.Label(fmt.Sprintf("F%d", h))
		for j, k := 0, 2+rng.Intn(4); j < k; j++ {
			switch rng.Intn(3) {
			case 0:
				a.AddR(reg(), reg(), reg())
			case 1:
				a.Ldr(reg(), arms.R10, off())
			default:
				a.MovR(reg(), reg())
			}
		}
		a.BX(arms.LR)
	}
	code, err := a.Assemble()
	return code.Bytes, err
}
