package isatest

import (
	"reflect"
	"testing"

	"connlab/internal/dns"
	"connlab/internal/exploit"
	"connlab/internal/isa"
	"connlab/internal/kernel"
	"connlab/internal/victim"
)

// The victim-image leg of the differential harness: the same recorded
// victim process (Connman-analog daemon, libc, heap, stacks) is driven
// through whole DNS transcripts — benign traffic plus every exploit
// family the lab builds — once under block dispatch and once under
// kernel.Config.SingleStep. Outcomes, stdout, retired-instruction
// counts, spawned shells and the final address-space bytes must match
// exactly; whether a given exploit lands is irrelevant to the harness,
// only that both executors agree on what happened.

// benignPacket builds a well-formed answer that passes the daemon's
// header pre-checks and parses cleanly.
func benignPacket(t *testing.T, id uint16) []byte {
	t.Helper()
	q := dns.NewQuery(id, "ok.example", dns.TypeA)
	resp := dns.NewResponse(q)
	resp.Answers = []dns.RR{dns.A("ok.example", 60, [4]byte{10, 0, 0, byte(id)})}
	pkt, err := resp.Encode()
	if err != nil {
		t.Fatalf("encode benign: %v", err)
	}
	return pkt
}

// feedBoth delivers one packet to both daemons and requires identical
// results, including the handled/crashed bookkeeping and stdout so far.
func feedBoth(t *testing.T, ref, blk *victim.Daemon, pkt []byte, stage string) kernel.RunResult {
	t.Helper()
	resR, errR := ref.HandleResponse(pkt)
	resB, errB := blk.HandleResponse(pkt)
	if (errR == nil) != (errB == nil) {
		t.Fatalf("%s: error mismatch: single-step %v, block %v", stage, errR, errB)
	}
	if errR != nil && errR.Error() != errB.Error() {
		t.Fatalf("%s: error text mismatch: single-step %q, block %q", stage, errR, errB)
	}
	if !reflect.DeepEqual(resR, resB) {
		t.Fatalf("%s: run result mismatch:\nsingle-step %+v\nblock       %+v", stage, resR, resB)
	}
	if ref.Crashed() != blk.Crashed() || ref.Handled() != blk.Handled() {
		t.Fatalf("%s: daemon state mismatch: single-step crashed=%v handled=%d, block crashed=%v handled=%d",
			stage, ref.Crashed(), ref.Handled(), blk.Crashed(), blk.Handled())
	}
	if a, b := ref.Process().Stdout(), blk.Process().Stdout(); a != b {
		t.Fatalf("%s: stdout mismatch:\nsingle-step %q\nblock       %q", stage, a, b)
	}
	if a, b := ref.Process().CPU().InstrCount(), blk.Process().CPU().InstrCount(); a != b {
		t.Fatalf("%s: instruction count mismatch: single-step %d, block %d", stage, a, b)
	}
	if !reflect.DeepEqual(ref.Shells(), blk.Shells()) {
		t.Fatalf("%s: shells mismatch:\nsingle-step %+v\nblock       %+v", stage, ref.Shells(), blk.Shells())
	}
	return resB
}

func TestVictimImageDifferential(t *testing.T) {
	cases := []struct {
		name      string
		arch      isa.Arch
		cfg       kernel.Config
		kind      exploit.Kind // empty = benign traffic only
		wantShell bool         // deterministic-success combos are pinned
	}{
		{"x86s/benign", isa.ArchX86S, kernel.Config{Seed: 11}, "", false},
		{"x86s/dos", isa.ArchX86S, kernel.Config{Seed: 11}, exploit.KindDoS, false},
		{"x86s/code-injection", isa.ArchX86S, kernel.Config{Seed: 11}, exploit.KindCodeInjection, true},
		{"x86s/ret2libc-wx", isa.ArchX86S, kernel.Config{WX: true, Seed: 11}, exploit.KindRet2Libc, true},
		{"x86s/rop-wx-aslr", isa.ArchX86S, kernel.Config{WX: true, ASLR: true, Seed: 11}, exploit.KindRopMemcpy, false},
		{"arms/benign", isa.ArchARMS, kernel.Config{Seed: 11}, "", false},
		{"arms/dos", isa.ArchARMS, kernel.Config{Seed: 11}, exploit.KindDoS, false},
		{"arms/code-injection", isa.ArchARMS, kernel.Config{Seed: 11}, exploit.KindCodeInjection, true},
		{"arms/rop-memcpy-wx", isa.ArchARMS, kernel.Config{WX: true, Seed: 11}, exploit.KindRopMemcpy, false},
		{"arms/rop-wx-aslr", isa.ArchARMS, kernel.Config{WX: true, ASLR: true, Seed: 11}, exploit.KindRopExeclp, false},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			refCfg := c.cfg
			refCfg.SingleStep = true
			ref, err := victim.NewDaemon(c.arch, victim.BuildOpts{}, refCfg)
			if err != nil {
				t.Fatalf("single-step daemon: %v", err)
			}
			blk, err := victim.NewDaemon(c.arch, victim.BuildOpts{}, c.cfg)
			if err != nil {
				t.Fatalf("block daemon: %v", err)
			}

			feedBoth(t, ref, blk, benignPacket(t, 1), "benign#1")
			var last kernel.RunResult
			if c.kind != "" {
				tgt, err := exploit.Recon(c.arch, victim.BuildOpts{}, c.cfg)
				if err != nil {
					t.Fatalf("recon: %v", err)
				}
				ex, err := exploit.Build(tgt, c.kind)
				if err != nil {
					t.Fatalf("build %s: %v", c.kind, err)
				}
				pkt, err := ex.Response(dns.NewQuery(0x1337, "time.iot-vendor.example", dns.TypeA))
				if err != nil {
					t.Fatalf("exploit response: %v", err)
				}
				last = feedBoth(t, ref, blk, pkt, "exploit")
			}
			if !blk.Crashed() {
				feedBoth(t, ref, blk, benignPacket(t, 2), "benign#2")
			}

			CompareMem(t, ref.Process().Mem(), blk.Process().Mem())
			if c.wantShell && last.Status != kernel.StatusShell {
				t.Errorf("%s under both executors: status %v, want shell", c.kind, last.Status)
			}
			if bs := blk.Process().CPU().BlockStats(); bs.Instrs == 0 {
				t.Errorf("block dispatch never engaged on the victim image")
			} else if rs := ref.Process().CPU().BlockStats(); rs.Instrs != 0 {
				t.Errorf("SingleStep reference retired %d instructions in blocks, want 0", rs.Instrs)
			}
		})
	}
}
