package x86s

import (
	"errors"
	"fmt"
)

// Decode errors.
var (
	// ErrTruncated means the byte window ended mid-instruction.
	ErrTruncated = errors.New("x86s: truncated instruction")
	// ErrIllegal means the bytes do not encode a supported instruction.
	ErrIllegal = errors.New("x86s: illegal instruction")
)

// modRM is the decoded form of a ModRM (+ optional SIB/displacement)
// operand cluster.
type modRM struct {
	reg  int   // the /r register field
	rm   int   // register operand when !mem
	mem  bool  // r/m is a memory operand
	base int   // memory base register, or MemAbs
	disp int32 // memory displacement
	size uint32
}

// decodeModRM parses a ModRM byte (plus SIB and displacement) from b.
// Supported addressing forms: register-direct, [reg], [reg+disp8/32],
// [disp32], and [esp(+disp)] via the index-none SIB form. This covers every
// form the lab's assembler emits.
func decodeModRM(b []byte) (modRM, error) {
	if len(b) < 1 {
		return modRM{}, ErrTruncated
	}
	m := b[0]
	mod := int(m >> 6)
	reg := int(m >> 3 & 7)
	rm := int(m & 7)
	out := modRM{reg: reg, size: 1}

	if mod == 3 {
		out.rm = rm
		return out, nil
	}
	out.mem = true
	out.base = rm
	idx := 1
	if rm == 4 { // SIB byte
		if len(b) < 2 {
			return modRM{}, ErrTruncated
		}
		sib := b[1]
		if sib>>3&7 != 4 { // index register present: unsupported
			return modRM{}, ErrIllegal
		}
		out.base = int(sib & 7)
		out.size++
		idx++
		if mod == 0 && out.base == 5 { // [disp32] via SIB
			out.base = MemAbs
		}
	}
	switch mod {
	case 0:
		if rm == 5 { // [disp32]
			if len(b) < idx+4 {
				return modRM{}, ErrTruncated
			}
			out.base = MemAbs
			out.disp = int32(le32(b[idx:]))
			out.size += 4
		}
		if out.base == MemAbs && rm == 4 {
			if len(b) < idx+4 {
				return modRM{}, ErrTruncated
			}
			out.disp = int32(le32(b[idx:]))
			out.size += 4
		}
	case 1:
		if len(b) < idx+1 {
			return modRM{}, ErrTruncated
		}
		out.disp = int32(int8(b[idx]))
		out.size++
	case 2:
		if len(b) < idx+4 {
			return modRM{}, ErrTruncated
		}
		out.disp = int32(le32(b[idx:]))
		out.size += 4
	}
	return out, nil
}

func le32(b []byte) uint32 {
	return uint32(b[0]) | uint32(b[1])<<8 | uint32(b[2])<<16 | uint32(b[3])<<24
}

func le16(b []byte) uint16 {
	return uint16(b[0]) | uint16(b[1])<<8
}

// need returns ErrTruncated unless b holds at least n bytes.
func need(b []byte, n int) error {
	if len(b) < n {
		return ErrTruncated
	}
	return nil
}

// Decode decodes a single instruction from the byte window b (which starts
// at the instruction's first byte). It returns the decoded instruction with
// Size set, or an error.
func Decode(b []byte) (Instr, error) {
	if len(b) == 0 {
		return Instr{}, ErrTruncated
	}
	op := b[0]
	switch {
	case op == 0x90:
		return Instr{Op: OpNop, Size: 1}, nil
	case op == 0xC3:
		return Instr{Op: OpRet, Size: 1}, nil
	case op == 0xC9:
		return Instr{Op: OpLeave, Size: 1}, nil
	case op == 0xF4:
		return Instr{Op: OpHlt, Size: 1}, nil
	case op == 0xA4:
		return Instr{Op: OpMovsb, Size: 1}, nil
	case op >= 0x50 && op <= 0x57:
		return Instr{Op: OpPushR, R1: int(op - 0x50), Size: 1}, nil
	case op >= 0x58 && op <= 0x5F:
		return Instr{Op: OpPopR, R1: int(op - 0x58), Size: 1}, nil
	case op >= 0x40 && op <= 0x47:
		return Instr{Op: OpIncR, R1: int(op - 0x40), Size: 1}, nil
	case op >= 0x48 && op <= 0x4F:
		return Instr{Op: OpDecR, R1: int(op - 0x48), Size: 1}, nil
	case op >= 0xB8 && op <= 0xBF:
		if err := need(b, 5); err != nil {
			return Instr{}, err
		}
		return Instr{Op: OpMovRI, R1: int(op - 0xB8), Imm: le32(b[1:]), Size: 5}, nil
	case op == 0x68:
		if err := need(b, 5); err != nil {
			return Instr{}, err
		}
		return Instr{Op: OpPushI, Imm: le32(b[1:]), Size: 5}, nil
	case op == 0xCD:
		if err := need(b, 2); err != nil {
			return Instr{}, err
		}
		return Instr{Op: OpInt, Imm: uint32(b[1]), Size: 2}, nil
	case op == 0xE8 || op == 0xE9:
		if err := need(b, 5); err != nil {
			return Instr{}, err
		}
		o := OpCallRel
		if op == 0xE9 {
			o = OpJmpRel
		}
		return Instr{Op: o, Disp: int32(le32(b[1:])), Size: 5}, nil
	case op == 0xEB:
		if err := need(b, 2); err != nil {
			return Instr{}, err
		}
		return Instr{Op: OpJmpRel, Disp: int32(int8(b[1])), Size: 2}, nil
	case op == 0xE3:
		if err := need(b, 2); err != nil {
			return Instr{}, err
		}
		return Instr{Op: OpJecxz, Disp: int32(int8(b[1])), Size: 2}, nil
	case op >= 0x70 && op <= 0x7F:
		if err := need(b, 2); err != nil {
			return Instr{}, err
		}
		c := Cond(op - 0x70)
		if !condSupported(c) {
			return Instr{}, ErrIllegal
		}
		return Instr{Op: OpJcc, Cond: c, Disp: int32(int8(b[1])), Size: 2}, nil
	case op == 0x0F:
		return decode0F(b)
	case op == 0x01 || op == 0x09 || op == 0x21 || op == 0x29 || op == 0x31 || op == 0x39:
		return decodeAluRR(b)
	case op == 0x85:
		m, err := decodeModRM(b[1:])
		if err != nil {
			return Instr{}, err
		}
		if m.mem {
			return Instr{}, ErrIllegal // test mem,reg unused in the lab
		}
		return Instr{Op: OpTestRR, R1: m.rm, R2: m.reg, Size: 1 + m.size}, nil
	case op == 0x81 || op == 0x83:
		return decodeAluRI(b)
	case op == 0x88 || op == 0x89 || op == 0x8A || op == 0x8B:
		return decodeMov(b)
	case op == 0x8D:
		m, err := decodeModRM(b[1:])
		if err != nil {
			return Instr{}, err
		}
		if !m.mem {
			return Instr{}, ErrIllegal
		}
		return Instr{Op: OpLea, R1: m.reg, Base: m.base, Disp: m.disp,
			MemOperand: true, Size: 1 + m.size}, nil
	case op == 0xC1:
		m, err := decodeModRM(b[1:])
		if err != nil {
			return Instr{}, err
		}
		if m.mem || (m.reg != 4 && m.reg != 5) {
			return Instr{}, ErrIllegal
		}
		immOff := 1 + int(m.size)
		if err := need(b, immOff+1); err != nil {
			return Instr{}, err
		}
		o := OpShlRI
		if m.reg == 5 {
			o = OpShrRI
		}
		return Instr{Op: o, R1: m.rm, Imm: uint32(b[immOff]), Size: uint32(immOff) + 1}, nil
	case op == 0xC6 || op == 0xC7:
		return decodeMovMI(b)
	case op == 0xFF:
		return decodeFF(b)
	default:
		return Instr{}, ErrIllegal
	}
}

func condSupported(c Cond) bool {
	_, ok := condNames[c]
	return ok
}

func decode0F(b []byte) (Instr, error) {
	if err := need(b, 2); err != nil {
		return Instr{}, err
	}
	switch {
	case b[1] >= 0x80 && b[1] <= 0x8F: // Jcc rel32
		if err := need(b, 6); err != nil {
			return Instr{}, err
		}
		c := Cond(b[1] - 0x80)
		if !condSupported(c) {
			return Instr{}, ErrIllegal
		}
		return Instr{Op: OpJcc, Cond: c, Disp: int32(le32(b[2:])), Size: 6}, nil
	case b[1] == 0xB6: // MOVZX r32, r/m8
		m, err := decodeModRM(b[2:])
		if err != nil {
			return Instr{}, err
		}
		return Instr{Op: OpMovzx8, R1: m.reg, R2: m.rm, Base: m.base,
			Disp: m.disp, MemOperand: m.mem, Size: 2 + m.size}, nil
	default:
		return Instr{}, ErrIllegal
	}
}

// decodeAluRR handles the "ALU r/m32, r32" opcodes (0x01 add, 0x09 or,
// 0x21 and, 0x29 sub, 0x31 xor, 0x39 cmp).
func decodeAluRR(b []byte) (Instr, error) {
	var alu Alu
	switch b[0] {
	case 0x01:
		alu = AluAdd
	case 0x09:
		alu = AluOr
	case 0x21:
		alu = AluAnd
	case 0x29:
		alu = AluSub
	case 0x31:
		alu = AluXor
	case 0x39:
		alu = AluCmp
	}
	m, err := decodeModRM(b[1:])
	if err != nil {
		return Instr{}, err
	}
	return Instr{Op: OpAluRR, Alu: alu, R1: m.rm, R2: m.reg, Base: m.base,
		Disp: m.disp, MemOperand: m.mem, Size: 1 + m.size}, nil
}

// decodeAluRI handles the 0x81 (imm32) and 0x83 (imm8 sign-extended)
// immediate ALU groups; the ModRM /digit field selects the operation.
func decodeAluRI(b []byte) (Instr, error) {
	m, err := decodeModRM(b[1:])
	if err != nil {
		return Instr{}, err
	}
	alu := Alu(m.reg)
	if _, ok := aluNames[alu]; !ok {
		return Instr{}, ErrIllegal
	}
	in := Instr{Op: OpAluRI, Alu: alu, R1: m.rm, Base: m.base, Disp: m.disp,
		MemOperand: m.mem}
	immOff := 1 + int(m.size)
	if b[0] == 0x83 {
		if err := need(b, immOff+1); err != nil {
			return Instr{}, err
		}
		in.Imm = uint32(int32(int8(b[immOff])))
		in.Size = uint32(immOff) + 1
	} else {
		if err := need(b, immOff+4); err != nil {
			return Instr{}, err
		}
		in.Imm = le32(b[immOff:])
		in.Size = uint32(immOff) + 4
	}
	return in, nil
}

func decodeMov(b []byte) (Instr, error) {
	m, err := decodeModRM(b[1:])
	if err != nil {
		return Instr{}, err
	}
	size := 1 + m.size
	switch b[0] {
	case 0x89: // mov r/m32, r32
		if m.mem {
			return Instr{Op: OpMovMR, R2: m.reg, Base: m.base, Disp: m.disp,
				MemOperand: true, Size: size}, nil
		}
		return Instr{Op: OpMovRR, R1: m.rm, R2: m.reg, Size: size}, nil
	case 0x8B: // mov r32, r/m32
		if m.mem {
			return Instr{Op: OpMovRM, R1: m.reg, Base: m.base, Disp: m.disp,
				MemOperand: true, Size: size}, nil
		}
		return Instr{Op: OpMovRR, R1: m.reg, R2: m.rm, Size: size}, nil
	case 0x88: // mov r/m8, r8
		if !m.mem {
			return Instr{}, ErrIllegal
		}
		return Instr{Op: OpMovMR8, R2: m.reg, Base: m.base, Disp: m.disp,
			MemOperand: true, Size: size}, nil
	case 0x8A: // mov r8, r/m8
		if !m.mem {
			return Instr{}, ErrIllegal
		}
		return Instr{Op: OpMovRM8, R1: m.reg, Base: m.base, Disp: m.disp,
			MemOperand: true, Size: size}, nil
	}
	return Instr{}, ErrIllegal
}

func decodeMovMI(b []byte) (Instr, error) {
	m, err := decodeModRM(b[1:])
	if err != nil {
		return Instr{}, err
	}
	if m.reg != 0 || !m.mem {
		return Instr{}, ErrIllegal
	}
	immOff := 1 + int(m.size)
	if b[0] == 0xC6 { // mov byte [mem], imm8
		if err := need(b, immOff+1); err != nil {
			return Instr{}, err
		}
		return Instr{Op: OpMovMI8, Base: m.base, Disp: m.disp, MemOperand: true,
			Imm: uint32(b[immOff]), Size: uint32(immOff) + 1}, nil
	}
	if err := need(b, immOff+4); err != nil {
		return Instr{}, err
	}
	return Instr{Op: OpMovMI, Base: m.base, Disp: m.disp, MemOperand: true,
		Imm: le32(b[immOff:]), Size: uint32(immOff) + 4}, nil
}

func decodeFF(b []byte) (Instr, error) {
	m, err := decodeModRM(b[1:])
	if err != nil {
		return Instr{}, err
	}
	size := 1 + m.size
	switch m.reg {
	case 2: // call r/m32
		return Instr{Op: OpCallInd, R1: m.rm, Base: m.base, Disp: m.disp,
			MemOperand: m.mem, Size: size}, nil
	case 4: // jmp r/m32
		return Instr{Op: OpJmpInd, R1: m.rm, Base: m.base, Disp: m.disp,
			MemOperand: m.mem, Size: size}, nil
	case 6: // push r/m32
		return Instr{Op: OpPushM, R1: m.rm, Base: m.base, Disp: m.disp,
			MemOperand: m.mem, Size: size}, nil
	default:
		return Instr{}, ErrIllegal
	}
}

// String renders the instruction in Intel syntax.
func (in Instr) String() string {
	memop := func() string {
		if in.Base == MemAbs {
			return fmt.Sprintf("[%#x]", uint32(in.Disp))
		}
		if in.Disp == 0 {
			return fmt.Sprintf("[%s]", RegName(in.Base))
		}
		if in.Disp < 0 {
			return fmt.Sprintf("[%s-%#x]", RegName(in.Base), uint32(-in.Disp))
		}
		return fmt.Sprintf("[%s+%#x]", RegName(in.Base), uint32(in.Disp))
	}
	rm32 := func() string {
		if in.MemOperand {
			return memop()
		}
		return RegName(in.R1)
	}
	switch in.Op {
	case OpNop:
		return "nop"
	case OpRet:
		return "ret"
	case OpLeave:
		return "leave"
	case OpHlt:
		return "hlt"
	case OpMovsb:
		return "movsb"
	case OpPushR:
		return "push " + RegName(in.R1)
	case OpPushI:
		return fmt.Sprintf("push %#x", in.Imm)
	case OpPushM:
		return "push dword " + rm32()
	case OpPopR:
		return "pop " + RegName(in.R1)
	case OpIncR:
		return "inc " + RegName(in.R1)
	case OpDecR:
		return "dec " + RegName(in.R1)
	case OpMovRI:
		return fmt.Sprintf("mov %s, %#x", RegName(in.R1), in.Imm)
	case OpMovRR:
		return fmt.Sprintf("mov %s, %s", RegName(in.R1), RegName(in.R2))
	case OpMovRM:
		return fmt.Sprintf("mov %s, %s", RegName(in.R1), memop())
	case OpMovMR:
		return fmt.Sprintf("mov %s, %s", memop(), RegName(in.R2))
	case OpMovMI:
		return fmt.Sprintf("mov dword %s, %#x", memop(), in.Imm)
	case OpMovMI8:
		return fmt.Sprintf("mov byte %s, %#x", memop(), in.Imm)
	case OpMovRM8:
		return fmt.Sprintf("mov %s, byte %s", reg8Names[in.R1], memop())
	case OpMovMR8:
		return fmt.Sprintf("mov byte %s, %s", memop(), reg8Names[in.R2])
	case OpMovzx8:
		if in.MemOperand {
			return fmt.Sprintf("movzx %s, byte %s", RegName(in.R1), memop())
		}
		return fmt.Sprintf("movzx %s, %s", RegName(in.R1), reg8Names[in.R2])
	case OpLea:
		return fmt.Sprintf("lea %s, %s", RegName(in.R1), memop())
	case OpAluRR:
		return fmt.Sprintf("%s %s, %s", in.Alu, rm32(), RegName(in.R2))
	case OpAluRI:
		return fmt.Sprintf("%s %s, %#x", in.Alu, rm32(), in.Imm)
	case OpTestRR:
		return fmt.Sprintf("test %s, %s", RegName(in.R1), RegName(in.R2))
	case OpJmpRel:
		return fmt.Sprintf("jmp %+d", in.Disp)
	case OpJcc:
		return fmt.Sprintf("j%s %+d", in.Cond, in.Disp)
	case OpJecxz:
		return fmt.Sprintf("jecxz %+d", in.Disp)
	case OpCallRel:
		return fmt.Sprintf("call %+d", in.Disp)
	case OpCallInd:
		return "call " + rm32()
	case OpJmpInd:
		return "jmp " + rm32()
	case OpInt:
		return fmt.Sprintf("int %#x", in.Imm)
	case OpShlRI:
		return fmt.Sprintf("shl %s, %d", RegName(in.R1), in.Imm)
	case OpShrRI:
		return fmt.Sprintf("shr %s, %d", RegName(in.R1), in.Imm)
	default:
		return "(bad)"
	}
}
