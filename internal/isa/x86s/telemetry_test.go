package x86s

import (
	"testing"

	"connlab/internal/isa"
	"connlab/internal/mem"
	"connlab/internal/telemetry"
)

// loopCPU builds the standard warm-loop CPU of the zero-alloc tests:
// load/add/store plus push/pop plus a backwards jump.
func loopCPU(t *testing.T) *CPU {
	t.Helper()
	m := mem.New()
	text, err := m.Map("text", 0x1000, 0x1000, mem.PermRX)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Map("data", 0x4000, 0x1000, mem.PermRW); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Map("stack", 0x8000, 0x1000, mem.PermRW); err != nil {
		t.Fatal(err)
	}
	a := NewAsm()
	a.Label("loop").
		MovRM(EAX, EBX, 0).
		AddRI(EAX, 1).
		MovMR(EBX, 0, EAX).
		PushR(EAX).
		PopR(EDX).
		Jmp("loop")
	code, err := a.Assemble()
	if err != nil {
		t.Fatal(err)
	}
	copy(text.Data, code.Bytes)
	c := New(m)
	c.SetPC(0x1000)
	c.SetSP(0x8F00)
	c.SetReg(EBX, 0x4000)
	return c
}

// TestStepZeroAllocsTelemetryOff pins the observability contract: with
// telemetry disabled — including after an enable/disable cycle, the
// worst case for leftover instrumentation — the hot loop still allocates
// nothing per instruction. The decode-cache miss counter is a plain
// integer bumped only on the (already slow) miss path and the flight
// recorder costs one nil-check.
func TestStepZeroAllocsTelemetryOff(t *testing.T) {
	telemetry.Enable()
	telemetry.Disable()
	c := loopCPU(t)
	c.SetRecorder(nil) // the disabled default, stated explicitly
	for i := 0; i < 64; i++ {
		stepRetired(t, c)
	}
	allocs := testing.AllocsPerRun(1000, func() {
		if ev := c.Step(); ev.Kind != isa.EventRetired {
			t.Fatal("step did not retire")
		}
	})
	if allocs != 0 {
		t.Errorf("Step allocates %.1f objects per instruction with telemetry off, want 0", allocs)
	}
	misses := c.DecodeCacheMisses()
	if misses == 0 || c.InstrCount() <= misses {
		t.Errorf("decode cache: %d misses over %d instructions, want 0 < misses < instructions",
			misses, c.InstrCount())
	}
}

// TestStepZeroAllocsRecorderOn: even with the flight recorder attached
// and a call/ret pair firing it every loop iteration, Step stays
// allocation-free — Record writes into a pre-sized ring.
func TestStepZeroAllocsRecorderOn(t *testing.T) {
	m := mem.New()
	text, err := m.Map("text", 0x1000, 0x1000, mem.PermRX)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Map("stack", 0x8000, 0x1000, mem.PermRW); err != nil {
		t.Fatal(err)
	}
	a := NewAsm()
	a.Label("loop").
		CallLabel("fn").
		Jmp("loop").
		Label("fn").
		Ret()
	code, err := a.Assemble()
	if err != nil {
		t.Fatal(err)
	}
	copy(text.Data, code.Bytes)
	c := New(m)
	c.SetPC(0x1000)
	c.SetSP(0x8F00)
	rec := telemetry.NewControlRecorder(64)
	c.SetRecorder(rec)
	for i := 0; i < 64; i++ {
		stepRetired(t, c)
	}
	allocs := testing.AllocsPerRun(1000, func() {
		if ev := c.Step(); ev.Kind != isa.EventRetired {
			t.Fatal("step did not retire")
		}
	})
	if allocs != 0 {
		t.Errorf("Step allocates %.1f objects per instruction with the recorder on, want 0", allocs)
	}
	if rec.Total() == 0 {
		t.Fatal("recorder saw no control transfers from the call/ret loop")
	}
	var calls, rets int
	for _, ev := range rec.Events() {
		switch ev.Kind {
		case telemetry.CtlCall:
			calls++
		case telemetry.CtlReturn:
			rets++
		default:
			t.Fatalf("unexpected control event %+v", ev)
		}
	}
	if calls == 0 || rets == 0 {
		t.Errorf("recorded %d calls / %d rets, want both > 0", calls, rets)
	}
}
