package x86s

import (
	"testing"

	"connlab/internal/isa"
	"connlab/internal/mem"
)

// movEAX encodes mov eax, imm32 (5 bytes), the probe instruction for the
// decode-cache tests: its immediate makes stale decodes observable.
func movEAX(v uint32) []byte {
	return []byte{0xB8, byte(v), byte(v >> 8), byte(v >> 16), byte(v >> 24)}
}

// stepRetired single-steps and fails the test on any non-retired event.
func stepRetired(t *testing.T, c *CPU) {
	t.Helper()
	if ev := c.Step(); ev.Kind != isa.EventRetired {
		t.Fatalf("step: %+v", ev)
	}
}

// TestDecodeCacheInvalidatedBySetPerm pins the cache-safety contract: after
// the legitimate patch sequence (SetPerm RW, write, SetPerm RX) the CPU
// must decode the new bytes, not replay the cached instruction.
func TestDecodeCacheInvalidatedBySetPerm(t *testing.T) {
	m := mem.New()
	text, err := m.Map("text", 0x1000, 0x1000, mem.PermRX)
	if err != nil {
		t.Fatal(err)
	}
	copy(text.Data, movEAX(1))
	c := New(m)

	// Execute twice so the second step runs from the cache.
	for i := 0; i < 2; i++ {
		c.SetPC(0x1000)
		stepRetired(t, c)
		if got := c.Reg(EAX); got != 1 {
			t.Fatalf("eax = %d, want 1 (iteration %d)", got, i)
		}
	}

	if err := m.SetPerm("text", mem.PermRW); err != nil {
		t.Fatal(err)
	}
	if f := m.WriteBytes(0x1000, movEAX(2)); f != nil {
		t.Fatal(f)
	}
	if err := m.SetPerm("text", mem.PermRX); err != nil {
		t.Fatal(err)
	}

	c.SetPC(0x1000)
	stepRetired(t, c)
	if got := c.Reg(EAX); got != 2 {
		t.Errorf("eax after patch = %d, want 2 (stale decode cache)", got)
	}
}

// TestDecodeCacheInvalidatedByUnmap: a cached instruction must not execute
// from a segment that has since been unmapped.
func TestDecodeCacheInvalidatedByUnmap(t *testing.T) {
	m := mem.New()
	text, err := m.Map("text", 0x1000, 0x1000, mem.PermRX)
	if err != nil {
		t.Fatal(err)
	}
	copy(text.Data, movEAX(1))
	c := New(m)
	c.SetPC(0x1000)
	stepRetired(t, c)

	m.Unmap("text")
	c.SetPC(0x1000)
	ev := c.Step()
	if ev.Kind != isa.EventFault || ev.Fault == nil || ev.Fault.Kind != mem.FaultUnmapped {
		t.Errorf("step after unmap = %+v, want unmapped fault", ev)
	}
}

// TestDecodeCacheSkipsWritableSegments: self-modifying code in an RWX
// mapping must see every write immediately — writable segments are never
// cached, since their bytes can change without a generation bump.
func TestDecodeCacheSkipsWritableSegments(t *testing.T) {
	m := mem.New()
	text, err := m.Map("text", 0x1000, 0x1000, mem.PermRWX)
	if err != nil {
		t.Fatal(err)
	}
	copy(text.Data, movEAX(1))
	c := New(m)
	c.SetPC(0x1000)
	stepRetired(t, c)
	if got := c.Reg(EAX); got != 1 {
		t.Fatalf("eax = %d, want 1", got)
	}

	// Plain store, no SetPerm, no generation bump: the new bytes must
	// still be decoded.
	if f := m.WriteBytes(0x1000, movEAX(2)); f != nil {
		t.Fatal(f)
	}
	c.SetPC(0x1000)
	stepRetired(t, c)
	if got := c.Reg(EAX); got != 2 {
		t.Errorf("eax after self-modify = %d, want 2 (writable segment was cached)", got)
	}
}

// TestDecodeCacheRespectsWX: under W^X an RWX mapping is not executable,
// and because writable segments are never cached, flipping it to RX later
// must re-check permissions rather than replay a cached fault-free decode.
func TestDecodeCacheRespectsWX(t *testing.T) {
	m := mem.New()
	m.SetWX(true)
	text, err := m.Map("text", 0x1000, 0x1000, mem.PermRWX)
	if err != nil {
		t.Fatal(err)
	}
	copy(text.Data, movEAX(1))
	c := New(m)
	c.SetPC(0x1000)
	ev := c.Step()
	if ev.Kind != isa.EventFault || ev.Fault == nil || ev.Fault.Kind != mem.FaultProtection {
		t.Fatalf("exec from RWX under W^X = %+v, want protection fault", ev)
	}

	if err := m.SetPerm("text", mem.PermRX); err != nil {
		t.Fatal(err)
	}
	c.SetPC(0x1000)
	stepRetired(t, c)
	if got := c.Reg(EAX); got != 1 {
		t.Errorf("eax = %d, want 1", got)
	}
}

// TestStepZeroAllocs asserts the interpreter hot loop allocates nothing
// per instruction once the decode cache is warm.
func TestStepZeroAllocs(t *testing.T) {
	m := mem.New()
	text, err := m.Map("text", 0x1000, 0x1000, mem.PermRX)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Map("data", 0x4000, 0x1000, mem.PermRW); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Map("stack", 0x8000, 0x1000, mem.PermRW); err != nil {
		t.Fatal(err)
	}
	a := NewAsm()
	a.Label("loop").
		MovRM(EAX, EBX, 0).
		AddRI(EAX, 1).
		MovMR(EBX, 0, EAX).
		PushR(EAX).
		PopR(EDX).
		Jmp("loop")
	code, err := a.Assemble()
	if err != nil {
		t.Fatal(err)
	}
	copy(text.Data, code.Bytes)
	c := New(m)
	c.SetPC(0x1000)
	c.SetSP(0x8F00)
	c.SetReg(EBX, 0x4000)
	// Warm the decode cache and the segment hints.
	for i := 0; i < 64; i++ {
		stepRetired(t, c)
	}
	allocs := testing.AllocsPerRun(1000, func() {
		if ev := c.Step(); ev.Kind != isa.EventRetired {
			t.Fatalf("step: %+v", ev)
		}
	})
	if allocs != 0 {
		t.Errorf("Step allocates %.1f objects per instruction, want 0", allocs)
	}
}
