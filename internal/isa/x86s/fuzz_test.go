package x86s

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// TestQuickDecodeNeverPanicsOrOverruns: arbitrary byte windows either
// fail to decode or yield an instruction no longer than the window.
func TestQuickDecodeNeverPanicsOrOverruns(t *testing.T) {
	prop := func(b []byte) bool {
		in, err := Decode(b)
		if err != nil {
			return true
		}
		return int(in.Size) <= len(b) && in.Size > 0
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 5000}); err != nil {
		t.Error(err)
	}
}

// TestQuickDecodedInstrsRender: whatever decodes also renders without a
// format error.
func TestQuickDecodedInstrsRender(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	buf := make([]byte, 16)
	for i := 0; i < 20000; i++ {
		rng.Read(buf)
		in, err := Decode(buf)
		if err != nil {
			continue
		}
		if s := in.String(); s == "" {
			t.Fatalf("empty rendering for % x", buf[:in.Size])
		}
	}
}

// TestDecodeStability: decoding is a pure function of the byte window.
func TestDecodeStability(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	buf := make([]byte, 16)
	for i := 0; i < 2000; i++ {
		rng.Read(buf)
		a, errA := Decode(buf)
		b, errB := Decode(buf)
		if (errA == nil) != (errB == nil) || a != b {
			t.Fatalf("unstable decode for % x", buf)
		}
	}
}
