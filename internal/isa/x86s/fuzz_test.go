package x86s

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"

	"connlab/internal/isa"
	"connlab/internal/mem"
)

// TestQuickDecodeNeverPanicsOrOverruns: arbitrary byte windows either
// fail to decode or yield an instruction no longer than the window.
func TestQuickDecodeNeverPanicsOrOverruns(t *testing.T) {
	prop := func(b []byte) bool {
		in, err := Decode(b)
		if err != nil {
			return true
		}
		return int(in.Size) <= len(b) && in.Size > 0
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 5000}); err != nil {
		t.Error(err)
	}
}

// TestQuickDecodedInstrsRender: whatever decodes also renders without a
// format error.
func TestQuickDecodedInstrsRender(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	buf := make([]byte, 16)
	for i := 0; i < 20000; i++ {
		rng.Read(buf)
		in, err := Decode(buf)
		if err != nil {
			continue
		}
		if s := in.String(); s == "" {
			t.Fatalf("empty rendering for % x", buf[:in.Size])
		}
	}
}

// TestDecodeStability: decoding is a pure function of the byte window.
func TestDecodeStability(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	buf := make([]byte, 16)
	for i := 0; i < 2000; i++ {
		rng.Read(buf)
		a, errA := Decode(buf)
		b, errB := Decode(buf)
		if (errA == nil) != (errB == nil) || a != b {
			t.Fatalf("unstable decode for % x", buf)
		}
	}
}

// FuzzStep: arbitrary bytes executed as code must always yield a defined
// event — retired, syscall, or fault — and never panic the emulator,
// whatever garbage the decoder and ALU are fed. This is the execution
// counterpart of the decode property above: truncated or unknown opcodes
// must surface as EventFault (illegal or memory), not as a Go panic.
func FuzzStep(f *testing.F) {
	f.Add([]byte{0xC3})                               // ret
	f.Add([]byte{0x58, 0x5B, 0xC3})                   // pop eax; pop ebx; ret
	f.Add([]byte{0x90, 0x90, 0xCD, 0x80})             // nops into int 0x80
	f.Add([]byte{0xE8, 0x00, 0x00, 0x00, 0x00, 0xC3}) // call +0; ret
	f.Add([]byte{0xFF})                               // truncated group-5
	f.Add(bytes.Repeat([]byte{0xCC}, 8))              // int3 fill
	f.Fuzz(func(t *testing.T, code []byte) {
		if len(code) == 0 {
			return
		}
		if len(code) > 4096 {
			code = code[:4096]
		}
		const codeBase, stackBase = 0x08048000, 0xBFFF0000
		m := mem.New()
		if _, err := m.Map("code", codeBase, uint32(len(code)), mem.PermRWX); err != nil {
			t.Fatalf("map code: %v", err)
		}
		if f := m.WriteBytes(codeBase, code); f != nil {
			t.Fatalf("write code: %v", f)
		}
		if _, err := m.Map("stack", stackBase, 0x2000, mem.PermRW); err != nil {
			t.Fatalf("map stack: %v", err)
		}
		c := New(m)
		c.SetPC(codeBase)
		c.SetSP(stackBase + 0x1000)
		for steps := 0; steps < 256; steps++ {
			ev := c.Step()
			switch ev.Kind {
			case isa.EventRetired, isa.EventSyscall:
				// keep running
			case isa.EventFault:
				if ev.Fault == nil && !ev.Illegal {
					t.Fatalf("fault event carries neither memory fault nor illegal flag: %+v", ev)
				}
				return
			case isa.EventCFIViolation:
				return
			default:
				t.Fatalf("undefined event kind %d from Step", ev.Kind)
			}
		}
	})
}
