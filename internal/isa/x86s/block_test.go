package x86s

import (
	"testing"

	"connlab/internal/isa"
	"connlab/internal/mem"
	"connlab/internal/telemetry"
)

// blockRetired dispatches one block and fails the test on any non-retired
// event, returning the number of instructions it retired.
func blockRetired(t *testing.T, c *CPU, max uint64) uint64 {
	t.Helper()
	before := c.InstrCount()
	if ev := c.StepBlock(max); ev.Kind != isa.EventRetired {
		t.Fatalf("step block: %+v", ev)
	}
	return c.InstrCount() - before
}

// TestBlockCacheInvalidatedBySetPerm pins the translation-cache safety
// contract: after the legitimate patch sequence (SetPerm RW, write,
// SetPerm RX) block dispatch must execute the new bytes, not replay the
// cached translation.
func TestBlockCacheInvalidatedBySetPerm(t *testing.T) {
	m := mem.New()
	text, err := m.Map("text", 0x1000, 0x1000, mem.PermRX)
	if err != nil {
		t.Fatal(err)
	}
	copy(text.Data, append(movEAX(1), 0x90)) // mov eax,1; nop
	c := New(m)

	// Dispatch twice so the second run hits the block cache.
	for i := 0; i < 2; i++ {
		c.SetPC(0x1000)
		blockRetired(t, c, 2)
		if got := c.Reg(EAX); got != 1 {
			t.Fatalf("eax = %d, want 1 (iteration %d)", got, i)
		}
	}
	if bs := c.BlockStats(); bs.Translated == 0 || bs.Hits == 0 {
		t.Fatalf("block cache never engaged: %+v", bs)
	}

	if err := m.SetPerm("text", mem.PermRW); err != nil {
		t.Fatal(err)
	}
	if f := m.WriteBytes(0x1000, movEAX(2)); f != nil {
		t.Fatal(f)
	}
	if err := m.SetPerm("text", mem.PermRX); err != nil {
		t.Fatal(err)
	}

	c.SetPC(0x1000)
	blockRetired(t, c, 2)
	if got := c.Reg(EAX); got != 2 {
		t.Errorf("eax after patch = %d, want 2 (stale block translation)", got)
	}
	if bs := c.BlockStats(); bs.Invalidated == 0 {
		t.Errorf("no invalidation recorded across the patch: %+v", bs)
	}
}

// TestBlockCacheInvalidatedByUnmap: a cached block must not execute from
// a segment that has since been unmapped.
func TestBlockCacheInvalidatedByUnmap(t *testing.T) {
	m := mem.New()
	text, err := m.Map("text", 0x1000, 0x1000, mem.PermRX)
	if err != nil {
		t.Fatal(err)
	}
	copy(text.Data, movEAX(1))
	c := New(m)
	c.SetPC(0x1000)
	blockRetired(t, c, 1)

	m.Unmap("text")
	c.SetPC(0x1000)
	ev := c.StepBlock(1)
	if ev.Kind != isa.EventFault || ev.Fault == nil || ev.Fault.Kind != mem.FaultUnmapped {
		t.Errorf("block dispatch after unmap = %+v, want unmapped fault", ev)
	}
}

// TestBlockSkipsWritableSegments: writable code is never translated (its
// bytes can change without a generation bump), so RWX self-modifying
// code runs through the single-step fallback and sees every write.
func TestBlockSkipsWritableSegments(t *testing.T) {
	m := mem.New()
	text, err := m.Map("text", 0x1000, 0x1000, mem.PermRWX)
	if err != nil {
		t.Fatal(err)
	}
	copy(text.Data, movEAX(1))
	c := New(m)
	c.SetPC(0x1000)
	blockRetired(t, c, 1)
	if got := c.Reg(EAX); got != 1 {
		t.Fatalf("eax = %d, want 1", got)
	}
	if f := m.WriteBytes(0x1000, movEAX(2)); f != nil {
		t.Fatal(f)
	}
	c.SetPC(0x1000)
	blockRetired(t, c, 1)
	if got := c.Reg(EAX); got != 2 {
		t.Errorf("eax after self-modify = %d, want 2 (writable segment was translated)", got)
	}
	if bs := c.BlockStats(); bs.Translated != 0 {
		t.Errorf("translated %d blocks from a writable segment, want 0", bs.Translated)
	}
}

// TestBlockRespectsWX: under W^X an RWX mapping is not executable; block
// dispatch must fault rather than run a translation, and must succeed
// once the mapping is flipped to RX.
func TestBlockRespectsWX(t *testing.T) {
	m := mem.New()
	m.SetWX(true)
	text, err := m.Map("text", 0x1000, 0x1000, mem.PermRWX)
	if err != nil {
		t.Fatal(err)
	}
	copy(text.Data, movEAX(1))
	c := New(m)
	c.SetPC(0x1000)
	ev := c.StepBlock(1)
	if ev.Kind != isa.EventFault || ev.Fault == nil || ev.Fault.Kind != mem.FaultProtection {
		t.Fatalf("block dispatch from RWX under W^X = %+v, want protection fault", ev)
	}

	if err := m.SetPerm("text", mem.PermRX); err != nil {
		t.Fatal(err)
	}
	c.SetPC(0x1000)
	blockRetired(t, c, 1)
	if got := c.Reg(EAX); got != 1 {
		t.Errorf("eax = %d, want 1", got)
	}
}

// TestBlockTruncatedByMax: a dispatch capped below the block length
// retires exactly the cap and leaves the PC mid-block, where the next
// dispatch resumes.
func TestBlockTruncatedByMax(t *testing.T) {
	m := mem.New()
	text, err := m.Map("text", 0x1000, 0x1000, mem.PermRX)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Map("data", 0x4000, 0x1000, mem.PermRW); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Map("stack", 0x8000, 0x1000, mem.PermRW); err != nil {
		t.Fatal(err)
	}
	a := NewAsm()
	a.Label("loop").
		MovRM(EAX, EBX, 0).
		AddRI(EAX, 1).
		MovMR(EBX, 0, EAX).
		PushR(EAX).
		PopR(EDX).
		Jmp("loop")
	code, err := a.Assemble()
	if err != nil {
		t.Fatal(err)
	}
	copy(text.Data, code.Bytes)
	c := New(m)
	c.SetPC(0x1000)
	c.SetSP(0x8F00)
	c.SetReg(EBX, 0x4000)

	if got := blockRetired(t, c, 2); got != 2 {
		t.Fatalf("capped dispatch retired %d, want 2", got)
	}
	if c.PC() == 0x1000 {
		t.Fatalf("pc still at block entry after truncated dispatch")
	}
	if got := blockRetired(t, c, 4); got != 4 {
		t.Fatalf("resume dispatch retired %d, want 4 (rest of the loop body)", got)
	}
	if c.PC() != 0x1000 {
		t.Fatalf("pc = %#x after full loop, want 0x1000", c.PC())
	}
	if got := c.Reg(EAX); got != 1 {
		t.Fatalf("eax = %d, want 1", got)
	}
}

// TestBlockCrossSegmentPatch is the cross-page invalidation case: an
// instruction whose fetch window spans the boundary into a second
// executable segment, cached by both the decode cache and the block
// translator, must be re-read after that second segment goes through a
// patch cycle — and while the second segment is writable, translation
// must stop at the boundary and execution must fault on entering it.
func TestBlockCrossSegmentPatch(t *testing.T) {
	m := mem.New()
	t1, err := m.Map("text1", 0x1000, 0x10, mem.PermRX)
	if err != nil {
		t.Fatal(err)
	}
	t2, err := m.Map("text2", 0x1010, 0x10, mem.PermRX)
	if err != nil {
		t.Fatal(err)
	}
	// mov eax,1 at 0x100B: its 5 bytes end exactly at the text1 boundary,
	// so every fetch window for it is truncated at the segment edge.
	// Execution falls through into text2's mov eax,2.
	copy(t1.Data[0xB:], movEAX(1))
	copy(t2.Data, movEAX(2))
	c := New(m)

	run := func(how string, step func() uint64) uint32 {
		c.SetPC(0x100B)
		if got := step(); got != 2 {
			t.Fatalf("%s: retired %d, want 2", how, got)
		}
		return c.Reg(EAX)
	}
	viaStep := func() uint64 {
		stepRetired(t, c)
		stepRetired(t, c)
		return 2
	}
	viaBlock := func() uint64 { return blockRetired(t, c, 2) }

	// Warm both caches across the boundary.
	if got := run("step", viaStep); got != 2 {
		t.Fatalf("eax = %d, want 2", got)
	}
	if got := run("block", viaBlock); got != 2 {
		t.Fatalf("eax = %d, want 2", got)
	}

	// Patch cycle on the second segment only.
	if err := m.SetPerm("text2", mem.PermRW); err != nil {
		t.Fatal(err)
	}
	// While text2 is writable: the block from 0x100B must stop at the
	// boundary (1 instruction), and entering text2 must fault.
	c.SetPC(0x100B)
	if got := blockRetired(t, c, 2); got != 1 {
		t.Fatalf("block into writable segment retired %d, want 1", got)
	}
	if ev := c.Step(); ev.Kind != isa.EventFault || ev.Fault == nil || ev.Fault.Kind != mem.FaultProtection {
		t.Fatalf("exec from RW segment = %+v, want protection fault", ev)
	}
	if f := m.WriteBytes(0x1010, movEAX(3)); f != nil {
		t.Fatal(f)
	}
	if err := m.SetPerm("text2", mem.PermRX); err != nil {
		t.Fatal(err)
	}

	// Both paths must observe the patched second segment.
	if got := run("step after patch", viaStep); got != 3 {
		t.Errorf("eax = %d, want 3 (stale decode cache across segments)", got)
	}
	if got := run("block after patch", viaBlock); got != 3 {
		t.Errorf("eax = %d, want 3 (stale block translation across segments)", got)
	}
}

// TestBlockExecZeroAllocs asserts the block dispatch hot loop allocates
// nothing once the translation is cached, and that the recorder-on
// fallback (which must preserve per-instruction recording order by
// single-stepping) stays allocation-free too.
func TestBlockExecZeroAllocs(t *testing.T) {
	build := func() *CPU {
		m := mem.New()
		text, err := m.Map("text", 0x1000, 0x1000, mem.PermRX)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := m.Map("data", 0x4000, 0x1000, mem.PermRW); err != nil {
			t.Fatal(err)
		}
		if _, err := m.Map("stack", 0x8000, 0x1000, mem.PermRW); err != nil {
			t.Fatal(err)
		}
		a := NewAsm()
		a.Label("loop").
			MovRM(EAX, EBX, 0).
			AddRI(EAX, 1).
			MovMR(EBX, 0, EAX).
			PushR(EAX).
			PopR(EDX).
			Jmp("loop")
		code, err := a.Assemble()
		if err != nil {
			t.Fatal(err)
		}
		copy(text.Data, code.Bytes)
		c := New(m)
		c.SetPC(0x1000)
		c.SetSP(0x8F00)
		c.SetReg(EBX, 0x4000)
		return c
	}

	// The program loops forever, so cap each dispatch at one loop
	// iteration (chained dispatch would otherwise run to the cap).
	c := build()
	for i := 0; i < 8; i++ {
		blockRetired(t, c, 6)
	}
	allocs := testing.AllocsPerRun(1000, func() {
		if ev := c.StepBlock(6); ev.Kind != isa.EventRetired {
			t.Fatalf("step block: %+v", ev)
		}
	})
	if allocs != 0 {
		t.Errorf("StepBlock allocates %.1f objects per dispatch, want 0", allocs)
	}

	c = build()
	c.SetRecorder(telemetry.NewControlRecorder(64))
	for i := 0; i < 8; i++ {
		blockRetired(t, c, 6)
	}
	allocs = testing.AllocsPerRun(1000, func() {
		if ev := c.StepBlock(6); ev.Kind != isa.EventRetired {
			t.Fatalf("step block: %+v", ev)
		}
	})
	if allocs != 0 {
		t.Errorf("StepBlock with recorder allocates %.1f objects per dispatch, want 0", allocs)
	}
	if bs := c.BlockStats(); bs.Instrs != 0 {
		t.Errorf("recorder-on dispatch retired %d instructions in blocks, want 0 (single-step fallback)", bs.Instrs)
	}
}

// FuzzBlockStep is the differential fuzz target: arbitrary code bytes and
// entry registers run in lockstep under block dispatch and single-step,
// and every divergence in events, registers, flags or retirement counts
// is a failure. A second phase patches the code through the RW→write→RX
// cycle and reruns, so stale translations surviving a generation bump are
// caught on fuzzer-found inputs too.
func FuzzBlockStep(f *testing.F) {
	f.Add([]byte{0xC3}, []byte{0x90}, uint32(0), uint32(0))
	f.Add([]byte{0x58, 0x5B, 0xC3}, []byte{0x40}, uint32(1), uint32(2))
	f.Add([]byte{0x90, 0x90, 0xCD, 0x80}, []byte{0xB8, 7, 0, 0, 0}, uint32(3), uint32(4))
	f.Add([]byte{0xE8, 0x00, 0x00, 0x00, 0x00, 0xC3}, []byte{0xE9, 0xFB, 0xFF, 0xFF, 0xFF}, uint32(5), uint32(6))
	f.Fuzz(func(t *testing.T, code, patch []byte, r0, r1 uint32) {
		if len(code) == 0 {
			return
		}
		if len(code) > 1024 {
			code = code[:1024]
		}
		if len(patch) > len(code) {
			patch = patch[:len(code)]
		}
		const codeBase, stackBase = 0x08048000, 0xBFFF0000
		build := func() *CPU {
			m := mem.New()
			text, err := m.Map("code", codeBase, uint32(len(code)), mem.PermRX)
			if err != nil {
				t.Fatalf("map code: %v", err)
			}
			text.Populate(0, code)
			if _, err := m.Map("stack", stackBase, 0x2000, mem.PermRW); err != nil {
				t.Fatalf("map stack: %v", err)
			}
			c := New(m)
			c.SetPC(codeBase)
			c.SetSP(stackBase + 0x1000)
			c.SetReg(EAX, r0)
			c.SetReg(ECX, r1)
			return c
		}
		ref, blk := build(), build()
		lockstep := func(dispatches int) {
			// Finite caps: dispatch chains blocks up to the cap, so an
			// unbounded cap on a fuzzer-found infinite loop would spin.
			caps := []uint64{97, 1, 61, 3}
			for i := 0; i < dispatches; i++ {
				before := blk.InstrCount()
				evB := blk.StepBlock(caps[i%len(caps)])
				k := blk.InstrCount() - before
				steps := k
				if evB.Kind == isa.EventFault || evB.Kind == isa.EventCFIViolation {
					steps = k + 1
				}
				var evR isa.Event
				for j := uint64(0); j < steps; j++ {
					evR = ref.Step()
				}
				if evR.Kind != evB.Kind || evR.PC != evB.PC || evR.Illegal != evB.Illegal {
					t.Fatalf("event mismatch: single-step %+v, block %+v", evR, evB)
				}
				if ref.PC() != blk.PC() || ref.FlagWord() != blk.FlagWord() || ref.InstrCount() != blk.InstrCount() {
					t.Fatalf("state mismatch at pc %#x: flags %x/%x icount %d/%d",
						blk.PC(), ref.FlagWord(), blk.FlagWord(), ref.InstrCount(), blk.InstrCount())
				}
				for r := 0; r < numRegs; r++ {
					if ref.Reg(r) != blk.Reg(r) {
						t.Fatalf("reg %s mismatch: %#x vs %#x", RegName(r), ref.Reg(r), blk.Reg(r))
					}
				}
				if evB.Kind == isa.EventFault || evB.Kind == isa.EventCFIViolation {
					return
				}
			}
		}
		lockstep(96)

		// Patch cycle: stale translations must die with the generation.
		if len(patch) > 0 {
			for _, c := range []*CPU{ref, blk} {
				m := c.Mem()
				if err := m.SetPerm("code", mem.PermRW); err != nil {
					t.Fatal(err)
				}
				if fa := m.WriteBytes(codeBase, patch); fa != nil {
					t.Fatal(fa)
				}
				if err := m.SetPerm("code", mem.PermRX); err != nil {
					t.Fatal(err)
				}
				c.SetPC(codeBase)
				c.SetSP(stackBase + 0x1000)
			}
			lockstep(96)
		}
	})
}
