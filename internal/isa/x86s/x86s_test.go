package x86s

import (
	"math/rand"
	"testing"

	"connlab/internal/isa"
	"connlab/internal/mem"
)

// newCPU maps a code and a stack segment and returns a CPU with SP set.
func newCPU(t *testing.T, code []byte) *CPU {
	t.Helper()
	m := mem.New()
	text, err := m.Map("text", 0x1000, 0x1000, mem.PermRX)
	if err != nil {
		t.Fatal(err)
	}
	copy(text.Data, code)
	if _, err := m.Map("stack", 0x8000, 0x1000, mem.PermRW); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Map("data", 0x4000, 0x1000, mem.PermRW); err != nil {
		t.Fatal(err)
	}
	c := New(m)
	c.SetPC(0x1000)
	c.SetSP(0x8F00)
	return c
}

// runAsm assembles a fragment and executes it until ret/fault/limit.
func runAsm(t *testing.T, build func(a *Asm)) (*CPU, isa.Event) {
	t.Helper()
	a := NewAsm()
	build(a)
	code, err := a.Assemble()
	if err != nil {
		t.Fatalf("assemble: %v", err)
	}
	c := newCPU(t, code.Bytes)
	// Sentinel return address.
	if f := c.Mem().WriteU32(c.SP(), 0xDEAD0000); f != nil {
		t.Fatal(f)
	}
	var ev isa.Event
	for i := 0; i < 10000; i++ {
		ev = c.Step()
		if ev.Kind != isa.EventRetired || ev.PC == 0xDEAD0000 {
			return c, ev
		}
	}
	t.Fatal("run did not terminate")
	return nil, isa.Event{}
}

func TestBasicALUAndFlags(t *testing.T) {
	c, _ := runAsm(t, func(a *Asm) {
		a.MovRI(EAX, 10)
		a.MovRI(EBX, 3)
		a.SubRR(EAX, EBX) // 7
		a.AddRI(EAX, 5)   // 12
		a.MovRR(ECX, EAX)
		a.ShlRI(ECX, 4) // 0xC0
		a.ShrRI(ECX, 2) // 0x30
		a.XorRR(EDX, EDX)
		a.Ret()
	})
	if got := c.Reg(EAX); got != 12 {
		t.Errorf("eax = %d, want 12", got)
	}
	if got := c.Reg(ECX); got != 0x30 {
		t.Errorf("ecx = %#x, want 0x30", got)
	}
	if got := c.Reg(EDX); got != 0 {
		t.Errorf("edx = %d, want 0", got)
	}
}

func TestConditionalBranches(t *testing.T) {
	cases := []struct {
		name string
		a, b uint32
		cond Cond
		take bool
	}{
		{"e-taken", 5, 5, CondE, true},
		{"e-not", 5, 6, CondE, false},
		{"ne", 5, 6, CondNE, true},
		{"l-signed", 0xFFFFFFFF, 0, CondL, true}, // -1 < 0
		{"b-unsigned", 0xFFFFFFFF, 0, CondB, false},
		{"a-unsigned", 0xFFFFFFFF, 0, CondA, true},
		{"g", 7, 3, CondG, true},
		{"ge-eq", 3, 3, CondGE, true},
		{"le", 2, 3, CondLE, true},
		{"be-eq", 3, 3, CondBE, true},
		{"s", 0x80000000, 0, CondNE, true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			c, _ := runAsm(t, func(a *Asm) {
				a.MovRI(EAX, tc.a)
				a.MovRI(EBX, tc.b)
				a.CmpRR(EAX, EBX)
				a.MovRI(ECX, 0)
				a.Jcc(tc.cond, "yes")
				a.Jmp("out")
				a.Label("yes")
				a.MovRI(ECX, 1)
				a.Label("out")
				a.Ret()
			})
			got := c.Reg(ECX) == 1
			if got != tc.take {
				t.Errorf("branch taken = %v, want %v", got, tc.take)
			}
		})
	}
}

func TestPushPopAndLeave(t *testing.T) {
	c, _ := runAsm(t, func(a *Asm) {
		a.PushR(EBP)
		a.MovRR(EBP, ESP)
		a.SubRI(ESP, 32)
		a.MovRI(EAX, 0x1234)
		a.MovMR(EBP, -8, EAX)
		a.MovRM(EBX, EBP, -8)
		a.Leave()
		a.Ret()
	})
	if got := c.Reg(EBX); got != 0x1234 {
		t.Errorf("ebx = %#x, want 0x1234", got)
	}
	if got := c.SP(); got != 0x8F04 {
		t.Errorf("esp = %#x, want balanced 0x8f04", got)
	}
}

func TestCallRetAndJecxz(t *testing.T) {
	c, _ := runAsm(t, func(a *Asm) {
		a.MovRI(ECX, 3)
		a.MovRI(EAX, 0)
		a.Label("loop")
		a.Jecxz("done")
		a.CallLabel("inc2")
		a.DecR(ECX)
		a.Jmp("loop")
		a.Label("done")
		a.Ret()
		a.Label("inc2")
		a.AddRI(EAX, 2)
		a.Ret()
	})
	if got := c.Reg(EAX); got != 6 {
		t.Errorf("eax = %d, want 6", got)
	}
}

func TestByteOpsAndMovsb(t *testing.T) {
	c, _ := runAsm(t, func(a *Asm) {
		a.MovRI(EDX, 0x4000)
		a.MovMI8(EDX, 0, 0xAB)
		a.MovMI8(EDX, 1, 0xCD)
		// movsb copy two bytes 0x4000 -> 0x4010.
		a.MovRI(ESI, 0x4000)
		a.MovRI(EDI, 0x4010)
		a.Movsb()
		a.Movsb()
		a.Movzx8M(EAX, EDX, 0)
		a.MovRM8(1, EDX, 1) // cl = [edx+1]
		a.Ret()
	})
	if got := c.Reg(EAX); got != 0xAB {
		t.Errorf("movzx al = %#x, want 0xAB", got)
	}
	if got := c.Reg(ECX) & 0xFF; got != 0xCD {
		t.Errorf("cl = %#x, want 0xCD", got)
	}
	v, _ := c.Mem().ReadU16(0x4010)
	if v != 0xCDAB {
		t.Errorf("movsb copy = %#x, want 0xCDAB", v)
	}
	if c.Reg(ESI) != 0x4002 || c.Reg(EDI) != 0x4012 {
		t.Errorf("esi/edi = %#x/%#x", c.Reg(ESI), c.Reg(EDI))
	}
}

func TestHighByteRegisters(t *testing.T) {
	c, _ := runAsm(t, func(a *Asm) {
		a.MovRI(EAX, 0x11223344)
		a.MovRI(EDX, 0x4000)
		a.MovMR8(EDX, 0, 4) // ah = 0x33
		a.Movzx8R(EBX, 4)   // ebx = ah
		a.Ret()
	})
	if got := c.Reg(EBX); got != 0x33 {
		t.Errorf("movzx ebx, ah = %#x, want 0x33", got)
	}
	v, _ := c.Mem().ReadU8(0x4000)
	if v != 0x33 {
		t.Errorf("[0x4000] = %#x, want ah", v)
	}
}

func TestCallRegisterSemantics(t *testing.T) {
	// call ebx (FF /2 register form) transfers and pushes the return
	// address; execution returns past the call.
	code := []byte{
		0xBB, 0x08, 0x10, 0x00, 0x00, // mov ebx, 0x1008
		0xFF, 0xD3, // call ebx
		0xC3,                         // ret (returned here)
		0xB8, 0x2A, 0x00, 0x00, 0x00, // target: mov eax, 42
		0xC3, // ret
	}
	c := newCPU(t, code)
	if f := c.Mem().WriteU32(c.SP(), 0xDEAD0000); f != nil {
		t.Fatal(f)
	}
	for i := 0; i < 100; i++ {
		ev := c.Step()
		if ev.PC == 0xDEAD0000 || ev.Kind != isa.EventRetired {
			break
		}
	}
	if got := c.Reg(EAX); got != 42 {
		t.Errorf("eax = %d, want 42", got)
	}
}

func TestIllegalAndTruncated(t *testing.T) {
	if _, err := Decode(nil); err == nil {
		t.Error("empty decode succeeded")
	}
	if _, err := Decode([]byte{0xB8, 0x01}); err == nil {
		t.Error("truncated mov decode succeeded")
	}
	if _, err := Decode([]byte{0x0F, 0xFF}); err == nil {
		t.Error("unknown 0F decode succeeded")
	}
	if _, err := Decode([]byte{0xF1}); err == nil {
		t.Error("unknown opcode decode succeeded")
	}
	// SIB with an index register is unsupported.
	if _, err := Decode([]byte{0x8B, 0x04, 0x58}); err == nil {
		t.Error("SIB with index decoded")
	}
	// hlt is privileged: fault at runtime.
	c := newCPU(t, []byte{0xF4})
	if ev := c.Step(); ev.Kind != isa.EventFault || !ev.Illegal {
		t.Errorf("hlt event = %+v", ev)
	}
}

func TestSyscallEvent(t *testing.T) {
	c := newCPU(t, []byte{0xCD, 0x80, 0xC3})
	ev := c.Step()
	if ev.Kind != isa.EventSyscall {
		t.Fatalf("event = %v, want syscall", ev.Kind)
	}
	if c.PC() != 0x1002 {
		t.Errorf("pc after int = %#x, want past the instruction", c.PC())
	}
}

func TestEspBasedAddressing(t *testing.T) {
	c, _ := runAsm(t, func(a *Asm) {
		a.PushI(0x77)
		a.MovRM(EAX, ESP, 0) // SIB form [esp]
		a.AddRI(ESP, 4)
		a.Ret()
	})
	if got := c.Reg(EAX); got != 0x77 {
		t.Errorf("eax = %#x, want 0x77", got)
	}
}

// TestDecodeRoundTripRandomPrograms: assembling random instruction
// sequences and linearly decoding them yields the same instruction count
// and total length — the assembler and decoder agree.
func TestDecodeRoundTripRandomPrograms(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 200; trial++ {
		a := NewAsm()
		n := 1 + rng.Intn(20)
		for i := 0; i < n; i++ {
			r1 := rng.Intn(8)
			r2 := rng.Intn(8)
			disp := int32(rng.Intn(4096) - 2048)
			switch rng.Intn(14) {
			case 0:
				a.Nop()
			case 1:
				a.PushR(r1)
			case 2:
				a.PopR(r1)
			case 3:
				a.MovRI(r1, rng.Uint32())
			case 4:
				a.MovRR(r1, r2)
			case 5:
				a.MovRM(r1, r2, disp)
			case 6:
				a.MovMR(r1, disp, r2)
			case 7:
				a.AddRI(r1, int32(rng.Intn(100000)-50000))
			case 8:
				a.Lea(r1, r2, disp)
			case 9:
				a.Movzx8M(r1, r2, disp)
			case 10:
				a.TestRR(r1, r2)
			case 11:
				a.CmpRI(r1, int32(rng.Intn(1000)))
			case 12:
				a.MovMI(r1, disp, rng.Uint32())
			case 13:
				a.ShlRI(r1, uint8(rng.Intn(32)))
			}
		}
		code, err := a.Assemble()
		if err != nil {
			t.Fatalf("assemble: %v", err)
		}
		off, count := 0, 0
		for off < len(code.Bytes) {
			in, err := Decode(code.Bytes[off:])
			if err != nil {
				t.Fatalf("trial %d: decode at %d: %v", trial, off, err)
			}
			if in.String() == "(bad)" {
				t.Fatalf("trial %d: bad rendering at %d", trial, off)
			}
			off += int(in.Size)
			count++
		}
		if off != len(code.Bytes) {
			t.Fatalf("trial %d: decoded %d of %d bytes", trial, off, len(code.Bytes))
		}
		if count != n {
			t.Fatalf("trial %d: decoded %d instrs, assembled %d", trial, count, n)
		}
	}
}

func TestAssemblerErrors(t *testing.T) {
	a := NewAsm()
	a.Jmp("nowhere")
	if _, err := a.Assemble(); err == nil {
		t.Error("undefined label accepted")
	}
	b := NewAsm()
	b.Label("x")
	b.Label("x")
	if _, err := b.Assemble(); err == nil {
		t.Error("duplicate label accepted")
	}
	c := NewAsm()
	c.Label("far")
	for i := 0; i < 200; i++ {
		c.Nop()
	}
	c.Jecxz("far")
	if _, err := c.Assemble(); err == nil {
		t.Error("out-of-range jecxz accepted")
	}
}

func TestDisassemblerInterface(t *testing.T) {
	c := newCPU(t, []byte{0x90, 0xC3})
	var d isa.Disassembler = Disasm{}
	text, size, err := d.DisasmAt(c.Mem(), 0x1000)
	if err != nil || text != "nop" || size != 1 {
		t.Errorf("DisasmAt = %q, %d, %v", text, size, err)
	}
	if _, _, err := d.DisasmAt(c.Mem(), 0x0); err == nil {
		t.Error("DisasmAt unmapped succeeded")
	}
}

func TestRegNamePanicsOutOfRange(t *testing.T) {
	c := newCPU(t, []byte{0xC3})
	defer func() {
		if recover() == nil {
			t.Error("Reg(99) did not panic")
		}
	}()
	c.Reg(99)
}
