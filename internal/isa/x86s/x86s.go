// Package x86s implements the lab's 32-bit x86-flavoured simulated CPU:
// variable-length instructions using genuine IA-32 encodings for the
// supported subset (0x90 NOP, 0xC3 RET, 0x50+r PUSH, 0xCD INT, ...),
// stack-passed call arguments, and ret-driven control flow. It is the
// "Intel x86 running Ubuntu 16.04" target of the paper's experiments.
//
// The subset is chosen so that every construct the exploits rely on is
// genuine: NOP sleds are real 0x90 runs, gadgets are real `pop/pop/pop/ret`
// byte sequences discoverable by scanning .text, and ret2libc works by
// `ret`-ing into a function that reads its arguments from the stack.
package x86s

// Register indices for the eight general-purpose 32-bit registers, using
// the hardware encoding order (so PUSH EAX really is 0x50, PUSH ECX 0x51…).
const (
	EAX = iota
	ECX
	EDX
	EBX
	ESP
	EBP
	ESI
	EDI
	numRegs
)

var regNames = [numRegs]string{"eax", "ecx", "edx", "ebx", "esp", "ebp", "esi", "edi"}

var reg8Names = [8]string{"al", "cl", "dl", "bl", "ah", "ch", "dh", "bh"}

// RegName returns the conventional name for a register index.
func RegName(i int) string {
	if i < 0 || i >= numRegs {
		return "r?"
	}
	return regNames[i]
}

// Cond is an x86 condition code (the low nibble of the Jcc opcodes).
type Cond uint8

// Condition codes, matching the hardware encodings (JO=0x70, JNO=0x71, …).
const (
	CondO  Cond = 0x0
	CondNO Cond = 0x1
	CondB  Cond = 0x2
	CondAE Cond = 0x3
	CondE  Cond = 0x4
	CondNE Cond = 0x5
	CondBE Cond = 0x6
	CondA  Cond = 0x7
	CondS  Cond = 0x8
	CondNS Cond = 0x9
	CondL  Cond = 0xC
	CondGE Cond = 0xD
	CondLE Cond = 0xE
	CondG  Cond = 0xF
)

var condNames = map[Cond]string{
	CondO: "o", CondNO: "no", CondB: "b", CondAE: "ae", CondE: "e",
	CondNE: "ne", CondBE: "be", CondA: "a", CondS: "s", CondNS: "ns",
	CondL: "l", CondGE: "ge", CondLE: "le", CondG: "g",
}

// String implements fmt.Stringer.
func (c Cond) String() string {
	if s, ok := condNames[c]; ok {
		return s
	}
	return "cc?"
}

// Op enumerates the decoded operations.
type Op uint8

// Decoded operations. Operand conventions are documented per group in the
// decoder; MemBase == MemAbs means an absolute [disp32] operand.
const (
	OpNop Op = iota + 1
	OpRet
	OpLeave
	OpPushR   // push r32
	OpPushI   // push imm32
	OpPushM   // push r/m32 (FF /6)
	OpPopR    // pop r32
	OpMovRI   // mov r32, imm32
	OpMovRR   // mov r32, r32
	OpMovRM   // mov r32, [mem]
	OpMovMR   // mov [mem], r32
	OpMovMI   // mov dword [mem], imm32
	OpMovMI8  // mov byte [mem], imm8
	OpMovRM8  // mov r8, [mem]
	OpMovMR8  // mov [mem], r8
	OpMovzx8  // movzx r32, byte [mem] / r8
	OpLea     // lea r32, [mem]
	OpAluRR   // ALU rm32, r32  (reg or mem destination)
	OpAluRI   // ALU r/m32, imm (0x81 / 0x83 groups)
	OpTestRR  // test rm32, r32
	OpIncR    // inc r32
	OpDecR    // dec r32
	OpJmpRel  // jmp rel8/rel32
	OpJcc     // jcc rel8/rel32
	OpJecxz   // jecxz rel8
	OpCallRel // call rel32
	OpCallInd // call r/m32 (FF /2)
	OpJmpInd  // jmp r/m32 (FF /4)
	OpInt     // int imm8
	OpMovsb   // movsb
	OpHlt     // hlt (treated as privileged -> fault)
	OpShlRI   // shl r32, imm8 (C1 /4)
	OpShrRI   // shr r32, imm8 (C1 /5)
)

// Alu selects the operation for OpAluRR/OpAluRI, using the IA-32 /digit
// encoding order of the 0x81/0x83 immediate groups.
type Alu uint8

// ALU sub-operations.
const (
	AluAdd Alu = 0
	AluOr  Alu = 1
	AluAnd Alu = 4
	AluSub Alu = 5
	AluXor Alu = 6
	AluCmp Alu = 7
)

var aluNames = map[Alu]string{
	AluAdd: "add", AluOr: "or", AluAnd: "and",
	AluSub: "sub", AluXor: "xor", AluCmp: "cmp",
}

// String implements fmt.Stringer.
func (a Alu) String() string {
	if s, ok := aluNames[a]; ok {
		return s
	}
	return "alu?"
}

// MemAbs marks an absolute-address memory operand (no base register).
const MemAbs = -1

// Instr is one decoded instruction.
type Instr struct {
	Op   Op
	Alu  Alu
	Cond Cond
	R1   int // destination / primary register
	R2   int // source register
	Base int // memory base register, or MemAbs
	Disp int32
	Imm  uint32
	Size uint32 // encoded length in bytes
	// MemOperand reports whether the r/m operand is memory (vs register)
	// for the dual-form ops.
	MemOperand bool
}
