package x86s

import (
	"connlab/internal/isa"
	"connlab/internal/mem"
	"connlab/internal/telemetry"
)

// flags is the subset of EFLAGS the lab models.
type flags struct {
	zf, sf, cf, of bool
}

// dcSize is the number of slots in the decoded-instruction cache
// (direct-mapped on the low bits of the PC).
const dcSize = 1024

// dcEntry is one decode-cache slot: the instruction decoded at pc while the
// memory layout generation was gen. gen 0 (the zero value) never matches a
// live Memory, whose generations start at 1.
type dcEntry struct {
	pc  uint32
	gen uint64
	in  Instr
}

// CPU is a simulated x86s hardware thread.
type CPU struct {
	regs   [numRegs]uint32
	eip    uint32
	fl     flags
	m      *mem.Memory
	hooks  isa.Hooks
	rec    *telemetry.ControlRecorder
	icount uint64

	// dcMisses counts decode-cache misses: a plain (non-atomic) field —
	// a CPU is stepped by one goroutine — bumped only on the miss path,
	// which already pays a full fetch+decode. Hits are derived by the
	// kernel (instructions retired minus misses), keeping the cache-hit
	// fast path free of bookkeeping.
	dcMisses uint64

	// dc caches decode results for instructions in non-writable segments.
	// Validity is keyed to mem.Memory.Gen(): while the generation is
	// unchanged, a non-writable segment's bytes cannot change (every store
	// needs PermWrite, and SetPerm/Map/Unmap/Reset all bump the
	// generation), so a matching entry replays both the decode and the
	// execute-permission check that produced it. Writable (RWX) mappings
	// are never cached — self-modifying shellcode always re-decodes.
	dc [dcSize]dcEntry

	// bc is the basic-block translation cache (see block.go), keyed to
	// the memory generation like dc; bcStats its monotonic counters.
	bc      [bcSize]bcEntry
	bcStats isa.BlockStats
}

var _ isa.CPU = (*CPU)(nil)

// New returns a CPU executing from m with all registers zero.
func New(m *mem.Memory) *CPU { return &CPU{m: m} }

// Arch implements isa.CPU.
func (c *CPU) Arch() isa.Arch { return isa.ArchX86S }

// Mem implements isa.CPU.
func (c *CPU) Mem() *mem.Memory { return c.m }

// PC implements isa.CPU.
func (c *CPU) PC() uint32 { return c.eip }

// SetPC implements isa.CPU.
func (c *CPU) SetPC(v uint32) { c.eip = v }

// SP implements isa.CPU.
func (c *CPU) SP() uint32 { return c.regs[ESP] }

// SetSP implements isa.CPU.
func (c *CPU) SetSP(v uint32) { c.regs[ESP] = v }

// Reg implements isa.CPU.
func (c *CPU) Reg(i int) uint32 {
	if i < 0 || i >= numRegs {
		panic(isa.RegOutOfRange(isa.ArchX86S, i))
	}
	return c.regs[i]
}

// SetReg implements isa.CPU.
func (c *CPU) SetReg(i int, v uint32) {
	if i < 0 || i >= numRegs {
		panic(isa.RegOutOfRange(isa.ArchX86S, i))
	}
	c.regs[i] = v
}

// NumRegs implements isa.CPU.
func (c *CPU) NumRegs() int { return numRegs }

// RegName implements isa.CPU.
func (c *CPU) RegName(i int) string { return RegName(i) }

// SetHooks implements isa.CPU.
func (c *CPU) SetHooks(h isa.Hooks) { c.hooks = h }

// SetRecorder implements isa.CPU.
func (c *CPU) SetRecorder(r *telemetry.ControlRecorder) { c.rec = r }

// InstrCount implements isa.CPU.
func (c *CPU) InstrCount() uint64 { return c.icount }

// DecodeCacheMisses implements isa.CPU.
func (c *CPU) DecodeCacheMisses() uint64 { return c.dcMisses }

// ResetState returns registers, PC and flags to their power-on (all zero)
// values, as if the CPU were freshly constructed. The instruction counter
// keeps running (it is monotonic; callers consume deltas) and the decode
// cache is kept — a memory-generation bump already invalidates it. The
// block cache is emptied (keeping the translated-instruction storage):
// a recycle bumps the generation anyway, and starting cold keeps the
// block counters a pure function of each run instead of depending on
// which previous image the CPU happened to execute.
func (c *CPU) ResetState() {
	c.regs = [numRegs]uint32{}
	c.eip = 0
	c.fl = flags{}
	for i := range c.bc {
		c.bc[i].pc, c.bc[i].gen = 0, 0
		c.bc[i].ins = c.bc[i].ins[:0]
	}
}

// FlagWord packs the architectural flag state into one word (bit 0 zf,
// bit 1 sf, bit 2 cf, bit 3 of). The assignment is arbitrary but stable;
// the differential lockstep harness compares it across executors.
func (c *CPU) FlagWord() uint32 {
	var w uint32
	if c.fl.zf {
		w |= 1
	}
	if c.fl.sf {
		w |= 2
	}
	if c.fl.cf {
		w |= 4
	}
	if c.fl.of {
		w |= 8
	}
	return w
}

// reg8 reads byte register i (0-3 low bytes, 4-7 high bytes).
func (c *CPU) reg8(i int) uint8 {
	if i < 4 {
		return uint8(c.regs[i])
	}
	return uint8(c.regs[i-4] >> 8)
}

// setReg8 writes byte register i.
func (c *CPU) setReg8(i int, v uint8) {
	if i < 4 {
		c.regs[i] = c.regs[i]&^uint32(0xFF) | uint32(v)
		return
	}
	c.regs[i-4] = c.regs[i-4]&^uint32(0xFF00) | uint32(v)<<8
}

// effAddr computes the effective address of a memory operand.
func (c *CPU) effAddr(in Instr) uint32 {
	if in.Base == MemAbs {
		return uint32(in.Disp)
	}
	return c.regs[in.Base] + uint32(in.Disp)
}

// push stores v at [esp-4] and decrements esp.
func (c *CPU) push(v uint32) *mem.Fault {
	sp := c.regs[ESP] - 4
	if f := c.m.WriteU32(sp, v); f != nil {
		return f
	}
	c.regs[ESP] = sp
	return nil
}

// pop loads from [esp] and increments esp.
func (c *CPU) pop() (uint32, *mem.Fault) {
	v, f := c.m.ReadU32(c.regs[ESP])
	if f != nil {
		return 0, f
	}
	c.regs[ESP] += 4
	return v, nil
}

// setFlagsLogic sets flags after a logical op (cf=of=0).
func (c *CPU) setFlagsLogic(res uint32) {
	c.fl = flags{zf: res == 0, sf: int32(res) < 0}
}

// setFlagsAdd sets flags after a+b.
func (c *CPU) setFlagsAdd(a, b, res uint32) {
	c.fl.zf = res == 0
	c.fl.sf = int32(res) < 0
	c.fl.cf = res < a
	c.fl.of = (a^res)&(b^res)&0x80000000 != 0
}

// setFlagsSub sets flags after a-b.
func (c *CPU) setFlagsSub(a, b, res uint32) {
	c.fl.zf = res == 0
	c.fl.sf = int32(res) < 0
	c.fl.cf = a < b
	c.fl.of = (a^b)&(a^res)&0x80000000 != 0
}

// cond evaluates a condition code against the flags.
func (c *CPU) cond(cc Cond) bool {
	switch cc {
	case CondO:
		return c.fl.of
	case CondNO:
		return !c.fl.of
	case CondB:
		return c.fl.cf
	case CondAE:
		return !c.fl.cf
	case CondE:
		return c.fl.zf
	case CondNE:
		return !c.fl.zf
	case CondBE:
		return c.fl.cf || c.fl.zf
	case CondA:
		return !c.fl.cf && !c.fl.zf
	case CondS:
		return c.fl.sf
	case CondNS:
		return !c.fl.sf
	case CondL:
		return c.fl.sf != c.fl.of
	case CondGE:
		return c.fl.sf == c.fl.of
	case CondLE:
		return c.fl.zf || c.fl.sf != c.fl.of
	case CondG:
		return !c.fl.zf && c.fl.sf == c.fl.of
	default:
		return false
	}
}

// control records a control transfer in the flight recorder and runs the
// installed hook; a hook veto surfaces as a CFI-violation event.
// telemetry.Ctl* values mirror isa.ControlKind, so the kind byte passes
// straight through.
func (c *CPU) control(kind isa.ControlKind, from, to, ret uint32) *isa.Event {
	if c.rec != nil {
		c.rec.Record(uint8(kind), from, to, c.icount)
	}
	if c.hooks == nil {
		return nil
	}
	if err := c.hooks.OnControl(kind, from, to, ret); err != nil {
		return &isa.Event{Kind: isa.EventCFIViolation, PC: from, Reason: err.Error()}
	}
	return nil
}

// maxInstrLen is the longest encoding the decoder can produce.
const maxInstrLen = 12

// Step implements isa.CPU. It fetches, decodes and executes one
// instruction, reporting the outcome.
func (c *CPU) Step() isa.Event {
	pc := c.eip
	gen := c.m.Gen()
	slot := &c.dc[pc&(dcSize-1)]
	var in Instr
	if slot.pc == pc && slot.gen == gen {
		in = slot.in
	} else {
		c.dcMisses++
		window, perm, f := c.m.FetchWindow(pc, maxInstrLen)
		if f != nil {
			return isa.FaultEvent(pc, f)
		}
		var err error
		in, err = Decode(window)
		if err != nil {
			return isa.IllegalEvent(pc)
		}
		if perm&mem.PermWrite == 0 {
			*slot = dcEntry{pc: pc, gen: gen, in: in}
		}
	}
	next := pc + in.Size

	fault := func(f *mem.Fault) isa.Event { return isa.FaultEvent(pc, f) }

	switch in.Op {
	case OpNop:
	case OpHlt:
		return isa.IllegalEvent(pc) // privileged in user mode

	case OpRet:
		tgt, f := c.pop()
		if f != nil {
			return fault(f)
		}
		if ev := c.control(isa.ControlReturn, pc, tgt, 0); ev != nil {
			return *ev
		}
		next = tgt

	case OpLeave:
		c.regs[ESP] = c.regs[EBP]
		v, f := c.pop()
		if f != nil {
			return fault(f)
		}
		c.regs[EBP] = v

	case OpPushR:
		if f := c.push(c.regs[in.R1]); f != nil {
			return fault(f)
		}
	case OpPushI:
		if f := c.push(in.Imm); f != nil {
			return fault(f)
		}
	case OpPushM:
		var v uint32
		if in.MemOperand {
			var f *mem.Fault
			v, f = c.m.ReadU32(c.effAddr(in))
			if f != nil {
				return fault(f)
			}
		} else {
			v = c.regs[in.R1]
		}
		if f := c.push(v); f != nil {
			return fault(f)
		}
	case OpPopR:
		v, f := c.pop()
		if f != nil {
			return fault(f)
		}
		c.regs[in.R1] = v

	case OpIncR:
		a := c.regs[in.R1]
		res := a + 1
		c.regs[in.R1] = res
		cf := c.fl.cf // inc preserves CF
		c.setFlagsAdd(a, 1, res)
		c.fl.cf = cf
	case OpDecR:
		a := c.regs[in.R1]
		res := a - 1
		c.regs[in.R1] = res
		cf := c.fl.cf // dec preserves CF
		c.setFlagsSub(a, 1, res)
		c.fl.cf = cf

	case OpMovRI:
		c.regs[in.R1] = in.Imm
	case OpMovRR:
		c.regs[in.R1] = c.regs[in.R2]
	case OpMovRM:
		v, f := c.m.ReadU32(c.effAddr(in))
		if f != nil {
			return fault(f)
		}
		c.regs[in.R1] = v
	case OpMovMR:
		if f := c.m.WriteU32(c.effAddr(in), c.regs[in.R2]); f != nil {
			return fault(f)
		}
	case OpMovMI:
		if f := c.m.WriteU32(c.effAddr(in), in.Imm); f != nil {
			return fault(f)
		}
	case OpMovMI8:
		if f := c.m.WriteU8(c.effAddr(in), uint8(in.Imm)); f != nil {
			return fault(f)
		}
	case OpMovRM8:
		v, f := c.m.ReadU8(c.effAddr(in))
		if f != nil {
			return fault(f)
		}
		c.setReg8(in.R1, v)
	case OpMovMR8:
		if f := c.m.WriteU8(c.effAddr(in), c.reg8(in.R2)); f != nil {
			return fault(f)
		}
	case OpMovzx8:
		var v uint8
		if in.MemOperand {
			var f *mem.Fault
			v, f = c.m.ReadU8(c.effAddr(in))
			if f != nil {
				return fault(f)
			}
		} else {
			v = c.reg8(in.R2)
		}
		c.regs[in.R1] = uint32(v)
	case OpLea:
		c.regs[in.R1] = c.effAddr(in)

	case OpAluRR, OpAluRI:
		if ev := c.stepAlu(in); ev != nil {
			return isa.Event{Kind: ev.Kind, PC: pc, Fault: ev.Fault}
		}
	case OpTestRR:
		c.setFlagsLogic(c.regs[in.R1] & c.regs[in.R2])

	case OpJmpRel:
		next = next + uint32(in.Disp)
	case OpJcc:
		if c.cond(in.Cond) {
			next = next + uint32(in.Disp)
		}
	case OpJecxz:
		if c.regs[ECX] == 0 {
			next = next + uint32(in.Disp)
		}

	case OpCallRel:
		tgt := next + uint32(in.Disp)
		if ev := c.control(isa.ControlCall, pc, tgt, next); ev != nil {
			return *ev
		}
		if f := c.push(next); f != nil {
			return fault(f)
		}
		next = tgt
	case OpCallInd:
		tgt, f := c.indirectTarget(in)
		if f != nil {
			return fault(f)
		}
		if ev := c.control(isa.ControlCall, pc, tgt, next); ev != nil {
			return *ev
		}
		if f := c.push(next); f != nil {
			return fault(f)
		}
		next = tgt
	case OpJmpInd:
		tgt, f := c.indirectTarget(in)
		if f != nil {
			return fault(f)
		}
		if ev := c.control(isa.ControlJump, pc, tgt, 0); ev != nil {
			return *ev
		}
		next = tgt

	case OpMovsb:
		v, f := c.m.ReadU8(c.regs[ESI])
		if f != nil {
			return fault(f)
		}
		if f := c.m.WriteU8(c.regs[EDI], v); f != nil {
			return fault(f)
		}
		c.regs[ESI]++
		c.regs[EDI]++

	case OpShlRI:
		c.regs[in.R1] <<= in.Imm & 31
		c.setFlagsLogic(c.regs[in.R1])
	case OpShrRI:
		c.regs[in.R1] >>= in.Imm & 31
		c.setFlagsLogic(c.regs[in.R1])

	case OpInt:
		if c.rec != nil {
			c.rec.Record(telemetry.CtlSyscall, pc, c.regs[EAX], c.icount)
		}
		c.eip = next
		c.icount++
		return isa.Event{Kind: isa.EventSyscall, PC: next}

	default:
		return isa.IllegalEvent(pc)
	}

	c.eip = next
	c.icount++
	return isa.Event{Kind: isa.EventRetired, PC: next}
}

// indirectTarget resolves the target of call/jmp r/m32.
func (c *CPU) indirectTarget(in Instr) (uint32, *mem.Fault) {
	if !in.MemOperand {
		return c.regs[in.R1], nil
	}
	return c.m.ReadU32(c.effAddr(in))
}

// stepAlu executes the ALU dual-form and immediate-form operations.
func (c *CPU) stepAlu(in Instr) *isa.Event {
	// Load the r/m operand.
	var a uint32
	var addr uint32
	if in.MemOperand {
		addr = c.effAddr(in)
		v, f := c.m.ReadU32(addr)
		if f != nil {
			ev := isa.FaultEvent(c.eip, f)
			return &ev
		}
		a = v
	} else {
		a = c.regs[in.R1]
	}
	b := in.Imm
	if in.Op == OpAluRR {
		b = c.regs[in.R2]
	}

	var res uint32
	store := true
	switch in.Alu {
	case AluAdd:
		res = a + b
		c.setFlagsAdd(a, b, res)
	case AluOr:
		res = a | b
		c.setFlagsLogic(res)
	case AluAnd:
		res = a & b
		c.setFlagsLogic(res)
	case AluSub:
		res = a - b
		c.setFlagsSub(a, b, res)
	case AluXor:
		res = a ^ b
		c.setFlagsLogic(res)
	case AluCmp:
		res = a - b
		c.setFlagsSub(a, b, res)
		store = false
	}
	if !store {
		return nil
	}
	if in.MemOperand {
		if f := c.m.WriteU32(addr, res); f != nil {
			ev := isa.FaultEvent(c.eip, f)
			return &ev
		}
	} else {
		c.regs[in.R1] = res
	}
	return nil
}
