package x86s

import (
	"fmt"
)

// RelocKind is how a linker patches a symbol reference.
type RelocKind uint8

// Relocation kinds.
const (
	// RelocAbs32 patches the absolute 32-bit address of the symbol.
	RelocAbs32 RelocKind = iota + 1
	// RelocRel32 patches symbol - (site + 4), the call/jmp rel32 form.
	RelocRel32
)

// Reloc is an unresolved reference to an external symbol, to be patched by
// the image linker once final addresses are known.
type Reloc struct {
	Off    int // offset of the 32-bit patch site within the code
	Kind   RelocKind
	Symbol string
	Addend int32
}

// Code is the output of Asm.Assemble: position-dependent bytes plus the
// relocations the linker must apply.
type Code struct {
	Bytes  []byte
	Relocs []Reloc
}

type labelFixup struct {
	off   int // patch site offset
	size  int // 1 or 4
	next  int // offset of the following instruction (rel base)
	label string
}

// Asm is a builder-style assembler for one x86s function. Label references
// are intra-function; symbol references are resolved later by the linker.
type Asm struct {
	buf    []byte
	labels map[string]int
	lfix   []labelFixup
	relocs []Reloc
	err    error
}

// NewAsm returns an empty assembler.
func NewAsm() *Asm {
	return &Asm{labels: make(map[string]int)}
}

func (a *Asm) emit(b ...byte) { a.buf = append(a.buf, b...) }

func (a *Asm) emit32(v uint32) {
	a.emit(byte(v), byte(v>>8), byte(v>>16), byte(v>>24))
}

func (a *Asm) setErr(format string, args ...any) {
	if a.err == nil {
		a.err = fmt.Errorf(format, args...)
	}
}

// emitModRM emits a ModRM (+SIB/disp) for a memory operand [base+disp], or
// an absolute [disp32] when base == MemAbs.
func (a *Asm) emitModRM(reg, base int, disp int32) {
	if base == MemAbs {
		a.emit(byte(reg<<3 | 5))
		a.emit32(uint32(disp))
		return
	}
	var mod byte
	switch {
	case disp == 0 && base != EBP:
		mod = 0
	case disp >= -128 && disp <= 127:
		mod = 1
	default:
		mod = 2
	}
	a.emit(mod<<6 | byte(reg<<3) | byte(base&7))
	if base == ESP {
		a.emit(0x24) // SIB: no index, base=esp
	}
	switch mod {
	case 1:
		a.emit(byte(int8(disp)))
	case 2:
		a.emit32(uint32(disp))
	}
}

// emitModRMReg emits a register-direct ModRM.
func (a *Asm) emitModRMReg(reg, rm int) {
	a.emit(0xC0 | byte(reg<<3) | byte(rm&7))
}

// Raw emits literal bytes.
func (a *Asm) Raw(b ...byte) *Asm { a.emit(b...); return a }

// Nop emits nop (0x90).
func (a *Asm) Nop() *Asm { a.emit(0x90); return a }

// Ret emits ret.
func (a *Asm) Ret() *Asm { a.emit(0xC3); return a }

// Leave emits leave.
func (a *Asm) Leave() *Asm { a.emit(0xC9); return a }

// Movsb emits movsb.
func (a *Asm) Movsb() *Asm { a.emit(0xA4); return a }

// PushR emits push r32.
func (a *Asm) PushR(r int) *Asm { a.emit(0x50 + byte(r)); return a }

// PopR emits pop r32.
func (a *Asm) PopR(r int) *Asm { a.emit(0x58 + byte(r)); return a }

// IncR emits inc r32.
func (a *Asm) IncR(r int) *Asm { a.emit(0x40 + byte(r)); return a }

// DecR emits dec r32.
func (a *Asm) DecR(r int) *Asm { a.emit(0x48 + byte(r)); return a }

// PushI emits push imm32.
func (a *Asm) PushI(v uint32) *Asm { a.emit(0x68); a.emit32(v); return a }

// PushISym emits push imm32 whose value is the address of sym+addend.
func (a *Asm) PushISym(sym string, addend int32) *Asm {
	a.emit(0x68)
	a.relocs = append(a.relocs, Reloc{Off: len(a.buf), Kind: RelocAbs32, Symbol: sym, Addend: addend})
	a.emit32(0)
	return a
}

// MovRI emits mov r32, imm32.
func (a *Asm) MovRI(r int, v uint32) *Asm { a.emit(0xB8 + byte(r)); a.emit32(v); return a }

// MovRISym emits mov r32, imm32 with the address of sym+addend.
func (a *Asm) MovRISym(r int, sym string, addend int32) *Asm {
	a.emit(0xB8 + byte(r))
	a.relocs = append(a.relocs, Reloc{Off: len(a.buf), Kind: RelocAbs32, Symbol: sym, Addend: addend})
	a.emit32(0)
	return a
}

// MovRR emits mov dst, src (0x89 reg form).
func (a *Asm) MovRR(dst, src int) *Asm { a.emit(0x89); a.emitModRMReg(src, dst); return a }

// MovRM emits mov dst, [base+disp].
func (a *Asm) MovRM(dst, base int, disp int32) *Asm {
	a.emit(0x8B)
	a.emitModRM(dst, base, disp)
	return a
}

// MovRMAbsSym emits mov dst, [sym+addend].
func (a *Asm) MovRMAbsSym(dst int, sym string, addend int32) *Asm {
	a.emit(0x8B)
	a.emit(byte(dst<<3 | 5))
	a.relocs = append(a.relocs, Reloc{Off: len(a.buf), Kind: RelocAbs32, Symbol: sym, Addend: addend})
	a.emit32(0)
	return a
}

// MovMR emits mov [base+disp], src.
func (a *Asm) MovMR(base int, disp int32, src int) *Asm {
	a.emit(0x89)
	a.emitModRM(src, base, disp)
	return a
}

// MovMRAbsSym emits mov [sym+addend], src.
func (a *Asm) MovMRAbsSym(sym string, addend int32, src int) *Asm {
	a.emit(0x89)
	a.emit(byte(src<<3 | 5))
	a.relocs = append(a.relocs, Reloc{Off: len(a.buf), Kind: RelocAbs32, Symbol: sym, Addend: addend})
	a.emit32(0)
	return a
}

// MovMI emits mov dword [base+disp], imm32.
func (a *Asm) MovMI(base int, disp int32, v uint32) *Asm {
	a.emit(0xC7)
	a.emitModRM(0, base, disp)
	a.emit32(v)
	return a
}

// MovMI8 emits mov byte [base+disp], imm8.
func (a *Asm) MovMI8(base int, disp int32, v uint8) *Asm {
	a.emit(0xC6)
	a.emitModRM(0, base, disp)
	a.emit(v)
	return a
}

// MovRM8 emits mov r8, byte [base+disp].
func (a *Asm) MovRM8(dst8, base int, disp int32) *Asm {
	a.emit(0x8A)
	a.emitModRM(dst8, base, disp)
	return a
}

// MovMR8 emits mov byte [base+disp], r8.
func (a *Asm) MovMR8(base int, disp int32, src8 int) *Asm {
	a.emit(0x88)
	a.emitModRM(src8, base, disp)
	return a
}

// Movzx8M emits movzx dst, byte [base+disp].
func (a *Asm) Movzx8M(dst, base int, disp int32) *Asm {
	a.emit(0x0F, 0xB6)
	a.emitModRM(dst, base, disp)
	return a
}

// Movzx8R emits movzx dst, src8.
func (a *Asm) Movzx8R(dst, src8 int) *Asm {
	a.emit(0x0F, 0xB6)
	a.emitModRMReg(dst, src8)
	return a
}

// Lea emits lea dst, [base+disp].
func (a *Asm) Lea(dst, base int, disp int32) *Asm {
	a.emit(0x8D)
	a.emitModRM(dst, base, disp)
	return a
}

var aluRROpcode = map[Alu]byte{
	AluAdd: 0x01, AluOr: 0x09, AluAnd: 0x21,
	AluSub: 0x29, AluXor: 0x31, AluCmp: 0x39,
}

// AluRR emits "<alu> dst, src" in the r/m32,r32 form.
func (a *Asm) AluRR(op Alu, dst, src int) *Asm {
	oc, ok := aluRROpcode[op]
	if !ok {
		a.setErr("x86s asm: unsupported alu %v", op)
		return a
	}
	a.emit(oc)
	a.emitModRMReg(src, dst)
	return a
}

// AddRR emits add dst, src.
func (a *Asm) AddRR(dst, src int) *Asm { return a.AluRR(AluAdd, dst, src) }

// SubRR emits sub dst, src.
func (a *Asm) SubRR(dst, src int) *Asm { return a.AluRR(AluSub, dst, src) }

// XorRR emits xor dst, src.
func (a *Asm) XorRR(dst, src int) *Asm { return a.AluRR(AluXor, dst, src) }

// CmpRR emits cmp aReg, bReg.
func (a *Asm) CmpRR(x, y int) *Asm { return a.AluRR(AluCmp, x, y) }

// AluRI emits "<alu> r32, imm", picking the short imm8 form when possible.
func (a *Asm) AluRI(op Alu, r int, v int32) *Asm {
	if _, ok := aluNames[op]; !ok {
		a.setErr("x86s asm: unsupported alu %v", op)
		return a
	}
	if v >= -128 && v <= 127 {
		a.emit(0x83)
		a.emitModRMReg(int(op), r)
		a.emit(byte(int8(v)))
		return a
	}
	a.emit(0x81)
	a.emitModRMReg(int(op), r)
	a.emit32(uint32(v))
	return a
}

// AddRI emits add r, imm.
func (a *Asm) AddRI(r int, v int32) *Asm { return a.AluRI(AluAdd, r, v) }

// SubRI emits sub r, imm.
func (a *Asm) SubRI(r int, v int32) *Asm { return a.AluRI(AluSub, r, v) }

// AndRI emits and r, imm.
func (a *Asm) AndRI(r int, v int32) *Asm { return a.AluRI(AluAnd, r, v) }

// CmpRI emits cmp r, imm.
func (a *Asm) CmpRI(r int, v int32) *Asm { return a.AluRI(AluCmp, r, v) }

// TestRR emits test x, y.
func (a *Asm) TestRR(x, y int) *Asm {
	a.emit(0x85)
	a.emitModRMReg(y, x)
	return a
}

// IntN emits int imm8.
func (a *Asm) IntN(n uint8) *Asm { a.emit(0xCD, n); return a }

// ShlRI emits shl r32, imm8.
func (a *Asm) ShlRI(r int, n uint8) *Asm {
	a.emit(0xC1)
	a.emitModRMReg(4, r)
	a.emit(n)
	return a
}

// ShrRI emits shr r32, imm8.
func (a *Asm) ShrRI(r int, n uint8) *Asm {
	a.emit(0xC1)
	a.emitModRMReg(5, r)
	a.emit(n)
	return a
}

// Label defines a local label at the current offset.
func (a *Asm) Label(name string) *Asm {
	if _, dup := a.labels[name]; dup {
		a.setErr("x86s asm: duplicate label %q", name)
		return a
	}
	a.labels[name] = len(a.buf)
	return a
}

// Jmp emits jmp rel32 to a local label.
func (a *Asm) Jmp(label string) *Asm {
	a.emit(0xE9)
	a.lfix = append(a.lfix, labelFixup{off: len(a.buf), size: 4, next: len(a.buf) + 4, label: label})
	a.emit32(0)
	return a
}

// Jcc emits jcc rel32 to a local label.
func (a *Asm) Jcc(c Cond, label string) *Asm {
	a.emit(0x0F, 0x80+byte(c))
	a.lfix = append(a.lfix, labelFixup{off: len(a.buf), size: 4, next: len(a.buf) + 4, label: label})
	a.emit32(0)
	return a
}

// Jecxz emits jecxz rel8 to a local label (±127 bytes).
func (a *Asm) Jecxz(label string) *Asm {
	a.emit(0xE3)
	a.lfix = append(a.lfix, labelFixup{off: len(a.buf), size: 1, next: len(a.buf) + 1, label: label})
	a.emit(0)
	return a
}

// CallLabel emits call rel32 to a local label.
func (a *Asm) CallLabel(label string) *Asm {
	a.emit(0xE8)
	a.lfix = append(a.lfix, labelFixup{off: len(a.buf), size: 4, next: len(a.buf) + 4, label: label})
	a.emit32(0)
	return a
}

// CallSym emits call rel32 to an external symbol.
func (a *Asm) CallSym(sym string) *Asm {
	a.emit(0xE8)
	a.relocs = append(a.relocs, Reloc{Off: len(a.buf), Kind: RelocRel32, Symbol: sym})
	a.emit32(0)
	return a
}

// CallR emits call reg.
func (a *Asm) CallR(r int) *Asm {
	a.emit(0xFF)
	a.emitModRMReg(2, r)
	return a
}

// JmpMAbsSym emits jmp dword [sym] — the PLT stub form (FF 25 disp32).
func (a *Asm) JmpMAbsSym(sym string) *Asm {
	a.emit(0xFF, 0x25)
	a.relocs = append(a.relocs, Reloc{Off: len(a.buf), Kind: RelocAbs32, Symbol: sym})
	a.emit32(0)
	return a
}

// PushM emits push dword [base+disp].
func (a *Asm) PushM(base int, disp int32) *Asm {
	a.emit(0xFF)
	a.emitModRM(6, base, disp)
	return a
}

// PushMAbsSym emits push dword [sym].
func (a *Asm) PushMAbsSym(sym string) *Asm {
	a.emit(0xFF, 0x35)
	a.relocs = append(a.relocs, Reloc{Off: len(a.buf), Kind: RelocAbs32, Symbol: sym})
	a.emit32(0)
	return a
}

// Len returns the current code length in bytes.
func (a *Asm) Len() int { return len(a.buf) }

// Assemble resolves label fixups and returns the code with its outstanding
// symbol relocations.
func (a *Asm) Assemble() (Code, error) {
	if a.err != nil {
		return Code{}, a.err
	}
	for _, f := range a.lfix {
		tgt, ok := a.labels[f.label]
		if !ok {
			return Code{}, fmt.Errorf("x86s asm: undefined label %q", f.label)
		}
		rel := tgt - f.next
		switch f.size {
		case 1:
			if rel < -128 || rel > 127 {
				return Code{}, fmt.Errorf("x86s asm: label %q out of rel8 range (%d)", f.label, rel)
			}
			a.buf[f.off] = byte(int8(rel))
		case 4:
			v := uint32(int32(rel))
			a.buf[f.off] = byte(v)
			a.buf[f.off+1] = byte(v >> 8)
			a.buf[f.off+2] = byte(v >> 16)
			a.buf[f.off+3] = byte(v >> 24)
		}
	}
	out := make([]byte, len(a.buf))
	copy(out, a.buf)
	relocs := make([]Reloc, len(a.relocs))
	copy(relocs, a.relocs)
	return Code{Bytes: out, Relocs: relocs}, nil
}
