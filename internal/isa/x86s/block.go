package x86s

import (
	"connlab/internal/isa"
	"connlab/internal/mem"
)

// Basic-block translation: straight-line runs of non-writable code are
// pre-decoded once into a flat []blockInstr and executed by a tight loop
// that skips the per-instruction decode-cache probe, generation load and
// event construction Step pays. Validity is keyed to mem.Memory.Gen()
// exactly like the decode cache — the generation is checked once per
// block entry, which is sufficient because nothing inside a block can
// move it: stores into non-writable segments fault, and Map/Unmap/
// SetPerm/Reset only happen between Step/StepBlock calls. Writable (RWX)
// code is never translated, so self-modifying shellcode always takes the
// single-step path and sees its own stores immediately.
//
// The executor duplicates Step's per-op semantics on purpose: folding
// both paths over one shared switch would put a non-inlinable call on
// Step's hot path, and the whole point of the block loop is shedding
// per-instruction overhead. The differential lockstep harness
// (internal/isa/isatest) pins the two paths against each other.

// bcSize is the number of block-cache slots (direct-mapped on the entry
// PC's low bits).
const bcSize = 512

// maxBlockInstrs bounds one translated block. Runs longer than this are
// split; the follow-on block is cached under its own entry PC.
const maxBlockInstrs = 64

// blockInstr is one pre-decoded instruction of a translated block.
type blockInstr struct {
	pc uint32
	in Instr
}

// bcEntry is one block-cache slot: the instructions translated starting
// at pc while the memory generation was gen. gen 0 (the zero value)
// never matches a live Memory. A matching entry with an empty ins slice
// is a negative result — the entry PC is known untranslatable (writable
// code, unfetchable, undecodable) for this generation — and routes the
// dispatch to the single-step fallback without re-probing memory.
type bcEntry struct {
	pc  uint32
	gen uint64
	ins []blockInstr
}

// blockEnder reports whether op terminates a basic block: every control
// transfer plus the syscall and privileged ops, all of which either move
// PC non-sequentially or hand control to the kernel. They execute as the
// block's last instruction.
func blockEnder(op Op) bool {
	switch op {
	case OpRet, OpJmpRel, OpJcc, OpJecxz, OpCallRel, OpCallInd, OpJmpInd, OpInt, OpHlt:
		return true
	}
	return false
}

// translate decodes a straight-line run starting at pc into slot,
// reusing the slot's backing array. It stops at a block ender, at
// maxBlockInstrs, and before any instruction that is not translatable —
// writable segment, fetch fault, window truncation, or decode error —
// leaving that PC for a later dispatch to resolve through the
// single-step path (which reproduces the exact fault/illegal event).
// It reports whether the block holds at least one instruction.
func (c *CPU) translate(slot *bcEntry, pc uint32, gen uint64) bool {
	ins := slot.ins[:0]
	p := pc
	for len(ins) < maxBlockInstrs {
		window, perm, f := c.m.FetchWindow(p, maxInstrLen)
		if f != nil || perm&mem.PermWrite != 0 {
			break
		}
		in, err := Decode(window)
		if err != nil {
			break
		}
		ins = append(ins, blockInstr{pc: p, in: in})
		if blockEnder(in.Op) {
			break
		}
		p += in.Size
	}
	*slot = bcEntry{pc: pc, gen: gen, ins: ins}
	if len(ins) == 0 {
		return false
	}
	c.bcStats.Translated++
	return true
}

// StepBlock implements isa.CPU. It chains translated blocks: after a
// block retires, the dispatch loop immediately looks up the block at the
// new PC and keeps executing until max instructions have retired, a
// non-retired event surfaces, or an untranslatable PC is reached. One
// generation load covers the whole chain — nothing inside StepBlock can
// move the generation, since stores into non-writable segments fault and
// layout changes only happen between CPU calls. Untranslatable PCs
// (writable code, unmapped, undecodable) end the chain: with nothing
// retired yet the call degenerates to a single Step so the interpreter
// reproduces the exact fault/illegal event; otherwise the caller re-
// enters and takes that path on its next dispatch.
func (c *CPU) StepBlock(max uint64) isa.Event {
	if c.hooks != nil || c.rec != nil {
		// Hooked and recorded runs stay on the single-step path: the
		// shadow-stack and flight-recorder contracts observe every
		// control transfer in per-instruction order.
		return c.Step()
	}
	if max == 0 {
		max = 1
	}
	gen := c.m.Gen()
	start := c.icount
	limit := c.icount + max
	if limit < c.icount { // saturate on wraparound
		limit = ^uint64(0)
	}
	for {
		pc := c.eip
		slot := &c.bc[pc&(bcSize-1)]
		if slot.pc != pc || slot.gen != gen {
			// Only the dispatch's first block pays for a translation
			// attempt; a cold PC mid-chain ends the dispatch and the
			// next one translates it. Beyond bounding per-dispatch
			// translation work, this keeps the common chain exit — a
			// return to the caller's unmapped sentinel — allocation-
			// free: probing it would manufacture a fault object.
			if c.icount > start {
				c.bcStats.Instrs += c.icount - start
				return isa.Event{Kind: isa.EventRetired, PC: pc}
			}
			if slot.pc == pc && slot.gen != 0 {
				c.bcStats.Invalidated++
			}
			c.translate(slot, pc, gen)
		} else if len(slot.ins) > 0 {
			c.bcStats.Hits++
		}
		ins := slot.ins
		if len(ins) == 0 {
			// Negative-cached (or just found untranslatable): fall back
			// to the interpreter, which reproduces the exact event.
			if c.icount > start {
				c.bcStats.Instrs += c.icount - start
				return isa.Event{Kind: isa.EventRetired, PC: pc}
			}
			return c.Step()
		}
		if rem := limit - c.icount; rem < uint64(len(ins)) {
			ins = ins[:rem]
		}
		ev := c.execBlock(ins)
		if ev.Kind != isa.EventRetired || c.icount >= limit {
			c.bcStats.Instrs += c.icount - start
			return ev
		}
	}
}

// BlockStats implements isa.CPU.
func (c *CPU) BlockStats() isa.BlockStats { return c.bcStats }

// execBlock runs a translated block. StepBlock guarantees hooks and
// recorder are nil, so the control-transfer notification calls Step
// makes are dead here and elided. The PC-register invariant matches
// single-step exactly: entering instruction i, c.eip already equals its
// pc (each retirement below sets eip to the next PC, and dispatch only
// starts a block at the current eip), so fault events carry the same PC
// a faulting Step would report.
func (c *CPU) execBlock(ins []blockInstr) isa.Event {
	for i := range ins {
		bi := &ins[i]
		in := &bi.in
		pc := bi.pc
		next := pc + in.Size

		switch in.Op {
		case OpNop:
		case OpHlt:
			return isa.IllegalEvent(pc) // privileged in user mode

		case OpRet:
			tgt, f := c.pop()
			if f != nil {
				return isa.FaultEvent(pc, f)
			}
			next = tgt

		case OpLeave:
			c.regs[ESP] = c.regs[EBP]
			v, f := c.pop()
			if f != nil {
				return isa.FaultEvent(pc, f)
			}
			c.regs[EBP] = v

		case OpPushR:
			if f := c.push(c.regs[in.R1]); f != nil {
				return isa.FaultEvent(pc, f)
			}
		case OpPushI:
			if f := c.push(in.Imm); f != nil {
				return isa.FaultEvent(pc, f)
			}
		case OpPushM:
			var v uint32
			if in.MemOperand {
				var f *mem.Fault
				v, f = c.m.ReadU32(c.effAddr(*in))
				if f != nil {
					return isa.FaultEvent(pc, f)
				}
			} else {
				v = c.regs[in.R1]
			}
			if f := c.push(v); f != nil {
				return isa.FaultEvent(pc, f)
			}
		case OpPopR:
			v, f := c.pop()
			if f != nil {
				return isa.FaultEvent(pc, f)
			}
			c.regs[in.R1] = v

		case OpIncR:
			a := c.regs[in.R1]
			res := a + 1
			c.regs[in.R1] = res
			cf := c.fl.cf // inc preserves CF
			c.setFlagsAdd(a, 1, res)
			c.fl.cf = cf
		case OpDecR:
			a := c.regs[in.R1]
			res := a - 1
			c.regs[in.R1] = res
			cf := c.fl.cf // dec preserves CF
			c.setFlagsSub(a, 1, res)
			c.fl.cf = cf

		case OpMovRI:
			c.regs[in.R1] = in.Imm
		case OpMovRR:
			c.regs[in.R1] = c.regs[in.R2]
		case OpMovRM:
			v, f := c.m.ReadU32(c.effAddr(*in))
			if f != nil {
				return isa.FaultEvent(pc, f)
			}
			c.regs[in.R1] = v
		case OpMovMR:
			if f := c.m.WriteU32(c.effAddr(*in), c.regs[in.R2]); f != nil {
				return isa.FaultEvent(pc, f)
			}
		case OpMovMI:
			if f := c.m.WriteU32(c.effAddr(*in), in.Imm); f != nil {
				return isa.FaultEvent(pc, f)
			}
		case OpMovMI8:
			if f := c.m.WriteU8(c.effAddr(*in), uint8(in.Imm)); f != nil {
				return isa.FaultEvent(pc, f)
			}
		case OpMovRM8:
			v, f := c.m.ReadU8(c.effAddr(*in))
			if f != nil {
				return isa.FaultEvent(pc, f)
			}
			c.setReg8(in.R1, v)
		case OpMovMR8:
			if f := c.m.WriteU8(c.effAddr(*in), c.reg8(in.R2)); f != nil {
				return isa.FaultEvent(pc, f)
			}
		case OpMovzx8:
			var v uint8
			if in.MemOperand {
				var f *mem.Fault
				v, f = c.m.ReadU8(c.effAddr(*in))
				if f != nil {
					return isa.FaultEvent(pc, f)
				}
			} else {
				v = c.reg8(in.R2)
			}
			c.regs[in.R1] = uint32(v)
		case OpLea:
			c.regs[in.R1] = c.effAddr(*in)

		case OpAluRR, OpAluRI:
			if ev := c.stepAlu(*in); ev != nil {
				return isa.Event{Kind: ev.Kind, PC: pc, Fault: ev.Fault}
			}
		case OpTestRR:
			c.setFlagsLogic(c.regs[in.R1] & c.regs[in.R2])

		case OpJmpRel:
			next = next + uint32(in.Disp)
		case OpJcc:
			if c.cond(in.Cond) {
				next = next + uint32(in.Disp)
			}
		case OpJecxz:
			if c.regs[ECX] == 0 {
				next = next + uint32(in.Disp)
			}

		case OpCallRel:
			tgt := next + uint32(in.Disp)
			if f := c.push(next); f != nil {
				return isa.FaultEvent(pc, f)
			}
			next = tgt
		case OpCallInd:
			tgt, f := c.indirectTarget(*in)
			if f != nil {
				return isa.FaultEvent(pc, f)
			}
			if f := c.push(next); f != nil {
				return isa.FaultEvent(pc, f)
			}
			next = tgt
		case OpJmpInd:
			tgt, f := c.indirectTarget(*in)
			if f != nil {
				return isa.FaultEvent(pc, f)
			}
			next = tgt

		case OpMovsb:
			v, f := c.m.ReadU8(c.regs[ESI])
			if f != nil {
				return isa.FaultEvent(pc, f)
			}
			if f := c.m.WriteU8(c.regs[EDI], v); f != nil {
				return isa.FaultEvent(pc, f)
			}
			c.regs[ESI]++
			c.regs[EDI]++

		case OpShlRI:
			c.regs[in.R1] <<= in.Imm & 31
			c.setFlagsLogic(c.regs[in.R1])
		case OpShrRI:
			c.regs[in.R1] >>= in.Imm & 31
			c.setFlagsLogic(c.regs[in.R1])

		case OpInt:
			c.eip = next
			c.icount++
			return isa.Event{Kind: isa.EventSyscall, PC: next}

		default:
			return isa.IllegalEvent(pc)
		}

		c.eip = next
		c.icount++
	}
	return isa.Event{Kind: isa.EventRetired, PC: c.eip}
}
