package x86s

import (
	"fmt"

	"connlab/internal/isa"
	"connlab/internal/mem"
)

// Disasm renders x86s instructions for the debugger and gadget finder.
type Disasm struct{}

var _ isa.Disassembler = Disasm{}

// DisasmAt implements isa.Disassembler. Unlike CPU fetch it ignores execute
// permissions: a disassembler inspects images, it does not run them.
func (Disasm) DisasmAt(m *mem.Memory, addr uint32) (string, uint32, error) {
	window, f := m.ReadBytes(addr, maxInstrLen)
	if f != nil {
		// Retry with the remainder of the segment, if any.
		seg := m.Find(addr)
		if seg == nil {
			return "", 0, f
		}
		window, f = m.ReadBytes(addr, seg.End()-addr)
		if f != nil {
			return "", 0, f
		}
	}
	in, err := Decode(window)
	if err != nil {
		return "", 0, fmt.Errorf("disasm at %#08x: %w", addr, err)
	}
	return in.String(), in.Size, nil
}
