// Package isa defines the common contract every simulated CPU in the lab
// implements: a register file, a program counter, a single-step execution
// model, and the event vocabulary (syscall, fault, sentinel return) that the
// simulated kernel and the debugger consume.
//
// Two concrete architectures live in subpackages:
//
//   - x86s (internal/isa/x86s): a 32-bit x86-flavoured CPU with
//     variable-length instructions, stack-passed call arguments and a
//     ret-driven control flow — the "Intel x86 / Ubuntu 16.04" target of the
//     paper.
//   - arms (internal/isa/arms): a 32-bit ARM-flavoured CPU with fixed
//     4-byte instructions, register-passed arguments, a link register and no
//     ret instruction — the "Raspberry Pi 3 / ARMv7" target.
//
// Both faithfully reproduce the properties the paper's exploits depend on
// (see DESIGN.md), while remaining small enough to verify exhaustively.
package isa

import (
	"fmt"

	"connlab/internal/mem"
	"connlab/internal/telemetry"
)

// Arch identifies a simulated instruction set.
type Arch string

// Supported architectures.
const (
	ArchX86S Arch = "x86s"
	ArchARMS Arch = "arms"
)

// EventKind classifies why Step stopped (or what it reported).
type EventKind uint8

// Event kinds returned by CPU.Step.
const (
	// EventRetired is the normal case: one instruction executed.
	EventRetired EventKind = iota + 1
	// EventSyscall means the instruction requested a kernel service; the
	// kernel reads arguments from the register file, performs the service,
	// writes results back and resumes. PC has already advanced past the
	// syscall instruction.
	EventSyscall
	// EventFault is the simulated SIGSEGV/SIGILL: a memory fault or an
	// undecodable instruction. PC still points at the faulting instruction.
	EventFault
	// EventCFIViolation is raised by an installed control-flow hook (the
	// shadow-stack CFI mitigation) when an indirect transfer or return does
	// not match the expected target.
	EventCFIViolation
)

// String implements fmt.Stringer.
func (k EventKind) String() string {
	switch k {
	case EventRetired:
		return "retired"
	case EventSyscall:
		return "syscall"
	case EventFault:
		return "fault"
	case EventCFIViolation:
		return "cfi-violation"
	default:
		return "unknown"
	}
}

// Event is the result of executing one instruction.
type Event struct {
	Kind EventKind
	// PC is the program counter after the step for EventRetired/EventSyscall
	// and the faulting PC for EventFault.
	PC uint32
	// Fault is set for EventFault.
	Fault *mem.Fault
	// Illegal is set for EventFault when the bytes at PC did not decode.
	Illegal bool
	// Reason carries detail for EventCFIViolation.
	Reason string
}

// ControlKind classifies a control transfer observed by hooks.
type ControlKind uint8

// Control transfer kinds reported to Hooks.
const (
	// ControlCall is a direct or indirect call (x86s call, arms bl/blx).
	ControlCall ControlKind = iota + 1
	// ControlReturn is a return (x86s ret, arms bx lr / pop {...,pc}).
	ControlReturn
	// ControlJump is a non-linking indirect jump.
	ControlJump
)

// String implements fmt.Stringer.
func (k ControlKind) String() string {
	switch k {
	case ControlCall:
		return "call"
	case ControlReturn:
		return "return"
	case ControlJump:
		return "jump"
	default:
		return "unknown"
	}
}

// Hooks receive control-flow notifications from a CPU. The CFI mitigation
// installs a shadow stack through this interface. A non-nil error vetoes the
// transfer and surfaces as EventCFIViolation.
type Hooks interface {
	// OnControl is invoked after the transfer target is computed but before
	// it takes effect. from is the address of the transferring instruction,
	// to the target, and ret the return address being recorded (calls only).
	OnControl(kind ControlKind, from, to, ret uint32) error
}

// BlockStats are the monotonic basic-block translation counters a CPU
// accumulates across its lifetime. Consumers (the kernel's per-run
// telemetry flush) take deltas, exactly as with DecodeCacheMisses.
type BlockStats struct {
	// Translated counts blocks decoded into the block cache.
	Translated uint64
	// Hits counts dispatches served by a still-valid cached block.
	Hits uint64
	// Invalidated counts cached blocks discarded because the memory
	// generation moved under them (SetPerm/Unmap/Map/Reset).
	Invalidated uint64
	// Instrs counts instructions retired inside block dispatch (the
	// remainder of InstrCount went through single-step paths).
	Instrs uint64
}

// CPU is a single simulated hardware thread. Implementations own their
// register file; memory is shared with the loader and the kernel.
type CPU interface {
	// Arch identifies the instruction set.
	Arch() Arch
	// Mem returns the address space the CPU executes from.
	Mem() *mem.Memory
	// PC returns the program counter.
	PC() uint32
	// SetPC sets the program counter.
	SetPC(v uint32)
	// SP returns the stack pointer.
	SP() uint32
	// SetSP sets the stack pointer.
	SetSP(v uint32)
	// Reg returns general-purpose register i; the numbering is
	// architecture-specific (see RegName).
	Reg(i int) uint32
	// SetReg sets general-purpose register i.
	SetReg(i int, v uint32)
	// NumRegs returns the number of addressable general-purpose registers.
	NumRegs() int
	// RegName returns the conventional name of register i.
	RegName(i int) string
	// SetHooks installs control-flow hooks (nil to remove).
	SetHooks(h Hooks)
	// SetRecorder attaches the hijack flight recorder (nil to detach).
	// While attached, every control transfer — and every syscall entry —
	// is appended to the recorder's fixed ring; the hot path pays one
	// nil-check when detached and never allocates either way.
	SetRecorder(r *telemetry.ControlRecorder)
	// Step executes one instruction and reports what happened.
	Step() Event
	// StepBlock executes up to max instructions (max >= 1) starting at PC
	// through the basic-block translation cache and reports the event of
	// the last instruction executed: EventRetired with the PC after the
	// block when the whole (possibly max-truncated) block retired, or the
	// fault/syscall/illegal event that ended it early. Blocks are decoded
	// from non-writable code only and keyed to Mem().Gen(), so W⊕X,
	// SetPerm/Unmap invalidation and self-modifying-code semantics are
	// identical to Step's. When the entry is not block-eligible — writable
	// code, an unfetchable or undecodable entry instruction, or attached
	// Hooks/Recorder (whose per-instruction observation contract is pinned
	// to the single-step path) — StepBlock falls back to exactly one Step.
	StepBlock(max uint64) Event
	// BlockStats returns the monotonic block-translation counters.
	BlockStats() BlockStats
	// InstrCount returns the number of instructions retired since reset,
	// used for run budgets and performance reporting.
	InstrCount() uint64
	// DecodeCacheMisses returns the cumulative decode-cache miss count
	// since construction. It is monotonic; consumers (the kernel's
	// per-run telemetry flush) take deltas and derive hits as
	// instructions retired minus misses.
	DecodeCacheMisses() uint64
}

// Disassembler renders the instruction at an address, primarily for the
// debugger and the gadget finder.
type Disassembler interface {
	// DisasmAt decodes one instruction at addr, returning its assembly text
	// and encoded length. It fails on undecodable bytes.
	DisasmAt(m *mem.Memory, addr uint32) (text string, size uint32, err error)
}

// FaultEvent is a convenience constructor for fault events.
func FaultEvent(pc uint32, f *mem.Fault) Event {
	return Event{Kind: EventFault, PC: pc, Fault: f}
}

// IllegalEvent is a convenience constructor for illegal-instruction events.
func IllegalEvent(pc uint32) Event {
	return Event{Kind: EventFault, PC: pc, Illegal: true}
}

// RegOutOfRange builds the panic message for register index misuse; misuse
// of register indices is a programming error in the lab itself, not a
// simulated-program error, so implementations panic.
func RegOutOfRange(arch Arch, i int) string {
	return fmt.Sprintf("%s: register index %d out of range", arch, i)
}
