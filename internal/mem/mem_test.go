package mem

import (
	"errors"
	"testing"
	"testing/quick"
)

func newTestMem(t *testing.T) *Memory {
	t.Helper()
	m := New()
	if _, err := m.Map("text", 0x1000, 0x1000, PermRX); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Map("data", 0x4000, 0x1000, PermRW); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Map("stack", 0x8000, 0x1000, PermRWX); err != nil {
		t.Fatal(err)
	}
	return m
}

func TestMapRejectsOverlap(t *testing.T) {
	m := newTestMem(t)
	cases := []struct {
		base, size uint32
	}{
		{0x1000, 0x10},  // exact start
		{0x1FFF, 0x10},  // tail overlap
		{0x0FFF, 0x2},   // head overlap
		{0x0, 0x10000},  // engulfing
		{0x4800, 0x100}, // inside
	}
	for _, c := range cases {
		if _, err := m.Map("x", c.base, c.size, PermRW); err == nil {
			t.Errorf("Map(%#x, %#x) did not report overlap", c.base, c.size)
		}
	}
}

func TestMapRejectsDegenerate(t *testing.T) {
	m := New()
	if _, err := m.Map("zero", 0x1000, 0, PermRW); err == nil {
		t.Error("zero-size map accepted")
	}
	if _, err := m.Map("wrap", 0xFFFFF000, 0x2000, PermRW); err == nil {
		t.Error("wrapping map accepted")
	}
}

func TestReadWriteRoundTrip(t *testing.T) {
	m := newTestMem(t)
	if f := m.WriteU32(0x4000, 0xDEADBEEF); f != nil {
		t.Fatal(f)
	}
	v, f := m.ReadU32(0x4000)
	if f != nil || v != 0xDEADBEEF {
		t.Fatalf("ReadU32 = %#x, %v", v, f)
	}
	// Little-endian byte order.
	b, f := m.ReadU8(0x4000)
	if f != nil || b != 0xEF {
		t.Fatalf("ReadU8 = %#x, %v", b, f)
	}
	h, f := m.ReadU16(0x4002)
	if f != nil || h != 0xDEAD {
		t.Fatalf("ReadU16 = %#x, %v", h, f)
	}
	if f := m.WriteU16(0x4004, 0x1234); f != nil {
		t.Fatal(f)
	}
	if f := m.WriteU8(0x4006, 0x56); f != nil {
		t.Fatal(f)
	}
	bs, f := m.ReadBytes(0x4004, 3)
	if f != nil || bs[0] != 0x34 || bs[1] != 0x12 || bs[2] != 0x56 {
		t.Fatalf("ReadBytes = %v, %v", bs, f)
	}
}

func TestFaultKinds(t *testing.T) {
	m := newTestMem(t)

	// Unmapped.
	if _, f := m.ReadU32(0x100); f == nil || f.Kind != FaultUnmapped {
		t.Errorf("unmapped read fault = %v", f)
	}
	// Write to read-exec segment.
	if f := m.WriteU8(0x1000, 1); f == nil || f.Kind != FaultProtection || f.Access != AccessWrite {
		t.Errorf("text write fault = %v", f)
	}
	// Exec from non-exec segment.
	if _, f := m.Fetch(0x4000, 4); f == nil || f.Access != AccessExec {
		t.Errorf("data fetch fault = %v", f)
	}
	// Access spanning past segment end.
	if _, f := m.ReadU32(0x1FFE); f == nil || f.Kind != FaultUnmapped {
		t.Errorf("spanning read fault = %v", f)
	}
	// Fault is an error with useful text.
	_, f := m.ReadU8(0x0)
	var err error = f
	if err.Error() == "" {
		t.Error("empty fault message")
	}
}

func TestWXPolicy(t *testing.T) {
	m := newTestMem(t)
	if f := m.WriteU8(0x8000, 0x90); f != nil {
		t.Fatal(f)
	}
	// Stack is RWX: executable while W⊕X is off.
	if _, f := m.Fetch(0x8000, 1); f != nil {
		t.Fatalf("fetch from rwx stack without W⊕X: %v", f)
	}
	m.SetWX(true)
	if !m.WX() {
		t.Fatal("WX not reported")
	}
	if _, f := m.Fetch(0x8000, 1); f == nil || f.Kind != FaultProtection {
		t.Fatalf("W⊕X did not block writable fetch: %v", f)
	}
	// Pure RX text still executes.
	if _, f := m.Fetch(0x1000, 1); f != nil {
		t.Fatalf("W⊕X blocked text fetch: %v", f)
	}
}

func TestFetchTruncatesAtSegmentEnd(t *testing.T) {
	m := newTestMem(t)
	b, f := m.Fetch(0x1FFC, 16)
	if f != nil {
		t.Fatal(f)
	}
	if len(b) != 4 {
		t.Fatalf("fetch near end returned %d bytes, want 4", len(b))
	}
}

func TestFindAndSegments(t *testing.T) {
	m := newTestMem(t)
	if s := m.Find(0x1800); s == nil || s.Name != "text" {
		t.Errorf("Find(0x1800) = %v", s)
	}
	if s := m.Find(0x2000); s != nil {
		t.Errorf("Find(end) = %v, want nil", s)
	}
	if s := m.Find(0xFFF); s != nil {
		t.Errorf("Find(before) = %v, want nil", s)
	}
	segs := m.Segments()
	if len(segs) != 3 || segs[0].Name != "text" || segs[2].Name != "stack" {
		t.Errorf("Segments() = %v", segs)
	}
	if m.Segment("data") == nil || m.Segment("nope") != nil {
		t.Error("Segment lookup broken")
	}
}

func TestUnmapAndSetPerm(t *testing.T) {
	m := newTestMem(t)
	m.Unmap("data")
	if _, f := m.ReadU8(0x4000); f == nil {
		t.Error("read from unmapped segment succeeded")
	}
	if err := m.SetPerm("stack", PermRW); err != nil {
		t.Fatal(err)
	}
	if _, f := m.Fetch(0x8000, 1); f == nil {
		t.Error("fetch after dropping exec permission succeeded")
	}
	if err := m.SetPerm("gone", PermRW); err == nil {
		t.Error("SetPerm on missing segment succeeded")
	}
	m.Unmap("gone") // no-op must not panic
}

func TestReadCString(t *testing.T) {
	m := newTestMem(t)
	if f := m.WriteBytes(0x4000, []byte("hello\x00world")); f != nil {
		t.Fatal(f)
	}
	s, f := m.ReadCString(0x4000, 64)
	if f != nil || s != "hello" {
		t.Fatalf("ReadCString = %q, %v", s, f)
	}
	// Max cap truncates.
	s, f = m.ReadCString(0x4000, 3)
	if f != nil || s != "hel" {
		t.Fatalf("capped ReadCString = %q, %v", s, f)
	}
	// Running off the segment faults.
	if f := m.WriteBytes(0x4FF0, []byte("0123456789abcdef")); f != nil {
		t.Fatal(f)
	}
	if _, f := m.ReadCString(0x4FF0, 64); f == nil {
		t.Error("ReadCString past segment end succeeded")
	}
}

func TestCloneIsIndependent(t *testing.T) {
	m := newTestMem(t)
	if f := m.WriteU32(0x4000, 0x11111111); f != nil {
		t.Fatal(f)
	}
	c := m.Clone()
	if f := c.WriteU32(0x4000, 0x22222222); f != nil {
		t.Fatal(f)
	}
	v, _ := m.ReadU32(0x4000)
	if v != 0x11111111 {
		t.Errorf("clone write leaked into original: %#x", v)
	}
	cv, _ := c.ReadU32(0x4000)
	if cv != 0x22222222 {
		t.Errorf("clone value = %#x", cv)
	}
	m.SetWX(true)
	if c.WX() {
		t.Error("clone shares WX flag")
	}
}

// TestQuickU32RoundTrip: any aligned or unaligned in-range write reads
// back identically.
func TestQuickU32RoundTrip(t *testing.T) {
	m := newTestMem(t)
	prop := func(off uint16, v uint32) bool {
		addr := 0x4000 + uint32(off)%0xFFC
		if f := m.WriteU32(addr, v); f != nil {
			return false
		}
		got, f := m.ReadU32(addr)
		return f == nil && got == v
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// TestQuickBytesRoundTrip: WriteBytes/ReadBytes agree for random slices.
func TestQuickBytesRoundTrip(t *testing.T) {
	m := newTestMem(t)
	prop := func(off uint16, data []byte) bool {
		if len(data) > 256 {
			data = data[:256]
		}
		addr := 0x4000 + uint32(off)%0xE00
		if f := m.WriteBytes(addr, data); f != nil {
			return false
		}
		got, f := m.ReadBytes(addr, uint32(len(data)))
		if f != nil || len(got) != len(data) {
			return len(data) == 0 && f == nil
		}
		for i := range data {
			if got[i] != data[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// TestQuickOutOfRangeAlwaysFaults: reads outside every segment never
// succeed and always classify as unmapped.
func TestQuickOutOfRangeAlwaysFaults(t *testing.T) {
	m := newTestMem(t)
	prop := func(addr uint32) bool {
		inside := (addr >= 0x1000 && addr < 0x2000) ||
			(addr >= 0x4000 && addr < 0x5000) ||
			(addr >= 0x8000 && addr < 0x9000)
		_, f := m.ReadU8(addr)
		if inside {
			return f == nil
		}
		return f != nil && f.Kind == FaultUnmapped
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestPermString(t *testing.T) {
	cases := map[Perm]string{
		0: "---", PermRead: "r--", PermRW: "rw-", PermRX: "r-x", PermRWX: "rwx",
	}
	for p, want := range cases {
		if p.String() != want {
			t.Errorf("%d.String() = %q, want %q", p, p.String(), want)
		}
	}
	if AccessRead.String() != "read" || AccessWrite.String() != "write" || AccessExec.String() != "exec" {
		t.Error("Access.String broken")
	}
	if FaultUnmapped.String() != "unmapped" || FaultProtection.String() != "protection" {
		t.Error("FaultKind.String broken")
	}
}

func TestErrorsAsFault(t *testing.T) {
	m := newTestMem(t)
	_, f := m.ReadU8(0)
	var target *Fault
	if !errors.As(error(f), &target) {
		t.Error("fault does not unwrap with errors.As")
	}
}
