// Package mem implements the simulated 32-bit flat address space used by the
// exploitation laboratory. It provides named segments with page-style
// read/write/execute permissions, access-fault reporting, and an optional
// W⊕X (writable-xor-executable) policy that mirrors DEP/NX: when enabled,
// instruction fetch from a writable segment faults, exactly like executing
// injected shellcode on a stack with stack-execution protection.
//
// The address space is the substrate every other component builds on: the
// loader maps program images into it, the CPU emulators fetch and execute
// from it, and the vulnerable victim code corrupts it. Because the CPU
// interpreters perform several accesses per emulated instruction, the
// accessors are engineered as hot paths: the last-hit segment is memoized
// per access kind (stack, data and text accesses each keep their own
// streak), every width-typed load/store bounds-checks exactly once, and the
// non-fault path performs no allocation.
package mem

import (
	"bytes"
	"fmt"
	"sort"
)

// Perm is a bitmask of segment permissions.
type Perm uint8

// Permission bits. A segment with PermWrite but not PermExec is the normal
// data/stack configuration; PermRead|PermExec is the normal text
// configuration.
const (
	PermRead Perm = 1 << iota
	PermWrite
	PermExec
)

// Common permission combinations.
const (
	PermRW  = PermRead | PermWrite
	PermRX  = PermRead | PermExec
	PermRWX = PermRead | PermWrite | PermExec
)

// String renders the permission in the familiar "rwx" form.
func (p Perm) String() string {
	b := []byte("---")
	if p&PermRead != 0 {
		b[0] = 'r'
	}
	if p&PermWrite != 0 {
		b[1] = 'w'
	}
	if p&PermExec != 0 {
		b[2] = 'x'
	}
	return string(b)
}

// Access identifies the kind of memory access that produced a fault.
type Access uint8

// Access kinds.
const (
	AccessRead Access = iota + 1
	AccessWrite
	AccessExec
)

// String implements fmt.Stringer.
func (a Access) String() string {
	switch a {
	case AccessRead:
		return "read"
	case AccessWrite:
		return "write"
	case AccessExec:
		return "exec"
	default:
		return "unknown"
	}
}

// FaultKind classifies a memory fault.
type FaultKind uint8

// Fault kinds. FaultUnmapped is an access to an address outside every
// segment; FaultProtection is an access violating the segment permissions
// (including W⊕X fetch violations).
const (
	FaultUnmapped FaultKind = iota + 1
	FaultProtection
)

// String implements fmt.Stringer.
func (k FaultKind) String() string {
	switch k {
	case FaultUnmapped:
		return "unmapped"
	case FaultProtection:
		return "protection"
	default:
		return "unknown"
	}
}

// Fault is the simulated equivalent of SIGSEGV: an invalid memory access.
// It records enough context to classify an experiment outcome (e.g. "victim
// crashed fetching from the stack" means W⊕X stopped a code-injection
// attack).
type Fault struct {
	Kind   FaultKind
	Access Access
	Addr   uint32
	// Segment is the name of the segment containing Addr, if any.
	Segment string
}

// Error implements the error interface.
func (f *Fault) Error() string {
	if f.Segment != "" {
		return fmt.Sprintf("memory fault: %s %s at %#08x (segment %s)",
			f.Kind, f.Access, f.Addr, f.Segment)
	}
	return fmt.Sprintf("memory fault: %s %s at %#08x", f.Kind, f.Access, f.Addr)
}

// Segment is a contiguous, permissioned region of the address space.
//
// Data is exported for loaders and tests that populate a segment in place
// before execution starts. Mutating Data directly at runtime bypasses both
// the dirty-range tracking Reset relies on and the Gen counter decode
// caches key their validity to; runtime stores must go through the Memory
// accessors.
type Segment struct {
	Name string
	Base uint32
	Perm Perm
	Data []byte

	// dirtyLo/dirtyHi is the half-open byte range written through the
	// Memory accessors since the last Seal/Reset (lo > hi means clean).
	dirtyLo, dirtyHi uint32
}

// Size returns the segment length in bytes.
func (s *Segment) Size() uint32 { return uint32(len(s.Data)) }

// DirtyRange returns the half-open byte-offset range written through the
// Memory accessors (or Populate) since the segment was mapped or last
// Seal/Reset; lo >= hi means clean. The differential lockstep harness
// uses it to compare only the bytes an execution could have changed.
func (s *Segment) DirtyRange() (lo, hi uint32) { return s.dirtyLo, s.dirtyHi }

// End returns the first address past the segment.
func (s *Segment) End() uint32 { return s.Base + s.Size() }

// Contains reports whether addr falls inside the segment.
func (s *Segment) Contains(addr uint32) bool {
	return addr >= s.Base && addr < s.End()
}

// Populate copies b into the segment at off, bypassing permissions (it is
// the loader's channel for filling text and read-only data) but recording
// the write in the dirty tracking, so a later Seal knows the segment is no
// longer the zero-fill Map produced. It must not be used once execution
// has started: it does not bump the memory generation.
func (s *Segment) Populate(off uint32, b []byte) {
	copy(s.Data[off:], b)
	if len(b) > 0 {
		s.markDirty(off, uint32(len(b)))
	}
}

// markDirty widens the dirty watermarks to cover [off, off+n).
func (s *Segment) markDirty(off, n uint32) {
	if off < s.dirtyLo {
		s.dirtyLo = off
	}
	if off+n > s.dirtyHi {
		s.dirtyHi = off + n
	}
}

// clean resets the dirty watermarks to the empty range.
func (s *Segment) clean() {
	s.dirtyLo = s.Size()
	s.dirtyHi = 0
}

// sealedSeg is one segment's baseline for Reset. data is nil when the
// segment was all-zero at Seal time (the common stack/heap case), letting
// Reset clear instead of copy.
type sealedSeg struct {
	seg  *Segment
	perm Perm
	data []byte
}

// Memory is a simulated 32-bit address space composed of non-overlapping
// segments. The zero value is an empty address space with W⊕X disabled.
//
// Memory is not safe for concurrent use; each simulated process owns its
// own Memory. (Even read-only lookups update the internal segment
// memoization.)
type Memory struct {
	segs []*Segment // sorted by Base
	wx   bool

	// hint[a] is the index of the segment last hit by access kind a.
	// Stack, data and instruction streams each ride their own streak, so
	// the binary search in seg only runs when a streak breaks. Stale
	// values are self-validating: the index is bounds-checked and the
	// segment Contains-checked before use.
	hint [4]int

	// gen counts layout/permission generations: Map, Unmap, SetPerm and
	// Reset bump it. Decoded-instruction caches key their validity to it —
	// while gen is unchanged, the bytes of a non-writable segment cannot
	// change (W⊕X aside, a write needs PermWrite, and changing permissions
	// bumps gen). It starts at 1 so a zero-valued cache entry never
	// validates.
	gen uint64

	// sealed is the Reset baseline captured by Seal, nil before sealing.
	sealed []sealedSeg
}

// New returns an empty address space.
func New() *Memory { return &Memory{gen: 1} }

// SetWX enables or disables the W⊕X policy. With W⊕X on, Fetch from a
// writable segment faults even if the segment claims PermExec; this mirrors
// kernels that refuse writable+executable mappings.
func (m *Memory) SetWX(on bool) { m.wx = on }

// WX reports whether the W⊕X policy is enabled.
func (m *Memory) WX() bool { return m.wx }

// Gen returns the current layout/permission generation. Decode caches
// (see isa/x86s) compare it to decide whether previously decoded
// instruction bytes can still be trusted.
func (m *Memory) Gen() uint64 { return m.gen }

// Map creates a segment. It fails if the range overlaps an existing segment
// or wraps the 32-bit address space.
func (m *Memory) Map(name string, base, size uint32, perm Perm) (*Segment, error) {
	if size == 0 {
		return nil, fmt.Errorf("map %s: zero size", name)
	}
	if base+size < base {
		return nil, fmt.Errorf("map %s: range %#x+%#x wraps address space", name, base, size)
	}
	for _, s := range m.segs {
		if base < s.End() && s.Base < base+size {
			return nil, fmt.Errorf("map %s at %#x+%#x: overlaps segment %s at %#x+%#x",
				name, base, size, s.Name, s.Base, s.Size())
		}
	}
	seg := &Segment{Name: name, Base: base, Perm: perm, Data: make([]byte, size)}
	seg.clean()
	m.segs = append(m.segs, seg)
	sort.Slice(m.segs, func(i, j int) bool { return m.segs[i].Base < m.segs[j].Base })
	m.gen++
	return seg, nil
}

// Unmap removes the named segment. It is a no-op if the segment does not
// exist.
func (m *Memory) Unmap(name string) {
	for i, s := range m.segs {
		if s.Name == name {
			m.segs = append(m.segs[:i], m.segs[i+1:]...)
			m.gen++
			return
		}
	}
}

// Segments returns the segments sorted by base address. The returned slice
// is a copy; the segments themselves are shared.
func (m *Memory) Segments() []*Segment {
	out := make([]*Segment, len(m.segs))
	copy(out, m.segs)
	return out
}

// Segment returns the named segment, or nil.
func (m *Memory) Segment(name string) *Segment {
	for _, s := range m.segs {
		if s.Name == name {
			return s
		}
	}
	return nil
}

// seg returns the segment containing addr for an access of the given kind,
// or nil. The per-kind memo recycles the binary search across the long
// same-segment streaks CPU emulation produces (consecutive stack pushes,
// straight-line fetches); a stale hint is harmless because whatever
// segment passes the Contains check is by construction the right one.
func (m *Memory) seg(addr uint32, access Access) *Segment {
	if h := m.hint[access]; h < len(m.segs) {
		if s := m.segs[h]; s.Contains(addr) {
			return s
		}
	}
	lo, hi := 0, len(m.segs)
	for lo < hi {
		mid := (lo + hi) / 2
		if m.segs[mid].End() <= addr {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < len(m.segs) && m.segs[lo].Contains(addr) {
		m.hint[access] = lo
		return m.segs[lo]
	}
	return nil
}

// Find returns the segment containing addr, or nil.
func (m *Memory) Find(addr uint32) *Segment {
	return m.seg(addr, AccessRead)
}

// SetPerm changes the permissions of the named segment.
func (m *Memory) SetPerm(name string, perm Perm) error {
	s := m.Segment(name)
	if s == nil {
		return fmt.Errorf("setperm: no segment %q", name)
	}
	s.Perm = perm
	m.gen++
	return nil
}

func (m *Memory) fault(kind FaultKind, access Access, addr uint32) *Fault {
	f := &Fault{Kind: kind, Access: access, Addr: addr}
	if s := m.Find(addr); s != nil {
		f.Segment = s.Name
	}
	return f
}

// check locates the segment for a [addr, addr+n) access and validates
// permissions, bounds-checking exactly once for the whole width. Accesses
// may not span segments: real exploits in this lab never need to, and
// spanning would hide layout bugs. The bounds comparison is written
// overflow-safe: off+n can wrap uint32 for accesses near the top of a
// segment with a huge (attacker-controlled) length, which must fault, not
// pass.
func (m *Memory) check(addr, n uint32, access Access) (*Segment, uint32, *Fault) {
	s := m.seg(addr, access)
	if s == nil {
		return nil, 0, m.fault(FaultUnmapped, access, addr)
	}
	off := addr - s.Base
	if n > s.Size()-off { // off < Size via Contains; never underflows
		return nil, 0, m.fault(FaultUnmapped, access, s.End())
	}
	switch access {
	case AccessRead:
		if s.Perm&PermRead == 0 {
			return nil, 0, m.fault(FaultProtection, access, addr)
		}
	case AccessWrite:
		if s.Perm&PermWrite == 0 {
			return nil, 0, m.fault(FaultProtection, access, addr)
		}
	case AccessExec:
		if s.Perm&PermExec == 0 {
			return nil, 0, m.fault(FaultProtection, access, addr)
		}
		if m.wx && s.Perm&PermWrite != 0 {
			// W⊕X: never execute from writable memory.
			return nil, 0, m.fault(FaultProtection, access, addr)
		}
	}
	return s, off, nil
}

// ReadBytes copies n bytes starting at addr.
func (m *Memory) ReadBytes(addr, n uint32) ([]byte, *Fault) {
	if n == 0 {
		return nil, nil
	}
	s, off, f := m.check(addr, n, AccessRead)
	if f != nil {
		return nil, f
	}
	out := make([]byte, n)
	copy(out, s.Data[off:off+n])
	return out, nil
}

// WriteBytes stores b starting at addr.
func (m *Memory) WriteBytes(addr uint32, b []byte) *Fault {
	if len(b) == 0 {
		return nil
	}
	s, off, f := m.check(addr, uint32(len(b)), AccessWrite)
	if f != nil {
		return f
	}
	copy(s.Data[off:], b)
	s.markDirty(off, uint32(len(b)))
	return nil
}

// Load8 loads one byte, bounds-checking once.
func (m *Memory) Load8(addr uint32) (uint8, *Fault) {
	s, off, f := m.check(addr, 1, AccessRead)
	if f != nil {
		return 0, f
	}
	return s.Data[off], nil
}

// Store8 stores one byte, bounds-checking once.
func (m *Memory) Store8(addr uint32, v uint8) *Fault {
	s, off, f := m.check(addr, 1, AccessWrite)
	if f != nil {
		return f
	}
	s.Data[off] = v
	s.markDirty(off, 1)
	return nil
}

// Load16 loads a little-endian 16-bit value, bounds-checking once for both
// bytes.
func (m *Memory) Load16(addr uint32) (uint16, *Fault) {
	s, off, f := m.check(addr, 2, AccessRead)
	if f != nil {
		return 0, f
	}
	d := s.Data[off : off+2 : off+2]
	return uint16(d[0]) | uint16(d[1])<<8, nil
}

// Store16 stores a little-endian 16-bit value, bounds-checking once.
func (m *Memory) Store16(addr uint32, v uint16) *Fault {
	s, off, f := m.check(addr, 2, AccessWrite)
	if f != nil {
		return f
	}
	d := s.Data[off : off+2 : off+2]
	d[0] = byte(v)
	d[1] = byte(v >> 8)
	s.markDirty(off, 2)
	return nil
}

// Load32 loads a little-endian 32-bit value, bounds-checking once for all
// four bytes — the interpreter's hottest accessor (stack pops, pointer
// loads).
func (m *Memory) Load32(addr uint32) (uint32, *Fault) {
	s, off, f := m.check(addr, 4, AccessRead)
	if f != nil {
		return 0, f
	}
	d := s.Data[off : off+4 : off+4]
	return uint32(d[0]) | uint32(d[1])<<8 | uint32(d[2])<<16 | uint32(d[3])<<24, nil
}

// Store32 stores a little-endian 32-bit value, bounds-checking once.
func (m *Memory) Store32(addr uint32, v uint32) *Fault {
	s, off, f := m.check(addr, 4, AccessWrite)
	if f != nil {
		return f
	}
	d := s.Data[off : off+4 : off+4]
	d[0] = byte(v)
	d[1] = byte(v >> 8)
	d[2] = byte(v >> 16)
	d[3] = byte(v >> 24)
	s.markDirty(off, 4)
	return nil
}

// ReadU8 loads one byte.
func (m *Memory) ReadU8(addr uint32) (uint8, *Fault) { return m.Load8(addr) }

// WriteU8 stores one byte.
func (m *Memory) WriteU8(addr uint32, v uint8) *Fault { return m.Store8(addr, v) }

// ReadU16 loads a little-endian 16-bit value.
func (m *Memory) ReadU16(addr uint32) (uint16, *Fault) { return m.Load16(addr) }

// WriteU16 stores a little-endian 16-bit value.
func (m *Memory) WriteU16(addr uint32, v uint16) *Fault { return m.Store16(addr, v) }

// ReadU32 loads a little-endian 32-bit value.
func (m *Memory) ReadU32(addr uint32) (uint32, *Fault) { return m.Load32(addr) }

// WriteU32 stores a little-endian 32-bit value.
func (m *Memory) WriteU32(addr uint32, v uint32) *Fault { return m.Store32(addr, v) }

// Fetch reads up to n instruction bytes at addr, enforcing execute
// permission and the W⊕X policy. Fewer than n bytes may be returned when
// the segment ends before addr+n; callers decode what they receive.
//
// The returned slice aliases the segment's storage (no copy): callers must
// only read it and must not retain it across stores. Both CPU decoders
// consume the window immediately.
func (m *Memory) Fetch(addr, n uint32) ([]byte, *Fault) {
	w, _, f := m.FetchWindow(addr, n)
	return w, f
}

// FetchWindow is Fetch plus the containing segment's permissions, which
// decode caches use to decide whether the returned bytes are immutable
// while Gen() is unchanged (they are exactly when the segment is not
// writable).
func (m *Memory) FetchWindow(addr, n uint32) ([]byte, Perm, *Fault) {
	s, off, f := m.check(addr, 1, AccessExec)
	if f != nil {
		return nil, 0, f
	}
	end := off + n
	if end > s.Size() || end < off {
		end = s.Size()
	}
	return s.Data[off:end:end], s.Perm, nil
}

// Fetch32 is the fixed-width fetch fast path for 4-byte-instruction ISAs
// (arms): one combined segment/bounds/permission check, no allocation.
// short=true (with no fault) means the segment ended within the
// instruction word, which callers report as an illegal instruction — the
// same outcome a truncated Fetch window produces. perm is the containing
// segment's permissions, for decode caches (see FetchWindow).
func (m *Memory) Fetch32(addr uint32) (word uint32, perm Perm, short bool, f *Fault) {
	s, off, f := m.check(addr, 1, AccessExec)
	if f != nil {
		return 0, 0, false, f
	}
	if s.Size()-off < 4 {
		return 0, s.Perm, true, nil
	}
	d := s.Data[off : off+4 : off+4]
	return uint32(d[0]) | uint32(d[1])<<8 | uint32(d[2])<<16 | uint32(d[3])<<24, s.Perm, false, nil
}

// ReadCString reads a NUL-terminated string starting at addr, up to max
// bytes (not counting the terminator). It scans segment-at-a-time rather
// than bounds-checking per byte, and like the byte-wise loop it replaces it
// follows contiguous segments.
func (m *Memory) ReadCString(addr, max uint32) (string, *Fault) {
	var out []byte
	for max > 0 {
		s, off, f := m.check(addr, 1, AccessRead)
		if f != nil {
			return "", f
		}
		n := s.Size() - off
		if n > max {
			n = max
		}
		chunk := s.Data[off : off+n]
		if i := bytes.IndexByte(chunk, 0); i >= 0 {
			if out == nil {
				return string(chunk[:i]), nil
			}
			return string(append(out, chunk[:i]...)), nil
		}
		out = append(out, chunk...)
		addr += n
		max -= n
	}
	return string(out), nil
}

// Seal captures the current contents and permissions of every segment as
// the baseline Reset restores. The kernel seals an address space at the
// end of a load; campaign fleets and recon probe loops then recycle the
// space with Reset instead of linking and mapping a fresh one.
// Seal relies on the dirty tracking to spot still-zero segments: a segment
// no accessor or Populate call has touched since Map holds exactly the
// zero fill Map gave it, so the megabyte stack and heap are sealed without
// being scanned or copied.
func (m *Memory) Seal() {
	m.sealed = make([]sealedSeg, len(m.segs))
	for i, s := range m.segs {
		ss := sealedSeg{seg: s, perm: s.Perm}
		if s.dirtyHi > s.dirtyLo {
			ss.data = make([]byte, len(s.Data))
			copy(ss.data, s.Data)
		}
		m.sealed[i] = ss
		s.clean()
	}
}

// Sealed reports whether Seal has captured a baseline.
func (m *Memory) Sealed() bool { return m.sealed != nil }

// Reset restores the address space to the sealed baseline: every
// accessor-written byte range is restored (or re-zeroed, for segments that
// were all-zero at Seal time — the stack/heap fast path, which avoids
// re-clearing a megabyte of stack that a trial only scribbled a few
// kilobytes of), and sealed permissions return. It reports false — leaving
// the space untouched — if Seal was never called or the segment set has
// changed since (a mapped or unmapped segment cannot be reconciled).
//
// Reset bumps Gen: decode caches revalidate, and stale hints are
// harmless by construction. Writes that bypassed the accessors (direct
// Segment.Data stores) are invisible to the dirty tracking and survive a
// Reset; runtime code must not do that (see Segment).
func (m *Memory) Reset() bool {
	if m.sealed == nil || len(m.sealed) != len(m.segs) {
		return false
	}
	for i, ss := range m.sealed {
		if m.segs[i] != ss.seg {
			return false
		}
	}
	for _, ss := range m.sealed {
		s := ss.seg
		s.Perm = ss.perm
		if s.dirtyHi > s.dirtyLo {
			dst := s.Data[s.dirtyLo:s.dirtyHi]
			if ss.data == nil {
				clear(dst)
			} else {
				copy(dst, ss.data[s.dirtyLo:s.dirtyHi])
			}
		}
		s.clean()
	}
	m.gen++
	return true
}

// Clone returns a deep copy of the address space, used for snapshot/restore
// style debugging and for diversity experiments that perturb one copy. The
// clone starts unsealed and with a fresh generation.
func (m *Memory) Clone() *Memory {
	c := &Memory{wx: m.wx, gen: 1, segs: make([]*Segment, len(m.segs))}
	for i, s := range m.segs {
		d := make([]byte, len(s.Data))
		copy(d, s.Data)
		cs := &Segment{Name: s.Name, Base: s.Base, Perm: s.Perm, Data: d}
		cs.clean()
		c.segs[i] = cs
	}
	return c
}
