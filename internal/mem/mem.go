// Package mem implements the simulated 32-bit flat address space used by the
// exploitation laboratory. It provides named segments with page-style
// read/write/execute permissions, access-fault reporting, and an optional
// W⊕X (writable-xor-executable) policy that mirrors DEP/NX: when enabled,
// instruction fetch from a writable segment faults, exactly like executing
// injected shellcode on a stack with stack-execution protection.
//
// The address space is the substrate every other component builds on: the
// loader maps program images into it, the CPU emulators fetch and execute
// from it, and the vulnerable victim code corrupts it.
package mem

import (
	"fmt"
	"sort"
)

// Perm is a bitmask of segment permissions.
type Perm uint8

// Permission bits. A segment with PermWrite but not PermExec is the normal
// data/stack configuration; PermRead|PermExec is the normal text
// configuration.
const (
	PermRead Perm = 1 << iota
	PermWrite
	PermExec
)

// Common permission combinations.
const (
	PermRW  = PermRead | PermWrite
	PermRX  = PermRead | PermExec
	PermRWX = PermRead | PermWrite | PermExec
)

// String renders the permission in the familiar "rwx" form.
func (p Perm) String() string {
	b := []byte("---")
	if p&PermRead != 0 {
		b[0] = 'r'
	}
	if p&PermWrite != 0 {
		b[1] = 'w'
	}
	if p&PermExec != 0 {
		b[2] = 'x'
	}
	return string(b)
}

// Access identifies the kind of memory access that produced a fault.
type Access uint8

// Access kinds.
const (
	AccessRead Access = iota + 1
	AccessWrite
	AccessExec
)

// String implements fmt.Stringer.
func (a Access) String() string {
	switch a {
	case AccessRead:
		return "read"
	case AccessWrite:
		return "write"
	case AccessExec:
		return "exec"
	default:
		return "unknown"
	}
}

// FaultKind classifies a memory fault.
type FaultKind uint8

// Fault kinds. FaultUnmapped is an access to an address outside every
// segment; FaultProtection is an access violating the segment permissions
// (including W⊕X fetch violations).
const (
	FaultUnmapped FaultKind = iota + 1
	FaultProtection
)

// String implements fmt.Stringer.
func (k FaultKind) String() string {
	switch k {
	case FaultUnmapped:
		return "unmapped"
	case FaultProtection:
		return "protection"
	default:
		return "unknown"
	}
}

// Fault is the simulated equivalent of SIGSEGV: an invalid memory access.
// It records enough context to classify an experiment outcome (e.g. "victim
// crashed fetching from the stack" means W⊕X stopped a code-injection
// attack).
type Fault struct {
	Kind   FaultKind
	Access Access
	Addr   uint32
	// Segment is the name of the segment containing Addr, if any.
	Segment string
}

// Error implements the error interface.
func (f *Fault) Error() string {
	if f.Segment != "" {
		return fmt.Sprintf("memory fault: %s %s at %#08x (segment %s)",
			f.Kind, f.Access, f.Addr, f.Segment)
	}
	return fmt.Sprintf("memory fault: %s %s at %#08x", f.Kind, f.Access, f.Addr)
}

// Segment is a contiguous, permissioned region of the address space.
type Segment struct {
	Name string
	Base uint32
	Perm Perm
	Data []byte
}

// Size returns the segment length in bytes.
func (s *Segment) Size() uint32 { return uint32(len(s.Data)) }

// End returns the first address past the segment.
func (s *Segment) End() uint32 { return s.Base + s.Size() }

// Contains reports whether addr falls inside the segment.
func (s *Segment) Contains(addr uint32) bool {
	return addr >= s.Base && addr < s.End()
}

// Memory is a simulated 32-bit address space composed of non-overlapping
// segments. The zero value is an empty address space with W⊕X disabled.
//
// Memory is not safe for concurrent use; each simulated process owns its
// own Memory.
type Memory struct {
	segs []*Segment // sorted by Base
	wx   bool
}

// New returns an empty address space.
func New() *Memory { return &Memory{} }

// SetWX enables or disables the W⊕X policy. With W⊕X on, Fetch from a
// writable segment faults even if the segment claims PermExec; this mirrors
// kernels that refuse writable+executable mappings.
func (m *Memory) SetWX(on bool) { m.wx = on }

// WX reports whether the W⊕X policy is enabled.
func (m *Memory) WX() bool { return m.wx }

// Map creates a segment. It fails if the range overlaps an existing segment
// or wraps the 32-bit address space.
func (m *Memory) Map(name string, base, size uint32, perm Perm) (*Segment, error) {
	if size == 0 {
		return nil, fmt.Errorf("map %s: zero size", name)
	}
	if base+size < base {
		return nil, fmt.Errorf("map %s: range %#x+%#x wraps address space", name, base, size)
	}
	for _, s := range m.segs {
		if base < s.End() && s.Base < base+size {
			return nil, fmt.Errorf("map %s at %#x+%#x: overlaps segment %s at %#x+%#x",
				name, base, size, s.Name, s.Base, s.Size())
		}
	}
	seg := &Segment{Name: name, Base: base, Perm: perm, Data: make([]byte, size)}
	m.segs = append(m.segs, seg)
	sort.Slice(m.segs, func(i, j int) bool { return m.segs[i].Base < m.segs[j].Base })
	return seg, nil
}

// Unmap removes the named segment. It is a no-op if the segment does not
// exist.
func (m *Memory) Unmap(name string) {
	for i, s := range m.segs {
		if s.Name == name {
			m.segs = append(m.segs[:i], m.segs[i+1:]...)
			return
		}
	}
}

// Segments returns the segments sorted by base address. The returned slice
// is a copy; the segments themselves are shared.
func (m *Memory) Segments() []*Segment {
	out := make([]*Segment, len(m.segs))
	copy(out, m.segs)
	return out
}

// Segment returns the named segment, or nil.
func (m *Memory) Segment(name string) *Segment {
	for _, s := range m.segs {
		if s.Name == name {
			return s
		}
	}
	return nil
}

// Find returns the segment containing addr, or nil.
func (m *Memory) Find(addr uint32) *Segment {
	// Binary search over sorted bases.
	lo, hi := 0, len(m.segs)
	for lo < hi {
		mid := (lo + hi) / 2
		if m.segs[mid].End() <= addr {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < len(m.segs) && m.segs[lo].Contains(addr) {
		return m.segs[lo]
	}
	return nil
}

// SetPerm changes the permissions of the named segment.
func (m *Memory) SetPerm(name string, perm Perm) error {
	s := m.Segment(name)
	if s == nil {
		return fmt.Errorf("setperm: no segment %q", name)
	}
	s.Perm = perm
	return nil
}

func (m *Memory) fault(kind FaultKind, access Access, addr uint32) *Fault {
	f := &Fault{Kind: kind, Access: access, Addr: addr}
	if s := m.Find(addr); s != nil {
		f.Segment = s.Name
	}
	return f
}

// check locates the segment for a [addr, addr+n) access and validates
// permissions. Accesses may not span segments: real exploits in this lab
// never need to, and spanning would hide layout bugs.
func (m *Memory) check(addr, n uint32, access Access) (*Segment, uint32, *Fault) {
	s := m.Find(addr)
	if s == nil {
		return nil, 0, m.fault(FaultUnmapped, access, addr)
	}
	off := addr - s.Base
	if off+n > s.Size() {
		return nil, 0, m.fault(FaultUnmapped, access, s.End())
	}
	switch access {
	case AccessRead:
		if s.Perm&PermRead == 0 {
			return nil, 0, m.fault(FaultProtection, access, addr)
		}
	case AccessWrite:
		if s.Perm&PermWrite == 0 {
			return nil, 0, m.fault(FaultProtection, access, addr)
		}
	case AccessExec:
		if s.Perm&PermExec == 0 {
			return nil, 0, m.fault(FaultProtection, access, addr)
		}
		if m.wx && s.Perm&PermWrite != 0 {
			// W⊕X: never execute from writable memory.
			return nil, 0, m.fault(FaultProtection, access, addr)
		}
	}
	return s, off, nil
}

// ReadBytes copies n bytes starting at addr.
func (m *Memory) ReadBytes(addr, n uint32) ([]byte, *Fault) {
	if n == 0 {
		return nil, nil
	}
	s, off, f := m.check(addr, n, AccessRead)
	if f != nil {
		return nil, f
	}
	out := make([]byte, n)
	copy(out, s.Data[off:off+n])
	return out, nil
}

// WriteBytes stores b starting at addr.
func (m *Memory) WriteBytes(addr uint32, b []byte) *Fault {
	if len(b) == 0 {
		return nil
	}
	s, off, f := m.check(addr, uint32(len(b)), AccessWrite)
	if f != nil {
		return f
	}
	copy(s.Data[off:], b)
	return nil
}

// ReadU8 loads one byte.
func (m *Memory) ReadU8(addr uint32) (uint8, *Fault) {
	s, off, f := m.check(addr, 1, AccessRead)
	if f != nil {
		return 0, f
	}
	return s.Data[off], nil
}

// WriteU8 stores one byte.
func (m *Memory) WriteU8(addr uint32, v uint8) *Fault {
	s, off, f := m.check(addr, 1, AccessWrite)
	if f != nil {
		return f
	}
	s.Data[off] = v
	return nil
}

// ReadU16 loads a little-endian 16-bit value.
func (m *Memory) ReadU16(addr uint32) (uint16, *Fault) {
	s, off, f := m.check(addr, 2, AccessRead)
	if f != nil {
		return 0, f
	}
	return uint16(s.Data[off]) | uint16(s.Data[off+1])<<8, nil
}

// WriteU16 stores a little-endian 16-bit value.
func (m *Memory) WriteU16(addr uint32, v uint16) *Fault {
	s, off, f := m.check(addr, 2, AccessWrite)
	if f != nil {
		return f
	}
	s.Data[off] = byte(v)
	s.Data[off+1] = byte(v >> 8)
	return nil
}

// ReadU32 loads a little-endian 32-bit value.
func (m *Memory) ReadU32(addr uint32) (uint32, *Fault) {
	s, off, f := m.check(addr, 4, AccessRead)
	if f != nil {
		return 0, f
	}
	d := s.Data[off : off+4]
	return uint32(d[0]) | uint32(d[1])<<8 | uint32(d[2])<<16 | uint32(d[3])<<24, nil
}

// WriteU32 stores a little-endian 32-bit value.
func (m *Memory) WriteU32(addr uint32, v uint32) *Fault {
	s, off, f := m.check(addr, 4, AccessWrite)
	if f != nil {
		return f
	}
	s.Data[off] = byte(v)
	s.Data[off+1] = byte(v >> 8)
	s.Data[off+2] = byte(v >> 16)
	s.Data[off+3] = byte(v >> 24)
	return nil
}

// Fetch reads up to n instruction bytes at addr, enforcing execute
// permission and the W⊕X policy. Fewer than n bytes may be returned when
// the segment ends before addr+n; callers decode what they receive.
func (m *Memory) Fetch(addr, n uint32) ([]byte, *Fault) {
	s, off, f := m.check(addr, 1, AccessExec)
	if f != nil {
		return nil, f
	}
	end := off + n
	if end > s.Size() {
		end = s.Size()
	}
	out := make([]byte, end-off)
	copy(out, s.Data[off:end])
	return out, nil
}

// ReadCString reads a NUL-terminated string starting at addr, up to max
// bytes (not counting the terminator).
func (m *Memory) ReadCString(addr, max uint32) (string, *Fault) {
	var out []byte
	for i := uint32(0); i < max; i++ {
		b, f := m.ReadU8(addr + i)
		if f != nil {
			return "", f
		}
		if b == 0 {
			break
		}
		out = append(out, b)
	}
	return string(out), nil
}

// Clone returns a deep copy of the address space, used for snapshot/restore
// style debugging and for diversity experiments that perturb one copy.
func (m *Memory) Clone() *Memory {
	c := &Memory{wx: m.wx, segs: make([]*Segment, len(m.segs))}
	for i, s := range m.segs {
		d := make([]byte, len(s.Data))
		copy(d, s.Data)
		c.segs[i] = &Segment{Name: s.Name, Base: s.Base, Perm: s.Perm, Data: d}
	}
	return c
}
