package mem

import "testing"

// TestCheckOverflowAt32BitBoundary is the regression test for the off+n
// overflow: a segment near the top of the address space plus a huge
// (attacker-controlled) access length used to wrap uint32 and pass the
// bounds check. Every access width and kind must fault instead.
func TestCheckOverflowAt32BitBoundary(t *testing.T) {
	m := New()
	// The highest mappable page-aligned segment: Map rejects ranges that
	// wrap, so end at 0xFFFFF000.
	if _, err := m.Map("top", 0xFFFFE000, 0x1000, PermRWX); err != nil {
		t.Fatal(err)
	}

	// n chosen so off+n wraps past 2^32: off = 0xFFF, n = 0xFFFFFFF0.
	addr := uint32(0xFFFFEFFF)
	if _, f := m.ReadBytes(addr, 0xFFFFFFF0); f == nil {
		t.Error("huge ReadBytes near 2^32 did not fault")
	}
	if f := m.WriteBytes(addr, make([]byte, 16)); f == nil {
		t.Error("WriteBytes spanning segment end did not fault")
	}

	// Width-typed accesses at the very last bytes: the last valid U32 is
	// at End-4; End-3..End-1 must fault without wrapping.
	end := uint32(0xFFFFF000)
	if _, f := m.ReadU32(end - 4); f != nil {
		t.Errorf("ReadU32 at last aligned word faulted: %v", f)
	}
	for _, a := range []uint32{end - 3, end - 2, end - 1} {
		if _, f := m.ReadU32(a); f == nil {
			t.Errorf("ReadU32(%#x) crossing segment end did not fault", a)
		}
		if f := m.WriteU32(a, 1); f == nil {
			t.Errorf("WriteU32(%#x) crossing segment end did not fault", a)
		}
	}
	if _, f := m.ReadU16(end - 1); f == nil {
		t.Error("ReadU16 at End-1 did not fault")
	}
	if v, f := m.ReadU8(end - 1); f != nil || v != 0 {
		t.Errorf("ReadU8 at last byte = %#x, %v", v, f)
	}

	// The bounds fault reports unmapped at the segment end, matching the
	// historical fault shape exploit transcripts depend on.
	_, f := m.ReadU32(end - 2)
	if f == nil || f.Kind != FaultUnmapped || f.Addr != end {
		t.Errorf("boundary fault = %+v, want unmapped at %#x", f, end)
	}
}

// TestFindEdgeCases covers the binary search and the per-access memo
// across empty spaces, first/last segments, and stale hints.
func TestFindEdgeCases(t *testing.T) {
	m := New()
	if m.Find(0) != nil || m.Find(0xFFFFFFFF) != nil {
		t.Error("Find on empty space returned a segment")
	}

	first, err := m.Map("first", 0x1000, 0x1000, PermRW)
	if err != nil {
		t.Fatal(err)
	}
	last, err := m.Map("last", 0xFFFFE000, 0x1000, PermRW)
	if err != nil {
		t.Fatal(err)
	}

	cases := []struct {
		addr uint32
		want *Segment
	}{
		{0x0FFF, nil},      // just below first
		{0x1000, first},    // first byte of first
		{0x1FFF, first},    // last byte of first
		{0x2000, nil},      // just past first
		{0x8000, nil},      // gap between segments
		{0xFFFFDFFF, nil},  // just below last
		{0xFFFFE000, last}, // first byte of last
		{0xFFFFEFFF, last}, // last byte of last
		{0xFFFFF000, nil},  // just past last
		{0xFFFFFFFF, nil},  // top of address space
	}
	for _, c := range cases {
		if got := m.Find(c.addr); got != c.want {
			t.Errorf("Find(%#x) = %v, want %v", c.addr, got, c.want)
		}
	}

	// Alternate between segments so the memo goes stale every lookup; the
	// self-validating hint must never return the wrong segment.
	for i := 0; i < 8; i++ {
		if m.Find(0x1800) != first || m.Find(0xFFFFE800) != last {
			t.Fatal("alternating Find returned wrong segment")
		}
	}
}

// TestUnmapEdgeCases covers unmap of first/last/missing segments and
// unmap-then-map of the same range, including hint invalidation.
func TestUnmapEdgeCases(t *testing.T) {
	m := New()
	for _, s := range []struct {
		name string
		base uint32
	}{{"a", 0x1000}, {"b", 0x3000}, {"c", 0x5000}} {
		if _, err := m.Map(s.name, s.base, 0x1000, PermRW); err != nil {
			t.Fatal(err)
		}
	}

	// Warm the memo on the middle segment, then unmap it: lookups must
	// miss, not hit the stale slot.
	if m.Find(0x3800) == nil {
		t.Fatal("warmup find failed")
	}
	m.Unmap("b")
	if m.Find(0x3800) != nil {
		t.Error("Find returned unmapped segment")
	}
	if _, f := m.ReadU8(0x3800); f == nil || f.Kind != FaultUnmapped {
		t.Errorf("read of unmapped range = %v, want unmapped fault", f)
	}

	m.Unmap("a") // first
	m.Unmap("c") // last
	if len(m.Segments()) != 0 {
		t.Fatalf("segments remain after unmapping all: %v", m.Segments())
	}
	m.Unmap("missing") // no-op, must not panic

	// Remap the same range with different permissions.
	if _, err := m.Map("b2", 0x3000, 0x1000, PermRX); err != nil {
		t.Fatalf("remap of unmapped range: %v", err)
	}
	if f := m.WriteU8(0x3000, 1); f == nil || f.Kind != FaultProtection {
		t.Errorf("write to remapped RX = %v, want protection fault", f)
	}
}

// TestGenBumpsOnLayoutChanges pins the generation counter contract decode
// caches rely on: Map, Unmap, SetPerm and Reset each bump it; plain
// loads/stores do not.
func TestGenBumpsOnLayoutChanges(t *testing.T) {
	m := New()
	if m.Gen() == 0 {
		t.Fatal("generation must start nonzero")
	}
	g := m.Gen()
	if _, err := m.Map("a", 0x1000, 0x1000, PermRW); err != nil {
		t.Fatal(err)
	}
	if m.Gen() == g {
		t.Error("Map did not bump generation")
	}
	g = m.Gen()
	if f := m.WriteU32(0x1000, 42); f != nil {
		t.Fatal(f)
	}
	if _, f := m.ReadU32(0x1000); f != nil {
		t.Fatal(f)
	}
	if m.Gen() != g {
		t.Error("plain accesses must not bump generation")
	}
	if err := m.SetPerm("a", PermRX); err != nil {
		t.Fatal(err)
	}
	if m.Gen() == g {
		t.Error("SetPerm did not bump generation")
	}
	g = m.Gen()
	m.Unmap("a")
	if m.Gen() == g {
		t.Error("Unmap did not bump generation")
	}
}

// TestSealReset covers the recycle path: accessor writes since Seal are
// rolled back (copy-restore for populated segments, zero-fill for
// untouched ones), permissions return, and the generation bumps.
func TestSealReset(t *testing.T) {
	m := New()
	text, err := m.Map("text", 0x1000, 0x100, PermRX)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Map("stack", 0x8000, 0x1000, PermRW); err != nil {
		t.Fatal(err)
	}
	text.Populate(0, []byte{0xC3, 0x90, 0x90})

	if m.Reset() {
		t.Fatal("Reset before Seal must report false")
	}
	if m.Sealed() {
		t.Fatal("Sealed before Seal")
	}
	m.Seal()
	if !m.Sealed() {
		t.Fatal("Sealed() false after Seal")
	}

	// Scribble over the stack and flip the text permissions.
	if f := m.WriteU32(0x8010, 0xDEADBEEF); f != nil {
		t.Fatal(f)
	}
	if f := m.WriteU8(0x8FFF, 0x41); f != nil {
		t.Fatal(f)
	}
	if err := m.SetPerm("text", PermRWX); err != nil {
		t.Fatal(err)
	}
	if f := m.WriteU8(0x1001, 0xCC); f != nil {
		t.Fatal(f)
	}

	g := m.Gen()
	if !m.Reset() {
		t.Fatal("Reset failed")
	}
	if m.Gen() == g {
		t.Error("Reset did not bump generation")
	}
	if v, _ := m.ReadU32(0x8010); v != 0 {
		t.Errorf("stack word after Reset = %#x, want 0", v)
	}
	if v, _ := m.ReadU8(0x8FFF); v != 0 {
		t.Errorf("stack byte after Reset = %#x, want 0", v)
	}
	if m.Segment("text").Perm != PermRX {
		t.Errorf("text perm after Reset = %v, want rx", m.Segment("text").Perm)
	}
	if b, f := m.ReadBytes(0x1000, 3); f != nil || b[0] != 0xC3 || b[1] != 0x90 {
		t.Errorf("text after Reset = % x, %v", b, f)
	}

	// Reset is repeatable: a second round trip behaves identically.
	if f := m.WriteU32(0x8010, 7); f != nil {
		t.Fatal(f)
	}
	if !m.Reset() {
		t.Fatal("second Reset failed")
	}
	if v, _ := m.ReadU32(0x8010); v != 0 {
		t.Error("second Reset did not restore")
	}

	// A layout change invalidates the seal.
	if _, err := m.Map("late", 0x20000, 0x100, PermRW); err != nil {
		t.Fatal(err)
	}
	if m.Reset() {
		t.Error("Reset succeeded after segment set changed")
	}
}

// TestFetch32Truncation pins the arms fetch contract: a word that runs off
// the end of the segment is short (illegal instruction), not a fault.
func TestFetch32Truncation(t *testing.T) {
	m := New()
	if _, err := m.Map("text", 0x1000, 0x6, PermRX); err != nil {
		t.Fatal(err)
	}
	if _, _, short, f := m.Fetch32(0x1000); f != nil || short {
		t.Errorf("aligned fetch = short=%v fault=%v", short, f)
	}
	if _, _, short, f := m.Fetch32(0x1004); f != nil || !short {
		t.Errorf("truncated fetch = short=%v fault=%v, want short", short, f)
	}
	if _, _, _, f := m.Fetch32(0x2000); f == nil || f.Kind != FaultUnmapped {
		t.Errorf("unmapped fetch fault = %v", f)
	}
}
