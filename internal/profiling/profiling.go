// Package profiling wires the -cpuprofile/-memprofile flags of the CLI
// tools to runtime/pprof. The profiles feed the hot-path work recorded in
// the README's Performance section:
//
//	go run ./cmd/campaign -preset fleet -devices 32 -cpuprofile cpu.out
//	go tool pprof cpu.out
package profiling

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// Start begins CPU profiling to cpuPath and arranges a heap profile at
// memPath; either may be empty to skip that profile. The returned stop
// function finishes both and must be called exactly once (defer it).
func Start(cpuPath, memPath string) (stop func() error, err error) {
	var cpuFile *os.File
	if cpuPath != "" {
		cpuFile, err = os.Create(cpuPath)
		if err != nil {
			return nil, fmt.Errorf("cpu profile: %w", err)
		}
		if err := pprof.StartCPUProfile(cpuFile); err != nil {
			cpuFile.Close()
			return nil, fmt.Errorf("cpu profile: %w", err)
		}
	}
	return func() error {
		if cpuFile != nil {
			pprof.StopCPUProfile()
			if err := cpuFile.Close(); err != nil {
				return fmt.Errorf("cpu profile: %w", err)
			}
		}
		if memPath != "" {
			f, err := os.Create(memPath)
			if err != nil {
				return fmt.Errorf("mem profile: %w", err)
			}
			defer f.Close()
			runtime.GC() // settle the heap so the profile shows live objects
			if err := pprof.WriteHeapProfile(f); err != nil {
				return fmt.Errorf("mem profile: %w", err)
			}
		}
		return nil
	}, nil
}
