// Package snapshot is a content-addressed on-disk store for recon
// artifacts: frame layouts, gadget section indexes, and memory-string
// indexes survive the process that computed them, so a cold CLI start
// becomes a cache probe instead of a full emulated recon.
//
// Entries are keyed by a sha256 over everything that went into the
// artifact (format version, artifact kind, architecture, and the raw
// input sections), compressed with the internal/lzss codec, and
// verified byte-exact on load: the decompressed payload is re-hashed
// against the hash recorded at save time, and any mismatch, version
// skew, or truncation surfaces as a sentinel error so callers fall
// back to live recon. A corrupt cache can never change a verdict.
//
// Entry file layout (all integers big-endian):
//
//	offset size
//	0      4     magic "CSNP"
//	4      2     format version
//	6      1+k   kind length, kind bytes
//	·      1+a   arch length, arch bytes
//	·      32    key hash (matches the filename)
//	·      32    sha256 of the decompressed payload
//	·      4     raw (decompressed) payload size
//	·      4     compressed stream size
//	·      ·     LZSS stream (internal/lzss, self-describing params)
package snapshot

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"connlab/internal/lzss"
	"connlab/internal/telemetry"
)

// FormatVersion is bumped whenever any serialized artifact layout
// changes. It participates in the key hash, so entries written by an
// older format can never be confused with current ones; Prune removes
// the leftovers.
const FormatVersion = 1

// MaxRawSize bounds the decompressed size of a single entry. Real
// artifacts are at most a few megabytes; the bound keeps a corrupt or
// hostile entry from ballooning memory during rehydration.
const MaxRawSize = 64 << 20

const (
	magic   = "CSNP"
	suffix  = ".snap"
	hashLen = sha256.Size
)

// Sentinel errors. Load distinguishes "no entry" (a plain miss) from
// "entry failed verification" (corruption, truncation, or hash skew)
// so callers can count them separately; both mean "do live recon".
var (
	ErrNotFound = errors.New("snapshot: entry not found")
	ErrVerify   = errors.New("snapshot: entry failed verification")
	ErrVersion  = errors.New("snapshot: entry format version mismatch")
	ErrTooLarge = errors.New("snapshot: payload exceeds MaxRawSize")
)

// Key addresses one artifact: what it is, which ISA it serves, and a
// hash of every input that shaped it.
type Key struct {
	Kind string
	Arch string
	Hash [hashLen]byte
}

// NewKey builds a content-addressed key: the hash covers the format
// version, kind, arch, and each input part with a length prefix, so
// concatenation ambiguity cannot alias two different inputs.
func NewKey(kind, arch string, parts ...[]byte) Key {
	h := sha256.New()
	var num [8]byte
	binary.BigEndian.PutUint64(num[:], FormatVersion)
	h.Write(num[:])
	for _, s := range []string{kind, arch} {
		binary.BigEndian.PutUint64(num[:], uint64(len(s)))
		h.Write(num[:])
		h.Write([]byte(s))
	}
	for _, p := range parts {
		binary.BigEndian.PutUint64(num[:], uint64(len(p)))
		h.Write(num[:])
		h.Write(p)
	}
	k := Key{Kind: kind, Arch: arch}
	h.Sum(k.Hash[:0])
	return k
}

// validToken reports whether a kind/arch component is safe to embed in
// a filename: non-empty, at most 64 bytes, lowercase alphanumerics and
// dashes only.
func validToken(s string) bool {
	if len(s) == 0 || len(s) > 64 {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		if !('a' <= c && c <= 'z' || '0' <= c && c <= '9' || c == '-') {
			return false
		}
	}
	return true
}

// fileName is the content-addressed entry name for a key.
func fileName(k Key) string {
	return k.Kind + "_" + k.Arch + "_" + hex.EncodeToString(k.Hash[:]) + suffix
}

// Store is a directory of snapshot entries. Writes are atomic
// (temp file + rename), so concurrent readers in other processes see
// either the old entry or the new one, never a torn file.
type Store struct {
	dir           string
	windowBits    uint8
	lookaheadBits uint8
}

// Open creates the directory if needed and returns a store using the
// default LZSS parameters.
func Open(dir string) (*Store, error) {
	return OpenParams(dir, lzss.DefaultWindowBits, lzss.DefaultLookaheadBits)
}

// OpenParams is Open with explicit LZSS window/lookahead bits for new
// entries. Existing entries decode with whatever parameters they were
// written with (the stream header carries them).
func OpenParams(dir string, windowBits, lookaheadBits uint8) (*Store, error) {
	if err := lzss.CheckParams(windowBits, lookaheadBits); err != nil {
		return nil, err
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("snapshot: open store: %w", err)
	}
	return &Store{dir: dir, windowBits: windowBits, lookaheadBits: lookaheadBits}, nil
}

// Dir returns the store's directory.
func (s *Store) Dir() string { return s.dir }

// Path returns the on-disk path an entry for k would occupy.
func (s *Store) Path(k Key) string { return filepath.Join(s.dir, fileName(k)) }

// Save serializes payload under k, compressing it and recording both
// the key hash and a payload hash for load-time verification.
func (s *Store) Save(k Key, payload []byte) error {
	if !validToken(k.Kind) || !validToken(k.Arch) {
		return fmt.Errorf("snapshot: invalid key kind/arch %q/%q", k.Kind, k.Arch)
	}
	if len(payload) > MaxRawSize {
		return fmt.Errorf("%w: %d bytes", ErrTooLarge, len(payload))
	}
	comp, err := lzss.Compress(nil, payload, s.windowBits, s.lookaheadBits)
	if err != nil {
		return fmt.Errorf("snapshot: compress: %w", err)
	}

	buf := make([]byte, 0, len(magic)+2+2+len(k.Kind)+len(k.Arch)+2*hashLen+8+len(comp))
	buf = append(buf, magic...)
	buf = binary.BigEndian.AppendUint16(buf, FormatVersion)
	buf = append(buf, byte(len(k.Kind)))
	buf = append(buf, k.Kind...)
	buf = append(buf, byte(len(k.Arch)))
	buf = append(buf, k.Arch...)
	buf = append(buf, k.Hash[:]...)
	sum := sha256.Sum256(payload)
	buf = append(buf, sum[:]...)
	buf = binary.BigEndian.AppendUint32(buf, uint32(len(payload)))
	buf = binary.BigEndian.AppendUint32(buf, uint32(len(comp)))
	buf = append(buf, comp...)

	tmp, err := os.CreateTemp(s.dir, ".tmp-*")
	if err != nil {
		return fmt.Errorf("snapshot: save: %w", err)
	}
	if _, err := tmp.Write(buf); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return fmt.Errorf("snapshot: save: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("snapshot: save: %w", err)
	}
	if err := os.Rename(tmp.Name(), s.Path(k)); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("snapshot: save: %w", err)
	}
	telemetry.Add(telemetry.CtrSnapStoreBytes, uint64(len(buf)))
	return nil
}

// Load returns the verified payload for k. A missing entry returns
// ErrNotFound; an entry written by a different format version returns
// ErrVersion; anything that fails parsing, decompression, or either
// hash check returns an error wrapping ErrVerify. Every error path
// means "fall back to live recon" — the store never guesses.
func (s *Store) Load(k Key) ([]byte, error) {
	data, err := os.ReadFile(s.Path(k))
	if err != nil {
		if os.IsNotExist(err) {
			telemetry.Inc(telemetry.CtrSnapMiss)
			return nil, ErrNotFound
		}
		telemetry.Inc(telemetry.CtrSnapMiss)
		return nil, fmt.Errorf("%w: %v", ErrNotFound, err)
	}
	payload, hdr, err := decodeEntry(data)
	if err != nil {
		if errors.Is(err, ErrVersion) {
			telemetry.Inc(telemetry.CtrSnapMiss)
		} else {
			telemetry.Inc(telemetry.CtrSnapVerifyFail)
		}
		return nil, err
	}
	if hdr.Key != k {
		telemetry.Inc(telemetry.CtrSnapVerifyFail)
		return nil, fmt.Errorf("%w: entry key does not match request", ErrVerify)
	}
	telemetry.Inc(telemetry.CtrSnapHit)
	return payload, nil
}

// EntryInfo describes one store entry from its header.
type EntryInfo struct {
	Name     string
	Key      Key
	Version  uint16
	RawSize  uint32
	CompSize uint32
	FileSize int64
	// Bad is a non-empty reason when the file is not a parseable entry.
	Bad string
}

// header is the parsed fixed part of an entry.
type header struct {
	Key         Key
	Version     uint16
	PayloadHash [hashLen]byte
	RawSize     uint32
	CompSize    uint32
	bodyOff     int
}

// parseHeader decodes the entry header without touching the stream.
func parseHeader(data []byte) (header, error) {
	var h header
	off := 0
	need := func(n int) error {
		if len(data)-off < n {
			return fmt.Errorf("%w: truncated header", ErrVerify)
		}
		return nil
	}
	if err := need(len(magic) + 2); err != nil {
		return h, err
	}
	if string(data[:len(magic)]) != magic {
		return h, fmt.Errorf("%w: bad magic", ErrVerify)
	}
	off = len(magic)
	h.Version = binary.BigEndian.Uint16(data[off:])
	off += 2
	for _, dst := range []*string{&h.Key.Kind, &h.Key.Arch} {
		if err := need(1); err != nil {
			return h, err
		}
		n := int(data[off])
		off++
		if err := need(n); err != nil {
			return h, err
		}
		*dst = string(data[off : off+n])
		off += n
	}
	if err := need(2*hashLen + 8); err != nil {
		return h, err
	}
	copy(h.Key.Hash[:], data[off:])
	off += hashLen
	copy(h.PayloadHash[:], data[off:])
	off += hashLen
	h.RawSize = binary.BigEndian.Uint32(data[off:])
	h.CompSize = binary.BigEndian.Uint32(data[off+4:])
	off += 8
	h.bodyOff = off
	return h, nil
}

// decodeEntry parses, decompresses, and verifies a full entry image.
func decodeEntry(data []byte) ([]byte, header, error) {
	h, err := parseHeader(data)
	if err != nil {
		return nil, h, err
	}
	if h.Version != FormatVersion {
		return nil, h, fmt.Errorf("%w: entry v%d, store v%d", ErrVersion, h.Version, FormatVersion)
	}
	if !validToken(h.Key.Kind) || !validToken(h.Key.Arch) {
		return nil, h, fmt.Errorf("%w: malformed kind/arch", ErrVerify)
	}
	if h.RawSize > MaxRawSize {
		return nil, h, fmt.Errorf("%w: claimed raw size %d", ErrVerify, h.RawSize)
	}
	body := data[h.bodyOff:]
	if uint64(len(body)) != uint64(h.CompSize) {
		return nil, h, fmt.Errorf("%w: stream is %d bytes, header says %d (%v)",
			ErrVerify, len(body), h.CompSize, lzss.ErrTruncated)
	}
	payload, err := lzss.Decompress(make([]byte, 0, int(h.RawSize)+1), body, int(h.RawSize)+1)
	if err != nil {
		return nil, h, fmt.Errorf("%w: %v", ErrVerify, err)
	}
	if uint32(len(payload)) != h.RawSize {
		return nil, h, fmt.Errorf("%w: decompressed to %d bytes, header says %d",
			ErrVerify, len(payload), h.RawSize)
	}
	if sha256.Sum256(payload) != h.PayloadHash {
		return nil, h, fmt.Errorf("%w: payload hash mismatch", ErrVerify)
	}
	return payload, h, nil
}

// DecodeEntry verifies a raw entry image (as read from disk) and
// returns its payload. It is the load path without the filesystem —
// exposed for tools and fuzzing.
func DecodeEntry(data []byte) ([]byte, error) {
	payload, _, err := decodeEntry(data)
	return payload, err
}

// Entries lists the store's entries by reading headers only, sorted by
// file name. Files that are not parseable entries are reported with a
// non-empty Bad reason rather than an error, so one stray file does
// not hide the rest of the listing.
func (s *Store) Entries() ([]EntryInfo, error) {
	names, err := s.entryNames()
	if err != nil {
		return nil, err
	}
	infos := make([]EntryInfo, 0, len(names))
	for _, name := range names {
		info := EntryInfo{Name: name}
		path := filepath.Join(s.dir, name)
		if fi, err := os.Stat(path); err == nil {
			info.FileSize = fi.Size()
		}
		data, err := os.ReadFile(path)
		if err != nil {
			info.Bad = err.Error()
		} else if h, err := parseHeader(data); err != nil {
			info.Bad = err.Error()
		} else {
			info.Key, info.Version = h.Key, h.Version
			info.RawSize, info.CompSize = h.RawSize, h.CompSize
		}
		infos = append(infos, info)
	}
	return infos, nil
}

// Verify fully decodes every entry, checking decompression, both
// hashes, and that the file sits at its content-addressed name. It
// returns the number of good entries and a reason per bad one.
func (s *Store) Verify() (ok int, bad []EntryInfo, err error) {
	names, err := s.entryNames()
	if err != nil {
		return 0, nil, err
	}
	for _, name := range names {
		info := EntryInfo{Name: name}
		data, rerr := os.ReadFile(filepath.Join(s.dir, name))
		if rerr != nil {
			info.Bad = rerr.Error()
			bad = append(bad, info)
			continue
		}
		info.FileSize = int64(len(data))
		_, h, derr := decodeEntry(data)
		if derr != nil {
			info.Bad = derr.Error()
			bad = append(bad, info)
			continue
		}
		info.Key, info.Version = h.Key, h.Version
		info.RawSize, info.CompSize = h.RawSize, h.CompSize
		if fileName(h.Key) != name {
			info.Bad = "file name does not match entry key"
			bad = append(bad, info)
			continue
		}
		ok++
	}
	return ok, bad, nil
}

// Prune removes entries whose format version differs from the current
// one, plus files that do not parse as entries at all. It returns the
// removed names.
func (s *Store) Prune() (removed []string, err error) {
	names, err := s.entryNames()
	if err != nil {
		return nil, err
	}
	for _, name := range names {
		path := filepath.Join(s.dir, name)
		data, rerr := os.ReadFile(path)
		stale := false
		if rerr != nil {
			stale = true
		} else if h, herr := parseHeader(data); herr != nil || h.Version != FormatVersion {
			stale = true
		}
		if stale {
			if rmErr := os.Remove(path); rmErr != nil {
				return removed, fmt.Errorf("snapshot: prune: %w", rmErr)
			}
			removed = append(removed, name)
		}
	}
	return removed, nil
}

// entryNames lists *.snap files in the store directory, sorted.
func (s *Store) entryNames() ([]string, error) {
	des, err := os.ReadDir(s.dir)
	if err != nil {
		return nil, fmt.Errorf("snapshot: read store dir: %w", err)
	}
	var names []string
	for _, de := range des {
		if de.IsDir() || !strings.HasSuffix(de.Name(), suffix) {
			continue
		}
		names = append(names, de.Name())
	}
	sort.Strings(names)
	return names, nil
}
