package snapshot

import (
	"bytes"
	"crypto/sha256"
	"errors"
	"os"
	"path/filepath"
	"testing"
)

func testStore(t *testing.T) *Store {
	t.Helper()
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestSaveLoadRoundTrip(t *testing.T) {
	s := testStore(t)
	payloads := map[string][]byte{
		"empty":      {},
		"small":      []byte("frame layout: ret at 76, nulls at 12 40"),
		"structured": bytes.Repeat([]byte("gadget \x5d\xc3 .text pop ret "), 4096),
	}
	for name, payload := range payloads {
		k := NewKey("recon-target", "x86s", []byte(name), payload)
		if err := s.Save(k, payload); err != nil {
			t.Fatalf("%s: save: %v", name, err)
		}
		got, err := s.Load(k)
		if err != nil {
			t.Fatalf("%s: load: %v", name, err)
		}
		if !bytes.Equal(got, payload) {
			t.Fatalf("%s: payload mismatch: %d bytes in, %d out", name, len(payload), len(got))
		}
	}
	// Overwrite with different content under the same key: last write wins.
	k := NewKey("recon-target", "x86s", []byte("small"), payloads["small"])
	if err := s.Save(k, []byte("replacement")); err != nil {
		t.Fatal(err)
	}
	got, err := s.Load(k)
	if err != nil || string(got) != "replacement" {
		t.Fatalf("overwrite: got %q, %v", got, err)
	}
}

func TestLoadMissing(t *testing.T) {
	s := testStore(t)
	if _, err := s.Load(NewKey("gadget-index", "arms", []byte("x"))); !errors.Is(err, ErrNotFound) {
		t.Fatalf("got %v, want ErrNotFound", err)
	}
}

func TestNewKeyLengthPrefixing(t *testing.T) {
	a := NewKey("k", "a", []byte("ab"), []byte("c"))
	b := NewKey("k", "a", []byte("a"), []byte("bc"))
	if a.Hash == b.Hash {
		t.Fatal("part boundaries must be part of the hash")
	}
	if a := NewKey("k", "a", []byte("x")); a != NewKey("k", "a", []byte("x")) {
		t.Fatal("NewKey not deterministic")
	}
}

func TestBadKeyTokens(t *testing.T) {
	s := testStore(t)
	for _, k := range []Key{
		NewKey("", "x86s", nil),
		NewKey("has space", "x86s", nil),
		NewKey("ok", "UPPER", nil),
		NewKey("ok", "dots.bad", nil),
	} {
		if err := s.Save(k, []byte("p")); err == nil {
			t.Errorf("key %q/%q accepted", k.Kind, k.Arch)
		}
	}
}

// TestEveryByteCorruption flips each byte of a stored entry in turn:
// every corruption must either fail verification or (for bytes inside
// the unverified stream padding) still decode to the exact payload —
// a wrong payload must never come back.
func TestEveryByteCorruption(t *testing.T) {
	s := testStore(t)
	payload := []byte("the quick brown fox jumps over the lazy dog, twice over")
	k := NewKey("recon-target", "arms", payload)
	if err := s.Save(k, payload); err != nil {
		t.Fatal(err)
	}
	orig, err := os.ReadFile(s.Path(k))
	if err != nil {
		t.Fatal(err)
	}
	for i := range orig {
		mut := append([]byte(nil), orig...)
		mut[i] ^= 0x41
		got, err := DecodeEntry(mut)
		if err == nil && !bytes.Equal(got, payload) {
			t.Fatalf("flip at byte %d: wrong payload accepted", i)
		}
	}
	// Truncation at every length must never yield a payload silently.
	for cut := 0; cut < len(orig); cut++ {
		if got, err := DecodeEntry(orig[:cut]); err == nil && !bytes.Equal(got, payload) {
			t.Fatalf("truncation at %d: wrong payload accepted", cut)
		}
	}
}

func TestVersionSkewAndPrune(t *testing.T) {
	s := testStore(t)
	payload := []byte("current-format entry")
	k := NewKey("gadget-index", "x86s", payload)
	if err := s.Save(k, payload); err != nil {
		t.Fatal(err)
	}
	// Forge a stale-version entry by patching the header version field
	// of a valid entry under a different name.
	data, err := os.ReadFile(s.Path(k))
	if err != nil {
		t.Fatal(err)
	}
	stale := append([]byte(nil), data...)
	stale[4], stale[5] = 0, FormatVersion+1
	staleKey := k
	staleKey.Hash[0] ^= 0xFF
	if err := os.WriteFile(s.Path(staleKey), stale, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Load(staleKey); !errors.Is(err, ErrVersion) {
		t.Fatalf("got %v, want ErrVersion", err)
	}
	// A non-entry file should also be pruned.
	junk := filepath.Join(s.Dir(), "junk.snap")
	if err := os.WriteFile(junk, []byte("not an entry"), 0o644); err != nil {
		t.Fatal(err)
	}
	removed, err := s.Prune()
	if err != nil {
		t.Fatal(err)
	}
	if len(removed) != 2 {
		t.Fatalf("pruned %v, want the stale and junk entries", removed)
	}
	if _, err := s.Load(k); err != nil {
		t.Fatalf("current entry pruned away: %v", err)
	}
}

func TestEntriesAndVerify(t *testing.T) {
	s := testStore(t)
	p1, p2 := []byte("alpha artifact"), bytes.Repeat([]byte("beta "), 1000)
	k1, k2 := NewKey("recon-target", "x86s", p1), NewKey("memstr-index", "arms", p2)
	if err := s.Save(k1, p1); err != nil {
		t.Fatal(err)
	}
	if err := s.Save(k2, p2); err != nil {
		t.Fatal(err)
	}
	infos, err := s.Entries()
	if err != nil {
		t.Fatal(err)
	}
	if len(infos) != 2 {
		t.Fatalf("got %d entries, want 2", len(infos))
	}
	for _, info := range infos {
		if info.Bad != "" {
			t.Fatalf("%s unexpectedly bad: %s", info.Name, info.Bad)
		}
		if info.RawSize == 0 || info.CompSize == 0 || info.FileSize == 0 {
			t.Fatalf("%s: sizes not populated: %+v", info.Name, info)
		}
	}
	ok, bad, err := s.Verify()
	if err != nil {
		t.Fatal(err)
	}
	if ok != 2 || len(bad) != 0 {
		t.Fatalf("verify: ok=%d bad=%v", ok, bad)
	}
	// Corrupt the recorded payload hash on disk (it sits right after the
	// 32-byte key hash, which follows magic+version+kind+arch): Verify
	// must flag exactly this entry.
	data, err := os.ReadFile(s.Path(k2))
	if err != nil {
		t.Fatal(err)
	}
	hashOff := 4 + 2 + 1 + len(k2.Kind) + 1 + len(k2.Arch) + 32
	data[hashOff] ^= 0x80
	if err := os.WriteFile(s.Path(k2), data, 0o644); err != nil {
		t.Fatal(err)
	}
	ok, bad, err = s.Verify()
	if err != nil {
		t.Fatal(err)
	}
	if ok != 1 || len(bad) != 1 || bad[0].Name != fileName(k2) {
		t.Fatalf("after corruption: ok=%d bad=%v", ok, bad)
	}
	if _, err := s.Load(k2); !errors.Is(err, ErrVerify) {
		t.Fatalf("corrupted load: got %v, want ErrVerify", err)
	}
	// A verified entry moved to the wrong content address must be caught.
	good, err := os.ReadFile(s.Path(k1))
	if err != nil {
		t.Fatal(err)
	}
	wrongKey := k1
	wrongKey.Hash[3] ^= 1
	if err := os.WriteFile(s.Path(wrongKey), good, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Load(wrongKey); !errors.Is(err, ErrVerify) {
		t.Fatalf("misfiled load: got %v, want ErrVerify", err)
	}
	_, bad, err = s.Verify()
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, b := range bad {
		if b.Name == fileName(wrongKey) {
			found = true
		}
	}
	if !found {
		t.Fatalf("misfiled entry not flagged: bad=%v", bad)
	}
}

func TestSaveTooLarge(t *testing.T) {
	s := testStore(t)
	big := make([]byte, MaxRawSize+1)
	if err := s.Save(NewKey("k", "a", nil), big); !errors.Is(err, ErrTooLarge) {
		t.Fatalf("got %v, want ErrTooLarge", err)
	}
}

// FuzzSnapshotLoad: arbitrary bytes treated as a store entry must
// either decode to a payload whose recorded hash verifies, or error —
// never panic, never return unverified data.
func FuzzSnapshotLoad(f *testing.F) {
	s, err := Open(f.TempDir())
	if err != nil {
		f.Fatal(err)
	}
	seedPayload := []byte("seed entry payload, compressible compressible")
	k := NewKey("recon-target", "x86s", seedPayload)
	if err := s.Save(k, seedPayload); err != nil {
		f.Fatal(err)
	}
	entry, err := os.ReadFile(s.Path(k))
	if err != nil {
		f.Fatal(err)
	}
	f.Add(entry)
	f.Add([]byte(magic))
	f.Add([]byte("CSNP\x00\x01"))
	f.Fuzz(func(t *testing.T, data []byte) {
		payload, err := DecodeEntry(data)
		if err != nil {
			return
		}
		if len(payload) > MaxRawSize {
			t.Fatalf("oversized payload accepted: %d bytes", len(payload))
		}
		h, herr := parseHeader(data)
		if herr != nil {
			t.Fatalf("decode succeeded but header does not parse: %v", herr)
		}
		if sha256.Sum256(payload) != h.PayloadHash {
			t.Fatal("decode returned payload that does not match recorded hash")
		}
	})
}
