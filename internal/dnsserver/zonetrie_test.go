package dnsserver

import (
	"fmt"
	"testing"

	"connlab/internal/dns"
	"connlab/internal/netsim"
)

// wireName encodes a dotted name for Lookup tests, with a question
// tail appended the way handleFast sees it.
func wireName(t testing.TB, name string, tail ...byte) []byte {
	t.Helper()
	labels, err := dns.SplitName(name)
	if err != nil {
		t.Fatalf("SplitName(%q): %v", name, err)
	}
	var w []byte
	for _, l := range labels {
		w = append(w, byte(len(l)))
		w = append(w, l...)
	}
	w = append(w, 0)
	return append(w, tail...)
}

// TestZoneTrieMatchesMap: the trie agrees with the map it replaced on
// hits, misses, prefix traps and overwrites.
func TestZoneTrieMatchesMap(t *testing.T) {
	zone := map[string][4]byte{
		"example":              {1, 1, 1, 1},
		"www.example":          {2, 2, 2, 2},
		"web.example":          {3, 3, 3, 3},
		"w.example":            {4, 4, 4, 4},
		"wwww.example":         {5, 5, 5, 5},
		"deep.www.example":     {6, 6, 6, 6},
		"another-domain.test":  {7, 7, 7, 7},
		"connman.org":          {8, 8, 8, 8},
		"update.connman.org":   {9, 9, 9, 9},
		"updates.connman.org":  {10, 0, 0, 1},
		"a":                    {11, 0, 0, 1},
		"ab":                   {12, 0, 0, 1},
		"abc":                  {13, 0, 0, 1},
		"b.a":                  {14, 0, 0, 1},
		"long-shared-prefix-x": {15, 0, 0, 1},
		"long-shared-prefix-y": {16, 0, 0, 1},
	}
	trie, err := ZoneTrieFromMap(zone)
	if err != nil {
		t.Fatal(err)
	}
	if trie.Len() != len(zone) {
		t.Fatalf("Len = %d, want %d", trie.Len(), len(zone))
	}
	misses := []string{
		"", "x", "example.com", "ww.example", "www.exampl", "www.example2",
		"example.www", "aa", "abcd", "a.b", "www", "long-shared-prefix",
		"long-shared-prefix-z", "sub.w.example",
	}
	for name, want := range zone {
		for _, tail := range [][]byte{nil, {0, 1, 0, 1}, {0xFF, 0xFF, 0xFF, 0xFF}} {
			ip, ok := trie.Lookup(wireName(t, name, tail...))
			if !ok || ip != want {
				t.Errorf("Lookup(%q tail %v) = %v,%v want %v", name, tail, ip, ok, want)
			}
		}
		if ip, ok := trie.LookupName(name); !ok || ip != want {
			t.Errorf("LookupName(%q) = %v,%v want %v", name, ip, ok, want)
		}
		if ip, ok := trie.LookupName(name + "."); !ok || ip != want {
			t.Errorf("LookupName(%q.) = %v,%v", name, ip, ok)
		}
	}
	for _, name := range misses {
		if _, ok := trie.LookupName(name); ok {
			t.Errorf("LookupName(%q) hit, want miss", name)
		}
	}
	// Truncated wire (no terminator) and garbage must miss, not panic.
	if _, ok := trie.Lookup([]byte{3, 'w', 'w', 'w'}); ok {
		t.Error("truncated wire hit")
	}
	if _, ok := trie.Lookup(nil); ok {
		t.Error("nil wire hit")
	}
	// Overwrite keeps map semantics.
	if err := trie.Add("www.example", [4]byte{9, 9, 9, 9}); err != nil {
		t.Fatal(err)
	}
	if ip, _ := trie.LookupName("www.example"); ip != ([4]byte{9, 9, 9, 9}) {
		t.Errorf("overwrite: %v", ip)
	}
	if trie.Len() != len(zone) {
		t.Errorf("Len after overwrite = %d", trie.Len())
	}
	// Root name is addable and only matches the root.
	if err := trie.Add("", [4]byte{99, 99, 99, 99}); err != nil {
		t.Fatal(err)
	}
	if ip, ok := trie.Lookup([]byte{0, 0, 1, 0, 1}); !ok || ip != ([4]byte{99, 99, 99, 99}) {
		t.Errorf("root lookup = %v,%v", ip, ok)
	}
	if _, ok := trie.LookupName("nonexistent"); ok {
		t.Error("root entry must not shadow other names")
	}
}

// TestZoneTrieScale: a population-scale zone resolves every name,
// misses near-neighbors, and the arena stays compact.
func TestZoneTrieScale(t *testing.T) {
	const n = 50000
	trie := NewZoneTrie()
	for i := 0; i < n; i++ {
		name := fmt.Sprintf("st%06d.iot-vendor.example", i)
		if err := trie.Add(name, [4]byte{20, byte(i >> 16), byte(i >> 8), byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	if trie.Len() != n {
		t.Fatalf("Len = %d", trie.Len())
	}
	for _, i := range []int{0, 1, 7, 4999, 25000, n - 1} {
		wire := wireName(t, fmt.Sprintf("st%06d.iot-vendor.example", i), 0, 1, 0, 1)
		ip, ok := trie.Lookup(wire)
		if !ok || ip != ([4]byte{20, byte(i >> 16), byte(i >> 8), byte(i)}) {
			t.Fatalf("station %d: %v,%v", i, ip, ok)
		}
	}
	if _, ok := trie.LookupName(fmt.Sprintf("st%06d.iot-vendor.example", n)); ok {
		t.Error("one-past-the-end name resolved")
	}
	if _, ok := trie.LookupName("st000000.iot-vendor.examples"); ok {
		t.Error("suffix-extended name resolved")
	}
}

// TestZoneTrieLookupZeroAllocs pins the acceptance criterion: lookups
// on the splice fast path — wire bytes in, IP out — are 0 allocs/op,
// and so is the dotted-name twin.
func TestZoneTrieLookupZeroAllocs(t *testing.T) {
	trie := NewZoneTrie()
	for i := 0; i < 1000; i++ {
		if err := trie.Add(fmt.Sprintf("st%06d.iot-vendor.example", i), [4]byte{20, 0, byte(i >> 8), byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	wire := wireName(t, "st000777.iot-vendor.example", 0, 1, 0, 1)
	if allocs := testing.AllocsPerRun(200, func() {
		if _, ok := trie.Lookup(wire); !ok {
			t.Fatal("miss")
		}
	}); allocs != 0 {
		t.Errorf("Lookup: %v allocs/op, want 0", allocs)
	}
	if allocs := testing.AllocsPerRun(200, func() {
		if _, ok := trie.LookupName("st000042.iot-vendor.example"); !ok {
			t.Fatal("miss")
		}
	}); allocs != 0 {
		t.Errorf("LookupName: %v allocs/op, want 0", allocs)
	}
}

// TestResolverSteadyStateZeroAllocs: a full fast-path resolver round —
// query datagram in, spliced answer out — settles to zero allocations
// per lookup once buffers are warm, now that the trie removed the
// decode+intern step.
func TestResolverSteadyStateZeroAllocs(t *testing.T) {
	n := netsim.New()
	server, err := n.AddHost("resolver", netsim.IP{8, 8, 8, 8})
	if err != nil {
		t.Fatal(err)
	}
	client, err := n.AddHost("client", netsim.IP{10, 0, 0, 2})
	if err != nil {
		t.Fatal(err)
	}
	answered := 0
	clientSk, err := client.BindEphemeral(func(dg netsim.Datagram) { answered++ })
	if err != nil {
		t.Fatal(err)
	}
	trie := NewZoneTrie()
	if err := trie.Add("good.example", [4]byte{1, 2, 3, 4}); err != nil {
		t.Fatal(err)
	}
	res, err := RunResolverTrie(server, trie)
	if err != nil {
		t.Fatal(err)
	}
	query, err := dns.NewQuery(7, "good.example", dns.TypeA).Encode()
	if err != nil {
		t.Fatal(err)
	}
	dst := netsim.Addr{IP: server.IP, Port: DNSPort}
	round := func() {
		clientSk.SendTo(dst, query)
		n.Run(4)
	}
	for i := 0; i < 10; i++ {
		round() // warm scratch, pools and queue capacity
	}
	if allocs := testing.AllocsPerRun(100, round); allocs != 0 {
		t.Errorf("resolver round: %v allocs/op, want 0", allocs)
	}
	if answered == 0 || res.Queries == 0 {
		t.Fatalf("no answers delivered (answered=%d queries=%d)", answered, res.Queries)
	}
}
