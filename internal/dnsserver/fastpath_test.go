package dnsserver

import (
	"testing"

	"connlab/internal/dns"
	"connlab/internal/exploit"
	"connlab/internal/isa"
	"connlab/internal/netsim"
)

// fastpathRig is a minimal world: one client host, one server host, and a
// raw client socket for injecting hand-crafted datagrams.
type fastpathRig struct {
	net    *netsim.Network
	server *netsim.Host
	sock   *netsim.UDPSocket
	// clientAddr is the injection socket's endpoint (BindEphemeral hands
	// out ports from 40000, and the rig binds exactly one).
	clientAddr netsim.Addr
	got        [][]byte
}

func newFastpathRig(t *testing.T) *fastpathRig {
	t.Helper()
	n := netsim.New()
	client, err := n.AddHost("client", netsim.IP{10, 0, 0, 9})
	if err != nil {
		t.Fatal(err)
	}
	server, err := n.AddHost("server", netsim.IP{10, 0, 0, 53})
	if err != nil {
		t.Fatal(err)
	}
	r := &fastpathRig{net: n, server: server}
	r.sock, err = client.BindEphemeral(func(dg netsim.Datagram) {
		r.got = append(r.got, append([]byte(nil), dg.Payload...))
	})
	if err != nil {
		t.Fatal(err)
	}
	r.clientAddr = netsim.Addr{IP: client.IP, Port: 40000}
	return r
}

func (r *fastpathRig) send(pkt []byte) {
	r.sock.SendTo(netsim.Addr{IP: r.server.IP, Port: DNSPort}, pkt)
	r.net.Run(16)
}

// header builds a raw 12-byte DNS header.
func rawHeader(id, flags, qd, an, ns, ar uint16) []byte {
	return dns.AppendHeader(nil, id, flags, qd, an, ns, ar)
}

// TestResolverDropsCompressionPointerLoop: a question name that is a
// compression pointer chasing itself must be dropped by both the splice
// fast path (pointers disqualify it) and the full decoder (loops are
// invalid), with no reply and no crash.
func TestResolverDropsCompressionPointerLoop(t *testing.T) {
	r := newFastpathRig(t)
	res, err := RunResolver(r.server, map[string][4]byte{"good.example": {1, 2, 3, 4}})
	if err != nil {
		t.Fatal(err)
	}
	// QD=1; the question name is a pointer to its own offset (12).
	pkt := rawHeader(0xAB, 0, 1, 0, 0, 0)
	pkt = append(pkt, 0xC0, 0x0C)                               // name: pointer -> itself
	pkt = append(pkt, 0, byte(dns.TypeA), 0, byte(dns.ClassIN)) // type, class
	r.send(pkt)
	if len(r.got) != 0 {
		t.Errorf("got %d replies to a pointer-loop question, want drop", len(r.got))
	}
	if res.Queries != 0 {
		t.Errorf("Queries = %d, want 0 (dropped before counting)", res.Queries)
	}
}

// TestResolverDropsTruncatedMidName: a question whose label length runs
// past the end of the packet must fall off the fast path and be dropped
// by the decoder.
func TestResolverDropsTruncatedMidName(t *testing.T) {
	r := newFastpathRig(t)
	res, err := RunResolver(r.server, map[string][4]byte{"good.example": {1, 2, 3, 4}})
	if err != nil {
		t.Fatal(err)
	}
	pkt := rawHeader(0xCD, 0, 1, 0, 0, 0)
	pkt = append(pkt, 7, 'g', 'o') // label claims 7 bytes, packet ends after 2
	r.send(pkt)
	if len(r.got) != 0 || res.Queries != 0 {
		t.Errorf("replies=%d queries=%d, want 0/0 for truncated name", len(r.got), res.Queries)
	}
}

// TestResolverFastPathMatchesSlowPath: the same query answered through the
// splice path and through the original decode path must produce identical
// bytes. The slow path cannot be reached from the wire with a clean
// canonical query (that is the fast path's domain), so it is invoked
// directly.
func TestResolverFastPathMatchesSlowPath(t *testing.T) {
	r := newFastpathRig(t)
	res, err := RunResolver(r.server, map[string][4]byte{"good.example": {1, 2, 3, 4}})
	if err != nil {
		t.Fatal(err)
	}
	q := dns.NewQuery(0x7777, "good.example", dns.TypeA)
	pkt, err := q.Encode()
	if err != nil {
		t.Fatal(err)
	}
	r.send(pkt)
	if len(r.got) != 1 {
		t.Fatalf("replies = %d", len(r.got))
	}
	fast := r.got[0]
	if res.scratch == nil {
		t.Error("fast path did not run (scratch never used)")
	}
	r.got = nil
	res.handleSlow(netsim.Datagram{Src: r.clientAddr, Payload: pkt})
	r.net.Run(16)
	if len(r.got) != 1 {
		t.Fatalf("slow-path replies = %d", len(r.got))
	}
	if string(fast) != string(r.got[0]) {
		t.Errorf("fast path diverges from slow path\nfast %x\nslow %x", fast, r.got[0])
	}
}

// TestMITMWireDropsHeaderOnlyAndCompressed: the wire-splicing MITM must
// drop header-only datagrams (nothing to rewrite the ID into) and
// compressed question names (not spliceable) without counting them as
// hijacked queries or craft errors.
func TestMITMWireDropsHeaderOnlyAndCompressed(t *testing.T) {
	r := newFastpathRig(t)
	ex := exploit.BuildDoS(isa.ArchX86S)
	m, err := RunMITMWire(r.server, ex.AppendResponse)
	if err != nil {
		t.Fatal(err)
	}

	// Header-only, QD=0: parseable but not a hijackable query.
	r.send(rawHeader(0x01, 0, 0, 0, 0, 0))
	// Header-only but QD=1: the promised question is missing entirely.
	r.send(rawHeader(0x02, 0, 1, 0, 0, 0))
	// QD=1 with a compressed (self-pointing) question name.
	pkt := rawHeader(0x03, 0, 1, 0, 0, 0)
	pkt = append(pkt, 0xC0, 0x0C, 0, byte(dns.TypeA), 0, byte(dns.ClassIN))
	r.send(pkt)

	if len(r.got) != 0 {
		t.Errorf("got %d responses to malformed queries, want drops", len(r.got))
	}
	if m.Queries != 0 || m.Errors != 0 {
		t.Errorf("queries=%d errors=%d, want 0/0", m.Queries, m.Errors)
	}

	// A well-formed query still gets hijacked, with the ID echoed.
	q, err := dns.NewQuery(0xBEEF, "any.example", dns.TypeA).Encode()
	if err != nil {
		t.Fatal(err)
	}
	r.send(q)
	if len(r.got) != 1 || m.Queries != 1 {
		t.Fatalf("replies=%d queries=%d, want 1/1", len(r.got), m.Queries)
	}
	h, err := dns.ParseHeader(r.got[0])
	if err != nil {
		t.Fatal(err)
	}
	if h.ID != 0xBEEF || !h.Response {
		t.Errorf("hijacked response header = %+v", h)
	}
}
