package dnsserver

import (
	"testing"

	"connlab/internal/dns"
	"connlab/internal/exploit"
	"connlab/internal/isa"
	"connlab/internal/kernel"
	"connlab/internal/netsim"
	"connlab/internal/victim"
)

// proxyRig wires device+resolver and returns the pieces.
type proxyRig struct {
	net      *netsim.Network
	device   *netsim.Host
	daemon   *victim.Daemon
	proxy    *Proxy
	client   *Client
	resolver *Resolver
}

func newProxyRig(t *testing.T) *proxyRig {
	t.Helper()
	n := netsim.New()
	device, err := n.AddHost("device", netsim.IP{10, 0, 0, 2})
	if err != nil {
		t.Fatal(err)
	}
	upstream, err := n.AddHost("resolver", netsim.IP{10, 0, 0, 53})
	if err != nil {
		t.Fatal(err)
	}
	device.DNS = upstream.IP

	daemon, err := victim.NewDaemon(isa.ArchX86S, victim.BuildOpts{}, kernel.Config{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	proxy, err := RunProxy(device, daemon)
	if err != nil {
		t.Fatal(err)
	}
	resolver, err := RunResolver(upstream, map[string][4]byte{
		"good.example": {1, 2, 3, 4},
	})
	if err != nil {
		t.Fatal(err)
	}
	client, err := NewClient(device)
	if err != nil {
		t.Fatal(err)
	}
	return &proxyRig{net: n, device: device, daemon: daemon, proxy: proxy,
		client: client, resolver: resolver}
}

func TestProxyForwardsAndCaches(t *testing.T) {
	r := newProxyRig(t)
	id, err := r.client.Lookup(netsim.Addr{IP: r.device.IP, Port: DNSPort}, "good.example")
	if err != nil {
		t.Fatal(err)
	}
	r.net.Run(32)
	if r.resolver.Queries != 1 {
		t.Errorf("resolver queries = %d", r.resolver.Queries)
	}
	if r.proxy.Forwarded != 1 {
		t.Errorf("proxy forwarded = %d", r.proxy.Forwarded)
	}
	if len(r.client.Replies) != 1 {
		t.Fatalf("client replies = %d", len(r.client.Replies))
	}
	reply := r.client.Replies[0]
	if reply.ID != id || len(reply.Answers) != 1 || reply.Answers[0].Data[0] != 1 {
		t.Errorf("reply = %+v", reply)
	}
	if r.daemon.Handled() != 1 || r.daemon.Crashed() {
		t.Errorf("daemon handled=%d crashed=%v", r.daemon.Handled(), r.daemon.Crashed())
	}
}

func TestResolverNXDomain(t *testing.T) {
	r := newProxyRig(t)
	if _, err := r.client.Lookup(netsim.Addr{IP: r.device.IP, Port: DNSPort}, "missing.example"); err != nil {
		t.Fatal(err)
	}
	r.net.Run(32)
	if len(r.client.Replies) != 1 {
		t.Fatalf("replies = %d", len(r.client.Replies))
	}
	if r.client.Replies[0].RCode != dns.RCodeNXDomain {
		t.Errorf("rcode = %v", r.client.Replies[0].RCode)
	}
}

func TestMITMDeliversExploitThroughProxy(t *testing.T) {
	n := netsim.New()
	device, _ := n.AddHost("device", netsim.IP{10, 0, 0, 2})
	attacker, _ := n.AddHost("attacker", netsim.IP{10, 0, 0, 66})
	device.DNS = attacker.IP

	daemon, err := victim.NewDaemon(isa.ArchX86S, victim.BuildOpts{}, kernel.Config{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := RunProxy(device, daemon); err != nil {
		t.Fatal(err)
	}
	ex := exploit.BuildDoS(isa.ArchX86S)
	mitm, err := RunMITM(attacker, ex.Response)
	if err != nil {
		t.Fatal(err)
	}
	client, err := NewClient(device)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := client.Lookup(netsim.Addr{IP: device.IP, Port: DNSPort}, "anything.example"); err != nil {
		t.Fatal(err)
	}
	n.Run(32)
	if mitm.Queries != 1 {
		t.Errorf("mitm queries = %d", mitm.Queries)
	}
	if !daemon.Crashed() {
		t.Error("daemon survived the MITM response")
	}
	if len(client.Replies) != 0 {
		t.Error("crashed daemon still forwarded the reply")
	}
}

func TestCrashedProxyStopsServing(t *testing.T) {
	n := netsim.New()
	device, _ := n.AddHost("device", netsim.IP{10, 0, 0, 2})
	attacker, _ := n.AddHost("attacker", netsim.IP{10, 0, 0, 66})
	device.DNS = attacker.IP
	daemon, err := victim.NewDaemon(isa.ArchX86S, victim.BuildOpts{}, kernel.Config{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := RunProxy(device, daemon); err != nil {
		t.Fatal(err)
	}
	mitm, err := RunMITM(attacker, exploit.BuildDoS(isa.ArchX86S).Response)
	if err != nil {
		t.Fatal(err)
	}
	client, _ := NewClient(device)
	for i := 0; i < 3; i++ {
		if _, err := client.Lookup(netsim.Addr{IP: device.IP, Port: DNSPort}, "a.example"); err != nil {
			t.Fatal(err)
		}
		n.Run(32)
	}
	// Only the first lookup reached the attacker; the daemon died and the
	// proxy went deaf — persistent denial of service.
	if mitm.Queries != 1 {
		t.Errorf("mitm queries = %d, want 1", mitm.Queries)
	}
}

func TestServersIgnoreGarbage(t *testing.T) {
	n := netsim.New()
	h, _ := n.AddHost("srv", netsim.IP{10, 0, 0, 5})
	res, err := RunResolver(h, nil)
	if err != nil {
		t.Fatal(err)
	}
	src, _ := n.AddHost("src", netsim.IP{10, 0, 0, 6})
	s, _ := src.Bind(100, nil)
	s.SendTo(netsim.Addr{IP: h.IP, Port: DNSPort}, []byte{1, 2, 3})
	// A response sent to a server is also ignored.
	q := dns.NewQuery(1, "x.y", dns.TypeA)
	rm := dns.NewResponse(q)
	b, _ := rm.Encode()
	s.SendTo(netsim.Addr{IP: h.IP, Port: DNSPort}, b)
	n.Run(16)
	if res.Queries != 0 {
		t.Errorf("resolver served garbage: %d", res.Queries)
	}
}

func TestMITMCraftErrorCounted(t *testing.T) {
	n := netsim.New()
	h, _ := n.AddHost("srv", netsim.IP{10, 0, 0, 5})
	m, err := RunMITM(h, func(q *dns.Message) ([]byte, error) {
		return nil, errTest
	})
	if err != nil {
		t.Fatal(err)
	}
	src, _ := n.AddHost("src", netsim.IP{10, 0, 0, 6})
	s, _ := src.Bind(100, nil)
	q := dns.NewQuery(5, "x.y", dns.TypeA)
	b, _ := q.Encode()
	s.SendTo(netsim.Addr{IP: h.IP, Port: DNSPort}, b)
	n.Run(16)
	if m.Queries != 1 || m.Errors != 1 {
		t.Errorf("queries=%d errors=%d", m.Queries, m.Errors)
	}
}

var errTest = dns.ErrBadFormat

// TestProxyDropsUnsolicitedUpstreamResponses: a response whose ID was
// never forwarded is parsed (and can still kill the daemon!) but is not
// relayed to any client — matching the proxy's transaction table.
func TestProxyDropsUnsolicitedUpstreamResponses(t *testing.T) {
	r := newProxyRig(t)
	// Forge a response from the resolver's address directly to the
	// proxy's upstream socket port... the port is private, so instead
	// drive a legitimate query and then a second, mismatching response.
	if _, err := r.client.Lookup(netsim.Addr{IP: r.device.IP, Port: DNSPort}, "good.example"); err != nil {
		t.Fatal(err)
	}
	r.net.Run(32)
	if len(r.client.Replies) != 1 {
		t.Fatalf("replies = %d", len(r.client.Replies))
	}
	// Replaying the same answer (ID now consumed) must not duplicate the
	// client reply.
	before := len(r.client.Replies)
	if _, err := r.client.Lookup(netsim.Addr{IP: r.device.IP, Port: DNSPort}, "good.example"); err != nil {
		t.Fatal(err)
	}
	r.net.Run(32)
	if len(r.client.Replies) != before+1 {
		t.Errorf("replies = %d, want exactly one more", len(r.client.Replies))
	}
}
