package dnsserver

import (
	"bytes"
	"testing"
)

// fuzzWireToName parses raw as length-prefixed wire labels and returns
// the dotted form plus the canonical wire encoding. It rejects shapes
// where the dotted form is ambiguous as a map key (labels containing
// '.', empty or oversized labels, oversized names) so the old
// map[string][4]byte stays a faithful oracle.
func fuzzWireToName(raw []byte) (dotted string, wire []byte, ok bool) {
	var labels [][]byte
	total := 0
	i := 0
	for i < len(raw) {
		l := int(raw[i])
		if l == 0 {
			break
		}
		if l > 63 || i+1+l > len(raw) {
			return "", nil, false
		}
		lab := raw[i+1 : i+1+l]
		if bytes.IndexByte(lab, '.') >= 0 {
			return "", nil, false
		}
		labels = append(labels, lab)
		if total += l + 1; total+1 > 255 {
			return "", nil, false
		}
		i += 1 + l
	}
	if len(labels) == 0 {
		return "", nil, false
	}
	var d, w []byte
	for k, lab := range labels {
		if k > 0 {
			d = append(d, '.')
		}
		d = append(d, lab...)
		w = append(w, byte(len(lab)))
		w = append(w, lab...)
	}
	return string(d), append(w, 0), true
}

// fuzzIP derives a deterministic record from a name.
func fuzzIP(s string) [4]byte {
	h := uint32(2166136261)
	for i := 0; i < len(s); i++ {
		h = (h ^ uint32(s[i])) * 16777619
	}
	return [4]byte{byte(h >> 24), byte(h >> 16), byte(h >> 8), byte(h)}
}

// FuzzZoneTrie drives the wire-keyed trie against the dotted map it
// replaced: random wire-format names go into both, then every lookup —
// wire with question tails, dotted, and raw garbage — must agree with
// the map byte-for-byte.
func FuzzZoneTrie(f *testing.F) {
	f.Add([]byte("\x04good\x07example\x00"), []byte("\x03bad\x07example\x00"), []byte{1, 'a', 0})
	f.Add([]byte("\x01a\x01b\x00"), []byte("\x02ab\x00"), []byte("\x01a\x00"))
	f.Add([]byte("\x3fzzzzzzzzzzzzzzzzzzzzzzzzzzzzzzzzzzzzzzzzzzzzzzzzzzzzzzzzzzzzzzz\x00"),
		[]byte{}, []byte{0xC0, 12})
	f.Add([]byte("\x02st\x02st\x02st\x00"), []byte("\x02st\x00"), []byte("\x06st\x00st\x00"))
	f.Fuzz(func(t *testing.T, a, b, c []byte) {
		trie := NewZoneTrie()
		zone := map[string][4]byte{}
		type cand struct {
			dotted string
			wire   []byte
		}
		var cands []cand
		for i, raw := range [][]byte{a, b, c} {
			dotted, wire, ok := fuzzWireToName(raw)
			if !ok {
				continue
			}
			cands = append(cands, cand{dotted, wire})
			if i < 2 { // insert the first two shapes; the third probes misses
				ip := fuzzIP(dotted)
				zone[dotted] = ip
				if err := trie.Add(dotted, ip); err != nil {
					t.Fatalf("Add(%q): %v", dotted, err)
				}
			}
		}
		if trie.Len() != len(zone) {
			t.Fatalf("Len = %d, map has %d", trie.Len(), len(zone))
		}
		for _, cd := range cands {
			wantIP, wantOK := zone[cd.dotted]
			for _, tail := range [][]byte{nil, {0, 1, 0, 1}, c} {
				ip, ok := trie.Lookup(append(append([]byte(nil), cd.wire...), tail...))
				if ok != wantOK || (ok && ip != wantIP) {
					t.Fatalf("Lookup(%q + %v) = %v,%v; map says %v,%v",
						cd.dotted, tail, ip, ok, wantIP, wantOK)
				}
			}
			if ip, ok := trie.LookupName(cd.dotted); ok != wantOK || (ok && ip != wantIP) {
				t.Fatalf("LookupName(%q) = %v,%v; map says %v,%v", cd.dotted, ip, ok, wantIP, wantOK)
			}
		}
		// Raw garbage must never panic, and a hit must be a genuine
		// zone name.
		for _, raw := range [][]byte{a, b, c} {
			if ip, ok := trie.Lookup(raw); ok {
				dotted, _, parsed := fuzzWireToName(raw)
				if !parsed {
					t.Fatalf("Lookup hit on unparseable wire %v", raw)
				}
				if want, inZone := zone[dotted]; !inZone || ip != want {
					t.Fatalf("Lookup(%v) = %v, map says %v (in zone: %v)", raw, ip, zone[dotted], inZone)
				}
			}
		}
	})
}
