// Package dnsserver provides the DNS-speaking services of the remote
// experiments: a benign recursive resolver, the attacker's
// man-in-the-middle server ("A simple Python DNS server is created to
// perform this function" — here, Go over the simulated network), and the
// victim-side DNS proxy glue that feeds upstream responses through the
// Connman-analog daemon.
package dnsserver

import (
	"fmt"

	"connlab/internal/dns"
	"connlab/internal/netsim"
	"connlab/internal/telemetry"
	"connlab/internal/victim"
)

// DNSPort is the well-known DNS port.
const DNSPort = 53

// Resolver is a benign authoritative/recursive stand-in with a static
// zone held as a wire-format trie (see zonetrie.go), so one resolver
// answers millions of names without a name→string step.
type Resolver struct {
	Zone *ZoneTrie
	// Queries counts requests served.
	Queries int
	sock    *netsim.UDPSocket
	// scratch is the reusable response-assembly buffer of the fast path
	// (SendTo copies, so it is free to reuse immediately).
	scratch []byte
}

// RunResolver binds a resolver on the host's port 53, converting a
// dotted-name zone map into the trie the resolver serves from.
func RunResolver(h *netsim.Host, zone map[string][4]byte) (*Resolver, error) {
	t, err := ZoneTrieFromMap(zone)
	if err != nil {
		return nil, fmt.Errorf("resolver on %s: %w", h.Name, err)
	}
	return RunResolverTrie(h, t)
}

// RunResolverTrie binds a resolver serving the given zone trie — the
// population-scale entry point that skips the map detour entirely.
func RunResolverTrie(h *netsim.Host, zone *ZoneTrie) (*Resolver, error) {
	if zone == nil {
		zone = NewZoneTrie()
	}
	r := &Resolver{Zone: zone}
	sock, err := h.Bind(DNSPort, r.handle)
	if err != nil {
		return nil, fmt.Errorf("resolver on %s: %w", h.Name, err)
	}
	r.sock = sock
	return r, nil
}

func (r *Resolver) handle(dg netsim.Datagram) {
	if v, err := dns.ParseView(dg.Payload); err == nil && r.handleFast(dg, &v) {
		return
	}
	r.handleSlow(dg)
}

// handleFast answers the canonical query shape — header + exactly one
// plain-named question and nothing else — by splicing the question bytes
// into a reusable buffer instead of decode + re-encode. The output is
// byte-identical to the slow path; anything unusual falls through to it.
func (r *Resolver) handleFast(dg netsim.Datagram, v *dns.View) bool {
	if v.Hdr.Response || v.Hdr.QDCount != 1 ||
		v.Hdr.ANCount != 0 || v.Hdr.NSCount != 0 || v.Hdr.ARCount != 0 {
		return false
	}
	qb, plain, err := v.QuestionBytes()
	if err != nil || !plain {
		return false
	}
	if end, _ := v.QuestionEnd(); end != len(dg.Payload) {
		return false // trailing bytes: let the full decoder judge them
	}
	if len(qb)-4 > 256 {
		return false // name the strict decoder would refuse: let it
	}
	if qb[0] == 0 {
		// The root name is the one name the compressing encoder writes
		// literally rather than as a pointer to the question.
		return false
	}
	r.Queries++
	telemetry.Inc(telemetry.CtrDNSResolved)
	qtype := dns.Type(qb[len(qb)-4])<<8 | dns.Type(qb[len(qb)-3])
	ip, hit := r.Zone.Lookup(qb)
	hit = hit && qtype == dns.TypeA
	rcode := dns.RCodeOK
	an := uint16(1)
	if !hit {
		rcode, an = dns.RCodeNXDomain, 0
	}
	out := dns.AppendHeader(r.scratch[:0], v.Hdr.ID, v.Hdr.ResponseFlags(rcode), 1, an, 0, 0)
	out = append(out, qb...)
	if hit {
		out = append(out, 0xC0, dns.HeaderSize) // NAME: pointer to the question
		out = append(out, 0, byte(dns.TypeA), 0, byte(dns.ClassIN))
		out = append(out, 0, 0, 1, 44) // TTL 300
		out = append(out, 0, 4, ip[0], ip[1], ip[2], ip[3])
	}
	r.scratch = out
	r.sock.SendTo(dg.Src, out)
	return true
}

// handleSlow is the original full-decode path, kept for the shapes the
// splice cannot reproduce bit-for-bit (compressed or root question
// names, trailing bytes, extra sections).
func (r *Resolver) handleSlow(dg netsim.Datagram) {
	q, err := dns.Decode(dg.Payload)
	if err != nil || q.Response || len(q.Questions) != 1 {
		return // drop garbage, like a real server
	}
	r.Queries++
	telemetry.Inc(telemetry.CtrDNSResolved)
	resp := dns.NewResponse(q)
	if ip, ok := r.Zone.LookupName(q.Questions[0].Name); ok && q.Questions[0].Type == dns.TypeA {
		resp.Answers = []dns.RR{dns.A(q.Questions[0].Name, 300, ip)}
	} else {
		resp.RCode = dns.RCodeNXDomain
	}
	out, err := resp.Encode()
	if err != nil {
		return
	}
	r.sock.SendTo(dg.Src, out)
}

// Crafter turns a decoded query into a malicious response. The exploit
// package's payloads plug in here.
type Crafter func(q *dns.Message) ([]byte, error)

// WireCrafter crafts a malicious response directly from the query's wire
// bytes, appending to dst (a reusable buffer) — the zero-copy form of
// Crafter that exploit.Exploit.AppendResponse satisfies.
type WireCrafter func(dst, query []byte) ([]byte, error)

// MITM is the attacker's server: it answers every query it sees with a
// crafted response that mirrors the query (ID, question, flags) and
// carries the exploit in the answer record.
type MITM struct {
	Craft Crafter
	// CraftWire, when set, takes precedence over Craft: responses are
	// spliced straight from the query packet into a reusable buffer.
	CraftWire WireCrafter
	// Queries counts hijacked lookups; Errors counts craft failures.
	Queries int
	Errors  int
	sock    *netsim.UDPSocket
	scratch []byte
}

// RunMITM binds the malicious server on the host's port 53.
func RunMITM(h *netsim.Host, craft Crafter) (*MITM, error) {
	return runMITM(h, &MITM{Craft: craft})
}

// RunMITMWire binds the malicious server with a wire-level crafter.
func RunMITMWire(h *netsim.Host, craft WireCrafter) (*MITM, error) {
	return runMITM(h, &MITM{CraftWire: craft})
}

func runMITM(h *netsim.Host, m *MITM) (*MITM, error) {
	sock, err := h.Bind(DNSPort, m.handle)
	if err != nil {
		return nil, fmt.Errorf("mitm on %s: %w", h.Name, err)
	}
	m.sock = sock
	return m, nil
}

func (m *MITM) handle(dg netsim.Datagram) {
	if m.CraftWire != nil {
		m.handleWire(dg)
		return
	}
	q, err := dns.Decode(dg.Payload)
	if err != nil || q.Response || len(q.Questions) != 1 {
		return
	}
	m.Queries++
	telemetry.Inc(telemetry.CtrDNSHijacked)
	out, err := m.Craft(q)
	if err != nil {
		m.Errors++
		return
	}
	m.sock.SendTo(dg.Src, out)
}

// handleWire is the fast path: header parse, question validation, then
// CraftWire splices the response into the reusable scratch buffer.
func (m *MITM) handleWire(dg netsim.Datagram) {
	v, err := dns.ParseView(dg.Payload)
	if err != nil || v.Hdr.Response || v.Hdr.QDCount != 1 {
		return
	}
	if _, err := v.Question(); err != nil {
		return // malformed question: drop, like the decode path would
	}
	m.Queries++
	telemetry.Inc(telemetry.CtrDNSHijacked)
	out, err := m.CraftWire(m.scratch[:0], dg.Payload)
	if err != nil {
		m.Errors++
		return
	}
	m.scratch = out
	m.sock.SendTo(dg.Src, out)
}

// Proxy is the victim-side glue: it exposes the daemon's DNS proxy on the
// host, forwarding client queries to the host's configured upstream DNS
// and running every upstream response through the emulated parser before
// relaying it — Connman's dnsproxy behaviour.
type Proxy struct {
	Daemon *victim.Daemon
	// Forwarded counts relayed responses; client queries awaiting an
	// upstream answer are tracked by transaction ID.
	Forwarded int
	host      *netsim.Host
	clientSk  *netsim.UDPSocket
	upSk      *netsim.UDPSocket
	pending   map[uint16]netsim.Addr
}

// RunProxy binds the proxy on the host's port 53 plus an upstream socket.
func RunProxy(h *netsim.Host, d *victim.Daemon) (*Proxy, error) {
	p := &Proxy{Daemon: d, host: h, pending: make(map[uint16]netsim.Addr)}
	var err error
	if p.clientSk, err = h.Bind(DNSPort, p.handleClient); err != nil {
		return nil, fmt.Errorf("proxy on %s: %w", h.Name, err)
	}
	if p.upSk, err = h.BindEphemeral(p.handleUpstream); err != nil {
		return nil, fmt.Errorf("proxy on %s: %w", h.Name, err)
	}
	return p, nil
}

func (p *Proxy) handleClient(dg netsim.Datagram) {
	if p.Daemon.Crashed() {
		return // the daemon is dead; DoS achieved
	}
	h, err := dns.ParseHeader(dg.Payload)
	if err != nil || h.Response {
		return
	}
	p.pending[h.ID] = dg.Src
	p.upSk.SendTo(netsim.Addr{IP: p.host.DNS, Port: DNSPort}, dg.Payload)
}

func (p *Proxy) handleUpstream(dg netsim.Datagram) {
	if p.Daemon.Crashed() {
		return
	}
	h, err := dns.ParseHeader(dg.Payload)
	if err != nil {
		return
	}
	// Responses that carry answers go through the emulated parser for
	// caching — a malicious one kills or hijacks the daemon right here.
	// Empty responses (NXDomain etc.) have nothing to cache and are
	// relayed directly.
	if h.ANCount > 0 {
		if _, err := p.Daemon.HandleResponse(dg.Payload); err != nil {
			return // pre-checks rejected the packet
		}
		if p.Daemon.Crashed() {
			return
		}
	}
	client, ok := p.pending[h.ID]
	if !ok {
		return
	}
	delete(p.pending, h.ID)
	p.Forwarded++
	p.clientSk.SendTo(client, dg.Payload)
}

// Client is a minimal stub resolver on a host, for driving lookups
// through a proxy.
type Client struct {
	sock    *netsim.UDPSocket
	nextID  uint16
	Replies []*dns.Message
}

// NewClient binds a client on an ephemeral port.
func NewClient(h *netsim.Host) (*Client, error) {
	c := &Client{nextID: 0x1000}
	sock, err := h.BindEphemeral(func(dg netsim.Datagram) {
		// Replies outlive the handler, but decoded messages alias the
		// datagram buffer (RR data) and netsim recycles it — so copy.
		if m, err := dns.Decode(append([]byte(nil), dg.Payload...)); err == nil {
			c.Replies = append(c.Replies, m)
		}
	})
	if err != nil {
		return nil, err
	}
	c.sock = sock
	return c, nil
}

// Lookup sends an A query for name to the given server.
func (c *Client) Lookup(server netsim.Addr, name string) (uint16, error) {
	c.nextID++
	q := dns.NewQuery(c.nextID, name, dns.TypeA)
	b, err := q.Encode()
	if err != nil {
		return 0, err
	}
	c.sock.SendTo(server, b)
	return c.nextID, nil
}
