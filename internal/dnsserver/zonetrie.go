// ZoneTrie: the resolver's zone as a compressed radix trie keyed by
// wire-format name bytes.
//
// The splice fast path (dnsserver.go) already holds the question's
// name exactly as it appears on the wire — length-prefixed labels plus
// a terminal zero. The historical map[string][4]byte zone forced that
// wire name through decode + intern just to build a lookup key; the
// trie walks the wire bytes directly, so a lookup is a pointer chase
// with zero conversions and zero allocations however many names the
// zone holds.
//
// Matching needs no name-end precomputation: every stored key ends in
// the terminal zero and valid plain names are prefix-free (a key's
// terminator can never sit where another key has a label length), so a
// stored key matching a byte prefix of the question section is exactly
// a whole-name match, and the walk simply stops there — trailing
// qtype/qclass bytes are never touched.
package dnsserver

import (
	"sort"

	"connlab/internal/dns"
)

// znode is one trie node in the arena: first-child/next-sibling links,
// a one-byte branching label, and the compressed tail of the edge as an
// offset into the shared run storage. terminal nodes are leaves (keys
// are prefix-free) and carry the A record.
type znode struct {
	child   int32
	sibling int32
	run     int32
	runLen  int32
	label   byte
	leaf    bool
	ip      [4]byte
}

// ZoneTrie is a compressed trie from wire-format DNS names to IPv4
// addresses. The zero value is an empty zone ready for Add.
type ZoneTrie struct {
	nodes []znode
	runs  []byte
	size  int
	// keybuf is the reusable wire-encoding buffer for Add.
	keybuf []byte
}

// NewZoneTrie returns an empty zone.
func NewZoneTrie() *ZoneTrie { return &ZoneTrie{} }

// ZoneTrieFromMap builds a trie from a dotted-name zone map. Keys are
// inserted in sorted order so the arena layout is a pure function of
// the zone contents. A nil map yields an empty zone.
func ZoneTrieFromMap(m map[string][4]byte) (*ZoneTrie, error) {
	names := make([]string, 0, len(m))
	for name := range m {
		names = append(names, name)
	}
	sort.Strings(names)
	t := NewZoneTrie()
	for _, name := range names {
		if err := t.Add(name, m[name]); err != nil {
			return nil, err
		}
	}
	return t, nil
}

// Len reports the number of names in the zone.
func (t *ZoneTrie) Len() int { return t.size }

// Add inserts (or overwrites) an A record under a dotted name, with the
// same label validation the wire encoder applies. Names whose labels
// contain literal dots are not representable — the same restriction the
// dotted map keys always had.
func (t *ZoneTrie) Add(name string, ip [4]byte) error {
	labels, err := dns.SplitName(name)
	if err != nil {
		return err
	}
	key := t.keybuf[:0]
	for _, l := range labels {
		key = append(key, byte(len(l)))
		key = append(key, l...)
	}
	key = append(key, 0)
	t.keybuf = key

	if len(t.nodes) == 0 {
		t.nodes = append(t.nodes, znode{child: -1, sibling: -1}) // root sentinel
	}
	cur := int32(0)
	i := 0
	for {
		// Find the child of cur branching on key[i].
		c := t.nodes[cur].child
		for c >= 0 && t.nodes[c].label != key[i] {
			c = t.nodes[c].sibling
		}
		if c < 0 {
			ni := t.newLeaf(key[i], key[i+1:], ip)
			t.nodes[ni].sibling = t.nodes[cur].child
			t.nodes[cur].child = ni
			t.size++
			return nil
		}
		i++
		nd := &t.nodes[c]
		run := t.runs[nd.run : nd.run+nd.runLen]
		j := 0
		for j < len(run) && run[j] == key[i] {
			j, i = j+1, i+1
		}
		if j < len(run) {
			// Mismatch inside the compressed edge: split the node. The
			// tail keeps the children and the record, pointing into the
			// same run storage; the head keeps the matched prefix.
			tail := int32(len(t.nodes))
			t.nodes = append(t.nodes, znode{
				child: nd.child, sibling: -1,
				run: nd.run + int32(j) + 1, runLen: nd.runLen - int32(j) - 1,
				label: run[j], leaf: nd.leaf, ip: nd.ip,
			})
			nd = &t.nodes[c] // re-resolve: append may have moved the arena
			nd.child, nd.runLen, nd.leaf, nd.ip = tail, int32(j), false, [4]byte{}
			ni := t.newLeaf(key[i], key[i+1:], ip)
			t.nodes[ni].sibling = tail
			t.nodes[c].child = ni
			t.size++
			return nil
		}
		if i == len(key) {
			// Whole key matched an existing name: overwrite, map-style.
			// (Prefix-freeness means this node is a leaf.)
			nd.leaf, nd.ip = true, ip
			return nil
		}
		cur = c
	}
}

// newLeaf appends a leaf node whose edge is label+rest, copying rest
// into the run arena.
func (t *ZoneTrie) newLeaf(label byte, rest []byte, ip [4]byte) int32 {
	off := int32(len(t.runs))
	t.runs = append(t.runs, rest...)
	t.nodes = append(t.nodes, znode{
		child: -1, sibling: -1,
		run: off, runLen: int32(len(rest)),
		label: label, leaf: true, ip: ip,
	})
	return int32(len(t.nodes) - 1)
}

// Lookup resolves a wire-format name sitting at the front of wire —
// typically the question section, qtype/qclass bytes still attached.
// It allocates nothing and never reads past the name's terminal zero.
func (t *ZoneTrie) Lookup(wire []byte) (ip [4]byte, ok bool) {
	if len(t.nodes) == 0 {
		return ip, false
	}
	c := t.nodes[0].child
	i := 0
	for c >= 0 {
		nd := &t.nodes[c]
		if i >= len(wire) || wire[i] != nd.label {
			c = nd.sibling
			continue
		}
		i++
		run := t.runs[nd.run : nd.run+nd.runLen]
		if len(wire)-i < len(run) {
			return ip, false
		}
		for j := 0; j < len(run); j++ {
			if wire[i+j] != run[j] {
				return ip, false
			}
		}
		i += len(run)
		if nd.leaf {
			return nd.ip, true
		}
		c = nd.child
	}
	return ip, false
}

// LookupName resolves a dotted name, encoding it into a stack buffer
// first — the allocation-free twin of the old map lookup for callers
// that hold a decoded string. Unencodable names (oversized or empty
// labels) are simply absent from the zone.
func (t *ZoneTrie) LookupName(name string) (ip [4]byte, ok bool) {
	var buf [257]byte
	w := buf[:0]
	if n := len(name); n > 0 && name[n-1] == '.' {
		name = name[:n-1]
	}
	if name != "" {
		start := 0
		for i := 0; i <= len(name); i++ {
			if i < len(name) && name[i] != '.' {
				continue
			}
			l := i - start
			if l < 1 || l > 63 || len(w)+1+l+1 > len(buf) {
				return ip, false
			}
			w = append(w, byte(l))
			w = append(w, name[start:i]...)
			start = i + 1
		}
	}
	w = append(w, 0)
	return t.Lookup(w)
}
