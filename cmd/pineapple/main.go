// Command pineapple runs the §III-D remote scenario: a rogue access point
// clones the victim's trusted SSID at a stronger signal, DHCP hands the
// device a malicious resolver, and the next DNS lookups carry the
// exploit.
//
// Usage:
//
//	pineapple -arch arms -kind rop-memcpy -wx -aslr -v
//
// With -stations N it switches to the population-scale variant: one
// shared sharded world where a single rogue AP out-shouts the home
// router for the entire station fleet at once:
//
//	pineapple -stations 100000 -shards 8 -victim-every 25000
package main

import (
	"flag"
	"fmt"
	"os"

	"connlab/internal/core"
	"connlab/internal/exploit"
	"connlab/internal/gadget"
	"connlab/internal/isa"
	"connlab/internal/obs"
	"connlab/internal/scenario"
	"connlab/internal/snapshot"
	"connlab/internal/telemetry"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "pineapple:", err)
		os.Exit(1)
	}
}

func run() (err error) {
	archFlag := flag.String("arch", "arms", "victim architecture: x86s or arms")
	kindFlag := flag.String("kind", "rop-memcpy", "exploit kind")
	wx := flag.Bool("wx", true, "enable W⊕X on the device")
	aslr := flag.Bool("aslr", true, "enable ASLR on the device")
	legit := flag.Int("legit-signal", 50, "legitimate AP signal strength")
	rogue := flag.Int("rogue-signal", 90, "pineapple signal strength")
	stations := flag.Int("stations", 0, "population size; >0 runs the scale scenario in one shared world")
	shards := flag.Int("shards", 1, "netsim shard count (scale scenario only)")
	lookups := flag.Int("lookups", 2, "attack-phase lookups per station (scale scenario only)")
	victimEvery := flag.Int("victim-every", 0, "every k-th station is a full victim device (scale scenario only)")
	verbose := flag.Bool("v", false, "print the network event log")
	scenarioFlag := flag.String("scenario", "", "run a declarative scenario (embedded `name` or .scn file) through the rogue AP")
	snapdir := flag.String("snapdir", "", "recon snapshot store `dir` (content-addressed, verified on load; empty = off)")
	gadgetCache := flag.Int("gadget-cache", 0, "gadget scan-cache LRU capacity (0 = default)")
	tf := telemetry.AddFlags(flag.CommandLine)
	flag.Parse()

	// Telemetry must be live before the lab is built: instrumented
	// components take their metric handles at construction.
	if err := tf.Start(); err != nil {
		return err
	}
	srv, err := obs.StartFlags(tf, "pineapple", nil)
	if err != nil {
		return err
	}
	defer srv.Close()
	defer func() {
		run := &telemetry.RunInfo{Tool: "pineapple", Devices: 1, Scenarios: 1}
		if ferr := tf.Finish(run, nil, nil); ferr != nil && err == nil {
			err = ferr
		}
	}()

	gadget.SetScanCacheCap(*gadgetCache)
	lab := core.NewLab()
	if *snapdir != "" {
		snaps, err := snapshot.Open(*snapdir)
		if err != nil {
			return err
		}
		gadget.SetSnapshotStore(snaps)
		lab.Snapshots = snaps
	}
	if *scenarioFlag != "" {
		// Every compiled cell delivers through the per-device rogue-AP
		// world instead of handing the packet straight to the daemon.
		rep, rerr := lab.RunScenario(*scenarioFlag, scenario.CompileOpts{Pineapple: true})
		if rep != nil {
			fmt.Print(rep.Canonical())
			fmt.Printf("lookups hijacked: %d\n", rep.Hijacked)
		}
		if rerr != nil {
			return rerr
		}
		fmt.Println("all device outcomes within spec predicates")
		return nil
	}
	if *stations > 0 {
		rep, err := lab.RunPineappleScale(core.PineappleScaleConfig{
			Arch:        isa.Arch(*archFlag),
			Kind:        exploit.Kind(*kindFlag),
			Protection:  core.Protection{WX: *wx, ASLR: *aslr},
			Stations:    *stations,
			Shards:      *shards,
			Lookups:     *lookups,
			VictimEvery: *victimEvery,
			Verbose:     *verbose,
		})
		if err != nil {
			return err
		}
		fmt.Print(rep.Transcript())
		perSec := float64(rep.Delivered) / (float64(rep.WallNs) / 1e9)
		fmt.Printf("wall: %.3fs (%.0f datagrams/sec)\n", float64(rep.WallNs)/1e9, perSec)
		if *verbose {
			fmt.Println("--- network events ---")
			for _, e := range rep.Events {
				fmt.Println(" ", e)
			}
		}
		return nil
	}
	rep, err := lab.RunPineapple(core.PineappleConfig{
		Arch:        isa.Arch(*archFlag),
		Kind:        exploit.Kind(*kindFlag),
		Protection:  core.Protection{WX: *wx, ASLR: *aslr},
		LegitSignal: *legit,
		RogueSignal: *rogue,
	})
	if err != nil {
		return err
	}
	fmt.Printf("baseline lookup worked: %v\n", rep.BaselineWorked)
	fmt.Printf("re-associated to rogue: %v\n", rep.Reassociated)
	fmt.Printf("victim resolver:        %s\n", rep.VictimDNS)
	fmt.Printf("lookups hijacked:       %d\n", rep.Hijacked)
	fmt.Printf("device outcome:         %s (%s)\n", rep.Outcome, rep.Detail)
	if *verbose {
		fmt.Println("--- network events ---")
		for _, e := range rep.Events {
			fmt.Println(" ", e)
		}
	}
	return nil
}
