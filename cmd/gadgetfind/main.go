// Command gadgetfind is the lab's ropper/ROPgadget analog: it links the
// victim binary and lists its code-reuse gadgets, or searches readable
// memory for single characters (-memstr), the way the paper harvests
// "/bin/sh" one byte at a time.
//
// Usage:
//
//	gadgetfind -arch arms
//	gadgetfind -arch x86s -memstr /bin/sh
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"connlab/internal/gadget"
	"connlab/internal/image"
	"connlab/internal/isa"
	"connlab/internal/obs"
	"connlab/internal/telemetry"
	"connlab/internal/victim"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "gadgetfind:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout io.Writer) (err error) {
	fs := flag.NewFlagSet("gadgetfind", flag.ContinueOnError)
	fs.SetOutput(stdout)
	archFlag := fs.String("arch", "x86s", "victim architecture: x86s or arms")
	memstr := fs.String("memstr", "", "search for each character of this string")
	variant := fs.String("variant", "connman", "victim variant: connman or dnsmasq")
	tf := telemetry.AddFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}

	// Telemetry must be live before the image is built: instrumented
	// components take their metric handles at construction.
	if err := tf.Start(); err != nil {
		return err
	}
	srv, err := obs.StartFlags(tf, "gadgetfind", nil)
	if err != nil {
		return err
	}
	defer srv.Close()
	defer func() {
		run := &telemetry.RunInfo{Tool: "gadgetfind"}
		if ferr := tf.Finish(run, nil, nil); ferr != nil && err == nil {
			err = ferr
		}
	}()

	arch := isa.Arch(*archFlag)
	opts := victim.BuildOpts{}
	if *variant == "dnsmasq" {
		opts.Variant = victim.VariantDnsmasq
	}
	u, err := victim.BuildProgram(arch, opts)
	if err != nil {
		return err
	}
	img, err := image.Link(u, image.DefaultProgramLayout(arch), image.Options{})
	if err != nil {
		return err
	}
	f := gadget.NewFinder(img)

	if *memstr != "" {
		for i := 0; i < len(*memstr); i++ {
			c := (*memstr)[i]
			addrs := f.MemStr(c)
			if len(addrs) == 0 {
				fmt.Fprintf(stdout, "%q: not found\n", string(c))
				continue
			}
			fmt.Fprintf(stdout, "%q: %#08x (+%d more)\n", string(c), addrs[0], len(addrs)-1)
		}
		return nil
	}

	all := f.All()
	fmt.Fprintf(stdout, "%d gadgets in %s %s image\n", len(all), arch, *variant)
	for _, g := range all {
		fmt.Fprintln(stdout, g)
	}
	return nil
}
