// Command gadgetfind is the lab's ropper/ROPgadget analog: it links the
// victim binary and lists its code-reuse gadgets, or searches readable
// memory for single characters (-memstr), the way the paper harvests
// "/bin/sh" one byte at a time.
//
// Usage:
//
//	gadgetfind -arch arms
//	gadgetfind -arch x86s -memstr /bin/sh
package main

import (
	"flag"
	"fmt"
	"os"

	"connlab/internal/gadget"
	"connlab/internal/image"
	"connlab/internal/isa"
	"connlab/internal/victim"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "gadgetfind:", err)
		os.Exit(1)
	}
}

func run() error {
	archFlag := flag.String("arch", "x86s", "victim architecture: x86s or arms")
	memstr := flag.String("memstr", "", "search for each character of this string")
	variant := flag.String("variant", "connman", "victim variant: connman or dnsmasq")
	flag.Parse()

	arch := isa.Arch(*archFlag)
	opts := victim.BuildOpts{}
	if *variant == "dnsmasq" {
		opts.Variant = victim.VariantDnsmasq
	}
	u, err := victim.BuildProgram(arch, opts)
	if err != nil {
		return err
	}
	img, err := image.Link(u, image.DefaultProgramLayout(arch), image.Options{})
	if err != nil {
		return err
	}
	f := gadget.NewFinder(img)

	if *memstr != "" {
		for i := 0; i < len(*memstr); i++ {
			c := (*memstr)[i]
			addrs := f.MemStr(c)
			if len(addrs) == 0 {
				fmt.Printf("%q: not found\n", string(c))
				continue
			}
			fmt.Printf("%q: %#08x (+%d more)\n", string(c), addrs[0], len(addrs)-1)
		}
		return nil
	}

	all := f.All()
	fmt.Printf("%d gadgets in %s %s image\n", len(all), arch, *variant)
	for _, g := range all {
		fmt.Println(g)
	}
	return nil
}
