package main

import (
	"bytes"
	"strings"
	"testing"
)

// TestRunListsGadgets: the default invocation lists the image's gadgets.
func TestRunListsGadgets(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-arch", "x86s"}, &out); err != nil {
		t.Fatalf("run: %v", err)
	}
	first, _, _ := strings.Cut(out.String(), "\n")
	if !strings.Contains(first, "gadgets in x86s connman image") || strings.HasPrefix(first, "0 ") {
		t.Errorf("expected a non-empty gadget listing, got header %q", first)
	}
}

// TestRunMemStr: the /bin/sh character harvest finds every byte in the
// victim image, the way §III-C assembles the string.
func TestRunMemStr(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-arch", "arms", "-memstr", "/bin/sh"}, &out); err != nil {
		t.Fatalf("run: %v", err)
	}
	if strings.Contains(out.String(), "not found") {
		t.Errorf("every /bin/sh character should be harvestable:\n%s", out.String())
	}
}

// TestRunBadFlag: unknown flags error instead of exiting the process.
func TestRunBadFlag(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-no-such-flag"}, &out); err == nil {
		t.Error("expected an error for an unknown flag")
	}
}
