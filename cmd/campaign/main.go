// Command campaign drives the parallel campaign engine: fleets of
// emulated IoT devices attacked under configurable protection postures,
// with recon cached per configuration and results deterministic for any
// worker count.
//
// Usage:
//
//	campaign -preset fleet -arch x86s -kind code-injection -devices 10 -patched-every 4
//	campaign -preset matrix                  # arch × kind × paper-level grid
//	campaign -preset sweep -arch arms -kind rop-memcpy -devices 5
//	campaign -preset fleet -devices 8 -canonical   # byte-stable report
//
// The matrix preset is compiled from the embedded declarative scenario
// for the selected -variant. Any scenario — embedded or a .scn file on
// disk — runs the same way, with the report checked against the spec's
// own success predicates:
//
//	campaign -scenario heap-adjacent
//	campaign -scenario ./my-cve.scn -arch arms -devices 3
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"connlab/internal/campaign"
	"connlab/internal/exploit"
	"connlab/internal/gadget"
	"connlab/internal/isa"
	"connlab/internal/obs"
	"connlab/internal/scenario"
	"connlab/internal/snapshot"
	"connlab/internal/telemetry"
	"connlab/internal/victim"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "campaign:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout io.Writer) (err error) {
	fs := flag.NewFlagSet("campaign", flag.ContinueOnError)
	fs.SetOutput(stdout)
	preset := fs.String("preset", "fleet", "campaign preset: fleet, matrix, or sweep")
	archFlag := fs.String("arch", "x86s", "victim architecture: x86s or arms")
	kindFlag := fs.String("kind", "code-injection",
		"exploit kind: dos, code-injection, ret2libc, rop-execlp, rop-memcpy")
	devices := fs.Int("devices", 10, "fleet size per scenario (fleet and sweep presets)")
	patchedEvery := fs.Int("patched-every", 0, "every Nth device runs patched 1.35 firmware (0 = none)")
	workers := fs.Int("workers", 0, "worker goroutines (0 = GOMAXPROCS)")
	rootSeed := fs.Int64("seed", campaign.DefaultRootSeed, "campaign root seed (per-device seeds derive from it)")
	reconSeed := fs.Int64("recon-seed", campaign.DefaultReconSeed, "attacker replica seed")
	wx := fs.Bool("wx", false, "enable W⊕X on the targets")
	aslr := fs.Bool("aslr", false, "enable ASLR on the targets")
	cfi := fs.Bool("cfi", false, "enable the CFI shadow stack mitigation")
	canary := fs.Bool("canary", false, "build targets with stack canaries")
	diversity := fs.Int64("diversity", 0, "software diversity seed (0 = off)")
	patched := fs.Bool("patched", false, "deploy the patched (1.35) firmware fleet-wide")
	variant := fs.String("variant", "connman", "victim variant: connman or dnsmasq")
	scenarioFlag := fs.String("scenario", "", "run a declarative scenario (embedded `name` or .scn file) instead of a preset")
	snapdir := fs.String("snapdir", "", "recon snapshot store `dir` (content-addressed, verified on load; empty = off)")
	gadgetCache := fs.Int("gadget-cache", 0, "gadget scan-cache LRU capacity (0 = default)")
	canonical := fs.Bool("canonical", false, "print the byte-stable canonical report (no timings)")
	jsonOut := fs.String("json", "", "write the full report (config included) as JSON to `file` (- for stdout)")
	tf := telemetry.AddFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}

	// Telemetry must be live before the engine is built: instrumented
	// components take their metric handles at construction.
	if err := tf.Start(); err != nil {
		return err
	}
	srv, err := obs.StartFlags(tf, "campaign", func() *telemetry.RunInfo {
		return &telemetry.RunInfo{Tool: "campaign", RootSeed: *rootSeed, ReconSeed: *reconSeed}
	})
	if err != nil {
		return err
	}
	defer srv.Close()

	// Flags left at their defaults act as "unset" for scenario filters.
	explicit := map[string]bool{}
	fs.Visit(func(f *flag.Flag) { explicit[f.Name] = true })

	gadget.SetScanCacheCap(*gadgetCache)
	arch := isa.Arch(*archFlag)
	if arch != isa.ArchX86S && arch != isa.ArchARMS {
		return fmt.Errorf("unknown arch %q", *archFlag)
	}
	build := victim.BuildOpts{Patched: *patched}
	switch *variant {
	case "connman":
	case "dnsmasq":
		build.Variant = victim.VariantDnsmasq
	default:
		return fmt.Errorf("unknown variant %q", *variant)
	}
	prot := campaign.Protection{
		WX: *wx, ASLR: *aslr, CFI: *cfi, Canary: *canary, DiversitySeed: *diversity,
	}
	kind := exploit.Kind(*kindFlag)

	var scenarios []campaign.Scenario
	var spec *scenario.Spec
	if *scenarioFlag != "" {
		spec, err = scenario.Resolve(*scenarioFlag)
		if err != nil {
			return err
		}
		co := scenario.CompileOpts{
			PatchedEvery: *patchedEvery, Patched: *patched,
			Canary: *canary, CFI: *cfi, DiversitySeed: *diversity,
		}
		if explicit["arch"] {
			co.Arch = arch
		}
		if explicit["kind"] {
			co.Kind = kind
		}
		if explicit["devices"] {
			co.Devices = *devices
		}
		if scenarios, err = scenario.Compile(spec, co); err != nil {
			return err
		}
	} else {
		switch *preset {
		case "fleet":
			scenarios = []campaign.Scenario{{
				Arch: arch, Kind: kind, Protection: prot, Build: build,
				Devices: *devices, PatchedEvery: *patchedEvery, Pineapple: true,
			}}
		case "sweep":
			for _, p := range campaign.PaperLevels() {
				p.CFI = p.CFI || *cfi
				p.Canary = p.Canary || *canary
				p.DiversitySeed = *diversity
				scenarios = append(scenarios, campaign.Scenario{
					Arch: arch, Kind: kind, Protection: p, Build: build,
					Devices: *devices, PatchedEvery: *patchedEvery, Pineapple: true,
				})
			}
		case "matrix":
			// The paper matrix is compiled from the embedded declarative
			// spec for the variant — the same cells the old hand-written
			// enumeration produced, pinned byte-identical by the scenario
			// package's golden test.
			if spec, err = scenario.Load(*variant); err != nil {
				return err
			}
			if scenarios, err = scenario.Compile(spec, scenario.CompileOpts{Patched: *patched}); err != nil {
				return err
			}
		default:
			return fmt.Errorf("unknown preset %q", *preset)
		}
	}

	var snaps *snapshot.Store
	if *snapdir != "" {
		if snaps, err = snapshot.Open(*snapdir); err != nil {
			return err
		}
		gadget.SetSnapshotStore(snaps)
	}
	eng := campaign.New(campaign.Config{
		Workers: *workers, RootSeed: *rootSeed, ReconSeed: *reconSeed, Snapshots: snaps,
	})
	rep, err := eng.Run(scenarios)
	if rep != nil {
		if *canonical {
			fmt.Fprint(stdout, rep.Canonical())
		} else {
			fmt.Fprintln(stdout, rep)
			fmt.Fprint(stdout, rep.Table())
		}
		// A -scenario run is checked against the spec's own success
		// predicates: the spec is executable documentation.
		if *scenarioFlag != "" && err == nil {
			if verr := scenario.Verify(spec, rep); verr != nil {
				err = verr
			} else if !*canonical {
				fmt.Fprintf(stdout, "scenario %s: all device outcomes within spec predicates\n", spec.Name)
			}
		}
		if *jsonOut != "" {
			if jerr := writeReportJSON(*jsonOut, rep, stdout); jerr != nil && err == nil {
				err = jerr
			}
		}
		// Flight-recorder events ride in the device results; collect them
		// for the trace export.
		var ctl []telemetry.ControlEvent
		for si := range rep.Scenarios {
			for di := range rep.Scenarios[si].Devices {
				ctl = append(ctl, rep.Scenarios[si].Devices[di].Trace...)
			}
		}
		if ferr := tf.Finish(rep.RunInfo("campaign"), rep.StageAggregates(), ctl); ferr != nil && err == nil {
			err = ferr
		}
	} else if ferr := tf.Finish(&telemetry.RunInfo{Tool: "campaign"}, nil, nil); ferr != nil && err == nil {
		err = ferr
	}
	return err
}

// writeReportJSON writes the report to path, with "-" meaning stdout.
func writeReportJSON(path string, rep *campaign.Report, stdout io.Writer) error {
	if path == "-" {
		return rep.WriteJSON(stdout)
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := rep.WriteJSON(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
