package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"connlab/internal/campaign"
	"connlab/internal/telemetry"
)

// TestRunFleet: a small pineapple fleet owns the vulnerable devices and
// prints the summary plus per-configuration table.
func TestRunFleet(t *testing.T) {
	var out bytes.Buffer
	err := run([]string{
		"-preset", "fleet", "-arch", "x86s", "-kind", "code-injection",
		"-devices", "4", "-patched-every", "2",
	}, &out)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	s := out.String()
	if !strings.Contains(s, "campaign: 1 scenarios, 4 devices") {
		t.Errorf("missing summary line:\n%s", s)
	}
	if !strings.Contains(s, "scenario") || !strings.Contains(s, "owned") {
		t.Errorf("missing table:\n%s", s)
	}
}

// TestRunCanonicalIsDeterministic: -canonical output is byte-identical
// across invocations and worker counts.
func TestRunCanonicalIsDeterministic(t *testing.T) {
	args := []string{
		"-preset", "fleet", "-arch", "arms", "-kind", "dos",
		"-devices", "3", "-canonical",
	}
	var a, b bytes.Buffer
	if err := run(args, &a); err != nil {
		t.Fatalf("first run: %v", err)
	}
	if err := run(append([]string{"-workers", "7"}, args...), &b); err != nil {
		t.Fatalf("second run: %v", err)
	}
	if a.String() != b.String() {
		t.Errorf("canonical reports differ:\n--- 1 worker default\n%s--- 7 workers\n%s", a.String(), b.String())
	}
	if !strings.Contains(a.String(), "campaign root=") {
		t.Errorf("unexpected canonical output:\n%s", a.String())
	}
}

// TestRunSweep: the sweep preset covers every paper protection level.
func TestRunSweep(t *testing.T) {
	var out bytes.Buffer
	err := run([]string{
		"-preset", "sweep", "-arch", "x86s", "-kind", "dos", "-devices", "2",
	}, &out)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if !strings.Contains(out.String(), "campaign: 3 scenarios, 6 devices") {
		t.Errorf("expected three paper levels:\n%s", out.String())
	}
}

// TestRunMetricsAndJSON: -metrics writes a telemetry snapshot annotated
// with the campaign's run info and stage aggregates, and -json writes
// the full report with its engine config embedded.
func TestRunMetricsAndJSON(t *testing.T) {
	t.Cleanup(telemetry.Disable)
	dir := t.TempDir()
	metricsPath := filepath.Join(dir, "metrics.json")
	reportPath := filepath.Join(dir, "report.json")
	var out bytes.Buffer
	err := run([]string{
		"-preset", "fleet", "-arch", "x86s", "-kind", "code-injection",
		"-devices", "3", "-workers", "2",
		"-metrics", metricsPath, "-json", reportPath,
	}, &out)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	raw, err := os.ReadFile(metricsPath)
	if err != nil {
		t.Fatal(err)
	}
	var snap telemetry.Snapshot
	if err := json.Unmarshal(raw, &snap); err != nil {
		t.Fatalf("snapshot does not parse: %v", err)
	}
	if snap.Run == nil || snap.Run.Tool != "campaign" || snap.Run.Devices != 3 || snap.Run.Workers != 2 {
		t.Errorf("snapshot run = %+v, want campaign/3 devices/2 workers", snap.Run)
	}
	if snap.Counters[telemetry.CtrEmuRuns.Name()] == 0 {
		t.Error("snapshot counters empty: emu_runs = 0")
	}
	if len(snap.Scenarios) != 1 || snap.Scenarios[0].Devices != 3 {
		t.Errorf("snapshot scenarios = %+v", snap.Scenarios)
	}
	if raw, err = os.ReadFile(reportPath); err != nil {
		t.Fatal(err)
	}
	var rep campaign.Report
	if err := json.Unmarshal(raw, &rep); err != nil {
		t.Fatalf("report JSON does not parse: %v", err)
	}
	if rep.Config.Workers != 2 || rep.Config.RootSeed != campaign.DefaultRootSeed {
		t.Errorf("report config = %+v", rep.Config)
	}
}

// TestRunBadPreset: a bogus preset is a clean error.
func TestRunBadPreset(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-preset", "nope"}, &out); err == nil {
		t.Error("expected an error for an unknown preset")
	}
}

// TestRunScenarioFlag: -scenario compiles a data-only spec, runs it,
// and checks the report against the spec's predicates; filters narrow
// the matrix only when set explicitly.
func TestRunScenarioFlag(t *testing.T) {
	var out bytes.Buffer
	err := run([]string{"-scenario", "heap-adjacent", "-arch", "arms", "-kind", "dos"}, &out)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	s := out.String()
	if !strings.Contains(s, "campaign: 3 scenarios, 3 devices") {
		t.Errorf("filtered scenario run should cover the 3 protection rows:\n%s", s)
	}
	if !strings.Contains(s, "scenario heap-adjacent: all device outcomes within spec predicates") {
		t.Errorf("missing predicate verdict:\n%s", s)
	}
	if strings.Contains(s, "x86s/") {
		t.Errorf("-arch arms filter leaked x86s cells:\n%s", s)
	}
}

// TestRunScenarioUnknown: an unknown scenario name is a clean error.
func TestRunScenarioUnknown(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-scenario", "no-such"}, &out); err == nil {
		t.Error("expected an error for an unknown scenario")
	}
}
